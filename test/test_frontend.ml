(* Frontend tests: preprocessing, lexing, parsing, elaboration,
   simplification, linking and the concrete interpreter (Sect. 5.1). *)

module F = Astree_frontend

let compile ?(main = "main") src =
  let ast = F.Parser.parse_string ~file:"<test>" src in
  F.Typecheck.elab_program ~main ast

let compile_simplified ?(main = "main") src =
  let p = compile ~main src in
  fst (F.Simplify.run p)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lex_numbers () =
  let toks = F.Lexer.tokenize ~file:"t" "42 0x1F 3.5 1e3 2.5f 7u 9L" in
  let kinds =
    List.filter_map
      (fun (t : F.Token.spanned) ->
        match t.F.Token.tok with
        | F.Token.INT_LIT (n, r, s) -> Some (`I (n, r, s))
        | F.Token.FLOAT_LIT (f, k) -> Some (`F (f, k))
        | _ -> None)
      toks
  in
  match kinds with
  | [ `I (42, _, _); `I (31, _, _); `F (3.5, F.Ctypes.Fdouble);
      `F (1000.0, F.Ctypes.Fdouble); `F (2.5, F.Ctypes.Fsingle);
      `I (7, _, F.Ctypes.Unsigned); `I (9, F.Ctypes.Long, _) ] ->
      ()
  | _ -> Alcotest.fail "unexpected literal lexing"

let test_lex_operators () =
  let toks = F.Lexer.tokenize ~file:"t" "a<<=b >>= && || -> ++ -- <= >= == !=" in
  Alcotest.(check int) "count" 14 (List.length toks) (* 13 tokens + EOF *)

let test_lex_comments_and_locs () =
  let toks = F.Lexer.tokenize ~file:"t" "a /* multi\nline */ b // eol\nc" in
  let idents =
    List.filter_map
      (fun (t : F.Token.spanned) ->
        match t.F.Token.tok with
        | F.Token.IDENT s -> Some (s, t.F.Token.tloc.F.Loc.line)
        | _ -> None)
      toks
  in
  Alcotest.(check (list (pair string int)))
    "locations" [ ("a", 1); ("b", 2); ("c", 3) ] idents

let test_lex_char_string () =
  let toks = F.Lexer.tokenize ~file:"t" {|'A' '\n' "hi\n"|} in
  match List.map (fun (t : F.Token.spanned) -> t.F.Token.tok) toks with
  | [ F.Token.CHAR_LIT 65; F.Token.CHAR_LIT 10; F.Token.STRING_LIT "hi\n";
      F.Token.EOF ] ->
      ()
  | _ -> Alcotest.fail "char/string lexing"

(* ------------------------------------------------------------------ *)
(* Preprocessor                                                        *)
(* ------------------------------------------------------------------ *)

(* simple substring check *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_preproc_object_macro () =
  let out = F.Preproc.run ~file:"t" "#define N 10\nint x[N];\n" in
  Alcotest.(check bool) "expanded" true (contains out "int x[10];")

let test_preproc_function_macro () =
  let out =
    F.Preproc.run ~file:"t"
      "#define MIN(a, b) ((a) < (b) ? (a) : (b))\ny = MIN(x + 1, 2);\n"
  in
  Alcotest.(check bool) "expanded" true
    (contains out "((x + 1) < (2) ? (x + 1) : (2))")

let test_preproc_conditionals () =
  let out =
    F.Preproc.run ~file:"t"
      "#define A 1\n#if A && !defined(B)\nyes\n#else\nno\n#endif\n"
  in
  Alcotest.(check bool) "took then" true (contains out "yes");
  Alcotest.(check bool) "skipped else" false (contains out "no")

let test_preproc_elif_chain () =
  let out =
    F.Preproc.run ~file:"t"
      "#define V 2\n#if V == 1\none\n#elif V == 2\ntwo\n#elif V == 3\nthree\n#else\nother\n#endif\n"
  in
  Alcotest.(check bool) "two" true (contains out "two");
  Alcotest.(check bool) "not one" false (contains out "one");
  Alcotest.(check bool) "not three" false (contains out "three")

let test_preproc_include () =
  let env =
    F.Preproc.make_env
      ~read_file:(fun name ->
        if name = "defs.h" then Some "#define LIMIT 100\n" else None)
      ()
  in
  let out = F.Preproc.run ~env ~file:"t" "#include \"defs.h\"\nint x = LIMIT;\n" in
  Alcotest.(check bool) "included" true (contains out "int x = 100;")

let test_preproc_no_self_recursion () =
  let out = F.Preproc.run ~file:"t" "#define X X + 1\ny = X;\n" in
  Alcotest.(check bool) "guarded" true (contains out "y = X + 1;")

let test_preproc_undef () =
  let out = F.Preproc.run ~file:"t" "#define A 1\n#undef A\n#ifdef A\nyes\n#endif\n" in
  Alcotest.(check bool) "undefined" false (contains out "yes")

let test_partition_markers () =
  Alcotest.(check (list string))
    "single space"
    [ "f"; "g" ]
    (F.Preproc.partition_markers "/* astree-partition: f g */");
  (* arbitrary whitespace after the colon and between names: tabs,
     multiple spaces, newlines *)
  Alcotest.(check (list string))
    "tab separated"
    [ "f"; "g" ]
    (F.Preproc.partition_markers "/* astree-partition:\tf\tg */");
  Alcotest.(check (list string))
    "mixed whitespace"
    [ "a"; "b"; "c" ]
    (F.Preproc.partition_markers
       "int x;\n/* astree-partition:   a\n   b\tc\n*/\nint y;");
  Alcotest.(check (list string))
    "several markers, deduplicated and sorted"
    [ "f"; "g"; "h" ]
    (F.Preproc.partition_markers
       "/* astree-partition: g f */ code /* astree-partition:\th */");
  Alcotest.(check (list string))
    "no marker" []
    (F.Preproc.partition_markers "int main(void) { return 0; }")

(* ------------------------------------------------------------------ *)
(* Parser / elaboration                                                *)
(* ------------------------------------------------------------------ *)

let test_parse_minimal () =
  let p = compile "int main(void) { return 0; }" in
  Alcotest.(check int) "one function" 1 (List.length p.F.Tast.p_funs)

let test_parse_precedence () =
  (* 1 + 2 * 3 folds to 7, not 9 *)
  let p = compile_simplified "int g = 1 + 2 * 3;\nint main(void) { return g; }" in
  match p.F.Tast.p_globals with
  | [ (_, F.Tast.Iint 7) ] -> ()
  | _ -> Alcotest.fail "precedence/constant folding"

let test_enum_and_sizeof () =
  let p =
    compile_simplified
      "enum mode { OFF, ON = 5, AUTO };\nint g = AUTO + sizeof(int);\nint main(void) { return g; }"
  in
  match p.F.Tast.p_globals with
  | [ (_, F.Tast.Iint 10) ] -> () (* AUTO = 6, sizeof(int) = 4 *)
  | _ -> Alcotest.fail "enum/sizeof evaluation"

let test_enum_as_type () =
  (* enum-typed variables are integers (Sect. 6.1.1) *)
  let src =
    "enum mode { OFF, ON };\nenum mode m;\nint main(void) { m = ON; __astree_assert(m == 1); while (1) { __astree_wait_for_clock(); } return 0; }"
  in
  let r = Astree_core.Analysis.analyze_string src in
  Alcotest.(check int) "enum var" 0 (Astree_core.Analysis.n_alarms r)

let test_nested_struct_array () =
  (* arrays of structs: field-sensitive cells through index paths *)
  let src =
    "struct pt { int x; int y; };\nstruct pt pts[3];\nint main(void) { pts[1].x = 7; pts[2].y = 9; __astree_assert(pts[1].x == 7); __astree_assert(pts[0].x == 0); while (1) { __astree_wait_for_clock(); } return 0; }"
  in
  let r = Astree_core.Analysis.analyze_string src in
  Alcotest.(check int) "nested cells" 0 (Astree_core.Analysis.n_alarms r)

let test_struct_with_array_field () =
  let src =
    "struct buf { int data[4]; int n; };\nstruct buf b;\nint main(void) { b.data[2] = 5; b.n = 1; __astree_assert(b.data[2] == 5); __astree_assert(b.n == 1); while (1) { __astree_wait_for_clock(); } return 0; }"
  in
  let r = Astree_core.Analysis.analyze_string src in
  Alcotest.(check int) "array field" 0 (Astree_core.Analysis.n_alarms r)

let test_typedef_struct () =
  let p =
    compile
      "struct pt { int x; int y; };\ntypedef struct pt point;\npoint g;\nint main(void) { g.x = 1; return g.x; }"
  in
  Alcotest.(check int) "globals" 1 (List.length p.F.Tast.p_globals)

let test_for_desugar () =
  let p = compile "int main(void) { int s; int i; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }" in
  (* the for became a while *)
  let found = ref false in
  List.iter
    (fun (_, fd) ->
      F.Tast.iter_stmts
        (fun s -> match s.F.Tast.sdesc with F.Tast.Swhile _ -> found := true | _ -> ())
        fd.F.Tast.fd_body)
    p.F.Tast.p_funs;
  Alcotest.(check bool) "while present" true !found

let test_switch_desugar () =
  let src =
    "int main(void) { int m; int r; m = 2; switch (m) { case 0: r = 1; break; case 2: r = 5; break; default: r = 9; break; } return r; }"
  in
  match F.Interp.run (compile src) with
  | F.Interp.Finished -> ()
  | F.Interp.Error (k, _) ->
      Alcotest.failf "error %a" F.Interp.pp_error_kind k

let test_side_effect_purification () =
  (* conditions with calls are hoisted; the elaborated condition is pure *)
  let p =
    compile
      "int f(void) { return 3; }\nint main(void) { int x; x = 0; if (f() > 2) { x = 1; } return x; }"
  in
  List.iter
    (fun (_, fd) ->
      F.Tast.iter_stmts
        (fun s ->
          match s.F.Tast.sdesc with
          | F.Tast.Sif (c, _, _) ->
              (* a pure condition only reads variables *)
              ignore (F.Tast.expr_vars c F.Tast.VarSet.empty)
          | _ -> ())
        fd.F.Tast.fd_body)
    p.F.Tast.p_funs;
  Alcotest.(check bool) "elaborated" true true

let test_static_locals_hoisted () =
  let p =
    compile
      "void f(void) { static int calls = 5; calls = calls + 1; }\nint main(void) { f(); return 0; }"
  in
  let statics =
    List.filter
      (fun ((v : F.Tast.var), _) ->
        match v.F.Tast.v_kind with F.Tast.Kstatic _ -> true | _ -> false)
      p.F.Tast.p_globals
  in
  match statics with
  | [ (v, F.Tast.Iint 5) ] ->
      Alcotest.(check string) "renamed" "f$calls" v.F.Tast.v_name
  | _ -> Alcotest.fail "static hoisting"

let test_reject_recursion_at_analysis () =
  let p = compile "int f(int n) { if (n > 0) { return f(n - 1); } return 0; }\nint main(void) { int r; r = f(3); return r; }" in
  let cfg = Astree_core.Config.default in
  (try
     ignore (Astree_core.Analysis.analyze ~cfg p);
     Alcotest.fail "recursion not rejected"
   with Astree_core.Iterator.Analysis_error _ -> ())

let test_reject_unknown_constructs () =
  (try
     ignore (compile "int main(void) { goto done; done: return 0; }");
     Alcotest.fail "goto accepted"
   with F.Parser.Error _ | F.Typecheck.Error _ -> ())

let test_array_param_by_ref () =
  let src =
    "void fill(int *p) { *p = 7; }\nint g;\nint main(void) { fill(&g); return g; }"
  in
  let st_result = ref None in
  let p = compile src in
  (match F.Interp.run p with
  | F.Interp.Finished -> st_result := Some ()
  | F.Interp.Error (k, _) -> Alcotest.failf "error %a" F.Interp.pp_error_kind k);
  Alcotest.(check bool) "ran" true (!st_result <> None)

(* ------------------------------------------------------------------ *)
(* Simplification                                                      *)
(* ------------------------------------------------------------------ *)

let test_unused_global_removal () =
  let p =
    compile_simplified
      "int used; int unused;\nint main(void) { used = 1; return used; }"
  in
  let names = List.map (fun ((v : F.Tast.var), _) -> v.F.Tast.v_name) p.F.Tast.p_globals in
  Alcotest.(check bool) "kept used" true (List.mem "used" names);
  Alcotest.(check bool) "dropped unused" false (List.mem "unused" names)

let test_const_array_folding () =
  (* constant-subscript reads of constant arrays are replaced and the
     array optimized away (Sect. 5.1) *)
  let p =
    compile_simplified
      "const int tab[4] = {10, 20, 30, 40};\nint main(void) { int x; x = tab[2]; return x; }"
  in
  let names = List.map (fun ((v : F.Tast.var), _) -> v.F.Tast.v_name) p.F.Tast.p_globals in
  Alcotest.(check bool) "array deleted" false (List.mem "tab" names);
  (* and the program still computes 30 *)
  match F.Interp.run p with
  | F.Interp.Finished -> ()
  | F.Interp.Error _ -> Alcotest.fail "run failed"

let test_constant_condition_pruning () =
  let p =
    compile_simplified
      "int main(void) { int x; if (1 < 0) { x = 1; } else { x = 2; } return x; }"
  in
  (* the dead branch is emptied *)
  let dead_assign = ref false in
  List.iter
    (fun (_, fd) ->
      F.Tast.iter_stmts
        (fun s ->
          match s.F.Tast.sdesc with
          | F.Tast.Sif (_, tb, _) -> if tb <> [] then dead_assign := true
          | _ -> ())
        fd.F.Tast.fd_body)
    p.F.Tast.p_funs;
  Alcotest.(check bool) "then pruned" false !dead_assign

(* ------------------------------------------------------------------ *)
(* Linker                                                              *)
(* ------------------------------------------------------------------ *)

let test_link_two_files () =
  let ast =
    F.Linker.parse_and_link
      [
        ("a.c", "extern int shared;\nint get(void) { return shared; }");
        ("b.c", "int shared = 9;\nint get(void);\nint main(void) { int r; r = get(); return r; }");
      ]
  in
  let p = F.Typecheck.elab_program ast in
  match F.Interp.run p with
  | F.Interp.Finished -> ()
  | F.Interp.Error (k, _) -> Alcotest.failf "link-run error %a" F.Interp.pp_error_kind k

let test_link_duplicate_function_rejected () =
  try
    ignore
      (F.Linker.parse_and_link
         [ ("a.c", "int f(void) { return 1; }"); ("b.c", "int f(void) { return 2; }") ]);
    Alcotest.fail "duplicate accepted"
  with F.Linker.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Concrete interpreter                                                *)
(* ------------------------------------------------------------------ *)

let run_expect_value src name expected =
  let p = compile src in
  let got = ref None in
  let on_tick st =
    got := F.Interp.read_global_scalar st name
  in
  (match F.Interp.run ~max_ticks:1 ~on_tick p with
  | F.Interp.Finished -> ()
  | F.Interp.Error (k, _) -> Alcotest.failf "error %a" F.Interp.pp_error_kind k);
  match !got with
  | Some (F.Interp.Vint n) -> Alcotest.(check int) name expected n
  | _ -> Alcotest.failf "global %s not an int" name

let test_interp_arith () =
  run_expect_value
    "int g;\nint main(void) { g = (7 * 3) % 5 + (20 >> 2); __astree_wait_for_clock(); return 0; }"
    "g" 6

let test_interp_div_by_zero () =
  let p = compile "int main(void) { int x; int y; x = 0; y = 5 / x; return y; }" in
  match F.Interp.run p with
  | F.Interp.Error (F.Interp.Div_by_zero, _) -> ()
  | _ -> Alcotest.fail "division by zero not detected"

let test_interp_overflow () =
  let p =
    compile
      "int main(void) { int x; x = 2147483647; x = x + 1; return x; }"
  in
  match F.Interp.run p with
  | F.Interp.Error (F.Interp.Int_overflow, _) -> ()
  | _ -> Alcotest.fail "overflow not detected"

let test_interp_oob () =
  let p =
    compile "int t[3];\nint main(void) { int i; i = 5; t[i] = 1; return 0; }"
  in
  match F.Interp.run p with
  | F.Interp.Error (F.Interp.Out_of_bounds, _) -> ()
  | _ -> Alcotest.fail "out-of-bounds not detected"

let test_interp_clock_stops () =
  let p =
    compile "int n;\nint main(void) { n = 0; while (1) { n = n + 1; __astree_wait_for_clock(); } return 0; }"
  in
  match F.Interp.run ~max_ticks:10 p with
  | F.Interp.Finished -> ()
  | F.Interp.Error (k, _) -> Alcotest.failf "error %a" F.Interp.pp_error_kind k

let test_interp_volatile_input () =
  let p =
    compile
      "volatile float s;\nfloat copy;\nint main(void) { __astree_input_range(s, 1.0, 3.0); copy = s; __astree_wait_for_clock(); return 0; }"
  in
  let seen = ref None in
  let on_tick st = seen := F.Interp.read_global_scalar st "copy" in
  (match F.Interp.run ~max_ticks:1 ~on_tick ~input:(fun _ -> 2.5) p with
  | F.Interp.Finished -> ()
  | F.Interp.Error (k, _) -> Alcotest.failf "error %a" F.Interp.pp_error_kind k);
  match !seen with
  | Some (F.Interp.Vfloat f) ->
      Alcotest.(check bool) "value" true (Float.abs (f -. 2.5) < 1e-6)
  | _ -> Alcotest.fail "copy not set"

(* robustness: random printable soup must either parse or raise the
   frontend's own exceptions, never crash *)
let prop_frontend_total =
  QCheck.Test.make ~name:"frontend is total on garbage" ~count:300
    QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.printable)
    (fun src ->
      match
        let ast = F.Parser.parse_string ~file:"<fuzz>" src in
        F.Typecheck.elab_program ast
      with
      | _ -> true
      | exception (F.Lexer.Error _ | F.Parser.Error _ | F.Typecheck.Error _
                  | F.Preproc.Error _) ->
          true)

(* and C-looking soup assembled from plausible tokens *)
let prop_frontend_total_tokens =
  QCheck.Test.make ~name:"frontend is total on token soup" ~count:300
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 60)
           (oneofl
              [ "int"; "float"; "if"; "else"; "while"; "("; ")"; "{"; "}";
                "x"; "y"; "f"; "1"; "2.5f"; "+"; "*"; "/"; "="; ";"; ",";
                "["; "]"; "&"; "return"; "void"; "struct"; "=="; "<" ])))
    (fun toks ->
      let src = String.concat " " toks in
      match
        let ast = F.Parser.parse_string ~file:"<fuzz>" src in
        F.Typecheck.elab_program ast
      with
      | _ -> true
      | exception (F.Lexer.Error _ | F.Parser.Error _ | F.Typecheck.Error _
                  | F.Preproc.Error _) ->
          true)

let suite =
  [
    Alcotest.test_case "lex numbers" `Quick test_lex_numbers;
    Alcotest.test_case "lex operators" `Quick test_lex_operators;
    Alcotest.test_case "lex comments/locations" `Quick test_lex_comments_and_locs;
    Alcotest.test_case "lex chars/strings" `Quick test_lex_char_string;
    Alcotest.test_case "preproc object macro" `Quick test_preproc_object_macro;
    Alcotest.test_case "preproc function macro" `Quick test_preproc_function_macro;
    Alcotest.test_case "preproc conditionals" `Quick test_preproc_conditionals;
    Alcotest.test_case "preproc elif chain" `Quick test_preproc_elif_chain;
    Alcotest.test_case "preproc include" `Quick test_preproc_include;
    Alcotest.test_case "preproc self-recursion guard" `Quick test_preproc_no_self_recursion;
    Alcotest.test_case "preproc undef" `Quick test_preproc_undef;
    Alcotest.test_case "partition markers" `Quick test_partition_markers;
    Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
    Alcotest.test_case "precedence + folding" `Quick test_parse_precedence;
    Alcotest.test_case "enum + sizeof" `Quick test_enum_and_sizeof;
    Alcotest.test_case "typedef struct" `Quick test_typedef_struct;
    Alcotest.test_case "enum as a type" `Quick test_enum_as_type;
    Alcotest.test_case "array of structs" `Quick test_nested_struct_array;
    Alcotest.test_case "struct with array field" `Quick test_struct_with_array_field;
    Alcotest.test_case "for desugaring" `Quick test_for_desugar;
    Alcotest.test_case "switch desugaring" `Quick test_switch_desugar;
    Alcotest.test_case "condition purification" `Quick test_side_effect_purification;
    Alcotest.test_case "static locals hoisted" `Quick test_static_locals_hoisted;
    Alcotest.test_case "recursion rejected" `Quick test_reject_recursion_at_analysis;
    Alcotest.test_case "goto rejected" `Quick test_reject_unknown_constructs;
    Alcotest.test_case "call-by-reference" `Quick test_array_param_by_ref;
    Alcotest.test_case "unused globals removed" `Quick test_unused_global_removal;
    Alcotest.test_case "constant arrays folded" `Quick test_const_array_folding;
    Alcotest.test_case "constant conditions pruned" `Quick test_constant_condition_pruning;
    Alcotest.test_case "link two files" `Quick test_link_two_files;
    Alcotest.test_case "duplicate function rejected" `Quick test_link_duplicate_function_rejected;
    Alcotest.test_case "interp arithmetic" `Quick test_interp_arith;
    Alcotest.test_case "interp division by zero" `Quick test_interp_div_by_zero;
    Alcotest.test_case "interp overflow" `Quick test_interp_overflow;
    Alcotest.test_case "interp out-of-bounds" `Quick test_interp_oob;
    Alcotest.test_case "interp clock stop" `Quick test_interp_clock_stops;
    Alcotest.test_case "interp volatile input" `Quick test_interp_volatile_input;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_frontend_total; prop_frontend_total_tokens ]
