(* Multi-task interference analysis: taskmodel extraction, interference
   map algebra, outer-fixpoint convergence and soundness against the
   concrete-interleaving oracle. *)

module C = Astree_core
module D = Astree_domains
module F = Astree_frontend
module G = Astree_gen
module P = Astree_parallel
module Conc = Astree_conc

let compile src =
  let ast = F.Parser.parse_string ~file:"<t>" src in
  let p = F.Typecheck.elab_program ast in
  fst (F.Simplify.run p)

(* ------------------------------------------------------------------ *)
(* Interference map algebra                                            *)
(* ------------------------------------------------------------------ *)

let k1 = (1, [])
let k2 = (2, [ C.Cell.Selem 0 ])

let test_map_ops () =
  let m1 = [ (k1, D.Itv.int_range 0 5) ] in
  let m2 = [ (k1, D.Itv.int_range 3 9); (k2, D.Itv.int_range 1 1) ] in
  let j = Conc.Interference.join m1 m2 in
  Alcotest.(check bool) "join upper-bounds both" true
    (Conc.Interference.subset m1 j && Conc.Interference.subset m2 j);
  Alcotest.(check int) "join cardinal" 2 (Conc.Interference.cardinal j);
  Alcotest.(check bool) "subset reflexive" true
    (Conc.Interference.subset j j);
  Alcotest.(check bool) "strict subset" false (Conc.Interference.subset j m1);
  let w = Conc.Interference.widen m1 m2 in
  Alcotest.(check bool) "widening upper-bounds the join" true
    (Conc.Interference.subset j w);
  (* widening is idempotent once stable *)
  Alcotest.(check bool) "stable under repeat" true
    (Conc.Interference.equal w (Conc.Interference.widen w w));
  Alcotest.(check bool) "digest distinguishes maps" true
    (Conc.Interference.digest m1 <> Conc.Interference.digest m2);
  let tbl = Conc.Interference.to_table m2 in
  Alcotest.(check bool) "table round-trip" true
    (Conc.Interference.equal m2 (Conc.Interference.of_table tbl))

(* ------------------------------------------------------------------ *)
(* Task model                                                          *)
(* ------------------------------------------------------------------ *)

let src_two_tasks =
  {|
int g;
int h;
void t1(void) { while (1) { g = g + 1; __astree_wait_for_clock(); } }
void t2(void) { while (1) { h = g; __astree_wait_for_clock(); } }
int main(void) { while (1) { __astree_wait_for_clock(); } }
|}

let test_taskmodel () =
  let p = compile src_two_tasks in
  let tm = Conc.Taskmodel.build p [ "t1"; "t2" ] in
  Alcotest.(check (list string))
    "shared = written by one, read by another" [ "g" ]
    (List.map (fun (v : F.Tast.var) -> v.F.Tast.v_name)
       tm.Conc.Taskmodel.tm_shared);
  Alcotest.check_raises "unknown task rejected"
    (Invalid_argument "Taskmodel: unknown task \"nope\"") (fun () ->
      ignore (Conc.Taskmodel.build p [ "t1"; "nope" ]));
  Alcotest.check_raises "single task rejected"
    (Invalid_argument "Taskmodel: a multi-task program needs at least two tasks")
    (fun () -> ignore (Conc.Taskmodel.build p [ "t1" ]))

(* ------------------------------------------------------------------ *)
(* Fixpoint: precision and soundness on the canonical race            *)
(* ------------------------------------------------------------------ *)

let ring_src ~racy =
  Fmt.str
    {|
volatile int raw;
int chan;
const int conv[12] = {0,1,2,3,4,5,6,7,8,9,10,11};
int out;
void prod(void) { while (1) { %s __astree_wait_for_clock(); } }
void cons(void) { while (1) { out = conv[chan]; __astree_wait_for_clock(); } }
int main(void) {
  __astree_input_range(raw, 0, 1000);
  while (1) { __astree_wait_for_clock(); }
}
|}
    (if racy then "chan = raw; chan = chan % 12;" else "chan = raw % 12;")

let has_oob (alarms : C.Alarm.t list) =
  List.exists
    (fun (a : C.Alarm.t) -> a.C.Alarm.a_kind = C.Alarm.Out_of_bounds)
    alarms

let test_ring_precision () =
  let tasks = [ "prod"; "cons" ] in
  let safe = Conc.Fixpoint.analyze ~tasks (compile (ring_src ~racy:false)) in
  Alcotest.(check bool) "safe ring: no out-of-bounds" false
    (has_oob safe.Conc.Fixpoint.c_result.C.Analysis.r_alarms);
  Alcotest.(check bool) "safe ring stabilizes" true
    safe.Conc.Fixpoint.c_stabilized;
  let racy = Conc.Fixpoint.analyze ~tasks (compile (ring_src ~racy:true)) in
  Alcotest.(check bool) "racy ring: out-of-bounds alarmed" true
    (has_oob racy.Conc.Fixpoint.c_result.C.Analysis.r_alarms);
  Alcotest.(check (list string))
    "chan is the shared variable" [ "chan" ] racy.Conc.Fixpoint.c_shared

let test_ring_oracle () =
  let p = compile (ring_src ~racy:true) in
  let tasks = [ "prod"; "cons" ] in
  let r = Conc.Fixpoint.analyze ~tasks p in
  let errs =
    Conc.Oracle.run_schedules ~max_ticks:50 ~schedules:200 ~seed:7 ~tasks p
  in
  (* the race must actually fire concretely on some schedule — otherwise
     this test is vacuous *)
  Alcotest.(check bool) "oracle exhibits the race" true (errs <> []);
  Alcotest.(check (list string)) "every concrete error is alarmed" []
    (List.map
       (fun (k, l) -> Fmt.str "%a@%a" F.Interp.pp_error_kind k F.Loc.pp l)
       (Conc.Oracle.uncovered r.Conc.Fixpoint.c_result.C.Analysis.r_alarms
          errs))

(* ------------------------------------------------------------------ *)
(* Fixpoint: widening and termination                                  *)
(* ------------------------------------------------------------------ *)

(* Two tasks feeding each other an unbounded ramp: without widening the
   interference maps grow by one every round. *)
let src_ramp =
  {|
int x;
int y;
void t1(void) { while (1) { x = y + 1; __astree_wait_for_clock(); } }
void t2(void) { while (1) { y = x + 1; __astree_wait_for_clock(); } }
int main(void) { while (1) { __astree_wait_for_clock(); } }
|}

let test_ramp_terminates () =
  let r = Conc.Fixpoint.analyze ~tasks:[ "t1"; "t2" ] (compile src_ramp) in
  Alcotest.(check bool) "stabilized" true r.Conc.Fixpoint.c_stabilized;
  Alcotest.(check bool)
    (Fmt.str "converged in %d rounds (<= 5)" r.Conc.Fixpoint.c_rounds)
    true
    (r.Conc.Fixpoint.c_rounds <= 5);
  Alcotest.(check (list string))
    "both ramp variables shared" [ "x"; "y" ] r.Conc.Fixpoint.c_shared

let test_generated_converge () =
  List.iter
    (fun seed ->
      let g =
        G.Generator.generate_tasks
          { G.Generator.default with seed; target_lines = 120; bug_ratio = 0.5 }
          ~tasks:3
      in
      let p = compile g.G.Generator.source in
      let r =
        Conc.Fixpoint.analyze ~tasks:g.G.Generator.task_fns p
      in
      Alcotest.(check bool)
        (Fmt.str "seed %d stabilized in %d rounds" seed r.Conc.Fixpoint.c_rounds)
        true
        (r.Conc.Fixpoint.c_stabilized && r.Conc.Fixpoint.c_rounds <= 5))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Differential oracle over generated families                         *)
(* ------------------------------------------------------------------ *)

let test_differential_families () =
  let uncovered = ref [] in
  let concrete_hits = ref 0 in
  for seed = 1 to 10 do
    let g =
      G.Generator.generate_tasks
        {
          G.Generator.default with
          seed;
          target_lines = 100;
          bug_ratio = (if seed mod 2 = 0 then 1.0 else 0.0);
        }
        ~tasks:2
    in
    let p = compile g.G.Generator.source in
    let tasks = g.G.Generator.task_fns in
    let r = Conc.Fixpoint.analyze ~tasks p in
    let errs =
      Conc.Oracle.run_schedules ~max_ticks:40 ~schedules:60 ~seed p ~tasks
    in
    if errs <> [] then incr concrete_hits;
    List.iter
      (fun e ->
        uncovered :=
          Fmt.str "seed %d: %a@%a" seed F.Interp.pp_error_kind (fst e) F.Loc.pp
            (snd e)
          :: !uncovered)
      (Conc.Oracle.uncovered r.Conc.Fixpoint.c_result.C.Analysis.r_alarms errs)
  done;
  Alcotest.(check (list string))
    "concrete interleaving errors are covered by alarms" [] !uncovered;
  Alcotest.(check bool) "some racy member fails concretely" true
    (!concrete_hits > 0)

(* ------------------------------------------------------------------ *)
(* Parallel dispatch parity                                            *)
(* ------------------------------------------------------------------ *)

let test_jobs_parity () =
  let g =
    G.Generator.generate_tasks
      { G.Generator.default with seed = 5; target_lines = 150; bug_ratio = 0.5 }
      ~tasks:4
  in
  let p = compile g.G.Generator.source in
  let tasks = g.G.Generator.task_fns in
  let r1 = Conc.Fixpoint.analyze ~cfg:C.Config.default ~tasks p in
  let r4 =
    Conc.Fixpoint.analyze
      ~cfg:{ C.Config.default with C.Config.jobs = 4 }
      ~tasks p
  in
  Alcotest.(check string) "-j1 and -j4 fingerprints agree"
    (P.Merge.fingerprint r1.Conc.Fixpoint.c_result)
    (P.Merge.fingerprint r4.Conc.Fixpoint.c_result);
  Alcotest.(check int) "same round count" r1.Conc.Fixpoint.c_rounds
    r4.Conc.Fixpoint.c_rounds

(* ------------------------------------------------------------------ *)
(* Generator: determinism and markers                                  *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  let cfg =
    { G.Generator.default with seed = 11; target_lines = 200; bug_ratio = 0.4 }
  in
  let a = G.Generator.generate_tasks cfg ~tasks:3 in
  let b = G.Generator.generate_tasks cfg ~tasks:3 in
  Alcotest.(check string) "byte-identical regeneration" a.G.Generator.source
    b.G.Generator.source;
  Alcotest.(check (list string))
    "task marker matches task_fns" a.G.Generator.task_fns
    (F.Preproc.task_markers a.G.Generator.source);
  (* the sequential generator emits no marker *)
  Alcotest.(check (list string))
    "sequential member has no tasks" []
    (F.Preproc.task_markers
       (G.Generator.generate { cfg with G.Generator.bug_ratio = 0.0 })
         .G.Generator.source)

let suite =
  [
    Alcotest.test_case "interference map algebra" `Quick test_map_ops;
    Alcotest.test_case "taskmodel shared discovery" `Quick test_taskmodel;
    Alcotest.test_case "ring precision (safe vs racy)" `Quick
      test_ring_precision;
    Alcotest.test_case "ring race covered by alarms" `Quick test_ring_oracle;
    Alcotest.test_case "widening terminates the ramp" `Quick
      test_ramp_terminates;
    Alcotest.test_case "generated families converge" `Slow
      test_generated_converge;
    Alcotest.test_case "differential oracle over families" `Slow
      test_differential_families;
    Alcotest.test_case "-j1 / -j4 parity" `Slow test_jobs_parity;
    Alcotest.test_case "generator determinism + markers" `Quick
      test_generator_deterministic;
  ]
