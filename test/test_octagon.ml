(* Octagon domain tests (Sect. 6.2.2). *)

module F = Astree_frontend
module D = Astree_domains
module O = D.Octagon
module LF = D.Linear_form

let mkvar =
  let next = ref 1000 in
  fun name ->
    incr next;
    {
      F.Tast.v_id = !next;
      v_name = name;
      v_orig = name;
      v_ty = F.Ctypes.t_float;
      v_kind = F.Tast.Kglobal;
      v_volatile = false;
      v_loc = F.Loc.dummy;
    }

let no_oracle _ = (Float.neg_infinity, Float.infinity)

let bounded lo hi (v : F.Tast.var) (w : F.Tast.var) =
  if F.Tast.Var.equal v w then (lo, hi) else (Float.neg_infinity, Float.infinity)

let test_top_bot () =
  let x = mkvar "x" and y = mkvar "y" in
  let o = O.top [| x; y |] in
  Alcotest.(check bool) "top not bot" false (O.is_bot o);
  let b = O.bottom [| x; y |] in
  Alcotest.(check bool) "bottom" true (O.is_bot b);
  Alcotest.(check bool) "bot subset top" true (O.subset b o);
  Alcotest.(check bool) "top not subset bot" false (O.subset o b)

let test_set_get_bounds () =
  let x = mkvar "x" and y = mkvar "y" in
  let o = O.top [| x; y |] in
  O.set_bounds o x (-2.0, 5.0);
  match O.get_bounds o x with
  | Some (lo, hi) ->
      Alcotest.(check bool) "lo" true (lo <= -2.0 && lo >= -2.0001);
      Alcotest.(check bool) "hi" true (hi >= 5.0 && hi <= 5.0001)
  | None -> Alcotest.fail "no bounds"

let test_diff_constraint_closure () =
  let x = mkvar "x" and y = mkvar "y" in
  let o = O.top [| x; y |] in
  O.set_bounds o y (0.0, 10.0);
  O.add_diff_le o x y 3.0 (* x - y <= 3 *);
  O.close o;
  (match O.get_bounds o x with
  | Some (_, hi) -> Alcotest.(check bool) "x <= 13" true (hi <= 13.001)
  | None -> Alcotest.fail "no bounds");
  match O.get_diff_bounds o x y with
  | Some (_, hi) -> Alcotest.(check bool) "diff hi" true (hi <= 3.001)
  | None -> Alcotest.fail "no diff bounds"

let test_sum_constraint () =
  let x = mkvar "x" and y = mkvar "y" in
  let o = O.top [| x; y |] in
  O.add_sum_le o x y 10.0;
  O.set_bounds o y (2.0, 4.0);
  O.close o;
  match O.get_bounds o x with
  | Some (_, hi) -> Alcotest.(check bool) "x <= 8" true (hi <= 8.001)
  | None -> Alcotest.fail "no bounds"

let test_emptiness_detection () =
  let x = mkvar "x" and y = mkvar "y" in
  let o = O.top [| x; y |] in
  O.add_diff_le o x y (-5.0) (* x - y <= -5, so x < y *);
  O.add_diff_le o y x (-5.0) (* y - x <= -5, so y < x: contradiction *);
  O.close o;
  Alcotest.(check bool) "empty" true (O.is_bot o)

let test_forget () =
  let x = mkvar "x" and y = mkvar "y" in
  let o = O.top [| x; y |] in
  O.set_bounds o x (0.0, 1.0);
  O.add_sum_le o x y 10.0;
  O.close o;
  O.forget o x;
  match O.get_bounds o x with
  | Some (lo, hi) ->
      Alcotest.(check bool) "unbounded" true
        (lo = Float.neg_infinity && hi = Float.infinity)
  | None -> Alcotest.fail "x missing"

let test_join_hull () =
  let x = mkvar "x" in
  let o1 = O.top [| x |] and o2 = O.top [| x |] in
  O.set_bounds o1 x (0.0, 1.0);
  O.set_bounds o2 x (5.0, 8.0);
  let j = O.join o1 o2 in
  match O.get_bounds j x with
  | Some (lo, hi) ->
      Alcotest.(check bool) "hull" true (lo <= 0.0 && hi >= 8.0 && hi < 9.0)
  | None -> Alcotest.fail "missing"

let test_meet () =
  let x = mkvar "x" in
  let o1 = O.top [| x |] and o2 = O.top [| x |] in
  O.set_bounds o1 x (0.0, 10.0);
  O.set_bounds o2 x (5.0, 20.0);
  let m = O.meet o1 o2 in
  match O.get_bounds m x with
  | Some (lo, hi) ->
      Alcotest.(check bool) "meet" true (lo >= 4.99 && hi <= 10.01)
  | None -> Alcotest.fail "missing"

let test_assign_relational () =
  (* the paper's example: after r := v - lim and the guard r >= 1,
     closure must bound lim from v's range *)
  let r = mkvar "r" and v = mkvar "v" and lim = mkvar "lim" in
  let o = O.top [| r; v; lim |] in
  let oracle w =
    if F.Tast.Var.equal w v then (-100.0, 100.0)
    else if F.Tast.Var.equal w lim then (-100.0, 100.0)
    else (Float.neg_infinity, Float.infinity)
  in
  O.assign o oracle r LF.(sub (of_var v) (of_var lim));
  O.guard_le_zero o oracle LF.(sub (of_interval 1.0 1.0) (of_var r));
  match O.get_bounds o lim with
  | Some (_, hi) -> Alcotest.(check bool) "lim <= 99" true (hi <= 99.01)
  | None -> Alcotest.fail "missing"

let test_assign_self_update () =
  let x = mkvar "x" in
  let o = O.top [| x |] in
  O.set_bounds o x (0.0, 10.0);
  O.close o;
  (* x := x + 1 evaluated through the octagon's own bounds *)
  O.assign o no_oracle x LF.(add (of_var x) (of_interval 1.0 1.0));
  match O.get_bounds o x with
  | Some (lo, hi) ->
      Alcotest.(check bool) "shifted" true (lo >= 0.99 && hi <= 11.01)
  | None -> Alcotest.fail "missing"

let test_widen_thresholds () =
  let x = mkvar "x" in
  let o1 = O.top [| x |] and o2 = O.top [| x |] in
  O.set_bounds o1 x (0.0, 10.0);
  O.set_bounds o2 x (0.0, 12.0);
  (* the octagon uses the standard Mine widening: an unstable bound jumps
     straight to +oo (constraints are rebuilt by the transfer functions,
     so genuine invariants are re-derived on the next iterate) *)
  let w = O.widen ~thresholds:(D.Thresholds.of_list [ 100.0 ]) o1 o2 in
  (match O.get_bounds w x with
  | Some (lo, hi) ->
      Alcotest.(check bool) "unstable side to +oo" true (hi = Float.infinity);
      Alcotest.(check bool) "stable side kept" true (lo >= -0.001)
  | None -> Alcotest.fail "missing");
  (* a stable bound is untouched *)
  let o3 = O.top [| x |] in
  O.set_bounds o3 x (2.0, 8.0);
  let w2 = O.widen ~thresholds:D.Thresholds.default o1 o3 in
  match O.get_bounds w2 x with
  | Some (_, hi) -> Alcotest.(check bool) "kept" true (hi <= 10.001)
  | None -> Alcotest.fail "missing"

let test_widen_stable_side () =
  let x = mkvar "x" in
  let o1 = O.top [| x |] and o2 = O.top [| x |] in
  O.set_bounds o1 x (0.0, 10.0);
  O.set_bounds o2 x (2.0, 8.0);
  let w = O.widen ~thresholds:D.Thresholds.default o1 o2 in
  Alcotest.(check bool) "stable" true (O.subset o1 w && O.subset o2 w)

let test_guard_two_vars () =
  let x = mkvar "x" and y = mkvar "y" in
  let o = O.top [| x; y |] in
  O.set_bounds o y (0.0, 5.0);
  O.close o;
  (* guard x + y <= 3 *)
  O.guard_le_zero o (bounded 0.0 5.0 y)
    LF.(sub (add (of_var x) (of_var y)) (of_interval 3.0 3.0));
  match O.get_bounds o x with
  | Some (_, hi) -> Alcotest.(check bool) "x <= 3" true (hi <= 3.01)
  | None -> Alcotest.fail "missing"

let test_count_constraints () =
  let x = mkvar "x" and y = mkvar "y" in
  let o = O.top [| x; y |] in
  O.add_sum_le o x y 5.0;
  O.add_diff_le o x y 2.0;
  let sums, diffs = O.count_constraints o in
  Alcotest.(check bool) "counts" true (sums >= 1 && diffs >= 1)

(* property: closure is sound on random boxes + constraints, checked by
   sampling concrete points *)
let prop_closure_sound =
  QCheck.Test.make ~name:"strong closure preserves concrete points"
    QCheck.(
      quad (pair (float_range (-50.) 0.) (float_range 0. 50.))
        (pair (float_range (-50.) 0.) (float_range 0. 50.))
        (float_range (-20.) 20.) (float_range (-20.) 20.))
    (fun ((xlo, xhi), (ylo, yhi), c, px) ->
      let x = mkvar "x" and y = mkvar "y" in
      let o = O.top [| x; y |] in
      O.set_bounds o x (xlo, xhi);
      O.set_bounds o y (ylo, yhi);
      O.add_diff_le o x y c;
      O.close o;
      (* pick a concrete point satisfying the constraints, if any *)
      let px = Float.max xlo (Float.min xhi px) in
      let py_min = Float.max ylo (px -. c) in
      if py_min > yhi then true (* no witness on this slice *)
      else
        let py = py_min in
        if O.is_bot o then false
        else
          match (O.get_bounds o x, O.get_bounds o y) with
          | Some (lx, hx), Some (ly, hy) ->
              lx <= px && px <= hx && ly <= py && py <= hy
          | _ -> false)

(* ------------------------------------------------------------------ *)
(* Incremental closure (PR 3)                                          *)
(* ------------------------------------------------------------------ *)

(* Random DBMs + random touched-variable updates: [close_incremental]
   must agree with the full [close] — same matrix, same bottom
   detection.  All generated bounds are small integers, so every bound
   computed by either algorithm is a dyadic rational far inside the
   binary64 range and the directed-rounding arithmetic is EXACT: both
   algorithms then compute the unique real strong closure, and the
   comparison below is bit-for-bit. *)
let prop_incremental_equiv =
  let gen =
    QCheck.Gen.(
      int_range 3 5 >>= fun n ->
      let var = int_bound (n - 1) in
      let base_c =
        quad (int_bound 3) var var (pair (int_range (-20) 20) (int_range (-20) 20))
      in
      let upd =
        quad (int_bound 4) var var (pair (int_range (-8) 8) (int_range (-8) 8))
      in
      list_size (int_range 0 12) base_c >>= fun base ->
      list_size (int_range 1 2) upd >>= fun upds -> return (n, base, upds))
  in
  QCheck.Test.make ~count:500
    ~name:"close_incremental = full close (exact dyadic inputs)"
    (QCheck.make gen)
    (fun (n, base, upds) ->
      let pack = Array.init n (fun i -> mkvar (Printf.sprintf "v%d" i)) in
      let o = O.top pack in
      List.iter
        (fun (k, i, j, (c, d)) ->
          let x = pack.(i) and y = pack.(j) in
          let c = float_of_int c and d = float_of_int d in
          match k with
          | 0 -> O.set_bounds o x (Float.min c d, Float.max c d)
          | 1 -> O.add_diff_le o x y c
          | 2 -> O.add_sum_le o x y c
          | _ -> O.add_neg_sum_le o x y c)
        base;
      O.close o;
      let a = O.copy o and b = O.copy o in
      let apply t (k, i, j, (c, d)) =
        let x = pack.(i) and y = pack.(j) in
        let cf = float_of_int c and df = float_of_int d in
        match k with
        | 0 -> O.set_bounds t x (Float.min cf df, Float.max cf df)
        | 1 -> O.add_diff_le t x y cf
        | 2 -> O.add_sum_le t x y cf
        | 3 -> O.shift_var t i (Float.min cf df) (Float.max cf df)
        | _ -> O.forget t x
      in
      List.iter (apply a) upds;
      List.iter (apply b) upds;
      O.close_incremental a;
      (* the full cubic pass on an identical copy *)
      O.close b;
      O.is_bot a = O.is_bot b
      && (O.is_bot a || (a.O.m = b.O.m && a.O.closure = O.Closed)))

(* Deterministic instance pinning the genuinely incremental path (one
   dirty variable out of four, below the full-closure fallback
   threshold). *)
let test_incremental_path () =
  let pack = Array.init 4 (fun i -> mkvar (Printf.sprintf "w%d" i)) in
  let o = O.top pack in
  O.set_bounds o pack.(0) (0.0, 10.0);
  O.add_diff_le o pack.(0) pack.(1) 3.0;
  O.add_sum_le o pack.(2) pack.(3) 7.0;
  O.close o;
  let a = O.copy o and b = O.copy o in
  O.add_diff_le a pack.(2) pack.(0) 1.0;
  O.add_diff_le b pack.(2) pack.(0) 1.0;
  let incr0 = D.Profile.counter D.Profile.oct_close_incr in
  O.close_incremental a;
  Alcotest.(check int)
    "incremental algorithm used" (incr0 + 1)
    (D.Profile.counter D.Profile.oct_close_incr);
  O.close b;
  Alcotest.(check bool) "same bottom" (O.is_bot a) (O.is_bot b);
  Alcotest.(check bool) "same matrix" true (a.O.m = b.O.m)

(* Counter-based regression: the join of two closed octagons is closed
   by construction and must perform zero closure work — neither at join
   time nor when a closure is next requested on the result. *)
let test_join_zero_closure_work () =
  let x = mkvar "jx" and y = mkvar "jy" and z = mkvar "jz" in
  let pack = [| x; y; z |] in
  let a = O.top pack and b = O.top pack in
  O.set_bounds a x (0.0, 10.0);
  O.add_diff_le a x y 3.0;
  O.close a;
  O.set_bounds b x (2.0, 8.0);
  O.add_sum_le b y z 5.0;
  O.close b;
  Alcotest.(check bool) "a closed" true (a.O.closure = O.Closed);
  Alcotest.(check bool) "b closed" true (b.O.closure = O.Closed);
  let full0 = D.Profile.counter D.Profile.oct_close_full in
  let incr0 = D.Profile.counter D.Profile.oct_close_incr in
  let j = O.join a b in
  Alcotest.(check int) "join: no full closure" full0
    (D.Profile.counter D.Profile.oct_close_full);
  Alcotest.(check int) "join: no incremental closure" incr0
    (D.Profile.counter D.Profile.oct_close_incr);
  Alcotest.(check bool) "join of closed is closed" true
    (j.O.closure = O.Closed);
  O.close_incremental j;
  Alcotest.(check int) "re-closing the join is free" full0
    (D.Profile.counter D.Profile.oct_close_full);
  Alcotest.(check int) "re-closing the join is free (incr)" incr0
    (D.Profile.counter D.Profile.oct_close_incr)

(* Widening results must stay unclosed (the classical termination
   condition), and the next closure request falls back to the full
   pass. *)
let test_widen_unclosed () =
  let x = mkvar "ux" and y = mkvar "uy" in
  let a = O.top [| x; y |] and b = O.top [| x; y |] in
  O.set_bounds a x (0.0, 10.0);
  O.close a;
  O.set_bounds b x (0.0, 12.0);
  O.close b;
  let w = O.widen ~thresholds:D.Thresholds.default a b in
  Alcotest.(check bool) "widen result unclosed" true
    (w.O.closure = O.Unclosed);
  let full0 = D.Profile.counter D.Profile.oct_close_full in
  O.close_incremental w;
  Alcotest.(check int) "unclosed falls back to full closure" (full0 + 1)
    (D.Profile.counter D.Profile.oct_close_full);
  Alcotest.(check bool) "then closed" true (w.O.closure = O.Closed)

let suite =
  [
    Alcotest.test_case "top/bottom" `Quick test_top_bot;
    Alcotest.test_case "set/get bounds" `Quick test_set_get_bounds;
    Alcotest.test_case "difference + closure" `Quick test_diff_constraint_closure;
    Alcotest.test_case "sum constraint" `Quick test_sum_constraint;
    Alcotest.test_case "emptiness" `Quick test_emptiness_detection;
    Alcotest.test_case "forget" `Quick test_forget;
    Alcotest.test_case "join hull" `Quick test_join_hull;
    Alcotest.test_case "meet" `Quick test_meet;
    Alcotest.test_case "relational assignment (paper ex.)" `Quick test_assign_relational;
    Alcotest.test_case "self-update assignment" `Quick test_assign_self_update;
    Alcotest.test_case "widening thresholds" `Quick test_widen_thresholds;
    Alcotest.test_case "widening stable" `Quick test_widen_stable_side;
    Alcotest.test_case "two-variable guard" `Quick test_guard_two_vars;
    Alcotest.test_case "constraint census" `Quick test_count_constraints;
    Alcotest.test_case "incremental closure path" `Quick test_incremental_path;
    Alcotest.test_case "join does zero closure work" `Quick
      test_join_zero_closure_work;
    Alcotest.test_case "widening stays unclosed" `Quick test_widen_unclosed;
  ]
  @ [
      QCheck_alcotest.to_alcotest prop_closure_sound;
      QCheck_alcotest.to_alcotest prop_incremental_equiv;
    ]
