(* Parallel-subsystem tests: the worker pool survives exceptions,
   crashes and timeouts; the deterministic merge reproduces the
   sequential collector's policy; and -j n analyses produce exactly the
   alarms, invariants and final states of -j 1 — including when workers
   are killed under foot. *)

module C = Astree_core
module F = Astree_frontend
module G = Astree_gen
module P = Astree_parallel
module R = Astree_robust

(* The pool unit tests below assert exact Ok/Error patterns, so they
   mask fault injection ([Faultsim.with_suppressed]): the suite stays
   green under a global ASTREE_FAULTS chaos run, while the equivalence
   tests keep the faults live — those must hold whatever is injected. *)
let no_faults = R.Faultsim.with_suppressed

(* force dispatch on the small programs used in tests *)
let with_min_stmts n k =
  let saved = !C.Iterator.par_min_stmts in
  C.Iterator.par_min_stmts := n;
  Fun.protect ~finally:(fun () -> C.Iterator.par_min_stmts := saved) k

let with_chaos k =
  Unix.putenv "ASTREE_PAR_CHAOS" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "ASTREE_PAR_CHAOS" "") k

(* ---------------- pool ---------------- *)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "job failed: %s" e

let test_pool_order () =
  no_faults @@ fun () ->
  P.Pool.with_pool ~jobs:3
    (fun x -> x * x)
    (fun pool ->
      let rs = P.Pool.map pool [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
      Alcotest.(check (list int))
        "squares in job order"
        [ 1; 4; 9; 16; 25; 36; 49; 64; 81; 100 ]
        (List.map ok_exn rs))

let test_pool_exception () =
  no_faults @@ fun () ->
  P.Pool.with_pool ~jobs:2
    (fun x -> if x = 3 then failwith "boom" else x + 1)
    (fun pool ->
      let rs = P.Pool.map pool [ 1; 2; 3; 4 ] in
      (match List.nth rs 2 with
      | Error e ->
          Alcotest.(check bool) "carries the message" true
            (String.length e > 0)
      | Ok _ -> Alcotest.fail "expected a failed job");
      Alcotest.(check int) "other jobs succeed" 3
        (List.length (List.filter Result.is_ok rs)))

let test_pool_crash_respawn () =
  no_faults @@ fun () ->
  P.Pool.with_pool ~jobs:2
    (fun x -> if x = 2 then Unix._exit 7 else 10 * x)
    (fun pool ->
      (match P.Pool.map pool [ 1; 2; 3 ] with
      | [ Ok 10; Error _; Ok 30 ] -> ()
      | _ -> Alcotest.fail "expected [Ok 10; Error _; Ok 30]");
      (* the dead worker was respawned: the pool keeps working *)
      Alcotest.(check bool) "usable after a crash" true
        (P.Pool.map pool [ 5; 6 ] = [ Ok 50; Ok 60 ]))

let test_pool_timeout () =
  no_faults @@ fun () ->
  P.Pool.with_pool ~jobs:2
    (fun x ->
      if x = 2 then Unix.sleepf 10.;
      x)
    (fun pool ->
      match P.Pool.map ~timeout:0.4 pool [ 1; 2; 3 ] with
      | [ Ok 1; Error e; Ok 3 ] ->
          Alcotest.(check bool) "reported as timeout" true
            (e = "worker timed out")
      | _ -> Alcotest.fail "expected only job 2 to time out")

(* ---------------- merge ---------------- *)

let loc line = F.Loc.make ~file:"t.c" ~line ~col:1

let al kind line msg : C.Alarm.t =
  { C.Alarm.a_kind = kind; a_loc = loc line; a_msg = msg; a_prov = None }

let test_merge_alarms () =
  let merged =
    P.Merge.alarms
      [
        [ al C.Alarm.Div_by_zero 9 "first"; al C.Alarm.Int_overflow 3 "a" ];
        [ al C.Alarm.Div_by_zero 9 "second"; al C.Alarm.Float_overflow 1 "b" ];
      ]
  in
  Alcotest.(check (list string))
    "sorted by location, first duplicate wins"
    [ "b@1"; "a@3"; "first@9" ]
    (List.map
       (fun (a : C.Alarm.t) ->
         Fmt.str "%s@%d" a.C.Alarm.a_msg a.C.Alarm.a_loc.F.Loc.line)
       merged)

let test_merge_states () =
  Alcotest.(check bool) "empty join is bottom" true
    (C.Astate.is_bot (P.Merge.join_states []));
  Alcotest.(check bool) "bottom is the unit" true
    (C.Astate.is_bot (P.Merge.join_states [ C.Astate.bottom; C.Astate.bottom ]))

(* ---------------- sequential equivalence ---------------- *)

let mini_fbw_src =
  (* tests run from the dune sandbox; walk up to the repository root *)
  lazy
    (let rec find dir depth =
       let cand = Filename.concat dir "examples/data/mini_fbw.c" in
       if Sys.file_exists cand then Some cand
       else if depth = 0 then None
       else find (Filename.dirname dir) (depth - 1)
     in
     match find (Sys.getcwd ()) 6 with
     | None -> None
     | Some path ->
         let ic = open_in_bin path in
         let s = really_input_string ic (in_channel_length ic) in
         close_in ic;
         Some s)

let with_mini_fbw k =
  match Lazy.force mini_fbw_src with
  | None -> Alcotest.skip ()
  | Some src -> k src

let compile_member (g : G.Generator.generated) =
  let p, _ = C.Analysis.compile [ ("m.c", g.G.Generator.source) ] in
  let cfg =
    {
      C.Config.default with
      C.Config.partitioned_functions = g.G.Generator.partition_fns;
    }
  in
  (cfg, p)

(* [-j jobs] must reproduce the sequential run exactly: same alarms,
   same census, same final-state assertions (one fingerprint covers
   all three). *)
let check_equiv ?(jobs = 4) ~name (cfg : C.Config.t) (p : F.Tast.program) =
  let seq = C.Analysis.analyze ~cfg:{ cfg with C.Config.jobs = 1 } p in
  let par = P.Scheduler.analyze ~cfg:{ cfg with C.Config.jobs = jobs } p in
  Alcotest.(check (list string))
    (name ^ ": same alarms")
    (List.map (Fmt.str "%a" C.Alarm.pp) seq.C.Analysis.r_alarms)
    (List.map (Fmt.str "%a" C.Alarm.pp) par.C.Analysis.r_alarms);
  Alcotest.(check string)
    (name ^ ": same fingerprint")
    (P.Merge.fingerprint seq) (P.Merge.fingerprint par)

let test_equiv_mini_fbw () =
  with_mini_fbw (fun src ->
      with_min_stmts 1 (fun () ->
          let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
          let cfg =
            {
              C.Config.default with
              C.Config.partitioned_functions = [ "select_gain" ];
            }
          in
          check_equiv ~name:"mini_fbw" cfg p))

let test_equiv_members () =
  with_min_stmts 1 (fun () ->
      List.iter
        (fun (seed, kloc, bug_ratio) ->
          let g =
            G.Generator.generate
              {
                G.Generator.default with
                G.Generator.seed;
                target_lines = int_of_float (kloc *. 1000.);
                bug_ratio;
              }
          in
          let cfg, p = compile_member g in
          check_equiv
            ~name:(Fmt.str "member seed=%d kloc=%.1f" seed kloc)
            cfg p)
        [ (1, 0.3, 0.); (7, 0.4, 0.15); (42, 0.6, 0.) ])

(* the registered driver routes Analysis.analyze through the pool *)
let test_registered_driver () =
  with_mini_fbw (fun src ->
      with_min_stmts 1 (fun () ->
          let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
          let cfg =
            {
              C.Config.default with
              C.Config.partitioned_functions = [ "select_gain" ];
            }
          in
          let seq = C.Analysis.analyze ~cfg p in
          P.Scheduler.register ();
          Fun.protect
            ~finally:(fun () -> C.Analysis.parallel_driver := None)
            (fun () ->
              let par =
                C.Analysis.analyze ~cfg:{ cfg with C.Config.jobs = 4 } p
              in
              Alcotest.(check string)
                "driver output identical"
                (P.Merge.fingerprint seq) (P.Merge.fingerprint par))))

(* a dispatcher that loses every job: the iterator recomputes every
   disjunct in-process and the result is still exact *)
let test_hook_all_lost () =
  with_mini_fbw (fun src ->
      with_min_stmts 1 (fun () ->
          let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
          let cfg =
            {
              C.Config.default with
              C.Config.partitioned_functions = [ "select_gain" ];
            }
          in
          let seq = C.Analysis.analyze ~cfg p in
          let dispatched = ref 0 in
          let ses = C.Transfer.new_session () in
          ses.C.Transfer.ses_par_hook <-
            Some
              (fun jobs ->
                dispatched := !dispatched + List.length jobs;
                List.map (fun _ -> None) jobs);
          let par = C.Analysis.analyze ~session:ses ~cfg p in
          Alcotest.(check bool)
            "the iterator did dispatch jobs" true (!dispatched > 0);
          Alcotest.(check string)
            "fallback result identical"
            (P.Merge.fingerprint seq) (P.Merge.fingerprint par)))

(* every worker self-kills on its first job (ASTREE_PAR_CHAOS): the
   crash -> respawn -> retry -> in-process-fallback ladder must still
   yield the sequential result *)
let test_equiv_under_chaos () =
  with_min_stmts 1 (fun () ->
      let g =
        G.Generator.generate
          { G.Generator.default with G.Generator.seed = 3; target_lines = 250 }
      in
      let cfg, p = compile_member g in
      let seq = C.Analysis.analyze ~cfg:{ cfg with C.Config.jobs = 1 } p in
      let par =
        with_chaos (fun () ->
            P.Scheduler.analyze ~cfg:{ cfg with C.Config.jobs = 2 } p)
      in
      Alcotest.(check string)
        "identical despite killed workers"
        (P.Merge.fingerprint seq) (P.Merge.fingerprint par))

(* ---------------- batch axis ---------------- *)

let test_batch_equiv () =
  let items =
    List.map
      (fun (seed, lines, label) ->
        let g =
          G.Generator.generate
            { G.Generator.default with G.Generator.seed; target_lines = lines }
        in
        let cfg =
          {
            C.Config.default with
            C.Config.partitioned_functions = g.G.Generator.partition_fns;
          }
        in
        P.Scheduler.batch_job ~label ~cfg
          (P.Scheduler.Bs_sources [ (label ^ ".c", g.G.Generator.source) ]))
      [ (11, 200, "m11"); (12, 250, "m12"); (13, 300, "m13") ]
  in
  let seq = List.map (fun bj -> P.Scheduler.run_batch_job bj) items in
  let par = P.Scheduler.analyze_batch ~jobs:3 items in
  Alcotest.(check (list string))
    "labels in job order" [ "m11"; "m12"; "m13" ] (List.map fst par);
  List.iter2
    (fun s (label, r) ->
      Alcotest.(check string)
        (label ^ ": batch result identical")
        (P.Merge.fingerprint s) (P.Merge.fingerprint r))
    seq par

(* ---------------- domains backend ---------------- *)

(* The OCaml 5 runtime forbids Unix.fork once any domain has {e ever}
   been spawned in the process (even after Domain.join), and this test
   binary still has fork-based suites to run (robust, server).  So
   every test that exercises the domains backend runs it inside a
   forked child — fork first, spawn domains second is the one legal
   order — and ships its observations back over a pipe. *)
let in_subprocess (f : unit -> string) : string =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      let code =
        match f () with
        | s ->
            let oc = Unix.out_channel_of_descr w in
            output_string oc s;
            flush oc;
            0
        | exception e ->
            prerr_endline ("domains subprocess: " ^ Printexc.to_string e);
            1
      in
      Unix._exit code
  | pid ->
      Unix.close w;
      let ic = Unix.in_channel_of_descr r in
      let buf = Buffer.create 256 in
      (try
         let chunk = Bytes.create 4096 in
         let rec drain () =
           let n = input ic chunk 0 (Bytes.length chunk) in
           if n > 0 then begin
             Buffer.add_subbytes buf chunk 0 n;
             drain ()
           end
         in
         drain ()
       with End_of_file -> ());
      close_in ic;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n -> Alcotest.failf "domains subprocess exited %d" n
      | _, _ -> Alcotest.fail "domains subprocess killed");
      Buffer.contents buf

let read_example name =
  let rec find dir depth =
    let cand = Filename.concat dir (Filename.concat "examples/data" name) in
    if Sys.file_exists cand then Some cand
    else if depth = 0 then None
    else find (Filename.dirname dir) (depth - 1)
  in
  match find (Sys.getcwd ()) 6 with
  | None -> None
  | Some path ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some s

(* Fork-vs-domains matrix: on every example program and at every -j,
   both backends reproduce the sequential fingerprint exactly.  Fork
   runs in-process; domains runs in a child (see above). *)
let test_backend_matrix () =
  with_min_stmts 1 @@ fun () ->
  no_faults @@ fun () ->
  List.iter
    (fun (name, parts) ->
      match read_example name with
      | None -> Alcotest.skip ()
      | Some src ->
          let p, _ = C.Analysis.compile [ (name, src) ] in
          let cfg =
            { C.Config.default with C.Config.partitioned_functions = parts }
          in
          let seq =
            P.Merge.fingerprint
              (C.Analysis.analyze ~cfg:{ cfg with C.Config.jobs = 1 } p)
          in
          List.iter
            (fun j ->
              let run backend =
                {
                  cfg with
                  C.Config.jobs = j;
                  par_backend = backend;
                }
              in
              let fk =
                P.Merge.fingerprint (P.Scheduler.analyze ~cfg:(run `Fork) p)
              in
              Alcotest.(check string)
                (Fmt.str "%s -j%d fork = seq" name j)
                seq fk;
              let dm =
                in_subprocess (fun () ->
                    P.Merge.fingerprint
                      (P.Scheduler.analyze ~cfg:(run `Domains) p))
              in
              Alcotest.(check string)
                (Fmt.str "%s -j%d domains = seq" name j)
                seq dm)
            [ 1; 2; 4 ])
    [
      ("mini_fbw.c", [ "select_gain" ]);
      ("filter_bank.c", []);
      ("buggy_demo.c", []);
    ]

(* Work stealing must not be observable in results: with pathologically
   uneven job sizes (one long job dealt to worker 0 whose queued
   siblings get stolen), the result order is the job order, twice in a
   row on the same pool. *)
let test_dompool_stealing () =
  let out =
    in_subprocess (fun () ->
        let spin n =
          let acc = ref 0 in
          for i = 1 to n do
            acc := (!acc + i) land 0xffff
          done;
          !acc
        in
        let work x =
          (* job 0 is ~1000x the others: worker 0 sits on it while its
             queue is drained by thieves *)
          ignore (spin (if x = 0 then 40_000_000 else 40_000));
          x * 10
        in
        let jobs = List.init 24 Fun.id in
        P.Dompool.with_pool ~jobs:4
          (fun () -> work)
          (fun pool ->
            let show rs =
              String.concat ","
                (List.map
                   (function Ok v -> string_of_int v | Error e -> "!" ^ e)
                   rs)
            in
            let r1 = show (P.Dompool.map pool jobs) in
            let r2 = show (P.Dompool.map pool jobs) in
            let steals =
              Astree_obs.Metrics.value (Astree_obs.Metrics.counter "par.steals")
            in
            Fmt.str "%s|%s|%d" r1 r2 steals))
  in
  match String.split_on_char '|' out with
  | [ r1; r2; steals ] ->
      let expect =
        String.concat "," (List.init 24 (fun i -> string_of_int (i * 10)))
      in
      Alcotest.(check string) "run 1 in job order" expect r1;
      Alcotest.(check string) "run 2 in job order" expect r2;
      Alcotest.(check bool) "thieves did steal" true (int_of_string steals > 0)
  | _ -> Alcotest.failf "unexpected subprocess output: %s" out

(* A raising job comes back as Error without wedging the pool; an
   abandoned epoch's stragglers never corrupt the next map. *)
let test_dompool_errors () =
  let out =
    in_subprocess (fun () ->
        P.Dompool.with_pool ~jobs:3
          (fun () x -> if x = 2 then failwith "boom" else x + 1)
          (fun pool ->
            let rs = P.Dompool.map pool [ 1; 2; 3; 4 ] in
            let again = P.Dompool.map pool [ 5; 6 ] in
            Fmt.str "%s|%s"
              (String.concat ","
                 (List.map
                    (function Ok v -> string_of_int v | Error _ -> "E")
                    rs))
              (String.concat ","
                 (List.map
                    (function Ok v -> string_of_int v | Error _ -> "E")
                    again))))
  in
  Alcotest.(check string) "errors isolated, pool reusable" "2,E,4,5|6,7" out

(* The batch axis on the domains backend also reproduces sequential
   results, label order preserved. *)
let test_batch_domains () =
  let mk (seed, label) =
    let g =
      G.Generator.generate
        { G.Generator.default with G.Generator.seed; target_lines = 150 }
    in
    P.Scheduler.batch_job ~label
      (P.Scheduler.Bs_sources [ (label ^ ".c", g.G.Generator.source) ])
  in
  let items = List.map mk [ (31, "x"); (32, "y"); (33, "z") ] in
  let seq =
    List.map
      (fun bj -> P.Merge.fingerprint (P.Scheduler.run_batch_job bj))
      items
  in
  let out =
    in_subprocess (fun () ->
        let par = P.Scheduler.analyze_batch ~jobs:3 ~backend:`Domains items in
        String.concat "|"
          (List.map (fun (l, r) -> l ^ ":" ^ P.Merge.fingerprint r) par))
  in
  Alcotest.(check string)
    "domains batch = sequential"
    (String.concat "|"
       (List.map2 (fun bj fp -> bj.P.Scheduler.bj_label ^ ":" ^ fp) items seq))
    out

(* Backend resolution: chaos/fault injection and budgets pin dispatch
   to the fork pool whatever was requested — injection points and job
   kills only exist in fork workers. *)
let test_backend_resolution () =
  no_faults (fun () ->
      Alcotest.(check bool) "explicit fork stays fork" true
        (P.Scheduler.effective_backend `Fork = `Fork);
      Alcotest.(check bool) "explicit domains stays domains" true
        (P.Scheduler.effective_backend `Domains = `Domains));
  with_chaos (fun () ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "chaos forces fork" true
            (P.Scheduler.effective_backend b = `Fork))
        [ `Fork; `Domains; `Auto ])

let test_batch_chaos_fallback () =
  let items =
    List.map
      (fun (seed, label) ->
        let g =
          G.Generator.generate
            { G.Generator.default with G.Generator.seed; target_lines = 150 }
        in
        P.Scheduler.batch_job ~label
          (P.Scheduler.Bs_sources [ (label ^ ".c", g.G.Generator.source) ]))
      [ (21, "a"); (22, "b") ]
  in
  let seq = List.map (fun bj -> P.Scheduler.run_batch_job bj) items in
  let par = with_chaos (fun () -> P.Scheduler.analyze_batch ~jobs:2 items) in
  List.iter2
    (fun s (label, r) ->
      Alcotest.(check string)
        (label ^ ": identical despite chaos")
        (P.Merge.fingerprint s) (P.Merge.fingerprint r))
    seq par

let suite =
  [
    Alcotest.test_case "pool: ordered map" `Quick test_pool_order;
    Alcotest.test_case "pool: exception -> Error" `Quick test_pool_exception;
    Alcotest.test_case "pool: crash + respawn" `Quick test_pool_crash_respawn;
    Alcotest.test_case "pool: timeout" `Quick test_pool_timeout;
    Alcotest.test_case "merge: alarm dedup + sort" `Quick test_merge_alarms;
    Alcotest.test_case "merge: state join" `Quick test_merge_states;
    Alcotest.test_case "equiv: mini_fbw -j4" `Quick test_equiv_mini_fbw;
    Alcotest.test_case "equiv: family members -j4" `Slow test_equiv_members;
    Alcotest.test_case "equiv: registered driver" `Quick test_registered_driver;
    Alcotest.test_case "equiv: hook loses all jobs" `Quick test_hook_all_lost;
    Alcotest.test_case "equiv: killed workers" `Quick test_equiv_under_chaos;
    Alcotest.test_case "batch: -j3 equivalence" `Slow test_batch_equiv;
    Alcotest.test_case "batch: chaos fallback" `Quick test_batch_chaos_fallback;
    Alcotest.test_case "backends: resolution rules" `Quick
      test_backend_resolution;
    Alcotest.test_case "backends: fork/domains matrix" `Slow
      test_backend_matrix;
    Alcotest.test_case "dompool: work stealing invisible" `Quick
      test_dompool_stealing;
    Alcotest.test_case "dompool: errors + reuse" `Quick test_dompool_errors;
    Alcotest.test_case "batch: domains backend" `Slow test_batch_domains;
  ]
