(* Observability tests: the metrics registry (counters, gauges,
   histograms, snapshot deltas) behaves as documented; the event tracer
   rings, captures and serializes correctly; and the determinism
   contract holds — a -j4 run with worker delta shipping reports exactly
   the counters and the event set of the sequential run, two warm cache
   runs report byte-identical metrics, and every alarm carries a
   provenance whose call chain matches the inlining stack. *)

module C = Astree_core
module F = Astree_frontend
module I = Astree_incremental
module P = Astree_parallel
module M = Astree_obs.Metrics
module T = Astree_obs.Trace

(* the registry and the trace buffer are global: scrub both around every
   test so suites can run in any order *)
let fresh k =
  M.reset ();
  T.clear ();
  let en0 = !T.enabled and wt0 = !T.with_time in
  Fun.protect
    ~finally:(fun () ->
      T.enabled := en0;
      T.with_time := wt0;
      T.clear ();
      M.reset ())
    k

(* ---------------- metrics registry ---------------- *)

let test_counters () =
  fresh @@ fun () ->
  let c = M.counter "test.counter" in
  Alcotest.(check int) "fresh counter is zero" 0 (M.value c);
  M.incr c;
  M.add c 41;
  Alcotest.(check int) "incr + add accumulate" 42 (M.value c);
  Alcotest.(check int) "same name, same entry" 42
    (M.value (M.counter "test.counter"));
  (* a name registered as a counter cannot come back as a gauge *)
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: test.counter registered with another kind")
    (fun () -> M.set_gauge "test.counter" 1)

let test_snapshot_diff_absorb () =
  fresh @@ fun () ->
  let c = M.counter "test.c" in
  let h = M.histogram "test.h" in
  M.add c 10;
  M.observe h 3;
  M.set_gauge "test.g" 7;
  let before = M.snapshot () in
  M.add c 5;
  M.observe h 3;
  M.observe h 100;
  M.set_gauge "test.g" 9;
  let delta = M.diff before in
  (* the delta names only counters and histograms — gauges are
     coordinator state and never travel in worker deltas *)
  Alcotest.(check (list string))
    "gauges excluded from the delta" [ "test.c"; "test.h" ] (M.names delta);
  (* replaying the delta on top of the current registry doubles exactly
     the increments made after the snapshot *)
  M.absorb delta;
  Alcotest.(check int) "absorb adds the counter delta" 20 (M.value c);
  Alcotest.(check (option int)) "gauge untouched by absorb" (Some 9)
    (M.gauge_value "test.g")

let test_render_json_stable () =
  fresh @@ fun () ->
  M.add (M.counter "b.two") 2;
  M.add (M.counter "a.one") 1;
  M.observe (M.histogram "h.x") 0;
  M.observe (M.histogram "h.x") 6;
  M.set_gauge "g.y" 3;
  ignore (M.start ());
  let s1 = M.render_json ~timers:false () in
  let s2 = M.render_json ~timers:false () in
  Alcotest.(check string) "render is pure" s1 s2;
  let contains sub s =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "keys sorted" true
    (contains "\"a.one\": 1, \"b.two\": 2" s1);
  Alcotest.(check bool) "gauge present" true (contains "\"g.y\": 3" s1);
  (* 0 -> bucket 0, 6 -> bucket 2 (2^2 <= 7 < 2^3) *)
  Alcotest.(check bool) "log2 histogram buckets" true
    (contains "\"h.x\": [1,0,1]" s1);
  Alcotest.(check bool) "timers omitted" false (contains "\"timers\"" s1)

let test_reset_named () =
  fresh @@ fun () ->
  let c = M.counter "test.rn" in
  M.add c 5;
  M.reset_named "test.rn";
  M.reset_named "never.registered";
  Alcotest.(check int) "zeroed, registration survives" 0 (M.value c)

(* ---------------- event tracer ---------------- *)

let with_trace ?(capacity = 65536) k =
  fresh @@ fun () ->
  let cap0 = !T.capacity in
  T.capacity := capacity;
  T.enabled := true;
  T.with_time := false;
  Fun.protect ~finally:(fun () -> T.capacity := cap0) k

let kinds () = List.map (fun e -> e.T.ev_kind) (T.events ())

let test_ring_eviction () =
  with_trace ~capacity:4 @@ fun () ->
  for i = 1 to 10 do
    T.emit (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check (list string))
    "ring keeps the most recent capacity events"
    [ "e7"; "e8"; "e9"; "e10" ] (kinds ())

let test_eviction_counter () =
  with_trace ~capacity:4 @@ fun () ->
  let dropped = M.counter "trace.dropped" in
  let before = M.value dropped in
  for i = 1 to 10 do
    T.emit (Printf.sprintf "e%d" i)
  done;
  (* 10 events through a 4-slot ring: 6 evictions, each one counted —
     the counter is the only witness that the ring overflowed *)
  Alcotest.(check int) "evictions land in trace.dropped" 6
    (M.value dropped - before)

let test_capture_suspends_eviction () =
  with_trace ~capacity:4 @@ fun () ->
  T.emit "before";
  let mark = T.capture_begin () in
  for i = 1 to 10 do
    T.emit (Printf.sprintf "c%d" i)
  done;
  let captured = T.capture_end mark in
  Alcotest.(check int)
    "capture saw every event despite the tiny ring" 10 (List.length captured);
  Alcotest.(check (list string))
    "captured in order, capture-local"
    [ "c1"; "c2"; "c3"; "c4"; "c5"; "c6"; "c7"; "c8"; "c9"; "c10" ]
    (List.map (fun e -> e.T.ev_kind) captured)

let test_to_json () =
  with_trace @@ fun () ->
  T.emit "k.point" ~loc:"a.c:3:1"
    ~args:
      [
        ("s", T.S "he\"llo"); ("i", T.I 42); ("f", T.F 1.5); ("b", T.B true);
      ];
  match T.events () with
  | [ e ] ->
      Alcotest.(check string) "JSONL shape, escaped strings"
        "{\"kind\": \"k.point\", \"phase\": \"P\", \"loc\": \"a.c:3:1\", \
         \"t\": 0.000000, \"args\": {\"s\": \"he\\\"llo\", \"i\": 42, \
         \"f\": 1.500000, \"b\": true}}"
        (T.to_json e)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_span_balance () =
  with_trace @@ fun () ->
  T.span_begin "p";
  T.emit "x";
  T.span_end "p";
  Alcotest.(check (list string))
    "phases in order"
    [ "B"; "P"; "E" ]
    (List.map
       (fun e ->
         match e.T.ev_phase with T.Pbegin -> "B" | T.Pend -> "E" | T.Ppoint -> "P")
       (T.events ()))

(* ---------------- determinism: -j1 = -j4, warm = warm ------------- *)

(* force dispatch on the small test programs *)
let with_min_stmts n k =
  let saved = !C.Iterator.par_min_stmts in
  C.Iterator.par_min_stmts := n;
  Fun.protect ~finally:(fun () -> C.Iterator.par_min_stmts := saved) k

let read_example name =
  let rec find dir depth =
    let cand = Filename.concat dir (Filename.concat "examples/data" name) in
    if Sys.file_exists cand then Some cand
    else if depth = 0 then None
    else find (Filename.dirname dir) (depth - 1)
  in
  match find (Sys.getcwd ()) 6 with
  | None -> None
  | Some path ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some s

let with_mini_fbw k =
  match read_example "mini_fbw.c" with
  | None -> Alcotest.skip ()
  | Some src -> k src

(* run [f] under tracing and return (result, sorted canonical event
   lines, metrics render).  Kinds in [drop_kinds] are scheduling or
   wall-clock artifacts and excluded from the event comparison; counter
   names in [zero] are zeroed before rendering for the same reason
   (everything else must then compare byte-for-byte). *)
let observe ?(drop_kinds = []) ?(zero = []) (f : unit -> C.Analysis.result) =
  M.reset ();
  T.clear ();
  T.enabled := true;
  T.with_time := false;
  let mark = T.capture_begin () in
  let r = f () in
  let evs = T.capture_end mark in
  T.enabled := false;
  let dropped k = List.exists (fun p -> p = k) drop_kinds in
  let lines =
    evs
    |> List.filter (fun e -> not (dropped e.T.ev_kind))
    |> List.map T.to_json |> List.sort String.compare
  in
  List.iter M.reset_named zero;
  let metrics = M.render_json ~timers:false () in
  (r, lines, metrics)

(* -j4 with worker delta shipping must report exactly the sequential
   run's counters, histograms and gauges, and — after dropping the
   par.dispatch/par.apply scheduling events — the same event multiset
   sorted by canonical line (kind, loc and args included). *)
let test_determinism_jobs () =
  with_mini_fbw @@ fun src ->
  fresh @@ fun () ->
  with_min_stmts 1 @@ fun () ->
  let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
  let cfg =
    {
      C.Config.default with
      C.Config.partitioned_functions = [ "select_gain" ];
    }
  in
  let drop_kinds = [ "par.dispatch"; "par.apply" ] in
  (* par.* count scheduling, not analysis.  oct.join counts *performed*
     pack joins: the sequential run elides most of them through the
     Ptmap physical-sharing short-cut (Sect. 6.1.2), which Marshal
     destroys for worker replies — it is a work counter, not a semantic
     event counter, and is documented as outside the parity contract. *)
  let zero = [ "par.jobs_dispatched"; "par.deltas_applied"; "oct.join" ] in
  let r1, ev1, m1 =
    observe ~drop_kinds ~zero (fun () ->
        C.Analysis.analyze ~cfg:{ cfg with C.Config.jobs = 1 } p)
  in
  (* route -j4 through the registered driver, as the CLI does, so both
     runs emit the same phase spans *)
  P.Scheduler.register ();
  let r4, ev4, m4 =
    Fun.protect
      ~finally:(fun () -> C.Analysis.parallel_driver := None)
      (fun () ->
        observe ~drop_kinds ~zero (fun () ->
            C.Analysis.analyze ~cfg:{ cfg with C.Config.jobs = 4 } p))
  in
  Alcotest.(check string)
    "same result" (P.Merge.fingerprint r1) (P.Merge.fingerprint r4);
  Alcotest.(check bool) "the -j1 run produced events" true (ev1 <> []);
  (if Sys.getenv_opt "ASTREE_OBS_DEBUG" <> None then
     let dump name l =
       let oc = open_out ("/tmp/obs-" ^ name) in
       List.iter (fun s -> output_string oc (s ^ "\n")) l;
       close_out oc
     in
     dump "ev1" ev1; dump "ev4" ev4);
  Alcotest.(check (list string)) "same event set" ev1 ev4;
  Alcotest.(check string) "same metrics, byte for byte" m1 m4

let with_cache_driver k =
  I.Summary.register ();
  let min0 = !C.Iterator.memo_min_stmts in
  C.Iterator.memo_min_stmts := 0;
  Fun.protect
    ~finally:(fun () ->
      C.Analysis.cache_driver := None;
      C.Iterator.memo_min_stmts := min0)
    (fun () -> Astree_robust.Faultsim.with_suppressed k)

(* two warm runs from the same store perform the same hits in the same
   order: identical cache.hit/cache.miss event streams and identical
   metrics (cache.load/cache.save carry wall-clock seconds and are
   excluded; the load/save timings also only live in timer entries,
   which ~timers:false already omits) *)
let test_determinism_warm () =
  with_mini_fbw @@ fun src ->
  fresh @@ fun () ->
  with_cache_driver @@ fun () ->
  let dir = Filename.temp_file "astree-obs-cache" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
      let cfg =
        { C.Config.default with C.Config.summary_cache = C.Config.Cache_dir dir }
      in
      ignore (C.Analysis.analyze ~cfg p);
      let drop_kinds = [ "cache.load"; "cache.save" ] in
      let warm () = C.Analysis.analyze ~cfg p in
      let r1, ev1, m1 = observe ~drop_kinds warm in
      let r2, ev2, m2 = observe ~drop_kinds warm in
      Alcotest.(check string)
        "same result" (P.Merge.fingerprint r1) (P.Merge.fingerprint r2);
      Alcotest.(check bool) "warm runs hit the cache" true
        (List.exists (fun l -> String.length l >= 20 &&
                               String.sub l 0 20 = "{\"kind\": \"cache.hit\"") ev1);
      Alcotest.(check (list string)) "same event set" ev1 ev2;
      Alcotest.(check string) "same metrics, byte for byte" m1 m2)

(* ---------------- alarm provenance ---------------- *)

let two_level_src =
  {|
volatile float input;
float out;

float f(float x) {
  return 1.0f / x;
}

float h(float x) {
  return f(x);
}

int main(void) {
  __astree_input_range(input, -1.0, 1.0);
  out = h(input);
  return 0;
}
|}

(* the alarm fires two inlinings deep: its recorded chain must be the
   iterator's stack at the faulting statement, innermost first *)
let test_provenance_chain () =
  fresh @@ fun () ->
  let p, _ = C.Analysis.compile [ ("t.c", two_level_src) ] in
  let r = C.Analysis.analyze p in
  let div =
    List.filter
      (fun (a : C.Alarm.t) -> a.C.Alarm.a_kind = C.Alarm.Div_by_zero)
      r.C.Analysis.r_alarms
  in
  match div with
  | [ a ] -> (
      match a.C.Alarm.a_prov with
      | None -> Alcotest.fail "division alarm carries no provenance"
      | Some pr ->
          Alcotest.(check (list string))
            "call chain, innermost first"
            [ "f"; "h"; "main" ]
            pr.C.Alarm.p_chain;
          Alcotest.(check bool) "raising domain recorded" true
            (pr.C.Alarm.p_domain <> "");
          Alcotest.(check bool) "abstract operands recorded" true
            (pr.C.Alarm.p_operands <> []);
          let text = Fmt.str "%a" C.Alarm.pp_explain a in
          let contains sub s =
            let n = String.length sub in
            let rec go i =
              i + n <= String.length s
              && (String.sub s i n = sub || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "pp_explain renders the chain" true
            (contains "f <- h <- main" text))
  | l -> Alcotest.failf "expected exactly one division alarm, got %d"
           (List.length l)

(* provenance is presentation-only: it must not perturb alarm identity,
   so the dedup/merge fingerprint ignores it *)
let test_provenance_not_in_fingerprint () =
  fresh @@ fun () ->
  let loc = F.Loc.make ~file:"t.c" ~line:3 ~col:1 in
  let bare =
    { C.Alarm.a_kind = C.Alarm.Div_by_zero; a_loc = loc; a_msg = "m";
      a_prov = None }
  in
  let rich =
    {
      bare with
      C.Alarm.a_prov =
        Some
          {
            C.Alarm.p_chain = [ "f"; "main" ];
            p_domain = "octagon";
            p_operands = [ ("x", "[0, 1]") ];
          };
    }
  in
  Alcotest.(check int) "compare ignores provenance" 0
    (C.Alarm.compare bare rich);
  Alcotest.(check string) "pp ignores provenance"
    (Fmt.str "%a" C.Alarm.pp bare)
    (Fmt.str "%a" C.Alarm.pp rich)

let suite =
  [
    Alcotest.test_case "metrics: counters" `Quick test_counters;
    Alcotest.test_case "metrics: snapshot/diff/absorb" `Quick
      test_snapshot_diff_absorb;
    Alcotest.test_case "metrics: render stability" `Quick
      test_render_json_stable;
    Alcotest.test_case "metrics: reset_named" `Quick test_reset_named;
    Alcotest.test_case "trace: ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "trace: eviction bumps trace.dropped" `Quick
      test_eviction_counter;
    Alcotest.test_case "trace: capture suspends eviction" `Quick
      test_capture_suspends_eviction;
    Alcotest.test_case "trace: JSONL serialization" `Quick test_to_json;
    Alcotest.test_case "trace: span balance" `Quick test_span_balance;
    Alcotest.test_case "determinism: -j1 = -j4" `Quick test_determinism_jobs;
    Alcotest.test_case "determinism: warm = warm" `Quick
      test_determinism_warm;
    Alcotest.test_case "provenance: two-level call chain" `Quick
      test_provenance_chain;
    Alcotest.test_case "provenance: outside alarm identity" `Quick
      test_provenance_not_in_fingerprint;
  ]
