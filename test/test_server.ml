(* Analysis-server tests: protocol round-trips, client-vs-in-process
   byte parity, concurrent requests under different configurations,
   admission control (queue-full shedding), fault-injected worker
   crashes, and graceful drain on shutdown.

   Each test forks a real daemon on a private socket and talks to it
   over the wire — the same code path [astree --connect] uses. *)

module C = Astree_core
module F = Astree_frontend
module R = Astree_robust
module Srv = Astree_server

(* ---- programs ---------------------------------------------------- *)

(* call-heavy: function summaries make a warm re-analysis cheap *)
let prog_calls =
  "static int lag(int x, int u) {\n\
  \  if (x < u) x = x + 1;\n\
  \  if (x > u) x = x - 1;\n\
  \  return x;\n\
   }\n\
   int main(void) {\n\
  \  int a = 0;\n\
  \  int b = 0;\n\
  \  int c = 0;\n\
  \  while (1) {\n\
  \    a = lag(a, 50);\n\
  \    b = lag(b, 80);\n\
  \    c = lag(c, 20);\n\
  \    __astree_wait_for_clock();\n\
  \  }\n\
  \  return 0;\n\
   }\n"

(* raises an overflow alarm: exercises alarm + provenance rendering *)
let prog_alarm =
  "int main(void) {\n\
  \  int x = 2147483600;\n\
  \  while (1) {\n\
  \    x = x + 100;\n\
  \    __astree_wait_for_clock();\n\
  \  }\n\
  \  return 0;\n\
   }\n"

let prog_simple =
  "int main(void) {\n\
  \  int x = 0;\n\
  \  while (1) {\n\
  \    if (x < 100) x = x + 1;\n\
  \    __astree_wait_for_clock();\n\
  \  }\n\
  \  return 0;\n\
   }\n"

(* ---- helpers ----------------------------------------------------- *)

let fresh_socket () =
  let path = Filename.temp_file "astreed-test" ".sock" in
  Sys.remove path;
  path

let wait_for_daemon sock =
  let rec go n =
    if n = 0 then Alcotest.fail "daemon did not come up"
    else
      match Srv.Client.try_connect sock with
      | Some fd -> Srv.Client.close fd
      | None ->
          Unix.sleepf 0.05;
          go (n - 1)
  in
  go 100

(* A zero-probability spec: installing it overrides any ASTREE_FAULTS
   from the environment (the chaos-matrix CI legs), so daemon tests that
   assert clean behavior stay hermetic — only tests that opt into faults
   see them. *)
let no_faults = [ (R.Faultsim.Worker_crash, 0.0) ]

(* Fork a daemon on a private socket; [faults] are armed in the child
   before it starts (inherited by its pool workers).  The body gets the
   socket path and the daemon pid (to signal it); the daemon is
   SIGTERMed and reaped afterwards. *)
let with_daemon_ex ?(workers = 2) ?(queue = 8) ?(grace = 10.)
    ?faults ?(hang = 3600.) ?(seed = 42) ?config_file ?checkpoint
    ?(checkpoint_s = 0.) ?http_port ?access_log
    ?(sock = fresh_socket ()) (k : string -> int -> unit) : unit =
  let faults = Option.value ~default:no_faults faults in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* daemon process: never return into the test runner *)
      R.Faultsim.hang_seconds := hang;
      if faults <> [] then R.Faultsim.install ~seed faults;
      let code =
        try
          Srv.Daemon.run
            {
              Srv.Daemon.default with
              Srv.Daemon.d_socket = sock;
              d_workers = workers;
              d_queue_depth = queue;
              d_grace = grace;
              d_config_file = config_file;
              d_checkpoint = checkpoint;
              d_checkpoint_s = checkpoint_s;
              d_http_port = http_port;
              d_access_log = access_log;
            }
        with _ -> 1
      in
      Unix._exit code
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          if Sys.file_exists sock then Sys.remove sock)
        (fun () ->
          wait_for_daemon sock;
          k sock pid)

let with_daemon ?workers ?queue ?grace ?faults ?hang (k : string -> unit) :
    unit =
  with_daemon_ex ?workers ?queue ?grace ?faults ?hang (fun sock _pid ->
      k sock)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "protocol failure: %s" e

let send_analyze ?(id = 1) ?(options = Srv.Service.default_options)
    ?(sources = [ ("t.c", prog_simple) ]) fd =
  ok_exn
    (Srv.Client.send fd
       (Srv.Client.analyze_request ~id ~sources ~main:"main" ~options ()))

(* what a one-shot [astree --format json] prints for these sources *)
let in_process_report ?(options = Srv.Service.default_options) sources :
    string * int =
  let cfg = Srv.Service.config_of options ~sources in
  let p, _ = C.Analysis.compile ~main:"main" sources in
  let r = R.Degrade.analyze ~cfg p in
  (Srv.Report.render r, Srv.Report.exit_code r)

(* blank the volatile "time" statistic; everything else must be
   byte-identical between client mode and in-process *)
let scrub_time (s : string) : string =
  let marker = "\"time\": " in
  let mlen = String.length marker in
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + mlen <= n && String.sub s !i mlen = marker then begin
      Buffer.add_string b marker;
      Buffer.add_char b 'T';
      i := !i + mlen;
      while
        !i < n
        &&
        match s.[!i] with
        | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
        | _ -> false
      do
        incr i
      done
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let has_sub (s : string) (sub : string) : bool =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let analyze_json ?(id = 1) ?(options = Srv.Service.default_options) sources =
  Srv.Client.analyze_request_json ~id ~sources ~main:"main" ~options ()

(* the "server" member of a status reply *)
let server_status sock : Srv.Json.t =
  let rep =
    ok_exn
      (Srv.Client.request sock
         (Srv.Json.Obj [ ("verb", Srv.Json.Str "status") ]))
  in
  match Srv.Json.parse rep.Srv.Client.r_line with
  | Ok j -> Srv.Json.member "server" j
  | Error e -> Alcotest.failf "status reply unparsable: %s" e

let server_int field (j : Srv.Json.t) : int =
  Option.value ~default:(-1) (Srv.Json.to_int (Srv.Json.member field j))

(* the "preloaded" count of an ok analyze reply: how many resident
   summaries seeded the request — the daemon's warmth signal *)
let reply_preloaded (r : Srv.Client.reply) : int =
  match Srv.Json.parse r.Srv.Client.r_line with
  | Ok j ->
      Option.value ~default:0
        (Srv.Json.to_int
           (Srv.Json.member "preloaded" (Srv.Json.member "server" j)))
  | Error _ -> 0

(* A two-stage filter cascade whose stage functions sit above
   [Iterator.memo_min_stmts], so the analysis actually produces
   function summaries — the tiny inline programs above analyze without
   any, which makes them useless for warm-state tests.  Same shape as
   the E15 bench workload. *)
let prog_cascade =
  let stages = 2 and width = 16 in
  let buf = Buffer.create 8192 in
  for s = 0 to stages - 1 do
    Buffer.add_string buf (Printf.sprintf "volatile float u%d;\n" s);
    for v = 0 to width - 1 do
      Buffer.add_string buf (Printf.sprintf "float x%d_%d;\n" s v)
    done;
    Buffer.add_string buf (Printf.sprintf "short o%d;\nshort p%d;\n" s s)
  done;
  for s = 0 to stages - 1 do
    Buffer.add_string buf (Printf.sprintf "void stage%d(void) {\n" s);
    Buffer.add_string buf (Printf.sprintf "  x%d_0 = u%d;\n" s s);
    for v = 1 to width - 1 do
      Buffer.add_string buf
        (Printf.sprintf "  x%d_%d = 0.5f * x%d_%d + 0.5f * x%d_%d;\n" s v s v
           s (v - 1));
      Buffer.add_string buf
        (Printf.sprintf
           "  if (x%d_%d - x%d_%d > 0.25f) { x%d_%d = x%d_%d + 0.25f; }\n" s
           v s (v - 1) s v s (v - 1))
    done;
    Buffer.add_string buf
      (Printf.sprintf "  o%d = (short)(x%d_%d * 65536.0f);\n" s s (width - 1));
    Buffer.add_string buf
      (Printf.sprintf "  p%d = (short)(x%d_%d * 128.0f);\n" s s (width - 1));
    Buffer.add_string buf "}\n"
  done;
  Buffer.add_string buf "int main(void) {\n";
  for s = 0 to stages - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  __astree_input_range(u%d, -1.0, 1.0);\n" s);
    for v = 0 to width - 1 do
      Buffer.add_string buf (Printf.sprintf "  x%d_%d = 0.0f;\n" s v)
    done
  done;
  Buffer.add_string buf "  while (1) {\n";
  for s = 0 to stages - 1 do
    Buffer.add_string buf (Printf.sprintf "    stage%d();\n" s)
  done;
  Buffer.add_string buf
    "    __astree_wait_for_clock();\n  }\n  return 0;\n}\n";
  Buffer.contents buf

(* ---- json codec -------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "[1, 2.5, -3, \"x\"]";
      "{\"a\": [], \"b\": {\"c\": false}}";
      "\"quote \\\" backslash \\\\ newline \\n tab \\t\"";
      "{\"id\": 7, \"verb\": \"analyze\"}";
    ]
  in
  List.iter
    (fun s ->
      match Srv.Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok v -> (
          (* print-parse round-trip is the identity *)
          match Srv.Json.parse (Srv.Json.to_string v) with
          | Error e -> Alcotest.failf "reparse %s: %s" s e
          | Ok v' ->
              Alcotest.(check bool) ("roundtrip " ^ s) true (v = v')))
    cases;
  (match Srv.Json.parse "\"\\u00e9\\ud83d\\ude00\"" with
  | Ok (Srv.Json.Str s) ->
      Alcotest.(check string) "utf-8 decoding" "\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "unicode escapes");
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        ("rejects " ^ bad) true
        (Result.is_error (Srv.Json.parse bad)))
    [ "{"; "[1,"; "\"open"; "nul"; "1 2"; "{\"a\" 1}" ]

let test_options_roundtrip () =
  let o =
    {
      Srv.Service.default_options with
      Srv.Service.o_no_oct = true;
      o_unroll = 3;
      o_partition = [ "f"; "g" ];
      o_useful_packs = [ 1; 4 ];
      o_timeout = 2.5;
      o_cache = `Dir "/tmp/c";
    }
  in
  let o' = Srv.Service.options_of_json (Srv.Service.options_to_json o) in
  Alcotest.(check bool) "options wire round-trip" true (o = o');
  let d =
    Srv.Service.options_of_json (Srv.Service.options_to_json
                                   Srv.Service.default_options)
  in
  Alcotest.(check bool) "defaults round-trip" true
    (d = Srv.Service.default_options)

(* ---- protocol round-trips ---------------------------------------- *)

let test_verbs () =
  with_daemon (fun sock ->
      (* status *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj
                [ ("verb", Srv.Json.Str "status"); ("id", Srv.Json.Num 5.) ]))
      in
      Alcotest.(check string) "status ok" "ok" rep.Srv.Client.r_status;
      (match Srv.Json.parse rep.Srv.Client.r_line with
      | Ok j ->
          let server = Srv.Json.member "server" j in
          Alcotest.(check (option int))
            "status id echoed" (Some 5)
            (Srv.Json.to_int (Srv.Json.member "id" j));
          Alcotest.(check bool)
            "status has workers" true
            (Srv.Json.to_int (Srv.Json.member "workers" server) = Some 2)
      | Error e -> Alcotest.failf "status reply unparsable: %s" e);
      (* metrics *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj [ ("verb", Srv.Json.Str "metrics") ]))
      in
      Alcotest.(check string) "metrics ok" "ok" rep.Srv.Client.r_status;
      Alcotest.(check bool)
        "metrics carries the registry" true
        (match Srv.Json.parse rep.Srv.Client.r_line with
        | Ok j ->
            Srv.Json.member "counters" (Srv.Json.member "metrics" j)
            <> Srv.Json.Null
        | Error _ -> false);
      (* analyze *)
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          send_analyze ~id:9 fd;
          let line = ok_exn (Srv.Client.read_reply (Srv.Client.reader fd)) in
          let rep = Srv.Client.decode line in
          Alcotest.(check string) "analyze ok" "ok" rep.Srv.Client.r_status;
          Alcotest.(check bool)
            "analyze has a report" true
            (rep.Srv.Client.r_report <> None);
          Alcotest.(check int) "clean program exits 0" 0
            rep.Srv.Client.r_exit);
      (* errors: unknown verb, malformed json, missing sources *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj [ ("verb", Srv.Json.Str "explode") ]))
      in
      Alcotest.(check string) "unknown verb" "error" rep.Srv.Client.r_status;
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          let rep =
            Srv.Client.decode (ok_exn (Srv.Client.roundtrip fd "not json"))
          in
          Alcotest.(check string) "malformed request" "error"
            rep.Srv.Client.r_status);
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj [ ("verb", Srv.Json.Str "analyze") ]))
      in
      Alcotest.(check string) "analyze without sources" "error"
        rep.Srv.Client.r_status;
      (* a parse error is a per-request error, not a crash *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.parse
                (Srv.Client.analyze_request
                   ~sources:[ ("bad.c", "int main( {") ]
                   ~main:"main" ~options:Srv.Service.default_options ())
             |> Result.get_ok))
      in
      Alcotest.(check string) "parse error refused" "error"
        rep.Srv.Client.r_status;
      (* shutdown verb: ok reply, then the daemon exits and unlinks *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj [ ("verb", Srv.Json.Str "shutdown") ]))
      in
      Alcotest.(check string) "shutdown ok" "ok" rep.Srv.Client.r_status;
      let rec wait_gone n =
        if Sys.file_exists sock && n > 0 then begin
          Unix.sleepf 0.05;
          wait_gone (n - 1)
        end
      in
      wait_gone 100;
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock))

(* ---- byte parity ------------------------------------------------- *)

let test_client_parity () =
  let programs =
    [ ("simple.c", prog_simple); ("calls.c", prog_calls);
      ("alarm.c", prog_alarm) ]
  in
  with_daemon (fun sock ->
      List.iter
        (fun (name, src) ->
          let sources = [ (name, src) ] in
          let expected, expected_exit = in_process_report sources in
          (* twice: the second request runs against the warm resident
             caches and must still render the same bytes *)
          List.iter
            (fun round ->
              let fd = Option.get (Srv.Client.try_connect sock) in
              Fun.protect
                ~finally:(fun () -> Srv.Client.close fd)
                (fun () ->
                  send_analyze ~sources fd;
                  let line =
                    ok_exn (Srv.Client.read_reply (Srv.Client.reader fd))
                  in
                  let rep = Srv.Client.decode line in
                  Alcotest.(check string)
                    (Printf.sprintf "%s round %d ok" name round)
                    "ok" rep.Srv.Client.r_status;
                  Alcotest.(check int)
                    (Printf.sprintf "%s round %d exit" name round)
                    expected_exit rep.Srv.Client.r_exit;
                  match rep.Srv.Client.r_report with
                  | None -> Alcotest.fail "reply without report"
                  | Some report ->
                      Alcotest.(check string)
                        (Printf.sprintf "%s round %d byte parity" name round)
                        (scrub_time expected) (scrub_time report)))
            [ 1; 2 ])
        programs)

(* ---- concurrency ------------------------------------------------- *)

let test_concurrent_configs () =
  (* different configurations in flight at once — including the
     degradation governor armed on one of them — must each match their
     sequential one-shot *)
  let variants =
    [
      Srv.Service.default_options;
      { Srv.Service.default_options with Srv.Service.o_no_oct = true };
      (* a generous budget arms the watchdog ladder without tripping *)
      { Srv.Service.default_options with Srv.Service.o_timeout = 300. };
    ]
  in
  let sources = [ ("calls.c", prog_calls) ] in
  let expected =
    List.map (fun options -> in_process_report ~options sources) variants
  in
  with_daemon ~workers:3 (fun sock ->
      let conns =
        List.mapi
          (fun i options ->
            let fd = Option.get (Srv.Client.try_connect sock) in
            send_analyze ~id:i ~options ~sources fd;
            (fd, Srv.Client.reader fd))
          variants
      in
      List.iteri
        (fun i ((fd, reader), (want_report, want_exit)) ->
          Fun.protect
            ~finally:(fun () -> Srv.Client.close fd)
            (fun () ->
              let rep = Srv.Client.decode (ok_exn (Srv.Client.read_reply reader)) in
              Alcotest.(check string)
                (Printf.sprintf "variant %d ok" i)
                "ok" rep.Srv.Client.r_status;
              Alcotest.(check int)
                (Printf.sprintf "variant %d exit" i)
                want_exit rep.Srv.Client.r_exit;
              Alcotest.(check string)
                (Printf.sprintf "variant %d equals its one-shot" i)
                (scrub_time want_report)
                (scrub_time (Option.get rep.Srv.Client.r_report))))
        (List.combine conns expected))

(* ---- admission control ------------------------------------------- *)

let test_queue_full_shed () =
  (* one worker, no queue; the worker is held busy by an injected hang,
     so a pipelined second request must be shed immediately *)
  with_daemon ~workers:1 ~queue:0 ~hang:0.8
    ~faults:[ (R.Faultsim.Worker_hang, 1.0) ]
    (fun sock ->
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          send_analyze ~id:1 fd;
          (* give the event loop time to hand request 1 to the worker *)
          Unix.sleepf 0.2;
          (* a different program: an identical request would share
             request 1's worker (dedup) instead of being shed *)
          send_analyze ~id:2 ~sources:[ ("a.c", prog_alarm) ] fd;
          let reader = Srv.Client.reader fd in
          let first = Srv.Client.decode (ok_exn (Srv.Client.read_reply reader)) in
          let second = Srv.Client.decode (ok_exn (Srv.Client.read_reply reader)) in
          (* the shed reply overtakes the in-flight one *)
          Alcotest.(check string) "request 2 shed" "shed"
            first.Srv.Client.r_status;
          Alcotest.(check (option string))
            "shed names the queue" (Some "queue full")
            first.Srv.Client.r_error;
          (match first.Srv.Client.r_retry_after with
          | Some t ->
              Alcotest.(check bool) "positive pacing hint" true (t > 0.)
          | None -> Alcotest.fail "shed reply carries retry_after_s");
          Alcotest.(check string) "request 1 still served" "ok"
            second.Srv.Client.r_status))

(* ---- fault injection --------------------------------------------- *)

let test_worker_crash () =
  (* every worker self-kills on job receipt: the request fails with a
     per-request error and the daemon survives to answer status *)
  with_daemon ~workers:1 ~faults:[ (R.Faultsim.Worker_crash, 1.0) ]
    (fun sock ->
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          send_analyze fd;
          let rep =
            Srv.Client.decode
              (ok_exn (Srv.Client.read_reply (Srv.Client.reader fd)))
          in
          Alcotest.(check string) "crash is a request error" "error"
            rep.Srv.Client.r_status;
          Alcotest.(check bool)
            "error names the crash" true
            (match rep.Srv.Client.r_error with
            | Some m ->
                (* substring check *)
                let has_sub s sub =
                  let n = String.length s and m' = String.length sub in
                  let rec go i =
                    i + m' <= n
                    && (String.sub s i m' = sub || go (i + 1))
                  in
                  go 0
                in
                has_sub m "crash"
            | None -> false));
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj [ ("verb", Srv.Json.Str "status") ]))
      in
      Alcotest.(check string) "daemon alive after crash" "ok"
        rep.Srv.Client.r_status)

(* ---- graceful shutdown ------------------------------------------- *)

let test_shutdown_drains () =
  (* worker 1 is busy (hang), request 2 queued; shutdown must answer
     ok, tell the queued client shutting_down, and still deliver the
     in-flight reply before exiting *)
  with_daemon ~workers:1 ~queue:8 ~hang:0.8
    ~faults:[ (R.Faultsim.Worker_hang, 1.0) ]
    (fun sock ->
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          send_analyze ~id:1 fd;
          Unix.sleepf 0.2;
          (* different program so the queued request keeps its own
             job instead of dedup-attaching to the in-flight one *)
          send_analyze ~id:2 ~sources:[ ("a.c", prog_alarm) ] fd;
          Unix.sleepf 0.1;
          ok_exn
            (Srv.Client.send fd
               (Srv.Json.to_string
                  (Srv.Json.Obj
                     [ ("verb", Srv.Json.Str "shutdown");
                       ("id", Srv.Json.Num 3.) ])));
          let reader = Srv.Client.reader fd in
          let shutdown_ack =
            Srv.Client.decode (ok_exn (Srv.Client.read_reply reader))
          in
          let queued =
            Srv.Client.decode (ok_exn (Srv.Client.read_reply reader))
          in
          let inflight =
            Srv.Client.decode (ok_exn (Srv.Client.read_reply reader))
          in
          Alcotest.(check string) "shutdown acknowledged" "ok"
            shutdown_ack.Srv.Client.r_status;
          Alcotest.(check string) "queued request told shutting_down"
            "shutting_down" queued.Srv.Client.r_status;
          Alcotest.(check string) "in-flight request drained" "ok"
            inflight.Srv.Client.r_status);
      let rec wait_gone n =
        if Sys.file_exists sock && n > 0 then begin
          Unix.sleepf 0.05;
          wait_gone (n - 1)
        end
      in
      wait_gone 100;
      Alcotest.(check bool) "socket unlinked after drain" false
        (Sys.file_exists sock))

(* ---- multi-task rejection ---------------------------------------- *)

(* a two-task program: the daemon must refuse it with a clean error
   reply pointing at the one-shot CLI, not fail worker-side *)
let prog_multi_task =
  "/* astree-task: t1 t2 */\n\
   int g;\n\
   void t1(void) { while (1) { g = g + 1; __astree_wait_for_clock(); } }\n\
   void t2(void) { while (1) { int x = g; __astree_wait_for_clock(); } }\n\
   int main(void) { while (1) { __astree_wait_for_clock(); } }\n"

let test_multi_task_refused () =
  (* worker-side behavior, without a daemon round-trip *)
  (match
     Srv.Service.serve
       {
         Srv.Service.w_sources = [ ("m.c", prog_multi_task) ];
         w_main = "main";
         w_options = Srv.Service.default_options;
         w_preload = [];
         w_strip_cache = true;
       }
   with
  | Srv.Service.Refused msg ->
      Alcotest.(check bool) "refusal names the markers" true
        (let has sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length msg
            && (String.sub msg i n = sub || go (i + 1))
          in
          go 0
        in
        has "multi-task" && has "t1 t2" && has "--connect")
  | Srv.Service.Served _ ->
      Alcotest.fail "multi-task request must be refused");
  (* over the wire: a clean error reply, and the daemon stays up *)
  with_daemon (fun sock ->
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.parse
                (Srv.Client.analyze_request
                   ~sources:[ ("m.c", prog_multi_task) ]
                   ~main:"main" ~options:Srv.Service.default_options ())
             |> Result.get_ok))
      in
      Alcotest.(check string) "multi-task refused" "error"
        rep.Srv.Client.r_status;
      (* the daemon still serves sequential requests afterwards *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.parse
                (Srv.Client.analyze_request
                   ~sources:[ ("t.c", prog_simple) ]
                   ~main:"main" ~options:Srv.Service.default_options ())
             |> Result.get_ok))
      in
      Alcotest.(check string) "daemon survives" "ok" rep.Srv.Client.r_status)

(* ---- client retry and backoff ------------------------------------ *)

let test_request_retry_shed () =
  (* single worker held busy, no queue: the retrying client paces
     itself on the shed replies' retry_after_s hints until the worker
     frees up, then gets the real reply — no in-process fallback *)
  with_daemon ~workers:1 ~queue:0 ~hang:0.6
    ~faults:[ (R.Faultsim.Worker_hang, 1.0) ]
    (fun sock ->
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          send_analyze ~id:1 fd;
          Unix.sleepf 0.2;
          match
            Srv.Client.request_retry
              ~policy:{ R.Backoff.default with R.Backoff.b_retries = 10 }
              ~seed:7 sock
              (analyze_json ~id:2 [ ("a.c", prog_alarm) ])
          with
          | Srv.Client.Reply r ->
              Alcotest.(check string) "retried to ok" "ok"
                r.Srv.Client.r_status
          | Srv.Client.No_daemon -> Alcotest.fail "daemon is there"
          | Srv.Client.Exhausted msg ->
              Alcotest.failf "retries exhausted: %s" msg))

let test_request_retry_conn_drop () =
  (* the daemon drops connections before replying about a third of the
     time; the retrying client still lands a reply.  Deterministic:
     both fault stream and backoff jitter are seeded. *)
  with_daemon ~faults:[ (R.Faultsim.Conn_drop, 0.35) ]
    (fun sock ->
      match
        Srv.Client.request_retry
          ~policy:{ R.Backoff.default with R.Backoff.b_retries = 12 }
          ~seed:3 sock
          (analyze_json [ ("t.c", prog_simple) ])
      with
      | Srv.Client.Reply r ->
          Alcotest.(check string) "survived dropped connections" "ok"
            r.Srv.Client.r_status;
          Alcotest.(check bool) "report delivered" true
            (r.Srv.Client.r_report <> None)
      | Srv.Client.No_daemon -> Alcotest.fail "daemon is there"
      | Srv.Client.Exhausted msg -> Alcotest.failf "retries exhausted: %s" msg)

(* ---- cross-request dedup ----------------------------------------- *)

let test_dedup () =
  (* two identical requests from two clients while the single worker
     hangs: the second attaches to the first's job; both get full,
     byte-identical replies, and the daemon counts one dedup hit *)
  with_daemon ~workers:1 ~hang:0.5
    ~faults:[ (R.Faultsim.Worker_hang, 1.0) ]
    (fun sock ->
      let fd1 = Option.get (Srv.Client.try_connect sock) in
      let fd2 = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () ->
          Srv.Client.close fd1;
          Srv.Client.close fd2)
        (fun () ->
          send_analyze ~id:1 fd1;
          Unix.sleepf 0.2;
          send_analyze ~id:2 fd2;
          let r1 =
            Srv.Client.decode
              (ok_exn (Srv.Client.read_reply (Srv.Client.reader fd1)))
          in
          let r2 =
            Srv.Client.decode
              (ok_exn (Srv.Client.read_reply (Srv.Client.reader fd2)))
          in
          Alcotest.(check string) "first served" "ok" r1.Srv.Client.r_status;
          Alcotest.(check string) "second served" "ok" r2.Srv.Client.r_status;
          Alcotest.(check string) "byte-identical reports"
            (scrub_time (Option.get r1.Srv.Client.r_report))
            (scrub_time (Option.get r2.Srv.Client.r_report)));
      let server = server_status sock in
      Alcotest.(check int) "one dedup hit" 1 (server_int "dedup_hits" server);
      Alcotest.(check int) "both counted as served" 2
        (server_int "served" server))

(* ---- circuit breaker --------------------------------------------- *)

let test_circuit_breaker () =
  (* every worker crashes: after three consecutive crashes on one
     program its breaker opens and the fourth request is refused
     without burning a worker; a different program is unaffected *)
  with_daemon ~workers:1 ~faults:[ (R.Faultsim.Worker_crash, 1.0) ]
    (fun sock ->
      for i = 1 to 3 do
        let r = ok_exn (Srv.Client.request sock (analyze_json [ ("t.c", prog_simple) ])) in
        Alcotest.(check string)
          (Printf.sprintf "crash %d is an error" i)
          "error" r.Srv.Client.r_status;
        Alcotest.(check bool)
          (Printf.sprintf "crash %d names the crash" i)
          true
          (has_sub (Option.value ~default:"" r.Srv.Client.r_error) "crash")
      done;
      let r = ok_exn (Srv.Client.request sock (analyze_json [ ("t.c", prog_simple) ])) in
      Alcotest.(check string) "breaker rejects cleanly" "error"
        r.Srv.Client.r_status;
      Alcotest.(check bool) "error names the breaker" true
        (has_sub
           (Option.value ~default:"" r.Srv.Client.r_error)
           "circuit breaker");
      (* another program has its own (closed) breaker *)
      let r2 = ok_exn (Srv.Client.request sock (analyze_json [ ("a.c", prog_alarm) ])) in
      Alcotest.(check bool) "other program not broken" true
        (match r2.Srv.Client.r_error with
        | Some m -> not (has_sub m "circuit breaker")
        | None -> false);
      let server = server_status sock in
      Alcotest.(check int) "one breaker open" 1
        (server_int "breaker_open" server);
      Alcotest.(check int) "one breaker reject" 1
        (server_int "breaker_rejects" server))

(* ---- SIGHUP hot reload ------------------------------------------- *)

let test_sighup_reload () =
  let cfg_file = Filename.temp_file "astreed-conf" ".json" in
  let write s =
    let oc = open_out cfg_file in
    output_string oc s;
    close_out oc
  in
  write "{\"queue_depth\": 8}";
  Fun.protect
    ~finally:(fun () -> Sys.remove cfg_file)
    (fun () ->
      with_daemon_ex ~workers:1 ~hang:0.8
        ~faults:[ (R.Faultsim.Worker_hang, 1.0) ]
        ~config_file:cfg_file
        (fun sock pid ->
          let fd = Option.get (Srv.Client.try_connect sock) in
          Fun.protect
            ~finally:(fun () -> Srv.Client.close fd)
            (fun () ->
              (* an in-flight request rides across the reload *)
              send_analyze ~id:1 fd;
              Unix.sleepf 0.2;
              write "{\"queue_depth\": 5, \"grace\": 3}";
              Unix.kill pid Sys.sighup;
              let rec wait n =
                if n = 0 then
                  Alcotest.fail "config generation never bumped"
                else
                  let server = server_status sock in
                  if server_int "config_generation" server = 1 then server
                  else begin
                    Unix.sleepf 0.1;
                    wait (n - 1)
                  end
              in
              let server = wait 50 in
              Alcotest.(check int) "queue depth swapped" 5
                (server_int "queue_depth" server);
              let r =
                Srv.Client.decode
                  (ok_exn (Srv.Client.read_reply (Srv.Client.reader fd)))
              in
              Alcotest.(check string) "in-flight request survived reload"
                "ok" r.Srv.Client.r_status)))

(* ---- crash-recovered warm state ---------------------------------- *)

let test_checkpoint_recovery () =
  (* first daemon life: serve once (cold), checkpoint, die by SIGKILL
     — no shutdown path runs.  Second life on the same checkpoint:
     warm within one request, report byte-identical. *)
  let ckpt = Filename.temp_file "astreed-ckpt" ".bin" in
  Sys.remove ckpt;
  let sources = [ ("cascade.c", prog_cascade) ] in
  let baseline, _ = in_process_report sources in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists ckpt then Sys.remove ckpt)
    (fun () ->
      with_daemon_ex ~faults:no_faults ~checkpoint:ckpt (fun sock pid ->
          let r = ok_exn (Srv.Client.request sock (analyze_json sources)) in
          Alcotest.(check string) "cold serve ok" "ok" r.Srv.Client.r_status;
          Alcotest.(check int) "cold run not preloaded" 0 (reply_preloaded r);
          Alcotest.(check string) "cold report correct" (scrub_time baseline)
            (scrub_time (Option.get r.Srv.Client.r_report));
          (* the checkpoint lands on the loop pass after the reply *)
          let rec wait n =
            if (not (Sys.file_exists ckpt)) && n > 0 then begin
              Unix.sleepf 0.05;
              wait (n - 1)
            end
          in
          wait 100;
          Alcotest.(check bool) "checkpoint written" true
            (Sys.file_exists ckpt);
          Unix.kill pid Sys.sigkill);
      with_daemon_ex ~faults:no_faults ~checkpoint:ckpt (fun sock _pid ->
          let server = server_status sock in
          Alcotest.(check bool) "programs recovered" true
            (server_int "recovered" server > 0);
          let r = ok_exn (Srv.Client.request sock (analyze_json sources)) in
          Alcotest.(check string) "recovered serve ok" "ok"
            r.Srv.Client.r_status;
          Alcotest.(check bool) "recovered daemon is warm" true
            (reply_preloaded r > 0);
          Alcotest.(check string) "recovered report byte-identical"
            (scrub_time baseline)
            (scrub_time (Option.get r.Srv.Client.r_report))))

let test_checkpoint_torn () =
  (* every checkpoint write tears mid-payload: the recovered daemon
     must reject the file, start cold — and still answer correctly *)
  let ckpt = Filename.temp_file "astreed-ckpt" ".bin" in
  Sys.remove ckpt;
  let sources = [ ("cascade.c", prog_cascade) ] in
  let baseline, _ = in_process_report sources in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists ckpt then Sys.remove ckpt)
    (fun () ->
      with_daemon_ex
        ~faults:[ (R.Faultsim.Checkpoint_torn, 1.0) ]
        ~checkpoint:ckpt
        (fun sock pid ->
          let r = ok_exn (Srv.Client.request sock (analyze_json sources)) in
          Alcotest.(check string) "serve ok" "ok" r.Srv.Client.r_status;
          let rec wait n =
            if (not (Sys.file_exists ckpt)) && n > 0 then begin
              Unix.sleepf 0.05;
              wait (n - 1)
            end
          in
          wait 100;
          Alcotest.(check bool) "torn checkpoint exists" true
            (Sys.file_exists ckpt);
          Unix.kill pid Sys.sigkill);
      with_daemon_ex ~faults:no_faults ~checkpoint:ckpt (fun sock _pid ->
          let server = server_status sock in
          Alcotest.(check int) "nothing recovered from the torn file" 0
            (server_int "recovered" server);
          let r = ok_exn (Srv.Client.request sock (analyze_json sources)) in
          Alcotest.(check string) "cold but serving" "ok"
            r.Srv.Client.r_status;
          Alcotest.(check int) "cold: no preload" 0 (reply_preloaded r);
          Alcotest.(check string) "cold report still byte-identical"
            (scrub_time baseline)
            (scrub_time (Option.get r.Srv.Client.r_report))))

(* ---- supervision ------------------------------------------------- *)

(* Fork a supervised daemon (supervisor + serving child); the body gets
   the socket and the SUPERVISOR pid.  A fast backoff ladder keeps the
   test snappy. *)
let with_supervised ?(workers = 2) ?(faults = no_faults) ?(seed = 42)
    ?checkpoint (k : string -> int -> unit) : unit =
  let sock = fresh_socket () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      if faults <> [] then R.Faultsim.install ~seed faults;
      let code =
        try
          Srv.Supervisor.run
            ~config:
              {
                Srv.Supervisor.default with
                Srv.Supervisor.s_policy =
                  {
                    R.Backoff.supervisor with
                    R.Backoff.b_base = 0.05;
                    b_max = 0.5;
                  };
              }
            (fun ~restarts ~sup_started ->
              Srv.Daemon.run
                {
                  Srv.Daemon.default with
                  Srv.Daemon.d_socket = sock;
                  d_workers = workers;
                  d_checkpoint = checkpoint;
                  d_checkpoint_s = 0.;
                  d_restarts = restarts;
                  d_supervised = true;
                  d_sup_started = sup_started;
                })
        with _ -> 1
      in
      Unix._exit code
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          if Sys.file_exists sock then Sys.remove sock)
        (fun () ->
          wait_for_daemon sock;
          k sock pid)

let wait_for_revival sock =
  let rec go n =
    if n = 0 then Alcotest.fail "daemon did not come back"
    else
      match Srv.Client.try_connect sock with
      | Some fd -> Srv.Client.close fd
      | None ->
          Unix.sleepf 0.1;
          go (n - 1)
  in
  go 100

let test_supervisor_restart () =
  with_supervised (fun sock _sup_pid ->
      let server = server_status sock in
      let pid1 = server_int "pid" server in
      Alcotest.(check bool) "reports supervised" true
        (Option.value ~default:false
           (Srv.Json.to_bool (Srv.Json.member "supervised" server)));
      Alcotest.(check int) "no restarts yet" 0 (server_int "restarts" server);
      (* the hard way down: no drain, no unlink, nothing *)
      Unix.kill pid1 Sys.sigkill;
      Unix.sleepf 0.1;
      wait_for_revival sock;
      let server = server_status sock in
      Alcotest.(check int) "one restart counted" 1
        (server_int "restarts" server);
      Alcotest.(check bool) "a fresh process" true
        (server_int "pid" server <> pid1);
      let r = ok_exn (Srv.Client.request sock (analyze_json [ ("t.c", prog_simple) ])) in
      Alcotest.(check string) "restarted daemon serves" "ok"
        r.Srv.Client.r_status)

(* ---- chaos soak -------------------------------------------------- *)

let test_chaos_soak () =
  (* a supervised daemon under deterministic chaos — crashing workers,
     dropped connections, torn replies, abrupt daemon deaths — with
     looping retrying clients.  The service must never die, no client
     may hang (each is alarm-guarded), and every ok report must be
     byte-identical to the in-process baseline. *)
  let seed =
    match Option.bind (Sys.getenv_opt "ASTREE_SOAK_SEED") int_of_string_opt
    with
    | Some n -> n
    | None -> 42
  in
  let sources = [ ("t.c", prog_simple) ] in
  let baseline, _ = in_process_report sources in
  with_supervised ~seed
    ~faults:
      [
        (R.Faultsim.Worker_crash, 0.2);
        (R.Faultsim.Conn_drop, 0.15);
        (R.Faultsim.Reply_partial, 0.15);
        (R.Faultsim.Daemon_crash, 0.05);
      ]
    (fun sock _sup_pid ->
      let client i =
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 ->
            (* a client that stops making progress is killed by the
               alarm and fails the test as WSIGNALED.  The fast ladder
               keeps worst-case pacing (20 retries * <=0.5s) well under
               the alarm even if every request exhausts its budget. *)
            ignore (Unix.alarm 120);
            let bad = ref 0 in
            for j = 1 to 6 do
              match
                Srv.Client.request_retry
                  ~policy:
                    {
                      R.Backoff.b_base = 0.05;
                      b_factor = 2.0;
                      b_max = 0.5;
                      b_jitter = 0.25;
                      b_retries = 20;
                    }
                  ~seed:((seed * 1009) + (i * 100) + j)
                  sock
                  (analyze_json ~id:((i * 100) + j) sources)
              with
              | Srv.Client.Reply r when r.Srv.Client.r_status = "ok" -> (
                  match r.Srv.Client.r_report with
                  | Some rep when scrub_time rep = scrub_time baseline -> ()
                  | _ -> incr bad)
              | Srv.Client.Reply r when r.Srv.Client.r_status = "error" ->
                  ()  (* an injected worker crash, reported cleanly *)
              | Srv.Client.Reply _ -> incr bad
              | Srv.Client.No_daemon -> incr bad
              | Srv.Client.Exhausted _ -> ()  (* paced out, not hung *)
            done;
            Unix._exit (if !bad = 0 then 0 else 3)
        | pid -> pid
      in
      let pids = List.init 3 client in
      List.iter
        (fun pid ->
          match snd (Unix.waitpid [] pid) with
          | Unix.WEXITED 0 -> ()
          | Unix.WEXITED 3 -> Alcotest.fail "soak client saw a wrong reply"
          | Unix.WEXITED n -> Alcotest.failf "soak client exited %d" n
          | Unix.WSIGNALED n ->
              Alcotest.failf "soak client killed by signal %d (hung?)" n
          | Unix.WSTOPPED _ -> Alcotest.fail "soak client stopped")
        pids;
      (* the service survived the storm: status still answers (the
         reply itself can be chaos-dropped, so ask a few times) *)
      let rec alive n =
        if n = 0 then Alcotest.fail "daemon unreachable after soak"
        else
          match
            Srv.Client.request sock
              (Srv.Json.Obj [ ("verb", Srv.Json.Str "status") ])
          with
          | Ok r when r.Srv.Client.r_status = "ok" -> ()
          | _ ->
              Unix.sleepf 0.2;
              alive (n - 1)
      in
      alive 30)

(* ---- request ids over the wire ----------------------------------- *)

let test_rid_echo () =
  with_daemon (fun sock ->
      (* a supplied rid is echoed verbatim *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj
                [
                  ("verb", Srv.Json.Str "status");
                  ("rid", Srv.Json.Str "r-my-trace-id");
                ]))
      in
      Alcotest.(check (option string))
        "status echoes the rid" (Some "r-my-trace-id")
        rep.Srv.Client.r_rid;
      (* the client stamps analyze requests itself; the daemon echoes *)
      let req = analyze_json ~id:1 [ ("t.c", prog_simple) ] in
      let sent_rid = Srv.Json.to_str (Srv.Json.member "rid" req) in
      Alcotest.(check bool) "client mints a rid" true (sent_rid <> None);
      let rep = ok_exn (Srv.Client.request sock req) in
      Alcotest.(check (option string))
        "analyze echoes the client's rid" sent_rid rep.Srv.Client.r_rid;
      (* a rid-less request still gets one (daemon-minted, unique) *)
      let bare () =
        let rep =
          ok_exn
            (Srv.Client.request sock
               (Srv.Json.Obj [ ("verb", Srv.Json.Str "status") ]))
        in
        match rep.Srv.Client.r_rid with
        | Some r when r <> "" -> r
        | _ -> Alcotest.fail "daemon did not mint a rid"
      in
      let r1 = bare () and r2 = bare () in
      Alcotest.(check bool) "daemon-minted rids are distinct" true (r1 <> r2);
      (* error replies carry the rid too *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj
                [
                  ("verb", Srv.Json.Str "explode");
                  ("rid", Srv.Json.Str "r-err-1");
                ]))
      in
      Alcotest.(check string) "unknown verb errors" "error"
        rep.Srv.Client.r_status;
      Alcotest.(check (option string))
        "error reply echoes the rid" (Some "r-err-1") rep.Srv.Client.r_rid)

(* ---- telemetry HTTP endpoint ------------------------------------- *)

(* The daemon forks before binding its HTTP port, so the test cannot
   read a kernel-chosen port back: pick a pseudo-random high port from
   the pid and a per-test offset instead. *)
let test_port =
  let n = ref 0 in
  fun () ->
    incr n;
    17000 + (((Unix.getpid () * 131) + (!n * 977)) mod 40000)

(* one HTTP/1.0 GET against the daemon's telemetry listener *)
let http_get port path : int * string =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = "GET " ^ path ^ " HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let code =
        try Scanf.sscanf raw "HTTP/1.0 %d" (fun c -> c) with _ -> -1
      in
      let body =
        let marker = "\r\n\r\n" in
        let rec find i =
          if i + 4 > String.length raw then String.length raw
          else if String.sub raw i 4 = marker then i + 4
          else find (i + 1)
        in
        let start = find 0 in
        String.sub raw start (String.length raw - start)
      in
      (code, body))

let rec http_get_retry ?(n = 40) port path =
  match http_get port path with
  | r -> r
  | exception Unix.Unix_error _ when n > 0 ->
      Unix.sleepf 0.05;
      http_get_retry ~n:(n - 1) port path

let test_http_endpoints () =
  let port = test_port () in
  with_daemon_ex ~http_port:port (fun sock _pid ->
      let code, body = http_get_retry port "/healthz" in
      Alcotest.(check int) "healthz 200" 200 code;
      Alcotest.(check string) "healthz body" "ok\n" body;
      let code, _ = http_get_retry port "/readyz" in
      Alcotest.(check int) "readyz 200 when idle" 200 code;
      (* serve one request, then scrape *)
      let rep =
        ok_exn
          (Srv.Client.request sock (analyze_json [ ("t.c", prog_simple) ]))
      in
      Alcotest.(check string) "analyze ok" "ok" rep.Srv.Client.r_status;
      let code, body = http_get_retry port "/metrics" in
      Alcotest.(check int) "metrics 200" 200 code;
      List.iter
        (fun sub ->
          Alcotest.(check bool) ("exposition has " ^ sub) true
            (has_sub body sub))
        [
          "astreed_up 1";
          "# TYPE astreed_requests_total counter";
          "astreed_requests_total{outcome=\"ok\",verb=\"analyze\"} 1";
          "astreed_request_duration_seconds_bucket";
          "quantile=\"0.99\"";
        ];
      (* /status serves the status verb's JSON, enriched *)
      let code, body = http_get_retry port "/status" in
      Alcotest.(check int) "status 200" 200 code;
      (match Srv.Json.parse body with
      | Error e -> Alcotest.failf "/status unparsable: %s" e
      | Ok j ->
          Alcotest.(check bool) "status has uptime" true
            (Srv.Json.to_num (Srv.Json.member "uptime_s" j) <> None);
          Alcotest.(check bool) "status has checkpoint age" true
            (Srv.Json.to_num (Srv.Json.member "checkpoint_age_s" j) <> None);
          Alcotest.(check bool) "status summarizes breakers" true
            (Srv.Json.member "breakers" j <> Srv.Json.Null);
          Alcotest.(check bool) "status carries latency quantiles" true
            (Srv.Json.member "latency" j <> Srv.Json.Null));
      let code, _ = http_get_retry port "/nothing-here" in
      Alcotest.(check int) "unknown path 404" 404 code;
      (* the socket protocol's status verb reports the same enrichment *)
      let server = server_status sock in
      Alcotest.(check bool) "verb status has breakers too" true
        (Srv.Json.member "breakers" server <> Srv.Json.Null))

let test_readyz_drain () =
  (* a hung worker keeps one request in flight; SIGTERM starts the
     drain; /readyz must flip to 503 while the daemon finishes *)
  let port = test_port () in
  with_daemon_ex ~workers:1 ~http_port:port ~hang:1.2
    ~faults:[ (R.Faultsim.Worker_hang, 1.0) ]
    (fun sock pid ->
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          send_analyze ~id:1 fd;
          Unix.sleepf 0.2;
          let code, _ = http_get_retry port "/readyz" in
          Alcotest.(check int) "ready while serving" 200 code;
          Unix.kill pid Sys.sigterm;
          Unix.sleepf 0.2;
          let code, body = http_get_retry port "/readyz" in
          Alcotest.(check int) "draining answers 503" 503 code;
          Alcotest.(check bool) "body names the reason" true
            (has_sub body "draining");
          (* liveness stays green through the drain *)
          let code, _ = http_get_retry port "/healthz" in
          Alcotest.(check int) "healthz still 200" 200 code;
          (* the in-flight request is still delivered *)
          let line = ok_exn (Srv.Client.read_reply (Srv.Client.reader fd)) in
          Alcotest.(check string) "in-flight drained" "ok"
            (Srv.Client.decode line).Srv.Client.r_status))

let test_access_log_wire () =
  (* every wire request leaves one structured line; outcomes include
     the dedup of an attached duplicate *)
  let log = Filename.temp_file "astreed-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists log then Sys.remove log;
      if Sys.file_exists (log ^ ".1") then Sys.remove (log ^ ".1"))
    (fun () ->
      with_daemon_ex ~workers:1 ~access_log:log (fun sock _pid ->
          let rep =
            ok_exn
              (Srv.Client.request sock
                 (analyze_json [ ("t.c", prog_simple) ]))
          in
          Alcotest.(check string) "analyze ok" "ok" rep.Srv.Client.r_status;
          let rep =
            ok_exn
              (Srv.Client.request sock
                 (Srv.Json.Obj [ ("verb", Srv.Json.Str "status") ]))
          in
          Alcotest.(check string) "status ok" "ok" rep.Srv.Client.r_status);
      (* daemon reaped by with_daemon_ex: the log is complete *)
      let ic = open_in log in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let records =
        List.rev_map
          (fun l ->
            match Srv.Json.parse l with
            | Ok j -> j
            | Error e -> Alcotest.failf "torn access-log line %s: %s" l e)
          !lines
      in
      let events =
        List.filter_map
          (fun j -> Srv.Json.to_str (Srv.Json.member "event" j))
          records
      in
      Alcotest.(check bool) "log opens with the start event" true
        (List.mem "start" events);
      let requests =
        List.filter
          (fun j ->
            Srv.Json.to_str (Srv.Json.member "event" j) = Some "request")
          records
      in
      Alcotest.(check int) "one line per request" 2 (List.length requests);
      List.iter
        (fun j ->
          Alcotest.(check bool) "request line carries a rid" true
            (match Srv.Json.to_str (Srv.Json.member "rid" j) with
            | Some r -> r <> ""
            | None -> false))
        requests)

let suite =
  [
    Alcotest.test_case "json codec round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "options wire round-trip" `Quick
      test_options_roundtrip;
    Alcotest.test_case "every verb round-trips" `Quick test_verbs;
    Alcotest.test_case "client parity with in-process" `Slow
      test_client_parity;
    Alcotest.test_case "concurrent configs match one-shots" `Slow
      test_concurrent_configs;
    Alcotest.test_case "queue-full requests are shed" `Quick
      test_queue_full_shed;
    Alcotest.test_case "worker crash is a request error" `Quick
      test_worker_crash;
    Alcotest.test_case "shutdown drains in-flight work" `Quick
      test_shutdown_drains;
    Alcotest.test_case "client retries through shed" `Slow
      test_request_retry_shed;
    Alcotest.test_case "client retries through dropped connections" `Slow
      test_request_retry_conn_drop;
    Alcotest.test_case "identical in-flight requests dedup" `Slow test_dedup;
    Alcotest.test_case "circuit breaker opens per program" `Quick
      test_circuit_breaker;
    Alcotest.test_case "SIGHUP hot-reloads config" `Slow test_sighup_reload;
    Alcotest.test_case "checkpoint recovers warm state" `Slow
      test_checkpoint_recovery;
    Alcotest.test_case "torn checkpoint degrades to cold" `Slow
      test_checkpoint_torn;
    Alcotest.test_case "supervisor restarts a killed daemon" `Slow
      test_supervisor_restart;
    Alcotest.test_case "chaos soak: service survives, replies exact" `Slow
      test_chaos_soak;
    Alcotest.test_case "request ids echo end-to-end" `Quick test_rid_echo;
    Alcotest.test_case "http telemetry endpoints" `Quick test_http_endpoints;
    Alcotest.test_case "readyz flips 503 during drain" `Quick
      test_readyz_drain;
    Alcotest.test_case "access log records wire requests" `Quick
      test_access_log_wire;
    Alcotest.test_case "multi-task requests are refused" `Quick
      test_multi_task_refused;
  ]
