(* Analysis-server tests: protocol round-trips, client-vs-in-process
   byte parity, concurrent requests under different configurations,
   admission control (queue-full shedding), fault-injected worker
   crashes, and graceful drain on shutdown.

   Each test forks a real daemon on a private socket and talks to it
   over the wire — the same code path [astree --connect] uses. *)

module C = Astree_core
module F = Astree_frontend
module R = Astree_robust
module Srv = Astree_server

(* ---- programs ---------------------------------------------------- *)

(* call-heavy: function summaries make a warm re-analysis cheap *)
let prog_calls =
  "static int lag(int x, int u) {\n\
  \  if (x < u) x = x + 1;\n\
  \  if (x > u) x = x - 1;\n\
  \  return x;\n\
   }\n\
   int main(void) {\n\
  \  int a = 0;\n\
  \  int b = 0;\n\
  \  int c = 0;\n\
  \  while (1) {\n\
  \    a = lag(a, 50);\n\
  \    b = lag(b, 80);\n\
  \    c = lag(c, 20);\n\
  \    __astree_wait_for_clock();\n\
  \  }\n\
  \  return 0;\n\
   }\n"

(* raises an overflow alarm: exercises alarm + provenance rendering *)
let prog_alarm =
  "int main(void) {\n\
  \  int x = 2147483600;\n\
  \  while (1) {\n\
  \    x = x + 100;\n\
  \    __astree_wait_for_clock();\n\
  \  }\n\
  \  return 0;\n\
   }\n"

let prog_simple =
  "int main(void) {\n\
  \  int x = 0;\n\
  \  while (1) {\n\
  \    if (x < 100) x = x + 1;\n\
  \    __astree_wait_for_clock();\n\
  \  }\n\
  \  return 0;\n\
   }\n"

(* ---- helpers ----------------------------------------------------- *)

let fresh_socket () =
  let path = Filename.temp_file "astreed-test" ".sock" in
  Sys.remove path;
  path

let wait_for_daemon sock =
  let rec go n =
    if n = 0 then Alcotest.fail "daemon did not come up"
    else
      match Srv.Client.try_connect sock with
      | Some fd -> Srv.Client.close fd
      | None ->
          Unix.sleepf 0.05;
          go (n - 1)
  in
  go 100

(* Fork a daemon on a private socket; [faults] are armed in the child
   before it starts (inherited by its pool workers).  The body gets the
   socket path; the daemon is SIGTERMed and reaped afterwards. *)
let with_daemon ?(workers = 2) ?(queue = 8) ?(grace = 10.) ?(faults = [])
    ?(hang = 3600.) (k : string -> unit) : unit =
  let sock = fresh_socket () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* daemon process: never return into the test runner *)
      R.Faultsim.hang_seconds := hang;
      if faults <> [] then R.Faultsim.install ~seed:42 faults;
      let code =
        try
          Srv.Daemon.run
            {
              Srv.Daemon.default with
              Srv.Daemon.d_socket = sock;
              d_workers = workers;
              d_queue_depth = queue;
              d_grace = grace;
            }
        with _ -> 1
      in
      Unix._exit code
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          if Sys.file_exists sock then Sys.remove sock)
        (fun () ->
          wait_for_daemon sock;
          k sock)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "protocol failure: %s" e

let send_analyze ?(id = 1) ?(options = Srv.Service.default_options)
    ?(sources = [ ("t.c", prog_simple) ]) fd =
  ok_exn
    (Srv.Client.send fd
       (Srv.Client.analyze_request ~id ~sources ~main:"main" ~options ()))

(* what a one-shot [astree --format json] prints for these sources *)
let in_process_report ?(options = Srv.Service.default_options) sources :
    string * int =
  let cfg = Srv.Service.config_of options ~sources in
  let p, _ = C.Analysis.compile ~main:"main" sources in
  let r = R.Degrade.analyze ~cfg p in
  (Srv.Report.render r, Srv.Report.exit_code r)

(* blank the volatile "time" statistic; everything else must be
   byte-identical between client mode and in-process *)
let scrub_time (s : string) : string =
  let marker = "\"time\": " in
  let mlen = String.length marker in
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + mlen <= n && String.sub s !i mlen = marker then begin
      Buffer.add_string b marker;
      Buffer.add_char b 'T';
      i := !i + mlen;
      while
        !i < n
        &&
        match s.[!i] with
        | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
        | _ -> false
      do
        incr i
      done
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* ---- json codec -------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "[1, 2.5, -3, \"x\"]";
      "{\"a\": [], \"b\": {\"c\": false}}";
      "\"quote \\\" backslash \\\\ newline \\n tab \\t\"";
      "{\"id\": 7, \"verb\": \"analyze\"}";
    ]
  in
  List.iter
    (fun s ->
      match Srv.Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok v -> (
          (* print-parse round-trip is the identity *)
          match Srv.Json.parse (Srv.Json.to_string v) with
          | Error e -> Alcotest.failf "reparse %s: %s" s e
          | Ok v' ->
              Alcotest.(check bool) ("roundtrip " ^ s) true (v = v')))
    cases;
  (match Srv.Json.parse "\"\\u00e9\\ud83d\\ude00\"" with
  | Ok (Srv.Json.Str s) ->
      Alcotest.(check string) "utf-8 decoding" "\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "unicode escapes");
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        ("rejects " ^ bad) true
        (Result.is_error (Srv.Json.parse bad)))
    [ "{"; "[1,"; "\"open"; "nul"; "1 2"; "{\"a\" 1}" ]

let test_options_roundtrip () =
  let o =
    {
      Srv.Service.default_options with
      Srv.Service.o_no_oct = true;
      o_unroll = 3;
      o_partition = [ "f"; "g" ];
      o_useful_packs = [ 1; 4 ];
      o_timeout = 2.5;
      o_cache = `Dir "/tmp/c";
    }
  in
  let o' = Srv.Service.options_of_json (Srv.Service.options_to_json o) in
  Alcotest.(check bool) "options wire round-trip" true (o = o');
  let d =
    Srv.Service.options_of_json (Srv.Service.options_to_json
                                   Srv.Service.default_options)
  in
  Alcotest.(check bool) "defaults round-trip" true
    (d = Srv.Service.default_options)

(* ---- protocol round-trips ---------------------------------------- *)

let test_verbs () =
  with_daemon (fun sock ->
      (* status *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj
                [ ("verb", Srv.Json.Str "status"); ("id", Srv.Json.Num 5.) ]))
      in
      Alcotest.(check string) "status ok" "ok" rep.Srv.Client.r_status;
      (match Srv.Json.parse rep.Srv.Client.r_line with
      | Ok j ->
          let server = Srv.Json.member "server" j in
          Alcotest.(check (option int))
            "status id echoed" (Some 5)
            (Srv.Json.to_int (Srv.Json.member "id" j));
          Alcotest.(check bool)
            "status has workers" true
            (Srv.Json.to_int (Srv.Json.member "workers" server) = Some 2)
      | Error e -> Alcotest.failf "status reply unparsable: %s" e);
      (* metrics *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj [ ("verb", Srv.Json.Str "metrics") ]))
      in
      Alcotest.(check string) "metrics ok" "ok" rep.Srv.Client.r_status;
      Alcotest.(check bool)
        "metrics carries the registry" true
        (match Srv.Json.parse rep.Srv.Client.r_line with
        | Ok j ->
            Srv.Json.member "counters" (Srv.Json.member "metrics" j)
            <> Srv.Json.Null
        | Error _ -> false);
      (* analyze *)
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          send_analyze ~id:9 fd;
          let line = ok_exn (Srv.Client.read_reply (Srv.Client.reader fd)) in
          let rep = Srv.Client.decode line in
          Alcotest.(check string) "analyze ok" "ok" rep.Srv.Client.r_status;
          Alcotest.(check bool)
            "analyze has a report" true
            (rep.Srv.Client.r_report <> None);
          Alcotest.(check int) "clean program exits 0" 0
            rep.Srv.Client.r_exit);
      (* errors: unknown verb, malformed json, missing sources *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj [ ("verb", Srv.Json.Str "explode") ]))
      in
      Alcotest.(check string) "unknown verb" "error" rep.Srv.Client.r_status;
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          let rep =
            Srv.Client.decode (ok_exn (Srv.Client.roundtrip fd "not json"))
          in
          Alcotest.(check string) "malformed request" "error"
            rep.Srv.Client.r_status);
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj [ ("verb", Srv.Json.Str "analyze") ]))
      in
      Alcotest.(check string) "analyze without sources" "error"
        rep.Srv.Client.r_status;
      (* a parse error is a per-request error, not a crash *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.parse
                (Srv.Client.analyze_request
                   ~sources:[ ("bad.c", "int main( {") ]
                   ~main:"main" ~options:Srv.Service.default_options ())
             |> Result.get_ok))
      in
      Alcotest.(check string) "parse error refused" "error"
        rep.Srv.Client.r_status;
      (* shutdown verb: ok reply, then the daemon exits and unlinks *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj [ ("verb", Srv.Json.Str "shutdown") ]))
      in
      Alcotest.(check string) "shutdown ok" "ok" rep.Srv.Client.r_status;
      let rec wait_gone n =
        if Sys.file_exists sock && n > 0 then begin
          Unix.sleepf 0.05;
          wait_gone (n - 1)
        end
      in
      wait_gone 100;
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock))

(* ---- byte parity ------------------------------------------------- *)

let test_client_parity () =
  let programs =
    [ ("simple.c", prog_simple); ("calls.c", prog_calls);
      ("alarm.c", prog_alarm) ]
  in
  with_daemon (fun sock ->
      List.iter
        (fun (name, src) ->
          let sources = [ (name, src) ] in
          let expected, expected_exit = in_process_report sources in
          (* twice: the second request runs against the warm resident
             caches and must still render the same bytes *)
          List.iter
            (fun round ->
              let fd = Option.get (Srv.Client.try_connect sock) in
              Fun.protect
                ~finally:(fun () -> Srv.Client.close fd)
                (fun () ->
                  send_analyze ~sources fd;
                  let line =
                    ok_exn (Srv.Client.read_reply (Srv.Client.reader fd))
                  in
                  let rep = Srv.Client.decode line in
                  Alcotest.(check string)
                    (Printf.sprintf "%s round %d ok" name round)
                    "ok" rep.Srv.Client.r_status;
                  Alcotest.(check int)
                    (Printf.sprintf "%s round %d exit" name round)
                    expected_exit rep.Srv.Client.r_exit;
                  match rep.Srv.Client.r_report with
                  | None -> Alcotest.fail "reply without report"
                  | Some report ->
                      Alcotest.(check string)
                        (Printf.sprintf "%s round %d byte parity" name round)
                        (scrub_time expected) (scrub_time report)))
            [ 1; 2 ])
        programs)

(* ---- concurrency ------------------------------------------------- *)

let test_concurrent_configs () =
  (* different configurations in flight at once — including the
     degradation governor armed on one of them — must each match their
     sequential one-shot *)
  let variants =
    [
      Srv.Service.default_options;
      { Srv.Service.default_options with Srv.Service.o_no_oct = true };
      (* a generous budget arms the watchdog ladder without tripping *)
      { Srv.Service.default_options with Srv.Service.o_timeout = 300. };
    ]
  in
  let sources = [ ("calls.c", prog_calls) ] in
  let expected =
    List.map (fun options -> in_process_report ~options sources) variants
  in
  with_daemon ~workers:3 (fun sock ->
      let conns =
        List.mapi
          (fun i options ->
            let fd = Option.get (Srv.Client.try_connect sock) in
            send_analyze ~id:i ~options ~sources fd;
            (fd, Srv.Client.reader fd))
          variants
      in
      List.iteri
        (fun i ((fd, reader), (want_report, want_exit)) ->
          Fun.protect
            ~finally:(fun () -> Srv.Client.close fd)
            (fun () ->
              let rep = Srv.Client.decode (ok_exn (Srv.Client.read_reply reader)) in
              Alcotest.(check string)
                (Printf.sprintf "variant %d ok" i)
                "ok" rep.Srv.Client.r_status;
              Alcotest.(check int)
                (Printf.sprintf "variant %d exit" i)
                want_exit rep.Srv.Client.r_exit;
              Alcotest.(check string)
                (Printf.sprintf "variant %d equals its one-shot" i)
                (scrub_time want_report)
                (scrub_time (Option.get rep.Srv.Client.r_report))))
        (List.combine conns expected))

(* ---- admission control ------------------------------------------- *)

let test_queue_full_shed () =
  (* one worker, no queue; the worker is held busy by an injected hang,
     so a pipelined second request must be shed immediately *)
  with_daemon ~workers:1 ~queue:0 ~hang:0.8
    ~faults:[ (R.Faultsim.Worker_hang, 1.0) ]
    (fun sock ->
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          send_analyze ~id:1 fd;
          (* give the event loop time to hand request 1 to the worker *)
          Unix.sleepf 0.2;
          send_analyze ~id:2 fd;
          let reader = Srv.Client.reader fd in
          let first = Srv.Client.decode (ok_exn (Srv.Client.read_reply reader)) in
          let second = Srv.Client.decode (ok_exn (Srv.Client.read_reply reader)) in
          (* the shed reply overtakes the in-flight one *)
          Alcotest.(check string) "request 2 shed" "shed"
            first.Srv.Client.r_status;
          Alcotest.(check (option string))
            "shed names the queue" (Some "queue full")
            first.Srv.Client.r_error;
          Alcotest.(check string) "request 1 still served" "ok"
            second.Srv.Client.r_status))

(* ---- fault injection --------------------------------------------- *)

let test_worker_crash () =
  (* every worker self-kills on job receipt: the request fails with a
     per-request error and the daemon survives to answer status *)
  with_daemon ~workers:1 ~faults:[ (R.Faultsim.Worker_crash, 1.0) ]
    (fun sock ->
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          send_analyze fd;
          let rep =
            Srv.Client.decode
              (ok_exn (Srv.Client.read_reply (Srv.Client.reader fd)))
          in
          Alcotest.(check string) "crash is a request error" "error"
            rep.Srv.Client.r_status;
          Alcotest.(check bool)
            "error names the crash" true
            (match rep.Srv.Client.r_error with
            | Some m ->
                (* substring check *)
                let has_sub s sub =
                  let n = String.length s and m' = String.length sub in
                  let rec go i =
                    i + m' <= n
                    && (String.sub s i m' = sub || go (i + 1))
                  in
                  go 0
                in
                has_sub m "crash"
            | None -> false));
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.Obj [ ("verb", Srv.Json.Str "status") ]))
      in
      Alcotest.(check string) "daemon alive after crash" "ok"
        rep.Srv.Client.r_status)

(* ---- graceful shutdown ------------------------------------------- *)

let test_shutdown_drains () =
  (* worker 1 is busy (hang), request 2 queued; shutdown must answer
     ok, tell the queued client shutting_down, and still deliver the
     in-flight reply before exiting *)
  with_daemon ~workers:1 ~queue:8 ~hang:0.8
    ~faults:[ (R.Faultsim.Worker_hang, 1.0) ]
    (fun sock ->
      let fd = Option.get (Srv.Client.try_connect sock) in
      Fun.protect
        ~finally:(fun () -> Srv.Client.close fd)
        (fun () ->
          send_analyze ~id:1 fd;
          Unix.sleepf 0.2;
          send_analyze ~id:2 fd;
          Unix.sleepf 0.1;
          ok_exn
            (Srv.Client.send fd
               (Srv.Json.to_string
                  (Srv.Json.Obj
                     [ ("verb", Srv.Json.Str "shutdown");
                       ("id", Srv.Json.Num 3.) ])));
          let reader = Srv.Client.reader fd in
          let shutdown_ack =
            Srv.Client.decode (ok_exn (Srv.Client.read_reply reader))
          in
          let queued =
            Srv.Client.decode (ok_exn (Srv.Client.read_reply reader))
          in
          let inflight =
            Srv.Client.decode (ok_exn (Srv.Client.read_reply reader))
          in
          Alcotest.(check string) "shutdown acknowledged" "ok"
            shutdown_ack.Srv.Client.r_status;
          Alcotest.(check string) "queued request told shutting_down"
            "shutting_down" queued.Srv.Client.r_status;
          Alcotest.(check string) "in-flight request drained" "ok"
            inflight.Srv.Client.r_status);
      let rec wait_gone n =
        if Sys.file_exists sock && n > 0 then begin
          Unix.sleepf 0.05;
          wait_gone (n - 1)
        end
      in
      wait_gone 100;
      Alcotest.(check bool) "socket unlinked after drain" false
        (Sys.file_exists sock))

(* ---- multi-task rejection ---------------------------------------- *)

(* a two-task program: the daemon must refuse it with a clean error
   reply pointing at the one-shot CLI, not fail worker-side *)
let prog_multi_task =
  "/* astree-task: t1 t2 */\n\
   int g;\n\
   void t1(void) { while (1) { g = g + 1; __astree_wait_for_clock(); } }\n\
   void t2(void) { while (1) { int x = g; __astree_wait_for_clock(); } }\n\
   int main(void) { while (1) { __astree_wait_for_clock(); } }\n"

let test_multi_task_refused () =
  (* worker-side behavior, without a daemon round-trip *)
  (match
     Srv.Service.serve
       {
         Srv.Service.w_sources = [ ("m.c", prog_multi_task) ];
         w_main = "main";
         w_options = Srv.Service.default_options;
         w_preload = [];
         w_strip_cache = true;
       }
   with
  | Srv.Service.Refused msg ->
      Alcotest.(check bool) "refusal names the markers" true
        (let has sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length msg
            && (String.sub msg i n = sub || go (i + 1))
          in
          go 0
        in
        has "multi-task" && has "t1 t2" && has "--connect")
  | Srv.Service.Served _ ->
      Alcotest.fail "multi-task request must be refused");
  (* over the wire: a clean error reply, and the daemon stays up *)
  with_daemon (fun sock ->
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.parse
                (Srv.Client.analyze_request
                   ~sources:[ ("m.c", prog_multi_task) ]
                   ~main:"main" ~options:Srv.Service.default_options ())
             |> Result.get_ok))
      in
      Alcotest.(check string) "multi-task refused" "error"
        rep.Srv.Client.r_status;
      (* the daemon still serves sequential requests afterwards *)
      let rep =
        ok_exn
          (Srv.Client.request sock
             (Srv.Json.parse
                (Srv.Client.analyze_request
                   ~sources:[ ("t.c", prog_simple) ]
                   ~main:"main" ~options:Srv.Service.default_options ())
             |> Result.get_ok))
      in
      Alcotest.(check string) "daemon survives" "ok" rep.Srv.Client.r_status)

let suite =
  [
    Alcotest.test_case "json codec round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "options wire round-trip" `Quick
      test_options_roundtrip;
    Alcotest.test_case "every verb round-trips" `Quick test_verbs;
    Alcotest.test_case "client parity with in-process" `Slow
      test_client_parity;
    Alcotest.test_case "concurrent configs match one-shots" `Slow
      test_concurrent_configs;
    Alcotest.test_case "queue-full requests are shed" `Quick
      test_queue_full_shed;
    Alcotest.test_case "worker crash is a request error" `Quick
      test_worker_crash;
    Alcotest.test_case "shutdown drains in-flight work" `Quick
      test_shutdown_drains;
    Alcotest.test_case "multi-task requests are refused" `Quick
      test_multi_task_refused;
  ]
