(* Program-family generator tests. *)

module G = Astree_gen
module F = Astree_frontend
module C = Astree_core

let test_deterministic () =
  let g1 = G.Generator.generate G.Generator.default in
  let g2 = G.Generator.generate G.Generator.default in
  Alcotest.(check string) "same source" g1.G.Generator.source g2.G.Generator.source

let test_seed_changes_output () =
  let g1 = G.Generator.generate { G.Generator.default with seed = 1 } in
  let g2 = G.Generator.generate { G.Generator.default with seed = 2 } in
  Alcotest.(check bool) "different" true
    (g1.G.Generator.source <> g2.G.Generator.source)

let test_size_scaling () =
  let small = G.Generator.generate { G.Generator.default with target_lines = 300 } in
  let large = G.Generator.generate { G.Generator.default with target_lines = 3000 } in
  Alcotest.(check bool) "roughly on target" true
    (abs (small.G.Generator.n_lines - 300) < 150);
  Alcotest.(check bool) "scales" true
    (large.G.Generator.n_lines > 5 * small.G.Generator.n_lines)

let test_every_shape_compiles_alone () =
  List.iter
    (fun kind ->
      let g =
        G.Generator.generate
          { G.Generator.default with mix = [ kind ]; target_lines = 60 }
      in
      match F.Parser.parse_string ~file:"g" g.G.Generator.source with
      | ast ->
          let p = F.Typecheck.elab_program ast in
          Alcotest.(check bool)
            (G.Shapes.kind_name kind) true
            (List.length p.F.Tast.p_funs >= 1)
      | exception e ->
          Alcotest.failf "shape %s does not compile: %s"
            (G.Shapes.kind_name kind) (Printexc.to_string e))
    (G.Shapes.all_safe_kinds @ G.Shapes.all_bug_kinds)

let test_every_safe_shape_verifies_alone () =
  List.iter
    (fun kind ->
      let g =
        G.Generator.generate
          { G.Generator.default with mix = [ kind ]; target_lines = 80 }
      in
      let cfg =
        {
          C.Config.default with
          C.Config.partitioned_functions = g.G.Generator.partition_fns;
        }
      in
      let r = C.Analysis.analyze_string ~cfg g.G.Generator.source in
      Alcotest.(check int)
        (G.Shapes.kind_name kind ^ " has no false alarms")
        0 (C.Analysis.n_alarms r))
    G.Shapes.all_safe_kinds

let test_bug_shapes_alarm () =
  List.iter
    (fun kind ->
      let g =
        G.Generator.generate
          { G.Generator.default with mix = [ kind ]; target_lines = 40; bug_ratio = 1.0 }
      in
      let r = C.Analysis.analyze_string g.G.Generator.source in
      Alcotest.(check bool)
        (G.Shapes.kind_name kind ^ " alarms")
        true
        (C.Analysis.n_alarms r > 0))
    G.Shapes.all_bug_kinds

let test_reference_runs_concretely () =
  let g = G.Generator.reference ~target_lines:300 () in
  let ast = F.Parser.parse_string ~file:"ref" g.G.Generator.source in
  let p = F.Typecheck.elab_program ast in
  match F.Interp.run ~max_ticks:100 p with
  | F.Interp.Finished -> ()
  | F.Interp.Error (k, l) ->
      Alcotest.failf "reference program fails concretely: %a at %a"
        F.Interp.pp_error_kind k F.Loc.pp l

let test_globals_linear_in_size () =
  (* Sect. 4: "the number of global and static variables is roughly
     linear in the length of the code" *)
  let count lines =
    let g = G.Generator.generate { G.Generator.default with target_lines = lines } in
    let ast = F.Parser.parse_string ~file:"g" g.G.Generator.source in
    let p = F.Typecheck.elab_program ast in
    (g.G.Generator.n_lines, List.length p.F.Tast.p_globals)
  in
  let l1, g1 = count 500 and l2, g2 = count 2000 in
  let density1 = float_of_int g1 /. float_of_int l1 in
  let density2 = float_of_int g2 /. float_of_int l2 in
  Alcotest.(check bool) "linear density" true
    (density2 > 0.5 *. density1 && density2 < 2.0 *. density1)

(* fuse > 1 wraps the shapes in stage functions without changing what
   the program computes: same shapes, same (absent) alarms *)
let test_fuse_stages () =
  let cfg = { G.Generator.default with G.Generator.target_lines = 300 } in
  let flat = G.Generator.generate cfg in
  let fused = G.Generator.generate { cfg with G.Generator.fuse = 4 } in
  Alcotest.(check int)
    "same shape census" flat.G.Generator.n_shapes fused.G.Generator.n_shapes;
  Alcotest.(check bool)
    "stage functions emitted" true
    (let re = "stage_0" in
     let s = fused.G.Generator.source in
     let n = String.length s and m = String.length re in
     let rec find i = i + m <= n && (String.sub s i m = re || find (i + 1)) in
     find 0);
  let acfg =
    {
      C.Config.default with
      C.Config.partitioned_functions = fused.G.Generator.partition_fns;
    }
  in
  let r = C.Analysis.analyze_string ~cfg:acfg fused.G.Generator.source in
  Alcotest.(check int) "fused member has no alarms" 0 (C.Analysis.n_alarms r)

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "fused stages verify" `Quick test_fuse_stages;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_output;
    Alcotest.test_case "size scaling" `Quick test_size_scaling;
    Alcotest.test_case "every shape compiles" `Quick test_every_shape_compiles_alone;
    Alcotest.test_case "every safe shape verifies" `Slow test_every_safe_shape_verifies_alone;
    Alcotest.test_case "bug shapes alarm" `Quick test_bug_shapes_alarm;
    Alcotest.test_case "reference runs concretely" `Quick test_reference_runs_concretely;
    Alcotest.test_case "globals linear in size" `Quick test_globals_linear_in_size;
  ]
