(* Systematic lattice-law property tests across all abstract domains:
   join is an upper bound and commutative, meet is a lower bound,
   subset is reflexive and transitive, widening dominates both sides,
   and iterated widening terminates.  These are the soundness
   obligations of Sect. 5.5 and [8, 11]. *)

module F = Astree_frontend
module D = Astree_domains

let mkvar =
  let next = ref 7000 in
  fun name ty ->
    incr next;
    {
      F.Tast.v_id = !next;
      v_name = name;
      v_orig = name;
      v_ty = ty;
      v_kind = F.Tast.Kglobal;
      v_volatile = false;
      v_loc = F.Loc.dummy;
    }

(* ------------------------------------------------------------------ *)
(* Octagon                                                             *)
(* ------------------------------------------------------------------ *)

(* fixed 3-variable pack shared by all generated octagons *)
let oct_pack =
  [| mkvar "ox" F.Ctypes.t_float; mkvar "oy" F.Ctypes.t_float;
     mkvar "oz" F.Ctypes.t_float |]

type oct_recipe = {
  boxes : (float * float) list;  (** per variable *)
  diffs : (int * int * float) list;  (** x_i - x_j <= c *)
  sums : (int * int * float) list;   (** x_i + x_j <= c *)
}

let gen_oct_recipe : oct_recipe QCheck.Gen.t =
  QCheck.Gen.(
    let bound = float_range (-40.0) 40.0 in
    let pair_c =
      triple (int_range 0 2) (int_range 0 2) (float_range (-20.0) 60.0)
    in
    map3
      (fun boxes diffs sums -> { boxes; diffs; sums })
      (list_repeat 3
         (map2 (fun a b -> (Float.min a b, Float.max a b)) bound bound))
      (list_size (int_range 0 3) pair_c)
      (list_size (int_range 0 3) pair_c))

let build_oct (r : oct_recipe) : D.Octagon.t =
  let o = D.Octagon.top oct_pack in
  List.iteri (fun i (lo, hi) -> D.Octagon.set_bounds o oct_pack.(i) (lo, hi)) r.boxes;
  List.iter
    (fun (i, j, c) ->
      if i <> j then D.Octagon.add_diff_le o oct_pack.(i) oct_pack.(j) c)
    r.diffs;
  List.iter
    (fun (i, j, c) ->
      if i <> j then D.Octagon.add_sum_le o oct_pack.(i) oct_pack.(j) c)
    r.sums;
  D.Octagon.close o;
  o

let arb_oct =
  QCheck.make
    ~print:(fun r -> Fmt.str "%d boxes" (List.length r.boxes))
    gen_oct_recipe

let oct_props =
  let module O = D.Octagon in
  [
    QCheck.Test.make ~name:"octagon: subset reflexive" arb_oct (fun r ->
        let o = build_oct r in
        O.subset o o);
    QCheck.Test.make ~name:"octagon: join upper bound"
      (QCheck.pair arb_oct arb_oct) (fun (r1, r2) ->
        let a = build_oct r1 and b = build_oct r2 in
        let j = O.join a b in
        O.subset a j && O.subset b j);
    QCheck.Test.make ~name:"octagon: join commutative"
      (QCheck.pair arb_oct arb_oct) (fun (r1, r2) ->
        let a = build_oct r1 and b = build_oct r2 in
        O.equal (O.join a b) (O.join b a));
    QCheck.Test.make ~name:"octagon: meet lower bound"
      (QCheck.pair arb_oct arb_oct) (fun (r1, r2) ->
        let a = build_oct r1 and b = build_oct r2 in
        let m = O.meet a b in
        O.subset m a && O.subset m b);
    QCheck.Test.make ~name:"octagon: widen dominates"
      (QCheck.pair arb_oct arb_oct) (fun (r1, r2) ->
        let a = build_oct r1 and b = build_oct r2 in
        let w = O.widen ~thresholds:D.Thresholds.default a b in
        O.subset a w && O.subset b w);
    QCheck.Test.make ~name:"octagon: closure reductive, idempotent to 1 ulp"
      arb_oct (fun r ->
        let o = build_oct r in
        let before = O.copy o in
        O.close o;
        O.subset o before
        &&
        let once = O.copy o in
        O.close o;
        (* with upward-rounded bound arithmetic, a second closure may
           shave at most rounding noise off each entry *)
        O.subset o once
        &&
        let n2 = 2 * Array.length oct_pack in
        let ok = ref true in
        for i = 0 to n2 - 1 do
          for j = 0 to n2 - 1 do
            let a = o.O.m.((i * n2) + j) and b = once.O.m.((i * n2) + j) in
            if
              not
                (a = b
                || Float.abs (a -. b)
                   <= 1e-9 *. Float.max 1.0 (Float.abs b))
            then ok := false
          done
        done;
        !ok);
  ]

(* ------------------------------------------------------------------ *)
(* Ellipsoid                                                           *)
(* ------------------------------------------------------------------ *)

let ell_pack =
  [| mkvar "ex" F.Ctypes.t_float; mkvar "ey" F.Ctypes.t_float;
     mkvar "ez" F.Ctypes.t_float |]

let build_ell (ks : (int * int * float) list) : D.Ellipsoid.t =
  let e = D.Ellipsoid.make ~a:1.5 ~b:0.7 ~fkind:F.Ctypes.Fsingle ell_pack in
  List.fold_left
    (fun e (i, j, k) -> D.Ellipsoid.set e ell_pack.(i) ell_pack.(j) (Float.abs k))
    e ks

let arb_ell =
  QCheck.make
    ~print:(fun l -> Fmt.str "%d constraints" (List.length l))
    QCheck.Gen.(
      list_size (int_range 0 4)
        (triple (int_range 0 2) (int_range 0 2) (float_range 0.0 100.0)))

let ell_props =
  let module E = D.Ellipsoid in
  [
    QCheck.Test.make ~name:"ellipsoid: subset reflexive" arb_ell (fun l ->
        let e = build_ell l in
        E.subset e e);
    QCheck.Test.make ~name:"ellipsoid: join upper bound"
      (QCheck.pair arb_ell arb_ell) (fun (l1, l2) ->
        let a = build_ell l1 and b = build_ell l2 in
        let j = E.join a b in
        E.subset a j && E.subset b j);
    QCheck.Test.make ~name:"ellipsoid: meet lower bound"
      (QCheck.pair arb_ell arb_ell) (fun (l1, l2) ->
        let a = build_ell l1 and b = build_ell l2 in
        let m = E.meet a b in
        E.subset m a && E.subset m b);
    QCheck.Test.make ~name:"ellipsoid: widen dominates"
      (QCheck.pair arb_ell arb_ell) (fun (l1, l2) ->
        let a = build_ell l1 and b = build_ell l2 in
        let w = E.widen ~thresholds:D.Thresholds.default a b in
        E.subset a w && E.subset b w);
    QCheck.Test.make ~name:"ellipsoid: delta monotone"
      (QCheck.pair (QCheck.float_range 0.0 100.0) (QCheck.float_range 0.0 100.0))
      (fun (k1, k2) ->
        let e = build_ell [] in
        let lo = Float.min k1 k2 and hi = Float.max k1 k2 in
        E.delta e ~t_max:1.0 lo <= E.delta e ~t_max:1.0 hi);
  ]

(* ------------------------------------------------------------------ *)
(* Decision trees                                                      *)
(* ------------------------------------------------------------------ *)

let dt_bools = [| mkvar "db1" F.Ctypes.t_bool; mkvar "db2" F.Ctypes.t_bool |]
let dt_nums = [| mkvar "dn" F.Ctypes.t_int |]

(* random tree built by a sequence of guard/assign operations *)
type dt_op =
  | Guard of int * bool
  | AssignNum of int * int
  | AssignBool of int * bool
  | ForgetB of int

let gen_dt : D.Decision_tree.t QCheck.Gen.t =
  QCheck.Gen.(
    let op =
      oneof
        [
          map2 (fun i b -> Guard (i, b)) (int_range 0 1) bool;
          map2 (fun lo w -> AssignNum (lo, w)) (int_range (-20) 20) (int_range 0 20);
          map2 (fun i b -> AssignBool (i, b)) (int_range 0 1) bool;
          map (fun i -> ForgetB i) (int_range 0 1);
        ]
    in
    map
      (fun ops ->
        List.fold_left
          (fun d op ->
            match op with
            | Guard (i, b) ->
                let d' = D.Decision_tree.guard_bool d dt_bools.(i) b in
                if D.Decision_tree.is_bot d' then d else d'
            | AssignNum (lo, w) ->
                D.Decision_tree.assign_num d dt_nums.(0) (fun _ _ ->
                    D.Itv.int_range lo (lo + w))
            | AssignBool (i, b) ->
                D.Decision_tree.assign_bool_const d dt_bools.(i) b
            | ForgetB i -> D.Decision_tree.forget_bool d dt_bools.(i))
          (D.Decision_tree.top dt_bools dt_nums)
          ops)
      (list_size (int_range 0 8) op))

let arb_dt = QCheck.make ~print:(fun d -> Fmt.str "tree/%d" (D.Decision_tree.size d)) gen_dt

let dt_props =
  let module T = D.Decision_tree in
  [
    QCheck.Test.make ~name:"dtree: subset reflexive" arb_dt (fun d -> T.subset d d);
    QCheck.Test.make ~name:"dtree: join upper bound" (QCheck.pair arb_dt arb_dt)
      (fun (a, b) ->
        let j = T.join a b in
        T.subset a j && T.subset b j);
    QCheck.Test.make ~name:"dtree: join commutative-ish"
      (QCheck.pair arb_dt arb_dt) (fun (a, b) ->
        T.equal (T.join a b) (T.join b a));
    QCheck.Test.make ~name:"dtree: meet lower bound" (QCheck.pair arb_dt arb_dt)
      (fun (a, b) ->
        let m = T.meet a b in
        T.subset m a && T.subset m b);
    QCheck.Test.make ~name:"dtree: widen dominates" (QCheck.pair arb_dt arb_dt)
      (fun (a, b) ->
        let w = T.widen ~thresholds:D.Thresholds.default a b in
        T.subset a w && T.subset b w);
    QCheck.Test.make ~name:"dtree: guard refines" (QCheck.pair arb_dt QCheck.bool)
      (fun (d, v) ->
        let g = T.guard_bool d dt_bools.(0) v in
        T.subset g d);
  ]

(* ------------------------------------------------------------------ *)
(* Clocked                                                             *)
(* ------------------------------------------------------------------ *)

let gen_clocked : D.Clocked.t QCheck.Gen.t =
  QCheck.Gen.(
    let itv =
      map2
        (fun a b -> D.Itv.int_range (min a b) (max a b))
        (int_range (-100) 100) (int_range (-100) 100)
    in
    map3
      (fun i clk ticks ->
        let c = D.Clocked.of_itv i (D.Itv.int_const clk) in
        let rec tick n c = if n = 0 then c else tick (n - 1) (D.Clocked.tick c) in
        tick ticks c)
      itv (int_range 0 5) (int_range 0 5))

let arb_clocked =
  QCheck.make ~print:(Fmt.str "%a" D.Clocked.pp) gen_clocked

let clocked_props =
  let module C = D.Clocked in
  [
    QCheck.Test.make ~name:"clocked: subset reflexive" arb_clocked (fun c ->
        C.subset c c);
    QCheck.Test.make ~name:"clocked: join upper bound"
      (QCheck.pair arb_clocked arb_clocked) (fun (a, b) ->
        let j = C.join a b in
        C.subset a j && C.subset b j);
    QCheck.Test.make ~name:"clocked: meet lower bound"
      (QCheck.pair arb_clocked arb_clocked) (fun (a, b) ->
        let m = C.meet a b in
        C.subset m a && C.subset m b);
    QCheck.Test.make ~name:"clocked: widen dominates"
      (QCheck.pair arb_clocked arb_clocked) (fun (a, b) ->
        let w = C.widen ~thresholds:D.Thresholds.default a b in
        C.subset a w && C.subset b w);
    QCheck.Test.make ~name:"clocked: reduce is reductive" arb_clocked (fun c ->
        let r = C.reduce (D.Itv.int_range 0 10) c in
        C.subset r c || C.is_bot r);
  ]

let suite =
  List.map QCheck_alcotest.to_alcotest
    (oct_props @ ell_props @ dt_props @ clocked_props)
