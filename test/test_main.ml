(* Test runner: all suites. *)

let () =
  (* The OCaml 5 runtime forbids Unix.fork once any domain has ever
     been spawned in the process, and this binary interleaves
     fork-based tests (pool, chaos, robust, daemon) with parallel
     analyses.  Pin [`Auto] to the fork backend here; domains-backend
     coverage in Test_parallel runs inside forked child processes. *)
  Astree_parallel.Scheduler.auto_backend := `Fork;
  Alcotest.run "astree"
    [
      ("float-utils", Test_float_utils.suite);
      ("itv", Test_itv.suite);
      ("clocked", Test_clocked.suite);
      ("linear-forms", Test_linform.suite);
      ("octagon", Test_octagon.suite);
      ("ellipsoid", Test_ellipsoid.suite);
      ("decision-tree", Test_dtree.suite);
      ("ptmap", Test_ptmap.suite);
      ("env", Test_env.suite);
      ("lattice", Test_lattice.suite);
      ("frontend", Test_frontend.suite);
      ("semantics", Test_semantics.suite);
      ("packing", Test_packing.suite);
      ("transfer", Test_transfer.suite);
      ("iterator", Test_iterator.suite);
      ("analysis", Test_analysis.suite);
      ("generator", Test_gen.suite);
      ("invariants", Test_invariants.suite);
      ("slicer", Test_slicer.suite);
      ("samples", Test_samples.suite);
      ("parallel", Test_parallel.suite);
      ("observability", Test_obs.suite);
      ("incremental", Test_incremental.suite);
      ("soundness", Test_soundness.suite);
      ("concurrency", Test_concurrency.suite);
      ("robust", Test_robust.suite);
      ("server", Test_server.suite);
      ("telemetry", Test_telemetry.suite);
    ]
