(* Robustness-subsystem tests: the degradation ladder is sound (alarms
   of every degraded configuration are a superset of the full run's on
   every example program), budget trips degrade instead of aborting, an
   interrupt yields a partial result, and every Faultsim injection point
   — worker crash, worker hang, truncated reply, cache corrupt-read,
   cache write-failure — exercises its recovery path. *)

module C = Astree_core
module F = Astree_frontend
module G = Astree_gen
module I = Astree_incremental
module P = Astree_parallel
module R = Astree_robust

(* ---------------- helpers ---------------- *)

(* tests run from the dune sandbox; walk up to the repository root *)
let read_example name =
  let rec find dir depth =
    let cand = Filename.concat dir (Filename.concat "examples/data" name) in
    if Sys.file_exists cand then Some cand
    else if depth = 0 then None
    else find (Filename.dirname dir) (depth - 1)
  in
  match find (Sys.getcwd ()) 6 with
  | None -> None
  | Some path ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some s

let example_names = [ "mini_fbw.c"; "filter_bank.c"; "buggy_demo.c" ]

let alarm_keys (r : C.Analysis.result) =
  List.map
    (fun (a : C.Alarm.t) -> (a.C.Alarm.a_kind, a.C.Alarm.a_loc))
    r.C.Analysis.r_alarms

let is_superset ~big ~small =
  List.for_all (fun k -> List.mem k big) small

let degraded_exn (r : C.Analysis.result) =
  match r.C.Analysis.r_stats.C.Analysis.s_degraded with
  | Some d -> d
  | None -> Alcotest.fail "expected a degraded result"

let member_program () =
  let g =
    G.Generator.generate
      {
        G.Generator.default with
        G.Generator.seed = 5;
        target_lines = 600;
        fuse = 8;
      }
  in
  let p, _ = C.Analysis.compile [ ("m.c", g.G.Generator.source) ] in
  ( {
      C.Config.default with
      C.Config.partitioned_functions = g.G.Generator.partition_fns;
    },
    p )

let with_env var value k =
  let saved = Option.value (Sys.getenv_opt var) ~default:"" in
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var saved) k

let with_tmpdir k =
  let dir = Filename.temp_file "astree-robust" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> k dir)

let with_cache_driver k =
  I.Summary.register ();
  let min0 = !C.Iterator.memo_min_stmts in
  C.Iterator.memo_min_stmts := 0;
  Fun.protect
    ~finally:(fun () ->
      C.Analysis.cache_driver := None;
      C.Iterator.memo_min_stmts := min0)
    k

let store_file dir cfg p =
  let fps = I.Fingerprint.make cfg p in
  Filename.concat dir (I.Fingerprint.program fps ^ ".summaries")

(* ---------------- budget ---------------- *)

let test_budget_poll () =
  R.Budget.disarm ();
  R.Budget.poll ();
  (* a deadline in the past trips on the next poll *)
  R.Budget.arm ~deadline:(Unix.gettimeofday () -. 1.) ();
  (match R.Budget.poll () with
  | () -> Alcotest.fail "expected Tripped Timeout"
  | exception R.Budget.Tripped R.Budget.Timeout -> ()
  | exception _ -> Alcotest.fail "wrong exception");
  R.Budget.disarm ();
  R.Budget.poll ();
  (* a 1 MiB watermark is below any live OCaml major heap *)
  R.Budget.arm ~max_mem_mb:1 ();
  (match R.Budget.poll () with
  | () -> Alcotest.fail "expected Tripped Memory"
  | exception R.Budget.Tripped R.Budget.Memory -> ()
  | exception _ -> Alcotest.fail "wrong exception");
  R.Budget.disarm ();
  (* the interrupt flag wins over everything and is consumed explicitly *)
  R.Budget.interrupt ();
  (match R.Budget.poll () with
  | () -> Alcotest.fail "expected Tripped Interrupted"
  | exception R.Budget.Tripped R.Budget.Interrupted -> ());
  R.Budget.clear_interrupt ();
  R.Budget.poll ()

(* the iterator actually ticks the installed hook during an analysis *)
let test_tick_hook_fires () =
  match read_example "mini_fbw.c" with
  | None -> Alcotest.skip ()
  | Some src ->
      let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
      let ticks = ref 0 in
      let ses = C.Transfer.new_session () in
      ses.C.Transfer.ses_tick_hook <- Some (fun () -> incr ticks);
      ignore (C.Analysis.analyze ~session:ses p);
      Alcotest.(check bool) "hook called during analysis" true (!ticks > 0)

(* ---------------- degradation ladder soundness ---------------- *)

(* For every example program and every ladder step: the degraded
   configuration's alarms must cover the full configuration's.  This is
   the property that makes shedding sound to ship: degrading can cry
   wolf, it can never go quiet about a real error. *)
let test_ladder_superset () =
  List.iter
    (fun name ->
      match read_example name with
      | None -> ()
      | Some src ->
          let p, _ = C.Analysis.compile [ (name, src) ] in
          let cfg = C.Config.default in
          let full = C.Analysis.analyze ~cfg p in
          for level = 1 to R.Degrade.max_level do
            let deg =
              C.Analysis.analyze ~cfg:(R.Degrade.config_at ~level cfg) p
            in
            Alcotest.(check bool)
              (Fmt.str "%s: level %d alarms cover the full run's" name level)
              true
              (is_superset ~big:(alarm_keys deg) ~small:(alarm_keys full))
          done)
    example_names

let test_timeout_degrades () =
  let cfg, p = member_program () in
  let full = R.Degrade.analyze ~cfg p in
  (* a budget far below the full-run cost forces the ladder *)
  let r = R.Degrade.analyze ~cfg:{ cfg with C.Config.timeout = 0.02 } p in
  let d = degraded_exn r in
  Alcotest.(check string) "tripped on the clock" "timeout"
    d.C.Analysis.dg_reason;
  Alcotest.(check bool) "reached a ladder step" true
    (d.C.Analysis.dg_level >= 1 && d.C.Analysis.dg_level <= 3);
  Alcotest.(check bool) "degraded alarms cover the full run's" true
    (is_superset ~big:(alarm_keys r) ~small:(alarm_keys full));
  (* no budget, no degradation marker *)
  Alcotest.(check bool) "unconstrained run is not degraded" true
    (full.C.Analysis.r_stats.C.Analysis.s_degraded = None)

let test_memory_degrades () =
  let cfg, p = member_program () in
  (* 1 MiB is below the heap before the analysis even starts: every
     level trips and the final disarmed rerun delivers the result *)
  let r = R.Degrade.analyze ~cfg:{ cfg with C.Config.max_mem_mb = 1 } p in
  let d = degraded_exn r in
  Alcotest.(check string) "tripped on memory" "memory" d.C.Analysis.dg_reason;
  Alcotest.(check int) "cascaded to the last step" R.Degrade.max_level
    d.C.Analysis.dg_level

let test_interrupt_partial () =
  let cfg, p = member_program () in
  (* flag preset: the first tick of the analysis sees it — the same path
     a SIGINT mid-run takes, minus the asynchrony *)
  R.Budget.interrupt ();
  Fun.protect
    ~finally:(fun () -> R.Budget.clear_interrupt ())
    (fun () ->
      let r = R.Degrade.analyze ~cfg p in
      let d = degraded_exn r in
      Alcotest.(check string)
        "marked interrupted" "interrupted" d.C.Analysis.dg_reason;
      Alcotest.(check bool)
        "partial run never claims to finish" true
        (C.Astate.is_bot r.C.Analysis.r_final));
  Alcotest.(check bool) "flag consumed" false (R.Budget.interrupt_pending ())

(* shed_packs_above actually removes wide packs, and only wide ones *)
let test_shed_filter () =
  let cfg, p = member_program () in
  let full = C.Packing.compute cfg p in
  let shed =
    C.Packing.compute { cfg with C.Config.shed_packs_above = Some 3 } p
  in
  Alcotest.(check bool) "some octagon pack survives" true
    (List.length shed.C.Packing.octs > 0);
  Alcotest.(check bool) "wide packs were dropped" true
    (List.length shed.C.Packing.octs < List.length full.C.Packing.octs);
  List.iter
    (fun (op : C.Packing.oct_pack) ->
      Alcotest.(check bool) "every kept pack is narrow" true
        (Array.length op.C.Packing.op_vars <= 3))
    shed.C.Packing.octs

(* ---------------- faultsim: spec, determinism, alias ---------------- *)

let test_faultsim_spec () =
  with_env "ASTREE_PAR_CHAOS" "" (fun () ->
      with_env "ASTREE_FAULTS" "5:worker_crash=0.5,cache_corrupt" (fun () ->
          R.Faultsim.reset_counters ();
          let d = R.Faultsim.describe () in
          Alcotest.(check bool) "seed parsed" true
            (String.length d > 0 && d <> "faults: off");
          Alcotest.(check bool) "prob-1 point always fires" true
            (R.Faultsim.fires R.Faultsim.Cache_corrupt);
          Alcotest.(check bool) "unarmed point never fires" false
            (R.Faultsim.fires R.Faultsim.Worker_hang));
      with_env "ASTREE_FAULTS" "not-a-spec" (fun () ->
          Alcotest.(check bool) "malformed spec disables injection" false
            (R.Faultsim.fires R.Faultsim.Worker_crash)))

let fire_pattern n p =
  R.Faultsim.reset_counters ();
  List.init n (fun _ -> R.Faultsim.fires p)

let test_faultsim_deterministic () =
  R.Faultsim.install ~seed:11 [ (R.Faultsim.Worker_crash, 0.5) ];
  Fun.protect
    ~finally:(fun () ->
      R.Faultsim.clear ();
      R.Faultsim.reset_counters ())
    (fun () ->
      let a = fire_pattern 200 R.Faultsim.Worker_crash in
      let b = fire_pattern 200 R.Faultsim.Worker_crash in
      Alcotest.(check (list bool)) "same seed, same schedule" a b;
      Alcotest.(check bool) "schedule actually mixes" true
        (List.mem true a && List.mem false a);
      R.Faultsim.install ~seed:12 [ (R.Faultsim.Worker_crash, 0.5) ];
      let c = fire_pattern 200 R.Faultsim.Worker_crash in
      Alcotest.(check bool) "different seed, different schedule" true (a <> c))

let test_faultsim_suppression () =
  R.Faultsim.install ~seed:1 [ (R.Faultsim.Worker_crash, 1.0) ];
  Fun.protect
    ~finally:(fun () ->
      R.Faultsim.clear ();
      R.Faultsim.reset_counters ())
    (fun () ->
      Alcotest.(check bool) "armed" true
        (R.Faultsim.fires R.Faultsim.Worker_crash);
      R.Faultsim.with_suppressed (fun () ->
          Alcotest.(check bool) "masked" false
            (R.Faultsim.fires R.Faultsim.Worker_crash));
      Alcotest.(check bool) "armed again" true
        (R.Faultsim.fires R.Faultsim.Worker_crash))

let test_par_chaos_alias () =
  (* an empty ASTREE_FAULTS means unset: the legacy variable applies *)
  with_env "ASTREE_FAULTS" "" (fun () ->
      with_env "ASTREE_PAR_CHAOS" "1" (fun () ->
          R.Faultsim.reset_counters ();
          Alcotest.(check bool) "alias arms worker crashes" true
            (R.Faultsim.fires R.Faultsim.Worker_crash);
          Alcotest.(check bool) "alias arms nothing else" false
            (R.Faultsim.fires R.Faultsim.Cache_corrupt)))

(* ---------------- faultsim: pool injection points ---------------- *)

(* each test arms its point before forking (workers inherit the spec)
   and clears it before the next pool is created *)
let with_faults ~seed probs k =
  R.Faultsim.install ~seed probs;
  Fun.protect
    ~finally:(fun () ->
      R.Faultsim.clear ();
      R.Faultsim.reset_counters ())
    k

let test_inject_worker_crash () =
  with_faults ~seed:3
    [ (R.Faultsim.Worker_crash, 1.0) ]
    (fun () ->
      P.Pool.with_pool ~jobs:2
        (fun x -> x + 1)
        (fun pool ->
          let rs = P.Pool.map pool [ 1; 2; 3 ] in
          Alcotest.(check int) "every job dies with its worker" 3
            (List.length (List.filter Result.is_error rs))));
  (* a clean pool created after [clear] works *)
  P.Pool.with_pool ~jobs:2
    (fun x -> x + 1)
    (fun pool ->
      Alcotest.(check bool) "recovered after clear" true
        (P.Pool.map pool [ 1; 2 ] = [ Ok 2; Ok 3 ]))

let test_inject_worker_hang () =
  let saved = !R.Faultsim.hang_seconds in
  R.Faultsim.hang_seconds := 5.;
  Fun.protect
    ~finally:(fun () -> R.Faultsim.hang_seconds := saved)
    (fun () ->
      with_faults ~seed:4
        [ (R.Faultsim.Worker_hang, 1.0) ]
        (fun () ->
          P.Pool.with_pool ~jobs:2
            (fun x -> x + 1)
            (fun pool ->
              match P.Pool.map ~timeout:0.3 pool [ 1 ] with
              | [ Error e ] ->
                  Alcotest.(check string)
                    "the coordinator's deadline ends the hang"
                    "worker timed out" e
              | _ -> Alcotest.fail "expected a timed-out job")))

let test_inject_reply_truncate () =
  with_faults ~seed:5
    [ (R.Faultsim.Reply_truncate, 1.0) ]
    (fun () ->
      P.Pool.with_pool ~jobs:2
        (fun x -> x * 10)
        (fun pool ->
          match P.Pool.map pool [ 1 ] with
          | [ Error e ] ->
              (* a half-written reply must read as a dead worker, never
                 as a garbled Ok *)
              Alcotest.(check string) "short read = crash" "worker crashed" e
          | _ -> Alcotest.fail "expected the truncated reply to fail"))

(* injected faults or none, -j must still match the sequential result *)
let test_equiv_under_injection () =
  let saved = !C.Iterator.par_min_stmts in
  C.Iterator.par_min_stmts := 1;
  Fun.protect
    ~finally:(fun () -> C.Iterator.par_min_stmts := saved)
    (fun () ->
      let cfg, p = member_program () in
      let seq = C.Analysis.analyze ~cfg:{ cfg with C.Config.jobs = 1 } p in
      with_faults ~seed:9
        [ (R.Faultsim.Worker_crash, 0.3); (R.Faultsim.Reply_truncate, 0.2) ]
        (fun () ->
          let par = P.Scheduler.analyze ~cfg:{ cfg with C.Config.jobs = 2 } p in
          Alcotest.(check string)
            "identical despite injected crashes and truncations"
            (P.Merge.fingerprint seq) (P.Merge.fingerprint par)))

(* ---------------- faultsim: store injection points ---------------- *)

let test_inject_cache_corrupt () =
  match read_example "mini_fbw.c" with
  | None -> Alcotest.skip ()
  | Some src ->
      let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
      with_tmpdir (fun dir ->
          with_cache_driver (fun () ->
              let ccfg =
                {
                  C.Config.default with
                  C.Config.summary_cache = C.Config.Cache_dir dir;
                }
              in
              let cold = C.Analysis.analyze ~cfg:ccfg p in
              with_faults ~seed:6
                [ (R.Faultsim.Cache_corrupt, 1.0) ]
                (fun () ->
                  let warm = C.Analysis.analyze ~cfg:ccfg p in
                  Alcotest.(check string)
                    "corrupt read degrades to cold, same result"
                    (P.Merge.fingerprint cold) (P.Merge.fingerprint warm);
                  match warm.C.Analysis.r_stats.C.Analysis.s_cache with
                  | Some cs ->
                      Alcotest.(check int) "nothing loaded" 0
                        cs.C.Analysis.c_loaded
                  | None -> Alcotest.fail "expected cache stats")))

let test_inject_cache_write () =
  match read_example "mini_fbw.c" with
  | None -> Alcotest.skip ()
  | Some src ->
      let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
      with_tmpdir (fun dir ->
          with_cache_driver (fun () ->
              let ccfg =
                {
                  C.Config.default with
                  C.Config.summary_cache = C.Config.Cache_dir dir;
                }
              in
              let off = C.Analysis.analyze ~cfg:C.Config.default p in
              with_faults ~seed:7
                [ (R.Faultsim.Cache_write, 1.0) ]
                (fun () ->
                  let r = C.Analysis.analyze ~cfg:ccfg p in
                  Alcotest.(check string)
                    "failed save never changes the result"
                    (P.Merge.fingerprint off) (P.Merge.fingerprint r));
              Alcotest.(check bool) "no store file written" false
                (Sys.file_exists (store_file dir ccfg p));
              (* the aborted write must not leak its temporary either *)
              Array.iter
                (fun f ->
                  Alcotest.(check bool)
                    (f ^ ": no temp leftover")
                    false
                    (Filename.check_suffix f ".tmp"))
                (Sys.readdir dir)))

(* physically corrupt and mid-write-truncated stores: both degrade to
   cold with byte-identical results (satellite of the chaos test) *)
let test_store_corrupt_and_truncated () =
  match read_example "filter_bank.c" with
  | None -> Alcotest.skip ()
  | Some src ->
      let p, _ = C.Analysis.compile [ ("filter_bank.c", src) ] in
      (* physical damage, not injection: env-armed faults would stop the
         cold run from populating the store in the first place *)
      R.Faultsim.with_suppressed @@ fun () ->
      with_tmpdir (fun dir ->
          with_cache_driver (fun () ->
              let ccfg =
                {
                  C.Config.default with
                  C.Config.summary_cache = C.Config.Cache_dir dir;
                }
              in
              let cold = C.Analysis.analyze ~cfg:ccfg p in
              let file = store_file dir ccfg p in
              let blob = In_channel.with_open_bin file In_channel.input_all in
              let check_degraded name =
                let r = C.Analysis.analyze ~cfg:ccfg p in
                Alcotest.(check string)
                  (name ^ ": byte-identical to cold")
                  (P.Merge.fingerprint cold) (P.Merge.fingerprint r);
                match r.C.Analysis.r_stats.C.Analysis.s_cache with
                | Some cs ->
                    Alcotest.(check int) (name ^ ": nothing loaded") 0
                      cs.C.Analysis.c_loaded
                | None -> Alcotest.fail "expected cache stats"
              in
              (* bit rot in the middle of the payload *)
              let rotten = Bytes.of_string blob in
              let mid = Bytes.length rotten / 2 in
              Bytes.set rotten mid
                (Char.chr (Char.code (Bytes.get rotten mid) lxor 0xFF));
              Out_channel.with_open_bin file (fun oc ->
                  Out_channel.output_bytes oc rotten);
              check_degraded "corrupt";
              (* a write that stopped halfway *)
              Out_channel.with_open_bin file (fun oc ->
                  Out_channel.output_string oc
                    (String.sub blob 0 (String.length blob / 2)));
              check_degraded "truncated"))

(* ---------------- backoff ---------------- *)

let test_backoff_deterministic () =
  let p = R.Backoff.default in
  for attempt = 0 to 6 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "attempt %d reproducible" attempt)
      (R.Backoff.delay p ~seed:42 ~attempt)
      (R.Backoff.delay p ~seed:42 ~attempt)
  done;
  Alcotest.(check bool)
    "different seeds jitter differently" true
    (R.Backoff.delay p ~seed:1 ~attempt:3
    <> R.Backoff.delay p ~seed:2 ~attempt:3)

let test_backoff_bounds () =
  let p = R.Backoff.default in
  for seed = 1 to 50 do
    for attempt = 0 to 12 do
      let d = R.Backoff.delay p ~seed ~attempt in
      let base =
        Float.min p.R.Backoff.b_max
          (p.R.Backoff.b_base *. (p.R.Backoff.b_factor ** float_of_int attempt))
      in
      let j = p.R.Backoff.b_jitter in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d attempt %d within jitter band" seed attempt)
        true
        (d >= (base *. (1. -. j)) -. 1e-9
        && d <= (base *. (1. +. j)) +. 1e-9)
    done
  done

let test_backoff_growth () =
  (* the jitter band is +-25%, the ladder doubles: the band floor of
     attempt n+2 clears the band ceiling of attempt n, so delays grow
     monotonically two attempts apart even in the worst case *)
  let p = { R.Backoff.default with R.Backoff.b_max = 1000. } in
  for seed = 1 to 20 do
    for attempt = 0 to 8 do
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: attempt %d < attempt %d" seed attempt
           (attempt + 2))
        true
        (R.Backoff.delay p ~seed ~attempt
        < R.Backoff.delay p ~seed ~attempt:(attempt + 2))
    done
  done

let test_backoff_cap () =
  let p = R.Backoff.default in
  for attempt = 20 to 24 do
    Alcotest.(check bool) "late attempts capped at b_max (+ jitter)" true
      (R.Backoff.delay p ~seed:7 ~attempt
      <= p.R.Backoff.b_max *. (1. +. p.R.Backoff.b_jitter) +. 1e-9)
  done

let suite =
  [
    Alcotest.test_case "budget: poll trips and clears" `Quick test_budget_poll;
    Alcotest.test_case "budget: iterator ticks the hook" `Quick
      test_tick_hook_fires;
    Alcotest.test_case "ladder: alarms superset on every example" `Slow
      test_ladder_superset;
    Alcotest.test_case "ladder: shed filter keeps narrow packs" `Quick
      test_shed_filter;
    Alcotest.test_case "degrade: timeout sheds, stays sound" `Slow
      test_timeout_degrades;
    Alcotest.test_case "degrade: memory watermark cascades" `Quick
      test_memory_degrades;
    Alcotest.test_case "degrade: interrupt yields partial result" `Quick
      test_interrupt_partial;
    Alcotest.test_case "faultsim: env spec parsing" `Quick test_faultsim_spec;
    Alcotest.test_case "faultsim: deterministic schedules" `Quick
      test_faultsim_deterministic;
    Alcotest.test_case "faultsim: suppression masks points" `Quick
      test_faultsim_suppression;
    Alcotest.test_case "faultsim: ASTREE_PAR_CHAOS alias" `Quick
      test_par_chaos_alias;
    Alcotest.test_case "inject: worker crash" `Quick test_inject_worker_crash;
    Alcotest.test_case "inject: worker hang" `Quick test_inject_worker_hang;
    Alcotest.test_case "inject: truncated reply" `Quick
      test_inject_reply_truncate;
    Alcotest.test_case "inject: -j equivalence under faults" `Slow
      test_equiv_under_injection;
    Alcotest.test_case "inject: cache corrupt read" `Quick
      test_inject_cache_corrupt;
    Alcotest.test_case "inject: cache write failure" `Quick
      test_inject_cache_write;
    Alcotest.test_case "store: corrupt + truncated degrade to cold" `Quick
      test_store_corrupt_and_truncated;
    Alcotest.test_case "backoff: deterministic per (seed, attempt)" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "backoff: stays within the jitter band" `Quick
      test_backoff_bounds;
    Alcotest.test_case "backoff: delays grow up the ladder" `Quick
      test_backoff_growth;
    Alcotest.test_case "backoff: capped at b_max" `Quick test_backoff_cap;
  ]
