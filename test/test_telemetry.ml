(* Telemetry tests: request-id generation, Prometheus name/label
   hygiene, byte-stable exposition rendering, rolling quantiles, and
   access-log rotation atomicity.  All in-process — the daemon-side
   wiring (rid echo, /metrics over HTTP) is exercised in
   test_server.ml. *)

module Srv = Astree_server
module T = Srv.Telemetry
module Metrics = Astree_obs.Metrics

let has_sub (s : string) (sub : string) : bool =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---- request ids ------------------------------------------------- *)

let test_gen_id () =
  let n = 1000 in
  let tbl = Hashtbl.create n in
  for _ = 1 to n do
    let id = T.gen_id () in
    Alcotest.(check bool) ("fresh id " ^ id) false (Hashtbl.mem tbl id);
    Hashtbl.replace tbl id ();
    (* shape: 'r' then hex, '-', hex — safe inside JSON and log greps *)
    Alcotest.(check bool) ("id shape " ^ id) true
      (String.length id > 2
      && id.[0] = 'r'
      && String.for_all
           (function 'r' | '0' .. '9' | 'a' .. 'f' | '-' -> true | _ -> false)
           id)
  done;
  Alcotest.(check int) "all distinct" n (Hashtbl.length tbl)

(* ---- exposition hygiene ------------------------------------------ *)

let test_prom_name () =
  List.iter
    (fun (raw, want) ->
      Alcotest.(check string) ("sanitize " ^ raw) want (T.prom_name raw))
    [
      ("cache.hits", "cache_hits");
      ("srv.client.retries", "srv_client_retries");
      ("iter:widen", "iter:widen");
      ("a-b c", "a_b_c");
      ("9lives", "_9lives");
      ("ok_name_42", "ok_name_42");
      ("", "_");
    ]

let test_prom_label () =
  List.iter
    (fun (raw, want) ->
      Alcotest.(check string) ("escape " ^ String.escaped raw) want
        (T.prom_label raw))
    [
      ("plain", "plain");
      ("back\\slash", "back\\\\slash");
      ("quo\"te", "quo\\\"te");
      ("new\nline", "new\\nline");
      ("\\\"\n", "\\\\\\\"\\n");
    ]

(* ---- rendering --------------------------------------------------- *)

(* a telemetry sink fed a fixed request mix at fixed instants *)
let fixed_sink () =
  let t = T.create ~now:1000. () in
  let obs ~now rid verb outcome q s =
    T.observe t ~now
      {
        T.rc_rid = rid;
        rc_verb = verb;
        rc_digest = "d0";
        rc_outcome = outcome;
        rc_queue_s = q;
        rc_service_s = s;
        rc_cache_hits = 3;
      }
  in
  obs ~now:1001. "r1" "analyze" `Ok 0.01 0.2;
  obs ~now:1002. "r2" "analyze" `Ok 0.02 0.4;
  obs ~now:1003. "r3" "analyze" `Dedup 0.3 0.;
  obs ~now:1004. "r4" "status" `Ok 0. 0.001;
  obs ~now:1005. "r5" "analyze" `Shed 0. 0.;
  t

let test_render_stable () =
  (* equal inputs yield byte-identical expositions — across calls and
     across independently built sinks *)
  let snap = Metrics.snapshot () in
  let t1 = fixed_sink () and t2 = fixed_sink () in
  let a = T.render_prometheus t1 ~now:1010. snap in
  let b = T.render_prometheus t1 ~now:1010. snap in
  let c = T.render_prometheus t2 ~now:1010. snap in
  Alcotest.(check string) "idempotent render" a b;
  Alcotest.(check string) "sink-independent render" a c

let test_render_content () =
  let t = fixed_sink () in
  let body = T.render_prometheus t ~now:1010. (Metrics.snapshot ()) in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("exposition has " ^ sub) true (has_sub body sub))
    [
      "# TYPE astreed_up gauge";
      "astreed_up 1\n";
      "astreed_uptime_seconds 10";
      "astreed_requests_total{outcome=\"ok\",verb=\"analyze\"} 2";
      "astreed_requests_total{outcome=\"dedup\",verb=\"analyze\"} 1";
      "astreed_requests_total{outcome=\"shed\",verb=\"analyze\"} 1";
      "astreed_requests_total{outcome=\"ok\",verb=\"status\"} 1";
      "# TYPE astreed_request_duration_seconds histogram";
      "le=\"0.001\"";
      "le=\"+Inf\"";
      "astreed_request_duration_seconds_count{verb=\"analyze\"} 4";
      "# TYPE astreed_request_latency_seconds summary";
      "quantile=\"0.5\"";
      "quantile=\"0.99\"";
    ];
  (* families are sorted by name: the TYPE headers appear in order *)
  let headers =
    String.split_on_char '\n' body
    |> List.filter (fun l -> String.length l > 7 && String.sub l 0 7 = "# TYPE ")
  in
  Alcotest.(check bool) "several families" true (List.length headers > 3);
  Alcotest.(check bool) "families sorted" true
    (List.sort compare headers = headers);
  (* every non-comment line is NAME{labels} VALUE or NAME VALUE *)
  String.split_on_char '\n' body
  |> List.iter (fun l ->
         if l <> "" && l.[0] <> '#' then
           match String.index_opt l ' ' with
           | None -> Alcotest.failf "malformed sample line: %s" l
           | Some i ->
               let name = String.sub l 0 i in
               let name =
                 match String.index_opt name '{' with
                 | Some j -> String.sub name 0 j
                 | None -> name
               in
               Alcotest.(check string)
                 ("metric name charset: " ^ name)
                 name (T.prom_name name))

let test_registry_export () =
  (* registry entries surface under the astree_ prefix with the kind
     suffix the exposition format wants *)
  let c = Metrics.counter "telemetry.test.unit_total_check" in
  Metrics.incr c;
  Metrics.incr c;
  let h = Metrics.histogram "telemetry.test.unit_hist" in
  Metrics.observe h 0;
  Metrics.observe h 5;
  let t = T.create ~now:0. () in
  let body = T.render_prometheus t ~now:1. (Metrics.snapshot ()) in
  Alcotest.(check bool) "counter as _total" true
    (has_sub body "astree_telemetry_test_unit_total_check_total 2");
  Alcotest.(check bool) "histogram le bounds are 2^k-1 points" true
    (has_sub body "astree_telemetry_test_unit_hist_bucket{le=\"0\"} 1");
  Alcotest.(check bool) "histogram +Inf closes the family" true
    (has_sub body "astree_telemetry_test_unit_hist_bucket{le=\"+Inf\"} 2")

(* ---- quantiles --------------------------------------------------- *)

let test_quantiles () =
  let t = T.create ~now:0. () in
  Alcotest.(check (option (float 1e-9))) "empty verb" None
    (T.quantile t ~verb:"analyze" 0.5);
  for i = 1 to 100 do
    T.observe t ~now:(float_of_int i)
      {
        T.rc_rid = Printf.sprintf "r%d" i;
        rc_verb = "analyze";
        rc_digest = "";
        rc_outcome = `Ok;
        rc_queue_s = 0.;
        rc_service_s = float_of_int i /. 100.;
        rc_cache_hits = 0;
      }
  done;
  let q p =
    match T.quantile t ~verb:"analyze" p with
    | Some v -> v
    | None -> Alcotest.fail "quantile vanished"
  in
  Alcotest.(check bool) "p50 near middle" true (abs_float (q 0.5 -. 0.5) < 0.02);
  Alcotest.(check bool) "p90 near top decile" true
    (abs_float (q 0.9 -. 0.9) < 0.02);
  Alcotest.(check bool) "p99 below max" true (q 0.99 <= 1.0);
  Alcotest.(check bool) "monotone" true (q 0.5 <= q 0.9 && q 0.9 <= q 0.99);
  let json = T.quantiles_json t in
  Alcotest.(check bool) "quantiles json names the verb" true
    (has_sub json "\"analyze\"" && has_sub json "\"count\": 100")

(* ---- access log & rotation --------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_access_log () =
  let path = Filename.temp_file "astree-telemetry" ".log" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".1") then Sys.remove (path ^ ".1"))
    (fun () ->
      let t = T.create ~access_log:path ~now:0. () in
      T.event t ~now:0.5 "start" [ ("pid", Srv.Json.Num 42.) ];
      T.observe t ~now:1.
        {
          T.rc_rid = "rff-01";
          rc_verb = "analyze";
          rc_digest = "abc";
          rc_outcome = `Ok;
          rc_queue_s = 0.001;
          rc_service_s = 0.25;
          rc_cache_hits = 7;
        };
      T.close t;
      let lines =
        read_file path |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "two lines" 2 (List.length lines);
      List.iter
        (fun l ->
          match Srv.Json.parse l with
          | Error e -> Alcotest.failf "unparsable log line %s: %s" l e
          | Ok j ->
              Alcotest.(check bool) "line has an event kind" true
                (Srv.Json.to_str (Srv.Json.member "event" j) <> None))
        lines;
      let req = List.nth lines 1 in
      List.iter
        (fun sub ->
          Alcotest.(check bool) ("request line has " ^ sub) true
            (has_sub req sub))
        [
          "\"event\": \"request\"";
          "\"rid\": \"rff-01\"";
          "\"outcome\": \"ok\"";
          "\"cache_hits\": 7";
        ];
      (* the supervisor-style standalone append lands in the same file *)
      T.append_event ~path ~now:2. "restart"
        [ ("restart", Srv.Json.Num 1.) ];
      let lines' =
        read_file path |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "append_event adds a line" 3 (List.length lines'))

let test_rotation () =
  let path = Filename.temp_file "astree-telemetry" ".log" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".1") then Sys.remove (path ^ ".1"))
    (fun () ->
      (* max_log_bytes floors at 4096: write until rotation must occur *)
      let t = T.create ~access_log:path ~max_log_bytes:1 ~now:0. () in
      for i = 1 to 200 do
        T.observe t ~now:(float_of_int i)
          {
            T.rc_rid = Printf.sprintf "r%06d-aaaaaa" i;
            rc_verb = "analyze";
            rc_digest = String.make 40 'e';
            rc_outcome = `Ok;
            rc_queue_s = 0.;
            rc_service_s = 0.1;
            rc_cache_hits = i;
          }
      done;
      T.close t;
      Alcotest.(check bool) "rotated generation exists" true
        (Sys.file_exists (path ^ ".1"));
      (* atomic rename rotation: every surviving line — in both
         generations — is a complete, parsable record; nothing torn *)
      let check_lines file =
        read_file file |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
        |> List.iter (fun l ->
               match Srv.Json.parse l with
               | Error e ->
                   Alcotest.failf "torn line after rotation in %s: %s (%s)"
                     file l e
               | Ok _ -> ())
      in
      check_lines path;
      check_lines (path ^ ".1");
      (* the live file respects the cap (one record of headroom) *)
      Alcotest.(check bool) "live file re-capped" true
        ((Unix.stat path).Unix.st_size <= 4096 + 512))

let test_unwritable_log_degrades () =
  let t =
    T.create ~access_log:"/nonexistent-dir-zz/x.log" ~now:0. ()
  in
  (* must not raise; in-memory accounting still works *)
  T.observe t ~now:1.
    {
      T.rc_rid = "r1";
      rc_verb = "analyze";
      rc_digest = "";
      rc_outcome = `Ok;
      rc_queue_s = 0.;
      rc_service_s = 0.5;
      rc_cache_hits = 0;
    };
  Alcotest.(check bool) "quantiles still accumulate" true
    (T.quantile t ~verb:"analyze" 0.5 = Some 0.5);
  T.close t

let suite =
  [
    Alcotest.test_case "request ids are unique and well-shaped" `Quick
      test_gen_id;
    Alcotest.test_case "prometheus name sanitization" `Quick test_prom_name;
    Alcotest.test_case "prometheus label escaping" `Quick test_prom_label;
    Alcotest.test_case "exposition renders byte-stably" `Quick
      test_render_stable;
    Alcotest.test_case "exposition carries the request mix" `Quick
      test_render_content;
    Alcotest.test_case "registry entries export with kind suffixes" `Quick
      test_registry_export;
    Alcotest.test_case "rolling quantiles" `Quick test_quantiles;
    Alcotest.test_case "access log lines are structured" `Quick
      test_access_log;
    Alcotest.test_case "rotation is atomic and size-capped" `Quick
      test_rotation;
    Alcotest.test_case "unwritable log degrades to memory" `Quick
      test_unwritable_log_degrades;
  ]
