(* Incremental-subsystem tests: fingerprints are stable under
   whitespace/comment edits and invalidate through the callee closure;
   warm runs (in-memory and on-disk, sequential and parallel) reproduce
   the cold result exactly; corrupt stores degrade to cold, never
   fail. *)

module C = Astree_core
module F = Astree_frontend
module G = Astree_gen
module I = Astree_incremental
module P = Astree_parallel

(* ---------------- fingerprints ---------------- *)

let base_src =
  {|
volatile float input;
float acc;
float aux;

float scale(float x) {
  float y;
  y = x * 0.5f;
  if (y > 10.0f) { y = 10.0f; }
  return y;
}

float step(float x) {
  float s;
  s = scale(x) + 1.0f;
  return s;
}

float other(float x) {
  return x - 2.0f;
}

int main(void) {
  __astree_input_range(input, -100.0, 100.0);
  acc = 0.0f; aux = 0.0f;
  while (1) {
    acc = step(input);
    aux = other(input);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

(* same program, only comments and whitespace moved around *)
let whitespace_src =
  {|
/* a comment that was not there before */
volatile float input;
float acc;
float aux;


float scale(float x) {
  float y;   /* trailing comment */
  y = x * 0.5f;
  if (y > 10.0f) {
      y = 10.0f;
  }
  return y;
}

float step(float x) {
  float s;
  s = scale(x) + 1.0f;
  return s;
}

float other(float x) { return x - 2.0f; }

int main(void) {
  __astree_input_range(input, -100.0, 100.0);
  acc = 0.0f;
  aux = 0.0f;
  while (1) {
    acc = step(input);
    aux = other(input);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

(* one constant changed inside [scale] *)
let edited_src =
  {|
volatile float input;
float acc;
float aux;

float scale(float x) {
  float y;
  y = x * 0.25f;
  if (y > 10.0f) { y = 10.0f; }
  return y;
}

float step(float x) {
  float s;
  s = scale(x) + 1.0f;
  return s;
}

float other(float x) {
  return x - 2.0f;
}

int main(void) {
  __astree_input_range(input, -100.0, 100.0);
  acc = 0.0f; aux = 0.0f;
  while (1) {
    acc = step(input);
    aux = other(input);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let fps_of src =
  let p, _ = C.Analysis.compile [ ("t.c", src) ] in
  I.Fingerprint.make C.Config.default p

let fn_exn fps name =
  match I.Fingerprint.fn fps name with
  | Some h -> h
  | None -> Alcotest.failf "no fingerprint for %s" name

let test_fp_deterministic () =
  let a = fps_of base_src and b = fps_of base_src in
  Alcotest.(check string)
    "program fingerprint reproducible"
    (I.Fingerprint.program a) (I.Fingerprint.program b);
  List.iter
    (fun f ->
      Alcotest.(check string)
        (f ^ " reproducible") (fn_exn a f) (fn_exn b f))
    [ "scale"; "step"; "other"; "main" ]

let test_fp_whitespace_stable () =
  let a = fps_of base_src and b = fps_of whitespace_src in
  List.iter
    (fun f ->
      Alcotest.(check string)
        (f ^ " unchanged by whitespace/comments")
        (fn_exn a f) (fn_exn b f))
    [ "scale"; "step"; "other"; "main" ];
  Alcotest.(check string)
    "program fingerprint unchanged"
    (I.Fingerprint.program a) (I.Fingerprint.program b)

let test_fp_edit_propagates () =
  let a = fps_of base_src and b = fps_of edited_src in
  Alcotest.(check bool)
    "edited callee changed" true
    (fn_exn a "scale" <> fn_exn b "scale");
  Alcotest.(check bool)
    "caller changed through the closure" true
    (fn_exn a "step" <> fn_exn b "step");
  Alcotest.(check bool)
    "transitive caller (main) changed" true
    (fn_exn a "main" <> fn_exn b "main");
  Alcotest.(check string)
    "unrelated function unchanged" (fn_exn a "other") (fn_exn b "other");
  Alcotest.(check bool)
    "program fingerprint changed" true
    (I.Fingerprint.program a <> I.Fingerprint.program b)

let test_fp_config_sensitivity () =
  let p, _ = C.Analysis.compile [ ("t.c", base_src) ] in
  let base = I.Fingerprint.make C.Config.default p in
  let nooct =
    I.Fingerprint.make
      { C.Config.default with C.Config.use_octagons = false }
      p
  in
  Alcotest.(check bool)
    "domain selection is part of every fingerprint" true
    (fn_exn base "scale" <> fn_exn nooct "scale");
  (* jobs and the cache mode itself are result-neutral: excluded, so a
     -j1 warm run may reuse a -j4 store *)
  let j4 =
    I.Fingerprint.make
      {
        C.Config.default with
        C.Config.jobs = 4;
        summary_cache = C.Config.Cache_mem;
      }
      p
  in
  Alcotest.(check string)
    "jobs/cache excluded from the config digest"
    (fn_exn base "scale") (fn_exn j4 "scale")

(* ---------------- warm = cold = off ---------------- *)

let with_cache_driver k =
  I.Summary.register ();
  (* the test programs' helpers are tiny; memoize everything so hit
     counters are exercised *)
  let min0 = !C.Iterator.memo_min_stmts in
  C.Iterator.memo_min_stmts := 0;
  Fun.protect
    ~finally:(fun () ->
      C.Analysis.cache_driver := None;
      C.Iterator.memo_min_stmts := min0)
    (fun () ->
      (* counter assertions (hits > 0, loaded > 0, misses = 0) only hold
         without injected store faults: mask them so the suite stays
         green under a global ASTREE_FAULTS chaos run *)
      Astree_robust.Faultsim.with_suppressed k)

let with_tmpdir k =
  match Sys.getenv_opt "ASTREE_TEST_CACHE" with
  | Some dir when dir <> "" ->
      (* persistent store shared across whole suite runs (CI runs the
         suite twice against it to exercise the warm path end to end);
         every assertion below holds on a pre-populated store, and
         nothing is cleaned up *)
      k dir
  | _ ->
      let dir = Filename.temp_file "astree-cache" "" in
      Sys.remove dir;
      Fun.protect
        ~finally:(fun () ->
          if Sys.file_exists dir then begin
            Array.iter
              (fun f -> Sys.remove (Filename.concat dir f))
              (Sys.readdir dir);
            Sys.rmdir dir
          end)
        (fun () -> k dir)

let cache_stats_exn (r : C.Analysis.result) =
  match r.C.Analysis.r_stats.C.Analysis.s_cache with
  | Some c -> c
  | None -> Alcotest.fail "expected cache statistics"

(* cold store run, warm store run and cache-off run must all agree on
   the one digest that covers alarms, census and final state; the warm
   run must be all hits *)
let check_warm_equals_cold ~name (cfg : C.Config.t) (p : F.Tast.program) =
  with_tmpdir (fun dir ->
      let off = C.Analysis.analyze ~cfg p in
      with_cache_driver (fun () ->
          let ccfg =
            { cfg with C.Config.summary_cache = C.Config.Cache_dir dir }
          in
          let cold = C.Analysis.analyze ~cfg:ccfg p in
          let warm = C.Analysis.analyze ~cfg:ccfg p in
          Alcotest.(check string)
            (name ^ ": cold = off")
            (P.Merge.fingerprint off) (P.Merge.fingerprint cold);
          Alcotest.(check string)
            (name ^ ": warm = off")
            (P.Merge.fingerprint off) (P.Merge.fingerprint warm);
          let cs = cache_stats_exn warm in
          Alcotest.(check bool)
            (name ^ ": warm run hits") true
            (cs.C.Analysis.c_hits > 0);
          Alcotest.(check int) (name ^ ": warm run misses") 0
            cs.C.Analysis.c_misses;
          Alcotest.(check bool)
            (name ^ ": store was loaded") true
            (cs.C.Analysis.c_loaded > 0)))

(* tests run from the dune sandbox; walk up to the repository root *)
let read_example name =
  let rec find dir depth =
    let cand =
      Filename.concat dir (Filename.concat "examples/data" name)
    in
    if Sys.file_exists cand then Some cand
    else if depth = 0 then None
    else find (Filename.dirname dir) (depth - 1)
  in
  match find (Sys.getcwd ()) 6 with
  | None -> None
  | Some path ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some s

let mini_fbw_src = lazy (read_example "mini_fbw.c")

let with_mini_fbw k =
  match Lazy.force mini_fbw_src with
  | None -> Alcotest.skip ()
  | Some src -> k src

let test_warm_mini_fbw_seq () =
  with_mini_fbw (fun src ->
      let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
      let cfg =
        {
          C.Config.default with
          C.Config.partitioned_functions = [ "select_gain" ];
        }
      in
      check_warm_equals_cold ~name:"mini_fbw -j1" cfg p)

let test_warm_mini_fbw_par () =
  with_mini_fbw (fun src ->
      let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
      let cfg =
        {
          C.Config.default with
          C.Config.jobs = 4;
          partitioned_functions = [ "select_gain" ];
        }
      in
      P.Scheduler.register ();
      Fun.protect
        ~finally:(fun () -> C.Analysis.parallel_driver := None)
        (fun () -> check_warm_equals_cold ~name:"mini_fbw -j4" cfg p))

let member_program () =
  let g =
    G.Generator.generate
      { G.Generator.default with G.Generator.seed = 5; target_lines = 400 }
  in
  let p, _ = C.Analysis.compile [ ("m.c", g.G.Generator.source) ] in
  ( {
      C.Config.default with
      C.Config.partitioned_functions = g.G.Generator.partition_fns;
    },
    p )

let test_warm_member_seq () =
  let cfg, p = member_program () in
  check_warm_equals_cold ~name:"member -j1" cfg p

let test_warm_member_par () =
  let cfg, p = member_program () in
  P.Scheduler.register ();
  Fun.protect
    ~finally:(fun () -> C.Analysis.parallel_driver := None)
    (fun () ->
      check_warm_equals_cold ~name:"member -j4"
        { cfg with C.Config.jobs = 4 }
        p)

let test_mem_cache_equiv () =
  with_mini_fbw (fun src ->
      let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
      let cfg =
        {
          C.Config.default with
          C.Config.partitioned_functions = [ "select_gain" ];
        }
      in
      let off = C.Analysis.analyze ~cfg p in
      with_cache_driver (fun () ->
          let r =
            C.Analysis.analyze
              ~cfg:{ cfg with C.Config.summary_cache = C.Config.Cache_mem }
              p
          in
          Alcotest.(check string)
            "in-memory cache result identical"
            (P.Merge.fingerprint off) (P.Merge.fingerprint r);
          (* the main loop revisits the same call contexts while
             iterating: even one run hits *)
          Alcotest.(check bool)
            "intra-run hits" true
            ((cache_stats_exn r).C.Analysis.c_hits > 0)))

(* ---------------- store robustness ---------------- *)

(* the store file of [p] under [cfg]: one file per program fingerprint,
   so a shared ASTREE_TEST_CACHE directory holding other programs'
   stores does not confuse the test *)
let store_file dir cfg p =
  let fps = I.Fingerprint.make cfg p in
  Filename.concat dir (I.Fingerprint.program fps ^ ".summaries")

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_store_corruption () =
  with_mini_fbw (fun src ->
      let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
      let cfg = C.Config.default in
      let off = C.Analysis.analyze ~cfg p in
      with_tmpdir (fun dir ->
          with_cache_driver (fun () ->
              let ccfg =
                { cfg with C.Config.summary_cache = C.Config.Cache_dir dir }
              in
              let check_degraded name =
                let r = C.Analysis.analyze ~cfg:ccfg p in
                Alcotest.(check string)
                  (name ^ ": result identical")
                  (P.Merge.fingerprint off) (P.Merge.fingerprint r);
                Alcotest.(check int)
                  (name ^ ": nothing loaded")
                  0
                  (cache_stats_exn r).C.Analysis.c_loaded
              in
              (* garbage in place of a store file *)
              ignore (C.Analysis.analyze ~cfg:ccfg p);
              let file = store_file dir ccfg p in
              write_file file "not a summary store at all";
              check_degraded "garbage";
              (* truncated store: valid magic, payload cut short *)
              ignore (C.Analysis.analyze ~cfg:ccfg p);
              let full = In_channel.with_open_bin file In_channel.input_all in
              write_file file (String.sub full 0 (String.length full / 3));
              check_degraded "truncated";
              (* empty file *)
              write_file file "";
              check_degraded "empty")))

(* concurrent multi-process writers (daemon pool workers, batch runs
   sharing one cache directory) racing [Store.save] on the same key:
   no interleaving may ever publish a torn file, and merge-on-save must
   converge to the union of both writers' entries rather than letting
   the last rename drop the other writer's work *)
let store_magic = "astree-summary-store v4\n"

(* the store format contract: magic header, then the MD5 of the payload,
   then the payload.  Any complete file satisfies it; a torn or partial
   publish cannot. *)
let check_file_intact file =
  if Sys.file_exists file then
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let hdr = really_input_string ic (String.length store_magic) in
          Alcotest.(check string) "store magic intact" store_magic hdr;
          let digest = really_input_string ic 16 in
          let payload = In_channel.input_all ic in
          Alcotest.(check bool)
            "store digest covers payload" true
            (Digest.string payload = digest))
    with End_of_file -> Alcotest.fail "torn store file published"

let test_store_racing_writers () =
  with_mini_fbw (fun src ->
      let p, _ = C.Analysis.compile [ ("mini_fbw.c", src) ] in
      let cfg = C.Config.default in
      (* harvest real summaries to race with: one cold cached run *)
      let dir0 = Filename.temp_file "astree-race-seed" "" in
      Sys.remove dir0;
      let key = I.Fingerprint.program (I.Fingerprint.make cfg p) in
      let entries =
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists dir0 then begin
              Array.iter
                (fun f -> Sys.remove (Filename.concat dir0 f))
                (Sys.readdir dir0);
              Sys.rmdir dir0
            end)
          (fun () ->
            with_cache_driver (fun () ->
                ignore
                  (C.Analysis.analyze
                     ~cfg:
                       {
                         cfg with
                         C.Config.summary_cache = C.Config.Cache_dir dir0;
                       }
                     p);
                I.Store.load ~dir:dir0 ~key))
      in
      if List.length entries < 2 then Alcotest.skip ();
      (* split into two overlapping halves, one per writer process *)
      let n = List.length entries in
      let half_a = List.filteri (fun i _ -> i <= n / 2) entries in
      let half_b = List.filteri (fun i _ -> i >= n / 2) entries in
      let dir = Filename.temp_file "astree-race" "" in
      Sys.remove dir;
      let file = Filename.concat dir (key ^ ".summaries") in
      Fun.protect
        ~finally:(fun () ->
          if Sys.file_exists dir then begin
            Array.iter
              (fun f -> Sys.remove (Filename.concat dir f))
              (Sys.readdir dir);
            Sys.rmdir dir
          end)
        (fun () ->
          let writer half =
            flush stdout;
            flush stderr;
            match Unix.fork () with
            | 0 ->
                let code =
                  try
                    Astree_robust.Faultsim.with_suppressed (fun () ->
                        for _ = 1 to 40 do
                          I.Store.save ~dir ~key half
                        done);
                    0
                  with _ -> 1
                in
                Unix._exit code
            | pid -> pid
          in
          let pid_a = writer half_a in
          let pid_b = writer half_b in
          (* watch the published file while the two writers race *)
          let running = ref [ pid_a; pid_b ] in
          let statuses = ref [] in
          while !running <> [] do
            check_file_intact file;
            running :=
              List.filter
                (fun pid ->
                  match Unix.waitpid [ Unix.WNOHANG ] pid with
                  | 0, _ -> true
                  | _, st ->
                      statuses := st :: !statuses;
                      false)
                !running;
            Unix.sleepf 0.002
          done;
          List.iter
            (fun st ->
              Alcotest.(check bool)
                "writer exited cleanly" true
                (st = Unix.WEXITED 0))
            !statuses;
          check_file_intact file;
          let keys_of es = List.sort compare (List.map fst es) in
          let union =
            List.sort_uniq compare (List.map fst (half_a @ half_b))
          in
          (* whatever the race left behind is a coherent subset of the
             union — never torn, never foreign.  The oracle's own reads
             and saves run fault-suppressed: this test is about the
             writers racing, not about the chaos env corrupting the
             verification pass itself *)
          let after_race =
            Astree_robust.Faultsim.with_suppressed (fun () ->
                keys_of (I.Store.load ~dir ~key))
          in
          Alcotest.(check bool)
            "race result within the union" true
            (List.for_all (fun k -> List.mem k union) after_race);
          Alcotest.(check bool) "race result non-empty" true
            (after_race <> []);
          (* one sequential save of each half must now converge to the
             exact union, whichever writer won the race *)
          let converged =
            Astree_robust.Faultsim.with_suppressed (fun () ->
                I.Store.save ~dir ~key half_a;
                I.Store.save ~dir ~key half_b;
                keys_of (I.Store.load ~dir ~key))
          in
          Alcotest.(check bool)
            "merge-on-save converges to the union" true
            (converged = union)))

(* every example in the repository: warm, cold and cache-less runs must
   agree on the result fingerprint (alarms + census + final state) *)
let test_warm_all_examples () =
  List.iter
    (fun name ->
      match read_example name with
      | None -> ()
      | Some src ->
          let p, _ = C.Analysis.compile [ (name, src) ] in
          let cfg = C.Config.default in
          let off = C.Analysis.analyze ~cfg p in
          with_tmpdir (fun dir ->
              with_cache_driver (fun () ->
                  let ccfg =
                    {
                      cfg with
                      C.Config.summary_cache = C.Config.Cache_dir dir;
                    }
                  in
                  let cold = C.Analysis.analyze ~cfg:ccfg p in
                  let warm = C.Analysis.analyze ~cfg:ccfg p in
                  Alcotest.(check string)
                    (name ^ ": cold = off")
                    (P.Merge.fingerprint off) (P.Merge.fingerprint cold);
                  Alcotest.(check string)
                    (name ^ ": warm = off")
                    (P.Merge.fingerprint off) (P.Merge.fingerprint warm))))
    [ "mini_fbw.c"; "filter_bank.c"; "buggy_demo.c" ]

(* ---------------- versioned blobs (daemon checkpoints) ---------------- *)

let blob_magic = "astree-test-blob v1\n"

let with_blob_file k =
  let file = Filename.temp_file "astree-blob" ".bin" in
  Sys.remove file;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () -> k file)

let test_blob_roundtrip () =
  with_blob_file (fun file ->
      let v = [ ("alpha", [ 1; 2; 3 ]); ("beta", [ 4 ]) ] in
      I.Store.save_blob ~file ~magic:blob_magic v;
      Alcotest.(check (option (list (pair string (list int)))))
        "round-trips" (Some v)
        (I.Store.load_blob ~file ~magic:blob_magic);
      (* a second save atomically replaces the first *)
      I.Store.save_blob ~file ~magic:blob_magic [ ("gamma", [ 9 ]) ];
      Alcotest.(check (option (list (pair string (list int)))))
        "overwrites atomically"
        (Some [ ("gamma", [ 9 ]) ])
        (I.Store.load_blob ~file ~magic:blob_magic))

let test_blob_missing_and_magic () =
  with_blob_file (fun file ->
      Alcotest.(check (option (list int)))
        "missing file reads as None" None
        (I.Store.load_blob ~file ~magic:blob_magic);
      I.Store.save_blob ~file ~magic:blob_magic [ 1; 2 ];
      Alcotest.(check (option (list int)))
        "foreign magic rejected" None
        (I.Store.load_blob ~file ~magic:"astree-test-blob v2\n"))

let test_blob_corrupt () =
  with_blob_file (fun file ->
      I.Store.save_blob ~file ~magic:blob_magic [ 1; 2; 3; 4; 5 ];
      let blob = In_channel.with_open_bin file In_channel.input_all in
      (* bit rot mid-payload *)
      let rotten = Bytes.of_string blob in
      let mid = Bytes.length rotten - 4 in
      Bytes.set rotten mid
        (Char.chr (Char.code (Bytes.get rotten mid) lxor 0xFF));
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_bytes oc rotten);
      Alcotest.(check (option (list int)))
        "corrupt blob reads as None" None
        (I.Store.load_blob ~file ~magic:blob_magic);
      (* a write that stopped halfway *)
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc
            (String.sub blob 0 (String.length blob / 2)));
      Alcotest.(check (option (list int)))
        "truncated blob reads as None" None
        (I.Store.load_blob ~file ~magic:blob_magic))

let test_blob_torn_write () =
  with_blob_file (fun file ->
      (* with the fault armed the writer tears mid-payload on the final
         name — the digest check must reject the file, silently *)
      Astree_robust.Faultsim.install ~seed:5
        [ (Astree_robust.Faultsim.Checkpoint_torn, 1.0) ];
      Fun.protect
        ~finally:(fun () -> Astree_robust.Faultsim.clear ())
        (fun () ->
          I.Store.save_blob ~file ~magic:blob_magic [ 42 ];
          Alcotest.(check bool) "torn file was published" true
            (Sys.file_exists file);
          Alcotest.(check (option (list int)))
            "torn blob reads as None" None
            (I.Store.load_blob ~file ~magic:blob_magic)))

let suite =
  [
    Alcotest.test_case "fingerprint: deterministic" `Quick
      test_fp_deterministic;
    Alcotest.test_case "fingerprint: whitespace/comment stable" `Quick
      test_fp_whitespace_stable;
    Alcotest.test_case "fingerprint: edits reach callers" `Quick
      test_fp_edit_propagates;
    Alcotest.test_case "fingerprint: config sensitivity" `Quick
      test_fp_config_sensitivity;
    Alcotest.test_case "warm = cold: mini_fbw -j1" `Quick
      test_warm_mini_fbw_seq;
    Alcotest.test_case "warm = cold: mini_fbw -j4" `Quick
      test_warm_mini_fbw_par;
    Alcotest.test_case "warm = cold: family member -j1" `Slow
      test_warm_member_seq;
    Alcotest.test_case "warm = cold: family member -j4" `Slow
      test_warm_member_par;
    Alcotest.test_case "in-memory cache equivalence" `Quick
      test_mem_cache_equiv;
    Alcotest.test_case "warm = cold: every example" `Quick
      test_warm_all_examples;
    Alcotest.test_case "store: corrupt files degrade to cold" `Quick
      test_store_corruption;
    Alcotest.test_case "store: racing writers never tear" `Quick
      test_store_racing_writers;
    Alcotest.test_case "blob: round-trip and atomic replace" `Quick
      test_blob_roundtrip;
    Alcotest.test_case "blob: missing file and foreign magic" `Quick
      test_blob_missing_and_magic;
    Alcotest.test_case "blob: corrupt + truncated read as None" `Quick
      test_blob_corrupt;
    Alcotest.test_case "blob: torn write rejected by digest" `Quick
      test_blob_torn_write;
  ]
