(* Whole-analyzer soundness properties: every error exhibited by a
   concrete execution must be covered by an alarm of the abstract
   analysis at the same location, and alarm-free programs never fail
   concretely.  The concrete interpreter of the frontend is the ground
   truth. *)

module C = Astree_core
module F = Astree_frontend
module G = Astree_gen

let compile src =
  let ast = F.Parser.parse_string ~file:"<t>" src in
  let p = F.Typecheck.elab_program ast in
  fst (F.Simplify.run p)

(* deterministic input oracle derived from a seed *)
let oracle_of_seed seed =
  let state = ref seed in
  fun (spec : F.Tast.input_spec) ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    let u = float_of_int !state /. float_of_int 0x3FFFFFFF in
    let v = spec.F.Tast.in_lo +. (u *. (spec.F.Tast.in_hi -. spec.F.Tast.in_lo)) in
    if F.Ctypes.is_integer spec.F.Tast.in_var.F.Tast.v_ty then Float.round v
    else v

(* Run [p] concretely under several input seeds; returns the observed
   error locations. *)
let concrete_errors ?(ticks = 300) ?(seeds = 20) (p : F.Tast.program) :
    (F.Interp.error_kind * F.Loc.t) list =
  let errs = ref [] in
  for seed = 1 to seeds do
    match F.Interp.run ~max_ticks:ticks ~input:(oracle_of_seed seed) p with
    | F.Interp.Finished -> ()
    | F.Interp.Error (k, l) -> errs := (k, l) :: !errs
  done;
  List.sort_uniq compare !errs

let alarm_covers (alarms : C.Alarm.t list) ((k, l) : F.Interp.error_kind * F.Loc.t) :
    bool =
  List.exists
    (fun (a : C.Alarm.t) ->
      F.Loc.equal a.C.Alarm.a_loc l
      &&
      match (k, a.C.Alarm.a_kind) with
      | F.Interp.Int_overflow, C.Alarm.Int_overflow
      | F.Interp.Div_by_zero, (C.Alarm.Div_by_zero | C.Alarm.Mod_by_zero)
      | F.Interp.Out_of_bounds, C.Alarm.Out_of_bounds
      | F.Interp.Float_overflow, C.Alarm.Float_overflow
      | F.Interp.Invalid_op, C.Alarm.Invalid_op
      | F.Interp.Assert_failure, C.Alarm.Assert_failure
      | F.Interp.Shift_range, C.Alarm.Shift_range ->
          true
      | _ -> false)
    alarms

(* Property 1: on buggy family members, every concrete error location is
   alarmed. *)
let prop_concrete_errors_alarmed =
  QCheck.Test.make ~name:"concrete errors are covered by alarms" ~count:15
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let g =
        G.Generator.generate
          {
            G.Generator.seed;
            target_lines = 150;
            mix = G.Shapes.all_safe_kinds;
            bug_ratio = 0.3;
            fuse = 1;
          }
      in
      let p = compile g.G.Generator.source in
      let r = C.Analysis.analyze ~cfg:C.Config.default p in
      let errors = concrete_errors p in
      List.for_all (alarm_covers r.C.Analysis.r_alarms) errors)

(* Property 2: alarm-free analyses really mean error-free executions. *)
let prop_no_alarm_no_error =
  QCheck.Test.make ~name:"0 alarms implies error-free concrete runs" ~count:10
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let g =
        G.Generator.generate
          {
            G.Generator.seed;
            target_lines = 200;
            mix = G.Shapes.all_safe_kinds;
            bug_ratio = 0.0;
            fuse = 1;
          }
      in
      let p = compile g.G.Generator.source in
      let r = C.Analysis.analyze ~cfg:C.Config.default p in
      QCheck.assume (C.Analysis.n_alarms r = 0);
      concrete_errors ~ticks:200 ~seeds:10 p = [])

(* Property 3: the final invariant over-approximates every concrete
   state observed at the clock ticks (checked on global scalars). *)
let prop_invariant_covers_trajectories =
  QCheck.Test.make ~name:"loop invariant covers concrete trajectories"
    ~count:10 (QCheck.int_range 1 10_000)
    (fun seed ->
      let g =
        G.Generator.generate
          {
            G.Generator.seed;
            target_lines = 120;
            mix =
              [ G.Shapes.Filter; G.Shapes.Rate_limiter; G.Shapes.Integrator;
                G.Shapes.Lag; G.Shapes.Counter ];
            bug_ratio = 0.0;
            fuse = 1;
          }
      in
      let p = compile g.G.Generator.source in
      let r = C.Analysis.analyze ~cfg:C.Config.default p in
      let actx = r.C.Analysis.r_actx in
      (* take the outermost loop invariant *)
      let inv =
        Hashtbl.fold
          (fun id st acc ->
            match acc with
            | Some (best, _) when best <= id -> acc
            | _ -> Some (id, st))
          actx.C.Transfer.invariants None
      in
      match inv with
      | None -> true
      | Some (_, inv) ->
          let ok = ref true in
          let on_tick (st : F.Interp.state) =
            List.iter
              (fun ((v : F.Tast.var), _) ->
                if (not v.F.Tast.v_volatile) && F.Ctypes.is_scalar v.F.Tast.v_ty
                then
                  match F.Interp.read_global_scalar st v.F.Tast.v_name with
                  | Some concrete ->
                      let abstract = C.Transfer.var_itv actx inv v in
                      let inside =
                        match (concrete, abstract) with
                        | F.Interp.Vint n, Astree_domains.Itv.Int (lo, hi) ->
                            lo <= n && n <= hi
                        | F.Interp.Vfloat f, Astree_domains.Itv.Float (lo, hi)
                          ->
                            lo <= f && f <= hi
                        | _, Astree_domains.Itv.Bot -> false
                        | _ -> true
                      in
                      if not inside then ok := false
                  | None -> ())
              p.F.Tast.p_globals
          in
          (match
             F.Interp.run ~max_ticks:300 ~input:(oracle_of_seed seed) ~on_tick p
           with
          | F.Interp.Finished -> ()
          | F.Interp.Error _ -> () (* alarms cover errors; prop 1 *));
          !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_concrete_errors_alarmed;
      prop_no_alarm_no_error;
      prop_invariant_covers_trajectories;
    ]
