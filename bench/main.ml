(* Benchmark and experiment harness.

   Regenerates every table and figure of the paper's evaluation
   (Sect. 8, plus the quantified claims of Sect. 6.1.2, 7.1, 7.2 and
   9.4.1) on the synthetic program family.  See DESIGN.md for the
   experiment index (E1-E15) and EXPERIMENTS.md for recorded results.

     dune exec bench/main.exe            # all experiments, default sizes
     dune exec bench/main.exe -- e1 e3   # selected experiments
     dune exec bench/main.exe -- micro   # bechamel micro-benchmarks
     dune exec bench/main.exe -- --full  # larger (slower) E1 sweep
     dune exec bench/main.exe -- --quick # smaller E12 workload (CI smoke)
     dune exec bench/main.exe -- --json out.json   # machine-readable results

   Absolute times are not comparable with the paper's 2003 hardware; the
   claims checked are the *shapes*: scaling curve, alarm-reduction
   ladder, packing-optimization and sharing speedups, census ratios. *)

module C = Astree_core
module D = Astree_domains
module F = Astree_frontend
module G = Astree_gen
module I = Astree_incremental
module P = Astree_parallel
module R = Astree_robust
module O = Astree_obs
module Srv = Astree_server

let section title =
  Fmt.pr "@.==============================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "==============================================================@."

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* machine-readable results (--json FILE): each experiment may record a
   pre-serialized JSON value under its name; the driver writes one object
   with everything that ran.  CI's bench-smoke job uploads this file. *)
let json_results : (string * string) list ref = ref []
let json_record key value = json_results := (key, value) :: !json_results

let json_write path =
  let fields =
    List.rev_map
      (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v)
      !json_results
  in
  let oc = open_out path in
  output_string oc ("{" ^ String.concat ", " fields ^ "}\n");
  close_out oc;
  Fmt.pr "@.results written to %s@." path

let analyze ?(cfg = C.Config.default) (g : G.Generator.generated) =
  C.Analysis.analyze_string ~cfg g.G.Generator.source

let cfg_with_partitions (g : G.Generator.generated) =
  {
    C.Config.default with
    C.Config.partitioned_functions = g.G.Generator.partition_fns;
  }

(* ------------------------------------------------------------------ *)
(* E1 - Fig. 2: total analysis time vs program size                    *)
(* ------------------------------------------------------------------ *)

let e1 ~full () =
  section
    "E1 (Fig. 2): total analysis time for the family of programs\n\
     paper: 0-80 kLOC analyzed in minutes to ~2h; superlinear but\n\
     tractable curve";
  let sizes =
    if full then [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 ]
    else [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ]
  in
  Fmt.pr "%8s %8s %10s %10s %8s@." "kLOC" "lines" "time(s)" "alarms" "cells";
  let results =
    List.map
      (fun kloc ->
        let g = G.Generator.member ~kloc () in
        let cfg = cfg_with_partitions g in
        let r, dt = time (fun () -> analyze ~cfg g) in
        Fmt.pr "%8.2f %8d %10.2f %10d %8d@."
          (float_of_int g.G.Generator.n_lines /. 1000.)
          g.G.Generator.n_lines dt (C.Analysis.n_alarms r)
          r.C.Analysis.r_stats.C.Analysis.s_cells;
        (float_of_int g.G.Generator.n_lines /. 1000., dt))
      sizes
  in
  (match (results, List.rev results) with
  | (k0, t0) :: _, (k1, t1) :: _ when t0 > 0.0 && k1 > k0 ->
      let expo = log (t1 /. t0) /. log (k1 /. k0) in
      Fmt.pr
        "observed scaling: time ~ kLOC^%.2f (the paper's Fig. 2 curve is\n\
         superlinear in kLOC)@."
        expo
  | _ -> ())

(* ------------------------------------------------------------------ *)
(* E2 - Sect. 8: alarm reduction by refinement                          *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section
    "E2 (Sect. 8): false alarms on the reference program per analyzer\n\
     refinement; paper: 1,200 alarms with the baseline [5], down to 11\n\
     (even 3) after the refinements of the paper";
  let g = G.Generator.reference ~target_lines:2000 () in
  Fmt.pr "reference program: %d lines (every alarm is a false alarm)@."
    g.G.Generator.n_lines;
  let base = C.Config.default in
  let steps =
    [
      ("intervals only (Sect. 2 start)", C.Config.intervals_only);
      ("baseline [5]: + clocked + thresholds", C.Config.baseline);
      ( "+ symbolic linearization (6.3)",
        { C.Config.baseline with C.Config.use_linearization = true } );
      ( "+ octagons (6.2.2)",
        {
          C.Config.baseline with
          C.Config.use_linearization = true;
          use_octagons = true;
        } );
      ( "+ ellipsoids (6.2.3)",
        {
          C.Config.baseline with
          C.Config.use_linearization = true;
          use_octagons = true;
          use_ellipsoids = true;
        } );
      ("+ decision trees (6.2.4)", base);
      ( "+ trace partitioning (7.1.5)",
        { base with C.Config.partitioned_functions = g.G.Generator.partition_fns }
      );
    ]
  in
  Fmt.pr "%-42s %8s %9s@." "analyzer version" "alarms" "time(s)";
  List.iter
    (fun (name, cfg) ->
      let r, dt = time (fun () -> analyze ~cfg g) in
      Fmt.pr "%-42s %8d %9.2f@." name (C.Analysis.n_alarms r) dt)
    steps

(* ------------------------------------------------------------------ *)
(* E3 - Sect. 7.2.2 / 8: packing optimization                           *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section
    "E3 (Sect. 7.2.2, 8): octagon-packing optimization\n\
     paper: 2,600 packs, only 400 useful; reusing the useful list cuts\n\
     time 1h40 -> 40min and memory 550 MB -> 150 MB";
  let g = G.Generator.member ~kloc:3.0 () in
  let cfg = cfg_with_partitions g in
  let alloc f =
    (* allocation through the analysis, as a memory-pressure proxy for
       the paper's resident-memory figures *)
    let a0 = Gc.allocated_bytes () in
    let r = f () in
    (r, (Gc.allocated_bytes () -. a0) /. 1_048_576.)
  in
  let (r, mb_full), t_full = time (fun () -> alloc (fun () -> analyze ~cfg g)) in
  let useful = C.Analysis.useful_octagon_packs r in
  let total = r.C.Analysis.r_stats.C.Analysis.s_oct_packs in
  Fmt.pr "full analysis: %d octagon packs, %d useful, %d alarms, %.2fs, %.0f MB allocated@."
    total (List.length useful) (C.Analysis.n_alarms r) t_full mb_full;
  let cfg' = { cfg with C.Config.useful_packs_only = Some ("e3", useful) } in
  let (r', mb_opt), t_opt = time (fun () -> alloc (fun () -> analyze ~cfg:cfg' g)) in
  Fmt.pr
    "rerun with useful packs only: %d packs, %d alarms, %.2fs (%.2fx), %.0f MB allocated (%.2fx)@."
    r'.C.Analysis.r_stats.C.Analysis.s_oct_packs (C.Analysis.n_alarms r')
    t_opt
    (t_full /. Float.max t_opt 1e-9)
    mb_opt
    (mb_full /. Float.max mb_opt 1e-9);
  Fmt.pr "precision preserved: %b (paper: 'perfectly safe')@."
    (C.Analysis.n_alarms r = C.Analysis.n_alarms r')

(* ------------------------------------------------------------------ *)
(* E4 - Sect. 9.4.1: main loop invariant census                         *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section
    "E4 (Sect. 9.4.1): census of the main loop invariant\n\
     paper: 6,900 boolean + 9,600 interval + 25,400 clock + 19,100\n\
     additive and 19,200 subtractive octagonal + 100 decision-tree +\n\
     1,900 ellipsoidal assertions; >16,000 fp constants (550 in the text)";
  let g = G.Generator.member ~kloc:3.0 () in
  let cfg = cfg_with_partitions g in
  let r = analyze ~cfg g in
  (match C.Invariant_census.main_loop_census r with
  | Some c ->
      Fmt.pr "%a@." C.Invariant_census.pp c;
      Fmt.pr
        "shape check: clock assertions dominate interval assertions: %b@."
        (c.C.Invariant_census.c_clock_assertions
         > c.C.Invariant_census.c_interval_assertions)
  | None -> Fmt.pr "no invariant recorded@.");
  let bytes = String.length (C.Invariant_dump.to_string r) in
  Fmt.pr "textual invariant dump: %.2f MB (paper: over 4.5 MB at 75 kLOC)@."
    (float_of_int bytes /. 1_048_576.)

(* ------------------------------------------------------------------ *)
(* E5 - Sect. 6.1.2: sharable functional maps vs arrays                 *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section
    "E5 (Sect. 6.1.2): abstract environments as sharable functional maps\n\
     paper: on a 10,000-line example the execution time was divided by 7\n\
     (quadratic behaviour of array environments)";
  Fmt.pr "%8s %14s %14s %8s@." "lines" "shared(s)" "naive(s)" "ratio";
  List.iter
    (fun kloc ->
      let g = G.Generator.member ~kloc () in
      let cfg = cfg_with_partitions g in
      let _, t_shared = time (fun () -> analyze ~cfg g) in
      let cfg_naive = { cfg with C.Config.naive_environments = true } in
      let _, t_naive = time (fun () -> analyze ~cfg:cfg_naive g) in
      Fmt.pr "%8d %14.2f %14.2f %8.2f@." g.G.Generator.n_lines t_shared
        t_naive
        (t_naive /. Float.max t_shared 1e-9))
    [ 1.0; 2.0; 4.0 ]

(* ------------------------------------------------------------------ *)
(* E6 - Sect. 7.1.2: widening thresholds                                *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section
    "E6 (Sect. 7.1.2): widening thresholds (+-alpha.lambda^k)\n\
     paper: a threshold >= the minimal admissible M proves the variable\n\
     bounded; 'the choice of alpha and lambda mostly did not matter\n\
     much ... we had to choose a smaller value for lambda to remove\n\
     some false alarms'";
  (* integrators x := alpha x + u with |u| <= U are bounded by
     M = U/(1-alpha); each feeds a 16-bit register scaled so that the
     conversion is safe iff |x| <= 2M.  Proving it needs a threshold
     >= M in the set: the sweep reproduces "as long as the set of
     thresholds contains some number greater or equal to the minimum M,
     the interval analysis ... will prove that the value of X is
     bounded". *)
  let n_integrators = 24 in
  let src =
    let buf = Buffer.create 4096 in
    let bounds = ref [] in
    for i = 0 to n_integrators - 1 do
      let alpha = 0.5 +. (0.02 *. float_of_int i) in
      let u = 1.0 +. float_of_int (i mod 7) in
      let m = u /. (1.0 -. alpha) in
      bounds := m :: !bounds;
      Buffer.add_string buf
        (Fmt.str "volatile float u%d;\nfloat x%d;\nshort o%d;\n" i i i)
    done;
    Buffer.add_string buf "int main(void) {\n";
    for i = 0 to n_integrators - 1 do
      let u = 1.0 +. float_of_int (i mod 7) in
      Buffer.add_string buf
        (Fmt.str "  __astree_input_range(u%d, %g, %g);\n  x%d = 0.0f;\n" i
           (-.u) u i)
    done;
    Buffer.add_string buf "  while (1) {\n";
    List.iteri
      (fun i m ->
        let i = n_integrators - 1 - i in
        let alpha = 0.5 +. (0.02 *. float_of_int i) in
        ignore m;
        let u = 1.0 +. float_of_int (i mod 7) in
        let bound = 2.0 *. (u /. (1.0 -. alpha)) in
        Buffer.add_string buf
          (Fmt.str
             "    x%d = %gf * x%d + u%d;\n    o%d = (short)(x%d * %gf);\n"
             i alpha i i i i (30000.0 /. bound)))
      !bounds;
    Buffer.add_string buf "    __astree_wait_for_clock();\n  }\n  return 0;\n}\n";
    Buffer.contents buf
  in
  Fmt.pr
    "%d leaky integrators, each feeding a short register scaled to 2M@."
    n_integrators;
  Fmt.pr "%-34s %8s@." "threshold set" "alarms";
  let sets =
    [
      ("none (straight to +-oo)", D.Thresholds.none);
      ("ceiling 10 (too small)", D.Thresholds.geometric ~lambda:10.0 ~n:1 ());
      ("ceiling 100", D.Thresholds.geometric ~lambda:10.0 ~n:2 ());
      ("ceiling 10^3", D.Thresholds.geometric ~lambda:10.0 ~n:3 ());
      ("default ramp to 10^40", D.Thresholds.default);
      ("dense ramp lambda=2", D.Thresholds.geometric ~lambda:2.0 ~n:40 ());
    ]
  in
  List.iter
    (fun (name, th) ->
      let cfg = { C.Config.default with C.Config.widening_thresholds = th } in
      let r = C.Analysis.analyze_string ~cfg src in
      Fmt.pr "%-34s %8d@." name (C.Analysis.n_alarms r))
    sets

(* ------------------------------------------------------------------ *)
(* E7 - Sect. 7.1.1 / 7.1.5: unrolling and trace partitioning           *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section
    "E7 (Sect. 7.1.1, 7.1.5): loop unrolling and trace partitioning\n\
     paper: both trade analysis time for precision; partitioning is\n\
     applied in a few end-user selected functions";
  let g =
    G.Generator.generate
      {
        G.Generator.default with
        target_lines = 700;
        mix =
          [ G.Shapes.Piecewise; G.Shapes.Interpolation; G.Shapes.Counter;
            G.Shapes.Integrator ];
      }
  in
  Fmt.pr "-- trace partitioning (piecewise-heavy program) --@.";
  Fmt.pr "%-24s %8s %9s@." "partitioning" "alarms" "time(s)";
  let r_no, t_no = time (fun () -> analyze g) in
  Fmt.pr "%-24s %8d %9.2f@." "off" (C.Analysis.n_alarms r_no) t_no;
  let r_yes, t_yes = time (fun () -> analyze ~cfg:(cfg_with_partitions g) g) in
  Fmt.pr "%-24s %8d %9.2f@." "on (selected functions)"
    (C.Analysis.n_alarms r_yes) t_yes;
  Fmt.pr "-- loop unrolling --@.";
  (* accumulators over bounded scan loops: exact only when the scan is
     fully unrolled ("in general, the larger the n, the more precise the
     analysis, and the longer the analysis time") *)
  let scan_src =
    let buf = Buffer.create 2048 in
    for k = 0 to 11 do
      Buffer.add_string buf
        (Fmt.str "int out%d;\nshort reg%d;\n" k k)
    done;
    Buffer.add_string buf "int main(void) {\n  while (1) {\n";
    for k = 0 to 11 do
      Buffer.add_string buf
        (Fmt.str
           "    { int i%d; int s%d; s%d = 0; for (i%d = 0; i%d < 6; i%d = i%d + 1) { s%d = s%d + 3; } out%d = s%d; reg%d = (short)(s%d * 1000); }\n"
           k k k k k k k k k k k k k)
    done;
    Buffer.add_string buf "    __astree_wait_for_clock();\n  }\n  return 0;\n}\n";
    Buffer.contents buf
  in
  Fmt.pr "%-24s %8s %9s@." "unroll factor" "alarms" "time(s)";
  List.iter
    (fun n ->
      let cfg = { C.Config.default with C.Config.loop_unroll = n } in
      let r, dt =
        time (fun () -> C.Analysis.analyze_string ~cfg scan_src)
      in
      Fmt.pr "%-24d %8d %9.2f@." n (C.Analysis.n_alarms r) dt)
    [ 0; 1; 2; 4; 6 ]

(* ------------------------------------------------------------------ *)
(* E8 - Sect. 7.2.3: decision-tree pack size                            *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section
    "E8 (Sect. 7.2.3): booleans per decision-tree pack\n\
     paper: unbounded packs reached 36 booleans with very bad\n\
     performance; the bound of three gives an efficient and precise\n\
     analysis";
  let g =
    G.Generator.generate
      {
        G.Generator.default with
        target_lines = 400;
        mix = [ G.Shapes.Relay_chain; G.Shapes.Relay; G.Shapes.Channel ];
      }
  in
  Fmt.pr "%-18s %8s %8s %9s@." "max booleans" "packs" "alarms" "time(s)";
  List.iter
    (fun n ->
      let cfg = { C.Config.default with C.Config.max_dtree_bools = n } in
      let r, dt = time (fun () -> analyze ~cfg g) in
      Fmt.pr "%-18d %8d %8d %9.2f@." n
        r.C.Analysis.r_stats.C.Analysis.s_dt_packs (C.Analysis.n_alarms r) dt)
    [ 0; 1; 3; 8 ]

(* ------------------------------------------------------------------ *)
(* E9 - Sect. 6.2.3: ellipsoid bound vs concrete trajectories           *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section
    "E9 (Sect. 6.2.3, Fig. 1): ellipsoid invariant of the second-order\n\
     filter vs simulated concrete trajectories (Prop. 1)";
  let a_c = 1.5 and b_c = 0.7 in
  let src =
    Fmt.str
      {|
volatile float fin;
volatile _Bool rst;
float X; float Y;
int main(void) {
  __astree_input_range(fin, -1.0, 1.0);
  __astree_input_range(rst, 0.0, 1.0);
  X = 0.0f; Y = 0.0f;
  while (1) {
    float t;
    t = fin;
    if (rst) { Y = t; X = t; }
    else { float X2; X2 = %gf * X - %gf * Y + t; Y = X; X = X2; }
    __astree_wait_for_clock();
  }
  return 0;
}
|}
      a_c b_c
  in
  let r = C.Analysis.analyze_string src in
  Fmt.pr "alarms on the filter: %d@." (C.Analysis.n_alarms r);
  let proven = ref Float.infinity in
  Hashtbl.iter
    (fun _ (inv : C.Astate.t) ->
      C.Env.iter
        (fun cid av ->
          let c = C.Cell.of_id r.C.Analysis.r_actx.C.Transfer.intern cid in
          if C.Cell.to_string c = "X" then
            match C.Avalue.itv av with
            | D.Itv.Float (lo, hi) ->
                proven := Float.max (Float.abs lo) (Float.abs hi)
            | _ -> ())
        inv.C.Astate.env)
    r.C.Analysis.r_actx.C.Transfer.invariants;
  Fmt.pr "proven |X| bound: %g@." !proven;
  let k_star = (1.0 /. (1.0 -. sqrt b_c)) ** 2.0 in
  let ideal = 2.0 *. sqrt (b_c *. k_star /. ((4.0 *. b_c) -. (a_c *. a_c))) in
  Fmt.pr "Prop. 1 ideal bound (exact arithmetic): %g@." ideal;
  let p, _ = C.Analysis.compile [ ("<e9>", src) ] in
  let worst = ref 0.0 in
  for seed = 1 to 10 do
    let state = ref seed in
    let input (spec : F.Tast.input_spec) =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      let u = float_of_int !state /. float_of_int 0x3FFFFFFF in
      if spec.F.Tast.in_var.F.Tast.v_orig = "rst" then
        if u < 0.01 then 1.0 else 0.0
      else spec.F.Tast.in_lo +. (u *. (spec.F.Tast.in_hi -. spec.F.Tast.in_lo))
    in
    let on_tick (st : F.Interp.state) =
      match F.Interp.read_global_scalar st "X" with
      | Some (F.Interp.Vfloat x) ->
          if Float.abs x > !worst then worst := Float.abs x
      | _ -> ()
    in
    ignore (F.Interp.run ~max_ticks:20_000 ~input ~on_tick p)
  done;
  Fmt.pr "worst |X| over 10 concrete trajectories of 20k ticks: %g@." !worst;
  Fmt.pr "soundness: simulated %g <= proven %g: %b@." !worst !proven
    (!worst <= !proven)

(* ------------------------------------------------------------------ *)
(* E10 - parallel analysis: the two job axes of lib/parallel           *)
(* ------------------------------------------------------------------ *)

(* Run [f] in a forked child and return its printed string.  The OCaml
   5 runtime refuses Unix.fork in any process that has ever spawned a
   domain, so every domains-backend measurement runs in a child: this
   process stays fork-capable for the batch pools and E15's daemon. *)
let in_child (f : unit -> string) : string =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      let code =
        match f () with
        | s ->
            let oc = Unix.out_channel_of_descr w in
            output_string oc s;
            flush oc;
            0
        | exception e ->
            prerr_endline ("bench child: " ^ Printexc.to_string e);
            1
      in
      Unix._exit code
  | pid ->
      Unix.close w;
      let ic = Unix.in_channel_of_descr r in
      let buf = Buffer.create 256 in
      (try
         let chunk = Bytes.create 4096 in
         let rec drain () =
           let n = input ic chunk 0 (Bytes.length chunk) in
           if n > 0 then begin
             Buffer.add_subbytes buf chunk 0 n;
             drain ()
           end
         in
         drain ()
       with End_of_file -> ());
      close_in ic;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> failwith "bench child failed");
      Buffer.contents buf

let e10 ~quick () =
  section
    "E10: parallel analysis (-j n), fork + domains backends\n\
     claim checked: every (-j n, backend) fingerprint equals the -j 1\n\
     fingerprint; domains-backend speedup is reported against the\n\
     machine's actual core count (gated in CI only when >= 4 cores)";
  let cores = P.Scheduler.default_jobs () in
  Fmt.pr "cores available: %d@." cores;
  (* axis (b): whole-program batch jobs — a domain-refinement ladder
     over one family member, one full analysis per rung *)
  let g = G.Generator.member ~kloc:(if quick then 0.5 else 2.0) () in
  let base = cfg_with_partitions g in
  let ladder =
    [
      ("full", base);
      ("no-oct", { base with C.Config.use_octagons = false });
      ("no-ell", { base with C.Config.use_ellipsoids = false });
      ("no-dt", { base with C.Config.use_decision_trees = false });
      ("no-clock", { base with C.Config.use_clocked = false });
      ( "no-thresholds",
        { base with C.Config.widening_thresholds = D.Thresholds.none } );
    ]
  in
  let items =
    List.map
      (fun (label, cfg) ->
        P.Scheduler.batch_job ~label ~cfg
          (P.Scheduler.Bs_sources [ ("member.c", g.G.Generator.source) ]))
      ladder
  in
  let job_counts = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let fingerprints rs = List.map (fun (_, r) -> P.Merge.fingerprint r) rs in
  let seq, t1 = time (fun () -> P.Scheduler.analyze_batch ~jobs:1 items) in
  let fp1 = fingerprints seq in
  (* one measurement = (jobs, seconds, fingerprints identical).  Fork
     rows run here; domains rows run in one forked child per axis (see
     [in_child]), which inherits the baseline fingerprints by fork and
     ships "jobs time identical" lines back. *)
  let parse_rows out =
    String.split_on_char '\n' out
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           Scanf.sscanf l "%d %f %b" (fun j dt ok -> (j, dt, ok)))
  in
  let batch_domains () =
    String.concat ""
      (List.map
         (fun jobs ->
           let rs, dt =
             time (fun () ->
                 P.Scheduler.analyze_batch ~jobs ~backend:`Domains items)
           in
           Printf.sprintf "%d %.6f %b\n" jobs dt (fingerprints rs = fp1))
         job_counts)
  in
  let batch_rows =
    [
      ( "fork",
        List.map
          (fun jobs ->
            let rs, dt =
              time (fun () ->
                  P.Scheduler.analyze_batch ~jobs ~backend:`Fork items)
            in
            (jobs, dt, fingerprints rs = fp1))
          job_counts );
      ("domains", parse_rows (in_child batch_domains));
    ]
  in
  Fmt.pr "@.batch axis: %d-rung refinement ladder on a %.1f kLOC member@."
    (List.length ladder)
    (float_of_int g.G.Generator.n_lines /. 1000.);
  Fmt.pr "%8s %6s %10s %9s %10s@." "backend" "jobs" "time(s)" "speedup"
    "identical";
  Fmt.pr "%8s %6d %10.2f %9s %10s@." "-" 1 t1 "1.00x" "-";
  List.iter
    (fun (be, rows) ->
      List.iter
        (fun (jobs, dt, ok) ->
          Fmt.pr "%8s %6d %10.2f %8.2fx %10b@." be jobs dt (t1 /. dt) ok)
        rows)
    batch_rows;
  (* axis (a): intra-program disjunct jobs on the same member, with the
     production job-size gate (small disjuncts stay in-process) *)
  let p, _ = C.Analysis.compile [ ("member.c", g.G.Generator.source) ] in
  let r1, s1 =
    time (fun () -> C.Analysis.analyze ~cfg:{ base with C.Config.jobs = 1 } p)
  in
  let f1 = P.Merge.fingerprint r1 in
  let disj_counts = [ 2; 4 ] in
  let run_disj backend jobs =
    let r, dt =
      time (fun () ->
          P.Scheduler.analyze
            ~cfg:{ base with C.Config.jobs = jobs; par_backend = backend }
            p)
    in
    (jobs, dt, P.Merge.fingerprint r = f1)
  in
  let disj_domains () =
    String.concat ""
      (List.map
         (fun jobs ->
           let j, dt, ok = run_disj `Domains jobs in
           Printf.sprintf "%d %.6f %b\n" j dt ok)
         disj_counts)
  in
  let disj_rows =
    [
      ("fork", List.map (run_disj `Fork) disj_counts);
      ("domains", parse_rows (in_child disj_domains));
    ]
  in
  Fmt.pr "@.disjunct axis: same member, branch/partition jobs@.";
  Fmt.pr "%8s %6s %10s %9s %10s@." "backend" "jobs" "time(s)" "speedup"
    "identical";
  Fmt.pr "%8s %6d %10.2f %9s %10s@." "-" 1 s1 "1.00x" "-";
  List.iter
    (fun (be, rows) ->
      List.iter
        (fun (jobs, dt, ok) ->
          Fmt.pr "%8s %6d %10.2f %8.2fx %10b@." be jobs dt (s1 /. dt) ok)
        rows)
    disj_rows;
  (* claims: all fingerprints identical everywhere; on a >= 4-core
     machine the domains backend must reach 3x on the embarrassingly
     parallel batch axis at -j 4 and beat sequential on the disjunct
     axis (1-core CI records the numbers without enforcing them) *)
  let all_identical =
    List.for_all
      (fun (_, rows) -> List.for_all (fun (_, _, ok) -> ok) rows)
      (batch_rows @ disj_rows)
  in
  let speedup_of rows jobs =
    List.filter_map
      (fun (j, dt, _) -> if j = jobs then Some dt else None)
      rows
    |> function
    | dt :: _ -> Some dt
    | [] -> None
  in
  let dom_batch = List.assoc "domains" batch_rows in
  let dom_disj = List.assoc "domains" disj_rows in
  let batch_3x =
    match speedup_of dom_batch 4 with
    | Some dt -> t1 /. dt >= 3.0
    | None -> false
  in
  let disj_1x =
    List.exists (fun (_, dt, _) -> s1 /. dt > 1.0) dom_disj
  in
  let enforce = cores >= 4 in
  Fmt.pr
    "@.fingerprints identical everywhere: %b@.domains batch -j4 >= 3x: %b \
     (enforced: %b)@.domains disjunct > 1x: %b (enforced: %b)@."
    all_identical batch_3x enforce disj_1x enforce;
  let rows_json rows =
    String.concat ", "
      (List.map
         (fun (j, dt, ok) ->
           Printf.sprintf
             "{\"jobs\": %d, \"time_s\": %.6f, \"identical\": %b}" j dt ok)
         rows)
  in
  json_record "e10"
    (Printf.sprintf
       "{\"quick\": %b, \"cores\": %d, \"t_batch_j1\": %.6f, \
        \"t_disjunct_j1\": %.6f, \"backends\": [%s], \
        \"fingerprints_identical\": %b, \"speedup_gates_enforced\": %b, \
        \"batch_speedup_ge_3x\": %b, \"disjunct_speedup_gt_1x\": %b}"
       quick cores t1 s1
       (String.concat ", "
          (List.map
             (fun be ->
               Printf.sprintf
                 "{\"backend\": \"%s\", \"batch\": [%s], \"disjunct\": [%s]}"
                 be
                 (rows_json (List.assoc be batch_rows))
                 (rows_json (List.assoc be disj_rows)))
             [ "fork"; "domains" ]))
       all_identical enforce batch_3x disj_1x)

(* ------------------------------------------------------------------ *)
(* E11 - incremental analysis: the summary cache of lib/incremental    *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section
    "E11: incremental analysis (--cache dir): content-addressed\n\
     function summaries persisted across runs\n\
     claims checked: warm fingerprints identical to cold and to the\n\
     cache-less analyzer; warm re-analysis of an unchanged program is\n\
     >= 2x faster";
  I.Summary.register ();
  let dir = Filename.temp_file "astree-e11" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      C.Analysis.cache_driver := None;
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let cache_line (r : C.Analysis.result) =
        match r.C.Analysis.r_stats.C.Analysis.s_cache with
        | Some c ->
            Fmt.str "%d hit(s) / %d miss(es), %d loaded" c.C.Analysis.c_hits
              c.C.Analysis.c_misses c.C.Analysis.c_loaded
        | None -> "cache off"
      in
      (* single member, sequential: cache-off baseline, cold store
         write, warm store reuse *)
      let g =
        G.Generator.generate
          { G.Generator.default with G.Generator.target_lines = 2200; fuse = 16 }
      in
      let base = cfg_with_partitions g in
      let ccfg =
        { base with C.Config.summary_cache = C.Config.Cache_dir dir }
      in
      let p, _ = C.Analysis.compile [ ("member.c", g.G.Generator.source) ] in
      let off, t_off = time (fun () -> C.Analysis.analyze ~cfg:base p) in
      let f_off = P.Merge.fingerprint off in
      let cold, t_cold = time (fun () -> C.Analysis.analyze ~cfg:ccfg p) in
      let warm, t_warm = time (fun () -> C.Analysis.analyze ~cfg:ccfg p) in
      Fmt.pr "@.single member (%.1f kLOC), -j 1:@."
        (float_of_int g.G.Generator.n_lines /. 1000.);
      Fmt.pr "%12s %10s %9s %10s   %s@." "run" "time(s)" "speedup"
        "identical" "cache";
      Fmt.pr "%12s %10.2f %9s %10s   %s@." "cache-off" t_off "1.00x" "-"
        (cache_line off);
      Fmt.pr "%12s %10.2f %8.2fx %10b   %s@." "cold" t_cold (t_off /. t_cold)
        (P.Merge.fingerprint cold = f_off)
        (cache_line cold);
      Fmt.pr "%12s %10.2f %8.2fx %10b   %s@." "warm" t_warm (t_off /. t_warm)
        (P.Merge.fingerprint warm = f_off)
        (cache_line warm);
      Fmt.pr "warm >= 2x faster than cold: %b@." (t_cold /. t_warm >= 2.0);
      (* unchanged family batch, -j 4: the paper's nightly re-analysis
         scenario — every member re-verified from its stored summaries *)
      let members =
        List.map
          (fun seed ->
            G.Generator.generate
              {
                G.Generator.default with
                G.Generator.seed;
                target_lines = 1200;
                fuse = 16;
              })
          [ 31; 32; 33; 34 ]
      in
      let items cache =
        List.mapi
          (fun i (m : G.Generator.generated) ->
            let cfg =
              {
                C.Config.default with
                C.Config.partitioned_functions = m.G.Generator.partition_fns;
                summary_cache =
                  (if cache then C.Config.Cache_dir dir
                   else C.Config.Cache_off);
              }
            in
            P.Scheduler.batch_job
              ~label:(Fmt.str "m%d" i)
              ~cfg
              (P.Scheduler.Bs_sources
                 [ (Fmt.str "m%d.c" i, m.G.Generator.source) ]))
          members
      in
      let fingerprints rs = List.map (fun (_, r) -> P.Merge.fingerprint r) rs in
      let b_off, bt_off =
        time (fun () -> P.Scheduler.analyze_batch ~jobs:4 (items false))
      in
      let fb = fingerprints b_off in
      let b_cold, bt_cold =
        time (fun () -> P.Scheduler.analyze_batch ~jobs:4 (items true))
      in
      let b_warm, bt_warm =
        time (fun () -> P.Scheduler.analyze_batch ~jobs:4 (items true))
      in
      Fmt.pr "@.unchanged family batch (%d members, ~1.2 kLOC each), -j 4:@."
        (List.length members);
      Fmt.pr "%12s %10s %9s %10s@." "run" "time(s)" "speedup" "identical";
      Fmt.pr "%12s %10.2f %9s %10s@." "cache-off" bt_off "1.00x" "-";
      Fmt.pr "%12s %10.2f %8.2fx %10b@." "cold" bt_cold (bt_off /. bt_cold)
        (fingerprints b_cold = fb);
      Fmt.pr "%12s %10.2f %8.2fx %10b@." "warm" bt_warm (bt_off /. bt_warm)
        (fingerprints b_warm = fb);
      Fmt.pr "warm batch >= 2x faster than cold: %b@."
        (bt_cold /. bt_warm >= 2.0))

(* ------------------------------------------------------------------ *)
(* E12 - octagon hot path: incremental strong closure                  *)
(* ------------------------------------------------------------------ *)

(* octagon-heavy cascade workload shared by E12 and E13 *)
let cascade_source ~stages ~width =
    let buf = Buffer.create 8192 in
    for s = 0 to stages - 1 do
      Buffer.add_string buf (Fmt.str "volatile float u%d;\n" s);
      for v = 0 to width - 1 do
        Buffer.add_string buf (Fmt.str "float x%d_%d;\n" s v)
      done;
      (* output registers: o is scaled so the conversion overflows (one
         deterministic alarm per stage), p is safely scaled (no alarm);
         all constants dyadic so every abstract bound is exact in float
         and alarm messages compare bit for bit across binaries *)
      Buffer.add_string buf (Fmt.str "short o%d;\nshort p%d;\n" s s)
    done;
    for s = 0 to stages - 1 do
      Buffer.add_string buf (Fmt.str "void stage%d(void) {\n" s);
      Buffer.add_string buf (Fmt.str "  x%d_0 = u%d;\n" s s);
      for v = 1 to width - 1 do
        Buffer.add_string buf
          (Fmt.str "  x%d_%d = 0.5f * x%d_%d + 0.5f * x%d_%d;\n" s v s v s
             (v - 1));
        Buffer.add_string buf
          (Fmt.str
             "  if (x%d_%d - x%d_%d > 0.25f) { x%d_%d = x%d_%d + 0.25f; }\n"
             s v s (v - 1) s v s (v - 1))
      done;
      Buffer.add_string buf
        (Fmt.str "  o%d = (short)(x%d_%d * 65536.0f);\n" s s (width - 1));
      Buffer.add_string buf
        (Fmt.str "  p%d = (short)(x%d_%d * 128.0f);\n" s s (width - 1));
      Buffer.add_string buf "}\n"
    done;
    Buffer.add_string buf "int main(void) {\n";
    for s = 0 to stages - 1 do
      Buffer.add_string buf
        (Fmt.str "  __astree_input_range(u%d, -1.0, 1.0);\n" s);
      for v = 0 to width - 1 do
        Buffer.add_string buf (Fmt.str "  x%d_%d = 0.0f;\n" s v)
      done
    done;
    Buffer.add_string buf "  while (1) {\n";
    for s = 0 to stages - 1 do
      Buffer.add_string buf (Fmt.str "    stage%d();\n" s)
    done;
    Buffer.add_string buf
      "    __astree_wait_for_clock();\n  }\n  return 0;\n}\n";
    Buffer.contents buf

let e12 ~quick () =
  section
    "E12: octagon hot path - flat DBMs, closure-state tracking and\n\
     incremental strong closure\n\
     claims checked: >= 2x total-analysis speedup on an octagon-heavy\n\
     workload vs the pre-overhaul cost model (every closure request\n\
     re-runs the full cubic pass), with identical alarms; -j 4 and\n\
     cache cold/warm fingerprints identical to the -j 1 baseline";
  (* deep relational workload: per stage function, a cascade of
     rate-limited first-order lags.  Every tap is linearly coupled to
     its predecessor, so packing puts the whole cascade in one wide
     octagon pack; strong closure is Theta(n^3) per call, which is the
     regime the overhaul targets. *)
  let stages, width = if quick then (6, 8) else (16, 10) in
  let src = cascade_source ~stages ~width in
  let n_lines =
    List.length (String.split_on_char '\n' src)
  in
  let cfg = { C.Config.default with C.Config.max_octagon_pack = width } in
  let p, _ = C.Analysis.compile [ ("e12.c", src) ] in
  (let widths = Hashtbl.create 8 in
   List.iter
     (fun op ->
       let w = Array.length op.C.Packing.op_vars in
       Hashtbl.replace widths w
         (1 + Option.value ~default:0 (Hashtbl.find_opt widths w)))
     (C.Packing.compute cfg p).C.Packing.octs;
   let l = Hashtbl.fold (fun w n acc -> (w, n) :: acc) widths [] in
   Fmt.pr "pack widths (count x width): %a@."
     Fmt.(list ~sep:sp (pair ~sep:(any "x") int int))
     (List.sort compare (List.map (fun (w, n) -> (n, w)) l)));
  let counters () =
    ( D.Profile.counter D.Profile.oct_close_full,
      D.Profile.counter D.Profile.oct_close_incr,
      D.Profile.counter D.Profile.oct_close_skip )
  in
  (* A/B inside one binary: [force_full_close] restores the pre-overhaul
     cost model (the algorithms are equivalent, see test_octagon.ml, so
     only the work per closure request changes) *)
  D.Octagon.force_full_close := true;
  D.Profile.reset ();
  let r_full, t_full = time (fun () -> C.Analysis.analyze ~cfg p) in
  let ff, fi, fs = counters () in
  D.Octagon.force_full_close := false;
  D.Profile.reset ();
  let r_incr, t_incr = time (fun () -> C.Analysis.analyze ~cfg p) in
  let nf, ni, ns = counters () in
  let speedup = t_full /. Float.max t_incr 1e-9 in
  let alarms_same = r_full.C.Analysis.r_alarms = r_incr.C.Analysis.r_alarms in
  Fmt.pr "workload: %d lines, %d stages of a %d-tap cascade, %d octagon packs, %d alarms@."
    n_lines stages width r_incr.C.Analysis.r_stats.C.Analysis.s_oct_packs
    (C.Analysis.n_alarms r_incr);
  Fmt.pr "%-22s %10s %9s   %s@." "closure strategy" "time(s)" "speedup"
    "closures full/incr/skipped";
  Fmt.pr "%-22s %10.2f %9s   %d / %d / %d@." "full (pre-overhaul)" t_full
    "1.00x" ff fi fs;
  Fmt.pr "%-22s %10.2f %8.2fx   %d / %d / %d@." "incremental" t_incr speedup
    nf ni ns;
  Fmt.pr "identical alarms: %b   >= 2x faster: %b@." alarms_same
    (speedup >= 2.0);
  (* determinism matrix: -j 4 and cache cold/warm must reproduce the
     -j 1 cache-off fingerprint bit for bit *)
  let f1 = P.Merge.fingerprint r_incr in
  let r_j4 =
    P.Scheduler.analyze ~cfg:{ cfg with C.Config.jobs = 4 } p
  in
  let j4_same = P.Merge.fingerprint r_j4 = f1 in
  Fmt.pr "-j 4 fingerprint identical to -j 1: %b@." j4_same;
  I.Summary.register ();
  let dir = Filename.temp_file "astree-e12" "" in
  Sys.remove dir;
  let cold_same, warm_same =
    Fun.protect
      ~finally:(fun () ->
        C.Analysis.cache_driver := None;
        if Sys.file_exists dir then begin
          Array.iter
            (fun f -> Sys.remove (Filename.concat dir f))
            (Sys.readdir dir);
          Sys.rmdir dir
        end)
      (fun () ->
        let ccfg =
          { cfg with C.Config.summary_cache = C.Config.Cache_dir dir }
        in
        let r_cold = C.Analysis.analyze ~cfg:ccfg p in
        let r_warm = C.Analysis.analyze ~cfg:ccfg p in
        (P.Merge.fingerprint r_cold = f1, P.Merge.fingerprint r_warm = f1))
  in
  Fmt.pr "cache cold fingerprint identical: %b@." cold_same;
  Fmt.pr "cache warm fingerprint identical: %b@." warm_same;
  json_record "e12"
    (Printf.sprintf
       "{\"quick\": %b, \"lines\": %d, \"octagon_packs\": %d, \
        \"alarms\": %d, \"t_full_close\": %.6f, \"t_incremental\": %.6f, \
        \"speedup\": %.3f, \"speedup_ge_2x\": %b, \
        \"alarms_identical\": %b, \"j4_identical\": %b, \
        \"cache_cold_identical\": %b, \"cache_warm_identical\": %b, \
        \"closures_full\": %d, \"closures_incremental\": %d, \
        \"closures_skipped\": %d}"
       quick n_lines
       r_incr.C.Analysis.r_stats.C.Analysis.s_oct_packs
       (C.Analysis.n_alarms r_incr)
       t_full t_incr speedup (speedup >= 2.0) alarms_same j4_same cold_same
       warm_same nf ni ns)

(* ------------------------------------------------------------------ *)
(* E13 - resource governor: tick overhead and forced degradation       *)
(* ------------------------------------------------------------------ *)

let e13 ~quick () =
  section
    "E13: resource governor - budget-tick overhead and degradation\n\
     claims checked: an armed governor that never trips costs <= 2%\n\
     on the E12 workload and leaves the result bit-identical; an\n\
     undersized budget degrades (never aborts) and the degraded run's\n\
     alarms cover the full run's";
  let stages, width = if quick then (6, 8) else (16, 10) in
  let src = cascade_source ~stages ~width in
  let cfg = { C.Config.default with C.Config.max_octagon_pack = width } in
  let p, _ = C.Analysis.compile [ ("e13.c", src) ] in
  let best_of n f =
    let best = ref infinity in
    let r = ref None in
    for _ = 1 to n do
      let v, t = time f in
      if t < !best then best := t;
      r := Some v
    done;
    (Option.get !r, !best)
  in
  (* A/B in one binary: same analysis, hook disarmed vs armed with a
     budget so large it never trips - only the tick cost differs *)
  let r_base, t_base = best_of 3 (fun () -> C.Analysis.analyze ~cfg p) in
  let gcfg = { cfg with C.Config.timeout = 3600. } in
  let r_gov, t_gov = best_of 3 (fun () -> R.Degrade.analyze ~cfg:gcfg p) in
  let overhead = (t_gov -. t_base) /. Float.max t_base 1e-9 in
  let identical = P.Merge.fingerprint r_gov = P.Merge.fingerprint r_base in
  let never_tripped = r_gov.C.Analysis.r_stats.C.Analysis.s_degraded = None in
  Fmt.pr "%-28s %10s@." "governor" "time(s)";
  Fmt.pr "%-28s %10.2f@." "disarmed (plain analyze)" t_base;
  Fmt.pr "%-28s %10.2f@." "armed, budget never trips" t_gov;
  Fmt.pr "tick overhead: %.2f%%   <= 2%%: %b   fingerprint identical: %b@."
    (100. *. overhead) (overhead <= 0.02) identical;
  (* undersized budget: the ladder sheds precision instead of aborting *)
  let budget = Float.max 0.02 (t_base /. 8.) in
  let dcfg = { cfg with C.Config.timeout = budget } in
  let r_deg, t_deg = time (fun () -> R.Degrade.analyze ~cfg:dcfg p) in
  let alarm_key (a : C.Alarm.t) = (a.C.Alarm.a_kind, a.C.Alarm.a_loc) in
  let superset =
    List.for_all
      (fun a ->
        List.exists
          (fun b -> alarm_key a = alarm_key b)
          r_deg.C.Analysis.r_alarms)
      r_base.C.Analysis.r_alarms
  in
  (match r_deg.C.Analysis.r_stats.C.Analysis.s_degraded with
  | Some d ->
      Fmt.pr
        "budget %.2fs: degraded level %d (%s), %.2fs wall, shed %d octagon \
         packs, alarms superset of full run: %b@."
        budget d.C.Analysis.dg_level d.C.Analysis.dg_reason t_deg
        d.C.Analysis.dg_shed_oct_packs superset
  | None ->
      Fmt.pr "budget %.2fs: finished without degrading (%.2fs wall)@." budget
        t_deg);
  json_record "e13"
    (Printf.sprintf
       "{\"quick\": %b, \"t_disarmed\": %.6f, \"t_armed\": %.6f, \
        \"tick_overhead\": %.5f, \"overhead_le_2pct\": %b, \
        \"fingerprint_identical\": %b, \"armed_never_tripped\": %b, \
        \"degraded\": %b, \"degraded_level\": %d, \
        \"degraded_superset\": %b}"
       quick t_base t_gov overhead (overhead <= 0.02) identical never_tripped
       (r_deg.C.Analysis.r_stats.C.Analysis.s_degraded <> None)
       (match r_deg.C.Analysis.r_stats.C.Analysis.s_degraded with
       | Some d -> d.C.Analysis.dg_level
       | None -> 0)
       superset)


(* ------------------------------------------------------------------ *)
(* E14 - observability: tracing/metrics overhead                        *)
(* ------------------------------------------------------------------ *)

let e14 ~quick () =
  section
    "E14: observability - event tracing and metrics overhead\n\
     claims checked: full tracing to a file plus metric timers cost\n\
     <= 10% on the E12 workload with a bit-identical fingerprint;\n\
     the disabled path (the shipping default) costs <= 1%, bounded by\n\
     a microbenchmark of the emission-site guard";
  let stages, width = if quick then (6, 8) else (16, 10) in
  let src = cascade_source ~stages ~width in
  let cfg = { C.Config.default with C.Config.max_octagon_pack = width } in
  let p, _ = C.Analysis.compile [ ("e14.c", src) ] in
  let best_of n f =
    let best = ref infinity in
    let r = ref None in
    for _ = 1 to n do
      let v, t = time f in
      if t < !best then best := t;
      r := Some v
    done;
    (Option.get !r, !best)
  in
  ignore (best_of 1 (fun () -> C.Analysis.analyze ~cfg p)) (* warmup *);
  (* A/B interleaved — the pairs alternate so slow drift of the machine
     (frequency scaling, co-tenants) hits both sides equally, and each
     side keeps its best.  Baseline = observability off, identical to
     what every run before this subsystem existed paid (counters are
     plain field increments and already part of the baseline);
     enabled = every event serialized to a real file plus timers
     reading the clock, the worst case a user can switch on. *)
  let tmp = Filename.temp_file "astree-e14" ".trace" in
  let run_obs () =
    O.Metrics.timing := true;
    O.Trace.enabled := true;
    let oc = open_out tmp in
    O.Trace.set_sink oc;
    Fun.protect
      ~finally:(fun () ->
        O.Trace.close ();
        close_out oc;
        O.Trace.enabled := false;
        O.Metrics.timing := false)
      (fun () -> C.Analysis.analyze ~cfg p)
  in
  let reps = 7 in
  let t_base = ref infinity and t_obs = ref infinity in
  let r_base = ref None and r_obs = ref None in
  let ratios = ref [] in
  for _ = 1 to reps do
    Gc.compact ();
    let rb, tb = time (fun () -> C.Analysis.analyze ~cfg p) in
    if tb < !t_base then t_base := tb;
    r_base := Some rb;
    Gc.compact ();
    let ro, to_ = time run_obs in
    if to_ < !t_obs then t_obs := to_;
    r_obs := Some ro;
    ratios := (to_ /. Float.max tb 1e-9) :: !ratios
  done;
  let r_base = Option.get !r_base and t_base = !t_base in
  let r_obs = Option.get !r_obs and t_obs = !t_obs in
  (* overhead = median of the per-pair enabled/disabled ratios: within a
     pair the two runs are adjacent in time so machine drift cancels,
     and the median discards pairs hit by a stray GC or co-tenant. *)
  let median_ratio =
    let a = Array.of_list !ratios in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let n_events =
    let ic = open_in tmp in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  in
  Sys.remove tmp;
  let overhead = median_ratio -. 1. in
  let identical = P.Merge.fingerprint r_obs = P.Merge.fingerprint r_base in
  (* disabled-path bound: time the guard every emission site pays when
     tracing is off (one ref read + branch), then charge it once per
     event the enabled run emitted.  [opaque_identity] keeps the read
     inside the loop. *)
  let guard_ns =
    let n = 20_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      if !(Sys.opaque_identity O.Trace.enabled) then O.Trace.emit "never"
    done;
    (Unix.gettimeofday () -. t0) /. float n *. 1e9
  in
  let disabled_est =
    guard_ns *. 1e-9 *. float n_events /. Float.max t_base 1e-9
  in
  Fmt.pr "%-34s %10s@." "observability" "time(s)";
  Fmt.pr "%-34s %10.2f@." "off (shipping default)" t_base;
  Fmt.pr "%-34s %10.2f@." "tracing to file + metric timers" t_obs;
  Fmt.pr
    "enabled overhead: %.2f%%   <= 10%%: %b   fingerprint identical: %b@."
    (100. *. overhead) (overhead <= 0.10) identical;
  Fmt.pr
    "trace: %d events; disabled guard: %.2f ns/site -> estimated \
     disabled-path cost %.4f%%   <= 1%%: %b@."
    n_events guard_ns (100. *. disabled_est) (disabled_est <= 0.01);
  json_record "e14"
    (Printf.sprintf
       "{\"quick\": %b, \"t_disabled\": %.6f, \"t_enabled\": %.6f, \
        \"enabled_overhead\": %.5f, \"overhead_le_10pct\": %b, \
        \"fingerprint_identical\": %b, \"trace_events\": %d, \
        \"guard_ns\": %.3f, \"disabled_overhead_est\": %.6f, \
        \"disabled_le_1pct\": %b}"
       quick t_base t_obs overhead (overhead <= 0.10) identical n_events
       guard_ns disabled_est (disabled_est <= 0.01))

(* ------------------------------------------------------------------ *)
(* E15: analysis server - warm throughput and latency under load       *)
(* ------------------------------------------------------------------ *)

let e15 ~quick () =
  section
    "E15: astreed - long-lived analysis server under load\n\
     claims checked: a warm daemon (resident typed IR + summaries)\n\
     sustains >= 2x the request throughput of cold one-shot processes\n\
     on the same workload; request latency p50/p99 at 1, 4 and 8\n\
     concurrent clients; every reply carries the one-shot result\n\
     fingerprint at every concurrency level";
  (* width 16 keeps every stage function above [memo_min_stmts], so the
     summary machinery engages exactly as it does on real-size code —
     the whole point of a warm daemon is re-serving those summaries *)
  let stages, width = if quick then (4, 16) else (8, 16) in
  let n_cold = if quick then 4 else 6 in
  let per_client = if quick then 6 else 10 in
  let src = cascade_source ~stages ~width in
  let sources = [ ("e15.c", src) ] in
  let options = Srv.Service.default_options in
  (* the reference result every reply must reproduce *)
  let expected_fp =
    let cfg = Srv.Service.config_of options ~sources in
    let p, _ = C.Analysis.compile ~main:"main" sources in
    P.Merge.fingerprint (R.Degrade.analyze ~cfg p)
  in
  let fp_marker = "\"fingerprint\": \"" in
  let report_fp report =
    let mlen = String.length fp_marker in
    let n = String.length report in
    let rec find i =
      if i + mlen > n then None
      else if String.sub report i mlen = fp_marker then
        let j = String.index_from report (i + mlen) '"' in
        Some (String.sub report (i + mlen) (j - (i + mlen)))
      else find (i + 1)
    in
    find 0
  in
  (* cold baseline: one fresh process per request, exactly what a CI
     loop of one-shot [astree] invocations pays (minus exec, which only
     favors the daemon further) *)
  let cold_once () =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        let code =
          try
            let cfg = Srv.Service.config_of options ~sources in
            let p, _ = C.Analysis.compile ~main:"main" sources in
            if P.Merge.fingerprint (R.Degrade.analyze ~cfg p) = expected_fp
            then 0
            else 1
          with _ -> 1
        in
        Unix._exit code
    | pid -> (
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _ -> failwith "cold one-shot failed")
  in
  cold_once () (* page in the binary before timing *);
  let (), t_cold = time (fun () -> for _ = 1 to n_cold do cold_once () done) in
  let cold_tp = float n_cold /. t_cold in
  (* the daemon under test *)
  let sock = Filename.temp_file "astree-e15" ".sock" in
  Sys.remove sock;
  flush stdout;
  flush stderr;
  let daemon_pid =
    match Unix.fork () with
    | 0 ->
        let code =
          try
            Srv.Daemon.run
              {
                Srv.Daemon.default with
                Srv.Daemon.d_socket = sock;
                d_workers = 4;
                d_queue_depth = 64;
              }
          with _ -> 1
        in
        Unix._exit code
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill daemon_pid Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] daemon_pid);
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let rec wait_up n =
        if n = 0 then failwith "daemon did not come up"
        else
          match Srv.Client.try_connect sock with
          | Some fd -> Srv.Client.close fd
          | None ->
              Unix.sleepf 0.05;
              wait_up (n - 1)
      in
      wait_up 100;
      let request () =
        match Srv.Client.try_connect sock with
        | None -> failwith "daemon gone"
        | Some fd ->
            Fun.protect
              ~finally:(fun () -> Srv.Client.close fd)
              (fun () ->
                match
                  Srv.Client.roundtrip fd
                    (Srv.Client.analyze_request ~sources ~main:"main"
                       ~options ())
                with
                | Error e -> failwith ("protocol: " ^ e)
                | Ok line ->
                    let rep = Srv.Client.decode line in
                    if rep.Srv.Client.r_status <> "ok" then
                      failwith ("daemon replied " ^ rep.Srv.Client.r_status);
                    (match rep.Srv.Client.r_report with
                    | Some rpt -> report_fp rpt = Some expected_fp
                    | None -> false))
      in
      ignore (request ()) (* warm the resident caches before timing *);
      (* one client process per connection: [clients] of them issue
         [per_client] sequential requests each; per-request latencies
         come back over a pipe *)
      let run_level clients =
        let spawn () =
          let rd, wr = Unix.pipe () in
          flush stdout;
          flush stderr;
          match Unix.fork () with
          | 0 ->
              Unix.close rd;
              let code =
                try
                  let lats = Array.make per_client 0. in
                  let ok = ref true in
                  for i = 0 to per_client - 1 do
                    let fp_ok, dt = time request in
                    lats.(i) <- dt;
                    ok := !ok && fp_ok
                  done;
                  let oc = Unix.out_channel_of_descr wr in
                  Marshal.to_channel oc (lats, !ok) [];
                  close_out oc;
                  0
                with _ -> 1
              in
              Unix._exit code
          | pid ->
              Unix.close wr;
              (pid, rd)
        in
        let procs = List.init clients (fun _ -> spawn ()) in
        let (results : (float array * bool) list), wall =
          time (fun () ->
              List.map
                (fun (pid, rd) ->
                  let ic = Unix.in_channel_of_descr rd in
                  let v = Marshal.from_channel ic in
                  close_in ic;
                  (match Unix.waitpid [] pid with
                  | _, Unix.WEXITED 0 -> ()
                  | _ -> failwith "client process failed");
                  v)
                procs)
        in
        let lats =
          Array.concat (List.map fst results)
        in
        Array.sort compare lats;
        let pct p =
          lats.(min
                  (Array.length lats - 1)
                  (int_of_float (p /. 100. *. float (Array.length lats))))
        in
        let fp_ok = List.for_all snd results in
        ( float (clients * per_client) /. wall,
          pct 50.,
          pct 99.,
          fp_ok )
      in
      let levels = List.map (fun c -> (c, run_level c)) [ 1; 4; 8 ] in
      let warm_tp_1 =
        match levels with (_, (tp, _, _, _)) :: _ -> tp | [] -> 0.
      in
      let all_fp_ok =
        List.for_all (fun (_, (_, _, _, ok)) -> ok) levels
      in
      let speedup = warm_tp_1 /. cold_tp in
      Fmt.pr "%-34s %12s %10s %10s@." "configuration" "req/s" "p50(s)"
        "p99(s)";
      Fmt.pr "%-34s %12.2f %10s %10s@." "cold one-shot (fresh process)"
        cold_tp "-" "-";
      List.iter
        (fun (c, (tp, p50, p99, _)) ->
          Fmt.pr "%-34s %12.2f %10.3f %10.3f@."
            (Fmt.str "warm daemon, %d client%s" c
               (if c = 1 then "" else "s"))
            tp p50 p99)
        levels;
      Fmt.pr
        "warm/cold throughput: %.2fx   >= 2x: %b   fingerprints identical \
         at every level: %b@."
        speedup (speedup >= 2.) all_fp_ok;
      let level_json =
        String.concat ", "
          (List.map
             (fun (c, (tp, p50, p99, ok)) ->
               Printf.sprintf
                 "{\"clients\": %d, \"req_per_s\": %.3f, \"p50_s\": %.4f, \
                  \"p99_s\": %.4f, \"fingerprints_ok\": %b}"
                 c tp p50 p99 ok)
             levels)
      in
      json_record "e15"
        (Printf.sprintf
           "{\"quick\": %b, \"cold_req_per_s\": %.3f, \"warm_req_per_s\": \
            %.3f, \"speedup\": %.3f, \"speedup_ge_2x\": %b, \
            \"fingerprints_ok\": %b, \"levels\": [%s]}"
           quick cold_tp warm_tp_1 speedup (speedup >= 2.) all_fp_ok
           level_json))

(* ------------------------------------------------------------------ *)
(* E16 - multi-task interference fixpoint                               *)
(* ------------------------------------------------------------------ *)

let e16 ~quick () =
  section
    "E16: multi-task interference fixpoint (lib/concurrency)\n\
     claims checked: the outer rely/guarantee iteration converges in\n\
     <= 5 rounds on generated multi-task members; dispatching the\n\
     per-task analyses to the pool (-j 4) reproduces the -j 1\n\
     fingerprint exactly and, on a multi-core machine, runs >= 1.5x\n\
     faster on a 4-task member";
  let cores = P.Scheduler.default_jobs () in
  Fmt.pr "cores available: %d@." cores;
  let tasks_n = 4 in
  let g =
    G.Generator.generate_tasks
      {
        G.Generator.default with
        G.Generator.seed = 16;
        target_lines = (if quick then 1500 else 4000);
        bug_ratio = 0.25;
      }
      ~tasks:tasks_n
  in
  let p, _ =
    C.Analysis.compile [ ("member.c", g.G.Generator.source) ]
  in
  let tasks = g.G.Generator.task_fns in
  let conc = Astree_conc.Fixpoint.analyze ~tasks in
  let r1, t1 = time (fun () -> conc ~cfg:C.Config.default p) in
  let r4, t4 =
    time (fun () ->
        conc ~cfg:{ C.Config.default with C.Config.jobs = 4 } p)
  in
  let fp1 = P.Merge.fingerprint r1.Astree_conc.Fixpoint.c_result in
  let fp4 = P.Merge.fingerprint r4.Astree_conc.Fixpoint.c_result in
  let rounds = r1.Astree_conc.Fixpoint.c_rounds in
  let stabilized =
    r1.Astree_conc.Fixpoint.c_stabilized
    && r4.Astree_conc.Fixpoint.c_stabilized
  in
  let speedup = t1 /. t4 in
  Fmt.pr
    "@.%d tasks, %d shared variables, ~%.1f kLOC member (%d alarms)@."
    tasks_n
    (List.length r1.Astree_conc.Fixpoint.c_shared)
    (float_of_int g.G.Generator.n_lines /. 1000.)
    (C.Analysis.n_alarms r1.Astree_conc.Fixpoint.c_result);
  Fmt.pr "rounds: %d (stabilized: %b, <= 5: %b)@." rounds stabilized
    (rounds <= 5);
  Fmt.pr "%6s %10s %9s@." "jobs" "time(s)" "speedup";
  Fmt.pr "%6d %10.2f %9s@." 1 t1 "1.00x";
  Fmt.pr "%6d %10.2f %8.2fx@." 4 t4 speedup;
  Fmt.pr "fingerprints identical: %b   speedup >= 1.5x: %b%s@."
    (fp1 = fp4) (speedup >= 1.5)
    (if cores < 4 then
       Fmt.str " (only %d cores: speedup not expected here)" cores
     else "");
  json_record "e16"
    (Printf.sprintf
       "{\"quick\": %b, \"cores\": %d, \"tasks\": %d, \"shared_vars\": %d, \
        \"lines\": %d, \"rounds\": %d, \"stabilized\": %b, \
        \"rounds_le_5\": %b, \"t_j1\": %.4f, \"t_j4\": %.4f, \"speedup\": \
        %.3f, \"speedup_ge_1_5x\": %b, \"conc_fingerprint_identical\": %b}"
       quick cores tasks_n
       (List.length r1.Astree_conc.Fixpoint.c_shared)
       g.G.Generator.n_lines rounds stabilized (rounds <= 5) t1 t4 speedup
       (speedup >= 1.5) (fp1 = fp4))

(* ------------------------------------------------------------------ *)
(* E17: crash recovery - supervised restart with a warm checkpoint      *)
(* ------------------------------------------------------------------ *)

let e17 ~quick () =
  section
    "E17: self-healing service - supervised restart, recovered warm state\n\
     claims checked: after kill -9, the supervisor restarts the daemon\n\
     and the checkpoint-recovered instance answers its first request\n\
     >= 1.5x faster than a cold daemon's first request; restart-to-ready\n\
     stays under 2s; cold, warm and recovered replies all carry the\n\
     one-shot fingerprint";
  (* same cascade shape as E15: width 16 keeps every stage above
     [memo_min_stmts], so the checkpoint actually carries summaries *)
  let stages, width = if quick then (4, 16) else (8, 16) in
  let src = cascade_source ~stages ~width in
  let sources = [ ("e17.c", src) ] in
  let options = Srv.Service.default_options in
  let expected_fp =
    let cfg = Srv.Service.config_of options ~sources in
    let p, _ = C.Analysis.compile ~main:"main" sources in
    P.Merge.fingerprint (R.Degrade.analyze ~cfg p)
  in
  let sub_from marker line =
    let mlen = String.length marker in
    let n = String.length line in
    let rec find i =
      if i + mlen > n then None
      else if String.sub line i mlen = marker then Some (i + mlen)
      else find (i + 1)
    in
    find 0
  in
  let report_fp report =
    match sub_from "\"fingerprint\": \"" report with
    | None -> None
    | Some i ->
        let j = String.index_from report i '"' in
        Some (String.sub report i (j - i))
  in
  let int_field key line =
    match sub_from (Printf.sprintf "\"%s\": " key) line with
    | None -> -1
    | Some i ->
        let j = ref i in
        while
          !j < String.length line
          && (match line.[!j] with '0' .. '9' -> true | _ -> false)
        do
          incr j
        done;
        if !j = i then -1 else int_of_string (String.sub line i (!j - i))
  in
  let ckpt = Filename.temp_file "astree-e17" ".ckpt" in
  Sys.remove ckpt;
  let sock = Filename.temp_file "astree-e17" ".sock" in
  Sys.remove sock;
  flush stdout;
  flush stderr;
  (* supervisor + daemon in one forked subtree, exactly the shape
     [astreed --supervise] runs; a tight backoff ladder keeps the
     restart bound about the supervision machinery, not the ladder *)
  let sup_pid =
    match Unix.fork () with
    | 0 ->
        let code =
          try
            Srv.Supervisor.run
              ~config:
                {
                  Srv.Supervisor.default with
                  Srv.Supervisor.s_policy =
                    {
                      R.Backoff.supervisor with
                      R.Backoff.b_base = 0.1;
                      b_max = 0.5;
                    };
                  s_verbose = false;
                }
              (fun ~restarts ~sup_started ->
                Srv.Daemon.run
                  {
                    Srv.Daemon.default with
                    Srv.Daemon.d_socket = sock;
                    d_workers = 2;
                    d_queue_depth = 16;
                    d_checkpoint = Some ckpt;
                    d_checkpoint_s = 0.;
                    d_restarts = restarts;
                    d_supervised = true;
                    d_sup_started = sup_started;
                  })
          with _ -> 1
        in
        Unix._exit code
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill sup_pid Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] sup_pid);
      if Sys.file_exists sock then Sys.remove sock;
      if Sys.file_exists ckpt then Sys.remove ckpt)
    (fun () ->
      let rec wait_up n =
        if n = 0 then failwith "daemon did not come up"
        else
          match Srv.Client.try_connect sock with
          | Some fd -> Srv.Client.close fd
          | None ->
              Unix.sleepf 0.05;
              wait_up (n - 1)
      in
      wait_up 100;
      (* one analyze roundtrip: latency, fingerprint, preload count *)
      let request () =
        match Srv.Client.try_connect sock with
        | None -> failwith "daemon gone"
        | Some fd ->
            Fun.protect
              ~finally:(fun () -> Srv.Client.close fd)
              (fun () ->
                match
                  Srv.Client.roundtrip fd
                    (Srv.Client.analyze_request ~sources ~main:"main"
                       ~options ())
                with
                | Error e -> failwith ("protocol: " ^ e)
                | Ok line ->
                    let rep = Srv.Client.decode line in
                    if rep.Srv.Client.r_status <> "ok" then
                      failwith ("daemon replied " ^ rep.Srv.Client.r_status);
                    let fp =
                      match rep.Srv.Client.r_report with
                      | Some rpt -> report_fp rpt
                      | None -> None
                    in
                    (fp, int_field "preloaded" line))
      in
      let status () =
        match Srv.Client.try_connect sock with
        | None -> None
        | Some fd ->
            Fun.protect
              ~finally:(fun () -> Srv.Client.close fd)
              (fun () ->
                match Srv.Client.roundtrip fd "{\"verb\": \"status\"}" with
                | Error _ -> None
                | Ok line -> Some line)
      in
      let (fp_cold, _), t_cold = time request in
      let (fp_warm, _), t_warm = time request in
      let daemon_pid =
        match status () with
        | Some line ->
            let pid = int_field "pid" line in
            if pid <= 0 then failwith "status reply without pid";
            pid
        | None -> failwith "status request failed"
      in
      (* the checkpoint lands on the next loop pass after the absorb;
         wait for a non-empty file before pulling the rug *)
      let rec wait_ckpt n =
        if n = 0 then failwith "no checkpoint written"
        else if
          Sys.file_exists ckpt
          && (Unix.stat ckpt).Unix.st_size > 0
        then ()
        else (
          Unix.sleepf 0.05;
          wait_ckpt (n - 1))
      in
      wait_ckpt 100;
      Unix.kill daemon_pid Sys.sigkill;
      let killed_at = Unix.gettimeofday () in
      (* ready = a fresh daemon process answers status on the re-bound
         socket; the old pid may linger in the reply buffer race-free
         because the listener dies with the process *)
      let rec wait_ready n =
        if n = 0 then failwith "daemon did not come back"
        else
          match status () with
          | Some line when int_field "pid" line <> daemon_pid ->
              (Unix.gettimeofday () -. killed_at, line)
          | _ ->
              Unix.sleepf 0.02;
              wait_ready (n - 1)
      in
      let restart_s, status_line = wait_ready 500 in
      let restarts = int_field "restarts" status_line in
      let recovered = int_field "recovered" status_line in
      let (fp_rec, preloaded), t_recovered = time request in
      let speedup = t_cold /. Float.max t_recovered 1e-9 in
      let fps_ok =
        fp_cold = Some expected_fp
        && fp_warm = Some expected_fp
        && fp_rec = Some expected_fp
      in
      let warm_ok = recovered > 0 && preloaded > 0 in
      Fmt.pr "%-38s %10s@." "request" "time(s)";
      Fmt.pr "%-38s %10.3f@." "cold daemon, first request" t_cold;
      Fmt.pr "%-38s %10.3f@." "same daemon, warm request" t_warm;
      Fmt.pr "%-38s %10.3f@." "recovered daemon, first request" t_recovered;
      Fmt.pr
        "restart-to-ready: %.3fs (< 2s: %b)   restarts: %d   recovered \
         programs: %d   preloaded summaries: %d@."
        restart_s (restart_s < 2.) restarts recovered preloaded;
      Fmt.pr
        "recovered/cold speedup: %.2fx   >= 1.5x: %b   fingerprints \
         identical: %b   recovered warm: %b@."
        speedup (speedup >= 1.5) fps_ok warm_ok;
      json_record "e17"
        (Printf.sprintf
           "{\"quick\": %b, \"t_cold\": %.4f, \"t_warm\": %.4f, \
            \"t_recovered\": %.4f, \"restart_s\": %.4f, \"restarts\": %d, \
            \"recovered_programs\": %d, \"preloaded\": %d, \"speedup\": \
            %.3f, \"recovered_speedup_ge_1_5x\": %b, \"restart_lt_2s\": \
            %b, \"fingerprints_identical\": %b, \"recovered_warm\": %b}"
           quick t_cold t_warm t_recovered restart_s restarts recovered
           preloaded speedup (speedup >= 1.5) (restart_s < 2.) fps_ok
           warm_ok))

(* ------------------------------------------------------------------ *)
(* E18 - operational telemetry: overhead, scrape, readiness             *)
(* ------------------------------------------------------------------ *)

let e18 ~quick () =
  section
    "E18: operational telemetry (lib/server/telemetry + http)\n\
     claims checked: full telemetry (JSONL access log + HTTP exposition\n\
     endpoint) costs <= 5% of warm-daemon throughput on the E15 cascade\n\
     workload; reports stay byte-identical with telemetry on and off;\n\
     GET /metrics yields well-formed Prometheus text exposition; /readyz\n\
     answers 503 while a SIGTERM drain is in progress";
  let stages, width = if quick then (4, 16) else (8, 16) in
  let clients = 4 in
  let per_client = if quick then 6 else 10 in
  let src = cascade_source ~stages ~width in
  let sources = [ ("e18.c", src) ] in
  let options = Srv.Service.default_options in
  let port =
    let n = ref 0 in
    fun () ->
      incr n;
      18000 + (((Unix.getpid () * 131) + (!n * 977)) mod 30000)
  in
  (* blank the volatile "time" statistic; everything else must be
     byte-identical between the two daemons *)
  let scrub_time (s : string) : string =
    let marker = "\"time\": " in
    let mlen = String.length marker in
    let n = String.length s in
    let b = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      if !i + mlen <= n && String.sub s !i mlen = marker then begin
        Buffer.add_string b marker;
        Buffer.add_char b 'T';
        i := !i + mlen;
        while
          !i < n
          &&
          match s.[!i] with
          | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
          | _ -> false
        do
          incr i
        done
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  let http_get port path : int * string =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let req = "GET " ^ path ^ " HTTP/1.0\r\n\r\n" in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let buf = Buffer.create 8192 in
        let chunk = Bytes.create 65536 in
        let rec drain () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        in
        drain ();
        let raw = Buffer.contents buf in
        let code =
          try Scanf.sscanf raw "HTTP/1.0 %d" (fun c -> c) with _ -> -1
        in
        let body =
          let rec find i =
            if i + 4 > String.length raw then String.length raw
            else if String.sub raw i 4 = "\r\n\r\n" then i + 4
            else find (i + 1)
          in
          let start = find 0 in
          String.sub raw start (String.length raw - start)
        in
        (code, body))
  in
  let rec http_get_retry ?(n = 40) p path =
    match http_get p path with
    | r -> r
    | exception Unix.Unix_error _ when n > 0 ->
        Unix.sleepf 0.05;
        http_get_retry ~n:(n - 1) p path
  in
  let start_daemon ?http_port ?access_log ?(workers = 4) ?(hang = 0.)
      sock =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        let code =
          try
            if hang > 0. then begin
              R.Faultsim.hang_seconds := hang;
              R.Faultsim.install ~seed:1 [ (R.Faultsim.Worker_hang, 1.0) ]
            end;
            Srv.Daemon.run
              {
                Srv.Daemon.default with
                Srv.Daemon.d_socket = sock;
                d_workers = workers;
                d_queue_depth = 64;
                d_http_port = http_port;
                d_access_log = access_log;
              }
          with _ -> 1
        in
        Unix._exit code
    | pid -> pid
  in
  let wait_up sock =
    let rec go n =
      if n = 0 then failwith "daemon did not come up"
      else
        match Srv.Client.try_connect sock with
        | Some fd -> Srv.Client.close fd
        | None ->
            Unix.sleepf 0.05;
            go (n - 1)
    in
    go 100
  in
  let stop pid sock =
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid);
    if Sys.file_exists sock then Sys.remove sock
  in
  let request sock : string =
    match Srv.Client.try_connect sock with
    | None -> failwith "daemon gone"
    | Some fd ->
        Fun.protect
          ~finally:(fun () -> Srv.Client.close fd)
          (fun () ->
            match
              Srv.Client.roundtrip fd
                (Srv.Client.analyze_request ~sources ~main:"main" ~options ())
            with
            | Error e -> failwith ("protocol: " ^ e)
            | Ok line ->
                let rep = Srv.Client.decode line in
                if rep.Srv.Client.r_status <> "ok" then
                  failwith ("daemon replied " ^ rep.Srv.Client.r_status);
                (match rep.Srv.Client.r_report with
                | Some rpt -> rpt
                | None -> failwith "daemon reply without report"))
  in
  (* [clients] concurrent client processes, [per_client] sequential
     requests each, against a pre-warmed daemon: requests per second *)
  let run_load sock : float =
    let spawn () =
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
          let code =
            try
              for _ = 1 to per_client do
                ignore (request sock)
              done;
              0
            with _ -> 1
          in
          Unix._exit code
      | pid -> pid
    in
    let procs = List.init clients (fun _ -> spawn ()) in
    let (), wall =
      time (fun () ->
          List.iter
            (fun pid ->
              match Unix.waitpid [] pid with
              | _, Unix.WEXITED 0 -> ()
              | _ -> failwith "load client failed")
            procs)
    in
    float (clients * per_client) /. wall
  in
  (* two daemons side by side -- telemetry off and the full stack on --
     each warmed by one request (which also yields the report to diff).
     Load rounds alternate between the two and each side keeps its
     best, so machine-wide drift hits both alike instead of landing on
     whichever daemon happened to be measured second. *)
  let rounds = 3 in
  let http_p = port () in
  let log = Filename.temp_file "astree-e18" ".jsonl" in
  let tp_off, report_off, tp_on, report_on, scrape, log_requests =
    Fun.protect
      ~finally:(fun () ->
        if Sys.file_exists log then Sys.remove log;
        if Sys.file_exists (log ^ ".1") then Sys.remove (log ^ ".1"))
      (fun () ->
        let sock_off = Filename.temp_file "astree-e18" ".sock" in
        Sys.remove sock_off;
        let sock_on = Filename.temp_file "astree-e18" ".sock" in
        Sys.remove sock_on;
        let pid_off = start_daemon sock_off in
        let pid_on =
          start_daemon ~http_port:http_p ~access_log:log sock_on
        in
        let tp_off, report_off, tp_on, report_on, scrape =
          Fun.protect
            ~finally:(fun () ->
              stop pid_off sock_off;
              stop pid_on sock_on)
            (fun () ->
              wait_up sock_off;
              wait_up sock_on;
              let report_off = request sock_off in
              let report_on = request sock_on in
              let tp_off = ref 0. and tp_on = ref 0. in
              for _ = 1 to rounds do
                tp_off := Float.max !tp_off (run_load sock_off);
                tp_on := Float.max !tp_on (run_load sock_on)
              done;
              let code, body = http_get_retry http_p "/metrics" in
              if code <> 200 then failwith "GET /metrics failed";
              (!tp_off, report_off, !tp_on, report_on, body))
        in
        (* on-daemon reaped: count the request lines it logged *)
        let ic = open_in log in
        let n = ref 0 in
        (try
           while true do
             let line = input_line ic in
             match Srv.Json.parse line with
             | Ok j
               when Srv.Json.to_str (Srv.Json.member "event" j)
                    = Some "request" ->
                 incr n
             | Ok _ -> ()
             | Error e -> failwith ("torn access-log line: " ^ e)
           done
         with End_of_file -> close_in ic);
        (tp_off, report_off, tp_on, report_on, scrape, !n))
  in
  let overhead_pct = 100. *. (1. -. (tp_on /. Float.max tp_off 1e-9)) in
  let overhead_ok = tp_on >= 0.95 *. tp_off in
  let reports_identical = scrub_time report_on = scrub_time report_off in
  (* well-formed exposition: every non-comment line is NAME[{labels}]
     VALUE with a float value, every family has a TYPE header, and the
     series the operators dashboard on are present *)
  let has_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let scrape_ok =
    let lines = String.split_on_char '\n' scrape in
    List.for_all
      (fun l ->
        l = ""
        || (String.length l > 2 && String.sub l 0 2 = "# ")
        ||
        match String.index_opt l ' ' with
        | None -> false
        | Some i -> (
            let v = String.sub l (i + 1) (String.length l - i - 1) in
            v = "+Inf" || Float.of_string_opt v <> None))
      lines
    && has_sub scrape "# TYPE astreed_up gauge"
    && has_sub scrape "astreed_up 1"
    && has_sub scrape
         "astreed_requests_total{outcome=\"ok\",verb=\"analyze\"}"
    && has_sub scrape "astreed_request_duration_seconds_bucket{le=\"+Inf\""
    && has_sub scrape "astree_cache_hits_total"
  in
  let log_ok = log_requests >= 1 + (rounds * clients * per_client) in
  (* readiness during drain: a hung worker pins one request in flight,
     SIGTERM starts the drain, /readyz must flip to 503 while /healthz
     stays 200 *)
  let readyz_503 =
    let sock = Filename.temp_file "astree-e18" ".sock" in
    Sys.remove sock;
    let p = port () in
    let pid = start_daemon ~workers:1 ~http_port:p ~hang:1.2 sock in
    Fun.protect
      ~finally:(fun () -> stop pid sock)
      (fun () ->
        wait_up sock;
        let fd =
          match Srv.Client.try_connect sock with
          | Some fd -> fd
          | None -> failwith "daemon gone"
        in
        Fun.protect
          ~finally:(fun () -> Srv.Client.close fd)
          (fun () ->
            (match
               Srv.Client.send fd
                 (Srv.Client.analyze_request ~sources ~main:"main" ~options
                    ())
             with
            | Ok () -> ()
            | Error e -> failwith ("send: " ^ e));
            Unix.sleepf 0.2;
            let ready_before, _ = http_get_retry p "/readyz" in
            Unix.kill pid Sys.sigterm;
            Unix.sleepf 0.2;
            let ready_during, why = http_get_retry p "/readyz" in
            let live_during, _ = http_get_retry p "/healthz" in
            ready_before = 200 && ready_during = 503
            && has_sub why "draining" && live_during = 200))
  in
  Fmt.pr "%-38s %12s@." "configuration" "req/s";
  Fmt.pr "%-38s %12.2f@." "warm daemon, telemetry off" tp_off;
  Fmt.pr "%-38s %12.2f@." "warm daemon, access log + /metrics" tp_on;
  Fmt.pr "telemetry overhead: %.1f%%   <= 5%%: %b@." overhead_pct
    overhead_ok;
  Fmt.pr "reports byte-identical on/off: %b@." reports_identical;
  Fmt.pr "/metrics well-formed exposition: %b   access-log lines: %d \
          (complete: %b)@."
    scrape_ok log_requests log_ok;
  Fmt.pr "/readyz 503 during drain: %b@." readyz_503;
  json_record "e18"
    (Printf.sprintf
       "{\"quick\": %b, \"req_per_s_off\": %.3f, \"req_per_s_on\": %.3f, \
        \"overhead_pct\": %.2f, \"overhead_le_5pct\": %b, \
        \"reports_identical\": %b, \"metrics_wellformed\": %b, \
        \"access_log_requests\": %d, \"access_log_complete\": %b, \
        \"readyz_503_during_drain\": %b}"
       quick tp_off tp_on overhead_pct overhead_ok reports_identical
       scrape_ok log_requests log_ok readyz_503)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "micro-benchmarks (bechamel): analyzer kernels";
  let open Bechamel in
  let mkvar =
    let next = ref 9000 in
    fun name ->
      incr next;
      {
        F.Tast.v_id = !next;
        v_name = name;
        v_orig = name;
        v_ty = F.Ctypes.t_float;
        v_kind = F.Tast.Kglobal;
        v_volatile = false;
        v_loc = F.Loc.dummy;
      }
  in
  let pack = Array.init 4 (fun i -> mkvar (Fmt.str "v%d" i)) in
  let bench_close =
    Test.make ~name:"e1:octagon-close-4vars"
      (Staged.stage (fun () ->
           let o = D.Octagon.top pack in
           D.Octagon.set_bounds o pack.(0) (-1.0, 1.0);
           D.Octagon.add_sum_le o pack.(0) pack.(1) 2.0;
           D.Octagon.add_diff_le o pack.(2) pack.(3) 0.5;
           D.Octagon.close o))
  in
  let mk_env n =
    let clock = D.Itv.int_const 0 in
    let rec go i e =
      if i >= n then e
      else
        go (i + 1)
          (C.Env.set e i
             (C.Avalue.of_itv ~use_clocked:false ~clock (D.Itv.int_range 0 i)))
    in
    go 0 (C.Env.empty ~naive:false ~ncells:n)
  in
  let base_env = mk_env 1000 in
  let modified =
    let clock = D.Itv.int_const 0 in
    let rec go k e =
      if k >= 10 then e
      else
        go (k + 1)
          (C.Env.set e (k * 97)
             (C.Avalue.of_itv ~use_clocked:false ~clock (D.Itv.int_range 0 1)))
    in
    go 0 base_env
  in
  let bench_join_shared =
    Test.make ~name:"e5:env-join-shared-1000cells-10diff"
      (Staged.stage (fun () -> ignore (C.Env.join base_env modified)))
  in
  let bench_widen =
    Test.make ~name:"e6:interval-widen-thresholds"
      (Staged.stage (fun () ->
           ignore
             (D.Itv.widen ~thresholds:D.Thresholds.default
                (D.Itv.float_range 0.0 10.0)
                (D.Itv.float_range 0.0 12.0))))
  in
  let ell =
    D.Ellipsoid.make ~a:1.5 ~b:0.7 ~fkind:F.Ctypes.Fsingle
      [| mkvar "x"; mkvar "y"; mkvar "z" |]
  in
  let bench_delta =
    Test.make ~name:"e9:ellipsoid-delta"
      (Staged.stage (fun () -> ignore (D.Ellipsoid.delta ell ~t_max:1.0 37.5)))
  in
  let small = G.Generator.member ~kloc:0.08 () in
  let bench_analysis =
    Test.make ~name:"e2:analyze-80-line-member"
      (Staged.stage (fun () -> ignore (analyze small)))
  in
  let tests =
    Test.make_grouped ~name:"astree"
      [ bench_close; bench_join_shared; bench_widen; bench_delta;
        bench_analysis ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      instance raw
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "%-44s %14.1f ns/run@." name est
      | _ -> Fmt.pr "%-44s (no estimate)@." name)
    ols

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let () =
  (* the driver itself must stay fork-capable across experiments (batch
     pools, E15's daemon): OCaml 5 forbids fork once a domain has ever
     been spawned, so in-process `Auto dispatches stay on fork and the
     domains backend is measured in forked children (E10) *)
  P.Scheduler.auto_backend := `Fork;
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let quick = List.mem "--quick" args in
  let rec take_json acc = function
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | a :: rest -> take_json (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_path, args = take_json [] args in
  let args =
    List.filter (fun a -> a <> "--full" && a <> "--quick") args
  in
  let all = args = [] || List.mem "all" args in
  let want e = all || List.mem e args in
  if want "e1" then e1 ~full ();
  if want "e2" then e2 ();
  if want "e3" then e3 ();
  if want "e4" then e4 ();
  if want "e5" then e5 ();
  if want "e6" then e6 ();
  if want "e7" then e7 ();
  if want "e8" then e8 ();
  if want "e9" then e9 ();
  if want "e10" then e10 ~quick ();
  if want "e11" then e11 ();
  if want "e12" then e12 ~quick ();
  if want "e13" then e13 ~quick ();
  if want "e14" then e14 ~quick ();
  if want "e15" then e15 ~quick ();
  if want "e16" then e16 ~quick ();
  if want "e17" then e17 ~quick ();
  if want "e18" then e18 ~quick ();
  if want "micro" then micro ();
  (match json_path with Some path -> json_write path | None -> ());
  Fmt.pr "@.done.@."
