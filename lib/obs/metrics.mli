(** Unified metrics registry: named counters, wall-clock timers, gauges
    and log2 histograms, shared by every subsystem of the analyzer.

    This is the one place analysis-wide measurements live.  The
    per-domain [Profile] probes are thin wrappers over entries here, the
    iterator and the caches register their own counters, and the
    parallel subsystem ships worker-side {!snapshot} deltas back in job
    replies so a [-j n] report is as complete as a sequential one.

    {b Cost model.}  Bumping a counter is one record-field increment;
    timers only read the clock when {!timing} is set, so the default
    build pays one ref read per timed probe.  Creation ([counter],
    [timer], ...) hashes the name — create once at module init or in a
    cold path, never per event.

    {b Domains.}  The registry is per-domain: every OCaml 5 domain owns
    a private store (domain-local storage), so shared-memory workers
    record with no cross-domain synchronization and ship {!diff}s back
    exactly like fork workers do.  Handles ([counter], [timer], ...)
    are immutable descriptors valid in any domain; a fresh domain
    starts empty, so a worker's {!snapshot}/{!diff} pair is naturally a
    per-domain delta.  All by-name operations ([set_gauge], [snapshot],
    [absorb], [reset], [render_json]) act on the calling domain's
    store.

    {b Determinism.}  Counters of semantic analysis events (transfer
    applications, widenings, threshold hits, loops, inlined calls, cache
    traffic), gauges and histograms are functions of the analysis
    performed: a [-j n] run with delta shipping reports exactly the
    sequential values and {!render_json} with [~timers:false] is
    byte-stable across equivalent runs.  The multi-task interference
    fixpoint reports under [conc.*]: the [conc.rounds] counter (outer
    rounds run) and the [conc.tasks] / [conc.interference_vars] gauges
    (task and shared-variable count of the last multi-task run); its
    per-round trace spans are named [conc.round].  Two exceptions sit outside that
    contract: scheduling counters ([par.*] — a sequential run dispatches
    nothing) and work counters on sharing-elided paths ([oct.join]
    counts {e performed} pack joins, most of which the sequential run
    skips through the Ptmap physical-sharing short-cut that [Marshal]
    destroys for worker replies).  Timer values are wall-clock and never
    deterministic. *)

(** {1 Global switches} *)

val timing : bool ref
(** Gate for the wall-clock timers (counters are always on). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find or create the counter [name].  The same name always yields the
    same entry. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Timers} *)

type timer

val timer : string -> timer

val start : unit -> float
(** Timestamp when {!timing} is set, else [0.]; pass the result to
    {!stop}. *)

val stop : timer -> float -> unit
(** Accumulate elapsed wall-clock seconds against a timer (no-op when
    {!timing} is unset). *)

val timer_value : timer -> float

(** {1 Gauges}

    Point-in-time values (program size, pack counts, alarm count) set by
    the coordinator at the end of a run; deltas exclude them. *)

val set_gauge : string -> int -> unit
val gauge_value : string -> int option

(** {1 Histograms}

    Log2-bucketed distributions of non-negative integer observations
    (e.g. fixpoint iteration counts per loop).  Bucket [i] counts
    observations [v] with [2^i <= v+1 < 2^(i+1)]. *)

type histogram

val histogram : string -> histogram
val observe : histogram -> int -> unit

(** {1 Snapshots, deltas and merging} *)

(** A pure-data copy of the registry (marshallable across processes),
    sorted by name. *)
type snapshot

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot
(** Registry-now minus the given earlier snapshot: counters, timers and
    histogram buckets subtract member-wise; gauges are excluded.  This
    is what a parallel worker ships back after running a job. *)

val absorb : snapshot -> unit
(** Merge a delta into the registry: counters, timers and histograms
    add; gauges overwrite.  Absorbing worker deltas in job order is
    deterministic because addition is commutative and the values
    themselves are deterministic. *)

val names : snapshot -> string list

(** {1 Export} *)

(** One registry entry as plain data — the seam external renderers (the
    Prometheus exposition in [lib/server/telemetry.ml]) consume without
    depending on the registry internals.  For counters and gauges the
    value is [x_int]; for timers, [x_time] (accumulated seconds); for
    histograms, [x_buckets] (log2 buckets: bucket [i] counts
    observations [v] with [2^i <= v+1 < 2^(i+1)]). *)
type export = {
  x_name : string;
  x_kind : [ `Counter | `Timer | `Gauge | `Hist ];
  x_int : int;
  x_time : float;
  x_buckets : int array;
}

val export : snapshot -> export list
(** The snapshot's entries as {!export} records, in snapshot (name)
    order. *)

val find_int : snapshot -> string -> int option
(** Value of the named counter or gauge in the snapshot, if present —
    e.g. pulling [cache.hits] out of a worker delta. *)

val render_json : ?timers:bool -> unit -> string
(** The whole registry as one JSON object
    [{"counters": {..}, "gauges": {..}, "histograms": {..},
    "timers": {..}}] with keys sorted, integers rendered exactly and
    timer seconds with 6 decimals.  With [~timers:false] the [timers]
    object is omitted and the output is byte-stable across equivalent
    runs (the determinism tests compare it directly). *)

val render_snapshot_json : ?timers:bool -> snapshot -> string
(** Same JSON shape as {!render_json}, over an explicit snapshot —
    typically a {!diff}, giving a per-interval (e.g. per-request)
    metrics object. *)

val reset : unit -> unit
(** Zero every entry (registrations survive). *)

val reset_named : string -> unit
(** Zero one entry by name (no-op if unregistered).  Used by wrappers
    such as [Profile.reset] that own a known slice of the registry. *)
