(* Unified metrics registry: named counters / timers / gauges / log2
   histograms.  See metrics.mli for the cost and determinism contract.

   The registry is per-domain (Domain.DLS): each OCaml 5 domain owns a
   flat table keyed by name, so shared-memory workers record into
   private stores with no synchronization on the hot path and ship
   [diff]s back exactly like fork workers do.  A fresh domain starts
   with an empty store, so [snapshot]/[diff] naturally produce
   per-domain deltas.  Handles ([counter], [timer], ...) are small
   immutable descriptors interned once globally; resolving a handle in
   a domain is one DLS read plus an array index, with a slow path that
   interns the entry into that domain's store on first touch.

   Entries are mutable records so the hot operations (incr, add, stop)
   touch a single field and never re-hash the name.  Everything
   observable is exported through [snapshot] (pure, marshallable — the
   parallel delta format) and [render_json] (the --metrics file
   format). *)

type kind = Kcounter | Ktimer | Kgauge | Khist

let n_buckets = 32

type entry = {
  e_name : string;
  e_kind : kind;
  mutable e_n : int;      (* counter / gauge value *)
  mutable e_t : float;    (* timer accumulated seconds *)
  e_buckets : int array;  (* histogram buckets; [||] otherwise *)
}

let timing = ref false

(* ---- handles ----------------------------------------------------- *)

(* A handle names a metric independently of any domain's store.  Handles
   are interned globally (same name -> same handle, stable id) under a
   mutex; creation is cold-path by contract. *)
type handle = { h_name : string; h_kind : kind; h_id : int }

let handles_mu = Mutex.create ()
let handles : (string, handle) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0

let handle (name : string) (kind : kind) : handle =
  Mutex.protect handles_mu (fun () ->
      match Hashtbl.find_opt handles name with
      | Some h ->
          if h.h_kind <> kind then
            invalid_arg ("Metrics: " ^ name ^ " registered with another kind");
          h
      | None ->
          let h = { h_name = name; h_kind = kind; h_id = !next_id } in
          Stdlib.incr next_id;
          Hashtbl.add handles name h;
          h)

(* ---- per-domain stores ------------------------------------------- *)

type store = {
  s_tbl : (string, entry) Hashtbl.t;
  mutable s_slots : entry array;  (* handle id -> entry, dummy = absent *)
}

(* Placeholder marking empty slots; never mutated, compared physically. *)
let dummy_entry =
  { e_name = ""; e_kind = Kcounter; e_n = 0; e_t = 0.; e_buckets = [||] }

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { s_tbl = Hashtbl.create 64; s_slots = [||] })

let new_entry (name : string) (kind : kind) : entry =
  {
    e_name = name;
    e_kind = kind;
    e_n = 0;
    e_t = 0.;
    e_buckets = (if kind = Khist then Array.make n_buckets 0 else [||]);
  }

let find_or_add (st : store) (name : string) (kind : kind) : entry =
  match Hashtbl.find_opt st.s_tbl name with
  | Some e ->
      if e.e_kind <> kind then
        invalid_arg ("Metrics: " ^ name ^ " registered with another kind");
      e
  | None ->
      let e = new_entry name kind in
      Hashtbl.add st.s_tbl name e;
      e

let resolve_slow (st : store) (h : handle) : entry =
  let e = find_or_add st h.h_name h.h_kind in
  let len = Array.length st.s_slots in
  if h.h_id >= len then begin
    let slots = Array.make (max 16 (2 * (h.h_id + 1))) dummy_entry in
    Array.blit st.s_slots 0 slots 0 len;
    st.s_slots <- slots
  end;
  st.s_slots.(h.h_id) <- e;
  e

let resolve (h : handle) : entry =
  let st = Domain.DLS.get store_key in
  let slots = st.s_slots in
  if h.h_id < Array.length slots then begin
    let e = Array.unsafe_get slots h.h_id in
    if e != dummy_entry then e else resolve_slow st h
  end
  else resolve_slow st h

(* ---- counters ---------------------------------------------------- *)

type counter = handle

let counter name = handle name Kcounter

let incr (c : counter) =
  let e = resolve c in
  e.e_n <- e.e_n + 1

let add (c : counter) n =
  let e = resolve c in
  e.e_n <- e.e_n + n

let value (c : counter) = (resolve c).e_n

(* ---- timers ------------------------------------------------------ *)

type timer = handle

let timer name = handle name Ktimer
let start () = if !timing then Unix.gettimeofday () else 0.

let stop (t : timer) (t0 : float) =
  if !timing then begin
    let e = resolve t in
    e.e_t <- e.e_t +. (Unix.gettimeofday () -. t0)
  end

let timer_value (t : timer) = (resolve t).e_t

(* ---- gauges ------------------------------------------------------ *)

let set_gauge name v =
  let st = Domain.DLS.get store_key in
  (find_or_add st name Kgauge).e_n <- v

let gauge_value name =
  let st = Domain.DLS.get store_key in
  match Hashtbl.find_opt st.s_tbl name with
  | Some e when e.e_kind = Kgauge -> Some e.e_n
  | _ -> None

(* ---- histograms -------------------------------------------------- *)

type histogram = handle

let histogram name = handle name Khist

let bucket_of (v : int) : int =
  (* bucket i holds v with 2^i <= v+1 < 2^(i+1); clamp the tail *)
  let v = if v < 0 then 0 else v in
  let rec go i x = if x <= 1 || i = n_buckets - 1 then i else go (i + 1) (x lsr 1) in
  go 0 (v + 1)

let observe (h : histogram) (v : int) =
  let b = (resolve h).e_buckets in
  let i = bucket_of v in
  b.(i) <- b.(i) + 1

(* ---- snapshots --------------------------------------------------- *)

type sample = {
  s_name : string;
  s_kind : kind;
  s_n : int;
  s_t : float;
  s_buckets : int array;
}

type snapshot = sample list  (* sorted by name *)

let sample_of (e : entry) : sample =
  {
    s_name = e.e_name;
    s_kind = e.e_kind;
    s_n = e.e_n;
    s_t = e.e_t;
    s_buckets = Array.copy e.e_buckets;
  }

let snapshot () : snapshot =
  let st = Domain.DLS.get store_key in
  Hashtbl.fold (fun _ e acc -> sample_of e :: acc) st.s_tbl []
  |> List.sort (fun a b -> String.compare a.s_name b.s_name)

(* Registry-now minus [earlier]; entries created since the snapshot
   diff against zero.  Gauges are point-in-time, not flows: excluded,
   as are entries the interval did not touch — worker deltas stay small
   and [absorb] on them is the identity anyway. *)
let diff (earlier : snapshot) : snapshot =
  let base = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace base s.s_name s) earlier;
  let all_zero (s : sample) =
    s.s_n = 0 && s.s_t = 0. && Array.for_all (fun v -> v = 0) s.s_buckets
  in
  snapshot ()
  |> List.filter_map (fun (s : sample) ->
         if s.s_kind = Kgauge then None
         else
           let d =
             match Hashtbl.find_opt base s.s_name with
             | None -> s
             | Some b ->
                 {
                   s with
                   s_n = s.s_n - b.s_n;
                   s_t = s.s_t -. b.s_t;
                   s_buckets =
                     Array.mapi (fun i v -> v - b.s_buckets.(i)) s.s_buckets;
                 }
           in
           if all_zero d then None else Some d)

let absorb (delta : snapshot) : unit =
  let st = Domain.DLS.get store_key in
  List.iter
    (fun (s : sample) ->
      let e = find_or_add st s.s_name s.s_kind in
      match s.s_kind with
      | Kgauge -> e.e_n <- s.s_n
      | Kcounter -> e.e_n <- e.e_n + s.s_n
      | Ktimer -> e.e_t <- e.e_t +. s.s_t
      | Khist ->
          Array.iteri
            (fun i v -> e.e_buckets.(i) <- e.e_buckets.(i) + v)
            s.s_buckets)
    delta

let names (s : snapshot) = List.map (fun x -> x.s_name) s

(* ---- typed export (Prometheus rendering and friends) ------------- *)

type export = {
  x_name : string;
  x_kind : [ `Counter | `Timer | `Gauge | `Hist ];
  x_int : int;
  x_time : float;
  x_buckets : int array;
}

let export (ss : snapshot) : export list =
  List.map
    (fun (s : sample) ->
      {
        x_name = s.s_name;
        x_kind =
          (match s.s_kind with
          | Kcounter -> `Counter
          | Ktimer -> `Timer
          | Kgauge -> `Gauge
          | Khist -> `Hist);
        x_int = s.s_n;
        x_time = s.s_t;
        x_buckets = Array.copy s.s_buckets;
      })
    ss

let find_int (ss : snapshot) (name : string) : int option =
  List.find_map
    (fun (s : sample) ->
      if s.s_name = name && (s.s_kind = Kcounter || s.s_kind = Kgauge) then
        Some s.s_n
      else None)
    ss

(* ---- export ------------------------------------------------------ *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_samples ~(timers : bool) (ss : snapshot) : string =
  let of_kind k = List.filter (fun s -> s.s_kind = k) ss in
  let obj fmt_one samples =
    "{"
    ^ String.concat ", "
        (List.map
           (fun s -> Printf.sprintf "\"%s\": %s" (json_escape s.s_name) (fmt_one s))
           samples)
    ^ "}"
  in
  let ints s = string_of_int s.s_n in
  let hist s =
    (* trailing zero buckets are trimmed so small histograms stay small *)
    let last = ref (-1) in
    Array.iteri (fun i v -> if v <> 0 then last := i) s.s_buckets;
    "["
    ^ String.concat ","
        (List.init (!last + 1) (fun i -> string_of_int s.s_buckets.(i)))
    ^ "]"
  in
  let time s = Printf.sprintf "%.6f" s.s_t in
  Printf.sprintf "{\"counters\": %s, \"gauges\": %s, \"histograms\": %s%s}"
    (obj ints (of_kind Kcounter))
    (obj ints (of_kind Kgauge))
    (obj hist (of_kind Khist))
    (if timers then Printf.sprintf ", \"timers\": %s" (obj time (of_kind Ktimer))
     else "")

let render_json ?(timers = true) () : string =
  render_samples ~timers (snapshot ())

(* Per-request deltas (the analysis server): same shape as render_json,
   over an explicit snapshot (typically a [diff]). *)
let render_snapshot_json ?(timers = true) (ss : snapshot) : string =
  render_samples ~timers ss

let reset_entry (e : entry) =
  e.e_n <- 0;
  e.e_t <- 0.;
  Array.fill e.e_buckets 0 (Array.length e.e_buckets) 0

let reset () =
  let st = Domain.DLS.get store_key in
  Hashtbl.iter (fun _ e -> reset_entry e) st.s_tbl

let reset_named name =
  let st = Domain.DLS.get store_key in
  match Hashtbl.find_opt st.s_tbl name with
  | Some e -> reset_entry e
  | None -> ()
