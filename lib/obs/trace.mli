(** Structured event tracer: ring-buffered spans and point events,
    serialized as JSONL through [--trace FILE].

    {b Cost model.}  Every emission site is guarded by {!enabled} — a
    single ref read and a branch when tracing is off, which is the
    default.  When tracing is on, events are appended to an in-memory
    buffer; with a sink attached the buffer is flushed to the channel in
    chunks, without one it behaves as a ring keeping the most recent
    {!capacity} events.

    {b Determinism.}  The event {e set} is a function of the analysis
    performed: a [-j n] run ships worker events back inside job deltas
    ({!capture_begin}/{!capture_end}, re-emitted by {!absorb} in job
    order), so sorting events by (loc, kind, args) yields the same list
    as the sequential run.  Timestamps ([ev_t]) are wall-clock and
    excluded from that guarantee; {!with_time} turns them off entirely.

    {b Span balance.}  In file mode the buffer is flushed, never
    dropped, so every [`B] (begin) line has a matching [`E] (end) line —
    the CI trace-smoke step checks exactly this.  Ring-mode dropping is
    suspended while a capture section is open, so worker deltas are
    never truncated.

    {b Domains.}  Buffer, sink, captures and epoch are per-domain
    (domain-local storage): a freshly spawned domain starts with an
    empty ring and no sink — the {!in_worker} discipline, automatically
    — so shared-memory workers capture into private rings and ship
    their events back inside job deltas exactly like fork workers.
    Only {!enabled}, {!with_time} and {!capacity} are process-global;
    the coordinator sets them before dispatching workers. *)

type arg = S of string | I of int | F of float | B of bool

type phase = Pbegin | Pend | Ppoint

type event = {
  ev_kind : string;                (* e.g. "loop.fixpoint", "phase.parse" *)
  ev_phase : phase;
  ev_loc : string;                 (* "file:line:col", or "" *)
  ev_args : (string * arg) list;
  ev_t : float;                    (* seconds since trace start; 0 when
                                      {!with_time} is unset *)
}

val enabled : bool ref
(** Master gate.  Emission sites read this before building any event
    payload: keep call sites shaped
    [if !Trace.enabled then Trace.emit ...]. *)

val with_time : bool ref
(** Record wall-clock timestamps (default [true]); the determinism
    tests unset it so events compare structurally. *)

val capacity : int ref
(** Most recent events retained in ring mode (no sink); default 65536.
    Each eviction bumps the [trace.dropped] metrics counter so capacity
    loss is visible to operators; like [par.*], that counter depends on
    buffer sizing and sits outside the determinism contract. *)

(** {1 Emission} *)

val emit : ?loc:string -> ?args:(string * arg) list -> string -> unit
(** Point event. *)

val span_begin : ?loc:string -> ?args:(string * arg) list -> string -> unit
val span_end : ?loc:string -> ?args:(string * arg) list -> string -> unit

(** {1 Sink (--trace FILE)} *)

val set_sink : out_channel -> unit
(** Stream events to [oc] as JSONL (flushed in chunks); the caller keeps
    ownership of the channel but must call {!close} before closing it. *)

val flush : unit -> unit
(** Write every buffered event to the sink now (no-op without one).
    The parallel scheduler calls this before forking workers so a child
    can never inherit half-written buffered lines. *)

val close : unit -> unit
(** Flush and detach the sink. *)

val in_worker : unit -> unit
(** Called by pool workers after the fork: detaches the inherited sink
    without flushing (the coordinator owns the file) — worker events
    stay in the ring and travel back inside job deltas. *)

(** {1 In-memory access (tests, worker deltas)} *)

val events : unit -> event list
(** The buffered events, oldest first. *)

val capture_begin : unit -> int
val capture_end : int -> event list
(** [capture_end (capture_begin ())] around a job returns the events it
    emitted; ring dropping is suspended while any capture is open. *)

val absorb : event list -> unit
(** Re-emit events recorded in another process (a worker delta), in
    order, through the local buffer/sink.  No-op when tracing is off. *)

val to_json : event -> string
(** One JSONL line (no trailing newline):
    [{"kind": .., "phase": "B"|"E"|"P", "loc": .., "t": .., "args": {..}}]. *)

val clear : unit -> unit
(** Drop buffered events and reset the clock (sink stays attached). *)
