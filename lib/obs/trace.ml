(* Structured event tracer.  See trace.mli for the contract.

   The buffer is a growable array used two ways: with a sink attached it
   is a staging area flushed to the channel in chunks (never dropped, so
   span begin/end pairs stay balanced in the file); without one it is a
   ring keeping the last !capacity events for in-process consumers
   (tests, worker capture sections).  Ring eviction is suspended while a
   capture is open so a worker's job delta is never truncated. *)

type arg = S of string | I of int | F of float | B of bool

type phase = Pbegin | Pend | Ppoint

type event = {
  ev_kind : string;
  ev_phase : phase;
  ev_loc : string;
  ev_args : (string * arg) list;
  ev_t : float;
}

let enabled = ref false
let with_time = ref true
let capacity = ref 65536

(* growable buffer; [start] is the ring head (index of oldest event) *)
let buf : event array ref = ref [||]
let start = ref 0
let len = ref 0
let total_pushed = ref 0         (* events ever buffered; capture marks *)

let sink : out_channel option ref = ref None
let captures = ref 0             (* open capture sections *)
let t0 = ref 0.                  (* trace epoch, set lazily *)

let flush_chunk = 512            (* events buffered before a sink write *)

let dummy =
  { ev_kind = ""; ev_phase = Ppoint; ev_loc = ""; ev_args = []; ev_t = 0. }

let nth i = !buf.((!start + i) mod Array.length !buf)

(* ---- serialization ----------------------------------------------- *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_json = function
  | S s -> "\"" ^ json_escape s ^ "\""
  | I n -> string_of_int n
  | F f -> Printf.sprintf "%.6f" f
  | B b -> if b then "true" else "false"

let to_json (e : event) : string =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"kind\": \"";
  Buffer.add_string b (json_escape e.ev_kind);
  Buffer.add_string b "\", \"phase\": \"";
  Buffer.add_string b
    (match e.ev_phase with Pbegin -> "B" | Pend -> "E" | Ppoint -> "P");
  Buffer.add_string b "\"";
  if e.ev_loc <> "" then begin
    Buffer.add_string b ", \"loc\": \"";
    Buffer.add_string b (json_escape e.ev_loc);
    Buffer.add_string b "\""
  end;
  Buffer.add_string b (Printf.sprintf ", \"t\": %.6f" e.ev_t);
  if e.ev_args <> [] then begin
    Buffer.add_string b ", \"args\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b "\"";
        Buffer.add_string b (json_escape k);
        Buffer.add_string b "\": ";
        Buffer.add_string b (arg_json v))
      e.ev_args;
    Buffer.add_string b "}"
  end;
  Buffer.add_string b "}";
  Buffer.contents b

(* ---- buffer machinery -------------------------------------------- *)

let write_out oc n =
  (* write the n oldest events and advance the ring head *)
  for i = 0 to n - 1 do
    output_string oc (to_json (nth i));
    output_char oc '\n'
  done;
  start := (!start + n) mod Array.length !buf;
  len := !len - n

let flush () =
  match !sink with
  | Some oc when !len > 0 ->
      write_out oc !len;
      Stdlib.flush oc
  | _ -> ()

let push (e : event) =
  incr total_pushed;
  (* ring mode (no sink, no open capture): at capacity, evict the oldest
     event instead of growing — keyed on !capacity, not the array size,
     so shrinking the capacity between runs takes effect immediately *)
  if !sink = None && !captures = 0 && !len > 0 && !len >= !capacity then begin
    start := (!start + 1) mod Array.length !buf;
    decr len
  end;
  let cap = Array.length !buf in
  if !len = cap then
    if cap = 0 then begin
      buf := Array.make 16 dummy;
      start := 0
    end
    else begin
      let nbuf = Array.make (cap * 2) dummy in
      for i = 0 to !len - 1 do
        nbuf.(i) <- nth i
      done;
      buf := nbuf;
      start := 0
    end;
  !buf.((!start + !len) mod Array.length !buf) <- e;
  incr len;
  if !sink <> None && !len >= flush_chunk then
    match !sink with Some oc -> write_out oc !len | None -> ()

let now () =
  if not !with_time then 0.
  else begin
    let t = Unix.gettimeofday () in
    if !t0 = 0. then t0 := t;
    t -. !t0
  end

let mk phase ?(loc = "") ?(args = []) kind =
  push
    { ev_kind = kind; ev_phase = phase; ev_loc = loc; ev_args = args;
      ev_t = now () }

let emit ?loc ?args kind = if !enabled then mk Ppoint ?loc ?args kind
let span_begin ?loc ?args kind = if !enabled then mk Pbegin ?loc ?args kind
let span_end ?loc ?args kind = if !enabled then mk Pend ?loc ?args kind

(* ---- sink -------------------------------------------------------- *)

let set_sink oc = sink := Some oc

let close () =
  flush ();
  sink := None

let in_worker () = sink := None

(* ---- capture / absorb -------------------------------------------- *)

(* Capture marks are values of [total_pushed]: ring eviction and sink
   flushes move the buffer head but never change how many events exist
   past the mark, so the job's events are always the newest
   (total_pushed - mark) buffered ones.  Workers detach their sink
   first, so nothing past the mark is ever flushed away. *)

let capture_begin () =
  incr captures;
  !total_pushed

let capture_end (mark : int) : event list =
  decr captures;
  if not !enabled then []
  else begin
    let n = min (!total_pushed - mark) !len in
    let off = !len - n in
    List.init n (fun i -> nth (off + i))
  end

let absorb (evs : event list) : unit =
  if !enabled then List.iter push evs

let events () = List.init !len nth

let clear () =
  start := 0;
  len := 0;
  total_pushed := 0;
  t0 := 0.
