(* Structured event tracer.  See trace.mli for the contract.

   The buffer is a growable array used two ways: with a sink attached it
   is a staging area flushed to the channel in chunks (never dropped, so
   span begin/end pairs stay balanced in the file); without one it is a
   ring keeping the last !capacity events for in-process consumers
   (tests, worker capture sections).  Ring eviction is suspended while a
   capture is open so a worker's job delta is never truncated.

   All buffer state (buffer, ring head, sink, capture count, epoch) is
   per-domain (Domain.DLS): a freshly spawned domain starts with an
   empty ring and no sink, which is exactly the fork-worker discipline
   ([in_worker]) — its events stay local and travel back inside job
   deltas.  The [enabled]/[with_time]/[capacity] switches stay plain
   global refs: they are set by the coordinator before any worker
   dispatch and only read afterwards. *)

type arg = S of string | I of int | F of float | B of bool

type phase = Pbegin | Pend | Ppoint

type event = {
  ev_kind : string;
  ev_phase : phase;
  ev_loc : string;
  ev_args : (string * arg) list;
  ev_t : float;
}

let enabled = ref false
let with_time = ref true
let capacity = ref 65536

(* Ring evictions were silent before this counter existed: an operator
   reading a truncated ring had no way to tell "quiet run" from "ring
   too small".  Like [par.*], the count depends on buffer sizing, not
   on the analysis — outside the determinism contract. *)
let m_dropped = Metrics.counter "trace.dropped"

type state = {
  (* growable buffer; [start] is the ring head (index of oldest event) *)
  mutable buf : event array;
  mutable start : int;
  mutable len : int;
  mutable total_pushed : int;      (* events ever buffered; capture marks *)
  mutable sink : out_channel option;
  mutable captures : int;          (* open capture sections *)
  mutable t0 : float;              (* trace epoch, set lazily *)
}

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { buf = [||]; start = 0; len = 0; total_pushed = 0; sink = None;
        captures = 0; t0 = 0. })

let st () = Domain.DLS.get state_key

let flush_chunk = 512            (* events buffered before a sink write *)

let dummy =
  { ev_kind = ""; ev_phase = Ppoint; ev_loc = ""; ev_args = []; ev_t = 0. }

let nth (s : state) i = s.buf.((s.start + i) mod Array.length s.buf)

(* ---- serialization ----------------------------------------------- *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_json = function
  | S s -> "\"" ^ json_escape s ^ "\""
  | I n -> string_of_int n
  | F f -> Printf.sprintf "%.6f" f
  | B b -> if b then "true" else "false"

let to_json (e : event) : string =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"kind\": \"";
  Buffer.add_string b (json_escape e.ev_kind);
  Buffer.add_string b "\", \"phase\": \"";
  Buffer.add_string b
    (match e.ev_phase with Pbegin -> "B" | Pend -> "E" | Ppoint -> "P");
  Buffer.add_string b "\"";
  if e.ev_loc <> "" then begin
    Buffer.add_string b ", \"loc\": \"";
    Buffer.add_string b (json_escape e.ev_loc);
    Buffer.add_string b "\""
  end;
  Buffer.add_string b (Printf.sprintf ", \"t\": %.6f" e.ev_t);
  if e.ev_args <> [] then begin
    Buffer.add_string b ", \"args\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b "\"";
        Buffer.add_string b (json_escape k);
        Buffer.add_string b "\": ";
        Buffer.add_string b (arg_json v))
      e.ev_args;
    Buffer.add_string b "}"
  end;
  Buffer.add_string b "}";
  Buffer.contents b

(* ---- buffer machinery -------------------------------------------- *)

let write_out (s : state) oc n =
  (* write the n oldest events and advance the ring head *)
  for i = 0 to n - 1 do
    output_string oc (to_json (nth s i));
    output_char oc '\n'
  done;
  s.start <- (s.start + n) mod Array.length s.buf;
  s.len <- s.len - n

let flush () =
  let s = st () in
  match s.sink with
  | Some oc when s.len > 0 ->
      write_out s oc s.len;
      Stdlib.flush oc
  | _ -> ()

let push (s : state) (e : event) =
  s.total_pushed <- s.total_pushed + 1;
  (* ring mode (no sink, no open capture): at capacity, evict the oldest
     event instead of growing — keyed on !capacity, not the array size,
     so shrinking the capacity between runs takes effect immediately *)
  if s.sink = None && s.captures = 0 && s.len > 0 && s.len >= !capacity
  then begin
    s.start <- (s.start + 1) mod Array.length s.buf;
    s.len <- s.len - 1;
    Metrics.incr m_dropped
  end;
  let cap = Array.length s.buf in
  if s.len = cap then
    if cap = 0 then begin
      s.buf <- Array.make 16 dummy;
      s.start <- 0
    end
    else begin
      let nbuf = Array.make (cap * 2) dummy in
      for i = 0 to s.len - 1 do
        nbuf.(i) <- nth s i
      done;
      s.buf <- nbuf;
      s.start <- 0
    end;
  s.buf.((s.start + s.len) mod Array.length s.buf) <- e;
  s.len <- s.len + 1;
  if s.sink <> None && s.len >= flush_chunk then
    match s.sink with Some oc -> write_out s oc s.len | None -> ()

let now (s : state) =
  if not !with_time then 0.
  else begin
    let t = Unix.gettimeofday () in
    if s.t0 = 0. then s.t0 <- t;
    t -. s.t0
  end

let mk phase ?(loc = "") ?(args = []) kind =
  let s = st () in
  push s
    { ev_kind = kind; ev_phase = phase; ev_loc = loc; ev_args = args;
      ev_t = now s }

let emit ?loc ?args kind = if !enabled then mk Ppoint ?loc ?args kind
let span_begin ?loc ?args kind = if !enabled then mk Pbegin ?loc ?args kind
let span_end ?loc ?args kind = if !enabled then mk Pend ?loc ?args kind

(* ---- sink -------------------------------------------------------- *)

let set_sink oc = (st ()).sink <- Some oc

let close () =
  flush ();
  (st ()).sink <- None

let in_worker () = (st ()).sink <- None

(* ---- capture / absorb -------------------------------------------- *)

(* Capture marks are values of [total_pushed]: ring eviction and sink
   flushes move the buffer head but never change how many events exist
   past the mark, so the job's events are always the newest
   (total_pushed - mark) buffered ones.  Workers detach their sink
   first, so nothing past the mark is ever flushed away.  (A domain
   worker's state is born detached and empty, so its marks count only
   its own events.) *)

let capture_begin () =
  let s = st () in
  s.captures <- s.captures + 1;
  s.total_pushed

let capture_end (mark : int) : event list =
  let s = st () in
  s.captures <- s.captures - 1;
  if not !enabled then []
  else begin
    let n = min (s.total_pushed - mark) s.len in
    let off = s.len - n in
    List.init n (fun i -> nth s (off + i))
  end

let absorb (evs : event list) : unit =
  if !enabled then begin
    let s = st () in
    List.iter (push s) evs
  end

let events () =
  let s = st () in
  List.init s.len (nth s)

let clear () =
  let s = st () in
  s.start <- 0;
  s.len <- 0;
  s.total_pushed <- 0;
  s.t0 <- 0.
