(** Synthetic program-family generator: periodic synchronous C programs
    of parametric size, structurally matching the family of Sect. 4
    (volatile inputs with range specifications, state initialization,
    an infinite loop of computations ended by the clock tick).

    All safe shapes are error-free by construction, so on generated
    programs every alarm is a false alarm — the experimental setup of
    Sect. 3.1. *)

type config = {
  seed : int;
  target_lines : int;      (** approximate generated source lines *)
  mix : Shapes.kind list;  (** shape kinds, cycled *)
  bug_ratio : float;       (** fraction of injected defects; 0 = reference *)
  fuse : int;
      (** shapes per top-level function: [fuse > 1] groups consecutive
          shapes into [stage_k] wrappers called from the main loop,
          mimicking the paper's large macro-expanded computation stages
          (Sect. 4); [1] (the default) calls every shape directly *)
}

val default : config

type generated = {
  source : string;
  n_shapes : int;
  n_lines : int;
  shape_kinds : (Shapes.kind * int) list;  (** census per kind *)
  partition_fns : string list;
      (** functions needing trace partitioning (Sect. 7.1.5); also
          recorded in the source as an [astree-partition] marker *)
  task_fns : string list;
      (** task entry points of a multi-task member; empty for the
          sequential generators, recorded in the source as an
          [astree-task] marker by {!generate_tasks} *)
}

val generate : config -> generated

(** A multi-task member: [tasks] periodic task functions sharing the
    globals through a ring of channels; [main] remains their sequential
    composition.  [config.bug_ratio] selects racy channel producers —
    safe sequentially, erroneous under some interleavings.  Generation
    is deterministic in [config.seed] (byte-identical sources).
    @raise Invalid_argument when [tasks < 2]. *)
val generate_tasks : config -> tasks:int -> generated

(** The reference program of the refinement experiment (Sect. 3.1). *)
val reference : ?target_lines:int -> unit -> generated

(** A member of the family at roughly [kloc] thousand source lines. *)
val member : ?seed:int -> kloc:float -> unit -> generated

(** Split a generated program into [n_files] translation units plus a
    main file connected by [extern] declarations — exercising the
    linker of Sect. 5.1.  Returns (filename, contents) pairs. *)
val to_files : config -> n_files:int -> (string * string) list
