(** Resource budget: wall-clock deadline, major-heap watermark and the
    interrupt flag, checked from the iterator's statement tick.

    The budget never aborts the analyzer by itself: it raises
    {!Tripped}, and {!Degrade} turns the trip into a precision-shedding
    restart (or, for an interrupt, into a partial result).  All state is
    process-global and inherited by forked pool workers, so a worker
    whose share of the analysis overruns the deadline fails its job
    instead of dragging the whole run past the budget. *)

type reason = Timeout | Memory | Interrupted

exception Tripped of reason

let reason_to_string = function
  | Timeout -> "timeout"
  | Memory -> "memory"
  | Interrupted -> "interrupted"

(* ------------------------------------------------------------------ *)
(* Armed state                                                          *)
(* ------------------------------------------------------------------ *)

let deadline = ref infinity
let mem_limit_words = ref max_int

(* set by the Gc alarm (end of major cycle) so ticks between
   collections need no [Gc.quick_stat] of their own *)
let mem_flag = ref false
let gc_alarm : Gc.alarm option ref = ref None

(* set from the SIGINT/SIGTERM handler; a flag rather than an in-handler
   raise so non-reentrant sections (marshalling, the store rename) are
   never torn *)
let interrupt_flag = ref false
let interrupt () = interrupt_flag := true
let interrupt_pending () = !interrupt_flag
let clear_interrupt () = interrupt_flag := false

let heap_words () = (Gc.quick_stat ()).Gc.heap_words

let bytes_per_word = Sys.word_size / 8

let disarm_memory () =
  mem_limit_words := max_int;
  mem_flag := false;
  match !gc_alarm with
  | Some a ->
      Gc.delete_alarm a;
      gc_alarm := None
  | None -> ()

(** Arm the budget.  [deadline] is an absolute [Unix.gettimeofday]
    instant; [max_mem_mb] bounds the major heap.  Re-arming replaces the
    previous budget (the degradation ladder re-arms per attempt). *)
let arm ?deadline:(dl = infinity) ?(max_mem_mb = 0) () =
  deadline := dl;
  if max_mem_mb > 0 then begin
    mem_limit_words := max_mem_mb * 1024 * 1024 / bytes_per_word;
    mem_flag := false;
    if !gc_alarm = None then
      gc_alarm :=
        Some
          (Gc.create_alarm (fun () ->
               if heap_words () > !mem_limit_words then mem_flag := true))
  end
  else disarm_memory ()

let disarm () =
  deadline := infinity;
  disarm_memory ()

(** The armed absolute deadline ([infinity] when none): the pool's
    select loop bounds its sleep by it so a blocked coordinator still
    honors the budget. *)
let armed_deadline () = !deadline

(** Whether any budget (deadline or memory) is armed.  The parallel
    scheduler consults this to pick the fork backend: budget state is
    process-global refs, inherited by forked workers but invisible to
    the shared-memory backend's job-boundary polling. *)
let armed () = !deadline < infinity || !mem_limit_words <> max_int

(* ------------------------------------------------------------------ *)
(* The check                                                            *)
(* ------------------------------------------------------------------ *)

(** Raise {!Tripped} if any budget is exhausted or an interrupt is
    pending.  Called from [Iterator.tick_hook] every few hundred
    abstract statements and from the pool's dispatch loop; when nothing
    is armed the cost is three flag reads. *)
let poll () =
  if !interrupt_flag then raise (Tripped Interrupted);
  if
    !mem_flag
    || (!mem_limit_words <> max_int && heap_words () > !mem_limit_words)
  then begin
    (* consume the flag: after a shed-and-restart the next trip must
       reflect the degraded run's own heap, not this one's *)
    mem_flag := false;
    raise (Tripped Memory)
  end;
  if !deadline < infinity && Unix.gettimeofday () > !deadline then
    raise (Tripped Timeout)

(* ------------------------------------------------------------------ *)
(* Signals                                                              *)
(* ------------------------------------------------------------------ *)

let handlers_installed = ref false

let handlers_active () = !handlers_installed

(** Install SIGINT/SIGTERM handlers that set the interrupt flag.  The
    next [poll] — iterator tick or pool loop — raises
    [Tripped Interrupted]; unwinding tears the worker pool down
    ([Pool.with_pool]'s finalizer), flushes the summary cache
    ([Summary.driver] saves on a trip) and surfaces a partial result. *)
let install_signal_handlers () =
  if not !handlers_installed then begin
    handlers_installed := true;
    let h = Sys.Signal_handle (fun _ -> interrupt ()) in
    (try Sys.set_signal Sys.sigint h with Invalid_argument _ -> ());
    try Sys.set_signal Sys.sigterm h with Invalid_argument _ -> ()
  end
