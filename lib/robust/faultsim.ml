(** Deterministic fault-injection registry.

    Every recovery path of the analyzer — worker crash, worker hang,
    truncated marshal reply, corrupt summary-store read, failed
    summary-store write — is guarded by a named injection point.  A
    fault specification names the points to arm and the per-call firing
    probability of each; firing decisions are drawn from a counter-based
    splitmix64 stream seeded by (seed, point, call number), so a given
    spec reproduces the same fault schedule on every run — chaos tests
    are replayable.

    The specification comes from the [ASTREE_FAULTS] environment
    variable ([seed:point=prob,point,...], probability defaulting to 1)
    or from a programmatic {!install}.  The historical
    [ASTREE_PAR_CHAOS] variable is kept as an alias for
    [0:worker_crash=1] and is overridden by [ASTREE_FAULTS] when both
    are set.

    [with_suppressed] masks all points for the duration of a callback:
    tests that assert exact pool or cache counters use it so the whole
    suite stays green under a global chaos run ([dune runtest] with
    [ASTREE_FAULTS] exported), while equivalence and degradation tests
    keep the faults live. *)

type point =
  | Worker_crash     (** pool worker self-kills before running a job *)
  | Worker_hang      (** pool worker sleeps [hang_seconds] before a job *)
  | Reply_truncate   (** pool worker writes half a marshalled reply, dies *)
  | Cache_corrupt    (** summary-store read behaves as a corrupt file *)
  | Cache_write      (** summary-store write fails mid-file (ENOSPC) *)
  | Conn_drop        (** daemon drops a client connection before replying *)
  | Reply_partial    (** daemon writes half a reply line, then drops *)
  | Daemon_crash     (** daemon process dies abruptly at admission *)
  | Checkpoint_torn  (** daemon checkpoint write tears mid-payload *)

let all_points =
  [
    Worker_crash; Worker_hang; Reply_truncate; Cache_corrupt; Cache_write;
    Conn_drop; Reply_partial; Daemon_crash; Checkpoint_torn;
  ]

let point_name = function
  | Worker_crash -> "worker_crash"
  | Worker_hang -> "worker_hang"
  | Reply_truncate -> "reply_truncate"
  | Cache_corrupt -> "cache_corrupt"
  | Cache_write -> "cache_write"
  | Conn_drop -> "conn_drop"
  | Reply_partial -> "reply_partial"
  | Daemon_crash -> "daemon_crash"
  | Checkpoint_torn -> "checkpoint_torn"

let point_of_name s =
  List.find_opt (fun p -> point_name p = s) all_points

(** How long a [Worker_hang] fault sleeps.  Long enough that the
    coordinator's per-job timeout, not the sleep, ends the hang. *)
let hang_seconds = ref 3600.

type spec = { sp_seed : int; sp_probs : (point * float) list }

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                         *)
(* ------------------------------------------------------------------ *)

let warn_once : (string, unit) Hashtbl.t = Hashtbl.create 4

let warn fmt =
  Format.kasprintf
    (fun s ->
      if not (Hashtbl.mem warn_once s) then begin
        Hashtbl.replace warn_once s ();
        prerr_endline ("astree: warning: " ^ s)
      end)
    fmt

(** Parse ["seed:point=prob,point,..."].  Malformed specs disable
    injection with a warning — a typo in a chaos harness must not
    silently run the suite fault-free {e and} must not crash it. *)
let parse (s : string) : spec option =
  match String.index_opt s ':' with
  | None ->
      warn "ASTREE_FAULTS %S: missing 'seed:' prefix, ignored" s;
      None
  | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | None ->
          warn "ASTREE_FAULTS %S: bad seed, ignored" s;
          None
      | Some seed ->
          let body = String.sub s (i + 1) (String.length s - i - 1) in
          let probs =
            String.split_on_char ',' body
            |> List.filter (fun item -> String.trim item <> "")
            |> List.filter_map (fun item ->
                   let item = String.trim item in
                   let name, prob =
                     match String.index_opt item '=' with
                     | None -> (item, Some 1.0)
                     | Some j ->
                         ( String.sub item 0 j,
                           float_of_string_opt
                             (String.sub item (j + 1)
                                (String.length item - j - 1)) )
                   in
                   match (point_of_name name, prob) with
                   | Some p, Some pr when pr >= 0.0 && pr <= 1.0 ->
                       Some (p, pr)
                   | _ ->
                       warn "ASTREE_FAULTS: bad injection point %S, skipped"
                         item;
                       None)
          in
          if probs = [] then None else Some { sp_seed = seed; sp_probs = probs })

(* ------------------------------------------------------------------ *)
(* Active specification                                                 *)
(* ------------------------------------------------------------------ *)

(* programmatic installs take precedence over the environment *)
let installed : spec option ref = ref None
let have_install = ref false

(* env parse cache, keyed on the raw variable values so tests that
   [putenv] mid-run are picked up without reparsing on every call *)
let env_cache : (string * string * spec option) option ref = ref None

let env_spec () : spec option =
  let faults = Option.value (Sys.getenv_opt "ASTREE_FAULTS") ~default:"" in
  let chaos = Option.value (Sys.getenv_opt "ASTREE_PAR_CHAOS") ~default:"" in
  match !env_cache with
  | Some (f, c, sp) when f = faults && c = chaos -> sp
  | _ ->
      let sp =
        if faults <> "" then parse faults
        else if chaos <> "" then
          (* legacy alias: every worker crashes on every job *)
          Some { sp_seed = 0; sp_probs = [ (Worker_crash, 1.0) ] }
        else None
      in
      env_cache := Some (faults, chaos, sp);
      sp

let active () : spec option =
  if !have_install then !installed else env_spec ()

let install ~(seed : int) (probs : (point * float) list) : unit =
  installed := Some { sp_seed = seed; sp_probs = probs };
  have_install := true

let clear () =
  installed := None;
  have_install := false

(* ------------------------------------------------------------------ *)
(* Suppression                                                          *)
(* ------------------------------------------------------------------ *)

let suppress_depth = ref 0

let with_suppressed (k : unit -> 'a) : 'a =
  incr suppress_depth;
  Fun.protect ~finally:(fun () -> decr suppress_depth) k

(** Whether any injection point can currently fire.  The parallel
    scheduler consults this when resolving the worker backend: fault
    points only exist in fork workers, so an armed (unsuppressed) spec
    forces the fork pool. *)
let armed () : bool = !suppress_depth = 0 && active () <> None

(* ------------------------------------------------------------------ *)
(* Firing decisions                                                     *)
(* ------------------------------------------------------------------ *)

(* splitmix64 finalizer: statistically solid and allocation-free *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let point_tag = function
  | Worker_crash -> 1
  | Worker_hang -> 2
  | Reply_truncate -> 3
  | Cache_corrupt -> 4
  | Cache_write -> 5
  | Conn_drop -> 6
  | Reply_partial -> 7
  | Daemon_crash -> 8
  | Checkpoint_torn -> 9

(* per-point call counters; forked workers inherit the state at fork
   time, so each process draws a reproducible stream *)
let counters = Array.make 10 0

let fired = Array.make 10 0
(** how often each point actually fired, for test assertions *)

let fire_count (p : point) : int = fired.(point_tag p)

let reset_counters () =
  Array.fill counters 0 (Array.length counters) 0;
  Array.fill fired 0 (Array.length fired) 0

let fires (p : point) : bool =
  if !suppress_depth > 0 then false
  else
    match active () with
    | None -> false
    | Some sp -> (
        match List.assoc_opt p sp.sp_probs with
        | None -> false
        | Some prob ->
            let tag = point_tag p in
            let c = counters.(tag) in
            counters.(tag) <- c + 1;
            let h =
              mix64
                (Int64.logxor
                   (Int64.of_int ((sp.sp_seed * 1_000_003) + c))
                   (Int64.mul (Int64.of_int tag) 0x9e3779b97f4a7c15L))
            in
            (* 53 uniform bits -> [0, 1) *)
            let u =
              Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
            in
            let yes = u < prob in
            if yes then fired.(tag) <- fired.(tag) + 1;
            yes)

let describe () : string =
  match active () with
  | None -> "faults: off"
  | Some sp ->
      Fmt.str "faults: seed %d, %a" sp.sp_seed
        Fmt.(
          list ~sep:comma (fun ppf (p, pr) ->
              Fmt.pf ppf "%s=%.2f" (point_name p) pr))
        sp.sp_probs
