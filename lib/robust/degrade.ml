(** Sound graceful degradation.

    When a resource budget trips, the analyzer sheds precision instead
    of aborting: the analysis is restarted under a coarser configuration
    from a three-step ladder, each step cheaper than the last.

    {b Soundness.}  Every ladder step only {e removes} refinements —
    fewer relational packs, no trace partitioning, immediate widening
    without thresholds.  Each degraded run is an ordinary analysis of an
    abstraction of the same concrete semantics, so it over-approximates
    every behaviour the full-precision run covers and its alarm set is a
    superset of the full run's (the property test in [test_robust.ml]
    asserts this on every example program).  Restarting, rather than
    coarsening in flight, is what makes the argument this simple: no
    mixed-precision state ever exists.

    {b Termination.}  The ladder runs against a hard deadline of twice
    the configured budget: the full run gets the budget itself, step 1
    gets 35% of what remains, step 2 half of the rest, step 3 runs to
    the hard deadline, and if even step 3 trips the analysis is rerun at
    step 3 with the budget disarmed — step 3 is interval-speed, so this
    terminates promptly and the 2x envelope holds in practice.

    An interrupt (SIGINT/SIGTERM) is different: the user wants out, so
    there is no restart — the alarms found so far are assembled into a
    partial result marked ["interrupted"]. *)

module C = Astree_core
module D = Astree_domains
module F = Astree_frontend

(** Widest relational pack kept by the shedding step.  Ellipsoid packs
    have exactly 3 variables and digital filters are the flagship
    precision story (Sect. 6.2.3), so the default keeps them while
    dropping every wider octagon and decision-tree pack. *)
let shed_threshold = ref 3

(** The configuration at ladder step [level] (1..3); steps are
    cumulative.  Exposed for the soundness property test. *)
let config_at ~(level : int) (cfg : C.Config.t) : C.Config.t =
  let cfg =
    if level >= 1 then
      { cfg with C.Config.shed_packs_above = Some !shed_threshold }
    else cfg
  in
  let cfg =
    if level >= 2 then
      { cfg with C.Config.partitioned_functions = []; max_partitions = 1 }
    else cfg
  in
  if level >= 3 then
    {
      cfg with
      C.Config.widening_thresholds = D.Thresholds.none;
      delay_widening = 0;
      widening_fairness = 0;
      loop_unroll = 0;
      loop_unroll_overrides = [];
    }
  else cfg

let max_level = 3

(* ------------------------------------------------------------------ *)
(* Degradation record                                                   *)
(* ------------------------------------------------------------------ *)

let pack_counts (cfg : C.Config.t) (p : F.Tast.program) : int * int * int =
  let pk = C.Packing.compute cfg p in
  ( List.length pk.C.Packing.octs,
    List.length pk.C.Packing.ells,
    List.length pk.C.Packing.dts )

(** Describe what step [level] shed relative to the original config —
    pack counts are recomputed syntactically, which is cheap next to any
    analysis that blew a budget. *)
let degraded_record (cfg : C.Config.t) (p : F.Tast.program)
    ~(reason : Budget.reason) ~(level : int) : C.Analysis.degraded =
  let o0, e0, d0 = pack_counts cfg p in
  let o1, e1, d1 = pack_counts (config_at ~level cfg) p in
  {
    C.Analysis.dg_reason = Budget.reason_to_string reason;
    dg_level = level;
    dg_shed_oct_packs = o0 - o1;
    dg_shed_ell_packs = e0 - e1;
    dg_shed_dt_packs = d0 - d1;
    dg_partitioning_disabled =
      level >= 2 && cfg.C.Config.partitioned_functions <> [];
    dg_widening_accelerated = level >= 3;
  }

let mark (r : C.Analysis.result) (dg : C.Analysis.degraded) :
    C.Analysis.result =
  {
    r with
    C.Analysis.r_stats =
      { r.C.Analysis.r_stats with C.Analysis.s_degraded = Some dg };
  }

(* ------------------------------------------------------------------ *)
(* Partial result on interrupt                                          *)
(* ------------------------------------------------------------------ *)

(** Assemble what the interrupted run had: every alarm raised so far
    (sound for the traces explored — the run did not finish, which is
    exactly what the ["interrupted"] marker says).  The final state is
    bottom: the analysis never reached the program exit. *)
let interrupted_result (ses : C.Transfer.session) (cfg : C.Config.t)
    (p : F.Tast.program) : C.Analysis.result =
  let actx =
    match ses.C.Transfer.ses_live with
    | Some a -> a
    | None -> C.Transfer.make_actx ~session:ses cfg p
  in
  {
    C.Analysis.r_alarms = C.Alarm.to_list actx.C.Transfer.alarms;
    r_final = C.Astate.bottom;
    r_actx = actx;
    r_stats =
      {
        C.Analysis.s_globals_before = List.length p.F.Tast.p_globals;
        s_globals_after = List.length p.F.Tast.p_globals;
        s_cells = C.Cell.count actx.C.Transfer.intern;
        s_stmts = F.Tast.program_size p;
        s_oct_packs = List.length actx.C.Transfer.packs.C.Packing.octs;
        s_oct_useful = Hashtbl.length actx.C.Transfer.oct_useful;
        s_ell_packs = List.length actx.C.Transfer.packs.C.Packing.ells;
        s_dt_packs = List.length actx.C.Transfer.packs.C.Packing.dts;
        s_time = 0.;
        s_cache = None;
        s_degraded =
          Some
            {
              C.Analysis.dg_reason = "interrupted";
              dg_level = 0;
              dg_shed_oct_packs = 0;
              dg_shed_ell_packs = 0;
              dg_shed_dt_packs = 0;
              dg_partitioning_disabled = false;
              dg_widening_accelerated = false;
            };
      };
  }

(* ------------------------------------------------------------------ *)
(* The governed analysis                                                *)
(* ------------------------------------------------------------------ *)

(** Analyze [p] under the resource budget of [cfg].  Without a budget
    and without signal handlers this is exactly [Analysis.analyze];
    otherwise the iterator tick polls the budget, and a trip walks the
    degradation ladder.  The returned result carries
    [stats.s_degraded = Some _] iff precision was shed or the run was
    interrupted. *)
let analyze ?session ?(cfg = C.Config.default) (p : F.Tast.program) :
    C.Analysis.result =
  let ses =
    match session with Some s -> s | None -> C.Transfer.new_session ()
  in
  let watching =
    cfg.C.Config.timeout > 0.
    || cfg.C.Config.max_mem_mb > 0
    || Budget.handlers_active ()
    || Budget.interrupt_pending ()
  in
  if not watching then C.Analysis.analyze ~session:ses ~cfg p
  else begin
    ses.C.Transfer.ses_tick_hook <- Some Budget.poll;
    Fun.protect
      ~finally:(fun () ->
        ses.C.Transfer.ses_tick_hook <- None;
        Budget.disarm ())
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let timeout = cfg.C.Config.timeout in
        let hard = if timeout > 0. then t0 +. (2.0 *. timeout) else infinity in
        (* deadline for the attempt at [level]: the full run gets the
           budget itself; degraded retries split what is left of the 2x
           envelope so the last step always has time to finish *)
        let deadline_at level =
          if timeout <= 0. then infinity
          else if level = 0 then t0 +. timeout
          else begin
            let now = Unix.gettimeofday () in
            let left = max 0.05 (hard -. now) in
            match level with
            | 1 -> now +. (0.35 *. left)
            | 2 -> now +. (0.5 *. left)
            | _ -> hard
          end
        in
        let last_reason = ref Budget.Timeout in
        let rec attempt level =
          Budget.arm ~deadline:(deadline_at level)
            ~max_mem_mb:cfg.C.Config.max_mem_mb ();
          let acfg = config_at ~level cfg in
          match C.Analysis.analyze ~session:ses ~cfg:acfg p with
          | r ->
              if level = 0 then r
              else mark r (degraded_record cfg p ~reason:!last_reason ~level)
          | exception Budget.Tripped Budget.Interrupted ->
              if !Astree_obs.Trace.enabled then
                Astree_obs.Trace.emit "budget.interrupt"
                  ~args:[ ("level", Astree_obs.Trace.I level) ];
              interrupted_result ses acfg p
          | exception Budget.Tripped reason ->
              last_reason := reason;
              if !Astree_obs.Trace.enabled then
                Astree_obs.Trace.emit "degrade.trip"
                  ~args:
                    [
                      ("reason", Astree_obs.Trace.S
                                   (Budget.reason_to_string reason));
                      ("level", Astree_obs.Trace.I level);
                      ("next_level", Astree_obs.Trace.I (min (level + 1) max_level));
                    ];
              Astree_obs.Metrics.incr
                (Astree_obs.Metrics.counter "degrade.trips");
              if reason = Budget.Memory then Gc.compact ();
              if level >= max_level then begin
                (* even the interval-speed step blew the envelope: run it
                   once more unbudgeted so the user still gets a sound
                   (if coarse) result rather than nothing *)
                Budget.disarm ();
                mark
                  (C.Analysis.analyze ~session:ses
                     ~cfg:(config_at ~level:max_level cfg)
                     p)
                  (degraded_record cfg p ~reason ~level:max_level)
              end
              else attempt (level + 1)
        in
        attempt 0)
  end
