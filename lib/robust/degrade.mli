(** Sound graceful degradation: when a resource budget trips, restart
    the analysis under a coarser configuration from a three-step ladder
    instead of aborting.  Every step only removes refinements, so a
    degraded run's alarms are a superset of the full run's. *)

(** Widest relational pack kept by ladder step 1 (default 3: ellipsoid
    packs survive, wider octagon/decision-tree packs are shed). *)
val shed_threshold : int ref

(** The configuration at ladder step [level] (1..3, cumulative):
    1 = shed packs wider than {!shed_threshold}, 2 = + no trace
    partitioning, 3 = + immediate threshold-less widening.  Exposed for
    the soundness property test. *)
val config_at : level:int -> Astree_core.Config.t -> Astree_core.Config.t

val max_level : int

(** Analyze under the budget of [cfg] ([timeout] / [max_mem_mb]);
    identical to [Analysis.analyze] when no budget is armed and no
    signal handlers are installed.  [stats.s_degraded] is [Some _] iff
    precision was shed or the run was interrupted (in which case the
    result is partial: alarms found so far, bottom final state).
    [?session] threads an existing analysis session through the ladder
    (every attempt, including degraded retries, runs under it); a fresh
    one is created otherwise. *)
val analyze :
  ?session:Astree_core.Transfer.session ->
  ?cfg:Astree_core.Config.t ->
  Astree_frontend.Tast.program ->
  Astree_core.Analysis.result
