(* Bounded, jittered exponential backoff.  See backoff.mli. *)

type policy = {
  b_base : float;
  b_factor : float;
  b_max : float;
  b_jitter : float;
  b_retries : int;
}

let default =
  { b_base = 0.1; b_factor = 2.0; b_max = 10.0; b_jitter = 0.25; b_retries = 4 }

let supervisor =
  {
    b_base = 0.2;
    b_factor = 2.0;
    b_max = 30.0;
    b_jitter = 0.1;
    b_retries = max_int;
  }

(* splitmix64 finalizer, as in Faultsim: deterministic jitter with no
   global RNG state to perturb *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let delay (p : policy) ~(seed : int) ~(attempt : int) : float =
  let attempt = max 0 attempt in
  (* compute the cap in log space: factor^attempt overflows to infinity
     harmlessly, but stay exact for the small attempts that matter *)
  let raw = p.b_base *. (p.b_factor ** float_of_int attempt) in
  let capped = Float.min p.b_max raw in
  if p.b_jitter <= 0. then capped
  else
    let h =
      mix64
        (Int64.logxor
           (Int64.of_int ((seed * 1_000_003) + attempt))
           0x9e3779b97f4a7c15L)
    in
    (* 53 uniform bits -> [0, 1) -> [1-j, 1+j] *)
    let u =
      Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
    in
    capped *. (1. -. p.b_jitter +. (2. *. p.b_jitter *. u))

let sleep (p : policy) ~(seed : int) ~(attempt : int) : unit =
  let d = delay p ~seed ~attempt in
  if d > 0. then
    (* EINTR shortens the sleep: a signal (the supervisor forwarding
       SIGTERM, say) must not turn into an exception mid-backoff *)
    try Unix.sleepf d with Unix.Unix_error (Unix.EINTR, _, _) -> ()
