(** Deterministic, seed-driven fault injection.

    A fault specification ([ASTREE_FAULTS=seed:point=prob,...], the
    [ASTREE_PAR_CHAOS] legacy alias, or a programmatic {!install}) arms
    named injection points in the worker pool and the summary store.
    Firing decisions are drawn from a counter-based stream seeded by
    (seed, point, call number): the same spec replays the same fault
    schedule, so every degradation and recovery path is exercisable
    deterministically in tests and CI. *)

type point =
  | Worker_crash     (** pool worker self-kills before running a job *)
  | Worker_hang      (** pool worker sleeps {!hang_seconds} before a job *)
  | Reply_truncate   (** pool worker writes half a marshalled reply, dies *)
  | Cache_corrupt    (** summary-store read behaves as a corrupt file *)
  | Cache_write      (** summary-store write fails mid-file (ENOSPC) *)
  | Conn_drop        (** daemon drops a client connection before replying *)
  | Reply_partial    (** daemon writes half a reply line, then drops the
                         connection — a torn wire write *)
  | Daemon_crash     (** daemon process dies abruptly at admission (the
                         supervisor's restart path) *)
  | Checkpoint_torn  (** daemon checkpoint write tears mid-payload — the
                         recovered daemon must degrade to cold *)

val point_name : point -> string

(** Sleep length of a [Worker_hang] fault (default one hour: the
    coordinator's per-job timeout is what ends a hang, not the sleep). *)
val hang_seconds : float ref

(** Should this call of the injection point inject a fault?  Consults
    the programmatic spec if one is installed, else the environment;
    always [false] when nothing is armed or inside {!with_suppressed}. *)
val fires : point -> bool

(** Arm a spec programmatically, overriding the environment. *)
val install : seed:int -> (point * float) list -> unit

(** Drop a programmatic spec (the environment applies again). *)
val clear : unit -> unit

(** Run [k] with every injection point masked.  Used by tests that
    assert exact pool or cache counters, so the full suite stays green
    under a global chaos run. *)
val with_suppressed : (unit -> 'a) -> 'a

(** Whether any injection point can currently fire (a spec is armed and
    suppression is off).  The parallel scheduler degrades the domains
    backend to fork when this holds: fault points only exist in fork
    workers. *)
val armed : unit -> bool

(** How often a point actually fired in this process (test assertions). *)
val fire_count : point -> int

(** Reset call and fire counters (replay a schedule from the start). *)
val reset_counters : unit -> unit

(** Human-readable description of the active spec. *)
val describe : unit -> string
