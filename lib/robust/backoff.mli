(** Bounded, jittered exponential backoff.

    One policy value describes a whole retry schedule: attempt [k]
    sleeps [base * factor^k] seconds, capped at [max], with a
    deterministic multiplicative jitter of up to [±jitter] drawn from
    [(seed, attempt)] — the same seed replays the same schedule, so
    retry behavior is testable to the millisecond.  Shared by the
    daemon supervisor (restart pacing) and the client (retry on
    shed / connection reset). *)

type policy = {
  b_base : float;    (** first delay, seconds *)
  b_factor : float;  (** growth per attempt ([>= 1.]) *)
  b_max : float;     (** delay ceiling, seconds *)
  b_jitter : float;  (** jitter fraction in [0, 1): the delay is scaled
                         by a factor in [1-jitter, 1+jitter] *)
  b_retries : int;   (** attempts before giving up (callers' loop bound;
                         {!delay} itself accepts any attempt number) *)
}

val default : policy
(** 4 retries: 0.1s, 0.2s, 0.4s, 0.8s, ±25% jitter, 10s cap. *)

val supervisor : policy
(** Restart pacing for the daemon supervisor: 0.2s base, doubling,
    30s cap, ±10% jitter, unlimited in spirit ([b_retries] is large —
    the supervisor keeps a service alive, it does not give up). *)

val delay : policy -> seed:int -> attempt:int -> float
(** The jittered delay of [attempt] (0-based).  Pure: the same
    [(policy, seed, attempt)] triple always yields the same value. *)

val sleep : policy -> seed:int -> attempt:int -> unit
(** [Unix.sleepf (delay ...)], EINTR-tolerant (a signal shortens the
    sleep instead of raising). *)
