(** Resource budget: wall-clock deadline, major-heap watermark and the
    interrupt flag, checked from the iterator's statement tick.  Raises
    {!Tripped}; {!Degrade} turns trips into sound precision shedding. *)

type reason = Timeout | Memory | Interrupted

exception Tripped of reason

val reason_to_string : reason -> string

(** Arm the budget: [deadline] is an absolute [Unix.gettimeofday]
    instant, [max_mem_mb] bounds the major heap (a Gc alarm sets a flag
    at the end of each major cycle).  Re-arming replaces the previous
    budget. *)
val arm : ?deadline:float -> ?max_mem_mb:int -> unit -> unit

val disarm : unit -> unit

(** The armed absolute deadline, [infinity] when none — the pool's
    select loop bounds its sleep by it. *)
val armed_deadline : unit -> float

(** Whether any budget (deadline or memory watermark) is armed.  The
    parallel scheduler degrades to the fork backend when it is: budget
    enforcement is built on process-global state and per-job kills,
    which only the fork pool provides. *)
val armed : unit -> bool

(** Raise {!Tripped} if a budget is exhausted or an interrupt is
    pending; three flag reads when nothing is armed.  Installed as
    [Iterator.tick_hook] and called from the pool's dispatch loop. *)
val poll : unit -> unit

(** Flag an interrupt: the next {!poll} raises [Tripped Interrupted].
    Called from the SIGINT/SIGTERM handler (and by tests). *)
val interrupt : unit -> unit

val interrupt_pending : unit -> bool
val clear_interrupt : unit -> unit

(** Install SIGINT/SIGTERM handlers that call {!interrupt}.  Idempotent. *)
val install_signal_handlers : unit -> unit

(** Whether {!install_signal_handlers} ran — when it did, analyses must
    poll even without a timeout/memory budget so interrupts are seen. *)
val handlers_active : unit -> bool
