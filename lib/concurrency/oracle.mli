(** Differential concrete-interleaving oracle: seeded random
    sequentially-consistent executions of a multi-task program, used to
    refute (never to validate) the interference fixpoint. *)

module C = Astree_core
module F = Astree_frontend

(** Deterministic volatile-input oracle derived from a seed. *)
val input_of_seed : int -> F.Tast.input_spec -> float

(** Deterministic scheduler derived from a seed (the interleaver
    reduces the returned integer modulo the number of live tasks). *)
val schedule_of_seed : int -> live:int -> int

(** Run [schedules] interleavings (distinct sub-seeds of [seed]) and
    return the deduplicated runtime errors observed. *)
val run_schedules :
  ?max_ticks:int ->
  ?schedules:int ->
  seed:int ->
  tasks:string list ->
  F.Tast.program ->
  (F.Interp.error_kind * F.Loc.t) list

(** Is this concrete error covered by an alarm of the matching kind at
    the same location? *)
val covered :
  C.Alarm.t list -> F.Interp.error_kind * F.Loc.t -> bool

(** The concrete errors not covered by any alarm — must be empty for a
    sound analysis. *)
val uncovered :
  C.Alarm.t list ->
  (F.Interp.error_kind * F.Loc.t) list ->
  (F.Interp.error_kind * F.Loc.t) list
