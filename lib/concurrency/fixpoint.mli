(** Outer interference fixpoint for multi-task programs: iterate the
    sequential analysis of every task under the other tasks' collected
    shared-cell writes (the rely) until the write maps stabilize, then
    report the union of the stable round's alarms. *)

module C = Astree_core
module F = Astree_frontend

(** Round budget before the everything-top fallback round (default 8,
    exposed for tests). *)
val max_rounds : int ref

(** Rounds of plain interference-map join before widening kicks in
    (default 2, exposed for tests). *)
val widen_delay : int ref

type t = {
  c_result : C.Analysis.result;
      (** combined: merged alarms, joined final state, combined context
          with merged invariants, aggregate statistics *)
  c_tasks : string list;
  c_shared : string list;  (** shared-variable names, sorted *)
  c_rounds : int;          (** analysis rounds run (each = all tasks) *)
  c_stabilized : bool;
      (** false only when the round budget forced the everything-top
          fallback round (still sound, maximally coarse) *)
}

(** Analyze [p] as a multi-task program with the given entry points.
    [cfg.jobs > 1] dispatches per-task runs to a process pool; results
    are identical to the sequential run.  The summary cache, when
    enabled, is attached per task run with the rely digest folded into
    its keys.
    @raise Invalid_argument on fewer than two tasks, unknown task
    names, or tasks taking parameters. *)
val analyze : ?cfg:C.Config.t -> tasks:string list -> F.Tast.program -> t
