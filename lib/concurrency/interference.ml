(** Interference maps: the rely/guarantee currency of the outer
    fixpoint (Miné's flow-insensitive interference semantics).

    A map binds shared cells — identified position-independently by
    root variable id and access path — to the interval of values some
    task may write there.  Maps are pure data (sorted association
    lists), so they marshal across the worker pool and digest stably
    into summary-cache fingerprints. *)

module C = Astree_core
module D = Astree_domains

type key = C.Transfer.itf_key

type map = (key * D.Itv.t) list
(* sorted by key, no duplicate keys, no bottom bindings *)

let empty : map = []

let of_table (tbl : (key, D.Itv.t) Hashtbl.t) : map =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.filter (fun (_, v) -> not (D.Itv.is_bot v))
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)

let to_table (m : map) : (key, D.Itv.t) Hashtbl.t =
  let tbl = Hashtbl.create (List.length m + 1) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) m;
  tbl

(* Ordered merge of two sorted maps; [f] combines values bound on both
   sides, unpaired bindings are kept as-is. *)
let rec merge (f : D.Itv.t -> D.Itv.t -> D.Itv.t) (a : map) (b : map) : map =
  match (a, b) with
  | [], m | m, [] -> m
  | (ka, va) :: ra, (kb, vb) :: rb ->
      let c = compare ka kb in
      if c < 0 then (ka, va) :: merge f ra b
      else if c > 0 then (kb, vb) :: merge f a rb
      else (ka, f va vb) :: merge f ra rb

let join : map -> map -> map = merge D.Itv.join

(* Widening point by point.  A key appearing only on the new side is
   adopted as-is: the key space is finite (cells of the program's
   shared variables), so new keys can only appear finitely often and
   do not threaten termination.  Classical thresholds ({-oo,+oo})
   converge in one extra round per unstable bound, which keeps the
   outer fixpoint within its round budget. *)
let widen (old_m : map) (new_m : map) : map =
  merge
    (fun o n ->
      if D.Itv.subset n o then o
      else D.Itv.widen ~thresholds:D.Thresholds.none o (D.Itv.join o n))
    old_m new_m

let subset (a : map) (b : map) : bool =
  List.for_all
    (fun (k, v) ->
      match List.assoc_opt k b with
      | Some v' -> D.Itv.subset v v'
      | None -> false)
    a

let equal (a : map) (b : map) : bool =
  try List.for_all2 (fun (k, v) (k', v') -> k = k' && D.Itv.equal v v') a b
  with Invalid_argument _ -> false

(* Maps are canonical (sorted, bot-free), so the digest of the
   marshalled value identifies the map.  No_sharing keeps the bytes a
   function of the value alone. *)
let digest (m : map) : string =
  Digest.to_hex (Digest.string (Marshal.to_string m [ Marshal.No_sharing ]))

let cardinal = List.length

let pp (ppf : Format.formatter) (m : map) : unit =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun ((root, path), v) ->
      Format.fprintf ppf "(%d%s) -> %a@ " root
        (String.concat ""
           (List.map
              (function
                | C.Cell.Sfield f -> "." ^ f
                | C.Cell.Selem i -> Printf.sprintf "[%d]" i
                | C.Cell.Sall -> "[*]")
              path))
        D.Itv.pp v)
    m;
  Format.fprintf ppf "@]"
