(** Outer interference fixpoint for multi-task programs (Miné's
    rely/guarantee iteration over Astrée's sequential analysis).

    Each round analyzes every task with the sequential analyzer, its
    reads of shared cells widened by the other tasks' interference
    (the rely), while collecting the task's own abstract writes to
    shared cells (the guarantee).  The per-task write maps are joined
    (then widened) across rounds; the fixpoint is reached when one
    more round adds nothing — at which point the last round's runs
    were analyzed under a rely that over-approximates every concurrent
    write, so their union of alarms soundly covers every sequentially
    consistent interleaving with statement-level atomicity.

    Termination: write maps live in a finite product of interval
    lattices (the shared cells); after [widen_delay] plain-join rounds
    every unstable bound is widened to +-oo, so the chain stabilizes.
    A round budget backstops even that: if [max_rounds] is exhausted,
    one final run with the everything-top rely (every shared cell at
    its full type range) is reported — strictly coarser than any
    fixpoint, hence still sound.

    Per-task runs are plain sequential analyses against a fresh
    session, so they compose with the summary cache (the per-task
    config digests the rely: summaries never leak across interference
    environments) and dispatch to the parallel pool as pure-data
    jobs. *)

module C = Astree_core
module D = Astree_domains
module F = Astree_frontend
module I = Astree_incremental
module P = Astree_parallel
module Metrics = Astree_obs.Metrics
module Trace = Astree_obs.Trace

let max_rounds = ref 8
let widen_delay = ref 2
let rounds_counter = Metrics.counter "conc.rounds"

type t = {
  c_result : C.Analysis.result;
  c_tasks : string list;
  c_shared : string list;
  c_rounds : int;
  c_stabilized : bool;
}

(* One per-task unit of work; pure data, marshals to pool workers. *)
type job = { j_task : string; j_rely : Interference.map }

(* The everything-top rely: every cell of every shared variable at its
   full type range.  The sound fallback when the round budget runs
   out, and the base of nothing — it needs no per-task indexing
   because it already dominates any guarantee. *)
let top_rely (cfg : C.Config.t) (p : F.Tast.program)
    (shared : F.Tast.var list) : Interference.map =
  List.concat_map
    (fun (v : F.Tast.var) ->
      List.map
        (fun (c : C.Cell.t) ->
          ( (v.F.Tast.v_id, c.C.Cell.path),
            C.Avalue.top_of_scalar p.F.Tast.p_target c.C.Cell.cty ))
        (C.Cell.cells_of_var ~structs:p.F.Tast.p_structs
           ~expand_array_max:cfg.C.Config.expand_array_max v))
    shared
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)

(* Run one task under its rely: a sequential analysis of [p] re-rooted
   at the task, against a fresh session carrying the interference
   context.  The config digests the rely, so summary-cache keys
   self-identify the interference environment; cells are pre-filled in
   program order, so ids (hence states and invariants) align across
   tasks and with the combined context. *)
let run_job ~(cfg : C.Config.t) (p : F.Tast.program)
    (shared : F.Tast.var list) (j : job) :
    C.Analysis.result * Interference.map =
  let cfg =
    {
      cfg with
      C.Config.jobs = 1;
      conc_rely_digest = Interference.digest j.j_rely;
    }
  in
  let ses = C.Transfer.new_session () in
  let shared_ids = Hashtbl.create 16 in
  List.iter
    (fun (v : F.Tast.var) -> Hashtbl.replace shared_ids v.F.Tast.v_id ())
    shared;
  let it =
    {
      C.Transfer.itf_rely = Interference.to_table j.j_rely;
      itf_shared = shared_ids;
      itf_writes = Hashtbl.create 32;
    }
  in
  ses.C.Transfer.ses_itf <- Some it;
  let p_t = { p with F.Tast.p_main = j.j_task } in
  let cache =
    if C.Config.cache_enabled cfg then Some (I.Summary.attach ses cfg p_t)
    else None
  in
  let actx = C.Transfer.make_actx ~session:ses cfg p_t in
  C.Transfer.prefill_cells actx;
  let r = C.Analysis.analyze_prepared actx p_t in
  let r =
    match cache with
    | None -> r
    | Some ss ->
        let cs = I.Summary.detach cfg ss in
        {
          r with
          C.Analysis.r_stats =
            { r.C.Analysis.r_stats with C.Analysis.s_cache = Some cs };
        }
  in
  (r, Interference.of_table it.C.Transfer.itf_writes)

(* Worker-side wrapper (the batch-axis discipline): detach any
   inherited trace sink, ship the registry delta back with the
   reply. *)
let run_job_delta ~cfg p shared (j : job) :
    (C.Analysis.result * Interference.map) * Metrics.snapshot =
  Trace.in_worker ();
  let m0 = Metrics.snapshot () in
  let r = run_job ~cfg p shared j in
  (r, Metrics.diff m0)

(* Run one round: every task under its rely, in task order.  The pool
   path falls back to in-process recomputation for failed jobs, so a
   crashed worker degrades to the sequential result, never to a
   missing task. *)
let run_round ~(cfg : C.Config.t) ~pool (p : F.Tast.program)
    (shared : F.Tast.var list) (jobs : job list) :
    (C.Analysis.result * Interference.map) list =
  match pool with
  | None -> List.map (run_job ~cfg p shared) jobs
  | Some pool ->
      List.map2
        (fun j -> function
          | Ok (r, delta) ->
              Metrics.absorb delta;
              r
          | Error _ -> run_job ~cfg p shared j)
        jobs
        (P.Scheduler.pool_map pool jobs)

(* Join the per-task contexts' bookkeeping into the combined context:
   loop invariants join point-wise (ids align by construction), useful
   octagon packs union. *)
let absorb_actx (dst : C.Transfer.actx) (src : C.Transfer.actx) : unit =
  Hashtbl.iter
    (fun id st ->
      match Hashtbl.find_opt dst.C.Transfer.invariants id with
      | None -> Hashtbl.replace dst.C.Transfer.invariants id st
      | Some st0 ->
          Hashtbl.replace dst.C.Transfer.invariants id (C.Astate.join st0 st))
    src.C.Transfer.invariants;
  Hashtbl.iter
    (fun id () -> Hashtbl.replace dst.C.Transfer.oct_useful id ())
    src.C.Transfer.oct_useful;
  dst.C.Transfer.join_count <-
    dst.C.Transfer.join_count + src.C.Transfer.join_count

let analyze ?(cfg = C.Config.default) ~(tasks : string list)
    (p : F.Tast.program) : t =
  let t0 = Unix.gettimeofday () in
  let tm = Taskmodel.build p tasks in
  let shared = tm.Taskmodel.tm_shared in
  let shared_names = List.map (fun (v : F.Tast.var) -> v.F.Tast.v_name) shared in
  Metrics.set_gauge "conc.tasks" (List.length tasks);
  Metrics.set_gauge "conc.interference_vars" (List.length shared_names);
  (* shared variables leave the relational packs in every run, the
     combined context included, so states stay comparable *)
  let cfg = { cfg with C.Config.conc_shared = shared_names } in
  (* per-task runs dispatch through the backend-agnostic pool: the
     worker function builds a fresh per-task session/actx per job, so
     it is the same on both backends *)
  let pool =
    if cfg.C.Config.jobs > 1 && List.compare_length_with tasks 1 > 0 then
      Some
        (P.Scheduler.create_pool
           ~jobs:(min cfg.C.Config.jobs (List.length tasks))
           ~backend:cfg.C.Config.par_backend
           (fun () -> run_job_delta ~cfg p shared))
    else None
  in
  let round_of ~round (writes : Interference.map list) :
      (C.Analysis.result * Interference.map) list =
    Metrics.incr rounds_counter;
    if !Trace.enabled then
      Trace.span_begin "conc.round" ~args:[ ("round", Trace.I round) ];
    let jobs =
      List.mapi
        (fun i task ->
          (* rely of task i: join of every other task's guarantee *)
          let rely =
            List.fold_left Interference.join Interference.empty
              (List.filteri (fun k _ -> k <> i) writes)
          in
          { j_task = task; j_rely = rely })
        tasks
    in
    let rs = run_round ~cfg ~pool p shared jobs in
    if !Trace.enabled then
      Trace.span_end "conc.round"
        ~args:
          [
            ( "interference_cells",
              Trace.I
                (List.fold_left
                   (fun n (_, w) -> n + Interference.cardinal w)
                   0 rs) );
          ];
    rs
  in
  let finish (results : (C.Analysis.result * Interference.map) list)
      ~(rounds : int) ~(stabilized : bool) : t =
    let per_task = List.map fst results in
    let alarms =
      P.Merge.alarms (List.map (fun r -> r.C.Analysis.r_alarms) per_task)
    in
    let final =
      P.Merge.join_states (List.map (fun r -> r.C.Analysis.r_final) per_task)
    in
    (* combined context: same cell numbering as every per-task run
       (pre-fill covers all functions), merged invariants and pack
       usefulness *)
    let actx = C.Transfer.make_actx cfg p in
    C.Transfer.prefill_cells actx;
    List.iter
      (fun r -> absorb_actx actx r.C.Analysis.r_actx)
      per_task;
    let stats =
      let s =
        P.Merge.sum_stats (List.map (fun r -> r.C.Analysis.r_stats) per_task)
      in
      { s with C.Analysis.s_time = Unix.gettimeofday () -. t0 }
    in
    {
      c_result =
        {
          C.Analysis.r_alarms = alarms;
          r_final = final;
          r_actx = actx;
          r_stats = stats;
        };
      c_tasks = tasks;
      c_shared = shared_names;
      c_rounds = rounds;
      c_stabilized = stabilized;
    }
  in
  (* round 1 under the empty rely, then iterate *)
  let rec iterate ~round (writes : Interference.map list) : t =
    let results = round_of ~round writes in
    let writes' = List.map snd results in
    if List.for_all2 Interference.subset writes' writes then
      (* nothing new: these runs were analyzed under a rely that
         over-approximates every concurrent write — report them *)
      finish results ~rounds:round ~stabilized:true
    else if round >= !max_rounds then begin
      (* budget exhausted: one last, everything-top round *)
      let top = top_rely cfg p shared in
      let results =
        round_of ~round:(round + 1) (List.map (fun _ -> top) tasks)
      in
      finish results ~rounds:(round + 1) ~stabilized:false
    end
    else
      let writes'' =
        if round <= !widen_delay then List.map2 Interference.join writes writes'
        else List.map2 Interference.widen writes writes'
      in
      iterate ~round:(round + 1) writes''
  in
  Fun.protect
    ~finally:(fun () ->
      match pool with Some pl -> P.Scheduler.shutdown_pool pl | None -> ())
    (fun () ->
      match shared with
      | [] ->
          (* no interference possible: one round under the empty rely
             is already the fixpoint *)
          let results = round_of ~round:1 (List.map (fun _ -> []) tasks) in
          finish results ~rounds:1 ~stabilized:true
      | _ -> iterate ~round:1 (List.map (fun _ -> Interference.empty) tasks))
