(** Differential concrete-interleaving oracle.

    Ground truth for the interference fixpoint: execute the multi-task
    program under many seeded, sequentially-consistent interleavings
    (statement-level atomicity, matching the abstract semantics) and
    collect every runtime error observed.  Soundness demands that each
    observed error be covered by a reported alarm of the same kind at
    the same location — the oracle can only ever refute the analyzer,
    never validate unsound silence on schedules it did not draw. *)

module C = Astree_core
module F = Astree_frontend

(* The LCG of the sequential soundness suite, reused for inputs and
   scheduling so oracle runs are reproducible from one integer seed. *)
let lcg (seed : int) : unit -> int =
  let state = ref (if seed = 0 then 1 else seed) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state

let input_of_seed (seed : int) : F.Tast.input_spec -> float =
  let next = lcg seed in
  fun (spec : F.Tast.input_spec) ->
    let u = float_of_int (next ()) /. float_of_int 0x3FFFFFFF in
    let v =
      spec.F.Tast.in_lo +. (u *. (spec.F.Tast.in_hi -. spec.F.Tast.in_lo))
    in
    if F.Ctypes.is_integer spec.F.Tast.in_var.F.Tast.v_ty then Float.round v
    else v

let schedule_of_seed (seed : int) : live:int -> int =
  let next = lcg (seed lxor 0x2545F49) in
  fun ~live:_ -> next ()

let run_schedules ?(max_ticks = 400) ?(schedules = 25) ~(seed : int)
    ~(tasks : string list) (p : F.Tast.program) :
    (F.Interp.error_kind * F.Loc.t) list =
  let errs = ref [] in
  for i = 1 to schedules do
    let s = (seed * 1_000_003) + i in
    match
      F.Interp.run_interleaved ~max_ticks ~input:(input_of_seed s)
        ~schedule:(schedule_of_seed s) ~tasks p
    with
    | F.Interp.Finished -> ()
    | F.Interp.Error (k, l) -> errs := (k, l) :: !errs
  done;
  List.sort_uniq compare !errs

(* Same kind/location coverage policy as the sequential soundness
   suite: a concrete division by zero may surface as either division
   or modulo alarm (both originate from the same divisor check). *)
let covered (alarms : C.Alarm.t list)
    ((k, l) : F.Interp.error_kind * F.Loc.t) : bool =
  List.exists
    (fun (a : C.Alarm.t) ->
      F.Loc.equal a.C.Alarm.a_loc l
      &&
      match (k, a.C.Alarm.a_kind) with
      | F.Interp.Int_overflow, C.Alarm.Int_overflow
      | F.Interp.Div_by_zero, (C.Alarm.Div_by_zero | C.Alarm.Mod_by_zero)
      | F.Interp.Out_of_bounds, C.Alarm.Out_of_bounds
      | F.Interp.Float_overflow, C.Alarm.Float_overflow
      | F.Interp.Invalid_op, C.Alarm.Invalid_op
      | F.Interp.Assert_failure, C.Alarm.Assert_failure
      | F.Interp.Shift_range, C.Alarm.Shift_range ->
          true
      | _ -> false)
    alarms

let uncovered (alarms : C.Alarm.t list)
    (errors : (F.Interp.error_kind * F.Loc.t) list) :
    (F.Interp.error_kind * F.Loc.t) list =
  List.filter (fun e -> not (covered alarms e)) errors
