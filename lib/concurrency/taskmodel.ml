(** Task model of a multi-task program (Sect. 2: "synchronous" control
    loops running concurrently on shared memory).

    A task is a parameterless entry-point function; the tasks of a
    program share its global variables.  The model computes, per task,
    the sets of non-volatile globals it may read and write anywhere in
    its call graph, and derives from them the [shared] variables: those
    written by one task and accessed (read or written) by another.
    Only shared variables are subject to interference — everything else
    keeps the precise single-task semantics. *)

module F = Astree_frontend

type t = {
  tm_tasks : string list;          (* validated, in given order *)
  tm_shared : F.Tast.var list;     (* sorted by name *)
  tm_reads : (string * F.Tast.VarSet.t) list;
  tm_writes : (string * F.Tast.VarSet.t) list;
}

let is_global_tbl (p : F.Tast.program) : (int, unit) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ((v : F.Tast.var), _) ->
      if not v.F.Tast.v_volatile then Hashtbl.replace tbl v.F.Tast.v_id ())
    p.F.Tast.p_globals;
  tbl

let validate (p : F.Tast.program) (tasks : string list) : unit =
  (match tasks with
  | [] | [ _ ] ->
      invalid_arg "Taskmodel: a multi-task program needs at least two tasks"
  | _ -> ());
  let seen = Hashtbl.create 8 in
  List.iter
    (fun t ->
      if Hashtbl.mem seen t then
        invalid_arg (Printf.sprintf "Taskmodel: duplicate task %S" t);
      Hashtbl.replace seen t ();
      match F.Tast.find_fun p t with
      | None -> invalid_arg (Printf.sprintf "Taskmodel: unknown task %S" t)
      | Some fd ->
          if fd.F.Tast.fd_params <> [] then
            invalid_arg
              (Printf.sprintf "Taskmodel: task %S takes parameters" t))
    tasks

(* Functions reachable from [entry] through direct calls. *)
let reachable (p : F.Tast.program) (entry : string) : string list =
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      match F.Tast.find_fun p name with
      | None -> ()
      | Some fd ->
          F.Tast.iter_stmts
            (fun s ->
              match s.F.Tast.sdesc with
              | F.Tast.Scall (_, callee, _) -> visit callee
              | _ -> ())
            fd.F.Tast.fd_body
    end
  in
  visit entry;
  Hashtbl.fold (fun name () acc -> name :: acc) seen []

(* Reads and writes of non-volatile globals across one function body.
   By-reference arguments are conservatively both read and written:
   the callee may do either through the reference. *)
let fun_accesses (globals : (int, unit) Hashtbl.t) (fd : F.Tast.fundef) :
    F.Tast.VarSet.t * F.Tast.VarSet.t =
  let reads = ref F.Tast.VarSet.empty and writes = ref F.Tast.VarSet.empty in
  let is_global (v : F.Tast.var) = Hashtbl.mem globals v.F.Tast.v_id in
  let add_set acc s =
    acc := F.Tast.VarSet.union (F.Tast.VarSet.filter is_global s) !acc
  in
  let read_expr e = add_set reads (F.Tast.expr_vars e F.Tast.VarSet.empty) in
  let read_lval lv = add_set reads (F.Tast.lval_vars lv F.Tast.VarSet.empty) in
  let write_lval lv =
    let root = F.Tast.lval_root lv in
    if is_global root then writes := F.Tast.VarSet.add root !writes;
    (* subscript expressions inside the written lvalue are reads *)
    read_lval lv
  in
  F.Tast.iter_stmts
    (fun s ->
      match s.F.Tast.sdesc with
      | F.Tast.Sassign (lv, e) ->
          write_lval lv;
          read_expr e
      | F.Tast.Scall (_, _, args) ->
          List.iter
            (function
              | F.Tast.Aval e -> read_expr e
              | F.Tast.Aref lv ->
                  write_lval lv;
                  read_lval lv)
            args
      | F.Tast.Sif (c, _, _) | F.Tast.Swhile (_, c, _) -> read_expr c
      | F.Tast.Sreturn (Some e) | F.Tast.Sassert e | F.Tast.Sassume e ->
          read_expr e
      | F.Tast.Slocal (_, Some e) -> read_expr e
      | F.Tast.Sreturn None | F.Tast.Sbreak | F.Tast.Scontinue
      | F.Tast.Swait | F.Tast.Sskip
      | F.Tast.Slocal (_, None) ->
          ())
    fd.F.Tast.fd_body;
  (!reads, !writes)

let task_accesses (p : F.Tast.program) (globals : (int, unit) Hashtbl.t)
    (entry : string) : F.Tast.VarSet.t * F.Tast.VarSet.t =
  List.fold_left
    (fun (r, w) name ->
      match F.Tast.find_fun p name with
      | None -> (r, w)
      | Some fd ->
          let fr, fw = fun_accesses globals fd in
          (F.Tast.VarSet.union fr r, F.Tast.VarSet.union fw w))
    (F.Tast.VarSet.empty, F.Tast.VarSet.empty)
    (reachable p entry)

let build (p : F.Tast.program) (tasks : string list) : t =
  validate p tasks;
  let globals = is_global_tbl p in
  let acc = List.map (fun t -> (t, task_accesses p globals t)) tasks in
  let reads = List.map (fun (t, (r, _)) -> (t, r)) acc in
  let writes = List.map (fun (t, (_, w)) -> (t, w)) acc in
  (* shared: written by some task, read or written by a different one *)
  let shared =
    List.fold_left
      (fun s (t, w) ->
        let others =
          List.fold_left
            (fun o (t', (r', w')) ->
              if String.equal t t' then o
              else F.Tast.VarSet.union (F.Tast.VarSet.union r' w') o)
            F.Tast.VarSet.empty acc
        in
        F.Tast.VarSet.union (F.Tast.VarSet.inter w others) s)
      F.Tast.VarSet.empty writes
  in
  let shared =
    List.sort
      (fun (a : F.Tast.var) b -> String.compare a.F.Tast.v_name b.F.Tast.v_name)
      (F.Tast.VarSet.elements shared)
  in
  { tm_tasks = tasks; tm_shared = shared; tm_reads = reads; tm_writes = writes }
