(** Interference maps: shared-cell write sets exchanged between the
    per-task analyses of the outer fixpoint (rely/guarantee). *)

module C = Astree_core
module D = Astree_domains

type key = C.Transfer.itf_key

(** Canonical form: sorted by key, no duplicates, no bottom bindings.
    Pure data — marshals across processes. *)
type map = (key * D.Itv.t) list

val empty : map

(** Canonicalize a guarantee collector into a map. *)
val of_table : (key, D.Itv.t) Hashtbl.t -> map

(** Rely map as the hash table the transfer functions read. *)
val to_table : map -> (key, D.Itv.t) Hashtbl.t

val join : map -> map -> map

(** [widen old new]: point-by-point classical interval widening
    ({-oo,+oo} thresholds); keys only in [new] are adopted as-is. *)
val widen : map -> map -> map

(** [subset a b]: every binding of [a] is included in [b]'s. *)
val subset : map -> map -> bool

val equal : map -> map -> bool

(** Stable digest of the canonical form (folded into per-task config
    fingerprints so cached summaries self-identify their rely). *)
val digest : map -> string

val cardinal : map -> int
val pp : Format.formatter -> map -> unit
