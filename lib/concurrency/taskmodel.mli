(** Task model of a multi-task program: entry points, per-task global
    access sets, and the derived shared-variable set. *)

module F = Astree_frontend

type t = {
  tm_tasks : string list;  (** validated task entry points, in given order *)
  tm_shared : F.Tast.var list;
      (** non-volatile globals written by one task and accessed by
          another, sorted by name — the interference-carrying set *)
  tm_reads : (string * F.Tast.VarSet.t) list;
      (** per task: non-volatile globals its call graph may read *)
  tm_writes : (string * F.Tast.VarSet.t) list;
      (** per task: non-volatile globals its call graph may write *)
}

(** Check that every task names a distinct, parameterless function.
    @raise Invalid_argument otherwise, or when fewer than two tasks are
    given. *)
val validate : F.Tast.program -> string list -> unit

(** Function names reachable from [entry] through direct calls
    (including [entry] itself), in no particular order. *)
val reachable : F.Tast.program -> string -> string list

(** Build the task model.  Runs {!validate} first. *)
val build : F.Tast.program -> string list -> t
