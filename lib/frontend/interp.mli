(** Concrete interpreter for the typed IR: an executable version of the
    standard semantics [S]s of Sect. 5.4, used as the ground truth for
    the soundness test suite and for simulating concrete trajectories
    (experiment E9). *)

type error_kind =
  | Int_overflow
  | Div_by_zero
  | Out_of_bounds
  | Float_overflow
  | Invalid_op
  | Assert_failure
  | Shift_range

val pp_error_kind : Format.formatter -> error_kind -> unit

exception Runtime_error of error_kind * Loc.t

type value =
  | Vint of int
  | Vfloat of float
  | Varray of value array
  | Vstruct of (string * value ref) list
  | Vref of reference  (** a by-reference parameter binding *)

and reference = { rget : unit -> value; rset : value -> unit }

(** Interpreter state, exposed to [on_tick] observers. *)
type state

(** Outcome of a concrete run. *)
type outcome =
  | Finished                       (** main returned or max ticks reached *)
  | Error of error_kind * Loc.t

(** Run the program concretely.  [input] supplies a value for each
    volatile read (defaults to the spec midpoint); [max_ticks] bounds
    the synchronous loop (the paper's "maximal execution time",
    Sect. 4); [on_tick] observes the state after each clock tick. *)
val run :
  ?max_ticks:int ->
  ?on_tick:(state -> unit) ->
  ?input:(Tast.input_spec -> float) ->
  Tast.program ->
  outcome

(** Execute [tasks] (parameterless functions of the program) under a
    sequentially-consistent interleaving with statement-level atomicity:
    the tasks share the globals, each has private call frames and its
    own tick counter, and between any two statements the scheduler may
    switch tasks.  [schedule ~live:n] picks which of the [n] still-live
    tasks (in task-list order) executes the next statement; a task dies
    when its body returns, its assume fails or its ticks are exhausted.
    [p_main] is not run.  Ground truth for the differential oracle of
    the multi-task interference analysis.
    @raise Invalid_argument if a task name is not a function of [p]. *)
val run_interleaved :
  ?max_ticks:int ->
  ?input:(Tast.input_spec -> float) ->
  schedule:(live:int -> int) ->
  tasks:string list ->
  Tast.program ->
  outcome

(** Read a global scalar by name (testing helper). *)
val read_global_scalar : state -> string -> value option
