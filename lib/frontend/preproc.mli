(** A standard C preprocessor (Sect. 5.1): [#include "file"], object-like
    and function-like [#define], [#undef], conditional inclusion
    ([#if]/[#ifdef]/[#ifndef]/[#elif]/[#else]/[#endif]) with integer
    constant expressions and [defined].  The output is a flattened source
    string with line markers for the lexer. *)

exception Error of string * Loc.t

type macro =
  | Object of string                  (** replacement text *)
  | Function of string list * string  (** parameters, replacement text *)

type env

(** [make_env ~include_paths ~read_file ()]: [read_file] abstracts file
    loading (for tests and in-memory "files"); [__ASTREE__] is
    predefined. *)
val make_env :
  ?include_paths:string list ->
  ?read_file:(string -> string option) ->
  unit ->
  env

val define : env -> string -> macro -> unit
val undefine : env -> string -> unit
val is_defined : env -> string -> bool

(** Preprocess a source string. *)
val run : ?env:env -> file:string -> string -> string

(** Function names listed by "/* astree-partition: f g */" markers,
    sorted and deduplicated.  Whitespace after the colon and between
    names is arbitrary (spaces, tabs, newlines). *)
val partition_markers : string -> string list

(** Task entry points listed by "/* astree-task: t u */" markers, in
    document order with duplicates removed — the order fixes the task
    numbering of the multi-task interference analysis.  Two or more
    names mark the program as multi-task. *)
val task_markers : string -> string list
