(** Concrete interpreter for the typed IR.

    This is an executable version of the standard semantics [S]s of
    Sect. 5.4.  It is used by the test suite as the ground truth for
    soundness properties (every concrete behaviour must be covered by the
    abstract semantics) and by the benchmarks to simulate concrete filter
    trajectories (experiment E9).

    Run-time errors raise {!Runtime_error} with the paper's error
    classification: anything that would make an operator application
    "give an error on the concrete level" (Sect. 5.3) — integer overflow
    wrt the end-user semantics, division by zero, out-of-bounds access,
    float overflow or invalid operation. *)

open Tast

type error_kind =
  | Int_overflow
  | Div_by_zero
  | Out_of_bounds
  | Float_overflow
  | Invalid_op
  | Assert_failure
  | Shift_range

let pp_error_kind ppf k =
  Fmt.string ppf
    (match k with
    | Int_overflow -> "integer overflow"
    | Div_by_zero -> "division by zero"
    | Out_of_bounds -> "out-of-bounds array access"
    | Float_overflow -> "float overflow"
    | Invalid_op -> "invalid operation"
    | Assert_failure -> "assertion failure"
    | Shift_range -> "shift out of range")

exception Runtime_error of error_kind * Loc.t

(* ------------------------------------------------------------------ *)
(* Values and stores                                                   *)
(* ------------------------------------------------------------------ *)

type value =
  | Vint of int
  | Vfloat of float
  | Varray of value array
  | Vstruct of (string * value ref) list
  | Vref of reference  (** a by-reference parameter binding *)

and reference = { rget : unit -> value; rset : value -> unit }

let rec zero_value structs (t : Ctypes.t) : value =
  match t with
  | Ctypes.Tscalar (Ctypes.Tint _) -> Vint 0
  | Ctypes.Tscalar (Ctypes.Tfloat _) -> Vfloat 0.0
  | Ctypes.Tarray (elt, n) ->
      Varray (Array.init n (fun _ -> zero_value structs elt))
  | Ctypes.Tstruct tag -> (
      match List.assoc_opt tag structs with
      | Some sd ->
          Vstruct
            (List.map
               (fun (f, ft) -> (f, ref (zero_value structs ft)))
               sd.Ctypes.fields)
      | None -> Vstruct [])
  | Ctypes.Tvoid | Ctypes.Tptr _ -> Vint 0

let rec value_of_init structs (t : Ctypes.t) (i : init) : value =
  match (t, i) with
  | _, Izero -> zero_value structs t
  | Ctypes.Tscalar (Ctypes.Tint _), Iint n -> Vint n
  | Ctypes.Tscalar (Ctypes.Tfloat _), Ifloat f -> Vfloat f
  | Ctypes.Tscalar (Ctypes.Tfloat _), Iint n -> Vfloat (float_of_int n)
  | Ctypes.Tscalar (Ctypes.Tint _), Ifloat f -> Vint (int_of_float f)
  | Ctypes.Tarray (elt, n), Iarray items ->
      let arr = Array.init n (fun _ -> zero_value structs elt) in
      List.iteri
        (fun k it -> if k < n then arr.(k) <- value_of_init structs elt it)
        items;
      Varray arr
  | Ctypes.Tstruct tag, Istruct fields -> (
      match List.assoc_opt tag structs with
      | Some sd ->
          Vstruct
            (List.map
               (fun (f, ft) ->
                 let i =
                   match List.assoc_opt f fields with
                   | Some i -> i
                   | None -> Izero
                 in
                 (f, ref (value_of_init structs ft i)))
               sd.Ctypes.fields)
      | None -> Vstruct [])
  | _ -> zero_value structs t

(* ------------------------------------------------------------------ *)
(* Interpreter state                                                   *)
(* ------------------------------------------------------------------ *)

type state = {
  prog : program;
  store : (int, value ref) Hashtbl.t;  (** var id -> storage *)
  mutable frames : (int, value ref) Hashtbl.t list;
  input : input_spec -> float;  (** volatile input oracle *)
  mutable clock : int;
  max_ticks : int;
  on_tick : (state -> unit) option;
  on_stmt : (state -> unit) option;
      (** called before every statement (and before each loop-guard
          re-evaluation) — the multi-task interleaver yields here *)
}

exception Stop_execution
exception Brk
exception Cont
exception Ret of value option

let find_storage st (v : var) : value ref =
  let rec in_frames = function
    | [] -> (
        match Hashtbl.find_opt st.store v.v_id with
        | Some r -> r
        | None ->
            (* locals are created on the fly *)
            let r = ref (zero_value st.prog.p_structs v.v_ty) in
            Hashtbl.replace st.store v.v_id r;
            r)
    | f :: rest -> (
        match Hashtbl.find_opt f v.v_id with
        | Some r -> r
        | None -> in_frames rest)
  in
  in_frames st.frames

let current_frame st =
  match st.frames with
  | f :: _ -> f
  | [] -> invalid_arg "no active frame"

(* Volatile input read: consult the oracle. *)
let read_volatile st (v : var) : value =
  match List.find_opt (fun s -> Var.equal s.in_var v) st.prog.p_inputs with
  | Some spec ->
      let f = st.input spec in
      if Ctypes.is_integer v.v_ty then Vint (int_of_float f) else Vfloat f
  | None -> !(find_storage st v)

(* ------------------------------------------------------------------ *)
(* Scalar operations with error checking                               *)
(* ------------------------------------------------------------------ *)

let check_int_range loc (s : Ctypes.scalar) tgt n =
  match s with
  | Ctypes.Tint (r, sg) ->
      let lo, hi = Ctypes.range_of_int_type tgt r sg in
      if n < lo || n > hi then raise (Runtime_error (Int_overflow, loc));
      n
  | _ -> n

let check_float loc (s : Ctypes.scalar) f =
  if Float.is_nan f then raise (Runtime_error (Invalid_op, loc));
  (match s with
  | Ctypes.Tfloat k ->
      if Float.abs f > Ctypes.fmax k then
        raise (Runtime_error (Float_overflow, loc))
  | _ -> ());
  f

let round_single f = Int32.float_of_bits (Int32.bits_of_float f)

let as_int loc = function
  | Vint n -> n
  | Vfloat _ -> raise (Runtime_error (Invalid_op, loc))
  | _ -> raise (Runtime_error (Invalid_op, loc))

let as_float loc = function
  | Vfloat f -> f
  | Vint n -> float_of_int n
  | _ -> raise (Runtime_error (Invalid_op, loc))

let truth = function Vint n -> n <> 0 | Vfloat f -> f <> 0.0 | _ -> false

(* ------------------------------------------------------------------ *)
(* Lvalue resolution                                                   *)
(* ------------------------------------------------------------------ *)

let rec resolve_lval st (lv : lval) : reference =
  match lv.ldesc with
  | Lvar v ->
      if v.v_volatile then
        {
          rget = (fun () -> read_volatile st v);
          rset = (fun x -> find_storage st v := x);
        }
      else
        let r = find_storage st v in
        { rget = (fun () -> !r); rset = (fun x -> r := x) }
  | Lderef v -> (
      let r = find_storage st v in
      match !r with
      | Vref re -> re
      | _ -> { rget = (fun () -> !r); rset = (fun x -> r := x) })
  | Lindex (a, i) -> (
      let base = resolve_lval st a in
      let idx = as_int lv.lloc (eval_expr st i) in
      match base.rget () with
      | Varray arr ->
          if idx < 0 || idx >= Array.length arr then
            (* report at the subscript expression, like the analyzer *)
            raise (Runtime_error (Out_of_bounds, i.eloc));
          {
            rget = (fun () -> arr.(idx));
            rset = (fun x -> arr.(idx) <- x);
          }
      | _ -> raise (Runtime_error (Invalid_op, lv.lloc)))
  | Lfield (a, f) -> (
      let base = resolve_lval st a in
      match base.rget () with
      | Vstruct fields -> (
          match List.assoc_opt f fields with
          | Some r -> { rget = (fun () -> !r); rset = (fun x -> r := x) }
          | None -> raise (Runtime_error (Invalid_op, lv.lloc)))
      | _ -> raise (Runtime_error (Invalid_op, lv.lloc)))

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

and eval_expr st (e : expr) : value =
  let tgt = st.prog.p_target in
  let loc = e.eloc in
  match e.edesc with
  | Eint n -> Vint n
  | Efloat f -> Vfloat f
  | Elval lv -> (resolve_lval st lv).rget ()
  | Ecast (s, a) -> (
      let v = eval_expr st a in
      match (s, v) with
      | Ctypes.Tint _, Vint n -> Vint (check_int_range loc s tgt n)
      | Ctypes.Tint _, Vfloat f ->
          if Float.is_nan f then raise (Runtime_error (Invalid_op, loc));
          let n = Float.to_int (Float.of_int (int_of_float f)) in
          Vint (check_int_range loc s tgt n)
      | Ctypes.Tfloat Ctypes.Fsingle, Vint n ->
          Vfloat (round_single (float_of_int n))
      | Ctypes.Tfloat Ctypes.Fdouble, Vint n -> Vfloat (float_of_int n)
      | Ctypes.Tfloat Ctypes.Fsingle, Vfloat f ->
          Vfloat (check_float loc s (round_single f))
      | Ctypes.Tfloat Ctypes.Fdouble, Vfloat f -> Vfloat (check_float loc s f)
      | _ -> raise (Runtime_error (Invalid_op, loc)))
  | Eunop (op, a) -> (
      let v = eval_expr st a in
      match (op, v) with
      | Neg, Vint n -> Vint (check_int_range loc e.ety tgt (-n))
      | Neg, Vfloat f -> Vfloat (-.f)
      | Bnot, Vint n -> Vint (check_int_range loc e.ety tgt (lnot n))
      | Lnot, v -> Vint (if truth v then 0 else 1)
      | Fabs, Vfloat f -> Vfloat (Float.abs f)
      | Fabs, Vint n -> Vfloat (Float.abs (float_of_int n))
      | Sqrt, v ->
          let f = as_float loc v in
          if f < 0.0 then raise (Runtime_error (Invalid_op, loc));
          let r = sqrt f in
          let r = if e.ety = Ctypes.Tfloat Ctypes.Fsingle then round_single r else r in
          Vfloat r
      | _ -> raise (Runtime_error (Invalid_op, loc)))
  | Ebinop (op, a, b) -> (
      match op with
      | Land ->
          if truth (eval_expr st a) then
            Vint (if truth (eval_expr st b) then 1 else 0)
          else Vint 0
      | Lor ->
          if truth (eval_expr st a) then Vint 1
          else Vint (if truth (eval_expr st b) then 1 else 0)
      | _ -> (
          let va = eval_expr st a in
          let vb = eval_expr st b in
          match e.ety with
          | Ctypes.Tint _ when (match op with
                                | Lt | Gt | Le | Ge | Eq | Ne -> false
                                | _ -> true) -> (
              let x = as_int loc va and y = as_int loc vb in
              let r =
                match op with
                | Add -> x + y
                | Sub -> x - y
                | Mul -> x * y
                | Div ->
                    if y = 0 then raise (Runtime_error (Div_by_zero, loc));
                    x / y
                | Mod ->
                    if y = 0 then raise (Runtime_error (Div_by_zero, loc));
                    x mod y
                | Shl ->
                    if y < 0 || y > 31 then
                      raise (Runtime_error (Shift_range, loc));
                    x lsl y
                | Shr ->
                    if y < 0 || y > 31 then
                      raise (Runtime_error (Shift_range, loc));
                    x asr y
                | Band -> x land y
                | Bor -> x lor y
                | Bxor -> x lxor y
                | _ -> assert false
              in
              Vint (check_int_range loc e.ety tgt r))
          | Ctypes.Tfloat k -> (
              let x = as_float loc va and y = as_float loc vb in
              let r =
                match op with
                | Add -> x +. y
                | Sub -> x -. y
                | Mul -> x *. y
                | Div ->
                    if y = 0.0 then raise (Runtime_error (Div_by_zero, loc));
                    x /. y
                | _ -> assert false
              in
              let r = if k = Ctypes.Fsingle then round_single r else r in
              Vfloat (check_float loc e.ety r))
          | _ -> (
              (* comparisons *)
              let cmp =
                match (va, vb) with
                | Vint x, Vint y -> Int.compare x y
                | _ -> Float.compare (as_float loc va) (as_float loc vb)
              in
              let r =
                match op with
                | Lt -> cmp < 0
                | Gt -> cmp > 0
                | Le -> cmp <= 0
                | Ge -> cmp >= 0
                | Eq -> cmp = 0
                | Ne -> cmp <> 0
                | _ -> assert false
              in
              Vint (if r then 1 else 0))))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec exec_stmt st (s : stmt) : unit =
  (match st.on_stmt with None -> () | Some f -> f st);
  match s.sdesc with
  | Sskip -> ()
  | Slocal (v, init) ->
      let value =
        match init with
        | Some e -> eval_expr st e
        | None -> zero_value st.prog.p_structs v.v_ty
      in
      Hashtbl.replace (current_frame st) v.v_id (ref value)
  | Sassign (lv, e) ->
      let v = eval_expr st e in
      (resolve_lval st lv).rset v
  | Sif (c, a, b) ->
      if truth (eval_expr st c) then exec_block st a else exec_block st b
  | Swhile (_, c, body) -> (
      let guard () =
        (* a guard re-evaluation is an atomic step of its own, so the
           interleaver can switch tasks even on empty-body loops *)
        (match st.on_stmt with None -> () | Some f -> f st);
        truth (eval_expr st c)
      in
      try
        while guard () do
          try exec_block st body with Cont -> ()
        done
      with Brk -> ())
  | Sbreak -> raise Brk
  | Scontinue -> raise Cont
  | Sreturn e -> raise (Ret (Option.map (eval_expr st) e))
  | Swait ->
      st.clock <- st.clock + 1;
      Option.iter (fun f -> f st) st.on_tick;
      if st.clock >= st.max_ticks then raise Stop_execution
  | Sassert e ->
      if not (truth (eval_expr st e)) then
        raise (Runtime_error (Assert_failure, s.sloc))
  | Sassume e ->
      (* trusted: in the concrete world we simply check it holds, treating
         a violated assumption as a stop rather than an error *)
      if not (truth (eval_expr st e)) then raise Stop_execution
  | Scall (ret, fname, args) -> (
      match find_fun st.prog fname with
      | None -> raise (Runtime_error (Invalid_op, s.sloc))
      | Some fd ->
          (* evaluate arguments in target order *)
          let eval_arg (p : param) (a : arg) : int * value =
            match (p, a) with
            | Pval v, Aval e -> (v.v_id, eval_expr st e)
            | Pref v, Aref lv -> (v.v_id, Vref (resolve_lval st lv))
            | _ -> raise (Runtime_error (Invalid_op, s.sloc))
          in
          let bindings = List.map2 eval_arg fd.fd_params args in
          let frame = Hashtbl.create 8 in
          List.iter (fun (id, v) -> Hashtbl.replace frame id (ref v)) bindings;
          st.frames <- frame :: st.frames;
          let result =
            match exec_block st fd.fd_body with
            | () -> None
            | exception Ret v -> v
          in
          st.frames <- List.tl st.frames;
          (match (ret, result) with
          | Some dst, Some v ->
              Hashtbl.replace (current_frame st) dst.v_id (ref v)
          | Some dst, None ->
              Hashtbl.replace (current_frame st) dst.v_id
                (ref (zero_value st.prog.p_structs dst.v_ty))
          | None, _ -> ()))

and exec_block st (b : block) : unit = List.iter (exec_stmt st) b

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Outcome of a concrete run. *)
type outcome =
  | Finished           (** main returned or max ticks reached *)
  | Error of error_kind * Loc.t

(** Run the program concretely.  [input] supplies a value for each
    volatile read; [max_ticks] bounds the synchronous loop (the paper's
    "maximal execution time", Sect. 4).  [on_tick] is called after each
    clock tick with the interpreter state. *)
let run ?(max_ticks = 1000) ?on_tick
    ?(input = fun spec -> (spec.in_lo +. spec.in_hi) /. 2.0) (p : program) :
    outcome =
  let st =
    {
      prog = p;
      store = Hashtbl.create 256;
      frames = [ Hashtbl.create 8 ];
      input;
      clock = 0;
      max_ticks;
      on_tick = None;
      on_stmt = None;
    }
  in
  let st = match on_tick with None -> st | Some f -> { st with on_tick = Some (fun s -> f s) } in
  (* initialize globals *)
  List.iter
    (fun (v, init) ->
      Hashtbl.replace st.store v.v_id
        (ref (value_of_init p.p_structs v.v_ty init)))
    p.p_globals;
  match find_fun p p.p_main with
  | None -> Error (Invalid_op, Loc.dummy)
  | Some fd -> (
      try
        (try exec_block st fd.fd_body with Ret _ -> ());
        Finished
      with
      | Stop_execution -> Finished
      | Runtime_error (k, l) -> Error (k, l))

(* ------------------------------------------------------------------ *)
(* Multi-task interleaved execution                                     *)
(* ------------------------------------------------------------------ *)

(* Sequentially-consistent interleaving semantics for N tasks sharing
   the globals, with statement-level atomicity: expressions of the IR
   are pure, so one statement is one atomic step and every interleaving
   is a sequence of whole statements.  Each task runs as an effect-
   handler fiber that performs [Yield] at statement boundaries; a
   caller-supplied scheduler picks which live task executes the next
   statement.  This is the concrete ground truth the differential
   oracle of the interference fixpoint tests against. *)

type _ Effect.t += Yield : unit Effect.t

type fiber =
  | Not_started of (unit -> unit)
  | Suspended of (unit, fiber) Effect.Deep.continuation
  | Done

let run_interleaved ?(max_ticks = 1000)
    ?(input = fun spec -> (spec.in_lo +. spec.in_hi) /. 2.0)
    ~(schedule : live:int -> int) ~(tasks : string list) (p : program) :
    outcome =
  let store = Hashtbl.create 256 in
  List.iter
    (fun (v, init) ->
      Hashtbl.replace store v.v_id
        (ref (value_of_init p.p_structs v.v_ty init)))
    p.p_globals;
  (* one interpreter state per task: shared global store, private call
     frames and a private tick counter *)
  let mk_task name =
    match find_fun p name with
    | None -> invalid_arg ("run_interleaved: no such task: " ^ name)
    | Some fd ->
        let st =
          {
            prog = p;
            store;
            frames = [ Hashtbl.create 8 ];
            input;
            clock = 0;
            max_ticks;
            on_tick = None;
            on_stmt = Some (fun _ -> Effect.perform Yield);
          }
        in
        Not_started
          (fun () ->
            try exec_block st fd.fd_body with Ret _ | Stop_execution -> ())
  in
  let fibers = Array.of_list (List.map mk_task tasks) in
  let handler : (unit, fiber) Effect.Deep.handler =
    {
      retc = (fun () -> Done);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, fiber) Effect.Deep.continuation) -> Suspended k)
          | _ -> None);
    }
  in
  let live () =
    Array.to_list fibers
    |> List.mapi (fun i f -> (i, f))
    |> List.filter_map (fun (i, f) ->
           match f with Done -> None | _ -> Some i)
  in
  try
    let rec loop () =
      match live () with
      | [] -> Finished
      | alive ->
          let n = List.length alive in
          let pick = List.nth alive (abs (schedule ~live:n) mod n) in
          fibers.(pick) <-
            (match fibers.(pick) with
            | Not_started f -> Effect.Deep.match_with f () handler
            | Suspended k -> Effect.Deep.continue k ()
            | Done -> assert false);
          loop ()
    in
    loop ()
  with Runtime_error (k, l) -> Error (k, l)

(** Read a global scalar after/during a run (testing helper). *)
let read_global_scalar st (name : string) : value option =
  let v =
    List.find_opt (fun (v, _) -> v.v_name = name) st.prog.p_globals
  in
  Option.map (fun (v, _) -> !(find_storage st v)) v
