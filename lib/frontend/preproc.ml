(** A standard C preprocessor for the analyzed family (Sect. 5.1: "the
    source code is first preprocessed using a standard C preprocessor").

    Supports: [#include "file"], object-like and function-like [#define],
    [#undef], [#ifdef]/[#ifndef]/[#if]/[#elif]/[#else]/[#endif] with integer
    constant expressions and [defined], and passes [#line] markers through so
    the lexer reports original source locations.

    The output is a single flattened source string with line markers. *)

exception Error of string * Loc.t

type macro =
  | Object of string                    (** replacement text *)
  | Function of string list * string    (** parameters, replacement text *)

type env = {
  mutable macros : (string * macro) list;
  include_paths : string list;
  read_file : string -> string option;
      (** file loader; abstracted for tests and for in-memory "files" *)
}

let make_env ?(include_paths = []) ?(read_file = fun _ -> None) () =
  {
    macros = [ ("__ASTREE__", Object "1") ];
    include_paths;
    read_file;
  }

let define env name macro =
  env.macros <- (name, macro) :: List.remove_assoc name env.macros

let undefine env name = env.macros <- List.remove_assoc name env.macros

let is_defined env name = List.mem_assoc name env.macros

(* ------------------------------------------------------------------ *)
(* Word-level scanning helpers                                         *)
(* ------------------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_ident_start c = is_ident_char c && not (c >= '0' && c <= '9')

(* Split a line into alternating non-identifier / identifier chunks and
   expand macros, with a recursion guard on currently-expanding names. *)
let rec expand_line env ~loc ~active (line : string) : string =
  let n = String.length line in
  let buf = Buffer.create (n + 16) in
  let i = ref 0 in
  let in_string = ref false in
  let in_char = ref false in
  while !i < n do
    let c = line.[!i] in
    if !in_string then begin
      Buffer.add_char buf c;
      if c = '\\' && !i + 1 < n then begin
        Buffer.add_char buf line.[!i + 1];
        incr i
      end
      else if c = '"' then in_string := false;
      incr i
    end
    else if !in_char then begin
      Buffer.add_char buf c;
      if c = '\\' && !i + 1 < n then begin
        Buffer.add_char buf line.[!i + 1];
        incr i
      end
      else if c = '\'' then in_char := false;
      incr i
    end
    else if c = '"' then begin
      in_string := true;
      Buffer.add_char buf c;
      incr i
    end
    else if c = '\'' then begin
      in_char := true;
      Buffer.add_char buf c;
      incr i
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char line.[!i] do incr i done;
      let id = String.sub line start (!i - start) in
      if List.mem id active then Buffer.add_string buf id
      else
        match List.assoc_opt id env.macros with
        | Some (Object body) ->
            Buffer.add_string buf
              (expand_line env ~loc ~active:(id :: active) body)
        | Some (Function (params, body)) ->
            (* require '(' possibly after spaces *)
            let j = ref !i in
            while !j < n && (line.[!j] = ' ' || line.[!j] = '\t') do incr j done;
            if !j < n && line.[!j] = '(' then begin
              (* parse comma-separated arguments with paren balancing *)
              let args = ref [] in
              let depth = ref 1 in
              let k = ref (!j + 1) in
              let abuf = Buffer.create 16 in
              while !depth > 0 do
                if !k >= n then
                  raise (Error ("unterminated macro call of " ^ id, loc));
                let ch = line.[!k] in
                (match ch with
                | '(' -> incr depth; Buffer.add_char abuf ch
                | ')' ->
                    decr depth;
                    if !depth > 0 then Buffer.add_char abuf ch
                | ',' when !depth = 1 ->
                    args := Buffer.contents abuf :: !args;
                    Buffer.clear abuf
                | ch -> Buffer.add_char abuf ch);
                incr k
              done;
              args := Buffer.contents abuf :: !args;
              let args = List.rev_map String.trim !args in
              let args =
                if args = [ "" ] && params = [] then [] else args
              in
              if List.length args <> List.length params then
                raise
                  (Error
                     ( Fmt.str "macro %s expects %d argument(s), got %d" id
                         (List.length params) (List.length args),
                       loc ));
              (* expand arguments first (call-by-value expansion) *)
              let args = List.map (expand_line env ~loc ~active) args in
              (* substitute parameters in body *)
              let body' =
                subst_params params args body
              in
              Buffer.add_string buf
                (expand_line env ~loc ~active:(id :: active) body');
              i := !k
            end
            else Buffer.add_string buf id
        | None -> Buffer.add_string buf id
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

and subst_params params args body =
  let n = String.length body in
  let buf = Buffer.create (n + 16) in
  let i = ref 0 in
  while !i < n do
    let c = body.[!i] in
    if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char body.[!i] do incr i done;
      let id = String.sub body start (!i - start) in
      match List.find_index (String.equal id) params with
      | Some k -> Buffer.add_string buf (List.nth args k)
      | None -> Buffer.add_string buf id
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* #if expression evaluation                                           *)
(* ------------------------------------------------------------------ *)

(* Replace defined(X) / defined X by 1 or 0, then expand macros, then
   evaluate as an integer expression. *)
let eval_condition env ~loc (text : string) : bool =
  let text =
    let buf = Buffer.create (String.length text) in
    let n = String.length text in
    let i = ref 0 in
    while !i < n do
      if
        !i + 7 <= n
        && String.sub text !i 7 = "defined"
        && (!i + 7 = n || not (is_ident_char text.[!i + 7]))
      then begin
        i := !i + 7;
        while !i < n && (text.[!i] = ' ' || text.[!i] = '\t') do incr i done;
        let parens = !i < n && text.[!i] = '(' in
        if parens then incr i;
        while !i < n && (text.[!i] = ' ' || text.[!i] = '\t') do incr i done;
        let start = !i in
        while !i < n && is_ident_char text.[!i] do incr i done;
        let id = String.sub text start (!i - start) in
        while !i < n && (text.[!i] = ' ' || text.[!i] = '\t') do incr i done;
        if parens then
          if !i < n && text.[!i] = ')' then incr i
          else raise (Error ("expected ) after defined(", loc));
        Buffer.add_string buf (if is_defined env id then " 1 " else " 0 ")
      end
      else begin
        Buffer.add_char buf text.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let text = expand_line env ~loc ~active:[] text in
  (* remaining identifiers evaluate to 0, as in C *)
  let text =
    let buf = Buffer.create (String.length text) in
    let n = String.length text in
    let i = ref 0 in
    while !i < n do
      if is_ident_start text.[!i] then begin
        while !i < n && is_ident_char text.[!i] do incr i done;
        Buffer.add_string buf " 0 "
      end
      else begin
        Buffer.add_char buf text.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  (* tiny recursive-descent integer expression evaluator *)
  let toks = Lexer.tokenize ~file:"<#if>" text in
  let toks = ref toks in
  let peek () = match !toks with t :: _ -> t.Token.tok | [] -> Token.EOF in
  let next () =
    match !toks with
    | t :: rest ->
        toks := rest;
        t.Token.tok
    | [] -> Token.EOF
  in
  let fail () = raise (Error ("invalid #if expression", loc)) in
  let rec primary () =
    match next () with
    | Token.INT_LIT (n, _, _) -> n
    | Token.CHAR_LIT c -> c
    | Token.MINUS -> -primary ()
    | Token.PLUS -> primary ()
    | Token.BANG -> if primary () = 0 then 1 else 0
    | Token.TILDE -> lnot (primary ())
    | Token.LPAREN ->
        let v = ternary () in
        if next () <> Token.RPAREN then fail ();
        v
    | _ -> fail ()
  and mul () =
    let rec go acc =
      match peek () with
      | Token.STAR -> ignore (next ()); go (acc * primary ())
      | Token.SLASH ->
          ignore (next ());
          let d = primary () in
          if d = 0 then fail () else go (acc / d)
      | Token.PERCENT ->
          ignore (next ());
          let d = primary () in
          if d = 0 then fail () else go (acc mod d)
      | _ -> acc
    in
    go (primary ())
  and add () =
    let rec go acc =
      match peek () with
      | Token.PLUS -> ignore (next ()); go (acc + mul ())
      | Token.MINUS -> ignore (next ()); go (acc - mul ())
      | _ -> acc
    in
    go (mul ())
  and shift () =
    let rec go acc =
      match peek () with
      | Token.LSHIFT -> ignore (next ()); go (acc lsl add ())
      | Token.RSHIFT -> ignore (next ()); go (acc asr add ())
      | _ -> acc
    in
    go (add ())
  and rel () =
    let rec go acc =
      match peek () with
      | Token.LT -> ignore (next ()); go (if acc < shift () then 1 else 0)
      | Token.GT -> ignore (next ()); go (if acc > shift () then 1 else 0)
      | Token.LE -> ignore (next ()); go (if acc <= shift () then 1 else 0)
      | Token.GE -> ignore (next ()); go (if acc >= shift () then 1 else 0)
      | _ -> acc
    in
    go (shift ())
  and eq () =
    let rec go acc =
      match peek () with
      | Token.EQEQ -> ignore (next ()); go (if acc = rel () then 1 else 0)
      | Token.NEQ -> ignore (next ()); go (if acc <> rel () then 1 else 0)
      | _ -> acc
    in
    go (rel ())
  and band () =
    let rec go acc =
      match peek () with
      | Token.AMP -> ignore (next ()); go (acc land eq ())
      | _ -> acc
    in
    go (eq ())
  and bxor () =
    let rec go acc =
      match peek () with
      | Token.CARET -> ignore (next ()); go (acc lxor band ())
      | _ -> acc
    in
    go (band ())
  and bor () =
    let rec go acc =
      match peek () with
      | Token.BAR -> ignore (next ()); go (acc lor bxor ())
      | _ -> acc
    in
    go (bxor ())
  and land_ () =
    let rec go acc =
      match peek () with
      | Token.ANDAND ->
          ignore (next ());
          let r = bor () in
          go (if acc <> 0 && r <> 0 then 1 else 0)
      | _ -> acc
    in
    go (bor ())
  and lor_ () =
    let rec go acc =
      match peek () with
      | Token.BARBAR ->
          ignore (next ());
          let r = land_ () in
          go (if acc <> 0 || r <> 0 then 1 else 0)
      | _ -> acc
    in
    go (land_ ())
  and ternary () =
    let c = lor_ () in
    match peek () with
    | Token.QUESTION ->
        ignore (next ());
        let a = ternary () in
        if next () <> Token.COLON then fail ();
        let b = ternary () in
        if c <> 0 then a else b
    | _ -> c
  in
  ternary () <> 0

(* ------------------------------------------------------------------ *)
(* Directive parsing                                                   *)
(* ------------------------------------------------------------------ *)

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\r') do incr i done;
  while !j >= !i && (s.[!j] = ' ' || s.[!j] = '\t' || s.[!j] = '\r') do decr j done;
  String.sub s !i (!j - !i + 1)

(* Parse "#define NAME..." after the word define. *)
let parse_define env ~loc rest =
  let rest = strip rest in
  let n = String.length rest in
  let i = ref 0 in
  while !i < n && is_ident_char rest.[!i] do incr i done;
  if !i = 0 then raise (Error ("#define: missing macro name", loc));
  let name = String.sub rest 0 !i in
  if !i < n && rest.[!i] = '(' then begin
    (* function-like *)
    let j = ref (!i + 1) in
    let params = ref [] in
    let pbuf = Buffer.create 8 in
    let stop = ref false in
    while not !stop do
      if !j >= n then raise (Error ("#define: unterminated parameter list", loc));
      (match rest.[!j] with
      | ')' ->
          let p = strip (Buffer.contents pbuf) in
          if p <> "" then params := p :: !params;
          stop := true
      | ',' ->
          params := strip (Buffer.contents pbuf) :: !params;
          Buffer.clear pbuf
      | c -> Buffer.add_char pbuf c);
      incr j
    done;
    let body = strip (String.sub rest !j (n - !j)) in
    define env name (Function (List.rev !params, body))
  end
  else
    let body = strip (String.sub rest !i (n - !i)) in
    define env name (Object body)

(* Conditional-inclusion stack entry: are we currently emitting, and has
   any branch of this #if chain already been taken? *)
type cond = { mutable emitting : bool; mutable taken : bool; parent_emitting : bool }

(** Preprocess [src] (named [file] for diagnostics), returning flattened
    source text with line markers. *)
let rec process env ~file ~(depth : int) (src : string) : string =
  if depth > 32 then
    raise (Error ("#include nesting too deep", Loc.make ~file ~line:1 ~col:1));
  let out = Buffer.create (String.length src + 256) in
  Buffer.add_string out (Fmt.str "# %d %S\n" 1 file);
  let lines = String.split_on_char '\n' src in
  let stack : cond list ref = ref [] in
  let emitting () =
    match !stack with [] -> true | c :: _ -> c.emitting
  in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let loc = Loc.make ~file ~line:lineno ~col:1 in
      let sline = strip line in
      if String.length sline > 0 && sline.[0] = '#' then begin
        let body = strip (String.sub sline 1 (String.length sline - 1)) in
        let directive, rest =
          let n = String.length body in
          let i = ref 0 in
          while !i < n && is_ident_char body.[!i] do incr i done;
          (String.sub body 0 !i, String.sub body !i (n - !i))
        in
        match directive with
        | "define" when emitting () -> parse_define env ~loc rest
        | "undef" when emitting () -> undefine env (strip rest)
        | "include" when emitting () ->
            let rest = strip rest in
            let fname =
              if String.length rest >= 2 && rest.[0] = '"' then
                String.sub rest 1 (String.index_from rest 1 '"' - 1)
              else if String.length rest >= 2 && rest.[0] = '<' then
                String.sub rest 1 (String.index_from rest 1 '>' - 1)
              else raise (Error ("#include: expected \"file\"", loc))
            in
            let content =
              let rec try_paths = function
                | [] -> env.read_file fname
                | p :: ps -> (
                    match env.read_file (Filename.concat p fname) with
                    | Some c -> Some c
                    | None -> try_paths ps)
              in
              match try_paths env.include_paths with
              | Some c -> Some c
              | None -> env.read_file fname
            in
            (match content with
            | None -> raise (Error ("#include: cannot find " ^ fname, loc))
            | Some c ->
                Buffer.add_string out (process env ~file:fname ~depth:(depth + 1) c);
                Buffer.add_string out (Fmt.str "# %d %S\n" (lineno + 1) file))
        | "ifdef" ->
            let e = emitting () in
            let v = e && is_defined env (strip rest) in
            stack := { emitting = v; taken = v; parent_emitting = e } :: !stack
        | "ifndef" ->
            let e = emitting () in
            let v = e && not (is_defined env (strip rest)) in
            stack := { emitting = v; taken = v; parent_emitting = e } :: !stack
        | "if" ->
            let e = emitting () in
            let v = e && eval_condition env ~loc rest in
            stack := { emitting = v; taken = v; parent_emitting = e } :: !stack
        | "elif" -> (
            match !stack with
            | [] -> raise (Error ("#elif without #if", loc))
            | c :: _ ->
                if c.taken then c.emitting <- false
                else begin
                  let v = c.parent_emitting && eval_condition env ~loc rest in
                  c.emitting <- v;
                  c.taken <- v
                end)
        | "else" -> (
            match !stack with
            | [] -> raise (Error ("#else without #if", loc))
            | c :: _ ->
                c.emitting <- (c.parent_emitting && not c.taken);
                c.taken <- true)
        | "endif" -> (
            match !stack with
            | [] -> raise (Error ("#endif without #if", loc))
            | _ :: rest -> stack := rest)
        | "line" | "" -> if emitting () then Buffer.add_string out (line ^ "\n")
        | "pragma" -> () (* ignored *)
        | "error" ->
            if emitting () then raise (Error ("#error" ^ rest, loc))
        | d ->
            if emitting () then
              raise (Error ("unknown preprocessor directive #" ^ d, loc))
      end
      else if emitting () then begin
        Buffer.add_string out (expand_line env ~loc ~active:[] line);
        Buffer.add_char out '\n'
      end
      else Buffer.add_char out '\n' (* keep line numbering *))
    lines;
  (match !stack with
  | [] -> ()
  | _ ->
      raise
        (Error ("unterminated #if", Loc.make ~file ~line:(List.length lines) ~col:1)));
  Buffer.contents out

(** Entry point: preprocess a source string. *)
let run ?(env = make_env ()) ~file src = process env ~file ~depth:0 src

(* ------------------------------------------------------------------ *)
(* Analyzer directive comments                                         *)
(* ------------------------------------------------------------------ *)

(** Collect, in document order, the names listed by every "/* [tag] f g
    */" marker in [src].  Any amount of whitespace — spaces, tabs,
    newlines — may follow the tag and separate the names; the list ends
    at the closing "*/". *)
let scan_markers ~(tag : string) (src : string) : string list =
  let tlen = String.length tag in
  let n = String.length src in
  let is_ws c = c = ' ' || c = '\t' || c = '\r' || c = '\n' in
  let at_close j = j + 1 < n && src.[j] = '*' && src.[j + 1] = '/' in
  let acc = ref [] in
  let i = ref 0 in
  while !i + tlen <= n do
    if String.sub src !i tlen = tag then begin
      let j = ref (!i + tlen) in
      let stop = ref false in
      while not !stop do
        while !j < n && is_ws src.[!j] do incr j done;
        if !j >= n || at_close !j then stop := true
        else begin
          let start = !j in
          while !j < n && (not (is_ws src.[!j])) && not (at_close !j) do
            incr j
          done;
          acc := String.sub src start (!j - start) :: !acc
        end
      done;
      i := !j
    end
    else incr i
  done;
  List.rev !acc

(** Function names listed by "/* astree-partition: f g */" markers,
    sorted and deduplicated. *)
let partition_markers (src : string) : string list =
  scan_markers ~tag:"astree-partition:" src |> List.sort_uniq String.compare

(** Task entry points listed by "/* astree-task: t u */" markers, in
    document order with duplicates removed (the first occurrence wins):
    unlike partition markers the order is meaningful — it fixes the
    task numbering of the interference analysis and its reports. *)
let task_markers (src : string) : string list =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun name ->
      if Hashtbl.mem seen name then false
      else begin
        Hashtbl.add seen name ();
        true
      end)
    (scan_markers ~tag:"astree-task:" src)
