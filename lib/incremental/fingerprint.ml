(** Content-addressed fingerprints of the typed IR.

    A function's fingerprint is a stable hash of everything that can
    influence its analysis: its own structure and types, the transitive
    fingerprints of its callees (polyvariant inlining re-analyzes them
    in place, Sect. 5.4), and the analysis context — configuration,
    target, struct layouts, volatile-input ranges and the frozen cell
    numbering that summaries embed.  Source locations and the dense
    [v_id]s are deliberately excluded, so edits that only move code
    around (whitespace, comments) keep every fingerprint, while any
    body edit changes the edited function and all its transitive
    callers, and nothing else. *)

module F = Astree_frontend
module C = Astree_core

(* ------------------------------------------------------------------ *)
(* Token serialization                                                  *)
(* ------------------------------------------------------------------ *)

(* every atom is NUL-terminated so concatenations cannot collide *)
let add_tok buf s =
  Buffer.add_string buf s;
  Buffer.add_char buf '\x00'

let add_int buf n = add_tok buf (string_of_int n)

(* bit-exact: [string_of_float] would collapse distinct constants *)
let add_float buf f = add_tok buf (Int64.to_string (Int64.bits_of_float f))
let add_bool buf b = add_tok buf (if b then "1" else "0")
let add_ty buf ty = add_tok buf (F.Ctypes.to_string ty)
let add_scalar buf s = add_ty buf (F.Ctypes.Tscalar s)

(* the unique name, not the id: ids are dense allocation order and shift
   when unrelated declarations appear, names only when the source does *)
let add_var buf (v : F.Tast.var) =
  add_tok buf v.F.Tast.v_name;
  add_ty buf v.F.Tast.v_ty;
  add_bool buf v.F.Tast.v_volatile;
  add_tok buf
    (match v.F.Tast.v_kind with
    | F.Tast.Kglobal -> "g"
    | F.Tast.Kstatic f -> "s" ^ f
    | F.Tast.Klocal f -> "l" ^ f
    | F.Tast.Kparam f -> "p" ^ f
    | F.Tast.Ktmp -> "t")

let unop_tag : F.Tast.unop -> string = function
  | F.Tast.Neg -> "neg"
  | F.Tast.Bnot -> "bnot"
  | F.Tast.Lnot -> "lnot"
  | F.Tast.Fabs -> "fabs"
  | F.Tast.Sqrt -> "sqrt"

let binop_tag : F.Tast.binop -> string = function
  | F.Tast.Add -> "add" | F.Tast.Sub -> "sub" | F.Tast.Mul -> "mul"
  | F.Tast.Div -> "div" | F.Tast.Mod -> "mod"
  | F.Tast.Shl -> "shl" | F.Tast.Shr -> "shr"
  | F.Tast.Band -> "band" | F.Tast.Bor -> "bor" | F.Tast.Bxor -> "bxor"
  | F.Tast.Land -> "land" | F.Tast.Lor -> "lor"
  | F.Tast.Lt -> "lt" | F.Tast.Gt -> "gt" | F.Tast.Le -> "le"
  | F.Tast.Ge -> "ge" | F.Tast.Eq -> "eq" | F.Tast.Ne -> "ne"

let rec add_lval buf (lv : F.Tast.lval) =
  add_ty buf lv.F.Tast.lty;
  match lv.F.Tast.ldesc with
  | F.Tast.Lvar v ->
      add_tok buf "Lv";
      add_var buf v
  | F.Tast.Lindex (a, i) ->
      add_tok buf "Li";
      add_lval buf a;
      add_expr buf i
  | F.Tast.Lfield (a, f) ->
      add_tok buf "Lf";
      add_lval buf a;
      add_tok buf f
  | F.Tast.Lderef v ->
      add_tok buf "Ld";
      add_var buf v

and add_expr buf (e : F.Tast.expr) =
  add_scalar buf e.F.Tast.ety;
  match e.F.Tast.edesc with
  | F.Tast.Eint n ->
      add_tok buf "Ei";
      add_int buf n
  | F.Tast.Efloat x ->
      add_tok buf "Ef";
      add_float buf x
  | F.Tast.Elval lv ->
      add_tok buf "El";
      add_lval buf lv
  | F.Tast.Eunop (op, a) ->
      add_tok buf "Eu";
      add_tok buf (unop_tag op);
      add_expr buf a
  | F.Tast.Ebinop (op, a, b) ->
      add_tok buf "Eb";
      add_tok buf (binop_tag op);
      add_expr buf a;
      add_expr buf b
  | F.Tast.Ecast (s, a) ->
      add_tok buf "Ec";
      add_scalar buf s;
      add_expr buf a

let add_arg buf = function
  | F.Tast.Aval e ->
      add_tok buf "Av";
      add_expr buf e
  | F.Tast.Aref lv ->
      add_tok buf "Ar";
      add_lval buf lv

(* [calls] collects callee names for the closure fold; [loop_id] is part
   of the structure because per-loop parameters (unrolling overrides)
   and the invariant table are keyed by it *)
let rec add_stmt buf calls (s : F.Tast.stmt) =
  match s.F.Tast.sdesc with
  | F.Tast.Sassign (lv, e) ->
      add_tok buf "Sa";
      add_lval buf lv;
      add_expr buf e
  | F.Tast.Scall (dst, fname, args) ->
      add_tok buf "Sc";
      (match dst with
      | None -> add_tok buf "-"
      | Some v -> add_var buf v);
      add_tok buf fname;
      calls := fname :: !calls;
      List.iter (add_arg buf) args
  | F.Tast.Sif (c, a, b) ->
      add_tok buf "Si";
      add_expr buf c;
      add_block buf calls a;
      add_tok buf "/";
      add_block buf calls b
  | F.Tast.Swhile (li, c, b) ->
      add_tok buf "Sw";
      add_int buf li.F.Tast.loop_id;
      add_expr buf c;
      add_block buf calls b
  | F.Tast.Sreturn None -> add_tok buf "Sr-"
  | F.Tast.Sreturn (Some e) ->
      add_tok buf "Sr";
      add_expr buf e
  | F.Tast.Sbreak -> add_tok buf "Sb"
  | F.Tast.Scontinue -> add_tok buf "Sk"
  | F.Tast.Swait -> add_tok buf "Sg"
  | F.Tast.Sassert e ->
      add_tok buf "St";
      add_expr buf e
  | F.Tast.Sassume e ->
      add_tok buf "Su";
      add_expr buf e
  | F.Tast.Sskip -> add_tok buf "Ss"
  | F.Tast.Slocal (v, init) -> (
      add_tok buf "Sl";
      add_var buf v;
      match init with
      | None -> add_tok buf "-"
      | Some e -> add_expr buf e)

and add_block buf calls (b : F.Tast.block) =
  add_int buf (List.length b);
  List.iter (add_stmt buf calls) b

(* ------------------------------------------------------------------ *)
(* Configuration digest                                                 *)
(* ------------------------------------------------------------------ *)

(** Digest of every result-affecting configuration field.  [jobs],
    [par_backend] and [summary_cache] are excluded — all three are
    result-neutral by construction, so a [-j 1] warm run may reuse a
    [-j 4] store (from either worker backend) and vice versa.  [timeout] and [max_mem_mb] are likewise excluded: the
    budget never changes a run that completes, only whether a coarser
    configuration (whose own fingerprint differs via
    [shed_packs_above]) is tried instead.  Written as one explicit
    tuple so adding a [Config] field breaks this function until the
    field is classified. *)
let config_digest (cfg : C.Config.t) : string =
  let open C.Config in
  let repr =
    ( ( cfg.use_clocked,
        cfg.use_octagons,
        cfg.use_ellipsoids,
        cfg.use_decision_trees,
        cfg.use_linearization ),
      ( cfg.widening_thresholds,
        cfg.delay_widening,
        cfg.widening_fairness,
        cfg.loop_unroll,
        cfg.loop_unroll_overrides,
        cfg.narrowing_iterations,
        cfg.float_iteration_epsilon,
        cfg.partitioned_functions,
        cfg.max_partitions ),
      ( cfg.max_octagon_pack,
        cfg.max_dtree_bools,
        cfg.max_dtree_nums,
        cfg.useful_packs_only,
        cfg.max_clock,
        cfg.expand_array_max,
        cfg.naive_environments,
        cfg.shed_packs_above ),
      (* result-affecting: conc_shared changes the packing, and the rely
         digest identifies the interference environment of a per-task
         run — summaries must not cross interference rounds whose rely
         sets differ *)
      (cfg.conc_shared, cfg.conc_rely_digest) )
  in
  Digest.to_hex (Digest.string (Marshal.to_string repr [ Marshal.No_sharing ]))

(* ------------------------------------------------------------------ *)
(* Context digest                                                       *)
(* ------------------------------------------------------------------ *)

(** Digest of the analysis context a summary implicitly depends on:
    configuration, target machine, struct layouts, volatile-input
    ranges, entry point, and the frozen cell numbering.  Summaries embed
    dense cell ids (in environments and relational packs), so two runs
    may only exchange summaries when id [n] denotes the same cell of the
    same variable in both — which is exactly what hashing the pre-filled
    interner in id order pins down. *)
let context_digest (a : C.Transfer.actx) : string =
  let p = a.C.Transfer.prog in
  let buf = Buffer.create 4096 in
  add_tok buf (config_digest a.C.Transfer.cfg);
  let t = p.F.Tast.p_target in
  add_int buf t.F.Ctypes.size_char;
  add_int buf t.F.Ctypes.size_short;
  add_int buf t.F.Ctypes.size_int;
  add_int buf t.F.Ctypes.size_long;
  add_bool buf t.F.Ctypes.args_left_to_right;
  add_bool buf t.F.Ctypes.char_signed;
  List.iter
    (fun (name, (sd : F.Ctypes.struct_def)) ->
      add_tok buf name;
      List.iter
        (fun (f, ty) ->
          add_tok buf f;
          add_ty buf ty)
        sd.F.Ctypes.fields)
    p.F.Tast.p_structs;
  List.iter
    (fun (is : F.Tast.input_spec) ->
      add_tok buf is.F.Tast.in_var.F.Tast.v_name;
      add_float buf is.F.Tast.in_lo;
      add_float buf is.F.Tast.in_hi)
    p.F.Tast.p_inputs;
  add_tok buf p.F.Tast.p_main;
  let n = C.Cell.count a.C.Transfer.intern in
  add_int buf n;
  for id = 0 to n - 1 do
    let c = C.Cell.of_id a.C.Transfer.intern id in
    add_int buf c.C.Cell.root.F.Tast.v_id;
    add_tok buf (C.Cell.to_string c);
    add_scalar buf c.C.Cell.cty;
    add_bool buf c.C.Cell.weak
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Function and program fingerprints                                    *)
(* ------------------------------------------------------------------ *)

type t = {
  fp_context : string;
  fp_funs : (string, string option) Hashtbl.t;
      (** per-function fingerprint; [None] = not cacheable (recursive) *)
  fp_program : string;
}

let context (fps : t) : string = fps.fp_context
let program (fps : t) : string = fps.fp_program

let fn (fps : t) (fname : string) : string option =
  match Hashtbl.find_opt fps.fp_funs fname with
  | Some r -> r
  | None -> None

(** Local digest of one function — its own structure only — and its
    callee names. *)
let local_digest (fd : F.Tast.fundef) : string * string list =
  let buf = Buffer.create 1024 in
  let calls = ref [] in
  add_tok buf fd.F.Tast.fd_name;
  add_ty buf fd.F.Tast.fd_ret;
  List.iter
    (fun (p : F.Tast.param) ->
      match p with
      | F.Tast.Pval v ->
          add_tok buf "Pv";
          add_var buf v
      | F.Tast.Pref v ->
          add_tok buf "Pr";
          add_var buf v)
    fd.F.Tast.fd_params;
  add_block buf calls fd.F.Tast.fd_body;
  ( Digest.to_hex (Digest.string (Buffer.contents buf)),
    List.sort_uniq String.compare !calls )

(** Fingerprint every function of a pre-filled context.  The closure
    fold makes any body edit propagate to all transitive callers: a
    caller's fingerprint folds its callees' fingerprints, recursively.
    Functions on a call cycle get [None] (the analyzer rejects recursion
    anyway, Sect. 4). *)
let of_actx (a : C.Transfer.actx) : t =
  let p = a.C.Transfer.prog in
  let ctx = context_digest a in
  let locals = Hashtbl.create 64 in
  List.iter
    (fun (fname, fd) -> Hashtbl.replace locals fname (local_digest fd))
    p.F.Tast.p_funs;
  let fp_funs = Hashtbl.create 64 in
  let rec fp (visiting : string list) (fname : string) : string option =
    match Hashtbl.find_opt fp_funs fname with
    | Some r -> r
    | None ->
        if List.mem fname visiting then None
        else
          let r =
            match Hashtbl.find_opt locals fname with
            | None -> None (* call to an unknown function *)
            | Some (local, callees) ->
                let subs = List.map (fp (fname :: visiting)) callees in
                if List.exists Option.is_none subs then None
                else
                  Some
                    (Digest.to_hex
                       (Digest.string
                          (String.concat "\x00"
                             (ctx :: local :: List.filter_map Fun.id subs))))
          in
          Hashtbl.replace fp_funs fname r;
          r
  in
  List.iter (fun (fname, _) -> ignore (fp [] fname)) p.F.Tast.p_funs;
  let pbuf = Buffer.create 256 in
  add_tok pbuf ctx;
  List.iter
    (fun (fname, _) ->
      add_tok pbuf fname;
      (* the local digest always contributes, so the program fingerprint
         distinguishes programs even through uncacheable functions *)
      add_tok pbuf (fst (Hashtbl.find locals fname));
      add_tok pbuf
        (match Hashtbl.find fp_funs fname with Some h -> h | None -> "-"))
    p.F.Tast.p_funs;
  {
    fp_context = ctx;
    fp_funs;
    fp_program = Digest.to_hex (Digest.string (Buffer.contents pbuf));
  }

(** Fingerprint a program under a configuration: builds a throwaway
    context and pre-fills its cells in program order — the same frozen
    numbering every cache-enabled analysis uses. *)
let make (cfg : C.Config.t) (p : F.Tast.program) : t =
  let a = C.Transfer.make_actx cfg p in
  C.Transfer.prefill_cells a;
  of_actx a
