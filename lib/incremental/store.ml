(** On-disk summary store: one file per program fingerprint.

    Each file is a versioned magic header, an MD5 digest of the
    payload, and then the [Marshal]ed payload tagged with the OCaml
    version (marshalling is not stable across compiler versions) and
    the program fingerprint it was saved under.  The digest matters:
    [Marshal] has no internal checksum, so without it a flipped bit in
    a stored summary could deserialize into a *different valid*
    summary and silently poison a warm run.  Writes go through a
    temporary file and an atomic rename, so
    concurrent batch workers and interrupted runs can never leave a
    half-written store.  Loading is strictly best-effort: a missing,
    truncated, corrupt, stale or foreign file yields an empty summary
    list and a warning on stderr — the cache degrades to cold, it never
    fails an analysis. *)

module C = Astree_core
module Faultsim = Astree_robust.Faultsim

(* v3: Alarm.t gained the provenance field (ISSUE 5); v4:
   capture_delta gained cd_itf_writes (multi-task interference).  Both
   changed the Marshal layout of stored summaries — older stores must
   read as foreign and degrade to cold, not crash. *)
let magic = "astree-summary-store v4\n"

type entries = (C.Iterator.summary_key * C.Iterator.summary) array

let file_of ~(dir : string) ~(key : string) : string =
  Filename.concat dir (key ^ ".summaries")

let warn fmt =
  Format.kasprintf (fun s -> prerr_endline ("astree: warning: " ^ s)) fmt

let rec mkdir_p (dir : string) : unit =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_store ~(quiet : bool) ~(dir : string) ~(key : string) :
    (C.Iterator.summary_key * C.Iterator.summary) list =
  let warn fmt =
    if quiet then Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt
    else warn fmt
  in
  let file = file_of ~dir ~key in
  if not (Sys.file_exists file) then []
  else
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let hdr = really_input_string ic (String.length magic) in
          if hdr <> magic then begin
            warn "summary store %s: bad magic, ignored" file;
            []
          end
          else begin
            (* fault injection: behave exactly as a corrupt payload.
               The quiet path (the pre-save merge read) skips the
               injection point so armed fault schedules keep their call
               numbering *)
            if (not quiet) && Faultsim.fires Faultsim.Cache_corrupt then
              failwith "fault injection: corrupt store read";
            let stored_digest =
              really_input_string ic 16 (* Digest.string length *)
            in
            let payload = In_channel.input_all ic in
            if Digest.string payload <> stored_digest then
              failwith "payload digest mismatch";
            let ver, stored_key, (entries : entries) =
              (Marshal.from_string payload 0
                : string * string * entries)
            in
            if ver <> Sys.ocaml_version then begin
              warn "summary store %s: written by OCaml %s, ignored" file ver;
              []
            end
            else if stored_key <> key then begin
              warn "summary store %s: stale program fingerprint, ignored" file;
              []
            end
            else Array.to_list entries
          end)
    with
    | Sys_error msg ->
        warn "summary store %s: %s, ignored" file msg;
        []
    | End_of_file | Failure _ ->
        warn "summary store %s: truncated or corrupt, ignored" file;
        []

let load ~(dir : string) ~(key : string) :
    (C.Iterator.summary_key * C.Iterator.summary) list =
  read_store ~quiet:false ~dir ~key

let save ~(dir : string) ~(key : string)
    (entries : (C.Iterator.summary_key * C.Iterator.summary) list) : unit =
  try
    mkdir_p dir;
    (* merge-on-save: union with whatever is already published under
       this key, keep-ours on collisions (a key pins the exact entry
       state and configuration, so colliding summaries are equal).
       Concurrent writers — daemon workers, batch runs sharing a cache
       directory — then converge toward the union instead of the last
       rename silently dropping the other writer's entries.  The read
       is best-effort and silent: a corrupt incumbent is simply
       replaced. *)
    let entries =
      match read_store ~quiet:true ~dir ~key with
      | [] -> entries
      | existing ->
          let seen = Hashtbl.create (List.length entries) in
          List.iter (fun (k, _) -> Hashtbl.replace seen k ()) entries;
          entries
          @ List.filter (fun (k, _) -> not (Hashtbl.mem seen k)) existing
    in
    let tmp = Filename.temp_file ~temp_dir:dir "summaries" ".tmp" in
    (* any failure between here and the rename (a full disk, an injected
       ENOSPC) must not leave the temporary behind: remove it before
       reporting the write as failed *)
    (try
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           if Faultsim.fires Faultsim.Cache_write then
             raise (Sys_error (tmp ^ ": fault injection: no space left"));
           (* sharing-preserving marshal: summary exit states share most
              of their structure (packs, trees), and expanding it would
              blow the file up by orders of magnitude.  Only
              [entry_digest] needs the canonical No_sharing form; the
              store blob does not. *)
           let payload =
             Marshal.to_string
               (Sys.ocaml_version, key, (Array.of_list entries : entries))
               []
           in
           output_string oc magic;
           output_string oc (Digest.string payload);
           output_string oc payload;
           (* the rename publishes atomically; fsync first so a crash
              right after it cannot leave the published name pointing at
              data the kernel never wrote back *)
           flush oc;
           Unix.fsync (Unix.descr_of_out_channel oc));
       Sys.rename tmp (file_of ~dir ~key)
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e)
  with Sys_error msg | Unix.Unix_error (_, msg, _) ->
    warn "summary store not saved in %s: %s" dir msg

(* ------------------------------------------------------------------ *)
(* Generic versioned blobs (daemon checkpoints)                        *)
(* ------------------------------------------------------------------ *)

let save_blob ~(file : string) ~(magic : string) (v : 'a) : unit =
  try
    mkdir_p (Filename.dirname file);
    let payload = Marshal.to_string (Sys.ocaml_version, v) [] in
    if Faultsim.fires Faultsim.Checkpoint_torn then begin
      (* a torn write: the final name receives the header and only half
         of the payload, with no rename to protect it — exactly what a
         crash inside a non-atomic writer would leave behind.  The
         loader must reject it by digest. *)
      let oc = open_out_bin file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc magic;
          output_string oc (Digest.string payload);
          output_string oc
            (String.sub payload 0 (String.length payload / 2)))
    end
    else begin
      let tmp =
        Filename.temp_file ~temp_dir:(Filename.dirname file)
          (Filename.basename file) ".tmp"
      in
      try
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc magic;
            output_string oc (Digest.string payload);
            output_string oc payload;
            flush oc;
            Unix.fsync (Unix.descr_of_out_channel oc));
        Sys.rename tmp file
      with e ->
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e
    end
  with Sys_error msg | Unix.Unix_error (_, msg, _) ->
    warn "blob %s not saved: %s" file msg

let load_blob ~(file : string) ~(magic : string) : 'a option =
  if not (Sys.file_exists file) then None
  else
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let hdr = really_input_string ic (String.length magic) in
          if hdr <> magic then failwith "bad magic"
          else begin
            let stored_digest = really_input_string ic 16 in
            let payload = In_channel.input_all ic in
            if Digest.string payload <> stored_digest then
              failwith "payload digest mismatch";
            let ver, (v : 'a) =
              (Marshal.from_string payload 0 : string * 'a)
            in
            if ver <> Sys.ocaml_version then failwith "foreign OCaml version"
            else Some v
          end)
    with
    | Sys_error msg ->
        warn "blob %s: %s, ignored" file msg;
        None
    | End_of_file | Failure _ ->
        warn "blob %s: truncated or corrupt, ignored" file;
        None
