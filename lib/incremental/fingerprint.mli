(** Content-addressed fingerprints of the typed IR: a stable hash per
    function covering its structure, types, transitive callees and the
    analysis context, excluding source locations and dense variable ids
    — so whitespace/comment edits keep every fingerprint while a body
    edit invalidates the edited function and its transitive callers. *)

type t

(** Fingerprint every function of [p] under [cfg] (builds a throwaway
    context with the frozen program-order cell numbering). *)
val make : Astree_core.Config.t -> Astree_frontend.Tast.program -> t

(** Fingerprint against an existing, cell-pre-filled context. *)
val of_actx : Astree_core.Transfer.actx -> t

(** Digest of every result-affecting configuration field ([jobs] and
    [summary_cache] excluded: both are result-neutral). *)
val config_digest : Astree_core.Config.t -> string

(** The shared context digest: configuration, target, struct layouts,
    volatile-input ranges, entry point, frozen cell numbering. *)
val context : t -> string

(** Fingerprint of one function; [None] when not cacheable (on a call
    cycle or calling an unknown function). *)
val fn : t -> string -> string option

(** Whole-program fingerprint — names the on-disk store file. *)
val program : t -> string
