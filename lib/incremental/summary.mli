(** Function-summary cache: exact-key memoization of polyvariant call
    analyses, with optional cross-run persistence ({!Store}).  Keys are
    (callee content fingerprint, abstract entry-state digest, checking
    mode) — equality of keys proves a hit equivalent to re-analysis. *)

module F = Astree_frontend
module C = Astree_core

(** Digest of an exact abstract entry state with its by-reference
    bindings (canonical across processes and runs). *)
val entry_digest : C.Astate.t -> C.Transfer.binds -> string

(** Key derivation used by the installed memo; [None] when the callee
    has no fingerprint (recursive / unknown). *)
val key_fn :
  Fingerprint.t ->
  fname:string ->
  checking:bool ->
  C.Astate.t ->
  C.Transfer.binds ->
  C.Iterator.summary_key option

(** A live cache session: the fingerprints, the table and its memo
    interface, plus store-load accounting. *)
type session

(** Fingerprint the program, populate the table (from the analysis
    session's [ses_preload] first, then the on-disk store under
    [Cache_dir], keep-first) and install it via the session's
    [ses_memo]. *)
val attach :
  C.Transfer.session -> C.Config.t -> F.Tast.program -> session

(** Uninstall the table, persisting it first under [Cache_dir] unless
    [save:false]; when the analysis session has [ses_collect_tables]
    set, also records the final table in its [ses_tables].  Returns the
    run's cache counters. *)
val detach : ?save:bool -> C.Config.t -> session -> C.Analysis.cache_stats

(** The [Analysis.cache_driver] implementation: attach, run, detach,
    and fill [s_cache] in the result's statistics. *)
val driver :
  C.Transfer.session ->
  C.Config.t ->
  F.Tast.program ->
  (unit -> C.Analysis.result) ->
  C.Analysis.result

(** Install {!driver} as [Analysis.cache_driver]. *)
val register : unit -> unit
