(** On-disk summary store: one versioned file per program fingerprint,
    written atomically; any unreadable file degrades to an empty load
    with a warning on stderr, never an error. *)

(** Load the summaries saved under program fingerprint [key] in [dir].
    Missing, truncated, corrupt, version-skewed or stale files yield
    []. *)
val load :
  dir:string ->
  key:string ->
  (Astree_core.Iterator.summary_key * Astree_core.Iterator.summary) list

(** Atomically (re)write the store file for [key], creating [dir] if
    needed.  The new contents are the union of [entries] with whatever
    the file already held (keep-ours on key collisions — colliding
    summaries are equal by construction), the data is fsynced before
    the rename publishes it, and a reader can never observe a torn
    file: concurrent multi-process writers are safe.  Failures warn
    and leave any previous file intact. *)
val save :
  dir:string ->
  key:string ->
  (Astree_core.Iterator.summary_key * Astree_core.Iterator.summary) list ->
  unit
