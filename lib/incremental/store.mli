(** On-disk summary store: one versioned file per program fingerprint,
    written atomically; any unreadable file degrades to an empty load
    with a warning on stderr, never an error. *)

(** Load the summaries saved under program fingerprint [key] in [dir].
    Missing, truncated, corrupt, version-skewed or stale files yield
    []. *)
val load :
  dir:string ->
  key:string ->
  (Astree_core.Iterator.summary_key * Astree_core.Iterator.summary) list

(** Atomically (re)write the store file for [key], creating [dir] if
    needed.  The new contents are the union of [entries] with whatever
    the file already held (keep-ours on key collisions — colliding
    summaries are equal by construction), the data is fsynced before
    the rename publishes it, and a reader can never observe a torn
    file: concurrent multi-process writers are safe.  Failures warn
    and leave any previous file intact. *)
val save :
  dir:string ->
  key:string ->
  (Astree_core.Iterator.summary_key * Astree_core.Iterator.summary) list ->
  unit

(** {1 Generic versioned blobs}

    The same integrity envelope (magic header, MD5 payload digest,
    OCaml-version pinning, fsync + atomic rename) over an arbitrary
    marshallable value, for single-file state such as the daemon's
    warm-state checkpoint.  Writes honor the [Checkpoint_torn] fault
    injection point: an armed spec makes the published file tear
    mid-payload, which {!load_blob} must (and does) reject. *)

(** Atomically write [v] to [file] under [magic].  Failures warn on
    stderr and leave any previous file intact; a torn-write fault
    deliberately publishes a truncated file instead. *)
val save_blob : file:string -> magic:string -> 'a -> unit

(** Read back a {!save_blob} file.  [None] — silently — when the file
    is missing; [None] with a stderr warning when it is truncated,
    corrupt, has the wrong magic or was written by another OCaml
    version.  Never raises: callers degrade to cold state. *)
val load_blob : file:string -> magic:string -> 'a option
