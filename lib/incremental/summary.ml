(** The summary-cache driver: keys, table, and the [Analysis.cache_driver]
    implementation.

    A summary is reused only for the exact key it was computed under —
    callee content fingerprint (which folds the whole analysis context,
    {!Fingerprint}), a digest of the exact abstract entry state together
    with the by-reference bindings, and the alarm-collector mode.  There
    is no entailment shortcut: a weaker-entry hit could change the
    computed invariants, so equality of keys is the proof that a hit is
    equivalent to re-analysis.

    The driver installs the table in the run's session
    ({!Astree_core.Transfer.session.ses_memo}) before running the
    wrapped analysis, so the parallel scheduler's forked workers
    inherit both the table and the pre-loaded store; workers
    ship fresh summaries back in their job deltas and the parent absorbs
    them in job order (keep-first, deterministic). *)

module F = Astree_frontend
module C = Astree_core

(** Digest of the exact abstract entry state of a call, after parameter
    binding, together with the by-reference bindings.  Marshalling with
    [No_sharing] is purely structural, and the environment's Patricia
    trees are shape-canonical per key set, so equal states give equal
    digests across processes and runs. *)
let entry_digest (st : C.Astate.t) (binds : C.Transfer.binds) : string =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (st, F.Tast.VarMap.bindings binds)
          [ Marshal.No_sharing ]))

let key_fn (fps : Fingerprint.t) ~(fname : string) ~(checking : bool)
    (st : C.Astate.t) (binds : C.Transfer.binds) :
    C.Iterator.summary_key option =
  match Fingerprint.fn fps fname with
  | None -> None
  | Some fp ->
      Some
        {
          C.Iterator.sk_fn = fp;
          sk_entry = entry_digest st binds;
          sk_checking = checking;
        }

(** Transitive inlined size of each function: own statements plus the
    inlined statements of every (acyclic) callee.  This, not the local
    body size, is what a cache hit saves — a thin wrapper around a deep
    call tree is an excellent memoization point, a large leaf called
    with a tiny environment a poor one.  Back edges contribute 0
    (recursive functions are uncacheable anyway: no fingerprint). *)
let inlined_sizes (p : F.Tast.program) : (string, int) Hashtbl.t =
  let funs = Hashtbl.create 64 in
  List.iter (fun (fn, fd) -> Hashtbl.replace funs fn fd) p.F.Tast.p_funs;
  let sizes : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rec size stack fn =
    match Hashtbl.find_opt sizes fn with
    | Some n -> n
    | None -> (
        match Hashtbl.find_opt funs fn with
        | None -> 0
        | Some fd ->
            if List.mem fn stack then 0
            else begin
              let n = ref (F.Tast.block_size fd.F.Tast.fd_body) in
              F.Tast.iter_stmts
                (fun s ->
                  match s.F.Tast.sdesc with
                  | F.Tast.Scall (_, callee, _) ->
                      n := !n + size (fn :: stack) callee
                  | _ -> ())
                fd.F.Tast.fd_body;
              Hashtbl.replace sizes fn !n;
              !n
            end)
  in
  List.iter (fun (fn, _) -> ignore (size [] fn)) p.F.Tast.p_funs;
  sizes

(* ------------------------------------------------------------------ *)
(* Session                                                              *)
(* ------------------------------------------------------------------ *)

type session = {
  ss_ses : C.Transfer.session;  (** the analysis session the memo lives in *)
  ss_fps : Fingerprint.t;
  ss_tbl : (C.Iterator.summary_key, C.Iterator.summary) Hashtbl.t;
  ss_memo : C.Iterator.call_memo;
  ss_loaded : int;
  ss_load_time : float;
}

(** Fingerprint the program, build the summary table (populated from
    [ses.ses_preload] first — the daemon's resident entries — then from
    the on-disk store under [Cache_dir], keep-first) and install it in
    the analysis session.  Call before the analysis — and before the
    parallel pool forks, so workers inherit the hot table. *)
let attach (ses : C.Transfer.session) (cfg : C.Config.t) (p : F.Tast.program)
    : session =
  let fps = Fingerprint.make cfg p in
  let tbl = Hashtbl.create 1024 in
  (* resident entries first: keys self-identify their configuration (the
     fingerprint folds the config digest), so entries computed under a
     different config — e.g. a degraded retry — simply never match *)
  List.iter
    (fun (k, s) -> if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k s)
    ses.C.Transfer.ses_preload;
  let loaded, load_time =
    match cfg.C.Config.summary_cache with
    | C.Config.Cache_dir dir ->
        let t0 = Unix.gettimeofday () in
        let entries = Store.load ~dir ~key:(Fingerprint.program fps) in
        List.iter
          (fun (k, s) -> if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k s)
          entries;
        let dt = Unix.gettimeofday () -. t0 in
        if !Astree_obs.Trace.enabled then
          Astree_obs.Trace.emit "cache.load"
            ~args:
              [
                ("entries", Astree_obs.Trace.I (List.length entries));
                ("seconds", Astree_obs.Trace.F dt);
              ];
        (List.length entries, dt)
    | _ -> (0, 0.)
  in
  let memo =
    {
      C.Iterator.cm_key = key_fn fps;
      cm_find = Hashtbl.find_opt tbl;
      (* keep-first: a key determines its summary, so re-adding (e.g.
         replaying worker deltas) can never change an entry *)
      cm_add =
        (fun k s -> if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k s);
      cm_fresh = ref [];
      cm_hits = ref 0;
      cm_misses = ref 0;
      cm_want =
        (let sizes = inlined_sizes p in
         let min_stmts = !C.Iterator.memo_min_stmts in
         fun fn ->
           match Hashtbl.find_opt sizes fn with
           | Some n -> n >= min_stmts
           | None -> false);
    }
  in
  ses.C.Transfer.ses_memo <- Some memo;
  {
    ss_ses = ses;
    ss_fps = fps;
    ss_tbl = tbl;
    ss_memo = memo;
    ss_loaded = loaded;
    ss_load_time = load_time;
  }

(** Uninstall the table; under [Cache_dir] and [save:true], persist it
    first.  When the analysis session asked for it
    ([ses_collect_tables]), the final table is also recorded in
    [ses_tables] so a resident server can absorb it.  Returns the cache
    counters for the run. *)
let detach ?(save = true) (cfg : C.Config.t) (ss : session) :
    C.Analysis.cache_stats =
  ss.ss_ses.C.Transfer.ses_memo <- None;
  if ss.ss_ses.C.Transfer.ses_collect_tables then
    ss.ss_ses.C.Transfer.ses_tables <-
      ( Fingerprint.program ss.ss_fps,
        Hashtbl.fold (fun k s acc -> (k, s) :: acc) ss.ss_tbl [] )
      :: ss.ss_ses.C.Transfer.ses_tables;
  let save_time =
    match cfg.C.Config.summary_cache with
    | C.Config.Cache_dir dir when save ->
        let t0 = Unix.gettimeofday () in
        Store.save ~dir
          ~key:(Fingerprint.program ss.ss_fps)
          (Hashtbl.fold (fun k s acc -> (k, s) :: acc) ss.ss_tbl []);
        let dt = Unix.gettimeofday () -. t0 in
        if !Astree_obs.Trace.enabled then
          Astree_obs.Trace.emit "cache.save"
            ~args:
              [
                ("entries", Astree_obs.Trace.I (Hashtbl.length ss.ss_tbl));
                ("seconds", Astree_obs.Trace.F dt);
              ];
        dt
    | _ -> 0.
  in
  {
    C.Analysis.c_hits = !(ss.ss_memo.C.Iterator.cm_hits);
    c_misses = !(ss.ss_memo.C.Iterator.cm_misses);
    c_entries = Hashtbl.length ss.ss_tbl;
    c_loaded = ss.ss_loaded;
    c_load_time = ss.ss_load_time;
    c_save_time = save_time;
  }

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let driver (ses : C.Transfer.session) (cfg : C.Config.t)
    (p : F.Tast.program) (core : unit -> C.Analysis.result) :
    C.Analysis.result =
  let ss = attach ses cfg p in
  let r =
    try core ()
    with
    | Astree_robust.Budget.Tripped _ as e ->
        (* a budget trip or an interrupt is not a failed analysis: every
           summary computed so far is valid, so flush the table (the
           store write is atomic) before unwinding — the next run starts
           warm, and a SIGINT loses no work *)
        ignore (detach ~save:true cfg ss);
        raise e
    | e ->
        (* failed analyses save nothing: a partial table is valid, but an
           aborted run should leave the store exactly as it found it *)
        ignore (detach ~save:false cfg ss);
        raise e
  in
  let cstats = detach cfg ss in
  {
    r with
    C.Analysis.r_stats =
      { r.C.Analysis.r_stats with C.Analysis.s_cache = Some cstats };
  }

(** Install the summary-cache driver; analyses with
    [Config.cache_enabled] are wrapped from then on. *)
let register () = C.Analysis.cache_driver := Some driver
