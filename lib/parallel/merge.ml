(** Deterministic merge of parallel results.

    Whatever order workers finish in, the parent combines their outputs
    with order-insensitive operations — first-wins alarm dedup over
    job-ordered lists, abstract-state joins, stat sums — so [-j n]
    output is byte-identical to [-j 1]. *)

module C = Astree_core

(** Union alarm groups (listed in job order), deduplicating by
    (kind, location) with the first report winning — the same policy as
    the sequential collector — then sorting by location. *)
let alarms (groups : C.Alarm.t list list) : C.Alarm.t list =
  let seen = Hashtbl.create 64 in
  List.concat_map
    (List.filter (fun (a : C.Alarm.t) ->
         let key = (a.C.Alarm.a_kind, a.C.Alarm.a_loc) in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.add seen key ();
           true
         end))
    groups
  |> List.sort C.Alarm.compare

(** Join a disjunction of final states ([Astate.join] is associative
    and commutative, so grouping does not matter). *)
let join_states (sts : C.Astate.t list) : C.Astate.t =
  List.fold_left C.Astate.join C.Astate.bottom sts

(** Aggregate statistics of a batch of runs: integer fields and times
    are summed (an aggregate total, not a per-run average).  Cache
    counters sum member-wise; the aggregate carries [Some] as soon as
    any member enabled the cache ([None] counts as all-zero), so a
    cache-less batch prints exactly as before. *)
let sum_cache_stats (a : C.Analysis.cache_stats option)
    (b : C.Analysis.cache_stats option) : C.Analysis.cache_stats option =
  match (a, b) with
  | None, c | c, None -> c
  | Some x, Some y ->
      Some
        {
          C.Analysis.c_hits = x.C.Analysis.c_hits + y.C.Analysis.c_hits;
          c_misses = x.c_misses + y.c_misses;
          c_entries = x.c_entries + y.c_entries;
          c_loaded = x.c_loaded + y.c_loaded;
          c_load_time = x.c_load_time +. y.c_load_time;
          c_save_time = x.c_save_time +. y.c_save_time;
        }

let sum_stats (ss : C.Analysis.stats list) : C.Analysis.stats =
  List.fold_left
    (fun (acc : C.Analysis.stats) (s : C.Analysis.stats) ->
      {
        C.Analysis.s_globals_before =
          acc.C.Analysis.s_globals_before + s.C.Analysis.s_globals_before;
        s_globals_after = acc.s_globals_after + s.s_globals_after;
        s_cells = acc.s_cells + s.s_cells;
        s_stmts = acc.s_stmts + s.s_stmts;
        s_oct_packs = acc.s_oct_packs + s.s_oct_packs;
        s_oct_useful = acc.s_oct_useful + s.s_oct_useful;
        s_ell_packs = acc.s_ell_packs + s.s_ell_packs;
        s_dt_packs = acc.s_dt_packs + s.s_dt_packs;
        s_time = acc.s_time +. s.s_time;
        s_cache = sum_cache_stats acc.s_cache s.s_cache;
        (* a batch is degraded as soon as any member degraded; the first
           member's record is representative (keep-first) *)
        s_degraded =
          (match acc.s_degraded with
          | Some _ as d -> d
          | None -> s.s_degraded);
      })
    {
      C.Analysis.s_globals_before = 0;
      s_globals_after = 0;
      s_cells = 0;
      s_stmts = 0;
      s_oct_packs = 0;
      s_oct_useful = 0;
      s_ell_packs = 0;
      s_dt_packs = 0;
      s_time = 0.;
      s_cache = None;
      s_degraded = None;
    }
    ss

(** Digest of everything a run asserts — alarms, main-loop invariant
    census, final-state assertions — used by the equivalence tests and
    the E10 benchmark to check that [-j n] and [-j 1] agree exactly.
    Wall-clock time and other run-dependent stats are excluded. *)
let fingerprint (r : C.Analysis.result) : string =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Fmt.pf ppf "alarms: %d@\n%a@\n" (C.Analysis.n_alarms r)
    Fmt.(list ~sep:(any "@\n") C.Alarm.pp)
    r.C.Analysis.r_alarms;
  (match C.Invariant_census.main_loop_census r with
  | Some c -> Fmt.pf ppf "census:@\n%a@\n" C.Invariant_census.pp c
  | None -> ());
  Fmt.pf ppf "final:@\n";
  C.Invariant_dump.dump_state r.C.Analysis.r_actx ppf r.C.Analysis.r_final;
  Format.pp_print_flush ppf ();
  Digest.to_hex (Digest.string (Buffer.contents buf))
