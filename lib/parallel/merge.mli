(** Deterministic merge of parallel results: order-insensitive
    combination of worker outputs so that [-j n] output is identical to
    [-j 1]. *)

module C = Astree_core

(** Union alarm groups (in job order), first report per (kind, location)
    wins — the sequential collector's policy — sorted by location. *)
val alarms : C.Alarm.t list list -> C.Alarm.t list

(** Join a disjunction of final states. *)
val join_states : C.Astate.t list -> C.Astate.t

(** Sum the statistics of a batch of runs into an aggregate total. *)
val sum_stats : C.Analysis.stats list -> C.Analysis.stats

(** Digest of a run's semantic output (alarms, census, final-state
    assertions; excludes timings), for exact equivalence checks. *)
val fingerprint : C.Analysis.result -> string
