(** Shared-memory worker pool on OCaml 5 domains.

    The drop-in sibling of the fork {!Pool}: [jobs] domains serve work
    from per-worker run queues with work stealing.  Jobs and replies
    pass {e by reference} — no Marshal, no pipes — so shipping a job
    costs nothing and the Ptmap physical sharing inside abstract states
    survives the worker boundary (the fork backend's Marshal round-trip
    destroys it, forcing workers to redo joins the sequential analysis
    elides).

    {b Scheduling.}  [map] deals the jobs round-robin into per-worker
    queues; an owner drains its queue front-to-back (ascending job
    index), and an idle worker steals from the {e back} of the longest
    sibling queue, so a batch whose first rung dwarfs the rest (the
    refinement-ladder shape) never serializes on one worker.  Steals
    are counted into the [par.steals] metric.  Results land in a slot
    array indexed by job position: the returned list is in job order
    whatever the execution interleaving, which is where the
    deterministic-merge guarantee starts, exactly as in {!Pool.map}.

    {b Synchronization.}  All queue state lives under one mutex; job
    execution happens outside it.  Analysis jobs are milliseconds to
    seconds of work, so the lock is uncontended in practice, and
    mutex-protected hand-off gives the coordinator a happens-before
    edge on everything each worker allocated — no torn reads of
    replies.  Batches are numbered: a worker completing a job from an
    abandoned batch (budget trip) discards its result instead of
    writing into a newer batch's slots.

    {b What the fork pool has that this one hasn't.}  Isolation.  A
    domain cannot be killed, so there are no per-job timeouts, no crash
    respawns, and no fault-injection points here ([map]'s [?timeout] is
    accepted for interface compatibility and ignored); a job that
    raises comes back as [Error _], but a genuinely wedged job wedges
    the pool.  The scheduler therefore routes to the fork backend
    whenever faults are armed ({!Astree_robust.Faultsim}) or a resource
    budget is ({!Astree_robust.Budget}). *)

type ('a, 'b) t = {
  d_size : int;
  mu : Mutex.t;
  work : Condition.t;       (* workers: work arrived or shutdown *)
  done_c : Condition.t;     (* coordinator: a job completed *)
  queues : int list array;  (* per-worker run queues of job indexes,
                               front = next for the owner *)
  mutable epoch : int;            (* current batch number *)
  mutable jobs : 'a array;        (* current batch *)
  mutable results : ('b, string) result option array;
  mutable jobs_done : int;
  mutable jobs_total : int;
  mutable steals : int;           (* cumulative over the pool's life *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let size (p : ('a, 'b) t) = p.d_size

let c_steals = Astree_obs.Metrics.counter "par.steals"

(* Take the next job index for worker [w], owner-first then stealing
   from the back of the longest sibling queue; call with [p.mu] held. *)
let take_job (p : ('a, 'b) t) (w : int) : int option =
  match p.queues.(w) with
  | j :: rest ->
      p.queues.(w) <- rest;
      Some j
  | [] ->
      let victim = ref (-1) and best = ref 0 in
      Array.iteri
        (fun i q ->
          let n = List.length q in
          if i <> w && n > !best then begin
            victim := i;
            best := n
          end)
        p.queues;
      if !victim < 0 then None
      else begin
        let q = p.queues.(!victim) in
        let n = List.length q in
        let j = List.nth q (n - 1) in
        p.queues.(!victim) <- List.filteri (fun i _ -> i < n - 1) q;
        p.steals <- p.steals + 1;
        Some j
      end

let worker_body (p : ('a, 'b) t) (w : int) (init : unit -> 'a -> 'b) : unit =
  (* [init] runs inside this domain: per-domain state (a worker actx,
     the domain-local metrics/trace stores) is born here.  If it
     raises, the worker still drains jobs — as errors — so the
     coordinator's retry/in-process fallback handles it like a crashed
     fork worker. *)
  let run =
    match init () with
    | f -> f
    | exception e ->
        let msg = "worker init failed: " ^ Printexc.to_string e in
        fun _ -> failwith msg
  in
  let rec loop () =
    Mutex.lock p.mu;
    let rec next () =
      if p.stop then None
      else
        match take_job p w with
        | Some j -> Some (p.epoch, j, p.jobs.(j))
        | None ->
            Condition.wait p.work p.mu;
            next ()
    in
    match next () with
    | None -> Mutex.unlock p.mu
    | Some (epoch, j, job) ->
        Mutex.unlock p.mu;
        let r = try Ok (run job) with e -> Error (Printexc.to_string e) in
        Mutex.lock p.mu;
        (* a result from an abandoned batch is dropped on the floor *)
        if p.epoch = epoch then begin
          p.results.(j) <- Some r;
          p.jobs_done <- p.jobs_done + 1;
          Condition.signal p.done_c
        end;
        Mutex.unlock p.mu;
        loop ()
  in
  loop ()

(* The OCaml 5 runtime refuses Unix.fork in any process where a domain
   has ever been spawned (even joined ones).  Spawning a domains pool
   is therefore a one-way door for the fork backend; the scheduler
   consults this latch so mixed workloads degrade instead of crashing. *)
let spawned_ever = ref false

let ever_spawned () = !spawned_ever

let create ~(jobs : int) (init : unit -> 'a -> 'b) : ('a, 'b) t =
  if jobs < 1 then invalid_arg "Dompool.create: jobs < 1";
  spawned_ever := true;
  let p =
    {
      d_size = jobs;
      mu = Mutex.create ();
      work = Condition.create ();
      done_c = Condition.create ();
      queues = Array.make jobs [];
      epoch = 0;
      jobs = [||];
      results = [||];
      jobs_done = 0;
      jobs_total = 0;
      steals = 0;
      stop = false;
      domains = [||];
    }
  in
  p.domains <-
    Array.init jobs (fun w -> Domain.spawn (fun () -> worker_body p w init));
  p

let shutdown (p : ('a, 'b) t) : unit =
  Mutex.lock p.mu;
  if not p.stop then begin
    p.stop <- true;
    (* abandon queued work; in-flight jobs run to completion *)
    Array.fill p.queues 0 p.d_size [];
    p.epoch <- p.epoch + 1;
    Condition.broadcast p.work;
    Mutex.unlock p.mu;
    Array.iter Domain.join p.domains
  end
  else Mutex.unlock p.mu

(** Run every job, returning results in job order.  [?timeout] is
    ignored (domains cannot be killed; see the module comment).  The
    resource budget is polled at every job completion: a trip abandons
    the queued remainder (in-flight jobs finish and are discarded) and
    re-raises — though the scheduler prefers the fork backend outright
    whenever a budget is armed. *)
let map ?timeout:_ (p : ('a, 'b) t) (job_list : 'a list) :
    ('b, string) result list =
  let jobs = Array.of_list job_list in
  let n = Array.length jobs in
  if n = 0 then []
  else begin
    Mutex.lock p.mu;
    if p.stop then begin
      Mutex.unlock p.mu;
      invalid_arg "Dompool.map: pool is shut down"
    end;
    let steals0 = p.steals in
    p.epoch <- p.epoch + 1;
    p.jobs <- jobs;
    p.results <- Array.make n None;
    p.jobs_done <- 0;
    p.jobs_total <- n;
    (* deal round-robin: queue w holds indexes w, w+nw, ... ascending *)
    for j = n - 1 downto 0 do
      let w = j mod p.d_size in
      p.queues.(w) <- j :: p.queues.(w)
    done;
    Condition.broadcast p.work;
    let abandon e =
      Array.fill p.queues 0 p.d_size [];
      p.epoch <- p.epoch + 1;
      Mutex.unlock p.mu;
      raise e
    in
    (match Astree_robust.Budget.poll () with
    | () -> ()
    | exception e -> abandon e);
    while p.jobs_done < p.jobs_total do
      Condition.wait p.done_c p.mu;
      match Astree_robust.Budget.poll () with
      | () -> ()
      | exception e -> abandon e
    done;
    let out = p.results in
    let stolen = p.steals - steals0 in
    p.jobs <- [||];
    p.results <- [||];
    p.jobs_total <- 0;
    Mutex.unlock p.mu;
    if stolen > 0 then Astree_obs.Metrics.add c_steals stolen;
    Array.to_list out
    |> List.map (function Some r -> r | None -> Error "unreachable")
  end

let with_pool ~(jobs : int) (init : unit -> 'a -> 'b)
    (k : ('a, 'b) t -> 'c) : 'c =
  let p = create ~jobs init in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> k p)
