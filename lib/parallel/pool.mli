(** Fork-based worker pool: workers inherit the caller's heap (the
    prepared analysis context) by copy-on-write and serve marshalled
    jobs over pipes.  Jobs and replies must be pure data (closure-free
    marshalling).  Crashed or timed-out workers are killed and
    respawned; their jobs come back as [Error _] and the caller decides
    whether to retry or recompute in-process. *)

type ('a, 'b) t

val at_child_fork : (unit -> unit) option ref
(** Hook run once inside every freshly forked worker, cleared there
    before it runs.  An event-loop caller (the analysis daemon)
    registers a closure that closes its listening and client sockets:
    a worker outliving a connection would otherwise hold the write
    side open and keep the peer from ever seeing EOF.  Exceptions from
    the hook are swallowed. *)

(** Fork [jobs] workers, each serving jobs with [f].
    @raise Invalid_argument if [jobs < 1]. *)
val create : jobs:int -> ('a -> 'b) -> ('a, 'b) t

val size : ('a, 'b) t -> int

(** Run every job, one outstanding job per worker, returning results in
    job order whatever the completion order.  [timeout] bounds each
    job's wall-clock seconds (default none); an overrun kills and
    respawns the worker and yields [Error "worker timed out"]. *)
val map : ?timeout:float -> ('a, 'b) t -> 'a list -> ('b, string) result list

(** Terminate the workers (EOF, then SIGKILL after a grace period). *)
val shutdown : ('a, 'b) t -> unit

(** [with_pool ~jobs f k] runs [k] with a fresh pool, shutting it down
    on exit. *)
val with_pool : jobs:int -> ('a -> 'b) -> (('a, 'b) t -> 'c) -> 'c

(** {1 Async interface}

    [map] owns the calling thread until every job completes; an event
    loop (the analysis daemon) instead interleaves worker completions
    with its own descriptors.  Same one-job-per-worker discipline,
    exposed piecewise; do not mix with a concurrent [map] on the same
    pool. *)

(** Number of workers with no job in flight. *)
val idle_slots : ('a, 'b) t -> int

(** Hand [job] to an idle worker; returns its slot, or [None] when all
    workers are busy (or the chosen worker's pipe was already dead — it
    is respawned and the caller should retry).  [timeout] sets the
    job's wall-clock deadline, enforced by the caller via
    {!expired_slots} + {!cancel}. *)
val submit : ?timeout:float -> ('a, 'b) t -> 'a -> int option

(** Reply descriptor of a slot, for [select].  Invalidated when the
    worker is respawned — re-query after every {!reap}/{!cancel}. *)
val slot_fd : ('a, 'b) t -> int -> Unix.file_descr

(** (reply fd, slot) of every in-flight job. *)
val busy_fds : ('a, 'b) t -> (Unix.file_descr * int) list

(** Read the reply of slot [w] (call when its fd is readable; blocks
    until the marshalled reply is complete).  A worker that died
    mid-job is respawned and its job returns [Error "worker crashed"].
    @raise Invalid_argument if the slot is idle. *)
val reap : ('a, 'b) t -> int -> ('b, string) result

(** Abort the in-flight job of slot [w]: kill and respawn the worker,
    free the slot.  No-op on idle slots. *)
val cancel : ('a, 'b) t -> int -> unit

(** Slots whose job deadline has passed (candidates for {!cancel}). *)
val expired_slots : ('a, 'b) t -> now:float -> int list

(** Earliest in-flight job deadline ([infinity] when none). *)
val next_deadline : ('a, 'b) t -> float
