(** Fork-based worker pool: workers inherit the caller's heap (the
    prepared analysis context) by copy-on-write and serve marshalled
    jobs over pipes.  Jobs and replies must be pure data (closure-free
    marshalling).  Crashed or timed-out workers are killed and
    respawned; their jobs come back as [Error _] and the caller decides
    whether to retry or recompute in-process. *)

type ('a, 'b) t

(** Fork [jobs] workers, each serving jobs with [f].
    @raise Invalid_argument if [jobs < 1]. *)
val create : jobs:int -> ('a -> 'b) -> ('a, 'b) t

val size : ('a, 'b) t -> int

(** Run every job, one outstanding job per worker, returning results in
    job order whatever the completion order.  [timeout] bounds each
    job's wall-clock seconds (default none); an overrun kills and
    respawns the worker and yields [Error "worker timed out"]. *)
val map : ?timeout:float -> ('a, 'b) t -> 'a list -> ('b, string) result list

(** Terminate the workers (EOF, then SIGKILL after a grace period). *)
val shutdown : ('a, 'b) t -> unit

(** [with_pool ~jobs f k] runs [k] with a fresh pool, shutting it down
    on exit. *)
val with_pool : jobs:int -> ('a -> 'b) -> (('a, 'b) t -> 'c) -> 'c
