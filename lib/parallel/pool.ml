(** Fork-based worker pool.

    The pool forks [jobs] worker processes that each inherit the
    caller's heap (in particular a fully-built analysis context) by
    copy-on-write, then serve marshalled jobs over a pair of pipes:

    {v  parent --(Marshal job)--> worker --(Marshal reply)--> parent  v}

    Jobs and replies must be pure data: marshalling uses the default
    (closure-free) flags, so an accidentally captured closure fails the
    job instead of silently shipping stale code.

    Robustness: a worker that crashes (EOF on its pipe) or overruns the
    per-job timeout is killed and respawned transparently; its job is
    reported as [Error _] and the caller decides whether to retry or to
    recompute in-process.  [map] always returns one result per job, in
    job order, whatever the completion order — the deterministic-merge
    guarantee of the subsystem starts here. *)

type worker = {
  w_pid : int;
  w_oc : out_channel;  (** job channel, parent -> worker *)
  w_ic : in_channel;   (** reply channel, worker -> parent *)
  w_fd : Unix.file_descr;  (** raw reply fd, for [select] *)
}

type ('a, 'b) t = {
  p_run : 'a -> 'b;
  p_workers : worker array;
  mutable p_alive : bool;
  p_busy : float option array;
      (** async interface bookkeeping: [Some deadline] per in-flight
          submitted job (infinity = no deadline); [map] keeps its own
          tracking and ignores this *)
}

let size (p : ('a, 'b) t) = Array.length p.p_workers

(* Fault injection (Astree_robust.Faultsim): the crash / hang /
   truncated-reply recovery paths are exercised by seed-driven injection
   points here.  The historical ASTREE_PAR_CHAOS variable is honoured by
   Faultsim as an alias for "every worker crashes on every job". *)
module Faultsim = Astree_robust.Faultsim

let worker_loop (f : 'a -> 'b) (ic : in_channel) (oc : out_channel) : unit =
  let rec loop () =
    match (try Some (Marshal.from_channel ic : 'a) with End_of_file -> None) with
    | None -> ()
    | Some job ->
        if Faultsim.fires Faultsim.Worker_crash then Unix._exit 3;
        if Faultsim.fires Faultsim.Worker_hang then
          Unix.sleepf !Faultsim.hang_seconds;
        let reply : ('b, string) result =
          try Ok (f job) with e -> Error (Printexc.to_string e)
        in
        (* the reply is serialized exactly once, whichever path writes
           it: the truncation fault takes a string to cut in half, the
           normal path streams straight to the channel *)
        if Faultsim.fires Faultsim.Reply_truncate then begin
          (* half a marshalled reply, then die: the parent must treat the
             short read as a crash, not deliver garbage *)
          let s = Marshal.to_string reply [] in
          output_string oc (String.sub s 0 (max 1 (String.length s / 2)));
          flush oc;
          Unix._exit 3
        end
        else begin
          Marshal.to_channel oc reply [];
          flush oc
        end;
        loop ()
  in
  loop ()

(* An event-loop caller holds descriptors a worker must not inherit:
   the daemon's client sockets in particular, where a worker's stale
   copy keeps the kernel from delivering EOF after the daemon closes a
   connection, wedging the peer.  The hook runs once in each freshly
   forked child and is cleared there first, so a worker that builds a
   nested pool cannot re-close descriptor numbers its own process has
   since reused. *)
let at_child_fork : (unit -> unit) option ref = ref None

(** Fork one worker.  [foreign] lists parent-side descriptors of the
    other live workers: the child closes them so that closing a job
    pipe in the parent always delivers EOF to its worker. *)
let spawn (f : 'a -> 'b) (foreign : Unix.file_descr list) : worker =
  let job_r, job_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close job_w;
      Unix.close res_r;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) foreign;
      (match !at_child_fork with
      | Some hook ->
          at_child_fork := None;
          (try hook () with _ -> ())
      | None -> ());
      (* re-dispatch from a forked child is prevented in the worker fn
         itself ([Iterator.par_run_job] clears its session's par hook) *)
      let ic = Unix.in_channel_of_descr job_r in
      let oc = Unix.out_channel_of_descr res_w in
      (try worker_loop f ic oc with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close job_r;
      Unix.close res_w;
      {
        w_pid = pid;
        w_oc = Unix.out_channel_of_descr job_w;
        w_ic = Unix.in_channel_of_descr res_r;
        w_fd = res_r;
      }

let worker_fds (workers : worker list) : Unix.file_descr list =
  List.concat_map
    (fun w -> [ Unix.descr_of_out_channel w.w_oc; w.w_fd ])
    workers

let create ~(jobs : int) (f : 'a -> 'b) : ('a, 'b) t =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  (* a worker dying mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* build the worker list first (each child closing the pipes of the
     already-spawned workers), then freeze it into the array: no
     placeholder element exists at any point, so [spawn] raising
     mid-loop leaves a well-typed (if short-lived) list behind *)
  let rec go acc w =
    if w = jobs then List.rev acc else go (spawn f (worker_fds acc) :: acc) (w + 1)
  in
  {
    p_run = f;
    p_workers = Array.of_list (go [] 0);
    p_alive = true;
    p_busy = Array.make jobs None;
  }

let dispose_worker (wk : worker) : unit =
  (try Unix.kill wk.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] wk.w_pid) with Unix.Unix_error _ -> ());
  (try close_out_noerr wk.w_oc with _ -> ());
  try close_in_noerr wk.w_ic with _ -> ()

let respawn (p : ('a, 'b) t) (w : int) : unit =
  dispose_worker p.p_workers.(w);
  let others =
    worker_fds (List.filteri (fun i _ -> i <> w) (Array.to_list p.p_workers))
  in
  p.p_workers.(w) <- spawn p.p_run others

let shutdown (p : ('a, 'b) t) : unit =
  if p.p_alive then begin
    p.p_alive <- false;
    (* closing the job pipes makes healthy workers exit on EOF *)
    Array.iter (fun wk -> try close_out wk.w_oc with _ -> ()) p.p_workers;
    let deadline = Unix.gettimeofday () +. 1.0 in
    Array.iter
      (fun wk ->
        let rec wait () =
          match Unix.waitpid [ Unix.WNOHANG ] wk.w_pid with
          | 0, _ ->
              if Unix.gettimeofday () < deadline then begin
                ignore (Unix.select [] [] [] 0.01);
                wait ()
              end
              else begin
                (try Unix.kill wk.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
                try ignore (Unix.waitpid [] wk.w_pid) with Unix.Unix_error _ -> ()
              end
          | _ -> ()
          | exception Unix.Unix_error _ -> ()
        in
        wait ();
        try close_in_noerr wk.w_ic with _ -> ())
      p.p_workers
  end

(** Run every job, returning results in job order.  [timeout] bounds
    each job's wall-clock seconds (default: none). *)
let map ?(timeout = infinity) (p : ('a, 'b) t) (jobs : 'a list) :
    ('b, string) result list =
  if not p.p_alive then invalid_arg "Pool.map: pool is shut down";
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let results : ('b, string) result option array = Array.make n None in
  let completed = ref 0 in
  let next = ref 0 in
  let nw = Array.length p.p_workers in
  (* busy.(w) = Some (job index, deadline) *)
  let busy : (int * float) option array = Array.make nw None in
  let fail j msg =
    if results.(j) = None then begin
      results.(j) <- Some (Error msg);
      incr completed
    end
  in
  let finish j r =
    if results.(j) = None then begin
      results.(j) <- Some r;
      incr completed
    end
  in
  while !completed < n do
    (* honor the resource budget even while blocked on workers: a trip
       unwinds through [with_pool]'s finalizer, so no worker outlives it *)
    Astree_robust.Budget.poll ();
    (* hand a job to every idle worker *)
    for w = 0 to nw - 1 do
      if busy.(w) = None && !next < n then begin
        let j = !next in
        incr next;
        let wk = p.p_workers.(w) in
        match
          Marshal.to_channel wk.w_oc jobs.(j) [];
          flush wk.w_oc
        with
        | () ->
            let dl =
              if timeout = infinity then infinity
              else Unix.gettimeofday () +. timeout
            in
            busy.(w) <- Some (j, dl)
        | exception _ ->
            fail j "worker pipe closed on send";
            respawn p w
      end
    done;
    let waiting =
      let acc = ref [] in
      Array.iteri
        (fun w slot ->
          if slot <> None then acc := p.p_workers.(w).w_fd :: !acc)
        busy;
      !acc
    in
    if waiting <> [] then begin
      (* without job deadlines or a budget there is nothing to poll for:
         block until a reply (or EOF) arrives — EINTR from a signal still
         wakes us, and the loop header re-polls the budget.  Otherwise
         sleep until the nearest deadline, capped at 0.1 s. *)
      let budget_dl = Astree_robust.Budget.armed_deadline () in
      let select_dt =
        if timeout = infinity && budget_dl = infinity then -1.0
        else begin
          let nearest = ref budget_dl in
          if timeout < infinity then
            Array.iter
              (function
                | Some (_, dl) -> if dl < !nearest then nearest := dl
                | None -> ())
              busy;
          max 0.0 (min 0.1 (!nearest -. Unix.gettimeofday ()))
        end
      in
      let readable, _, _ =
        try Unix.select waiting [] [] select_dt
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      Array.iteri
        (fun w slot ->
          match slot with
          | Some (j, _) when List.memq p.p_workers.(w).w_fd readable -> (
              let wk = p.p_workers.(w) in
              match
                (Marshal.from_channel wk.w_ic : ('b, string) result)
              with
              | reply ->
                  finish j reply;
                  busy.(w) <- None
              | exception _ ->
                  (* EOF or truncated reply: the worker died mid-job *)
                  fail j "worker crashed";
                  busy.(w) <- None;
                  respawn p w)
          | _ -> ())
        busy;
      (* enforce per-job deadlines (none exist when [timeout] is
         infinite, so skip the clock read and the scan entirely) *)
      if timeout < infinity then begin
        let now = Unix.gettimeofday () in
        Array.iteri
          (fun w slot ->
            match slot with
            | Some (j, dl) when now > dl ->
                fail j "worker timed out";
                busy.(w) <- None;
                respawn p w
            | _ -> ())
          busy
      end
    end
  done;
  Array.to_list results
  |> List.map (function Some r -> r | None -> Error "unreachable")

let with_pool ~(jobs : int) (f : 'a -> 'b) (k : ('a, 'b) t -> 'c) : 'c =
  let p = create ~jobs f in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> k p)

(* ------------------------------------------------------------------ *)
(* Async interface (one outstanding job per worker slot)               *)
(* ------------------------------------------------------------------ *)

(* The [map] call above owns the calling thread until every job is
   done; an event loop (the astreed daemon) instead needs to interleave
   worker completions with socket traffic.  The async interface exposes
   the same one-job-per-worker discipline piecewise: [submit] hands a
   job to an idle worker and returns its slot, the caller selects on
   [busy_fds] alongside its own descriptors, and [reap]/[cancel] settle
   a slot.  Crash and timeout recovery match [map]: the worker is
   killed and respawned, the job comes back as [Error _]. *)

let idle_slots (p : ('a, 'b) t) : int =
  Array.fold_left
    (fun n slot -> if slot = None then n + 1 else n)
    0 p.p_busy

let submit ?(timeout = infinity) (p : ('a, 'b) t) (job : 'a) : int option =
  if not p.p_alive then invalid_arg "Pool.submit: pool is shut down";
  let rec find w =
    if w = Array.length p.p_workers then None
    else if p.p_busy.(w) = None then Some w
    else find (w + 1)
  in
  match find 0 with
  | None -> None
  | Some w -> (
      let wk = p.p_workers.(w) in
      match
        Marshal.to_channel wk.w_oc job [];
        flush wk.w_oc
      with
      | () ->
          let dl =
            if timeout = infinity then infinity
            else Unix.gettimeofday () +. timeout
          in
          p.p_busy.(w) <- Some dl;
          Some w
      | exception _ ->
          (* dead worker found at send time: replace it and let the
             caller retry — the fresh worker's pipe is healthy *)
          respawn p w;
          None)

let slot_fd (p : ('a, 'b) t) (w : int) : Unix.file_descr =
  p.p_workers.(w).w_fd

let busy_fds (p : ('a, 'b) t) : (Unix.file_descr * int) list =
  let acc = ref [] in
  Array.iteri
    (fun w slot ->
      if slot <> None then acc := (p.p_workers.(w).w_fd, w) :: !acc)
    p.p_busy;
  !acc

let reap (p : ('a, 'b) t) (w : int) : ('b, string) result =
  if p.p_busy.(w) = None then invalid_arg "Pool.reap: slot is idle";
  p.p_busy.(w) <- None;
  let wk = p.p_workers.(w) in
  match (Marshal.from_channel wk.w_ic : ('b, string) result) with
  | reply -> reply
  | exception _ ->
      (* EOF or truncated reply: the worker died mid-job *)
      respawn p w;
      Error "worker crashed"

let cancel (p : ('a, 'b) t) (w : int) : unit =
  if p.p_busy.(w) <> None then begin
    p.p_busy.(w) <- None;
    respawn p w
  end

let expired_slots (p : ('a, 'b) t) ~(now : float) : int list =
  let acc = ref [] in
  Array.iteri
    (fun w slot ->
      match slot with Some dl when now > dl -> acc := w :: !acc | _ -> ())
    p.p_busy;
  !acc

let next_deadline (p : ('a, 'b) t) : float =
  Array.fold_left
    (fun acc slot ->
      match slot with Some dl -> min acc dl | None -> acc)
    infinity p.p_busy
