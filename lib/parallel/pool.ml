(** Fork-based worker pool.

    The pool forks [jobs] worker processes that each inherit the
    caller's heap (in particular a fully-built analysis context) by
    copy-on-write, then serve marshalled jobs over a pair of pipes:

    {v  parent --(Marshal job)--> worker --(Marshal reply)--> parent  v}

    Jobs and replies must be pure data: marshalling uses the default
    (closure-free) flags, so an accidentally captured closure fails the
    job instead of silently shipping stale code.

    Robustness: a worker that crashes (EOF on its pipe) or overruns the
    per-job timeout is killed and respawned transparently; its job is
    reported as [Error _] and the caller decides whether to retry or to
    recompute in-process.  [map] always returns one result per job, in
    job order, whatever the completion order — the deterministic-merge
    guarantee of the subsystem starts here. *)

type worker = {
  w_pid : int;
  w_oc : out_channel;  (** job channel, parent -> worker *)
  w_ic : in_channel;   (** reply channel, worker -> parent *)
  w_fd : Unix.file_descr;  (** raw reply fd, for [select] *)
}

type ('a, 'b) t = {
  p_run : 'a -> 'b;
  p_workers : worker array;
  mutable p_alive : bool;
}

let size (p : ('a, 'b) t) = Array.length p.p_workers

(* Test hook: when ASTREE_PAR_CHAOS is set, every worker process kills
   itself on its first job, exercising the crash -> respawn -> retry ->
   in-process-fallback ladder end to end. *)
let chaos_enabled () =
  match Sys.getenv_opt "ASTREE_PAR_CHAOS" with
  | Some s -> s <> ""
  | None -> false

let worker_loop (f : 'a -> 'b) (ic : in_channel) (oc : out_channel) : unit =
  let rec loop () =
    match (try Some (Marshal.from_channel ic : 'a) with End_of_file -> None) with
    | None -> ()
    | Some job ->
        if chaos_enabled () then Unix._exit 3;
        let reply : ('b, string) result =
          try Ok (f job) with e -> Error (Printexc.to_string e)
        in
        Marshal.to_channel oc reply [];
        flush oc;
        loop ()
  in
  loop ()

(** Fork one worker.  [foreign] lists parent-side descriptors of the
    other live workers: the child closes them so that closing a job
    pipe in the parent always delivers EOF to its worker. *)
let spawn (f : 'a -> 'b) (foreign : Unix.file_descr list) : worker =
  let job_r, job_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close job_w;
      Unix.close res_r;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) foreign;
      (* the forked child must not re-enter the parent's dispatcher *)
      Astree_core.Iterator.par_hook := None;
      let ic = Unix.in_channel_of_descr job_r in
      let oc = Unix.out_channel_of_descr res_w in
      (try worker_loop f ic oc with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close job_r;
      Unix.close res_w;
      {
        w_pid = pid;
        w_oc = Unix.out_channel_of_descr job_w;
        w_ic = Unix.in_channel_of_descr res_r;
        w_fd = res_r;
      }

let worker_fds (workers : worker array) : Unix.file_descr list =
  Array.to_list workers
  |> List.concat_map (fun w -> [ Unix.descr_of_out_channel w.w_oc; w.w_fd ])

let create ~(jobs : int) (f : 'a -> 'b) : ('a, 'b) t =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  (* a worker dying mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let workers = Array.make jobs (Obj.magic 0 : worker) in
  for w = 0 to jobs - 1 do
    workers.(w) <- spawn f (worker_fds (Array.sub workers 0 w))
  done;
  { p_run = f; p_workers = workers; p_alive = true }

let dispose_worker (wk : worker) : unit =
  (try Unix.kill wk.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] wk.w_pid) with Unix.Unix_error _ -> ());
  (try close_out_noerr wk.w_oc with _ -> ());
  try close_in_noerr wk.w_ic with _ -> ()

let respawn (p : ('a, 'b) t) (w : int) : unit =
  dispose_worker p.p_workers.(w);
  let others =
    worker_fds
      (Array.of_list
         (List.filteri (fun i _ -> i <> w) (Array.to_list p.p_workers)))
  in
  p.p_workers.(w) <- spawn p.p_run others

let shutdown (p : ('a, 'b) t) : unit =
  if p.p_alive then begin
    p.p_alive <- false;
    (* closing the job pipes makes healthy workers exit on EOF *)
    Array.iter (fun wk -> try close_out wk.w_oc with _ -> ()) p.p_workers;
    let deadline = Unix.gettimeofday () +. 1.0 in
    Array.iter
      (fun wk ->
        let rec wait () =
          match Unix.waitpid [ Unix.WNOHANG ] wk.w_pid with
          | 0, _ ->
              if Unix.gettimeofday () < deadline then begin
                ignore (Unix.select [] [] [] 0.01);
                wait ()
              end
              else begin
                (try Unix.kill wk.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
                try ignore (Unix.waitpid [] wk.w_pid) with Unix.Unix_error _ -> ()
              end
          | _ -> ()
          | exception Unix.Unix_error _ -> ()
        in
        wait ();
        try close_in_noerr wk.w_ic with _ -> ())
      p.p_workers
  end

(** Run every job, returning results in job order.  [timeout] bounds
    each job's wall-clock seconds (default: none). *)
let map ?(timeout = infinity) (p : ('a, 'b) t) (jobs : 'a list) :
    ('b, string) result list =
  if not p.p_alive then invalid_arg "Pool.map: pool is shut down";
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let results : ('b, string) result option array = Array.make n None in
  let completed = ref 0 in
  let next = ref 0 in
  let nw = Array.length p.p_workers in
  (* busy.(w) = Some (job index, deadline) *)
  let busy : (int * float) option array = Array.make nw None in
  let fail j msg =
    if results.(j) = None then begin
      results.(j) <- Some (Error msg);
      incr completed
    end
  in
  let finish j r =
    if results.(j) = None then begin
      results.(j) <- Some r;
      incr completed
    end
  in
  while !completed < n do
    (* hand a job to every idle worker *)
    for w = 0 to nw - 1 do
      if busy.(w) = None && !next < n then begin
        let j = !next in
        incr next;
        let wk = p.p_workers.(w) in
        match
          Marshal.to_channel wk.w_oc jobs.(j) [];
          flush wk.w_oc
        with
        | () -> busy.(w) <- Some (j, Unix.gettimeofday () +. timeout)
        | exception _ ->
            fail j "worker pipe closed on send";
            respawn p w
      end
    done;
    let waiting =
      let acc = ref [] in
      Array.iteri
        (fun w slot ->
          if slot <> None then acc := p.p_workers.(w).w_fd :: !acc)
        busy;
      !acc
    in
    if waiting <> [] then begin
      let readable, _, _ =
        try Unix.select waiting [] [] 0.1
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      Array.iteri
        (fun w slot ->
          match slot with
          | Some (j, _) when List.memq p.p_workers.(w).w_fd readable -> (
              let wk = p.p_workers.(w) in
              match
                (Marshal.from_channel wk.w_ic : ('b, string) result)
              with
              | reply ->
                  finish j reply;
                  busy.(w) <- None
              | exception _ ->
                  (* EOF or truncated reply: the worker died mid-job *)
                  fail j "worker crashed";
                  busy.(w) <- None;
                  respawn p w)
          | _ -> ())
        busy;
      (* enforce per-job deadlines *)
      let now = Unix.gettimeofday () in
      Array.iteri
        (fun w slot ->
          match slot with
          | Some (j, dl) when now > dl ->
              fail j "worker timed out";
              busy.(w) <- None;
              respawn p w
          | _ -> ())
        busy
    end
  done;
  Array.to_list results
  |> List.map (function Some r -> r | None -> Error "unreachable")

let with_pool ~(jobs : int) (f : 'a -> 'b) (k : ('a, 'b) t -> 'c) : 'c =
  let p = create ~jobs f in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> k p)
