(** The parallel scheduler: splits an analysis into pool jobs along two
    axes and merges the replies deterministically.

    {b Axis (a) — intra-program.}  The iterator already analyzes some
    program fragments from several independent entry states and joins
    the outcomes: the two branches of a dispatch conditional, and the
    trace-partition disjuncts flowing into a call (Sect. 7.1.5).  The
    scheduler ships each disjunct to a worker ([Iterator.par_job]) and
    the parent replays the workers' deltas in job order, performing the
    very joins the sequential iterator would — results are identical to
    [-j 1] by construction.

    {b Axis (b) — batch.}  Whole-program analyses (a family sweep, a
    parameter-refinement ladder) are embarrassingly parallel: each
    worker runs one full analysis and marshals the result back.

    {b Fault policy.}  A crashed or timed-out worker is respawned and
    its job retried once on the fresh worker; if that also fails, the
    job is recomputed in-process — [-j n] can lose speed, never
    soundness or results. *)

module C = Astree_core
module F = Astree_frontend
module Metrics = Astree_obs.Metrics
module Trace = Astree_obs.Trace

(** Default worker count: the machine's available cores. *)
let default_jobs () = max 1 (Domain.recommended_domain_count ())

(** Per-job wall-clock budgets (seconds) before a worker is presumed
    hung, killed and its job retried. *)
let intra_job_timeout = ref 600.

let batch_job_timeout = ref 3600.

(** Map with the retry-once policy: every [Error] slot of the first
    round is resubmitted once (to a respawned worker); persistent
    failures come back as [None] and the caller recomputes in-process. *)
let map_retry (pool : ('a, 'b) Pool.t) ~(timeout : float) (jobs : 'a list) :
    'b option list =
  let first = Pool.map ~timeout pool jobs in
  let failed =
    List.map2 (fun j r -> (j, r)) jobs first
    |> List.mapi (fun i (j, r) -> (i, j, r))
    |> List.filter_map (fun (i, j, r) ->
           match r with Error _ -> Some (i, j) | Ok _ -> None)
  in
  if failed = [] then
    List.map (function Ok v -> Some v | Error _ -> None) first
  else begin
    let retry = Pool.map ~timeout pool (List.map snd failed) in
    let patched = Hashtbl.create 8 in
    List.iter2 (fun (i, _) r -> Hashtbl.replace patched i r) failed retry;
    List.mapi
      (fun i r ->
        let r =
          match Hashtbl.find_opt patched i with Some r' -> r' | None -> r
        in
        match r with Ok v -> Some v | Error _ -> None)
      first
  end

(* ------------------------------------------------------------------ *)
(* Axis (a): intra-program disjunct jobs                               *)
(* ------------------------------------------------------------------ *)

(** Analyze [p] with [cfg.jobs] worker processes.  The context is built
    and every cell interned {e before} forking, so parent and workers
    share one frozen cell numbering and marshalled states mean the same
    thing on both sides. *)
let analyze ?session ?(cfg = C.Config.default) (p : F.Tast.program) :
    C.Analysis.result =
  let ses =
    match session with Some s -> s | None -> C.Transfer.new_session ()
  in
  let jobs = cfg.C.Config.jobs in
  if jobs <= 1 then
    C.Analysis.analyze ~session:ses ~cfg:{ cfg with C.Config.jobs = 1 } p
  else begin
    let actx = C.Transfer.make_actx ~session:ses cfg p in
    C.Transfer.prefill_cells actx;
    (* drain buffered trace events to the sink before forking: workers
       would otherwise inherit (and possibly re-write) the buffered
       bytes.  Workers additionally detach the sink in [par_run_job]. *)
    Trace.flush ();
    Pool.with_pool ~jobs
      (fun job -> C.Iterator.par_run_job actx job)
      (fun pool ->
        ses.C.Transfer.ses_par_hook <-
          Some (fun pjobs -> map_retry pool ~timeout:!intra_job_timeout pjobs);
        Fun.protect
          ~finally:(fun () -> ses.C.Transfer.ses_par_hook <- None)
          (fun () -> C.Analysis.analyze_prepared actx p))
  end

(** Install the parallel driver: after this, [Analysis.analyze] with
    [cfg.jobs > 1] routes through [analyze] above. *)
let register () =
  C.Analysis.parallel_driver :=
    Some (fun ses cfg p -> analyze ~session:ses ~cfg p)

(* ------------------------------------------------------------------ *)
(* Axis (b): whole-program batch jobs                                  *)
(* ------------------------------------------------------------------ *)

type batch_source =
  | Bs_program of F.Tast.program  (** already compiled *)
  | Bs_sources of (string * string) list  (** (filename, contents) pairs *)

type batch_job = {
  bj_label : string;
  bj_main : string;
  bj_cfg : C.Config.t;
  bj_source : batch_source;
}

let batch_job ?(label = "") ?(main = "main") ?(cfg = C.Config.default)
    (source : batch_source) : batch_job =
  { bj_label = label; bj_main = main; bj_cfg = cfg; bj_source = source }

(** Run one batch job sequentially (workers and the fallback path). *)
let run_batch_job (bj : batch_job) : C.Analysis.result =
  let cfg = { bj.bj_cfg with C.Config.jobs = 1 } in
  match bj.bj_source with
  | Bs_program p -> C.Analysis.analyze ~cfg p
  | Bs_sources srcs -> C.Analysis.analyze_sources ~cfg ~main:bj.bj_main srcs

(* Worker-side wrapper for the batch axis: detach any inherited trace
   sink and ship the job's registry delta back with the result, so
   profile probes and iterator counters cover batch runs too. *)
let run_batch_job_delta (bj : batch_job) :
    C.Analysis.result * Metrics.snapshot =
  Trace.in_worker ();
  let m0 = Metrics.snapshot () in
  let r = run_batch_job bj in
  (r, Metrics.diff m0)

(** Run a batch of whole-program analyses on [jobs] workers, results in
    job order.  Failed jobs are retried once, then recomputed
    in-process.  Worker registry deltas (metrics, profile probes) are
    absorbed in item order, so batch reports merge deterministically. *)
let analyze_batch ?(jobs = default_jobs ()) (items : batch_job list) :
    (string * C.Analysis.result) list =
  if jobs <= 1 || List.compare_length_with items 2 < 0 then
    List.map (fun bj -> (bj.bj_label, run_batch_job bj)) items
  else begin
    Trace.flush ();
    Pool.with_pool
      ~jobs:(min jobs (List.length items))
      run_batch_job_delta
      (fun pool ->
        let rs = map_retry pool ~timeout:!batch_job_timeout items in
        List.map2
          (fun bj r ->
            ( bj.bj_label,
              match r with
              | Some (r, delta) ->
                  Metrics.absorb delta;
                  r
              | None -> run_batch_job bj ))
          items rs)
  end
