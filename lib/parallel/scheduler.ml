(** The parallel scheduler: splits an analysis into pool jobs along two
    axes and merges the replies deterministically.

    {b Axis (a) — intra-program.}  The iterator already analyzes some
    program fragments from several independent entry states and joins
    the outcomes: the two branches of a dispatch conditional, and the
    trace-partition disjuncts flowing into a call (Sect. 7.1.5).  The
    scheduler ships each disjunct to a worker ([Iterator.par_job]) and
    the parent replays the workers' deltas in job order, performing the
    very joins the sequential iterator would — results are identical to
    [-j 1] by construction.

    {b Axis (b) — batch.}  Whole-program analyses (a family sweep, a
    parameter-refinement ladder) are embarrassingly parallel: each
    worker runs one full analysis and ships the result back.

    {b Backends.}  Two interchangeable pools serve both axes: the fork
    {!Pool} (process isolation, Marshal over pipes, per-job timeouts,
    fault injection) and the OCaml 5 shared-memory {!Dompool} (jobs and
    replies by reference, work stealing — no serialization cost, Ptmap
    sharing survives the worker boundary).  {!effective_backend}
    resolves [Config.par_backend]: [`Auto] picks domains, degrading to
    fork whenever fault injection or a resource budget is armed — both
    are built on process-global state and per-job kills that only fork
    workers provide.  The deterministic merge contract is
    backend-independent: same job order, same replies, byte-identical
    fingerprints at every [-j] on either backend.

    {b Fault policy.}  A failed job (crashed or timed-out fork worker;
    raised exception in a domain worker) is retried once; if that also
    fails, the job is recomputed in-process — [-j n] can lose speed,
    never soundness or results. *)

module C = Astree_core
module F = Astree_frontend
module Metrics = Astree_obs.Metrics
module Trace = Astree_obs.Trace
module Budget = Astree_robust.Budget
module Faultsim = Astree_robust.Faultsim

(** Default worker count: the machine's available cores. *)
let default_jobs () = max 1 (Domain.recommended_domain_count ())

(** Per-job wall-clock budgets (seconds) before a fork worker is
    presumed hung, killed and its job retried (the domains backend has
    no job kills; see {!Dompool}). *)
let intra_job_timeout = ref 600.

let batch_job_timeout = ref 3600.

(* ------------------------------------------------------------------ *)
(* Backend resolution                                                  *)
(* ------------------------------------------------------------------ *)

(** What [`Auto] resolves to when nothing forces fork.  [`Domains] by
    default — the fast backend.  The OCaml 5 runtime forbids
    [Unix.fork] once any domain has {e ever} been spawned in the
    process (even after [Domain.join]), so a process that must stay
    fork-capable (the test harness and the bench driver, which
    interleave fork-based chaos/daemon scenarios with parallel runs)
    pins this to [`Fork] and exercises the domains backend in forked
    subprocess children instead. *)
let auto_backend : [ `Fork | `Domains ] ref = ref `Domains

(** Resolve the configured backend to a concrete pool flavour.
    [`Auto] and [`Domains] both degrade to fork while fault injection
    ([ASTREE_FAULTS] / chaos) or a resource budget is armed: injection
    points and budget enforcement live in process-global state that
    only fork workers inherit and honor. *)
let effective_backend (b : C.Config.backend) : [ `Fork | `Domains ] =
  if Dompool.ever_spawned () then
    (* the one-way door is shut: this process can no longer fork, so
       every dispatch — even an explicit [`Fork], even with faults or a
       budget armed — stays on domains (kills and injection points are
       lost; correctness is not) *)
    `Domains
  else
    match b with
    | `Fork -> `Fork
    | (`Domains | `Auto) as b ->
        if Faultsim.armed () || Budget.armed () then `Fork
        else if b = `Domains then `Domains
        else !auto_backend

(* The backend actually used by the last dispatch, as a gauge
   (0 = fork, 1 = domains) so reports record which pool served them. *)
let note_backend (be : [ `Fork | `Domains ]) : unit =
  Metrics.set_gauge "par.backend" (match be with `Fork -> 0 | `Domains -> 1)

(** Map with the retry-once policy: every [Error] slot of the first
    round is resubmitted once; persistent failures come back as [None]
    and the caller recomputes in-process.  [pmap] is whichever pool's
    map serves this dispatch. *)
let map_retry (pmap : 'a list -> ('b, string) result list) (jobs : 'a list) :
    'b option list =
  let first = pmap jobs in
  let failed =
    List.map2 (fun j r -> (j, r)) jobs first
    |> List.mapi (fun i (j, r) -> (i, j, r))
    |> List.filter_map (fun (i, j, r) ->
           match r with Error _ -> Some (i, j) | Ok _ -> None)
  in
  if failed = [] then
    List.map (function Ok v -> Some v | Error _ -> None) first
  else begin
    let retry = pmap (List.map snd failed) in
    let patched = Hashtbl.create 8 in
    List.iter2 (fun (i, _) r -> Hashtbl.replace patched i r) failed retry;
    List.mapi
      (fun i r ->
        let r =
          match Hashtbl.find_opt patched i with Some r' -> r' | None -> r
        in
        match r with Ok v -> Some v | Error _ -> None)
      first
  end

(* ------------------------------------------------------------------ *)
(* Backend-agnostic pool handles                                       *)
(* ------------------------------------------------------------------ *)

(** A pool of either flavour, for callers whose worker function is the
    same on both backends (the batch axis, the multi-task interference
    fixpoint).  [init] is evaluated in the parent for a fork pool (the
    workers inherit its result by copy-on-write) and once inside each
    fresh domain for a domains pool. *)
type ('a, 'b) anypool =
  | Ap_fork of ('a, 'b) Pool.t
  | Ap_domains of ('a, 'b) Dompool.t

let create_pool ~(jobs : int) ~(backend : C.Config.backend)
    (init : unit -> 'a -> 'b) : ('a, 'b) anypool =
  let be = effective_backend backend in
  note_backend be;
  match be with
  | `Fork -> Ap_fork (Pool.create ~jobs (init ()))
  | `Domains -> Ap_domains (Dompool.create ~jobs init)

let pool_map ?timeout (p : ('a, 'b) anypool) (jobs : 'a list) :
    ('b, string) result list =
  match p with
  | Ap_fork pl -> Pool.map ?timeout pl jobs
  | Ap_domains pl -> Dompool.map ?timeout pl jobs

let shutdown_pool (p : ('a, 'b) anypool) : unit =
  match p with
  | Ap_fork pl -> Pool.shutdown pl
  | Ap_domains pl -> Dompool.shutdown pl

let pool_backend (p : ('a, 'b) anypool) : [ `Fork | `Domains ] =
  match p with Ap_fork _ -> `Fork | Ap_domains _ -> `Domains

(* ------------------------------------------------------------------ *)
(* Axis (a): intra-program disjunct jobs                               *)
(* ------------------------------------------------------------------ *)

(* Shared-memory jobs must not share mutable pack values with their
   siblings or with the coordinator's live states: the octagon closure
   cache mutates in place, and two domains lazily closing one
   physically-shared octagon race (on weak memory the closure flag
   could be observed before the matrix writes).  Unshare the job's
   state at dispatch — the fork backend needs none of this, Marshal
   deep-copies (and that is exactly its cost). *)
let unshare_job (pj : C.Iterator.par_job) : C.Iterator.par_job =
  { pj with C.Transfer.pj_state = C.Astate.unshare pj.C.Transfer.pj_state }

(** Analyze [p] with [cfg.jobs] workers on the configured backend.  The
    context is built and every cell interned {e before} any dispatch,
    so coordinator and workers share one frozen cell numbering and
    shipped states mean the same thing on both sides. *)
let analyze ?session ?(cfg = C.Config.default) (p : F.Tast.program) :
    C.Analysis.result =
  let ses =
    match session with Some s -> s | None -> C.Transfer.new_session ()
  in
  let jobs = cfg.C.Config.jobs in
  if jobs <= 1 then
    C.Analysis.analyze ~session:ses ~cfg:{ cfg with C.Config.jobs = 1 } p
  else begin
    let actx = C.Transfer.make_actx ~session:ses cfg p in
    C.Transfer.prefill_cells actx;
    (* drain buffered trace events to the sink before dispatching: fork
       workers would otherwise inherit (and possibly re-write) the
       buffered bytes; domain workers are born with empty buffers. *)
    Trace.flush ();
    let with_dispatch dispatch =
      ses.C.Transfer.ses_par_hook <- Some dispatch;
      Fun.protect
        ~finally:(fun () -> ses.C.Transfer.ses_par_hook <- None)
        (fun () -> C.Analysis.analyze_prepared actx p)
    in
    let be = effective_backend cfg.C.Config.par_backend in
    note_backend be;
    match be with
    | `Fork ->
        (* workers inherit the prepared context (including any summary
           memo) by copy-on-write *)
        Pool.with_pool ~jobs
          (fun job -> C.Iterator.par_run_job actx job)
          (fun pool ->
            with_dispatch (fun pjobs ->
                map_retry (Pool.map ~timeout:!intra_job_timeout pool) pjobs))
    | `Domains ->
        (* each domain builds its own context view: fresh session (no
           memo — memoization is observationally transparent), fresh
           bookkeeping, shared read-only structure *)
        Dompool.with_pool ~jobs
          (fun () ->
            let wa = C.Transfer.worker_actx actx in
            fun job -> C.Iterator.par_run_job wa job)
          (fun pool ->
            with_dispatch (fun pjobs ->
                map_retry (Dompool.map pool) (List.map unshare_job pjobs)))
  end

(** Install the parallel driver: after this, [Analysis.analyze] with
    [cfg.jobs > 1] routes through [analyze] above. *)
let register () =
  C.Analysis.parallel_driver :=
    Some (fun ses cfg p -> analyze ~session:ses ~cfg p)

(* ------------------------------------------------------------------ *)
(* Axis (b): whole-program batch jobs                                  *)
(* ------------------------------------------------------------------ *)

type batch_source =
  | Bs_program of F.Tast.program  (** already compiled *)
  | Bs_sources of (string * string) list  (** (filename, contents) pairs *)

type batch_job = {
  bj_label : string;
  bj_main : string;
  bj_cfg : C.Config.t;
  bj_source : batch_source;
}

let batch_job ?(label = "") ?(main = "main") ?(cfg = C.Config.default)
    (source : batch_source) : batch_job =
  { bj_label = label; bj_main = main; bj_cfg = cfg; bj_source = source }

(** Run one batch job sequentially (workers and the fallback path). *)
let run_batch_job (bj : batch_job) : C.Analysis.result =
  let cfg = { bj.bj_cfg with C.Config.jobs = 1 } in
  match bj.bj_source with
  | Bs_program p -> C.Analysis.analyze ~cfg p
  | Bs_sources srcs -> C.Analysis.analyze_sources ~cfg ~main:bj.bj_main srcs

(* Worker-side wrapper for the batch axis: detach any inherited trace
   sink (a no-op in a fresh domain, whose tracer is born detached) and
   ship the job's registry delta back with the result, so profile
   probes and iterator counters cover batch runs too. *)
let run_batch_job_delta (bj : batch_job) :
    C.Analysis.result * Metrics.snapshot =
  Trace.in_worker ();
  let m0 = Metrics.snapshot () in
  let r = run_batch_job bj in
  (r, Metrics.diff m0)

(** Run a batch of whole-program analyses on [jobs] workers, results in
    job order.  Failed jobs are retried once, then recomputed
    in-process.  Worker registry deltas (metrics, profile probes) are
    absorbed in item order, so batch reports merge deterministically
    whatever the backend and interleaving. *)
let analyze_batch ?(jobs = default_jobs ()) ?(backend : C.Config.backend = `Auto)
    (items : batch_job list) : (string * C.Analysis.result) list =
  if jobs <= 1 || List.compare_length_with items 2 < 0 then
    List.map (fun bj -> (bj.bj_label, run_batch_job bj)) items
  else begin
    Trace.flush ();
    let pool =
      create_pool ~jobs:(min jobs (List.length items)) ~backend (fun () ->
          run_batch_job_delta)
    in
    Fun.protect
      ~finally:(fun () -> shutdown_pool pool)
      (fun () ->
        let rs =
          map_retry (pool_map ~timeout:!batch_job_timeout pool) items
        in
        List.map2
          (fun bj r ->
            ( bj.bj_label,
              match r with
              | Some (r, delta) ->
                  Metrics.absorb delta;
                  r
              | None -> run_batch_job bj ))
          items rs)
  end
