(** Parallel scheduler: intra-program disjunct jobs (axis a) and
    whole-program batch jobs (axis b), with deterministic merge and a
    retry-once-then-sequential fault policy. *)

module C = Astree_core
module F = Astree_frontend

(** Worker count matching the machine's available cores. *)
val default_jobs : unit -> int

(** Per-job wall-clock budgets (seconds) before a worker is presumed
    hung and its job retried. *)
val intra_job_timeout : float ref

val batch_job_timeout : float ref

(** Analyze with [cfg.jobs] worker processes; identical results to the
    sequential analysis.  [cfg.jobs <= 1] runs sequentially.
    [?session] threads an existing analysis session through (the
    dispatch hook is installed in it for the duration of the run). *)
val analyze :
  ?session:C.Transfer.session ->
  ?cfg:C.Config.t ->
  F.Tast.program ->
  C.Analysis.result

(** Install the driver: [Analysis.analyze] with [cfg.jobs > 1] then
    routes through this module. *)
val register : unit -> unit

type batch_source =
  | Bs_program of F.Tast.program  (** already compiled *)
  | Bs_sources of (string * string) list  (** (filename, contents) pairs *)

type batch_job = {
  bj_label : string;
  bj_main : string;
  bj_cfg : C.Config.t;
  bj_source : batch_source;
}

val batch_job :
  ?label:string -> ?main:string -> ?cfg:C.Config.t -> batch_source -> batch_job

(** Run one batch job sequentially in-process. *)
val run_batch_job : batch_job -> C.Analysis.result

(** Run whole-program analyses on a worker pool; returns
    (label, result) pairs in job order.  Failed jobs are retried once,
    then recomputed in-process. *)
val analyze_batch :
  ?jobs:int -> batch_job list -> (string * C.Analysis.result) list
