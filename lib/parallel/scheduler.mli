(** Parallel scheduler: intra-program disjunct jobs (axis a) and
    whole-program batch jobs (axis b), served by either the fork pool
    or the OCaml 5 shared-memory domains pool, with deterministic merge
    and a retry-once-then-sequential fault policy. *)

module C = Astree_core
module F = Astree_frontend

(** Worker count matching the machine's available cores. *)
val default_jobs : unit -> int

(** Per-job wall-clock budgets (seconds) before a fork worker is
    presumed hung and its job retried.  The domains backend cannot kill
    a job; it relies on jobs being analysis fragments that terminate. *)
val intra_job_timeout : float ref

val batch_job_timeout : float ref

(** What [`Auto] resolves to when nothing forces fork ([`Domains] by
    default).  The OCaml 5 runtime forbids [Unix.fork] once any domain
    has ever been spawned in the process, so a process that must stay
    fork-capable (the test harness, the bench driver) pins this to
    [`Fork] and exercises the domains backend in forked subprocess
    children. *)
val auto_backend : [ `Fork | `Domains ] ref

(** Resolve a configured backend to the pool flavour that will actually
    serve: [`Auto] and [`Domains] degrade to [`Fork] while fault
    injection ([ASTREE_FAULTS]/chaos) or a resource budget is armed —
    injection points and budget kills only exist in fork workers. *)
val effective_backend : C.Config.backend -> [ `Fork | `Domains ]

(** {1 Backend-agnostic pools}

    For callers whose worker function is identical on both backends
    (the batch axis, the multi-task interference fixpoint). *)

type ('a, 'b) anypool

(** [create_pool ~jobs ~backend init] resolves the backend (setting the
    [par.backend] gauge) and builds the pool.  [init] is evaluated in
    the parent for a fork pool (workers inherit its result by
    copy-on-write) and once inside each fresh domain otherwise. *)
val create_pool :
  jobs:int -> backend:C.Config.backend -> (unit -> 'a -> 'b) ->
  ('a, 'b) anypool

(** Run jobs, results in job order.  [timeout] bounds each job on the
    fork backend; ignored by the domains backend. *)
val pool_map :
  ?timeout:float -> ('a, 'b) anypool -> 'a list -> ('b, string) result list

val shutdown_pool : ('a, 'b) anypool -> unit

(** Which flavour actually serves this pool. *)
val pool_backend : ('a, 'b) anypool -> [ `Fork | `Domains ]

(** Retry-once map: [Error] slots of the first round are resubmitted
    once; persistent failures come back as [None] and the caller
    recomputes in-process. *)
val map_retry :
  ('a list -> ('b, string) result list) -> 'a list -> 'b option list

(** Analyze with [cfg.jobs] workers on the configured backend;
    identical results to the sequential analysis.  [cfg.jobs <= 1] runs
    sequentially.  [?session] threads an existing analysis session
    through (the dispatch hook is installed in it for the duration of
    the run). *)
val analyze :
  ?session:C.Transfer.session ->
  ?cfg:C.Config.t ->
  F.Tast.program ->
  C.Analysis.result

(** Install the driver: [Analysis.analyze] with [cfg.jobs > 1] then
    routes through this module. *)
val register : unit -> unit

type batch_source =
  | Bs_program of F.Tast.program  (** already compiled *)
  | Bs_sources of (string * string) list  (** (filename, contents) pairs *)

type batch_job = {
  bj_label : string;
  bj_main : string;
  bj_cfg : C.Config.t;
  bj_source : batch_source;
}

val batch_job :
  ?label:string -> ?main:string -> ?cfg:C.Config.t -> batch_source -> batch_job

(** Run one batch job sequentially in-process. *)
val run_batch_job : batch_job -> C.Analysis.result

(** Run whole-program analyses on a worker pool of the given backend
    (default [`Auto]); returns (label, result) pairs in job order.
    Failed jobs are retried once, then recomputed in-process. *)
val analyze_batch :
  ?jobs:int -> ?backend:C.Config.backend -> batch_job list ->
  (string * C.Analysis.result) list
