(** Shared-memory worker pool on OCaml 5 domains: jobs and replies pass
    by reference (no Marshal, so Ptmap physical sharing inside abstract
    states survives the worker boundary), with per-worker run queues
    and work stealing.  Results always come back in job order.

    No per-job timeouts or crash isolation — a domain cannot be killed.
    The scheduler routes to the fork {!Pool} when fault injection or a
    resource budget is armed. *)

type ('a, 'b) t

(** Spawn [jobs] worker domains.  [init] is evaluated once {e inside}
    each fresh domain to build its job function — per-domain state (a
    worker analysis context, the domain-local metrics/trace stores) is
    created there.  An [init] that raises turns every job that worker
    runs into [Error _] (the caller's retry/fallback path applies).
    @raise Invalid_argument if [jobs < 1]. *)
val create : jobs:int -> (unit -> 'a -> 'b) -> ('a, 'b) t

(** Whether this process has ever spawned a domains pool.  The OCaml 5
    runtime refuses [Unix.fork] from then on (even after all domains
    are joined), so the fork backend is permanently unavailable once
    this holds — the scheduler consults it when resolving backends. *)
val ever_spawned : unit -> bool

val size : ('a, 'b) t -> int

(** Run every job, returning results in job order whatever the
    execution interleaving.  Jobs are dealt round-robin into per-worker
    queues; idle workers steal from the back of the longest sibling
    queue (counted by the [par.steals] metric).  [?timeout] is accepted
    for interface compatibility with {!Pool.map} and ignored.  The
    resource budget is polled at each job completion; a trip abandons
    queued work and re-raises. *)
val map : ?timeout:float -> ('a, 'b) t -> 'a list -> ('b, string) result list

(** Stop the workers: queued work is abandoned, in-flight jobs finish,
    domains are joined. *)
val shutdown : ('a, 'b) t -> unit

(** [with_pool ~jobs init k] runs [k] with a fresh pool, shutting it
    down on exit. *)
val with_pool : jobs:int -> (unit -> 'a -> 'b) -> (('a, 'b) t -> 'c) -> 'c
