(** Minimal HTTP/1.0 listener for the daemon's telemetry endpoints
    ([astreed --http PORT]): the roadmap's transport seam, multiplexed
    into the daemon's existing select loop rather than running its own.

    Scope is deliberately tiny — GET only, loopback only, no
    keep-alive: every request is answered with [Connection: close] and
    the socket shut.  The daemon contributes {!fds} to its [select]
    read set and calls {!handle_ready} with the readable ones; this
    module never blocks outside an accept/read/write on an fd select
    declared ready. *)

type t

val create : port:int -> (t, string) result
(** Bind and listen on [127.0.0.1:port] ([port = 0] picks a free one,
    readable back through {!port}). *)

val port : t -> int

val fds : t -> Unix.file_descr list
(** The listening fd plus every open connection fd — add to the select
    read set. *)

val all_fds : t -> Unix.file_descr list
(** Same as {!fds}; the daemon closes these in forked pool workers so a
    worker's stale copy can never hold a connection open. *)

val handle_ready :
  t -> ready:Unix.file_descr list -> (string -> int * string * string) -> unit
(** Accept/read on whichever of {!fds} appear in [ready].  A complete
    request invokes the handler with the path (query string stripped);
    the handler returns [(status_code, content_type, body)].  Non-GET
    methods get 405, oversized or malformed requests 400, all without
    touching the handler. *)

val close : t -> unit
(** Close the listener and every open connection. *)
