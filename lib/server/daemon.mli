(** The analysis daemon: a Unix-domain-socket server multiplexing
    concurrent analyze requests over the fork pool.

    One process owns the listening socket and a [select] event loop;
    requests are dispatched to long-lived pool workers (which keep the
    typed-IR cache warm), and finished requests ship back their report
    plus summary-table, metrics and trace deltas.  The daemon absorbs
    the deltas: summaries accumulate in a resident per-program store
    that seeds later requests ([ses_preload]), metrics accumulate in
    the registry served by the [metrics] verb.

    {b Protocol} (newline-delimited JSON, one object per line):
    requests carry a [verb] ([analyze], [status], [metrics],
    [shutdown]) and an optional [id] echoed in the reply; replies carry
    a [status] of [ok], [error], [shed] (admission refused: queue
    full) or [shutting_down].  See DESIGN.md section 12 for the full
    grammar.

    {b Shutdown.}  SIGINT, SIGTERM and the [shutdown] verb all route
    through the budget subsystem's interrupt flag: the daemon stops
    accepting, unlinks the socket, tells queued clients
    [shutting_down], drains in-flight requests (bounded by [d_grace]),
    flushes the resident store to [d_cache_dir] and exits. *)

type config = {
  d_socket : string;         (** path of the listening socket *)
  d_workers : int;           (** pool size = max in-flight requests *)
  d_queue_depth : int;       (** admission queue bound; 0 = no queue *)
  d_timeout : float;         (** default per-request budget (seconds)
                                 applied when a request brings none;
                                 [0.] = none *)
  d_max_mem : int;           (** default per-request heap watermark *)
  d_cache_dir : string option;
      (** persist the resident summary store here at shutdown, and use
          it as the workers' summary cache directory *)
  d_max_programs : int;      (** resident-store program cap (LRU-ish) *)
  d_grace : float;           (** drain bound: in-flight requests still
                                 running this many seconds after
                                 shutdown started are canceled *)
  d_verbose : bool;          (** log connections and requests on stderr *)
}

val default : config

val run : config -> int
(** Serve until interrupted; returns the process exit code ([0] after a
    clean shutdown, [1] on a startup failure such as a live daemon
    already owning the socket). *)
