(** The analysis daemon: a Unix-domain-socket server multiplexing
    concurrent analyze requests over the fork pool.

    One process owns the listening socket and a [select] event loop;
    requests are dispatched to long-lived pool workers (which keep the
    typed-IR cache warm), and finished requests ship back their report
    plus summary-table, metrics and trace deltas.  The daemon absorbs
    the deltas: summaries accumulate in a resident per-program store
    that seeds later requests ([ses_preload]), metrics accumulate in
    the registry served by the [metrics] verb.

    {b Protocol} (newline-delimited JSON, one object per line):
    requests carry a [verb] ([analyze], [status], [metrics],
    [shutdown]) and an optional [id] echoed in the reply; replies carry
    a [status] of [ok], [error], [shed] (admission refused: queue full
    or per-client quota, with a [retry_after_s] pacing hint) or
    [shutting_down].  Every reply also echoes a request id [rid]
    (client-minted, or assigned on arrival) that stamps the request's
    trace span and access-log line — the join key across client,
    daemon and telemetry.  See DESIGN.md section 12 for the full
    grammar.

    {b Admission and fairness.}  Identical concurrent requests (same
    source digest and resolved options) share one worker job and each
    receive the full reply.  Queued work is held per client connection
    and dispatched round-robin, bounded per client by [d_client_quota];
    a program whose analysis crashed its worker [d_breaker_n] times in
    a row is refused by a circuit breaker until [d_breaker_cooldown]
    elapses, then probed half-open.

    {b Warm-state checkpoint.}  With [d_checkpoint] set, the resident
    summary store is periodically (and at shutdown) written through the
    atomic blob store, and reloaded at startup: a daemon restarted
    after a crash is warm within one request.  A torn or corrupt
    checkpoint degrades to a cold start, never an error.

    {b Hot reload.}  SIGHUP rereads [d_config_file] (when given) and
    swaps the admission-time knobs — queue depth, grace, per-request
    budget, client quota, default jobs/backend, breaker and checkpoint
    parameters — without touching in-flight requests; [status] reports
    the config generation.

    {b Shutdown.}  SIGINT, SIGTERM and the [shutdown] verb all route
    through the budget subsystem's interrupt flag: the daemon stops
    accepting, unlinks the socket, tells queued clients
    [shutting_down], drains in-flight requests (bounded by [d_grace]),
    checkpoints and flushes the resident store and exits. *)

type config = {
  d_socket : string;         (** path of the listening socket *)
  d_workers : int;           (** pool size = max in-flight requests *)
  d_queue_depth : int;       (** admission queue bound; 0 = no queue *)
  d_timeout : float;         (** default per-request budget (seconds)
                                 applied when a request brings none;
                                 [0.] = none *)
  d_max_mem : int;           (** default per-request heap watermark *)
  d_cache_dir : string option;
      (** persist the resident summary store here at shutdown, and use
          it as the workers' summary cache directory *)
  d_max_programs : int;      (** resident-store program cap (LRU-ish) *)
  d_grace : float;           (** drain bound: in-flight requests still
                                 running this many seconds after
                                 shutdown started are canceled *)
  d_verbose : bool;          (** log connections and requests on stderr *)
  d_client_quota : int;      (** queued requests allowed per connection;
                                 [0] = auto ([queue_depth / 2], min 1) *)
  d_breaker_n : int;         (** consecutive worker crashes on one
                                 program that open its circuit breaker;
                                 [0] disables the breaker *)
  d_breaker_cooldown : float;
      (** seconds an open breaker refuses a program before letting one
          half-open probe through *)
  d_checkpoint : string option;
      (** warm-state checkpoint file; [None] = no checkpointing *)
  d_checkpoint_s : float;    (** seconds between periodic checkpoint
                                 saves ([0.] = every loop iteration
                                 with dirty state) *)
  d_config_file : string option;
      (** JSON config overlay reread on SIGHUP *)
  d_default_jobs : int;      (** default [-j] applied when a request
                                 brings none; [0] = leave the request's
                                 per-core default *)
  d_default_backend : Astree_core.Config.backend;
      (** default worker backend when a request says [`Auto] *)
  d_restarts : int;          (** supervisor restart count, surfaced in
                                 [status] (set via [ASTREED_RESTARTS]) *)
  d_supervised : bool;       (** running under [astreed --supervise] *)
  d_sup_started : float;     (** supervisor start time (epoch seconds;
                                 [0.] = not supervised) *)
  d_http_port : int option;
      (** telemetry HTTP listener on [127.0.0.1:port] serving
          [/metrics], [/healthz], [/readyz] and [/status]; [Some 0]
          picks a free port, [None] (default) disables the listener *)
  d_access_log : string option;
      (** JSONL access log: one line per request lifecycle record plus
          start/drain/checkpoint/exit events; [None] = no log *)
  d_access_log_max : int;
      (** access-log rotation threshold in bytes: when the next line
          would exceed it the file is atomically renamed to [FILE.1]
          and restarted *)
}

val default : config

val load_config_file : config -> string -> (config, string) result
(** Overlay the admission-time knobs from a JSON file
    ([queue_depth], [grace], [timeout], [max_mem], [client_quota],
    [jobs], [backend], [checkpoint_period], [breaker_crashes],
    [breaker_cooldown]) onto [config].  Unknown members are ignored;
    unreadable or unparsable files are an [Error].  Used for the
    initial [--config] load and by the SIGHUP reload. *)

val run : config -> int
(** Serve until interrupted; returns the process exit code ([0] after a
    clean shutdown, [1] on a startup failure such as a live daemon
    already owning the socket). *)
