(* Request semantics: options wire format, the shared flag-to-config
   mapping, the worker-resident typed-IR cache, and the per-request job
   run inside a pool worker.  See service.mli. *)

module C = Astree_core
module F = Astree_frontend

(* ---- options ----------------------------------------------------- *)

type options = {
  o_no_oct : bool;
  o_no_ell : bool;
  o_no_dt : bool;
  o_no_clock : bool;
  o_no_lin : bool;
  o_no_thresholds : bool;
  o_unroll : int;
  o_partition : string list;
  o_max_dtree_bools : int;
  o_useful_packs : int list;
  o_jobs : int;
  o_backend : C.Config.backend;
  o_timeout : float;
  o_max_mem : int;
  o_cache : [ `Default | `Off | `Mem | `Dir of string ];
}

let default_options : options =
  {
    o_no_oct = false;
    o_no_ell = false;
    o_no_dt = false;
    o_no_clock = false;
    o_no_lin = false;
    o_no_thresholds = false;
    o_unroll = 1;
    o_partition = [];
    o_max_dtree_bools = 3;
    o_useful_packs = [];
    o_jobs = 1;
    o_backend = `Auto;
    o_timeout = 0.;
    o_max_mem = 0;
    o_cache = `Default;
  }

let options_to_json (o : options) : Json.t =
  let d = default_options in
  let members = ref [] in
  let put k v = members := (k, v) :: !members in
  if o.o_no_oct <> d.o_no_oct then put "no_octagons" (Json.Bool o.o_no_oct);
  if o.o_no_ell <> d.o_no_ell then put "no_ellipsoids" (Json.Bool o.o_no_ell);
  if o.o_no_dt <> d.o_no_dt then put "no_decision_trees" (Json.Bool o.o_no_dt);
  if o.o_no_clock <> d.o_no_clock then put "no_clock" (Json.Bool o.o_no_clock);
  if o.o_no_lin <> d.o_no_lin then
    put "no_linearization" (Json.Bool o.o_no_lin);
  if o.o_no_thresholds <> d.o_no_thresholds then
    put "no_thresholds" (Json.Bool o.o_no_thresholds);
  if o.o_unroll <> d.o_unroll then put "unroll" (Json.Num (float_of_int o.o_unroll));
  if o.o_partition <> [] then
    put "partition" (Json.List (List.map (fun f -> Json.Str f) o.o_partition));
  if o.o_max_dtree_bools <> d.o_max_dtree_bools then
    put "max_dtree_bools" (Json.Num (float_of_int o.o_max_dtree_bools));
  if o.o_useful_packs <> [] then
    put "useful_packs"
      (Json.List (List.map (fun i -> Json.Num (float_of_int i)) o.o_useful_packs));
  if o.o_jobs <> d.o_jobs then put "jobs" (Json.Num (float_of_int o.o_jobs));
  if o.o_backend <> d.o_backend then
    put "backend" (Json.Str (C.Config.backend_to_string o.o_backend));
  if o.o_timeout <> d.o_timeout then put "timeout" (Json.Num o.o_timeout);
  if o.o_max_mem <> d.o_max_mem then
    put "max_mem" (Json.Num (float_of_int o.o_max_mem));
  (match o.o_cache with
  | `Default -> ()
  | `Off -> put "cache" (Json.Str "off")
  | `Mem -> put "cache" (Json.Str "mem")
  | `Dir dir -> put "cache" (Json.Obj [ ("dir", Json.Str dir) ]));
  Json.Obj (List.rev !members)

let options_of_json (j : Json.t) : options =
  let d = default_options in
  let bool_m k dflt = Option.value ~default:dflt (Json.to_bool (Json.member k j)) in
  let int_m k dflt = Option.value ~default:dflt (Json.to_int (Json.member k j)) in
  let num_m k dflt = Option.value ~default:dflt (Json.to_num (Json.member k j)) in
  let strs k =
    match Json.to_list (Json.member k j) with
    | None -> []
    | Some l -> List.filter_map Json.to_str l
  in
  let ints k =
    match Json.to_list (Json.member k j) with
    | None -> []
    | Some l -> List.filter_map Json.to_int l
  in
  let cache =
    match Json.member "cache" j with
    | Json.Str "off" -> `Off
    | Json.Str "mem" -> `Mem
    | Json.Obj _ as o -> (
        match Json.to_str (Json.member "dir" o) with
        | Some dir -> `Dir dir
        | None -> `Default)
    | _ -> `Default
  in
  {
    o_no_oct = bool_m "no_octagons" d.o_no_oct;
    o_no_ell = bool_m "no_ellipsoids" d.o_no_ell;
    o_no_dt = bool_m "no_decision_trees" d.o_no_dt;
    o_no_clock = bool_m "no_clock" d.o_no_clock;
    o_no_lin = bool_m "no_linearization" d.o_no_lin;
    o_no_thresholds = bool_m "no_thresholds" d.o_no_thresholds;
    o_unroll = int_m "unroll" d.o_unroll;
    o_partition = strs "partition";
    o_max_dtree_bools = int_m "max_dtree_bools" d.o_max_dtree_bools;
    o_useful_packs = ints "useful_packs";
    o_jobs = int_m "jobs" d.o_jobs;
    o_backend =
      (match Json.to_str (Json.member "backend" j) with
      | Some s -> Option.value ~default:d.o_backend (C.Config.backend_of_string s)
      | None -> d.o_backend);
    o_timeout = num_m "timeout" d.o_timeout;
    o_max_mem = int_m "max_mem" d.o_max_mem;
    o_cache = cache;
  }

let config_of (o : options) ~(sources : (string * string) list) : C.Config.t =
  let summary_cache =
    match o.o_cache with
    | `Off | `Default -> C.Config.Cache_off
    | `Mem -> C.Config.Cache_mem
    | `Dir dir -> C.Config.Cache_dir dir
  in
  let cfg =
    {
      C.Config.default with
      (* jobs = 0 means "one worker per available core", resolved
         wherever the analysis actually runs (a daemon worker detects
         its own host) *)
      C.Config.jobs =
        (if o.o_jobs = 0 then Astree_parallel.Scheduler.default_jobs ()
         else max 1 o.o_jobs);
      par_backend = o.o_backend;
      summary_cache;
      timeout = (if o.o_timeout > 0. then o.o_timeout else 0.);
      max_mem_mb = max 0 o.o_max_mem;
      use_octagons = not o.o_no_oct;
      use_ellipsoids = not o.o_no_ell;
      use_decision_trees = not o.o_no_dt;
      use_clocked = not o.o_no_clock;
      use_linearization = not o.o_no_lin;
      widening_thresholds =
        (if o.o_no_thresholds then Astree_domains.Thresholds.none
         else Astree_domains.Thresholds.default);
      loop_unroll = o.o_unroll;
      partitioned_functions = o.o_partition;
      max_dtree_bools = o.o_max_dtree_bools;
      useful_packs_only =
        (match o.o_useful_packs with
        | [] -> None
        | ids -> Some ("cli", ids));
    }
  in
  (* honor "/* astree-partition: f g ... */" markers unless the user
     supplied an explicit partition list *)
  if o.o_partition <> [] then cfg
  else
    let marked =
      List.concat_map (fun (_, src) -> F.Preproc.partition_markers src) sources
      |> List.sort_uniq String.compare
    in
    if marked = [] then cfg
    else { cfg with C.Config.partitioned_functions = marked }

(* ---- compilation ------------------------------------------------- *)

exception Request_error of string

let source_digest ~(main : string) (sources : (string * string) list) : string
    =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (main :: List.concat_map (fun (n, c) -> [ n; c ]) sources)))

(* typed-IR cache: workers are long-lived, so repeated requests for the
   same program skip the frontend entirely *)
let compile_cache : (string, F.Tast.program) Hashtbl.t = Hashtbl.create 8
let compile_cache_max = 32

let compile_cached ~(main : string) (sources : (string * string) list) :
    F.Tast.program =
  let key = source_digest ~main sources in
  match Hashtbl.find_opt compile_cache key with
  | Some p -> p
  | None -> (
      try
        let p, _stats = C.Analysis.compile ~main sources in
        if Hashtbl.length compile_cache >= compile_cache_max then
          Hashtbl.reset compile_cache;
        Hashtbl.add compile_cache key p;
        p
      with
      | F.Lexer.Error (m, l) | F.Parser.Error (m, l) | F.Typecheck.Error (m, l)
        ->
          raise (Request_error (Fmt.str "%a: %s" F.Loc.pp l m))
      | F.Preproc.Error (m, l) ->
          raise (Request_error (Fmt.str "%a: preprocessor: %s" F.Loc.pp l m))
      | C.Iterator.Analysis_error m -> raise (Request_error m))

(* ---- worker jobs ------------------------------------------------- *)

type work = {
  w_sources : (string * string) list;
  w_main : string;
  w_options : options;
  w_preload : (C.Iterator.summary_key * C.Iterator.summary) list;
  w_strip_cache : bool;
}

type served = {
  sv_report : string;
  sv_exit : int;
  sv_alarms : int;
  sv_fingerprint : string;
  sv_degraded : bool;
  sv_tables : (string * (C.Iterator.summary_key * C.Iterator.summary) list) list;
  sv_metrics : Astree_obs.Metrics.snapshot;
  sv_events : Astree_obs.Trace.event list;
  sv_time : float;
}

type outcome = Served of served | Refused of string

let serve (w : work) : outcome =
  let t0 = Unix.gettimeofday () in
  (* a worker inherits the daemon's trace sink; events must travel back
     inside the reply instead (the daemon re-emits them in order) *)
  Astree_obs.Trace.in_worker ();
  let m0 = Astree_obs.Metrics.snapshot () in
  let cmark = Astree_obs.Trace.capture_begin () in
  try
    (* the interference fixpoint drives whole analyses as sub-runs and
       owns its own pool: it does not fit the daemon's one-request =
       one-analysis worker model.  Refuse cleanly instead of failing
       worker-side partway through. *)
    (match
       List.concat_map
         (fun (_, src) -> F.Preproc.task_markers src)
         w.w_sources
     with
    | [] | [ _ ] -> ()
    | t ->
        raise
          (Request_error
             (Fmt.str
                "multi-task program (astree-task markers: %s): not \
                 supported by the analysis server; run astree without \
                 --connect"
                (String.concat " " t))));
    let p = compile_cached ~main:w.w_main w.w_sources in
    let cfg = config_of w.w_options ~sources:w.w_sources in
    if cfg.C.Config.jobs > 1 then Astree_parallel.Scheduler.register ();
    if C.Config.cache_enabled cfg then Astree_incremental.Summary.register ();
    let ses = C.Transfer.new_session () in
    ses.C.Transfer.ses_preload <- w.w_preload;
    ses.C.Transfer.ses_collect_tables <- true;
    let r = Astree_robust.Degrade.analyze ~session:ses ~cfg p in
    let r = if w.w_strip_cache then Report.strip_cache r else r in
    Served
      {
        sv_report = Report.render r;
        sv_exit = Report.exit_code r;
        sv_alarms = C.Analysis.n_alarms r;
        sv_fingerprint = Astree_parallel.Merge.fingerprint r;
        sv_degraded =
          Option.is_some r.C.Analysis.r_stats.C.Analysis.s_degraded;
        sv_tables = ses.C.Transfer.ses_tables;
        sv_metrics = Astree_obs.Metrics.diff m0;
        sv_events = Astree_obs.Trace.capture_end cmark;
        sv_time = Unix.gettimeofday () -. t0;
      }
  with
  | Request_error msg ->
      ignore (Astree_obs.Trace.capture_end cmark);
      Refused msg
  | Sys_error msg ->
      ignore (Astree_obs.Trace.capture_end cmark);
      Refused msg
