(* Operational telemetry for the analysis daemon.  See telemetry.mli.

   Everything here is owned by the daemon's single-threaded event loop,
   so no locking: request records arrive from the loop, feed the
   per-verb latency accounting and are appended to the access log in
   one call.  The only cross-process writer is the supervisor's
   [append_event] (restart records), which uses O_APPEND one-shot
   writes against the same file and never rotates — rotation is owned
   by exactly one process, the daemon. *)

module Metrics = Astree_obs.Metrics

(* ---- request ids -------------------------------------------------- *)

(* Process-unique prefix (pid + wall clock hashed) plus a counter:
   unique within a process by the counter, across concurrent clients
   and daemon restarts by the prefix.  Lazy so forked children that
   never mint ids pay nothing. *)
let id_seed =
  lazy (Hashtbl.hash (Unix.getpid (), Unix.gettimeofday ()) land 0xffffff)

let id_counter = ref 0

let gen_id () =
  Stdlib.incr id_counter;
  Printf.sprintf "r%06x-%06x" (Lazy.force id_seed) (!id_counter land 0xffffff)

(* ---- outcomes ----------------------------------------------------- *)

type outcome =
  [ `Ok | `Error | `Shed | `Dedup | `Breaker_open | `Shutting_down | `Timeout ]

let outcome_string : outcome -> string = function
  | `Ok -> "ok"
  | `Error -> "error"
  | `Shed -> "shed"
  | `Dedup -> "dedup"
  | `Breaker_open -> "breaker_open"
  | `Shutting_down -> "shutting_down"
  | `Timeout -> "timeout"

type record = {
  rc_rid : string;
  rc_verb : string;
  rc_digest : string;          (* "" when the verb has no program *)
  rc_outcome : outcome;
  rc_queue_s : float;
  rc_service_s : float;
  rc_cache_hits : int;
}

(* ---- per-verb latency accounting ---------------------------------- *)

(* Fixed log-spaced bucket bounds in seconds (Prometheus [le] values).
   The per-verb ring of raw end-to-end latencies backs the p50/p90/p99
   quantiles — "rolling" means over the last [ring_size] requests. *)
let bounds =
  [| 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.;
     10.; 30.; 60. |]

let bound_labels =
  [| "0.001"; "0.0025"; "0.005"; "0.01"; "0.025"; "0.05"; "0.1"; "0.25";
     "0.5"; "1"; "2.5"; "5"; "10"; "30"; "60" |]

let ring_size = 512

type vstat = {
  v_counts : int array;        (* per-bound counts; last slot is +Inf *)
  mutable v_sum : float;
  mutable v_count : int;
  v_ring : float array;
  mutable v_ring_n : int;
}

type t = {
  tl_path : string option;
  tl_max : int;
  mutable tl_oc : out_channel option;
  mutable tl_bytes : int;
  tl_verbs : (string, vstat) Hashtbl.t;
  tl_outcomes : (string * string, int ref) Hashtbl.t; (* (verb, outcome) *)
  tl_started : float;
}

let create ?access_log ?(max_log_bytes = 8 * 1024 * 1024) ~now () : t =
  let bytes =
    match access_log with
    | Some path when Sys.file_exists path ->
        (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0)
    | _ -> 0
  in
  {
    tl_path = access_log;
    tl_max = max 4096 max_log_bytes;
    tl_oc = None;
    tl_bytes = bytes;
    tl_verbs = Hashtbl.create 8;
    tl_outcomes = Hashtbl.create 16;
    tl_started = now;
  }

let started t = t.tl_started

let vstat_of t verb =
  match Hashtbl.find_opt t.tl_verbs verb with
  | Some v -> v
  | None ->
      let v =
        {
          v_counts = Array.make (Array.length bounds + 1) 0;
          v_sum = 0.;
          v_count = 0;
          v_ring = Array.make ring_size 0.;
          v_ring_n = 0;
        }
      in
      Hashtbl.add t.tl_verbs verb v;
      v

(* ---- access log --------------------------------------------------- *)

(* Size-capped rotation: when the next line would push the file past
   the cap, close, atomically rename to [path.1] (clobbering the
   previous generation) and start fresh.  Readers see either the old
   file complete at [.1] or the new file — never a truncated half. *)
let write_line t (line : string) : unit =
  match t.tl_path with
  | None -> ()
  | Some path ->
      let len = String.length line + 1 in
      if t.tl_bytes > 0 && t.tl_bytes + len > t.tl_max then begin
        (match t.tl_oc with Some oc -> close_out_noerr oc | None -> ());
        t.tl_oc <- None;
        (try Sys.rename path (path ^ ".1") with Sys_error _ -> ());
        t.tl_bytes <- 0
      end;
      match
        match t.tl_oc with
        | Some oc -> oc
        | None ->
            let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
            t.tl_oc <- Some oc;
            oc
      with
      | exception Sys_error _ -> ()   (* unwritable log never kills serving *)
      | oc ->
          output_string oc line;
          output_char oc '\n';
          Stdlib.flush oc;
          t.tl_bytes <- t.tl_bytes + len

let close t =
  (match t.tl_oc with Some oc -> close_out_noerr oc | None -> ());
  t.tl_oc <- None

let record_json ~now (r : record) : string =
  Json.to_string
    (Json.Obj
       [
         ("t", Json.Num now);
         ("event", Json.Str "request");
         ("rid", Json.Str r.rc_rid);
         ("verb", Json.Str r.rc_verb);
         ("digest", Json.Str r.rc_digest);
         ("outcome", Json.Str (outcome_string r.rc_outcome));
         ("queue_s", Json.Num r.rc_queue_s);
         ("service_s", Json.Num r.rc_service_s);
         ("cache_hits", Json.Num (float_of_int r.rc_cache_hits));
       ])

let observe t ~now (r : record) : unit =
  let v = vstat_of t r.rc_verb in
  let lat = Float.max 0. (r.rc_queue_s +. r.rc_service_s) in
  let i =
    let rec go i =
      if i >= Array.length bounds then i
      else if lat <= bounds.(i) then i
      else go (i + 1)
    in
    go 0
  in
  v.v_counts.(i) <- v.v_counts.(i) + 1;
  v.v_sum <- v.v_sum +. lat;
  v.v_count <- v.v_count + 1;
  v.v_ring.(v.v_ring_n mod ring_size) <- lat;
  v.v_ring_n <- v.v_ring_n + 1;
  let key = (r.rc_verb, outcome_string r.rc_outcome) in
  (match Hashtbl.find_opt t.tl_outcomes key with
  | Some n -> Stdlib.incr n
  | None -> Hashtbl.add t.tl_outcomes key (ref 1));
  write_line t (record_json ~now r)

let event t ~now (kind : string) (fields : (string * Json.t) list) : unit =
  write_line t
    (Json.to_string
       (Json.Obj (("t", Json.Num now) :: ("event", Json.Str kind) :: fields)))

(* One-shot append from another process (the supervisor).  O_APPEND
   plus a single [write] keeps concurrently appended lines whole. *)
let append_event ~(path : string) ~now (kind : string)
    (fields : (string * Json.t) list) : unit =
  let line =
    Json.to_string
      (Json.Obj (("t", Json.Num now) :: ("event", Json.Str kind) :: fields))
    ^ "\n"
  in
  match
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      let rec write_all off =
        let n = String.length line - off in
        if n > 0 then
          match Unix.write_substring fd line off n with
          | k -> write_all (off + k)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      in
      (try write_all 0 with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* ---- quantiles ---------------------------------------------------- *)

let quantile t ~(verb : string) (q : float) : float option =
  match Hashtbl.find_opt t.tl_verbs verb with
  | None -> None
  | Some v ->
      let n = min v.v_ring_n ring_size in
      if n = 0 then None
      else begin
        let a = Array.sub v.v_ring 0 n in
        Array.sort compare a;
        let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
        Some a.(max 0 (min (n - 1) i))
      end

let quantiles_json t : string =
  let verbs =
    Hashtbl.fold (fun verb v acc -> (verb, v) :: acc) t.tl_verbs []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  "{"
  ^ String.concat ", "
      (List.map
         (fun (verb, v) ->
           let q p =
             match quantile t ~verb p with Some x -> x | None -> 0.
           in
           Printf.sprintf
             "\"%s\": {\"p50\": %.6f, \"p90\": %.6f, \"p99\": %.6f, \
              \"count\": %d}"
             (Json.escape verb) (q 0.5) (q 0.9) (q 0.99) v.v_count)
         verbs)
  ^ "}"

(* ---- Prometheus text exposition ----------------------------------- *)

let prom_name (s : string) : string =
  let b = Buffer.create (String.length s + 1) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' ->
          if i = 0 then Buffer.add_char b '_';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  if Buffer.length b = 0 then "_" else Buffer.contents b

let prom_label (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fnum (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* Families render sorted by family name and deterministically within a
   family (buckets by ascending [le], labelled series by sorted label
   values), so equal inputs yield byte-identical expositions. *)
let render_prometheus t ~now (ms : Metrics.snapshot) : string =
  let families : (string * string) list ref = ref [] in
  let family name typ lines =
    if lines <> [] then
      families :=
        ( name,
          Printf.sprintf "# TYPE %s %s\n" name typ
          ^ String.concat "" (List.map (fun l -> l ^ "\n") lines) )
        :: !families
  in
  (* registry entries under the astree_ prefix *)
  List.iter
    (fun (x : Metrics.export) ->
      let base = "astree_" ^ prom_name x.Metrics.x_name in
      match x.Metrics.x_kind with
      | `Counter ->
          family (base ^ "_total") "counter"
            [ Printf.sprintf "%s_total %d" base x.Metrics.x_int ]
      | `Gauge ->
          family base "gauge" [ Printf.sprintf "%s %d" base x.Metrics.x_int ]
      | `Timer ->
          family (base ^ "_seconds_total") "counter"
            [ Printf.sprintf "%s_seconds_total %s" base (fnum x.Metrics.x_time) ]
      | `Hist ->
          (* log2 buckets: bucket i counts v with 2^i <= v+1 < 2^(i+1),
             i.e. v <= 2^(i+1)-2 — that difference is the [le] bound.
             Trailing empty buckets are elided; +Inf carries the total.
             No _sum: the registry does not track one. *)
          let last = ref (-1) in
          Array.iteri
            (fun i v -> if v <> 0 then last := i)
            x.Metrics.x_buckets;
          let cum = ref 0 in
          let lines = ref [] in
          for i = 0 to !last do
            cum := !cum + x.Metrics.x_buckets.(i);
            lines :=
              Printf.sprintf "%s_bucket{le=\"%d\"} %d" base
                ((1 lsl (i + 1)) - 2)
                !cum
              :: !lines
          done;
          lines :=
            Printf.sprintf "%s_count %d" base !cum
            :: Printf.sprintf "%s_bucket{le=\"+Inf\"} %d" base !cum
            :: !lines;
          family base "histogram" (List.rev !lines))
    (Metrics.export ms);
  (* per-verb request latency: a histogram family over fixed bounds and
     a summary family carrying the rolling p50/p90/p99 *)
  let verbs =
    Hashtbl.fold (fun verb v acc -> (verb, v) :: acc) t.tl_verbs []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if verbs <> [] then begin
    let hist_lines =
      List.concat_map
        (fun (verb, v) ->
          let lv = prom_label verb in
          let cum = ref 0 in
          let buckets =
            List.init (Array.length bounds) (fun i ->
                cum := !cum + v.v_counts.(i);
                Printf.sprintf
                  "astreed_request_duration_seconds_bucket{le=\"%s\",\
                   verb=\"%s\"} %d"
                  bound_labels.(i) lv !cum)
          in
          buckets
          @ [
              Printf.sprintf
                "astreed_request_duration_seconds_bucket{le=\"+Inf\",\
                 verb=\"%s\"} %d"
                lv v.v_count;
              Printf.sprintf
                "astreed_request_duration_seconds_sum{verb=\"%s\"} %s" lv
                (fnum v.v_sum);
              Printf.sprintf
                "astreed_request_duration_seconds_count{verb=\"%s\"} %d" lv
                v.v_count;
            ])
        verbs
    in
    family "astreed_request_duration_seconds" "histogram" hist_lines;
    let sum_lines =
      List.concat_map
        (fun (verb, v) ->
          let lv = prom_label verb in
          let q p =
            match quantile t ~verb p with Some x -> x | None -> 0.
          in
          [
            Printf.sprintf
              "astreed_request_latency_seconds{quantile=\"0.5\",\
               verb=\"%s\"} %s"
              lv (fnum (q 0.5));
            Printf.sprintf
              "astreed_request_latency_seconds{quantile=\"0.9\",\
               verb=\"%s\"} %s"
              lv (fnum (q 0.9));
            Printf.sprintf
              "astreed_request_latency_seconds{quantile=\"0.99\",\
               verb=\"%s\"} %s"
              lv (fnum (q 0.99));
            Printf.sprintf "astreed_request_latency_seconds_sum{verb=\"%s\"} %s"
              lv (fnum v.v_sum);
            Printf.sprintf
              "astreed_request_latency_seconds_count{verb=\"%s\"} %d" lv
              v.v_count;
          ])
        verbs
    in
    family "astreed_request_latency_seconds" "summary" sum_lines
  end;
  (* per-(verb, outcome) request counts *)
  let outcomes =
    Hashtbl.fold (fun (verb, oc) n acc -> (verb, oc, !n) :: acc) t.tl_outcomes []
    |> List.sort compare
  in
  if outcomes <> [] then
    family "astreed_requests_total" "counter"
      (List.map
         (fun (verb, oc, n) ->
           Printf.sprintf "astreed_requests_total{outcome=\"%s\",verb=\"%s\"} %d"
             (prom_label oc) (prom_label verb) n)
         outcomes);
  family "astreed_up" "gauge" [ "astreed_up 1" ];
  family "astreed_uptime_seconds" "gauge"
    [
      Printf.sprintf "astreed_uptime_seconds %s"
        (fnum (Float.max 0. (now -. t.tl_started)));
    ];
  !families
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map snd |> String.concat ""
