(** Client side of the daemon protocol, used by [astree --connect] and
    the tests: connect to the socket, send one newline-delimited JSON
    request, read one reply line.

    The daemon renders the report with the same {!Report.render} the
    one-shot CLI uses and splices it verbatim as the {e last} member of
    the reply, so {!reply_report} can recover the exact bytes without
    reserializing — that is what makes client-mode output
    byte-identical to in-process output. *)

val try_connect : string -> Unix.file_descr option
(** Connect to the daemon socket; [None] when nothing listens there
    (the CLI then falls back to an in-process analysis). *)

val close : Unix.file_descr -> unit

(** Buffered line reader over a connection: use one [chan] per
    descriptor when pipelining several requests before reading. *)
type chan

val reader : Unix.file_descr -> chan
val read_reply : chan -> (string, string) result
val send : Unix.file_descr -> string -> (unit, string) result

val roundtrip : Unix.file_descr -> string -> (string, string) result
(** Send one request line, read one reply line (without the newline).
    [Error] is an I/O or protocol failure, not a server-reported
    error — those come back as [Ok] lines with [status != "ok"]. *)

(** A decoded reply. *)
type reply = {
  r_status : string;          (** ok | error | shed | shutting_down *)
  r_exit : int;               (** exit code for ok analyze replies *)
  r_error : string option;
  r_report : string option;   (** raw report bytes, analyze replies *)
  r_line : string;            (** the full reply line *)
}

val decode : string -> reply
val reply_report : string -> string option

val analyze_request :
  ?id:int ->
  sources:(string * string) list ->
  main:string ->
  options:Service.options ->
  unit ->
  string
(** Render one analyze request line (no newline). *)

val request : string -> Json.t -> (reply, string) result
(** One-shot convenience: connect to socket [path], send the request
    object, decode the reply, close. *)
