(** Client side of the daemon protocol, used by [astree --connect] and
    the tests: connect to the socket, send one newline-delimited JSON
    request, read one reply line.

    The daemon renders the report with the same {!Report.render} the
    one-shot CLI uses and splices it verbatim as the {e last} member of
    the reply, so {!reply_report} can recover the exact bytes without
    reserializing — that is what makes client-mode output
    byte-identical to in-process output. *)

val try_connect : string -> Unix.file_descr option
(** Connect to the daemon socket; [None] when nothing listens there
    (the CLI then falls back to an in-process analysis). *)

val close : Unix.file_descr -> unit

(** Buffered line reader over a connection: use one [chan] per
    descriptor when pipelining several requests before reading. *)
type chan

val reader : Unix.file_descr -> chan
val read_reply : chan -> (string, string) result
val send : Unix.file_descr -> string -> (unit, string) result

val roundtrip : Unix.file_descr -> string -> (string, string) result
(** Send one request line, read one reply line (without the newline).
    [Error] is an I/O or protocol failure, not a server-reported
    error — those come back as [Ok] lines with [status != "ok"]. *)

(** A decoded reply. *)
type reply = {
  r_status : string;          (** ok | error | shed | shutting_down *)
  r_exit : int;               (** exit code for ok analyze replies *)
  r_error : string option;
  r_retry_after : float option;
      (** shed replies: the daemon's pacing hint, seconds *)
  r_report : string option;   (** raw report bytes, analyze replies *)
  r_rid : string option;      (** the daemon's echoed request id *)
  r_line : string;            (** the full reply line *)
}

val decode : string -> reply
val reply_report : string -> string option

val analyze_request_json :
  ?id:int ->
  ?rid:string ->
  sources:(string * string) list ->
  main:string ->
  options:Service.options ->
  unit ->
  Json.t
(** One analyze request as a JSON value (for {!request} and
    {!request_retry}).  [rid] is the request id stamped on the daemon's
    reply, trace span and access-log line; one is minted with
    {!Telemetry.gen_id} when not supplied. *)

val analyze_request :
  ?id:int ->
  ?rid:string ->
  sources:(string * string) list ->
  main:string ->
  options:Service.options ->
  unit ->
  string
(** Render one analyze request line (no newline). *)

val request : string -> Json.t -> (reply, string) result
(** One-shot convenience: connect to socket [path], send the request
    object, decode the reply, close. *)

(** Result of a {!request_retry}: a definitive reply, "nothing ever
    listened here" (in-process fallback applies), or the retry budget
    ran out while the daemon stayed unreachable or overloaded. *)
type outcome = Reply of reply | No_daemon | Exhausted of string

val request_retry :
  ?policy:Astree_robust.Backoff.policy ->
  ?seed:int ->
  string ->
  Json.t ->
  outcome
(** Like {!request}, but resilient: connection failures, torn replies
    and [shed]/[shutting_down] responses are retried up to
    [policy.b_retries] times with jittered exponential backoff
    (default {!Astree_robust.Backoff.default}: 4 retries from 0.1s).
    A shed reply's [retry_after_s] hint overrides the ladder for that
    wait.  [No_daemon] is returned only when the very first connect
    fails {e and} no socket file exists — a crashed-but-supervised
    daemon leaves its socket linked, which reads as "restarting, be
    patient" rather than "fall back".  Each retry bumps the
    [srv.client.retries] metrics counter and, with tracing on, emits a
    [srv.client.retry] event carrying the request id, attempt number,
    reason and chosen delay. *)
