(* The analysis daemon: select()-based event loop over the listening
   socket, the client connections and the pool workers' reply pipes.
   See daemon.mli for the protocol and shutdown contract.

   Single-threaded by construction: every state mutation happens in the
   event loop, so admission control, delta absorption and shutdown need
   no locking.  The analyses themselves run in forked pool workers, one
   request per worker at a time. *)

module C = Astree_core
module Pool = Astree_parallel.Pool
module Store = Astree_incremental.Store
module Budget = Astree_robust.Budget
module Metrics = Astree_obs.Metrics
module Trace = Astree_obs.Trace

type config = {
  d_socket : string;
  d_workers : int;
  d_queue_depth : int;
  d_timeout : float;
  d_max_mem : int;
  d_cache_dir : string option;
  d_max_programs : int;
  d_grace : float;
  d_verbose : bool;
}

let default : config =
  {
    d_socket = "astreed.sock";
    d_workers = 4;
    d_queue_depth = 32;
    d_timeout = 0.;
    d_max_mem = 0;
    d_cache_dir = None;
    d_max_programs = 32;
    d_grace = 60.;
    d_verbose = false;
  }

(* ---- connections ------------------------------------------------- *)

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;          (* bytes read, not yet line-terminated *)
  mutable c_alive : bool;
}

type pending = {
  p_conn : conn;
  p_id : string;             (* the request id, already rendered *)
  p_work : Service.work;
  p_digest : string;         (* source digest, keys the resident store *)
  p_received : float;
}

type entries = (C.Iterator.summary_key * C.Iterator.summary) list

type state = {
  st_cfg : config;
  st_pool : (Service.work, Service.outcome) Pool.t;
  mutable st_listen : Unix.file_descr option;
  mutable st_conns : conn list;
  st_inflight : (int, pending) Hashtbl.t;       (* pool slot -> request *)
  st_queue : pending Queue.t;
  (* resident summary store: source digest -> per-store-key tables,
     merged keep-first (keys self-identify config and entry state, so
     colliding entries are equal) *)
  st_tables : (string, (string * entries) list ref) Hashtbl.t;
  st_order : string Queue.t;                    (* digest insertion order *)
  st_started : float;
  mutable st_draining : bool;
  mutable st_drain_t : float;
  mutable st_served : int;
  mutable st_shed : int;
  mutable st_errors : int;
}

let log st fmt =
  Format.kasprintf
    (fun s -> if st.st_cfg.d_verbose then prerr_endline ("astreed: " ^ s))
    fmt

(* ---- socket i/o -------------------------------------------------- *)

let rec write_all fd s off =
  let n = String.length s - off in
  if n > 0 then
    match Unix.write_substring fd s off n with
    | k -> write_all fd s (off + k)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off

let close_conn st conn =
  if conn.c_alive then begin
    conn.c_alive <- false;
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    st.st_conns <- List.filter (fun c -> c != conn) st.st_conns
  end

let reply st conn (line : string) =
  if conn.c_alive then
    try write_all conn.c_fd (line ^ "\n") 0
    with Unix.Unix_error _ -> close_conn st conn

(* ---- reply rendering --------------------------------------------- *)

let error_reply id msg =
  Printf.sprintf "{\"id\": %s, \"status\": \"error\", \"error\": %s}" id
    (Report.json_str msg)

let shed_reply id =
  Printf.sprintf
    "{\"id\": %s, \"status\": \"shed\", \"error\": \"queue full\"}" id

let shutting_down_reply id =
  Printf.sprintf "{\"id\": %s, \"status\": \"shutting_down\"}" id

(* the report is spliced in verbatim and kept last, so clients can
   extract the exact bytes without reserializing *)
let ok_reply pend (sv : Service.served) ~now =
  let wait = Float.max 0. (now -. pend.p_received -. sv.sv_time) in
  Printf.sprintf
    "{\"id\": %s, \"status\": \"ok\", \"exit\": %d, \"server\": \
     {\"wait_s\": %.6f, \"analysis_s\": %.6f, \"preloaded\": %d, \
     \"events\": %d, \"metrics\": %s}, \"report\": %s}"
    pend.p_id sv.sv_exit wait sv.sv_time
    (List.length pend.p_work.Service.w_preload)
    (List.length sv.sv_events)
    (Metrics.render_snapshot_json ~timers:false sv.sv_metrics)
    sv.sv_report

let status_reply st id ~now =
  Printf.sprintf
    "{\"id\": %s, \"status\": \"ok\", \"server\": {\"pid\": %d, \
     \"uptime_s\": %.3f, \"workers\": %d, \"backend\": \"fork\", \
     \"inflight\": %d, \
     \"queued\": %d, \"served\": %d, \"shed\": %d, \"errors\": %d, \
     \"programs\": %d, \"draining\": %b}}"
    id (Unix.getpid ()) (now -. st.st_started)
    (* the daemon's own request pool is always the fork pool — workers
       must be killable and respawnable under foot; the analysis inside
       a worker picks its backend per request (see Service.config_of) *)
    (Pool.size st.st_pool)
    (Hashtbl.length st.st_inflight)
    (Queue.length st.st_queue) st.st_served st.st_shed st.st_errors
    (Hashtbl.length st.st_tables) st.st_draining

let metrics_reply id =
  Printf.sprintf "{\"id\": %s, \"status\": \"ok\", \"metrics\": %s}" id
    (Metrics.render_json ~timers:false ())

(* ---- resident summary store -------------------------------------- *)

let resident_preload st digest : entries =
  match Hashtbl.find_opt st.st_tables digest with
  | None -> []
  | Some tables -> List.concat_map snd !tables

let absorb_tables st digest (tables : (string * entries) list) =
  if tables <> [] then begin
    let slot =
      match Hashtbl.find_opt st.st_tables digest with
      | Some r -> r
      | None ->
          if Hashtbl.length st.st_tables >= st.st_cfg.d_max_programs then begin
            match Queue.take_opt st.st_order with
            | Some old -> Hashtbl.remove st.st_tables old
            | None -> ()
          end;
          Queue.push digest st.st_order;
          let r = ref [] in
          Hashtbl.add st.st_tables digest r;
          r
    in
    List.iter
      (fun (key, entries) ->
        let existing =
          Option.value ~default:[] (List.assoc_opt key !slot)
        in
        let seen = Hashtbl.create (List.length existing + 1) in
        List.iter (fun (k, _) -> Hashtbl.replace seen k ()) existing;
        let fresh =
          List.filter (fun (k, _) -> not (Hashtbl.mem seen k)) entries
        in
        if fresh <> [] || existing = [] then
          slot := (key, existing @ fresh) :: List.remove_assoc key !slot)
      tables
  end

let flush_store st =
  match st.st_cfg.d_cache_dir with
  | None -> ()
  | Some dir ->
      Hashtbl.iter
        (fun _ tables ->
          List.iter
            (fun (key, entries) ->
              if entries <> [] then Store.save ~dir ~key entries)
            !tables)
        st.st_tables

(* ---- admission --------------------------------------------------- *)

let hard_deadline (pend : pending) =
  let t = pend.p_work.Service.w_options.Service.o_timeout in
  (* the degradation ladder's own envelope is 2x the budget; the pool
     deadline only catches wedged workers, so leave generous slack *)
  if t > 0. then (2. *. t) +. 30. else infinity

let try_submit st pend : bool =
  let rec go attempts =
    if attempts = 0 then false
    else
      match
        Pool.submit ~timeout:(hard_deadline pend) st.st_pool pend.p_work
      with
      | Some slot ->
          Hashtbl.replace st.st_inflight slot pend;
          true
      | None ->
          (* all busy — or a dead pipe was respawned; retry in the
             latter case *)
          if Pool.idle_slots st.st_pool > 0 then go (attempts - 1) else false
  in
  go (Pool.size st.st_pool)

let drain_queue st =
  let rec go () =
    if (not (Queue.is_empty st.st_queue)) && Pool.idle_slots st.st_pool > 0
    then begin
      let pend = Queue.pop st.st_queue in
      if try_submit st pend then go ()
      else begin
        (* no worker took it after all: put it back at the front *)
        let rest = Queue.create () in
        Queue.transfer st.st_queue rest;
        Queue.push pend st.st_queue;
        Queue.transfer rest st.st_queue
      end
    end
  in
  go ()

let admit st pend =
  if st.st_draining then reply st pend.p_conn (shutting_down_reply pend.p_id)
  else if try_submit st pend then ()
  else if Queue.length st.st_queue < st.st_cfg.d_queue_depth then
    Queue.push pend st.st_queue
  else begin
    st.st_shed <- st.st_shed + 1;
    log st "shed request %s (queue full)" pend.p_id;
    reply st pend.p_conn (shed_reply pend.p_id)
  end

(* ---- request handling -------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let request_sources (j : Json.t) : ((string * string) list, string) result =
  match Json.to_list (Json.member "files" j) with
  | Some files ->
      let parsed =
        List.map
          (fun f ->
            match
              ( Json.to_str (Json.member "name" f),
                Json.to_str (Json.member "contents" f) )
            with
            | Some n, Some c -> Some (n, c)
            | _ -> None)
          files
      in
      if List.exists Option.is_none parsed then
        Error "files must be [{\"name\": .., \"contents\": ..}, ..]"
      else if parsed = [] then Error "no input files"
      else Ok (List.filter_map Fun.id parsed)
  | None -> (
      match Json.to_list (Json.member "path" j) with
      | Some paths ->
          let paths = List.filter_map Json.to_str paths in
          if paths = [] then Error "no input files"
          else (
            try Ok (List.map (fun p -> (p, read_file p)) paths)
            with Sys_error msg -> Error msg)
      | None -> Error "analyze needs \"files\" or \"path\"")

let handle_analyze st conn id (j : Json.t) ~now =
  match request_sources j with
  | Error msg -> reply st conn (error_reply id msg)
  | Ok sources ->
      let main =
        Option.value ~default:"main" (Json.to_str (Json.member "main" j))
      in
      let o = Service.options_of_json (Json.member "options" j) in
      (* daemon-level defaults apply when the request brings none *)
      let o =
        {
          o with
          Service.o_timeout =
            (if o.Service.o_timeout > 0. then o.Service.o_timeout
             else st.st_cfg.d_timeout);
          o_max_mem =
            (if o.Service.o_max_mem > 0 then o.Service.o_max_mem
             else st.st_cfg.d_max_mem);
        }
      in
      let digest = Service.source_digest ~main sources in
      (* requests that did not pick a cache run against the resident
         store (plus the on-disk one when the daemon persists), with
         the counters stripped from the report for parity with a
         cache-less one-shot run.  An explicit cache choice is honored
         verbatim — including no preload — so the reply matches the
         equivalent one-shot exactly. *)
      let o, strip, preload =
        if o.Service.o_cache = `Default then
          let c =
            match st.st_cfg.d_cache_dir with
            | Some dir -> `Dir dir
            | None -> `Mem
          in
          ({ o with Service.o_cache = c }, true, resident_preload st digest)
        else (o, false, [])
      in
      admit st
        {
          p_conn = conn;
          p_id = id;
          p_work =
            {
              Service.w_sources = sources;
              w_main = main;
              w_options = o;
              w_preload = preload;
              w_strip_cache = strip;
            };
          p_digest = digest;
          p_received = now;
        }

let handle_line st conn (line : string) ~now =
  match Json.parse line with
  | Error msg -> reply st conn (error_reply "null" ("bad request: " ^ msg))
  | Ok j -> (
      let id = Json.to_string (Json.member "id" j) in
      match Json.to_str (Json.member "verb" j) with
      | Some "analyze" -> handle_analyze st conn id j ~now
      | Some "status" -> reply st conn (status_reply st id ~now)
      | Some "metrics" -> reply st conn (metrics_reply id)
      | Some "shutdown" ->
          reply st conn
            (Printf.sprintf "{\"id\": %s, \"status\": \"ok\"}" id);
          Budget.interrupt ()
      | Some v -> reply st conn (error_reply id ("unknown verb: " ^ v))
      | None -> reply st conn (error_reply id "missing verb"))

(* read whatever the connection has, split off complete lines *)
let handle_readable st conn ~now =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn st conn
  | 0 -> close_conn st conn
  | n ->
      Buffer.add_subbytes conn.c_buf chunk 0 n;
      let data = Buffer.contents conn.c_buf in
      let lines = String.split_on_char '\n' data in
      let rec go = function
        | [] | [ "" ] -> Buffer.clear conn.c_buf
        | [ partial ] ->
            Buffer.clear conn.c_buf;
            Buffer.add_string conn.c_buf partial
        | line :: rest ->
            if String.trim line <> "" then handle_line st conn line ~now;
            go rest
      in
      go lines

(* ---- worker completions ------------------------------------------ *)

let finish st slot ~now =
  match Hashtbl.find_opt st.st_inflight slot with
  | None -> ignore (Pool.reap st.st_pool slot)
  | Some pend ->
      Hashtbl.remove st.st_inflight slot;
      (match Pool.reap st.st_pool slot with
      | Ok (Service.Served sv) ->
          Metrics.absorb sv.Service.sv_metrics;
          if !Trace.enabled then Trace.absorb sv.Service.sv_events;
          absorb_tables st pend.p_digest sv.Service.sv_tables;
          st.st_served <- st.st_served + 1;
          log st "served %s: exit %d, %d alarms, %.3fs" pend.p_id
            sv.Service.sv_exit sv.Service.sv_alarms sv.Service.sv_time;
          reply st pend.p_conn (ok_reply pend sv ~now)
      | Ok (Service.Refused msg) ->
          st.st_errors <- st.st_errors + 1;
          reply st pend.p_conn (error_reply pend.p_id msg)
      | Error msg ->
          st.st_errors <- st.st_errors + 1;
          log st "request %s failed: %s" pend.p_id msg;
          reply st pend.p_conn (error_reply pend.p_id msg));
      drain_queue st

let cancel_expired st ~now =
  List.iter
    (fun slot ->
      match Hashtbl.find_opt st.st_inflight slot with
      | None -> Pool.cancel st.st_pool slot
      | Some pend ->
          Hashtbl.remove st.st_inflight slot;
          Pool.cancel st.st_pool slot;
          st.st_errors <- st.st_errors + 1;
          log st "request %s timed out (hard limit)" pend.p_id;
          reply st pend.p_conn (error_reply pend.p_id "request timed out"))
    (Pool.expired_slots st.st_pool ~now);
  drain_queue st

(* ---- shutdown ---------------------------------------------------- *)

let begin_drain st ~now =
  st.st_draining <- true;
  st.st_drain_t <- now;
  (match st.st_listen with
  | Some fd ->
      st.st_listen <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink st.st_cfg.d_socket with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ());
  Queue.iter
    (fun pend -> reply st pend.p_conn (shutting_down_reply pend.p_id))
    st.st_queue;
  Queue.clear st.st_queue;
  log st "shutting down: %d in-flight request(s) draining"
    (Hashtbl.length st.st_inflight)

let force_cancel_inflight st =
  Hashtbl.iter
    (fun slot pend ->
      Pool.cancel st.st_pool slot;
      reply st pend.p_conn
        (error_reply pend.p_id "canceled: daemon shutting down"))
    st.st_inflight;
  Hashtbl.reset st.st_inflight

(* ---- socket setup ------------------------------------------------ *)

let bind_socket (path : string) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
     (* a socket file exists: live daemon, or debris from a dead one? *)
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     let live =
       try
         Unix.connect probe (Unix.ADDR_UNIX path);
         true
       with Unix.Unix_error _ -> false
     in
     (try Unix.close probe with Unix.Unix_error _ -> ());
     if live then begin
       (try Unix.close fd with Unix.Unix_error _ -> ());
       failwith ("a daemon is already listening on " ^ path)
     end
     else begin
       Unix.unlink path;
       Unix.bind fd (Unix.ADDR_UNIX path)
     end);
  Unix.listen fd 64;
  fd

(* ---- the event loop ---------------------------------------------- *)

let run (dc : config) : int =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Budget.install_signal_handlers ();
  match bind_socket dc.d_socket with
  | exception Failure msg ->
      prerr_endline ("astreed: " ^ msg);
      1
  | exception Unix.Unix_error (e, _, _) ->
      prerr_endline
        ("astreed: cannot bind " ^ dc.d_socket ^ ": " ^ Unix.error_message e);
      1
  | listen_fd ->
      let st =
        {
          st_cfg = dc;
          st_pool = Pool.create ~jobs:(max 1 dc.d_workers) Service.serve;
          st_listen = Some listen_fd;
          st_conns = [];
          st_inflight = Hashtbl.create 16;
          st_queue = Queue.create ();
          st_tables = Hashtbl.create 16;
          st_order = Queue.create ();
          st_started = Unix.gettimeofday ();
          st_draining = false;
          st_drain_t = 0.;
          st_served = 0;
          st_shed = 0;
          st_errors = 0;
        }
      in
      log st "listening on %s (%d worker(s), queue depth %d)" dc.d_socket
        (Pool.size st.st_pool) dc.d_queue_depth;
      let rec loop () =
        let now = Unix.gettimeofday () in
        if Budget.interrupt_pending () && not st.st_draining then
          begin_drain st ~now;
        if st.st_draining && Hashtbl.length st.st_inflight = 0 then ()
        else begin
          if
            st.st_draining
            && now -. st.st_drain_t > dc.d_grace
            && Hashtbl.length st.st_inflight > 0
          then force_cancel_inflight st;
          if st.st_draining && Hashtbl.length st.st_inflight = 0 then ()
          else begin
            let busy = Pool.busy_fds st.st_pool in
            let rfds =
              (match st.st_listen with Some fd -> [ fd ] | None -> [])
              @ List.map (fun c -> c.c_fd) st.st_conns
              @ List.map fst busy
            in
            let timeout =
              let deadline = Pool.next_deadline st.st_pool in
              if deadline = infinity then 1.0
              else Float.max 0.01 (Float.min 1.0 (deadline -. now))
            in
            (match Unix.select rfds [] [] timeout with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | ready, _, _ ->
                let now = Unix.gettimeofday () in
                (* worker completions first: they free slots the queued
                   requests are waiting for *)
                List.iter
                  (fun (fd, slot) ->
                    if List.mem fd ready then finish st slot ~now)
                  busy;
                List.iter
                  (fun conn ->
                    if conn.c_alive && List.mem conn.c_fd ready then
                      handle_readable st conn ~now)
                  st.st_conns;
                (match st.st_listen with
                | Some fd when List.mem fd ready -> (
                    match Unix.accept fd with
                    | exception Unix.Unix_error _ -> ()
                    | cfd, _ ->
                        st.st_conns <-
                          { c_fd = cfd; c_buf = Buffer.create 256;
                            c_alive = true }
                          :: st.st_conns;
                        log st "client connected (%d total)"
                          (List.length st.st_conns))
                | _ -> ()));
            cancel_expired st ~now:(Unix.gettimeofday ());
            loop ()
          end
        end
      in
      loop ();
      flush_store st;
      List.iter (fun conn -> close_conn st conn) st.st_conns;
      Pool.shutdown st.st_pool;
      (match st.st_listen with
      | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (try Unix.unlink dc.d_socket
           with Unix.Unix_error _ | Sys_error _ -> ())
      | None -> ());
      log st "exited cleanly (%d served, %d shed, %d errors)" st.st_served
        st.st_shed st.st_errors;
      0
