(* The analysis daemon: select()-based event loop over the listening
   socket, the client connections and the pool workers' reply pipes.
   See daemon.mli for the protocol and shutdown contract.

   Single-threaded by construction: every state mutation happens in the
   event loop, so admission control, delta absorption, checkpointing
   and shutdown need no locking.  The analyses themselves run in forked
   pool workers, one request per worker at a time. *)

module C = Astree_core
module Pool = Astree_parallel.Pool
module Store = Astree_incremental.Store
module Budget = Astree_robust.Budget
module Faultsim = Astree_robust.Faultsim
module Metrics = Astree_obs.Metrics
module Trace = Astree_obs.Trace

type config = {
  d_socket : string;
  d_workers : int;
  d_queue_depth : int;
  d_timeout : float;
  d_max_mem : int;
  d_cache_dir : string option;
  d_max_programs : int;
  d_grace : float;
  d_verbose : bool;
  d_client_quota : int;
  d_breaker_n : int;
  d_breaker_cooldown : float;
  d_checkpoint : string option;
  d_checkpoint_s : float;
  d_config_file : string option;
  d_default_jobs : int;
  d_default_backend : C.Config.backend;
  d_restarts : int;
  d_supervised : bool;
  d_sup_started : float;
  d_http_port : int option;        (* Some p: telemetry HTTP on 127.0.0.1:p *)
  d_access_log : string option;
  d_access_log_max : int;
}

let default : config =
  {
    d_socket = "astreed.sock";
    d_workers = 4;
    d_queue_depth = 32;
    d_timeout = 0.;
    d_max_mem = 0;
    d_cache_dir = None;
    d_max_programs = 32;
    d_grace = 60.;
    d_verbose = false;
    d_client_quota = 0;
    d_breaker_n = 3;
    d_breaker_cooldown = 30.;
    d_checkpoint = None;
    d_checkpoint_s = 5.;
    d_config_file = None;
    d_default_jobs = 0;
    d_default_backend = `Auto;
    d_restarts = 0;
    d_supervised = false;
    d_sup_started = 0.;
    d_http_port = None;
    d_access_log = None;
    d_access_log_max = 8 * 1024 * 1024;
  }

(* ---- hot-reloadable configuration -------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* only admission-time knobs are reloadable: the socket, worker count
   and checkpoint file identify the daemon instance and stay fixed *)
let overlay_config (cfg : config) (j : Json.t) : config =
  let num key dflt = Option.value ~default:dflt (Json.to_num (Json.member key j)) in
  let int key dflt = Option.value ~default:dflt (Json.to_int (Json.member key j)) in
  {
    cfg with
    d_queue_depth = int "queue_depth" cfg.d_queue_depth;
    d_grace = num "grace" cfg.d_grace;
    d_timeout = num "timeout" cfg.d_timeout;
    d_max_mem = int "max_mem" cfg.d_max_mem;
    d_client_quota = int "client_quota" cfg.d_client_quota;
    d_default_jobs = int "jobs" cfg.d_default_jobs;
    d_default_backend =
      (match Json.to_str (Json.member "backend" j) with
      | Some s ->
          Option.value ~default:cfg.d_default_backend
            (C.Config.backend_of_string s)
      | None -> cfg.d_default_backend);
    d_checkpoint_s = num "checkpoint_period" cfg.d_checkpoint_s;
    d_breaker_n = int "breaker_crashes" cfg.d_breaker_n;
    d_breaker_cooldown = num "breaker_cooldown" cfg.d_breaker_cooldown;
  }

let load_config_file (cfg : config) (file : string) : (config, string) result =
  match read_file file with
  | exception Sys_error msg -> Error msg
  | s -> (
      match Json.parse s with
      | Error msg -> Error (file ^ ": " ^ msg)
      | Ok j -> Ok (overlay_config cfg j))

(* ---- metrics ------------------------------------------------------ *)

let m_requests = Metrics.counter "srv.requests"
let m_shed = Metrics.counter "srv.shed"
let m_dedup = Metrics.counter "srv.dedup_hits"
let m_breaker = Metrics.counter "srv.breaker_open"
let m_ckpt_saves = Metrics.counter "srv.checkpoint.saves"

(* ---- connections and requests ------------------------------------ *)

type entries = (C.Iterator.summary_key * C.Iterator.summary) list

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;          (* bytes read, not yet line-terminated *)
  mutable c_alive : bool;
  c_queue : pending Queue.t; (* this client's admitted-but-waiting jobs *)
}

(* a client waiting for one job's reply; several waiters share a
   pending when identical requests were deduplicated onto one worker *)
and waiter = {
  wt_conn : conn;
  wt_id : string;            (* the protocol id, already rendered *)
  wt_rid : string;           (* the request id (tracing/access log) *)
  wt_received : float;
  wt_attached : bool;        (* true: joined an in-flight job (dedup) *)
}

and pending = {
  p_work : Service.work;
  p_digest : string;         (* source digest, keys the resident store *)
  p_key : string;            (* digest + wire options: the dedup key *)
  mutable p_waiters : waiter list;  (* newest first *)
}

type state = {
  mutable st_cfg : config;
  mutable st_gen : int;      (* config generation, bumped by SIGHUP *)
  st_pool : (Service.work, Service.outcome) Pool.t;
  st_tele : Telemetry.t;
  st_http : Http.t option;
  mutable st_listen : Unix.file_descr option;
  mutable st_conns : conn list;
  st_inflight : (int, pending) Hashtbl.t;       (* pool slot -> request *)
  st_keys : (string, int) Hashtbl.t;            (* dedup key -> pool slot *)
  st_rr : conn Queue.t;      (* round-robin dispatch order; a conn is
                                present at most once, iff its queue may
                                be nonempty *)
  mutable st_queued : int;   (* total requests across all conn queues *)
  (* resident summary store: source digest -> per-store-key tables,
     merged keep-first (keys self-identify config and entry state, so
     colliding entries are equal) *)
  st_tables : (string, (string * entries) list ref) Hashtbl.t;
  st_order : string Queue.t;                    (* digest insertion order *)
  (* circuit breaker: digest -> (consecutive crashes, last crash time) *)
  st_breaker : (string, int * float) Hashtbl.t;
  st_lat : float array;      (* ring of recent analysis times (p50) *)
  mutable st_lat_n : int;
  st_started : float;
  mutable st_draining : bool;
  mutable st_drain_t : float;
  mutable st_served : int;
  mutable st_shed : int;
  mutable st_errors : int;
  mutable st_dedup : int;
  mutable st_breaker_rejects : int;
  mutable st_recovered : int;       (* programs warm from a checkpoint *)
  mutable st_ckpt_saves : int;
  mutable st_ckpt_dirty : bool;
  mutable st_ckpt_t : float;
}

let log st fmt =
  Format.kasprintf
    (fun s -> if st.st_cfg.d_verbose then prerr_endline ("astreed: " ^ s))
    fmt

(* ---- socket i/o -------------------------------------------------- *)

let rec write_all fd s off =
  let n = String.length s - off in
  if n > 0 then
    match Unix.write_substring fd s off n with
    | k -> write_all fd s (off + k)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off

let close_conn st conn =
  if conn.c_alive then begin
    conn.c_alive <- false;
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    st.st_conns <- List.filter (fun c -> c != conn) st.st_conns;
    (* queued work of a dead client is dropped; any st_rr entry for the
       conn becomes a no-op the dispatcher skips *)
    st.st_queued <- st.st_queued - Queue.length conn.c_queue;
    Queue.clear conn.c_queue
  end

let reply st conn (line : string) =
  if conn.c_alive then
    if Faultsim.fires Faultsim.Conn_drop then begin
      (* the connection dies instead of the reply arriving: the client
         sees a reset and must retry *)
      log st "fault injection: dropping connection before reply";
      close_conn st conn
    end
    else if Faultsim.fires Faultsim.Reply_partial then begin
      (* a torn wire write: half the line, then the connection dies.
         The client's reader sees an unterminated line + EOF. *)
      log st "fault injection: writing partial reply";
      let s = line ^ "\n" in
      (try write_all conn.c_fd (String.sub s 0 (String.length s / 2)) 0
       with Unix.Unix_error _ -> ());
      close_conn st conn
    end
    else
      try write_all conn.c_fd (line ^ "\n") 0
      with Unix.Unix_error _ -> close_conn st conn

(* ---- reply rendering --------------------------------------------- *)

(* every reply echoes the request id so clients, trace spans and
   access-log lines can be joined on it *)
let error_reply ?(rid = "") id msg =
  Printf.sprintf "{\"id\": %s, \"rid\": %s, \"status\": \"error\", \
                  \"error\": %s}"
    id (Report.json_str rid) (Report.json_str msg)

let shed_reply ?(error = "queue full") ~rid id ~retry_after =
  Printf.sprintf
    "{\"id\": %s, \"rid\": %s, \"status\": \"shed\", \"error\": %s, \
     \"retry_after_s\": %.3f}"
    id (Report.json_str rid) (Report.json_str error) retry_after

let shutting_down_reply ~rid id =
  Printf.sprintf "{\"id\": %s, \"rid\": %s, \"status\": \"shutting_down\"}" id
    (Report.json_str rid)

(* the report is spliced in verbatim and kept last, so clients can
   extract the exact bytes without reserializing *)
let ok_reply ~rid ~id ~received ~preloaded (sv : Service.served) ~now =
  let wait = Float.max 0. (now -. received -. sv.Service.sv_time) in
  Printf.sprintf
    "{\"id\": %s, \"rid\": %s, \"status\": \"ok\", \"exit\": %d, \"server\": \
     {\"wait_s\": %.6f, \"analysis_s\": %.6f, \"preloaded\": %d, \
     \"events\": %d, \"metrics\": %s}, \"report\": %s}"
    id (Report.json_str rid) sv.sv_exit wait sv.sv_time preloaded
    (List.length sv.sv_events)
    (Metrics.render_snapshot_json ~timers:false sv.sv_metrics)
    sv.sv_report

(* breaker states: open (tripped, inside the cooldown), half-open
   (tripped, cooldown elapsed — the next request is the probe) *)
let breaker_counts st ~now =
  if st.st_cfg.d_breaker_n <= 0 then (0, 0)
  else
    Hashtbl.fold
      (fun _ (n, t) (opened, half) ->
        if n >= st.st_cfg.d_breaker_n then
          if now -. t < st.st_cfg.d_breaker_cooldown then (opened + 1, half)
          else (opened, half + 1)
        else (opened, half))
      st.st_breaker (0, 0)

let open_breakers st ~now = fst (breaker_counts st ~now)

(* the status body, shared between the status verb and GET /status *)
let status_json st ~now =
  let opened, half_open = breaker_counts st ~now in
  Printf.sprintf
    "{\"pid\": %d, \
     \"uptime_s\": %.3f, \"workers\": %d, \"backend\": \"fork\", \
     \"inflight\": %d, \
     \"queued\": %d, \"served\": %d, \"shed\": %d, \"errors\": %d, \
     \"programs\": %d, \"draining\": %b, \"supervised\": %b, \
     \"restarts\": %d, \"supervisor_uptime_s\": %.3f, \
     \"config_generation\": %d, \"queue_depth\": %d, \
     \"dedup_hits\": %d, \"breaker_open\": %d, \"breaker_rejects\": %d, \
     \"recovered\": %d, \"checkpoints\": %d, \"checkpoint_age_s\": %.3f, \
     \"breakers\": {\"open\": %d, \"half_open\": %d}, \"latency\": %s}"
    (Unix.getpid ()) (now -. st.st_started)
    (* the daemon's own request pool is always the fork pool — workers
       must be killable and respawnable under foot; the analysis inside
       a worker picks its backend per request (see Service.config_of) *)
    (Pool.size st.st_pool)
    (Hashtbl.length st.st_inflight)
    st.st_queued st.st_served st.st_shed st.st_errors
    (Hashtbl.length st.st_tables) st.st_draining
    st.st_cfg.d_supervised st.st_cfg.d_restarts
    (if st.st_cfg.d_sup_started > 0. then now -. st.st_cfg.d_sup_started
     else 0.)
    st.st_gen st.st_cfg.d_queue_depth st.st_dedup opened
    st.st_breaker_rejects st.st_recovered st.st_ckpt_saves
    (if st.st_ckpt_saves > 0 then now -. st.st_ckpt_t else -1.)
    opened half_open
    (Telemetry.quantiles_json st.st_tele)

let status_reply st ~rid id ~now =
  Printf.sprintf "{\"id\": %s, \"rid\": %s, \"status\": \"ok\", \"server\": %s}"
    id (Report.json_str rid) (status_json st ~now)

let metrics_reply ~rid id =
  Printf.sprintf "{\"id\": %s, \"rid\": %s, \"status\": \"ok\", \"metrics\": %s}"
    id (Report.json_str rid)
    (Metrics.render_json ~timers:false ())

(* ---- resident summary store -------------------------------------- *)

let resident_preload st digest : entries =
  match Hashtbl.find_opt st.st_tables digest with
  | None -> []
  | Some tables -> List.concat_map snd !tables

let absorb_tables st digest (tables : (string * entries) list) =
  if tables <> [] then begin
    let slot =
      match Hashtbl.find_opt st.st_tables digest with
      | Some r -> r
      | None ->
          if Hashtbl.length st.st_tables >= st.st_cfg.d_max_programs then begin
            match Queue.take_opt st.st_order with
            | Some old -> Hashtbl.remove st.st_tables old
            | None -> ()
          end;
          Queue.push digest st.st_order;
          let r = ref [] in
          Hashtbl.add st.st_tables digest r;
          r
    in
    List.iter
      (fun (key, entries) ->
        let existing =
          Option.value ~default:[] (List.assoc_opt key !slot)
        in
        let seen = Hashtbl.create (List.length existing + 1) in
        List.iter (fun (k, _) -> Hashtbl.replace seen k ()) existing;
        let fresh =
          List.filter (fun (k, _) -> not (Hashtbl.mem seen k)) entries
        in
        if fresh <> [] || existing = [] then
          slot := (key, existing @ fresh) :: List.remove_assoc key !slot)
      tables;
    st.st_ckpt_dirty <- true
  end

let flush_store st =
  match st.st_cfg.d_cache_dir with
  | None -> ()
  | Some dir ->
      Hashtbl.iter
        (fun _ tables ->
          List.iter
            (fun (key, entries) ->
              if entries <> [] then Store.save ~dir ~key entries)
            !tables)
        st.st_tables

(* ---- warm-state checkpoint --------------------------------------- *)

(* v1: (digest * (store_key * entries) list) list, in insertion order *)
let ckpt_magic = "astree-daemon-ckpt v1\n"

type ckpt = (string * (string * entries) list) list

let save_checkpoint st ~now ~force =
  match st.st_cfg.d_checkpoint with
  | None -> ()
  | Some file ->
      if
        st.st_ckpt_dirty
        && (force || now -. st.st_ckpt_t >= st.st_cfg.d_checkpoint_s)
      then begin
        if !Trace.enabled then Trace.span_begin "srv.checkpoint";
        let data : ckpt =
          Queue.fold
            (fun acc digest ->
              match Hashtbl.find_opt st.st_tables digest with
              | Some tables -> (digest, !tables) :: acc
              | None -> acc)
            [] st.st_order
          |> List.rev
        in
        Store.save_blob ~file ~magic:ckpt_magic data;
        st.st_ckpt_saves <- st.st_ckpt_saves + 1;
        st.st_ckpt_dirty <- false;
        st.st_ckpt_t <- now;
        Metrics.incr m_ckpt_saves;
        Metrics.set_gauge "srv.checkpoint.entries" (List.length data);
        if !Trace.enabled then Trace.span_end "srv.checkpoint";
        Telemetry.event st.st_tele ~now "checkpoint_save"
          [
            ("file", Json.Str file);
            ("programs", Json.Num (float_of_int (List.length data)));
          ];
        log st "checkpointed %d program(s) to %s" (List.length data) file
      end

let load_checkpoint st =
  match st.st_cfg.d_checkpoint with
  | None -> ()
  | Some file -> (
      match (Store.load_blob ~file ~magic:ckpt_magic : ckpt option) with
      | None -> ()
      | Some data ->
          List.iter
            (fun (digest, tables) -> absorb_tables st digest tables)
            data;
          (* the recovered state is exactly what the file said: nothing
             to write back until a request changes it *)
          st.st_recovered <- Hashtbl.length st.st_tables;
          st.st_ckpt_dirty <- false;
          Metrics.set_gauge "srv.checkpoint.entries" st.st_recovered;
          Telemetry.event st.st_tele ~now:(Unix.gettimeofday ())
            "checkpoint_load"
            [
              ("file", Json.Str file);
              ("programs", Json.Num (float_of_int st.st_recovered));
            ];
          log st "recovered %d warm program(s) from %s" st.st_recovered file)

(* ---- admission --------------------------------------------------- *)

let quota st =
  if st.st_cfg.d_client_quota > 0 then st.st_cfg.d_client_quota
  else max 1 (st.st_cfg.d_queue_depth / 2)

(* estimated time until a worker frees up: how much work is ahead of a
   retrying client, paced by the recent median analysis time.  Clamped
   to keep pathological estimates from parking clients for minutes. *)
let retry_after st =
  let n = min st.st_lat_n (Array.length st.st_lat) in
  let p50 =
    if n = 0 then 0.1
    else begin
      let a = Array.sub st.st_lat 0 n in
      Array.sort compare a;
      a.(n / 2)
    end
  in
  let ahead = st.st_queued + Hashtbl.length st.st_inflight + 1 in
  let est =
    float_of_int ahead *. p50
    /. float_of_int (max 1 (Pool.size st.st_pool))
  in
  Float.min 60. (Float.max 0.05 est)

let record_latency st t =
  st.st_lat.(st.st_lat_n mod Array.length st.st_lat) <- t;
  st.st_lat_n <- st.st_lat_n + 1

let tele_record st ~now ?(digest = "") ?(queue_s = 0.) ?(service_s = 0.)
    ?(cache_hits = 0) ~verb ~outcome rid =
  Telemetry.observe st.st_tele ~now
    {
      Telemetry.rc_rid = rid;
      rc_verb = verb;
      rc_digest = digest;
      rc_outcome = outcome;
      rc_queue_s = queue_s;
      rc_service_s = service_s;
      rc_cache_hits = cache_hits;
    }

let hard_deadline (pend : pending) =
  let t = pend.p_work.Service.w_options.Service.o_timeout in
  (* the degradation ladder's own envelope is 2x the budget; the pool
     deadline only catches wedged workers, so leave generous slack *)
  if t > 0. then (2. *. t) +. 30. else infinity

let try_submit st pend : bool =
  let rec go attempts =
    if attempts = 0 then false
    else
      match
        Pool.submit ~timeout:(hard_deadline pend) st.st_pool pend.p_work
      with
      | Some slot ->
          Hashtbl.replace st.st_inflight slot pend;
          Hashtbl.replace st.st_keys pend.p_key slot;
          true
      | None ->
          (* all busy — or a dead pipe was respawned; retry in the
             latter case *)
          if Pool.idle_slots st.st_pool > 0 then go (attempts - 1) else false
  in
  go (Pool.size st.st_pool)

(* attach a late identical request to the in-flight job computing it *)
let attach st slot pend =
  match Hashtbl.find_opt st.st_inflight slot with
  | None -> ()
  | Some head ->
      let n = List.length pend.p_waiters in
      (* attached waiters are marked so their completion records read
         dedup, not ok: they rode another request's worker *)
      head.p_waiters <-
        List.map (fun w -> { w with wt_attached = true }) pend.p_waiters
        @ head.p_waiters;
      st.st_dedup <- st.st_dedup + n;
      Metrics.add m_dedup n;
      log st "dedup: %d request(s) attached to in-flight job" n

let requeue_front conn pend =
  let rest = Queue.create () in
  Queue.transfer conn.c_queue rest;
  Queue.push pend conn.c_queue;
  Queue.transfer rest conn.c_queue

(* round-robin dispatch: one queued job per client per turn, so a
   client that batched fifty requests cannot starve the one that sent
   one.  Dedup is re-checked at dispatch: an identical job may have
   been submitted while this one waited. *)
let rec drain_queue st =
  if st.st_queued > 0 && Pool.idle_slots st.st_pool > 0 then
    match Queue.take_opt st.st_rr with
    | None -> ()  (* only dead conns held queued work; accounting reset *)
    | Some conn ->
        if (not conn.c_alive) || Queue.is_empty conn.c_queue then
          drain_queue st
        else begin
          let pend = Queue.pop conn.c_queue in
          st.st_queued <- st.st_queued - 1;
          let requeued_conn = not (Queue.is_empty conn.c_queue) in
          if requeued_conn then Queue.push conn st.st_rr;
          match Hashtbl.find_opt st.st_keys pend.p_key with
          | Some slot when Hashtbl.mem st.st_inflight slot ->
              attach st slot pend;
              drain_queue st
          | _ ->
              if try_submit st pend then drain_queue st
              else begin
                (* no worker took it after all: put it back in front *)
                requeue_front conn pend;
                st.st_queued <- st.st_queued + 1;
                if not requeued_conn then Queue.push conn st.st_rr
              end
        end

let admit st conn pend ~now =
  if st.st_draining then
    List.iter
      (fun w ->
        tele_record st ~now ~digest:pend.p_digest ~verb:"analyze"
          ~outcome:`Shutting_down w.wt_rid;
        reply st w.wt_conn (shutting_down_reply ~rid:w.wt_rid w.wt_id))
      pend.p_waiters
  else
    match Hashtbl.find_opt st.st_keys pend.p_key with
    | Some slot when Hashtbl.mem st.st_inflight slot ->
        (* an identical request is already running: share its worker *)
        attach st slot pend
    | _ ->
        if try_submit st pend then ()
        else if st.st_queued >= st.st_cfg.d_queue_depth then begin
          st.st_shed <- st.st_shed + 1;
          Metrics.incr m_shed;
          let retry_after = retry_after st in
          List.iter
            (fun w ->
              log st "shed request %s (queue full)" w.wt_id;
              tele_record st ~now ~digest:pend.p_digest ~verb:"analyze"
                ~outcome:`Shed w.wt_rid;
              reply st w.wt_conn
                (shed_reply ~rid:w.wt_rid w.wt_id ~retry_after))
            pend.p_waiters
        end
        else if Queue.length conn.c_queue >= quota st then begin
          (* fairness: this client already holds its share of the queue *)
          st.st_shed <- st.st_shed + 1;
          Metrics.incr m_shed;
          let retry_after = retry_after st in
          List.iter
            (fun w ->
              log st "shed request %s (client quota)" w.wt_id;
              tele_record st ~now ~digest:pend.p_digest ~verb:"analyze"
                ~outcome:`Shed w.wt_rid;
              reply st w.wt_conn
                (shed_reply ~error:"client quota exceeded" ~rid:w.wt_rid
                   w.wt_id ~retry_after))
            pend.p_waiters
        end
        else begin
          Queue.push pend conn.c_queue;
          st.st_queued <- st.st_queued + 1;
          if Queue.length conn.c_queue = 1 then Queue.push conn st.st_rr
        end

(* ---- request handling -------------------------------------------- *)

let request_sources (j : Json.t) : ((string * string) list, string) result =
  match Json.to_list (Json.member "files" j) with
  | Some files ->
      let parsed =
        List.map
          (fun f ->
            match
              ( Json.to_str (Json.member "name" f),
                Json.to_str (Json.member "contents" f) )
            with
            | Some n, Some c -> Some (n, c)
            | _ -> None)
          files
      in
      if List.exists Option.is_none parsed then
        Error "files must be [{\"name\": .., \"contents\": ..}, ..]"
      else if parsed = [] then Error "no input files"
      else Ok (List.filter_map Fun.id parsed)
  | None -> (
      match Json.to_list (Json.member "path" j) with
      | Some paths ->
          let paths = List.filter_map Json.to_str paths in
          if paths = [] then Error "no input files"
          else (
            try Ok (List.map (fun p -> (p, read_file p)) paths)
            with Sys_error msg -> Error msg)
      | None -> Error "analyze needs \"files\" or \"path\"")

let handle_analyze st conn ~rid id (j : Json.t) ~now =
  Metrics.incr m_requests;
  (* the supervisor's reason to exist: the daemon can die abruptly at
     the worst moment — mid-admission, request unreplied *)
  if Faultsim.fires Faultsim.Daemon_crash then Unix._exit 70;
  match request_sources j with
  | Error msg ->
      tele_record st ~now ~verb:"analyze" ~outcome:`Error rid;
      reply st conn (error_reply ~rid id msg)
  | Ok sources -> (
      let main =
        Option.value ~default:"main" (Json.to_str (Json.member "main" j))
      in
      let o = Service.options_of_json (Json.member "options" j) in
      (* daemon-level defaults apply when the request brings none *)
      let o =
        {
          o with
          Service.o_timeout =
            (if o.Service.o_timeout > 0. then o.Service.o_timeout
             else st.st_cfg.d_timeout);
          o_max_mem =
            (if o.Service.o_max_mem > 0 then o.Service.o_max_mem
             else st.st_cfg.d_max_mem);
          o_jobs =
            (if o.Service.o_jobs > 0 then o.Service.o_jobs
             else st.st_cfg.d_default_jobs);
          o_backend =
            (if o.Service.o_backend <> `Auto then o.Service.o_backend
             else st.st_cfg.d_default_backend);
        }
      in
      let digest = Service.source_digest ~main sources in
      (* circuit breaker: a program whose analysis crashed the worker
         [d_breaker_n] times in a row is refused with a clean error
         instead of burning another respawn; after the cooldown one
         probe request is let through (half-open) *)
      match Hashtbl.find_opt st.st_breaker digest with
      | Some (n, t)
        when st.st_cfg.d_breaker_n > 0
             && n >= st.st_cfg.d_breaker_n
             && now -. t < st.st_cfg.d_breaker_cooldown ->
          st.st_breaker_rejects <- st.st_breaker_rejects + 1;
          tele_record st ~now ~digest ~verb:"analyze" ~outcome:`Breaker_open
            rid;
          reply st conn
            (error_reply ~rid id
               (Printf.sprintf
                  "circuit breaker open: analysis crashed %d times in a \
                   row for this program; retrying in %.0fs"
                  n
                  (st.st_cfg.d_breaker_cooldown -. (now -. t))))
      | _ ->
          (* requests that did not pick a cache run against the resident
             store (plus the on-disk one when the daemon persists), with
             the counters stripped from the report for parity with a
             cache-less one-shot run.  An explicit cache choice is
             honored verbatim — including no preload — so the reply
             matches the equivalent one-shot exactly. *)
          let o, strip, preload =
            if o.Service.o_cache = `Default then
              let c =
                match st.st_cfg.d_cache_dir with
                | Some dir -> `Dir dir
                | None -> `Mem
              in
              ({ o with Service.o_cache = c }, true, resident_preload st digest)
            else (o, false, [])
          in
          let work =
            {
              Service.w_sources = sources;
              w_main = main;
              w_options = o;
              w_preload = preload;
              w_strip_cache = strip;
            }
          in
          admit st conn
            {
              p_work = work;
              p_digest = digest;
              p_key =
                digest ^ "|" ^ Json.to_string (Service.options_to_json o);
              p_waiters =
                [
                  {
                    wt_conn = conn;
                    wt_id = id;
                    wt_rid = rid;
                    wt_received = now;
                    wt_attached = false;
                  };
                ];
            }
            ~now)

let handle_line st conn (line : string) ~now =
  match Json.parse line with
  | Error msg ->
      tele_record st ~now ~verb:"?" ~outcome:`Error (Telemetry.gen_id ());
      reply st conn (error_reply "null" ("bad request: " ^ msg))
  | Ok j -> (
      let id = Json.to_string (Json.member "id" j) in
      (* clients may mint their own request id; one is assigned here
         otherwise, so every reply/span/log line carries one *)
      let rid =
        match Json.to_str (Json.member "rid" j) with
        | Some r when r <> "" -> r
        | _ -> Telemetry.gen_id ()
      in
      match Json.to_str (Json.member "verb" j) with
      | Some "analyze" -> handle_analyze st conn ~rid id j ~now
      | Some "status" ->
          tele_record st ~now ~verb:"status" ~outcome:`Ok rid;
          reply st conn (status_reply st ~rid id ~now)
      | Some "metrics" ->
          tele_record st ~now ~verb:"metrics" ~outcome:`Ok rid;
          reply st conn (metrics_reply ~rid id)
      | Some "shutdown" ->
          tele_record st ~now ~verb:"shutdown" ~outcome:`Ok rid;
          reply st conn
            (Printf.sprintf "{\"id\": %s, \"rid\": %s, \"status\": \"ok\"}" id
               (Report.json_str rid));
          Budget.interrupt ()
      | Some v ->
          tele_record st ~now ~verb:v ~outcome:`Error rid;
          reply st conn (error_reply ~rid id ("unknown verb: " ^ v))
      | None ->
          tele_record st ~now ~verb:"?" ~outcome:`Error rid;
          reply st conn (error_reply ~rid id "missing verb"))

(* read whatever the connection has, split off complete lines *)
let handle_readable st conn ~now =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn st conn
  | 0 -> close_conn st conn
  | n ->
      Buffer.add_subbytes conn.c_buf chunk 0 n;
      let data = Buffer.contents conn.c_buf in
      let lines = String.split_on_char '\n' data in
      let rec go = function
        | [] | [ "" ] -> Buffer.clear conn.c_buf
        | [ partial ] ->
            Buffer.clear conn.c_buf;
            Buffer.add_string conn.c_buf partial
        | line :: rest ->
            if String.trim line <> "" then handle_line st conn line ~now;
            if conn.c_alive then go rest
      in
      go lines

(* ---- worker completions ------------------------------------------ *)

let finish st slot ~now =
  match Hashtbl.find_opt st.st_inflight slot with
  | None -> ignore (Pool.reap st.st_pool slot)
  | Some pend ->
      Hashtbl.remove st.st_inflight slot;
      Hashtbl.remove st.st_keys pend.p_key;
      let waiters = List.rev pend.p_waiters in    (* arrival order *)
      (* the originating request (dedup riders joined it later) *)
      let head_rid =
        match waiters with w :: _ -> w.wt_rid | [] -> ""
      in
      (match Pool.reap st.st_pool slot with
      | Ok (Service.Served sv) ->
          (* worker deltas land under a srv.request span stamped with
             the request id, so a trace consumer can attribute every
             absorbed event to the request that produced it.  The span
             is opened only around the absorb — never across requests —
             which keeps begin/end strictly nested for the CI trace
             checker. *)
          if !Trace.enabled then
            Trace.span_begin "srv.request"
              ~args:
                [
                  ("rid", Trace.S head_rid);
                  ("verb", Trace.S "analyze");
                  ("digest", Trace.S pend.p_digest);
                ];
          Metrics.absorb sv.Service.sv_metrics;
          if !Trace.enabled then begin
            Trace.absorb sv.Service.sv_events;
            Trace.span_end "srv.request" ~args:[ ("rid", Trace.S head_rid) ]
          end;
          absorb_tables st pend.p_digest sv.Service.sv_tables;
          record_latency st sv.Service.sv_time;
          Hashtbl.remove st.st_breaker pend.p_digest;
          let preloaded = List.length pend.p_work.Service.w_preload in
          let cache_hits =
            Option.value ~default:0
              (Metrics.find_int sv.Service.sv_metrics "cache.hits")
          in
          List.iter
            (fun w ->
              st.st_served <- st.st_served + 1;
              log st "served %s: exit %d, %d alarms, %.3fs" w.wt_id
                sv.Service.sv_exit sv.Service.sv_alarms sv.Service.sv_time;
              tele_record st ~now ~digest:pend.p_digest
                ~queue_s:
                  (Float.max 0. (now -. w.wt_received -. sv.Service.sv_time))
                ~service_s:sv.Service.sv_time ~cache_hits ~verb:"analyze"
                ~outcome:(if w.wt_attached then `Dedup else `Ok)
                w.wt_rid;
              reply st w.wt_conn
                (ok_reply ~rid:w.wt_rid ~id:w.wt_id ~received:w.wt_received
                   ~preloaded sv ~now))
            waiters
      | Ok (Service.Refused msg) ->
          (* a request-level refusal is not a crash: the worker lived *)
          Hashtbl.remove st.st_breaker pend.p_digest;
          List.iter
            (fun w ->
              st.st_errors <- st.st_errors + 1;
              tele_record st ~now ~digest:pend.p_digest
                ~queue_s:(Float.max 0. (now -. w.wt_received))
                ~verb:"analyze" ~outcome:`Error w.wt_rid;
              reply st w.wt_conn (error_reply ~rid:w.wt_rid w.wt_id msg))
            waiters
      | Error msg ->
          if msg = "worker crashed" && st.st_cfg.d_breaker_n > 0 then begin
            let n =
              match Hashtbl.find_opt st.st_breaker pend.p_digest with
              | Some (n, _) -> n + 1
              | None -> 1
            in
            Hashtbl.replace st.st_breaker pend.p_digest (n, now);
            if n = st.st_cfg.d_breaker_n then begin
              Metrics.incr m_breaker;
              log st "circuit breaker opened: %d consecutive crashes" n
            end
          end;
          List.iter
            (fun w ->
              st.st_errors <- st.st_errors + 1;
              log st "request %s failed: %s" w.wt_id msg;
              tele_record st ~now ~digest:pend.p_digest
                ~queue_s:(Float.max 0. (now -. w.wt_received))
                ~verb:"analyze" ~outcome:`Error w.wt_rid;
              reply st w.wt_conn (error_reply ~rid:w.wt_rid w.wt_id msg))
            waiters);
      drain_queue st

let cancel_expired st ~now =
  List.iter
    (fun slot ->
      match Hashtbl.find_opt st.st_inflight slot with
      | None -> Pool.cancel st.st_pool slot
      | Some pend ->
          Hashtbl.remove st.st_inflight slot;
          Hashtbl.remove st.st_keys pend.p_key;
          Pool.cancel st.st_pool slot;
          List.iter
            (fun w ->
              st.st_errors <- st.st_errors + 1;
              log st "request %s timed out (hard limit)" w.wt_id;
              tele_record st ~now ~digest:pend.p_digest
                ~queue_s:(Float.max 0. (now -. w.wt_received))
                ~verb:"analyze" ~outcome:`Timeout w.wt_rid;
              reply st w.wt_conn
                (error_reply ~rid:w.wt_rid w.wt_id "request timed out"))
            (List.rev pend.p_waiters))
    (Pool.expired_slots st.st_pool ~now);
  drain_queue st

(* ---- shutdown ---------------------------------------------------- *)

let begin_drain st ~now =
  st.st_draining <- true;
  st.st_drain_t <- now;
  (match st.st_listen with
  | Some fd ->
      st.st_listen <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink st.st_cfg.d_socket
       with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ());
  List.iter
    (fun conn ->
      Queue.iter
        (fun pend ->
          List.iter
            (fun w ->
              tele_record st ~now ~digest:pend.p_digest ~verb:"analyze"
                ~outcome:`Shutting_down w.wt_rid;
              reply st w.wt_conn (shutting_down_reply ~rid:w.wt_rid w.wt_id))
            (List.rev pend.p_waiters))
        conn.c_queue;
      Queue.clear conn.c_queue)
    st.st_conns;
  st.st_queued <- 0;
  Queue.clear st.st_rr;
  Telemetry.event st.st_tele ~now "drain_begin"
    [ ("inflight", Json.Num (float_of_int (Hashtbl.length st.st_inflight))) ];
  log st "shutting down: %d in-flight request(s) draining"
    (Hashtbl.length st.st_inflight)

let force_cancel_inflight st ~now =
  Hashtbl.iter
    (fun slot pend ->
      Pool.cancel st.st_pool slot;
      List.iter
        (fun w ->
          tele_record st ~now ~digest:pend.p_digest ~verb:"analyze"
            ~outcome:`Error w.wt_rid;
          reply st w.wt_conn
            (error_reply ~rid:w.wt_rid w.wt_id
               "canceled: daemon shutting down"))
        (List.rev pend.p_waiters))
    st.st_inflight;
  Hashtbl.reset st.st_inflight;
  Hashtbl.reset st.st_keys

(* ---- SIGHUP hot reload ------------------------------------------- *)

let hup_pending = ref false

let reload st =
  match st.st_cfg.d_config_file with
  | None -> log st "SIGHUP: no --config file to reload, ignored"
  | Some file -> (
      match load_config_file st.st_cfg file with
      | Error msg ->
          prerr_endline
            ("astreed: warning: SIGHUP reload failed, keeping config: " ^ msg)
      | Ok cfg ->
          (* in-flight requests already carry their resolved options;
             only future admissions see the new knobs *)
          st.st_cfg <- cfg;
          st.st_gen <- st.st_gen + 1;
          log st "config reloaded from %s (generation %d)" file st.st_gen)

(* ---- telemetry HTTP endpoints ------------------------------------ *)

(* readiness: able to accept an analyze request right now.  Distinct
   from liveness — a draining or saturated daemon is alive but a load
   balancer should stop routing to it. *)
let readiness st ~now : (unit, string) result =
  if st.st_draining then Error "draining"
  else if st.st_queued >= st.st_cfg.d_queue_depth then Error "queue full"
  else begin
    let opened = open_breakers st ~now in
    if opened > 0 && opened = Hashtbl.length st.st_breaker then
      Error "all circuit breakers open"
    else Ok ()
  end

let http_handle st (path : string) : int * string * string =
  let now = Unix.gettimeofday () in
  match path with
  | "/metrics" ->
      ( 200,
        "text/plain; version=0.0.4; charset=utf-8",
        Telemetry.render_prometheus st.st_tele ~now (Metrics.snapshot ()) )
  | "/healthz" -> (200, "text/plain", "ok\n")
  | "/readyz" -> (
      match readiness st ~now with
      | Ok () -> (200, "text/plain", "ready\n")
      | Error why -> (503, "text/plain", "not ready: " ^ why ^ "\n"))
  | "/status" -> (200, "application/json", status_json st ~now ^ "\n")
  | _ -> (404, "text/plain", "not found\n")

(* ---- socket setup ------------------------------------------------ *)

let bind_socket (path : string) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
     (* a socket file exists: live daemon, or debris from a dead one? *)
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     let live =
       try
         Unix.connect probe (Unix.ADDR_UNIX path);
         true
       with Unix.Unix_error _ -> false
     in
     (try Unix.close probe with Unix.Unix_error _ -> ());
     if live then begin
       (try Unix.close fd with Unix.Unix_error _ -> ());
       failwith ("a daemon is already listening on " ^ path)
     end
     else begin
       Unix.unlink path;
       Unix.bind fd (Unix.ADDR_UNIX path)
     end);
  Unix.listen fd 64;
  fd

(* ---- the event loop ---------------------------------------------- *)

let run (dc : config) : int =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sighup
    (Sys.Signal_handle (fun _ -> hup_pending := true));
  Budget.install_signal_handlers ();
  match bind_socket dc.d_socket with
  | exception Failure msg ->
      prerr_endline ("astreed: " ^ msg);
      1
  | exception Unix.Unix_error (e, _, _) ->
      prerr_endline
        ("astreed: cannot bind " ^ dc.d_socket ^ ": " ^ Unix.error_message e);
      1
  | listen_fd -> (
      match
        match dc.d_http_port with
        | None -> Ok None
        | Some p -> Result.map Option.some (Http.create ~port:p)
      with
      | Error msg ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          (try Unix.unlink dc.d_socket
           with Unix.Unix_error _ | Sys_error _ -> ());
          prerr_endline ("astreed: " ^ msg);
          1
      | Ok http ->
      let st =
        {
          st_cfg = dc;
          st_gen = 0;
          st_pool = Pool.create ~jobs:(max 1 dc.d_workers) Service.serve;
          st_tele =
            Telemetry.create ?access_log:dc.d_access_log
              ~max_log_bytes:dc.d_access_log_max ~now:(Unix.gettimeofday ())
              ();
          st_http = http;
          st_listen = Some listen_fd;
          st_conns = [];
          st_inflight = Hashtbl.create 16;
          st_keys = Hashtbl.create 16;
          st_rr = Queue.create ();
          st_queued = 0;
          st_tables = Hashtbl.create 16;
          st_order = Queue.create ();
          st_breaker = Hashtbl.create 16;
          st_lat = Array.make 32 0.;
          st_lat_n = 0;
          st_started = Unix.gettimeofday ();
          st_draining = false;
          st_drain_t = 0.;
          st_served = 0;
          st_shed = 0;
          st_errors = 0;
          st_dedup = 0;
          st_breaker_rejects = 0;
          st_recovered = 0;
          st_ckpt_saves = 0;
          st_ckpt_dirty = false;
          st_ckpt_t = Unix.gettimeofday ();
        }
      in
      (* a freshly forked (or respawned) worker must not inherit the
         server sockets: a worker's stale copy of a connection fd would
         keep the kernel from delivering EOF after we close it, wedging
         a client mid-read forever *)
      Pool.at_child_fork :=
        Some
          (fun () ->
            (match st.st_listen with
            | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
            | None -> ());
            (match st.st_http with
            | Some h ->
                List.iter
                  (fun fd ->
                    try Unix.close fd with Unix.Unix_error _ -> ())
                  (Http.all_fds h)
            | None -> ());
            (* the worker must not inherit the access-log channel:
               its buffered bytes belong to the daemon alone *)
            Telemetry.close st.st_tele;
            List.iter
              (fun c ->
                try Unix.close c.c_fd with Unix.Unix_error _ -> ())
              st.st_conns);
      (* warm state from the previous life, if a checkpoint survives;
         a torn or corrupt file degrades to a cold start *)
      load_checkpoint st;
      if dc.d_restarts > 0 then
        Metrics.set_gauge "srv.restarts" dc.d_restarts;
      Telemetry.event st.st_tele ~now:(Unix.gettimeofday ()) "start"
        ([
           ("pid", Json.Num (float_of_int (Unix.getpid ())));
           ("socket", Json.Str dc.d_socket);
           ("restarts", Json.Num (float_of_int dc.d_restarts));
           ("recovered", Json.Num (float_of_int st.st_recovered));
         ]
        @
        match st.st_http with
        | Some h -> [ ("http_port", Json.Num (float_of_int (Http.port h))) ]
        | None -> []);
      log st "listening on %s (%d worker(s), queue depth %d%s%s)" dc.d_socket
        (Pool.size st.st_pool) dc.d_queue_depth
        (if st.st_recovered > 0 then
           Printf.sprintf ", %d program(s) warm" st.st_recovered
         else "")
        (match st.st_http with
        | Some h -> Printf.sprintf ", http 127.0.0.1:%d" (Http.port h)
        | None -> "");
      let rec loop () =
        let now = Unix.gettimeofday () in
        if !hup_pending then begin
          hup_pending := false;
          reload st
        end;
        if Budget.interrupt_pending () && not st.st_draining then
          begin_drain st ~now;
        if st.st_draining && Hashtbl.length st.st_inflight = 0 then ()
        else begin
          if
            st.st_draining
            && now -. st.st_drain_t > st.st_cfg.d_grace
            && Hashtbl.length st.st_inflight > 0
          then force_cancel_inflight st ~now;
          if st.st_draining && Hashtbl.length st.st_inflight = 0 then ()
          else begin
            let busy = Pool.busy_fds st.st_pool in
            (* the http listener stays select-able through the drain so
               /readyz can tell the load balancer 503 until exit *)
            let rfds =
              (match st.st_listen with Some fd -> [ fd ] | None -> [])
              @ (match st.st_http with Some h -> Http.fds h | None -> [])
              @ List.map (fun c -> c.c_fd) st.st_conns
              @ List.map fst busy
            in
            let timeout =
              let deadline = Pool.next_deadline st.st_pool in
              if deadline = infinity then 1.0
              else Float.max 0.01 (Float.min 1.0 (deadline -. now))
            in
            (match Unix.select rfds [] [] timeout with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | ready, _, _ ->
                let now = Unix.gettimeofday () in
                (* worker completions first: they free slots the queued
                   requests are waiting for *)
                List.iter
                  (fun (fd, slot) ->
                    if List.mem fd ready then finish st slot ~now)
                  busy;
                List.iter
                  (fun conn ->
                    if conn.c_alive && List.mem conn.c_fd ready then
                      handle_readable st conn ~now)
                  st.st_conns;
                (match st.st_http with
                | Some h -> Http.handle_ready h ~ready (http_handle st)
                | None -> ());
                (match st.st_listen with
                | Some fd when List.mem fd ready -> (
                    match Unix.accept fd with
                    | exception Unix.Unix_error _ -> ()
                    | cfd, _ ->
                        st.st_conns <-
                          { c_fd = cfd; c_buf = Buffer.create 256;
                            c_alive = true; c_queue = Queue.create () }
                          :: st.st_conns;
                        log st "client connected (%d total)"
                          (List.length st.st_conns))
                | _ -> ()));
            let now = Unix.gettimeofday () in
            cancel_expired st ~now;
            save_checkpoint st ~now ~force:false;
            loop ()
          end
        end
      in
      loop ();
      save_checkpoint st ~now:(Unix.gettimeofday ()) ~force:true;
      flush_store st;
      List.iter (fun conn -> close_conn st conn) st.st_conns;
      Pool.shutdown st.st_pool;
      (match st.st_listen with
      | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (try Unix.unlink dc.d_socket
           with Unix.Unix_error _ | Sys_error _ -> ())
      | None -> ());
      (match st.st_http with Some h -> Http.close h | None -> ());
      Telemetry.event st.st_tele ~now:(Unix.gettimeofday ()) "exit"
        [
          ("served", Json.Num (float_of_int st.st_served));
          ("shed", Json.Num (float_of_int st.st_shed));
          ("errors", Json.Num (float_of_int st.st_errors));
        ];
      Telemetry.close st.st_tele;
      log st "exited cleanly (%d served, %d shed, %d errors)" st.st_served
        st.st_shed st.st_errors;
      0)
