(** Operational telemetry for the analysis daemon: request ids,
    per-request lifecycle records, rolling per-verb latency quantiles, a
    structured JSONL access log with size-capped atomic rotation, and
    the Prometheus text exposition served on [GET /metrics].

    The daemon's event loop is the only writer of a {!t}: records and
    events are synchronous calls from the loop, so the module needs no
    locking.  The one cross-process entry point is {!append_event}
    (supervisor restart records): O_APPEND one-shot writes that
    interleave whole lines with the daemon's own; rotation stays owned
    by the daemon alone, so the two writers never race a rename.

    {b Exposition determinism.}  {!render_prometheus} renders families
    sorted by family name and series within a family in a fixed order
    (histogram buckets by ascending [le], labelled series by sorted
    label values), so equal registry/telemetry contents yield
    byte-identical expositions — the scrape tests diff them directly.
    Metric names pass through {!prom_name} (every character outside
    [[a-zA-Z0-9_:]] becomes [_], a leading digit is prefixed) and label
    values through {!prom_label} (backslash, double quote and newline
    escaped). *)

(** {1 Request ids} *)

val gen_id : unit -> string
(** A fresh request id, e.g. ["r3fa91c-000007"]: a process-unique
    prefix (pid and start time hashed) plus a counter.  Clients mint
    one per request; the daemon mints one when a request arrives
    without. *)

(** {1 Lifecycle records} *)

type outcome =
  [ `Ok | `Error | `Shed | `Dedup | `Breaker_open | `Shutting_down | `Timeout ]

val outcome_string : outcome -> string

type record = {
  rc_rid : string;
  rc_verb : string;
  rc_digest : string;          (** [""] when the verb has no program *)
  rc_outcome : outcome;
  rc_queue_s : float;          (** admission to dispatch *)
  rc_service_s : float;        (** worker wall-clock *)
  rc_cache_hits : int;         (** summary-cache hits inside the worker *)
}

type t

val create : ?access_log:string -> ?max_log_bytes:int -> now:float -> unit -> t
(** A telemetry sink.  With [~access_log] every record and event is
    appended as one JSONL line; when the file would exceed
    [max_log_bytes] (default 8 MiB, floor 4 KiB) it is first rotated by
    an atomic rename to [FILE.1] (clobbering the previous generation).
    The file opens lazily, and an unwritable path degrades to in-memory
    accounting only — the log never takes the daemon down. *)

val observe : t -> now:float -> record -> unit
(** Account one finished request: feeds the verb's latency histogram
    and quantile ring with [rc_queue_s +. rc_service_s], bumps the
    (verb, outcome) count and appends the access-log line
    [{"t": .., "event": "request", "rid": .., "verb": .., "digest": ..,
    "outcome": .., "queue_s": .., "service_s": .., "cache_hits": ..}]. *)

val event : t -> now:float -> string -> (string * Json.t) list -> unit
(** Append a non-request lifecycle line
    [{"t": .., "event": KIND, ...fields}] — checkpoint saves/loads,
    drain begin, startup. *)

val append_event :
  path:string -> now:float -> string -> (string * Json.t) list -> unit
(** Like {!event} but standalone: open [path] O_APPEND, write one line,
    close.  For writers outside the daemon process (the supervisor's
    restart records); never rotates. *)

val close : t -> unit
(** Close the access-log channel (records keep accumulating in memory). *)

val started : t -> float
(** The [now] passed to {!create} — the uptime epoch. *)

(** {1 Quantiles} *)

val quantile : t -> verb:string -> float -> float option
(** [quantile t ~verb q] is the [q]-quantile (0..1) of the verb's last
    512 end-to-end latencies, or [None] before the first request. *)

val quantiles_json : t -> string
(** Per-verb rolling quantiles as one JSON object, verbs sorted:
    [{"analyze": {"p50": .., "p90": .., "p99": .., "count": ..}, ..}]. *)

(** {1 Prometheus text exposition} *)

val prom_name : string -> string
(** Sanitize to the Prometheus metric-name charset. *)

val prom_label : string -> string
(** Escape a label value (backslash, double quote, newline). *)

val render_prometheus : t -> now:float -> Astree_obs.Metrics.snapshot -> string
(** The [/metrics] body: the registry snapshot under the [astree_]
    prefix (counters as [_total], timers as [_seconds_total], log2
    histograms with power-of-two [le] bounds), the per-verb request
    duration histogram and latency summary, per-(verb, outcome) request
    counts, and [astreed_up]/[astreed_uptime_seconds]. *)
