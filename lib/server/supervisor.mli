(** Daemon supervision: run the serving process as a forked child and
    restart it whenever it dies abnormally — a crash, an abort, a
    [kill -9] — with capped, jittered exponential backoff.

    The supervisor owns no sockets and no analysis state; it only
    forks, waits and restarts, so it cannot be taken down by anything
    the daemon does.  Combined with the daemon's warm-state checkpoint
    (see {!Daemon}), a crashed daemon comes back within the backoff
    delay and is warm again after one request.

    {b Lifecycle.}  A clean child exit (code 0 — the [shutdown] verb,
    or a drained SIGTERM/SIGINT) ends the supervisor with code 0.  Exit
    code 1 on the {e first} launch within a second is a startup failure
    (socket already owned, bad path) and fails fast instead of
    restarting forever.  Everything else restarts: the backoff attempt
    climbs on rapid crash loops and resets after [s_reset_after]
    seconds of stable uptime.  SIGTERM, SIGINT and SIGHUP received by
    the supervisor are forwarded to the child (SIGHUP preserving the
    hot-reload path through the supervisor's pid). *)

type config = {
  s_policy : Astree_robust.Backoff.policy;
      (** restart delay ladder (default {!Astree_robust.Backoff.supervisor}:
          0.2s doubling to a 30s cap, 10% jitter) *)
  s_max_restarts : int;
      (** give up after this many restarts; [0] = never *)
  s_reset_after : float;
      (** seconds of child uptime that reset the backoff ladder *)
  s_verbose : bool;
  s_access_log : string option;
      (** append [restart] / [supervisor_give_up] records to the
          daemon's JSONL access log (one-shot O_APPEND writes from the
          supervisor process; the daemon alone rotates the file) *)
}

val default : config

val run :
  ?config:config -> (restarts:int -> sup_started:float -> int) -> int
(** [run child] forks [child ~restarts ~sup_started] (the daemon entry
    point; [restarts] counts completed restarts, [sup_started] is the
    supervisor's start time for uptime reporting) and supervises it
    until it exits cleanly or the restart budget runs out.  Returns the
    supervisor's exit code. *)
