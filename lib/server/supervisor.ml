(* Daemon supervision: fork the serving process as a child, restart it
   when it dies abnormally.  See supervisor.mli. *)

module Backoff = Astree_robust.Backoff

type config = {
  s_policy : Backoff.policy;
  s_max_restarts : int;
  s_reset_after : float;
  s_verbose : bool;
  s_access_log : string option;
}

let default : config =
  {
    s_policy = Backoff.supervisor;
    s_max_restarts = 0;
    s_reset_after = 10.;
    s_verbose = false;
    s_access_log = None;
  }

(* restart records share the daemon's access log (O_APPEND one-shot
   writes; the daemon alone rotates), so an operator reads request
   outcomes and restart history from one stream *)
let log_event (cfg : config) kind fields =
  match cfg.s_access_log with
  | None -> ()
  | Some path ->
      Telemetry.append_event ~path ~now:(Unix.gettimeofday ()) kind fields

let log (cfg : config) fmt =
  Format.kasprintf
    (fun s -> if cfg.s_verbose then prerr_endline ("astreed-sup: " ^ s))
    fmt

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let run ?(config = default)
    (child : restarts:int -> sup_started:float -> int) : int =
  let sup_started = Unix.gettimeofday () in
  let child_pid = ref 0 in
  let stopping = ref false in
  (* signals are forwarded, not handled: the child owns the drain
     protocol.  SIGTERM/SIGINT additionally mark the supervisor as
     stopping so the child's death is treated as the end, not a crash. *)
  let forward stop signo =
    Sys.set_signal signo
      (Sys.Signal_handle
         (fun _ ->
           if stop then stopping := true;
           if !child_pid > 0 then
             try Unix.kill !child_pid signo with Unix.Unix_error _ -> ()))
  in
  forward true Sys.sigterm;
  forward true Sys.sigint;
  forward false Sys.sighup;
  let seed = Unix.getpid () in
  let rec loop ~restarts ~attempt =
    let launched = Unix.gettimeofday () in
    match Unix.fork () with
    | exception Unix.Unix_error (e, _, _) ->
        prerr_endline
          ("astreed-sup: cannot fork daemon: " ^ Unix.error_message e);
        1
    | 0 ->
        (* the serving child: restore default signal dispositions so the
           daemon's own handlers install cleanly over them *)
        Sys.set_signal Sys.sigterm Sys.Signal_default;
        Sys.set_signal Sys.sigint Sys.Signal_default;
        Sys.set_signal Sys.sighup Sys.Signal_default;
        Unix._exit (child ~restarts ~sup_started)
    | pid -> (
        child_pid := pid;
        log config "daemon running as pid %d (restart %d)" pid restarts;
        let status = waitpid_retry pid in
        child_pid := 0;
        let uptime = Unix.gettimeofday () -. launched in
        match status with
        | Unix.WEXITED 0 ->
            log config "daemon exited cleanly, supervisor done";
            0
        | Unix.WEXITED 1 when restarts = 0 && uptime < 1.0 ->
            (* a startup failure — the socket is owned by a live daemon,
               the path is unwritable — would loop forever; fail fast
               instead.  Later exits are crashes and restart. *)
            prerr_endline "astreed-sup: daemon failed to start, giving up";
            1
        | status ->
            if !stopping then begin
              (* we forwarded a termination signal and the child still
                 died abnormally: report it, do not resurrect *)
              prerr_endline
                ("astreed-sup: daemon " ^ status_string status
               ^ " during shutdown");
              1
            end
            else if
              config.s_max_restarts > 0 && restarts + 1 > config.s_max_restarts
            then begin
              prerr_endline
                (Printf.sprintf
                   "astreed-sup: daemon %s; restart budget (%d) exhausted, \
                    giving up"
                   (status_string status) config.s_max_restarts);
              log_event config "supervisor_give_up"
                [
                  ("child_status", Json.Str (status_string status));
                  ("restarts", Json.Num (float_of_int restarts));
                ];
              1
            end
            else begin
              (* a long stable run earns a fresh backoff ladder; rapid
                 crash loops climb it toward the cap *)
              let attempt =
                if uptime >= config.s_reset_after then 0 else attempt + 1
              in
              let delay = Backoff.delay config.s_policy ~seed ~attempt in
              prerr_endline
                (Printf.sprintf
                   "astreed-sup: daemon %s after %.1fs, restarting in %.2fs \
                    (restart %d)"
                   (status_string status) uptime delay (restarts + 1));
              log_event config "restart"
                [
                  ("child_status", Json.Str (status_string status));
                  ("uptime_s", Json.Num uptime);
                  ("delay_s", Json.Num delay);
                  ("restart", Json.Num (float_of_int (restarts + 1)));
                ];
              Backoff.sleep config.s_policy ~seed ~attempt;
              if !stopping then 0 else loop ~restarts:(restarts + 1) ~attempt
            end)
  in
  loop ~restarts:0 ~attempt:0
