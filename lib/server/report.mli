(** The analyzer's JSON report, shared by the one-shot CLI and the
    analysis daemon.

    [astree --format json] and an [astreed] worker must produce the
    same bytes for the same analysis — the server-mode parity tests
    diff them — so the rendering lives here, in one place, and both
    entry points call it. *)

module C = Astree_core

val json_escape : string -> string
val json_str : string -> string

(** Summary of a multi-task interference fixpoint, rendered as the
    report's ["interference"] block when present. *)
type interference = {
  i_tasks : int;
  i_rounds : int;
  i_stabilized : bool;
  i_shared : int;  (** shared-variable count *)
}

val render :
  ?metrics:bool -> ?interference:interference -> C.Analysis.result -> string
(** The whole result as one JSON object (no trailing newline): alarms
    (with provenance when recorded), statistics (cache counters always
    included when a cache ran), the useful-octagon-pack ids, the
    deterministic result fingerprint ([Merge.fingerprint], the digest
    the equivalence tests compare), an ["interference"] block for
    multi-task runs, for degraded or interrupted runs a ["degraded"]
    block, and with [~metrics:true] the full metrics registry. *)

val strip_cache : C.Analysis.result -> C.Analysis.result
(** Drop the cache counters from the result's statistics.  The daemon
    keeps a resident summary cache even for requests that did not ask
    for one; stripping makes such replies byte-comparable with a
    cache-less one-shot run. *)

val exit_code : C.Analysis.result -> int
(** The CLI exit-code convention: [0] clean, [1] alarms, [3]
    degraded-but-complete, [130] interrupted. *)
