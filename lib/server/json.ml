(* Minimal JSON codec for the server wire protocol: recursive-descent
   parser over a string, compact printer.  See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---------------------------------------------------- *)

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num_to_string (v : float) : string =
  if Float.is_integer v && Float.abs v < 1e15 then
    string_of_int (int_of_float v)
  else if Float.is_nan v || Float.abs v = Float.infinity then "null"
  else Printf.sprintf "%.17g" v

let rec to_string (j : t) : string =
  match j with
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num v -> num_to_string v
  | Str s -> "\"" ^ escape s ^ "\""
  | List l -> "[" ^ String.concat ", " (List.map to_string l) ^ "]"
  | Obj members ->
      "{"
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ to_string v)
             members)
      ^ "}"

(* ---- parsing ----------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable i : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.i))
let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    value
  end
  else fail c ("expected " ^ word)

(* UTF-8 encode one scalar value into [buf] *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek c with
      | Some ch when ch >= '0' && ch <= '9' -> Char.code ch - Char.code '0'
      | Some ch when ch >= 'a' && ch <= 'f' -> Char.code ch - Char.code 'a' + 10
      | Some ch when ch >= 'A' && ch <= 'F' -> Char.code ch - Char.code 'A' + 10
      | _ -> fail c "bad \\u escape"
    in
    c.i <- c.i + 1;
    v := (!v lsl 4) lor d
  done;
  !v

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.i <- c.i + 1
    | Some '\\' -> (
        c.i <- c.i + 1;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'; c.i <- c.i + 1
        | Some '\\' -> Buffer.add_char buf '\\'; c.i <- c.i + 1
        | Some '/' -> Buffer.add_char buf '/'; c.i <- c.i + 1
        | Some 'b' -> Buffer.add_char buf '\b'; c.i <- c.i + 1
        | Some 'f' -> Buffer.add_char buf '\012'; c.i <- c.i + 1
        | Some 'n' -> Buffer.add_char buf '\n'; c.i <- c.i + 1
        | Some 'r' -> Buffer.add_char buf '\r'; c.i <- c.i + 1
        | Some 't' -> Buffer.add_char buf '\t'; c.i <- c.i + 1
        | Some 'u' ->
            c.i <- c.i + 1;
            let cp = hex4 c in
            (* combine a high surrogate with a following \uXXXX low one *)
            if cp >= 0xD800 && cp <= 0xDBFF
               && c.i + 1 < String.length c.s
               && c.s.[c.i] = '\\' && c.s.[c.i + 1] = 'u'
            then begin
              c.i <- c.i + 2;
              let lo = hex4 c in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                add_utf8 buf
                  (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
              else begin
                add_utf8 buf cp;
                add_utf8 buf lo
              end
            end
            else add_utf8 buf cp
        | _ -> fail c "bad escape");
        go ())
    | Some ch -> Buffer.add_char buf ch; c.i <- c.i + 1; go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.i in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while c.i < String.length c.s && is_num_char c.s.[c.i] do
    c.i <- c.i + 1
  done;
  match float_of_string_opt (String.sub c.s start (c.i - start)) with
  | Some v -> Num v
  | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> c.i <- c.i + 1; Str (parse_string_body c)
  | Some '[' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some ']' then begin c.i <- c.i + 1; List [] end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> c.i <- c.i + 1; items (v :: acc)
          | Some ']' -> c.i <- c.i + 1; List (List.rev (v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some '}' then begin c.i <- c.i + 1; Obj [] end
      else
        let rec members acc =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> c.i <- c.i + 1; members ((k, v) :: acc)
          | Some '}' -> c.i <- c.i + 1; Obj (List.rev ((k, v) :: acc))
          | _ -> fail c "expected ',' or '}'"
        in
        members []
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected '%c'" ch)

let parse (s : string) : (t, string) result =
  let c = { s; i = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.i <> String.length s then Error "trailing garbage"
    else Ok v
  with Parse_error msg -> Result.error msg

(* ---- accessors --------------------------------------------------- *)

let member k = function
  | Obj members -> ( match List.assoc_opt k members with Some v -> v | None -> Null)
  | _ -> Null

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
