(** Minimal JSON codec for the analysis-server wire protocol.

    The daemon and its clients exchange newline-delimited JSON; this is
    the whole parser and printer for it (the toolchain has no JSON
    library, and the report renderer in {!Report} builds its output by
    string pasting anyway).  The value model is the standard six-way
    variant; numbers are floats, printed as integers when integral so
    request ids round-trip textually. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error).  String escapes cover the JSON set including
    [\uXXXX] with surrogate pairs, decoded to UTF-8. *)

val to_string : t -> string
(** Compact rendering (no added whitespace beyond [", "] and [": "]
    separators, matching the report renderer's style). *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

(** {1 Accessors} — total; missing members and wrong kinds yield
    [Null]/[None] so request handling can validate piecewise. *)

val member : string -> t -> t
val to_str : t -> string option
val to_num : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option
