(** Request semantics of the analysis server: the analyze-request
    options, their mapping to {!Astree_core.Config.t}, and the job a
    daemon worker runs for one request.

    The one-shot CLI builds its configuration through {!config_of} too,
    so a request forwarded to the daemon and the same invocation run
    in-process resolve to the same analysis — the foundation of the
    client-mode byte-parity guarantee. *)

module C = Astree_core
module F = Astree_frontend

(** {1 Options} *)

(** Mirror of the [astree] analysis flags (domain toggles, iteration
    parameters, budget, cache selection).  [`Default] cache means "the
    caller did not say": the one-shot CLI resolves it to [Cache_off],
    the daemon to its resident cache policy. *)
type options = {
  o_no_oct : bool;
  o_no_ell : bool;
  o_no_dt : bool;
  o_no_clock : bool;
  o_no_lin : bool;
  o_no_thresholds : bool;
  o_unroll : int;
  o_partition : string list;
  o_max_dtree_bools : int;
  o_useful_packs : int list;
  o_jobs : int;  (** [0] = one worker per core, resolved server-side *)
  o_backend : C.Config.backend;
  o_timeout : float;
  o_max_mem : int;
  o_cache : [ `Default | `Off | `Mem | `Dir of string ];
}

val default_options : options

val options_to_json : options -> Json.t
(** Only non-default members are emitted, so requests stay small. *)

val options_of_json : Json.t -> options
(** Missing members keep their default; unknown members are ignored. *)

val config_of : options -> sources:(string * string) list -> C.Config.t
(** The flag-to-configuration mapping of the CLI, including the
    ["/* astree-partition: ... */"] marker scan of the sources when no
    explicit partition list is given. *)

(** {1 Compilation} *)

exception Request_error of string
(** A request that cannot be served (unreadable file, parse or type
    error); the daemon turns it into an error reply, the worker
    survives. *)

val source_digest : main:string -> (string * string) list -> string
(** Hex digest identifying a compiled program (sources + entry point);
    keys the daemon's resident caches. *)

val compile_cached : main:string -> (string * string) list -> F.Tast.program
(** Compile, memoized on {!source_digest} — the typed-IR cache that
    stays resident in a long-lived worker.  Frontend failures raise
    {!Request_error} with the CLI's error wording. *)

(** {1 Worker jobs} *)

(** One analyze request, marshalled to a pool worker. *)
type work = {
  w_sources : (string * string) list;
  w_main : string;
  w_options : options;
  w_preload : (C.Iterator.summary_key * C.Iterator.summary) list;
      (** daemon-resident summaries seeded into the request's session *)
  w_strip_cache : bool;
      (** the request did not ask for a cache: run with the resident
          one but strip its counters from the report (byte parity) *)
}

(** The reply: a rendered report plus the deltas the daemon absorbs
    (summary tables, metrics, trace events). *)
type served = {
  sv_report : string;  (** JSON report object, no trailing newline *)
  sv_exit : int;
  sv_alarms : int;
  sv_fingerprint : string;
  sv_degraded : bool;
  sv_tables : (string * (C.Iterator.summary_key * C.Iterator.summary) list) list;
  sv_metrics : Astree_obs.Metrics.snapshot;
  sv_events : Astree_obs.Trace.event list;
  sv_time : float;  (** seconds spent serving, compile included *)
}

type outcome = Served of served | Refused of string

val serve : work -> outcome
(** Run one request (in a pool worker): compile through the typed-IR
    cache, analyze under the degradation governor with a fresh session
    seeded from [w_preload], and package the report with its deltas.
    Request-level failures come back as [Refused]; anything else
    escapes and kills the worker (the pool reports a crash). *)
