(* Client side of the daemon protocol.  See client.mli. *)

module Backoff = Astree_robust.Backoff
module Metrics = Astree_obs.Metrics
module Trace = Astree_obs.Trace

let m_retries = Metrics.counter "srv.client.retries"

let try_connect (path : string) : Unix.file_descr option =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX path);
    Some fd
  with Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec write_all fd s off =
  let n = String.length s - off in
  if n > 0 then
    match Unix.write_substring fd s off n with
    | k -> write_all fd s (off + k)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off

(* a buffered line reader: one read can deliver several pipelined
   replies, so leftover bytes must survive until the next call *)
type chan = { ch_fd : Unix.file_descr; ch_buf : Buffer.t }

let reader fd = { ch_fd = fd; ch_buf = Buffer.create 4096 }

let read_reply (ch : chan) : (string, string) result =
  let chunk = Bytes.create 65536 in
  let rec go () =
    let data = Buffer.contents ch.ch_buf in
    match String.index_opt data '\n' with
    | Some i ->
        Buffer.clear ch.ch_buf;
        Buffer.add_substring ch.ch_buf data (i + 1)
          (String.length data - i - 1);
        Ok (String.sub data 0 i)
    | None -> (
        match Unix.read ch.ch_fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
        | 0 -> Error "connection closed by daemon"
        | n ->
            Buffer.add_subbytes ch.ch_buf chunk 0 n;
            go ())
  in
  go ()

let send fd (line : string) : (unit, string) result =
  match write_all fd (line ^ "\n") 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> Ok ()

let roundtrip fd (line : string) : (string, string) result =
  match send fd line with
  | Error _ as e -> e
  | Ok () -> read_reply (reader fd)

(* ---- reply decoding ---------------------------------------------- *)

type reply = {
  r_status : string;
  r_exit : int;
  r_error : string option;
  r_retry_after : float option;
  r_report : string option;
  r_rid : string option;
  r_line : string;
}

(* the report is the last member of the reply object, spliced verbatim:
   its bytes run from after the marker to the closing brace *)
let report_marker = "\"report\": "

let reply_report (line : string) : string option =
  let mlen = String.length report_marker in
  let limit = String.length line - mlen in
  let rec find i =
    if i > limit then None
    else if String.sub line i mlen = report_marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = String.length line - 1 in
      if stop > start && line.[stop] = '}' then
        Some (String.sub line start (stop - start))
      else None

let decode (line : string) : reply =
  match Json.parse line with
  | Error _ ->
      { r_status = "error"; r_exit = 1; r_error = Some "unparsable reply";
        r_retry_after = None; r_report = None; r_rid = None; r_line = line }
  | Ok j ->
      {
        r_status =
          Option.value ~default:"error"
            (Json.to_str (Json.member "status" j));
        r_exit = Option.value ~default:0 (Json.to_int (Json.member "exit" j));
        r_error = Json.to_str (Json.member "error" j);
        r_retry_after = Json.to_num (Json.member "retry_after_s" j);
        r_report = reply_report line;
        r_rid = Json.to_str (Json.member "rid" j);
        r_line = line;
      }

(* ---- requests ---------------------------------------------------- *)

let analyze_request_json ?(id = 1) ?rid ~(sources : (string * string) list)
    ~(main : string) ~(options : Service.options) () : Json.t =
  (* the request id travels with the request: the daemon echoes it in
     the reply and stamps it on the request's trace span and
     access-log line, so one id joins the whole path *)
  let rid = match rid with Some r -> r | None -> Telemetry.gen_id () in
  Json.Obj
    [
      ("verb", Json.Str "analyze");
      ("id", Json.Num (float_of_int id));
      ("rid", Json.Str rid);
      ( "files",
        Json.List
          (List.map
             (fun (n, c) ->
               Json.Obj [ ("name", Json.Str n); ("contents", Json.Str c) ])
             sources) );
      ("main", Json.Str main);
      ("options", Service.options_to_json options);
    ]

let analyze_request ?id ?rid ~(sources : (string * string) list)
    ~(main : string) ~(options : Service.options) () : string =
  Json.to_string (analyze_request_json ?id ?rid ~sources ~main ~options ())

let request (path : string) (j : Json.t) : (reply, string) result =
  match try_connect path with
  | None -> Error ("no daemon listening on " ^ path)
  | Some fd ->
      Fun.protect
        ~finally:(fun () -> close fd)
        (fun () -> Result.map decode (roundtrip fd (Json.to_string j)))

(* ---- retrying requests ------------------------------------------- *)

type outcome = Reply of reply | No_daemon | Exhausted of string

let request_retry ?(policy = Backoff.default) ?seed (path : string)
    (j : Json.t) : outcome =
  let seed = match seed with Some s -> s | None -> Unix.getpid () in
  let line = Json.to_string j in
  let rid = Option.value ~default:"" (Json.to_str (Json.member "rid" j)) in
  (* [attempt] counts completed tries; [hint] is the daemon's own
     pacing suggestion (a shed reply's retry_after_s), preferred over
     the blind backoff ladder when present.  Every retry is observable:
     a [srv.client.retry] trace event per attempt plus the
     [srv.client.retries] counter — a request that succeeded on its
     third try no longer looks identical to one that succeeded on its
     first. *)
  let backoff ~attempt ~reason ~hint k =
    if attempt + 1 > policy.Backoff.b_retries then Exhausted reason
    else begin
      Metrics.incr m_retries;
      let d =
        match hint with
        | Some h when h > 0. -> Float.min h policy.Backoff.b_max
        | _ -> Backoff.delay policy ~seed ~attempt
      in
      if !Trace.enabled then
        Trace.emit "srv.client.retry"
          ~args:
            [
              ("rid", Trace.S rid);
              ("attempt", Trace.I (attempt + 1));
              ("reason", Trace.S reason);
              ("delay_s", Trace.F d);
            ];
      (try Unix.sleepf d with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      k (attempt + 1)
    end
  in
  let rec go attempt =
    match try_connect path with
    | None ->
        if attempt = 0 && not (Sys.file_exists path) then
          (* nothing was ever listening: the caller's in-process
             fallback applies, silently *)
          No_daemon
        else
          (* a socket file with no listener is a daemon mid-restart
             (a crashed daemon leaves its socket linked until the
             supervisor re-binds); a vanished file may be a drain.
             Either way the daemon asked for patience, not a fallback. *)
          backoff ~attempt ~reason:("no daemon listening on " ^ path)
            ~hint:None go
    | Some fd -> (
        match
          Fun.protect ~finally:(fun () -> close fd) (fun () ->
              roundtrip fd line)
        with
        | Error msg ->
            (* connection reset or torn reply: the daemon (or its
               supervisor) is recycling; retry against the fresh one *)
            backoff ~attempt ~reason:("connection failed: " ^ msg)
              ~hint:None go
        | Ok reply_line -> (
            let r = decode reply_line in
            match r.r_status with
            | "shed" | "shutting_down" ->
                backoff ~attempt
                  ~reason:
                    (Printf.sprintf "%s: %s" r.r_status
                       (Option.value ~default:"try again later" r.r_error))
                  ~hint:r.r_retry_after go
            | _ -> Reply r))
  in
  go 0
