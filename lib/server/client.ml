(* Client side of the daemon protocol.  See client.mli. *)

let try_connect (path : string) : Unix.file_descr option =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX path);
    Some fd
  with Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec write_all fd s off =
  let n = String.length s - off in
  if n > 0 then
    match Unix.write_substring fd s off n with
    | k -> write_all fd s (off + k)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off

(* a buffered line reader: one read can deliver several pipelined
   replies, so leftover bytes must survive until the next call *)
type chan = { ch_fd : Unix.file_descr; ch_buf : Buffer.t }

let reader fd = { ch_fd = fd; ch_buf = Buffer.create 4096 }

let read_reply (ch : chan) : (string, string) result =
  let chunk = Bytes.create 65536 in
  let rec go () =
    let data = Buffer.contents ch.ch_buf in
    match String.index_opt data '\n' with
    | Some i ->
        Buffer.clear ch.ch_buf;
        Buffer.add_substring ch.ch_buf data (i + 1)
          (String.length data - i - 1);
        Ok (String.sub data 0 i)
    | None -> (
        match Unix.read ch.ch_fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
        | 0 -> Error "connection closed by daemon"
        | n ->
            Buffer.add_subbytes ch.ch_buf chunk 0 n;
            go ())
  in
  go ()

let send fd (line : string) : (unit, string) result =
  match write_all fd (line ^ "\n") 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> Ok ()

let roundtrip fd (line : string) : (string, string) result =
  match send fd line with
  | Error _ as e -> e
  | Ok () -> read_reply (reader fd)

(* ---- reply decoding ---------------------------------------------- *)

type reply = {
  r_status : string;
  r_exit : int;
  r_error : string option;
  r_report : string option;
  r_line : string;
}

(* the report is the last member of the reply object, spliced verbatim:
   its bytes run from after the marker to the closing brace *)
let report_marker = "\"report\": "

let reply_report (line : string) : string option =
  let mlen = String.length report_marker in
  let limit = String.length line - mlen in
  let rec find i =
    if i > limit then None
    else if String.sub line i mlen = report_marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = String.length line - 1 in
      if stop > start && line.[stop] = '}' then
        Some (String.sub line start (stop - start))
      else None

let decode (line : string) : reply =
  match Json.parse line with
  | Error _ ->
      { r_status = "error"; r_exit = 1; r_error = Some "unparsable reply";
        r_report = None; r_line = line }
  | Ok j ->
      {
        r_status =
          Option.value ~default:"error"
            (Json.to_str (Json.member "status" j));
        r_exit = Option.value ~default:0 (Json.to_int (Json.member "exit" j));
        r_error = Json.to_str (Json.member "error" j);
        r_report = reply_report line;
        r_line = line;
      }

(* ---- requests ---------------------------------------------------- *)

let analyze_request ?(id = 1) ~(sources : (string * string) list)
    ~(main : string) ~(options : Service.options) () : string =
  Json.to_string
    (Json.Obj
       [
         ("verb", Json.Str "analyze");
         ("id", Json.Num (float_of_int id));
         ( "files",
           Json.List
             (List.map
                (fun (n, c) ->
                  Json.Obj [ ("name", Json.Str n); ("contents", Json.Str c) ])
                sources) );
         ("main", Json.Str main);
         ("options", Service.options_to_json options);
       ])

let request (path : string) (j : Json.t) : (reply, string) result =
  match try_connect path with
  | None -> Error ("no daemon listening on " ^ path)
  | Some fd ->
      Fun.protect
        ~finally:(fun () -> close fd)
        (fun () -> Result.map decode (roundtrip fd (Json.to_string j)))
