(* JSON report rendering, shared by bin/astree.ml (--format json) and
   the daemon workers.  See report.mli for the parity contract. *)

module C = Astree_core
module F = Astree_frontend

let json_escape = Json.escape
let json_str s = "\"" ^ json_escape s ^ "\""

type interference = {
  i_tasks : int;
  i_rounds : int;
  i_stabilized : bool;
  i_shared : int;
}

let json_alarm (a : C.Alarm.t) : string =
  let prov =
    match a.C.Alarm.a_prov with
    | None -> ""
    | Some p ->
        Printf.sprintf
          ", \"chain\": [%s], \"domain\": %s, \"operands\": {%s}"
          (String.concat ", " (List.map json_str p.C.Alarm.p_chain))
          (json_str p.C.Alarm.p_domain)
          (String.concat ", "
             (List.map
                (fun (e, v) -> json_str e ^ ": " ^ json_str v)
                p.C.Alarm.p_operands))
  in
  Printf.sprintf
    "{\"kind\": %s, \"file\": %s, \"line\": %d, \"col\": %d, \"message\": %s%s}"
    (json_str (C.Alarm.kind_to_string a.C.Alarm.a_kind))
    (json_str a.C.Alarm.a_loc.F.Loc.file)
    a.C.Alarm.a_loc.F.Loc.line a.C.Alarm.a_loc.F.Loc.col
    (json_str a.C.Alarm.a_msg) prov

let json_stats (s : C.Analysis.stats) : string =
  let base =
    Printf.sprintf
      "\"globals_before\": %d, \"globals_after\": %d, \"cells\": %d, \
       \"statements\": %d, \"octagon_packs\": %d, \"octagon_useful\": %d, \
       \"ellipsoid_packs\": %d, \"decision_tree_packs\": %d, \"time\": %.6f"
      s.C.Analysis.s_globals_before s.C.Analysis.s_globals_after
      s.C.Analysis.s_cells s.C.Analysis.s_stmts s.C.Analysis.s_oct_packs
      s.C.Analysis.s_oct_useful s.C.Analysis.s_ell_packs
      s.C.Analysis.s_dt_packs s.C.Analysis.s_time
  in
  let cache =
    match s.C.Analysis.s_cache with
    | None -> ""
    | Some c ->
        Printf.sprintf
          ", \"cache\": {\"hits\": %d, \"misses\": %d, \"entries\": %d, \
           \"loaded\": %d, \"load_time\": %.6f, \"save_time\": %.6f}"
          c.C.Analysis.c_hits c.C.Analysis.c_misses c.C.Analysis.c_entries
          c.C.Analysis.c_loaded c.C.Analysis.c_load_time
          c.C.Analysis.c_save_time
  in
  "{" ^ base ^ cache ^ "}"

let json_degraded (d : C.Analysis.degraded) : string =
  Printf.sprintf
    "{\"reason\": %s, \"level\": %d, \"shed_octagon_packs\": %d, \
     \"shed_ellipsoid_packs\": %d, \"shed_decision_tree_packs\": %d, \
     \"partitioning_disabled\": %b, \"widening_accelerated\": %b}"
    (json_str d.C.Analysis.dg_reason)
    d.C.Analysis.dg_level d.C.Analysis.dg_shed_oct_packs
    d.C.Analysis.dg_shed_ell_packs d.C.Analysis.dg_shed_dt_packs
    d.C.Analysis.dg_partitioning_disabled d.C.Analysis.dg_widening_accelerated

let json_interference (i : interference) : string =
  Printf.sprintf
    "{\"tasks\": %d, \"rounds\": %d, \"stabilized\": %b, \"shared_vars\": %d}"
    i.i_tasks i.i_rounds i.i_stabilized i.i_shared

let render ?(metrics = false) ?interference (r : C.Analysis.result) : string =
  let degraded =
    match r.C.Analysis.r_stats.C.Analysis.s_degraded with
    | None -> ""
    | Some d -> Printf.sprintf ", \"degraded\": %s" (json_degraded d)
  in
  let interference =
    match interference with
    | None -> ""
    | Some i -> Printf.sprintf ", \"interference\": %s" (json_interference i)
  in
  let metrics_block =
    (* opt-in: the registry holds volatile counters (timings, per-run
       cache traffic), and the default JSON must stay byte-comparable
       across equivalent runs (warm vs. cold cache, -j1 vs. -j4) *)
    if metrics then
      Printf.sprintf ", \"metrics\": %s"
        (Astree_obs.Metrics.render_json ~timers:false ())
    else ""
  in
  Printf.sprintf
    "{\"alarms\": [%s], \"stats\": %s, \"octagon_useful_ids\": [%s], \
     \"fingerprint\": %s%s%s%s}"
    (String.concat ", " (List.map json_alarm r.C.Analysis.r_alarms))
    (json_stats r.C.Analysis.r_stats)
    (String.concat ", "
       (List.map string_of_int (C.Analysis.useful_octagon_packs r)))
    (json_str (Astree_parallel.Merge.fingerprint r))
    interference degraded metrics_block

let strip_cache (r : C.Analysis.result) : C.Analysis.result =
  {
    r with
    C.Analysis.r_stats =
      { r.C.Analysis.r_stats with C.Analysis.s_cache = None };
  }

(* exit codes: 0 clean, 1 alarms, 3 degraded-but-complete,
   130 interrupted (the usual 128+SIGINT convention) *)
let exit_code (r : C.Analysis.result) : int =
  match r.C.Analysis.r_stats.C.Analysis.s_degraded with
  | Some d when d.C.Analysis.dg_reason = "interrupted" -> 130
  | Some _ -> 3
  | None -> if C.Analysis.n_alarms r = 0 then 0 else 1
