(* Minimal HTTP/1.0 listener for the telemetry endpoints.  See
   http.mli.

   This is deliberately not a web server: GET only, no keep-alive, no
   chunking, responses are built whole and written once.  The daemon's
   select loop owns all the fds; this module just turns readable fds
   into (path -> response) handler calls. *)

type conn = {
  h_fd : Unix.file_descr;
  h_buf : Buffer.t;
  mutable h_alive : bool;
}

type t = {
  t_listen : Unix.file_descr;
  t_port : int;
  mutable t_conns : conn list;
}

let max_request = 8192           (* bytes of headers we accept *)

let create ~(port : int) : (t, string) result =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (* telemetry is unauthenticated: bind loopback only *)
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 16;
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    Ok { t_listen = fd; t_port = port; t_conns = [] }
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot bind http port %d: %s" port
         (Unix.error_message e))

let port t = t.t_port

let fds t =
  t.t_listen :: List.map (fun c -> c.h_fd) (List.filter (fun c -> c.h_alive) t.t_conns)

(* every inherited server fd must vanish in forked pool workers, same
   as the Unix-socket fds (see Pool.at_child_fork in the daemon) *)
let all_fds = fds

let close_conn t conn =
  if conn.h_alive then begin
    conn.h_alive <- false;
    (try Unix.close conn.h_fd with Unix.Unix_error _ -> ());
    t.t_conns <- List.filter (fun c -> c != conn) t.t_conns
  end

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

let rec write_all fd s off =
  let n = String.length s - off in
  if n > 0 then
    match Unix.write_substring fd s off n with
    | k -> write_all fd s (off + k)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off

let respond t conn ~(code : int) ~(content_type : string) (body : string) =
  let response =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n%s"
      code (status_text code) content_type (String.length body) body
  in
  (try write_all conn.h_fd response 0 with Unix.Unix_error _ -> ());
  close_conn t conn

(* the request is complete once the header block terminator arrives;
   request bodies are not supported (GET only) *)
let headers_done (data : string) : bool =
  let rec find i =
    i + 1 < String.length data
    && ((data.[i] = '\n' && data.[i + 1] = '\n')
       || (i + 3 < String.length data
          && data.[i] = '\r' && data.[i + 1] = '\n' && data.[i + 2] = '\r'
          && data.[i + 3] = '\n')
       || find (i + 1))
  in
  find 0

let request_line (data : string) : (string * string) option =
  match String.index_opt data '\n' with
  | None -> None
  | Some i ->
      let line = String.trim (String.sub data 0 i) in
      (match String.split_on_char ' ' line with
      | meth :: path :: _ -> Some (meth, path)
      | _ -> None)

let handle_conn t conn (handler : string -> int * string * string) =
  let chunk = Bytes.create 4096 in
  match Unix.read conn.h_fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t conn
  | 0 -> close_conn t conn
  | n -> (
      Buffer.add_subbytes conn.h_buf chunk 0 n;
      let data = Buffer.contents conn.h_buf in
      if String.length data > max_request then
        respond t conn ~code:400 ~content_type:"text/plain"
          "request too large\n"
      else if headers_done data then
        match request_line data with
        | None ->
            respond t conn ~code:400 ~content_type:"text/plain" "bad request\n"
        | Some (meth, path) ->
            if meth <> "GET" then
              respond t conn ~code:405 ~content_type:"text/plain"
                "method not allowed\n"
            else
              (* strip any query string: the endpoints take none *)
              let path =
                match String.index_opt path '?' with
                | Some i -> String.sub path 0 i
                | None -> path
              in
              let code, content_type, body = handler path in
              respond t conn ~code ~content_type body)

let handle_ready t ~(ready : Unix.file_descr list)
    (handler : string -> int * string * string) : unit =
  List.iter
    (fun conn ->
      if conn.h_alive && List.mem conn.h_fd ready then
        handle_conn t conn handler)
    t.t_conns;
  if List.mem t.t_listen ready then
    match Unix.accept t.t_listen with
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        t.t_conns <-
          { h_fd = fd; h_buf = Buffer.create 256; h_alive = true }
          :: t.t_conns

let close t =
  List.iter (fun c -> close_conn t c) t.t_conns;
  try Unix.close t.t_listen with Unix.Unix_error _ -> ()
