(** Abstract transfer functions: assignments and guards over the full
    abstract state, with alarm reporting (Sect. 5.3, 6.1.3, 6.3).

    The evaluation of expressions follows the machine semantics: integer
    results are checked against their type's range (overflowing values
    are "wiped out" with an alarm, not wrapped), floats are rounded
    outward per kind with overflow and invalid-operation alarms, divisors
    are checked for zero, array subscripts for bounds.  When the plain
    interval evaluation incurs no possible error, float expressions are
    refined through the linear forms of Sect. 6.3. *)

module F = Astree_frontend
module D = Astree_domains
open F.Tast

type binds = lval VarMap.t
(** bindings of by-reference parameters to actual lvalues (function
    inlining, Sect. 5.4) *)

(* ------------------------------------------------------------------ *)
(* Session types (reentrancy seam, ISSUE 6)                            *)
(* ------------------------------------------------------------------ *)

(* The iterator's extension hooks — the parallel dispatcher, the
   function-summary memo and the resource-governor tick — used to be
   module-global refs, which made [Analysis] a process, not a value:
   two concurrent analyses with different options would clobber each
   other's hooks.  They now live in a per-analysis {!session} record
   carried by the context, so a resident server can run requests with
   different configurations without any shared mutable state.  The
   types below are pure data over [Astate]/[Alarm] and are re-exported
   (with equations) by [Iterator], their historical home. *)

(** A shared cell of the multi-task interference analysis, identified
    position-independently (root variable id + access path) so keys
    marshal across processes and survive differing interner numberings. *)
type itf_key = int * Cell.step list

(** Interference context of one per-task analysis run (Miné's
    rely/guarantee iteration around this analyzer's design).  Installed
    by the outer fixpoint driver ([Astree_conc]) through the session;
    [None] — the default — leaves every transfer function byte-for-byte
    on its single-task path.

    - [itf_rely]: the rely map, joined into every read of a shared cell
      ([cell_itv]): between any two statements another task may have
      stored any value the rely covers.
    - [itf_shared]: root variable ids of the shared variables; gates
      both the read join and the value-copy fast paths of [assign]
      (copying a shared source's own-flow value would silently drop the
      rely).
    - [itf_writes]: the guarantee collector — every abstract write to a
      shared cell joins its value here, keyed position-independently. *)
type itf = {
  itf_rely : (itf_key, D.Itv.t) Hashtbl.t;
  itf_shared : (int, unit) Hashtbl.t;
  itf_writes : (itf_key, D.Itv.t) Hashtbl.t;
}

(** The side effects of one captured call, in replayable form (the
    summary cache records these; see the capture functions below). *)
type capture_delta = {
  cd_alarms : Alarm.t list;
  cd_invariants : (int * Astate.t) list;  (** sorted by loop id *)
  cd_oct_useful : int list;               (** sorted *)
  cd_joins : int;
  cd_itf_writes : (itf_key * D.Itv.t) list;
      (** shared-cell writes recorded during the call (sorted by key),
          so summary replay keeps the interference guarantee complete *)
}

(** Flow-separated analysis outcome of a statement or block.  [o_norm]
    is a disjunction of abstract states (a singleton except under trace
    partitioning). *)
type outcome = {
  o_norm : Astate.t list;
  o_brk : Astate.t;
  o_cont : Astate.t;
  o_ret : Astate.t;
  o_retv : D.Itv.t;
}

(** Everything one analyzed call produced: the state at the return
    point, the merged return value, and the side effects on the
    context's bookkeeping.  Pure data — marshalled into parallel deltas
    and into the on-disk store. *)
type summary = {
  sm_exit : Astate.t;  (** state after the return-point trace merge *)
  sm_retv : D.Itv.t;   (** return value (Bot for void / no return) *)
  sm_delta : capture_delta;
}

(** Cache key: callee content fingerprint (covers the analysis
    configuration), digest of the abstract entry state together with
    the by-reference parameter bindings, and the alarm-collector mode —
    iteration-mode and checking-mode results are never conflated. *)
type summary_key = {
  sk_fn : string;
  sk_entry : string;
  sk_checking : bool;
}

type call_memo = {
  cm_key :
    fname:string -> checking:bool -> Astate.t -> binds ->
    summary_key option;
      (** [None]: this call is not cacheable (unknown fingerprint) *)
  cm_find : summary_key -> summary option;
  cm_add : summary_key -> summary -> unit;
  cm_fresh : (summary_key * summary) list ref;
      (** summaries computed by this process since the last drain, in
          computation order — parallel workers ship them back in their
          job deltas *)
  cm_hits : int ref;
  cm_misses : int ref;
  cm_want : string -> bool;
      (** gate: is this callee worth memoizing at all?  Computed once
          per session from the transitive inlined size of each function
          against [Iterator.memo_min_stmts] *)
}

(** A unit of work shipped to a worker: pure data, marshalled. *)
type par_work =
  | Pw_block of block  (** execute a block (a conditional branch) *)
  | Pw_call of { dst : var option; fname : string; args : arg list }

type par_job = {
  pj_work : par_work;
  pj_binds : binds;
  pj_stack : string list;
  pj_part : bool;
  pj_state : Astate.t;  (** the single entry state of the job *)
  pj_checking : bool;   (** alarm-collector mode at the dispatch point *)
}

(** Side effects of a job on the analysis context, replayed by the
    parent in job order so that merged results are deterministic. *)
type par_delta = {
  pd_alarms : Alarm.t list;
  pd_invariants : (int * Astate.t) list;  (** loop id -> head invariant *)
  pd_joins : int;
  pd_oct_useful : int list;
  pd_summaries : (summary_key * summary) list;
      (** summaries freshly computed while running the job, shipped back
          so the parent (and later jobs) reuse them *)
  pd_cache_hits : int;
  pd_cache_misses : int;
  pd_metrics : Astree_obs.Metrics.snapshot;
      (** registry delta accumulated while running the job (profile
          probes included), absorbed by the parent at merge so [-j n]
          reports are as complete as sequential ones *)
  pd_events : Astree_obs.Trace.event list;
      (** trace events emitted while running the job, re-emitted by the
          parent in job order *)
}

type par_reply = { pr_out : outcome; pr_delta : par_delta }

(** Per-analysis session: every hook and piece of cross-cutting mutable
    state one analysis run needs, bundled so that concurrent analyses
    in one process (the [astreed] daemon, nested drivers) cannot
    corrupt each other.  Created by [new_session] (or implicitly by
    [Analysis.analyze]) and carried by the context. *)
type session = {
  mutable ses_memo : call_memo option;
      (** function-summary memo, installed by [Astree_incremental] *)
  mutable ses_par_hook : (par_job list -> par_reply option list) option;
      (** parallel dispatch, installed by [Astree_parallel.Scheduler] *)
  mutable ses_tick_hook : (unit -> unit) option;
      (** consulted every 256 abstract statements (resource governor) *)
  mutable ses_ticks : int;
  mutable ses_preload : (summary_key * summary) list;
      (** summaries seeded into the memo table before any store load —
          the daemon ships its resident entries here *)
  mutable ses_collect_tables : bool;
      (** when set, [Summary.detach] records the final table below *)
  mutable ses_tables : (string * (summary_key * summary) list) list;
      (** (store key, entries) per cache attach of the run, newest
          first — the daemon absorbs these back into its resident
          store *)
  mutable ses_live : actx option;
      (** the context currently being analyzed under this session, set
          by [Analysis.analyze_prepared]; the robust subsystem reads it
          to assemble a partial result on interrupt *)
  mutable ses_itf : itf option;
      (** interference context of a multi-task per-task run, installed
          by the outer fixpoint driver ([Astree_conc]); [None] keeps
          every transfer function on its single-task path *)
}

(** Analysis context shared by all transfer functions. *)
and actx = {
  prog : program;
  cfg : Config.t;
  session : session;  (** hooks and cross-cutting per-run state *)
  packs : Packing.t;
  intern : Cell.interner;
  alarms : Alarm.collector;
  oct_useful : (int, unit) Hashtbl.t;
      (** octagon packs that improved precision (Sect. 7.2.2) *)
  oct_index : (int, Packing.oct_pack list) Hashtbl.t;
      (** variable id -> octagon packs containing it *)
  ell_index : (int, Packing.ell_pack list) Hashtbl.t;
  dt_index : (int, Packing.dt_pack list) Hashtbl.t;
  invariants : (int, Astate.t) Hashtbl.t;  (** loop id -> head invariant *)
  input_specs : (int, float * float) Hashtbl.t;  (** volatile input ranges *)
  mutable join_count : int;  (** statistics *)
}

let new_session () : session =
  {
    ses_memo = None;
    ses_par_hook = None;
    ses_tick_hook = None;
    ses_ticks = 0;
    ses_preload = [];
    ses_collect_tables = false;
    ses_tables = [];
    ses_live = None;
    ses_itf = None;
  }

let make_actx ?session (cfg : Config.t) (p : program) : actx =
  let packs = Packing.compute cfg p in
  let input_specs = Hashtbl.create 16 in
  List.iter
    (fun (spec : input_spec) ->
      Hashtbl.replace input_specs spec.in_var.v_id (spec.in_lo, spec.in_hi))
    p.p_inputs;
  let oct_index = Hashtbl.create 64 in
  List.iter
    (fun (op : Packing.oct_pack) ->
      Array.iter
        (fun v ->
          Hashtbl.replace oct_index v.v_id
            (op :: Option.value (Hashtbl.find_opt oct_index v.v_id) ~default:[]))
        op.op_vars)
    packs.Packing.octs;
  let ell_index = Hashtbl.create 64 in
  List.iter
    (fun (ep : Packing.ell_pack) ->
      Array.iter
        (fun v ->
          Hashtbl.replace ell_index v.v_id
            (ep :: Option.value (Hashtbl.find_opt ell_index v.v_id) ~default:[]))
        ep.ep_vars)
    packs.Packing.ells;
  let dt_index = Hashtbl.create 64 in
  List.iter
    (fun (dp : Packing.dt_pack) ->
      Array.iter
        (fun v ->
          Hashtbl.replace dt_index v.v_id
            (dp :: Option.value (Hashtbl.find_opt dt_index v.v_id) ~default:[]))
        (Array.append dp.dp_bools dp.dp_nums))
    packs.Packing.dts;
  {
    prog = p;
    cfg;
    session = (match session with Some s -> s | None -> new_session ());
    packs;
    intern = Cell.make_interner ();
    alarms = Alarm.make_collector ();
    oct_useful = Hashtbl.create 16;
    oct_index;
    ell_index;
    dt_index;
    invariants = Hashtbl.create 16;
    input_specs;
    join_count = 0;
  }

(* Per-domain view of a context for shared-memory workers: the
   read-only structure (program, config, packs, lookup indexes, cell
   interner — frozen by [prefill_cells] before any dispatch) is shared,
   while every piece of mutable bookkeeping (session, alarm collector,
   usefulness/invariant tables, join counter) is fresh so concurrently
   running domains never write to a common table.  The fresh session
   carries no memo and no hooks: memoization is observationally
   transparent, so job replies — and fingerprints — are unchanged. *)
let worker_actx (a : actx) : actx =
  {
    a with
    session = new_session ();
    alarms = Alarm.make_collector ();
    oct_useful = Hashtbl.create 16;
    invariants = Hashtbl.create 16;
    join_count = 0;
  }

let oct_packs_of (a : actx) (v : var) : Packing.oct_pack list =
  Option.value (Hashtbl.find_opt a.oct_index v.v_id) ~default:[]

let ell_packs_of (a : actx) (v : var) : Packing.ell_pack list =
  Option.value (Hashtbl.find_opt a.ell_index v.v_id) ~default:[]

let dt_packs_of (a : actx) (v : var) : Packing.dt_pack list =
  Option.value (Hashtbl.find_opt a.dt_index v.v_id) ~default:[]


(* ------------------------------------------------------------------ *)
(* Cells                                                               *)
(* ------------------------------------------------------------------ *)

(** Cell id of a scalar variable. *)
let var_cell (a : actx) (v : var) : int =
  match v.v_ty with
  | F.Ctypes.Tscalar s ->
      Cell.intern a.intern { Cell.root = v; path = []; cty = s; weak = false }
  | _ -> invalid_arg "var_cell: not a scalar variable"

let type_range (a : actx) (s : F.Ctypes.scalar) : D.Itv.t =
  Avalue.top_of_scalar a.prog.p_target s

(** Interval for a volatile input read (Sect. 4: environment ranges). *)
let input_itv (a : actx) (v : var) (s : F.Ctypes.scalar) : D.Itv.t =
  match Hashtbl.find_opt a.input_specs v.v_id with
  | Some (lo, hi) -> (
      match s with
      | F.Ctypes.Tint _ ->
          D.Itv.int_range
            (int_of_float (Float.ceil lo))
            (int_of_float (Float.floor hi))
      | F.Ctypes.Tfloat _ -> D.Itv.float_range lo hi)
  | None -> type_range a s

(** Is [v] a shared variable of a multi-task run?  [false] whenever no
    interference context is installed (the single-task fast path). *)
let itf_tracked_var (a : actx) (v : var) : bool =
  match a.session.ses_itf with
  | None -> false
  | Some it -> Hashtbl.mem it.itf_shared v.v_id

(** Record an abstract write of [value] to the shared cell keyed [key]
    into the guarantee collector (join-on-add: the collector
    over-approximates the union of every value this task may store). *)
let itf_record (it : itf) (key : itf_key) (value : D.Itv.t) : unit =
  let joined =
    match Hashtbl.find_opt it.itf_writes key with
    | Some old -> D.Itv.join old value
    | None -> value
  in
  Hashtbl.replace it.itf_writes key joined

(** Read a cell's interval from the state (clock-reduced).  Under an
    interference context, reads of shared cells return the join of the
    own-flow value with the rely set: between any two statements another
    task may have stored any value the rely covers (Miné's
    flow-insensitive interference semantics).  This is the single read
    funnel of the analyzer — guards, linearization oracles and
    relational write-backs all go through it, so every consumer of a
    shared value sees the interference. *)
let cell_itv (a : actx) (st : Astate.t) (id : int) : D.Itv.t =
  let c = Cell.of_id a.intern id in
  let own =
    if Cell.is_volatile c && c.Cell.path = [] then
      input_itv a c.Cell.root c.Cell.cty
    else
      match Env.find st.Astate.env id with
      | Some av -> Avalue.itv (Avalue.reduce st.Astate.clock av)
      | None -> type_range a c.Cell.cty
  in
  match a.session.ses_itf with
  | None -> own
  | Some it -> (
      match Hashtbl.find_opt it.itf_rely (c.Cell.root.v_id, c.Cell.path) with
      | Some rely -> D.Itv.join own rely
      | None -> own)

(** Current interval of a scalar variable. *)
let var_itv (a : actx) (st : Astate.t) (v : var) : D.Itv.t =
  cell_itv a st (var_cell a v)

(** Oracle for the linearizer and relational domains: float hull of a
    scalar variable. *)
let oracle (a : actx) (st : Astate.t) : var -> float * float =
 fun v ->
  match v.v_ty with
  | F.Ctypes.Tscalar _ -> (
      match D.Itv.float_hull (var_itv a st v) with
      | Some h -> h
      | None -> (Float.nan, Float.nan) (* unreachable value *))
  | _ -> (Float.neg_infinity, Float.infinity)

(* ------------------------------------------------------------------ *)
(* Lvalue resolution                                                   *)
(* ------------------------------------------------------------------ *)

(** Substitute by-reference parameter bindings away. *)
let rec resolve_lval (binds : binds) (lv : lval) : lval =
  match lv.ldesc with
  | Lvar _ -> lv
  | Lderef v -> (
      match VarMap.find_opt v binds with
      | Some actual -> actual
      | None -> lv)
  | Lindex (b, i) ->
      { lv with ldesc = Lindex (resolve_lval binds b, resolve_expr binds i) }
  | Lfield (b, f) -> { lv with ldesc = Lfield (resolve_lval binds b, f) }

and resolve_expr (binds : binds) (e : expr) : expr =
  match e.edesc with
  | Eint _ | Efloat _ -> e
  | Elval lv -> { e with edesc = Elval (resolve_lval binds lv) }
  | Eunop (op, x) -> { e with edesc = Eunop (op, resolve_expr binds x) }
  | Ebinop (op, x, y) ->
      { e with edesc = Ebinop (op, resolve_expr binds x, resolve_expr binds y) }
  | Ecast (s, x) -> { e with edesc = Ecast (s, resolve_expr binds x) }

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

(* [err] is set when any run-time error is possible in the evaluation;
   linearization refinement is then disabled (Sect. 6.3). *)

let report ?domain ?operands a (err : bool ref) kind loc msg =
  err := true;
  Alarm.report ?domain ?operands a.alarms kind loc msg

(* ---- alarm provenance helpers (ISSUE 5) -------------------------- *)
(* Cold path: these run only inside alarm branches, never on error-free
   evaluations, so allocating strings and walking packs is fine. *)

(* Which abstract domain carries the sharpest information about the
   variables of [e]?  Two variables sharing an octagon pack means the
   check ran under octagon constraints; a single packed variable points
   at its ellipsoid / decision tree; a variable whose clocked components
   carry information was bounded by the clock; everything else is the
   plain interval evaluation. *)
let value_domain (a : actx) (st : Astate.t) (binds : binds) (e : expr) :
    string =
  let vars =
    VarSet.elements (F.Tast.expr_vars (resolve_expr binds e) VarSet.empty)
  in
  let in_pack (op : Packing.oct_pack) v =
    Array.exists (fun (w : var) -> w.v_id = v.v_id) op.Packing.op_vars
  in
  let shares_oct =
    match vars with
    | [] | [ _ ] -> false
    | vs ->
        List.exists
          (fun op -> List.length (List.filter (in_pack op) vs) >= 2)
          (List.concat_map (oct_packs_of a) vs)
  in
  let clocked v =
    match v.v_ty with
    | F.Ctypes.Tscalar _ -> (
        match Env.find st.Astate.env (var_cell a v) with
        | Some (c : Avalue.t) ->
            (not (D.Itv.is_bot c.D.Clocked.vminus))
            || not (D.Itv.is_bot c.D.Clocked.vplus)
        | None -> false)
    | _ -> false
  in
  if shares_oct then "octagon"
  else if List.exists (fun v -> ell_packs_of a v <> []) vars then "ellipsoid"
  else if List.exists (fun v -> dt_packs_of a v <> []) vars then
    "decision-tree"
  else if List.exists clocked vars then "clocked"
  else "interval"

(* (expression, abstract value) pair for an alarm's operand list. *)
let operand (e : expr) (i : D.Itv.t) : string * string =
  (Fmt.str "%a" F.Pp.pp_expr e, Fmt.str "%a" D.Itv.pp i)

(* Clamp an integer interval to a type range, alarming on overflow. *)
let clamp_int a err loc (s : F.Ctypes.scalar) (i : D.Itv.t) : D.Itv.t =
  let rng = type_range a s in
  if D.Itv.is_bot i then i
  else if D.Itv.subset i rng then i
  else begin
    report a err Alarm.Int_overflow loc
      (Fmt.str "value %a outside %a" D.Itv.pp i F.Ctypes.pp_scalar s);
    D.Itv.meet i rng
  end

(* Clamp a float interval to the finite range of its kind. *)
let clamp_float a err loc (k : F.Ctypes.fkind) (i : D.Itv.t) : D.Itv.t =
  let m = D.Float_utils.fmax k in
  match i with
  | D.Itv.Float (lo, hi) ->
      if lo >= -.m && hi <= m then i
      else begin
        report a err Alarm.Float_overflow loc
          (Fmt.str "value %a exceeds the largest finite %s" D.Itv.pp i
             (if k = F.Ctypes.Fsingle then "float" else "double"));
        D.Itv.meet i (D.Itv.float_range (-.m) m)
      end
  | i -> i

let round_float_result (k : F.Ctypes.fkind) (i : D.Itv.t) : D.Itv.t =
  match k with
  | F.Ctypes.Fsingle -> ( match i with D.Itv.Float _ -> D.Itv.to_single i | i -> i)
  | F.Ctypes.Fdouble -> i

(* Truth interval of a scalar interval: (can_be_zero, can_be_nonzero). *)
let truthiness (i : D.Itv.t) : bool * bool =
  match i with
  | D.Itv.Bot -> (false, false)
  | D.Itv.Int (lo, hi) -> (lo <= 0 && hi >= 0, not (lo = 0 && hi = 0))
  | D.Itv.Float (lo, hi) -> (lo <= 0.0 && hi >= 0.0, not (lo = 0.0 && hi = 0.0))

let bool_itv (can_f, can_t) : D.Itv.t =
  match (can_f, can_t) with
  | false, false -> D.Itv.Bot
  | true, false -> D.Itv.int_const 0
  | false, true -> D.Itv.int_const 1
  | true, true -> D.Itv.int_range 0 1

(** Evaluate an expression to an interval, reporting alarms (in checking
    mode) and recording error possibility in [err].  [var_hook] lets
    decision-tree leaves override variable ranges. *)
let rec eval ?(var_hook : (var -> D.Itv.t option) option) (a : actx)
    (st : Astate.t) (binds : binds) (err : bool ref) (e : expr) : D.Itv.t =
  let ev = eval ?var_hook a st binds err in
  let loc = e.eloc in
  match e.edesc with
  | Eint n -> D.Itv.int_const n
  | Efloat f -> D.Itv.float_const f
  | Elval lv -> read_lval ?var_hook a st binds err lv
  | Eunop (op, x) -> (
      let ix = ev x in
      match op with
      | Neg -> (
          let r = D.Itv.neg ix in
          match e.ety with
          | F.Ctypes.Tint _ -> clamp_int a err loc e.ety r
          | F.Ctypes.Tfloat k ->
              clamp_float a err loc k (round_float_result k r))
      | Bnot -> clamp_int a err loc e.ety (D.Itv.bnot ix)
      | Lnot ->
          let can_f, can_t = truthiness ix in
          (* !x is true when x is zero *)
          bool_itv (can_t, can_f)
      | Fabs -> D.Itv.abs ix
      | Sqrt -> (
          match ix with
          | D.Itv.Float (lo, _) when lo < 0.0 ->
              report
                ~domain:(value_domain a st binds x)
                ~operands:[ operand x ix ] a err Alarm.Invalid_op loc
                "sqrt of possibly negative value";
              D.Itv.sqrt_itv ix
          | _ -> D.Itv.sqrt_itv ix))
  | Ebinop (op, x, y) -> (
      match op with
      | Land ->
          (* short-circuit: the rhs is only evaluated (and can only
             err) when the lhs may be true, and then under the lhs's
             refinement — so that z != 0 && k / z raises no alarm *)
          let tx = truthiness (ev x) in
          if not (snd tx) then bool_itv (fst tx, false)
          else
            let hook = combine_hooks var_hook (cond_hook a st binds x true) in
            let ty =
              truthiness (eval ?var_hook:hook a st binds err y)
            in
            bool_itv (fst tx || ((snd tx) && fst ty), snd tx && snd ty)
      | Lor ->
          let tx = truthiness (ev x) in
          if not (fst tx) then bool_itv (false, snd tx)
          else
            let hook = combine_hooks var_hook (cond_hook a st binds x false) in
            let ty =
              truthiness (eval ?var_hook:hook a st binds err y)
            in
            bool_itv (fst tx && fst ty, snd tx || ((fst tx) && snd ty))
      | Lt | Gt | Le | Ge | Eq | Ne -> (
          let ix = ev x and iy = ev y in
          if D.Itv.is_bot ix || D.Itv.is_bot iy then D.Itv.Bot
          else
            (* decide from the refinements *)
            let can_t =
              not
                (D.Itv.is_bot
                   (match op with
                   | Lt -> D.Itv.refine_lt ix iy
                   | Gt -> D.Itv.refine_gt ix iy
                   | Le -> D.Itv.refine_le ix iy
                   | Ge -> D.Itv.refine_ge ix iy
                   | Eq -> D.Itv.refine_eq ix iy
                   | Ne -> D.Itv.refine_ne ix iy
                   | _ -> assert false))
            in
            let can_f =
              not
                (D.Itv.is_bot
                   (match op with
                   | Lt -> D.Itv.refine_ge ix iy
                   | Gt -> D.Itv.refine_le ix iy
                   | Le -> D.Itv.refine_gt ix iy
                   | Ge -> D.Itv.refine_lt ix iy
                   | Eq -> D.Itv.refine_ne ix iy
                   | Ne -> D.Itv.refine_eq ix iy
                   | _ -> assert false))
            in
            (* Ne/Eq refinements are weak; make the comparison exact on
               disjoint / singleton intervals *)
            let can_t, can_f =
              match op with
              | Ne -> (
                  match (ix, iy) with
                  | D.Itv.Int (l1, h1), D.Itv.Int (l2, h2) ->
                      ( not (l1 = h1 && l2 = h2 && l1 = l2),
                        l1 <= h2 && l2 <= h1 )
                  | _ -> (can_t, can_f))
              | Eq -> (
                  match (ix, iy) with
                  | D.Itv.Int (l1, h1), D.Itv.Int (l2, h2) ->
                      (l1 <= h2 && l2 <= h1,
                       not (l1 = h1 && l2 = h2 && l1 = l2))
                  | _ -> (can_t, can_f))
              | _ -> (can_t, can_f)
            in
            bool_itv (can_f, can_t))
      | Add | Sub | Mul -> (
          let ix = ev x and iy = ev y in
          let r =
            match op with
            | Add -> D.Itv.add ix iy
            | Sub -> D.Itv.sub ix iy
            | Mul -> D.Itv.mul ix iy
            | _ -> assert false
          in
          match e.ety with
          | F.Ctypes.Tint _ ->
              let r = clamp_int a err loc e.ety r in
              refine_linear ?var_hook a st err e r
          | F.Ctypes.Tfloat k ->
              let r = clamp_float a err loc k (round_float_result k r) in
              refine_linear ?var_hook a st err e r)
      | Div -> (
          let ix = ev x and iy = ev y in
          let iy =
            if D.Itv.contains_zero iy then begin
              report
                ~domain:(value_domain a st binds y)
                ~operands:[ operand x ix; operand y iy ]
                a err Alarm.Div_by_zero loc "divisor may be zero";
              D.Itv.exclude_zero iy
            end
            else iy
          in
          let r = D.Itv.div ix iy in
          match e.ety with
          | F.Ctypes.Tint _ -> clamp_int a err loc e.ety r
          | F.Ctypes.Tfloat k ->
              let r = clamp_float a err loc k (round_float_result k r) in
              refine_linear ?var_hook a st err e r)
      | Mod ->
          let ix = ev x and iy = ev y in
          let iy =
            if D.Itv.contains_zero iy then begin
              report
                ~domain:(value_domain a st binds y)
                ~operands:[ operand x ix; operand y iy ]
                a err Alarm.Mod_by_zero loc "modulo by possibly zero";
              D.Itv.exclude_zero iy
            end
            else iy
          in
          clamp_int a err loc e.ety (D.Itv.rem ix iy)
      | Shl | Shr ->
          let ix = ev x and iy = ev y in
          let range = D.Itv.int_range 0 31 in
          let iy =
            if not (D.Itv.subset iy range) then begin
              report
                ~domain:(value_domain a st binds y)
                ~operands:[ operand x ix; operand y iy ]
                a err Alarm.Shift_range loc "shift amount out of [0,31]";
              D.Itv.meet iy range
            end
            else iy
          in
          let r = if op = Shl then D.Itv.shl ix iy else D.Itv.shr ix iy in
          clamp_int a err loc e.ety r
      | Band | Bor | Bxor ->
          let ix = ev x and iy = ev y in
          let r =
            match op with
            | Band -> D.Itv.band ix iy
            | Bor -> D.Itv.bor ix iy
            | Bxor -> D.Itv.bxor ix iy
            | _ -> assert false
          in
          clamp_int a err loc e.ety r)
  | Ecast (s, x) -> (
      let ix = ev x in
      match (s, x.ety) with
      | F.Ctypes.Tint _, F.Ctypes.Tint _ -> clamp_int a err loc s ix
      | F.Ctypes.Tint _, F.Ctypes.Tfloat _ ->
          clamp_int a err loc s (D.Itv.float_to_int ix)
      | F.Ctypes.Tfloat k, F.Ctypes.Tint _ ->
          round_float_result k (D.Itv.int_to_float ix)
      | F.Ctypes.Tfloat k, F.Ctypes.Tfloat _ ->
          clamp_float a err loc k (round_float_result k ix))

(* A variable-refinement hook from an atomic condition: when [cond] is a
   simple comparison on a variable, reading that variable under the hook
   sees the refined range.  Used for short-circuit right-hand sides. *)
and cond_hook (a : actx) (st : Astate.t) (binds : binds) (cond : expr)
    (truth : bool) : (var -> D.Itv.t option) option =
  let refined_for (v : var) (op : binop) (other : expr) (x_on_left : bool) =
    let err = ref false in
    let saved = a.alarms.Alarm.enabled in
    a.alarms.Alarm.enabled <- false;
    let io = eval a st binds err other in
    a.alarms.Alarm.enabled <- saved;
    let base = var_itv a st v in
    let op = if x_on_left then op
      else match op with
        | Lt -> Gt | Gt -> Lt | Le -> Ge | Ge -> Le | o -> o
    in
    let op = if truth then op
      else match op with
        | Lt -> Ge | Ge -> Lt | Gt -> Le | Le -> Gt | Eq -> Ne | Ne -> Eq
        | o -> o
    in
    match op with
    | Lt -> D.Itv.refine_lt base io
    | Gt -> D.Itv.refine_gt base io
    | Le -> D.Itv.refine_le base io
    | Ge -> D.Itv.refine_ge base io
    | Eq -> D.Itv.refine_eq base io
    | Ne -> D.Itv.refine_ne base io
    | _ -> base
  in
  match cond.edesc with
  | Eunop (Lnot, inner) -> cond_hook a st binds inner (not truth)
  | Ebinop ((Lt | Gt | Le | Ge | Eq | Ne) as op, l, r) -> (
      match ((resolve_expr binds l).edesc, (resolve_expr binds r).edesc) with
      | Elval { ldesc = Lvar v; _ }, _ when not v.v_volatile ->
          let i = refined_for v op r true in
          Some (fun w -> if Var.equal w v then Some i else None)
      | _, Elval { ldesc = Lvar v; _ } when not v.v_volatile ->
          let i = refined_for v op l false in
          Some (fun w -> if Var.equal w v then Some i else None)
      | _ -> None)
  | Elval { ldesc = Lvar v; _ } when not v.v_volatile ->
      let base = var_itv a st v in
      let i =
        if truth then
          D.Itv.refine_ne base
            (match base with
            | D.Itv.Float _ -> D.Itv.float_const 0.0
            | _ -> D.Itv.int_const 0)
        else
          D.Itv.meet base
            (match base with
            | D.Itv.Float _ -> D.Itv.float_const 0.0
            | _ -> D.Itv.int_const 0)
      in
      Some (fun w -> if Var.equal w v then Some i else None)
  | _ -> None

(* Compose two optional hooks; the refinement hook's answer is met with
   the outer hook's. *)
and combine_hooks (outer : (var -> D.Itv.t option) option)
    (inner : (var -> D.Itv.t option) option) : (var -> D.Itv.t option) option
    =
  match (outer, inner) with
  | None, h | h, None -> h
  | Some f, Some g ->
      Some
        (fun v ->
          match (f v, g v) with
          | Some a, Some b ->
              let m = D.Itv.meet a b in
              Some m
          | Some a, None -> Some a
          | None, Some b -> Some b
          | None, None -> None)

(* Read an lvalue: join over its possible cells. *)
and read_lval ?var_hook (a : actx) (st : Astate.t) (binds : binds)
    (err : bool ref) (lv : lval) : D.Itv.t =
  let lv = resolve_lval binds lv in
  (match lv.ldesc with
  | Lvar v -> (
      match (var_hook, v.v_ty) with
      | Some hook, F.Ctypes.Tscalar _ -> (
          match hook v with Some i -> Some i | None -> None)
      | _ -> None)
  | _ -> None)
  |> function
  | Some i -> i
  | None -> (
      let cells, _exact = cells_of_lval a st binds err lv in
      match cells with
      | [] -> D.Itv.Bot (* dead access *)
      | _ ->
          List.fold_left
            (fun acc id ->
              let i = cell_itv a st id in
              if D.Itv.is_bot acc then i
              else if D.Itv.is_bot i then acc
              else D.Itv.join acc i)
            D.Itv.Bot cells)

(* Possible cells of a (resolved) lvalue, with bound checking. *)
and cells_of_lval (a : actx) (st : Astate.t) (binds : binds) (err : bool ref)
    (lv : lval) : int list * bool =
  let weak_multi = ref false in
  let rec go (lv : lval) : (var * Cell.step list) list =
    match lv.ldesc with
    | Lvar v -> [ (v, []) ]
    | Lderef v -> (
        match VarMap.find_opt v binds with
        | Some actual -> go actual
        | None -> [])
    | Lfield (b, f) ->
        List.map (fun (v, p) -> (v, p @ [ Cell.Sfield f ])) (go b)
    | Lindex (b, idx) -> (
        let bases = go b in
        match b.lty with
        | F.Ctypes.Tarray (_, n) ->
            if n <= a.cfg.Config.expand_array_max then begin
              let ii = eval a st binds err idx in
              let rng = D.Itv.int_range 0 (n - 1) in
              let ii =
                if not (D.Itv.subset ii rng) then begin
                  report
                    ~domain:(value_domain a st binds idx)
                    ~operands:[ operand idx ii ]
                    a err Alarm.Out_of_bounds idx.eloc
                    (Fmt.str "index %a outside [0,%d]" D.Itv.pp ii (n - 1));
                  D.Itv.meet ii rng
                end
                else ii
              in
              match ii with
              | D.Itv.Int (lo, hi) ->
                  if hi > lo then weak_multi := true;
                  List.concat_map
                    (fun (v, p) ->
                      List.init (hi - lo + 1) (fun k ->
                          (v, p @ [ Cell.Selem (lo + k) ])))
                    bases
              | _ -> []
            end
            else begin
              (* shrunk array: single weak cell; the subscript is still
                 bound-checked *)
              let ii = eval a st binds err idx in
              let rng = D.Itv.int_range 0 (n - 1) in
              if not (D.Itv.subset ii rng) then
                report
                  ~domain:(value_domain a st binds idx)
                  ~operands:[ operand idx ii ]
                  a err Alarm.Out_of_bounds idx.eloc
                  (Fmt.str "index %a outside [0,%d]" D.Itv.pp ii (n - 1));
              weak_multi := true;
              List.map (fun (v, p) -> (v, p @ [ Cell.Sall ])) bases
            end
        | _ -> [])
  in
  let paths = go lv in
  let cells =
    List.filter_map
      (fun (v, path) ->
        match lv.lty with
        | F.Ctypes.Tscalar s ->
            let weak = List.mem Cell.Sall path in
            Some (Cell.intern a.intern { Cell.root = v; path; cty = s; weak })
        | _ -> None)
      paths
  in
  let exact =
    (not !weak_multi) && List.length cells = 1
    && not (List.exists (fun id -> (Cell.of_id a.intern id).Cell.weak) cells)
  in
  (cells, exact)

(* Linearization refinement (Sect. 6.3): only when no possible error was
   recorded while evaluating the expression. *)
and refine_linear ?var_hook (a : actx) (st : Astate.t) (err : bool ref)
    (e : expr) (plain : D.Itv.t) : D.Itv.t =
  if (not a.cfg.Config.use_linearization) || !err then plain
  else
    let orc v =
      let base =
        match var_hook with
        | Some hook -> ( match hook v with Some i -> Some i | None -> None)
        | None -> None
      in
      let i = match base with Some i -> i | None -> var_itv a st v in
      match D.Itv.float_hull i with
      | Some h -> h
      | None -> (Float.nan, Float.nan)
    in
    D.Linearize.refine_eval orc e plain

(* Timed entry point for the recursive evaluator above: later callers
   (guards, assignments, the iterator) go through this shadowing
   wrapper while the internal recursion stays on the raw [eval], so the
   interval-transfer probe meters each top-level evaluation exactly
   once. *)
let eval ?var_hook (a : actx) (st : Astate.t) (binds : binds)
    (err : bool ref) (e : expr) : D.Itv.t =
  D.Profile.count D.Profile.itv_transfer;
  let t0 = D.Profile.start () in
  match eval ?var_hook a st binds err e with
  | r ->
      D.Profile.stop D.Profile.itv_transfer t0;
      r
  | exception exn ->
      D.Profile.stop D.Profile.itv_transfer t0;
      raise exn

(* ------------------------------------------------------------------ *)
(* Write-backs between domains (reductions)                            *)
(* ------------------------------------------------------------------ *)

(** Meet the environment value of a scalar variable with [i]. *)
let refine_var_env (a : actx) (st : Astate.t) (v : var) (i : D.Itv.t) :
    Astate.t =
  if v.v_volatile then st
  else
    match v.v_ty with
    | F.Ctypes.Tscalar s ->
        let id = var_cell a v in
        let old =
          match Env.find st.Astate.env id with
          | Some av -> av
          | None ->
              Avalue.of_itv ~use_clocked:false ~clock:st.Astate.clock
                (type_range a s)
        in
        let cur = Avalue.itv old in
        let refined = D.Itv.meet cur i in
        if D.Itv.equal refined cur then st
        else if D.Itv.is_bot refined then Astate.bottom
        else
          { st with Astate.env = Env.set st.Astate.env id (Avalue.with_itv old refined) }
    | _ -> st

(** Pull interval bounds out of the octagons for [vars] and meet them
    into the environment, tracking pack usefulness (Sect. 7.2.2). *)
let writeback_octagons (a : actx) (st : Astate.t) (vars : var list) : Astate.t =
  if not a.cfg.Config.use_octagons then st
  else
    List.fold_left
      (fun st v ->
        List.fold_left
          (fun st (op : Packing.oct_pack) ->
            match Ptmap.find_opt op.op_id st.Astate.rel.Relstate.octs with
            | None -> st
            | Some o -> (
                if D.Octagon.is_bot o then Astate.bottom
                else
                  match D.Octagon.get_bounds o v with
                  | Some (lo, hi)
                    when lo > Float.neg_infinity || hi < Float.infinity -> (
                      let cur = var_itv a st v in
                      let bound =
                        match cur with
                        | D.Itv.Int _ ->
                            D.Itv.int_range
                              (if lo = Float.neg_infinity then min_int
                               else int_of_float (Float.floor lo))
                              (if hi = Float.infinity then max_int
                               else int_of_float (Float.ceil hi))
                        | D.Itv.Float _ -> D.Itv.float_range lo hi
                        | D.Itv.Bot -> D.Itv.Bot
                      in
                      match bound with
                      | D.Itv.Bot -> st
                      | bound ->
                          let refined = D.Itv.meet cur bound in
                          if
                            (not (D.Itv.equal refined cur))
                            && not (D.Itv.is_bot refined)
                          then begin
                            Hashtbl.replace a.oct_useful op.op_id ();
                            refine_var_env a st v refined
                          end
                          else st)
                  | _ -> st))
          st
          (oct_packs_of a v))
      st vars

(** Pull bounds out of the decision trees for [v]. *)
let writeback_dtrees (a : actx) (st : Astate.t) (v : var) : Astate.t =
  if not a.cfg.Config.use_decision_trees then st
  else
    List.fold_left
      (fun st (dp : Packing.dt_pack) ->
        match Ptmap.find_opt dp.dp_id st.Astate.rel.Relstate.dts with
        | None -> st
        | Some d -> (
            if D.Decision_tree.is_bot d then Astate.bottom
            else
              match D.Decision_tree.get_num d v with
              | Some i -> refine_var_env a st v i
              | None -> (
                  if Array.exists (Var.equal v) dp.dp_bools then
                    let can_f, can_t = D.Decision_tree.get_bool d v in
                    refine_var_env a st v (bool_itv (can_f, can_t))
                  else st)))
      st
      (dt_packs_of a v)

(** Pull a magnitude bound out of the ellipsoids for [v] (the paper's
    |X'| <= 2 sqrt(b . r / (4b - a^2)) reduction). *)
let writeback_ellipsoids (a : actx) (st : Astate.t) (v : var) : Astate.t =
  if not a.cfg.Config.use_ellipsoids then st
  else
    List.fold_left
      (fun st (ep : Packing.ell_pack) ->
        match Ptmap.find_opt ep.ep_id st.Astate.rel.Relstate.ells with
        | None -> st
        | Some el -> (
            match D.Ellipsoid.best_bound el v with
            | Some m -> refine_var_env a st v (D.Itv.float_range (-.m) m)
            | None -> st))
      st
      (ell_packs_of a v)

(* ------------------------------------------------------------------ *)
(* Decision-tree helpers                                               *)
(* ------------------------------------------------------------------ *)

(* Evaluate an expression with a leaf-local variable hook. *)
let eval_in_leaf (a : actx) (st : Astate.t) (binds : binds)
    (dp : Packing.dt_pack) (path : (int * bool) list)
    (leaf : D.Itv.t VarMap.t) (e : expr) : D.Itv.t =
  let hook (v : var) : D.Itv.t option =
    match List.assoc_opt v.v_id path with
    | Some b -> Some (D.Itv.int_const (if b then 1 else 0))
    | None -> (
        match VarMap.find_opt v leaf with
        | Some i -> Some (D.Itv.meet i (var_itv a st v))
        | None ->
            if Array.exists (Var.equal v) dp.dp_nums then
              Some (var_itv a st v)
            else None)
  in
  let err = ref false in
  let saved = a.alarms.Alarm.enabled in
  a.alarms.Alarm.enabled <- false;  (* leaf-local evaluation never alarms *)
  let r = eval ~var_hook:hook a st binds err e in
  a.alarms.Alarm.enabled <- saved;
  r

(* Integer casts of truth-valued expressions (0/1) are value-preserving;
   strip them so condition shapes are recognized. *)
let rec strip_bool_casts (e : expr) : expr =
  match e.edesc with
  | Ecast
      ( F.Ctypes.Tint _,
        ({ edesc = Ebinop ((Lt | Gt | Le | Ge | Eq | Ne | Land | Lor), _, _); _ }
         as inner) ) ->
      strip_bool_casts inner
  | Ecast (F.Ctypes.Tint _, ({ edesc = Eunop (Lnot, _); _ } as inner)) ->
      strip_bool_casts inner
  | _ -> e

(* Refine a leaf under [cond = truth] by backward interval refinement on
   pack numerical variables occurring in simple comparisons. *)
let refine_leaf (a : actx) (st : Astate.t) (binds : binds)
    (dp : Packing.dt_pack) (path : (int * bool) list) (cond : expr)
    (truth : bool) (leaf : D.Itv.t VarMap.t) : D.Itv.t VarMap.t option =
  let cond = strip_bool_casts cond in
  (* quick unsatisfiability check *)
  let i = eval_in_leaf a st binds dp path leaf cond in
  let can_f, can_t = truthiness i in
  if (truth && not can_t) || ((not truth) && not can_f) then None
  else
    (* refine x for conditions (x cmp e) / (e cmp x) with x a pack num *)
    let refine_one (x : var) (op : binop) (other : expr) (x_on_left : bool)
        (leaf : D.Itv.t VarMap.t) : D.Itv.t VarMap.t option =
      if not (Array.exists (Var.equal x) dp.dp_nums) then Some leaf
      else begin
        let base =
          match VarMap.find_opt x leaf with
          | Some i -> D.Itv.meet i (var_itv a st x)
          | None -> var_itv a st x
        in
        let io = eval_in_leaf a st binds dp path leaf other in
        let op = if x_on_left then op else (
          match op with
          | Lt -> Gt | Gt -> Lt | Le -> Ge | Ge -> Le | o -> o)
        in
        let op = if truth then op else (
          match op with
          | Lt -> Ge | Ge -> Lt | Gt -> Le | Le -> Gt | Eq -> Ne | Ne -> Eq
          | o -> o)
        in
        let refined =
          match op with
          | Lt -> D.Itv.refine_lt base io
          | Gt -> D.Itv.refine_gt base io
          | Le -> D.Itv.refine_le base io
          | Ge -> D.Itv.refine_ge base io
          | Eq -> D.Itv.refine_eq base io
          | Ne -> D.Itv.refine_ne base io
          | _ -> base
        in
        if D.Itv.is_bot refined then None
        else Some (VarMap.add x refined leaf)
      end
    in
    match cond.edesc with
    | Ebinop ((Lt | Gt | Le | Ge | Eq | Ne) as op, l, r) -> (
        let leaf' =
          match l.edesc with
          | Elval { ldesc = Lvar x; _ } -> refine_one x op r true leaf
          | Ecast (_, { edesc = Elval { ldesc = Lvar x; _ }; _ }) ->
              refine_one x op r true leaf
          | _ -> Some leaf
        in
        match leaf' with
        | None -> None
        | Some leaf' -> (
            match r.edesc with
            | Elval { ldesc = Lvar x; _ } -> refine_one x op l false leaf'
            | Ecast (_, { edesc = Elval { ldesc = Lvar x; _ }; _ }) ->
                refine_one x op l false leaf'
            | _ -> Some leaf'))
    | _ -> Some leaf

(* ------------------------------------------------------------------ *)
(* Guards (Sect. 5.4: guard# on atomic conditions; compound ones by     *)
(* structural induction)                                                *)
(* ------------------------------------------------------------------ *)

(* Is the condition a (possibly negated) boolean variable test?  After
   elaboration these have the shape (b != 0), (b == 0) or !(...). *)
let rec as_bool_var_test (e : expr) : (var * bool) option =
  match e.edesc with
  | Elval { ldesc = Lvar b; _ } when F.Ctypes.is_bool b.v_ty -> Some (b, true)
  | Ebinop (Ne, { edesc = Elval { ldesc = Lvar b; _ }; _ }, { edesc = Eint 0; _ })
    when F.Ctypes.is_bool b.v_ty ->
      Some (b, true)
  | Ebinop (Eq, { edesc = Elval { ldesc = Lvar b; _ }; _ }, { edesc = Eint 0; _ })
    when F.Ctypes.is_bool b.v_ty ->
      Some (b, false)
  | Eunop (Lnot, inner) ->
      Option.map (fun (b, v) -> (b, not v)) (as_bool_var_test inner)
  | _ -> None

let negate_cmp : binop -> binop = function
  | Lt -> Ge | Ge -> Lt | Gt -> Le | Le -> Gt | Eq -> Ne | Ne -> Eq
  | op -> op

(* Guard the octagons with (l cmp r) [truth], through linear forms. *)
let guard_octagons (a : actx) (st : Astate.t) (binds : binds) (op : binop)
    (l : expr) (r : expr) (truth : bool) : Astate.t =
  if (not a.cfg.Config.use_octagons) || Ptmap.is_empty st.Astate.rel.Relstate.octs
  then st
  else begin
    let op = if truth then op else negate_cmp op in
    let orc v =
      match D.Itv.float_hull (var_itv a st v) with
      | Some h -> h
      | None -> (Float.nan, Float.nan)
    in
    let l = resolve_expr binds l and r = resolve_expr binds r in
    match (D.Linearize.linearize orc l, D.Linearize.linearize orc r) with
    | Some fl, Some fr ->
        (* all forms are applied to ONE copy of each touched pack
           octagon ([guard_le_zero] restores closure incrementally
           between them), so an equality — two opposite inequalities —
           costs one copy per pack instead of a copy-close-copy chain *)
        let apply_le_zero st forms =
          let vars =
            List.concat_map D.Linear_form.vars forms
            |> List.sort_uniq Var.compare
          in
          let touched =
            List.concat_map (fun v -> oct_packs_of a v) vars
            |> List.sort_uniq (fun (x : Packing.oct_pack) y ->
                   Int.compare x.op_id y.op_id)
          in
          let octs =
            List.fold_left
              (fun octs (op_ : Packing.oct_pack) ->
                match Ptmap.find_opt op_.op_id octs with
                | None -> octs
                | Some o ->
                    let o' = D.Octagon.copy o in
                    List.iter (fun f -> D.Octagon.guard_le_zero o' orc f) forms;
                    Ptmap.add op_.op_id o' octs)
              st.Astate.rel.Relstate.octs touched
          in
          { st with Astate.rel = { st.Astate.rel with Relstate.octs } }
        in
        (* over the integers a < b is a - b + 1 <= 0: recover the unit
           the real-field octagon would lose on strict comparisons *)
        let both_int =
          F.Ctypes.is_integer (F.Ctypes.Tscalar l.ety)
          && F.Ctypes.is_integer (F.Ctypes.Tscalar r.ety)
        in
        let one = D.Linear_form.of_interval 1.0 1.0 in
        let strictify f = if both_int then D.Linear_form.add f one else f in
        let st =
          match op with
          | Le -> apply_le_zero st [ D.Linear_form.sub fl fr ]
          | Lt -> apply_le_zero st [ strictify (D.Linear_form.sub fl fr) ]
          | Ge -> apply_le_zero st [ D.Linear_form.sub fr fl ]
          | Gt -> apply_le_zero st [ strictify (D.Linear_form.sub fr fl) ]
          | Eq ->
              apply_le_zero st
                [ D.Linear_form.sub fl fr; D.Linear_form.sub fr fl ]
          | _ -> st
        in
        (* pull refined bounds back into the environment, for every
           variable of the touched packs: the closure typically improves
           other pack members than those occurring in the condition (the
           paper's rate-limiter example bounds L from the guard on R) *)
        let guard_vars = D.Linear_form.vars fl @ D.Linear_form.vars fr in
        let pack_vars =
          List.concat_map
            (fun v ->
              List.concat_map
                (fun (op_ : Packing.oct_pack) -> Array.to_list op_.op_vars)
                (oct_packs_of a v))
            guard_vars
        in
        let vars = List.sort_uniq Var.compare (guard_vars @ pack_vars) in
        writeback_octagons a st vars
    | _ -> st
  end

(* Guard the decision trees. *)
let guard_dtrees (a : actx) (st : Astate.t) (binds : binds) (cond : expr)
    (truth : bool) : Astate.t =
  if not a.cfg.Config.use_decision_trees then st
  else
    match as_bool_var_test cond with
    | Some (b, pos) ->
        let value = if truth then pos else not pos in
        let dts = ref st.Astate.rel.Relstate.dts in
        let changed = ref [] in
        List.iter
          (fun (dp : Packing.dt_pack) ->
            match Ptmap.find_opt dp.dp_id !dts with
            | None -> ()
            | Some d ->
                let d' = D.Decision_tree.guard_bool d b value in
                dts := Ptmap.add dp.dp_id d' !dts;
                changed := dp :: !changed)
          (dt_packs_of a b);
        let st =
          { st with Astate.rel = { st.Astate.rel with Relstate.dts = !dts } }
        in
        (* write back bounds for the numerical variables of changed packs *)
        List.fold_left
          (fun st (dp : Packing.dt_pack) ->
            Array.fold_left (fun st v -> writeback_dtrees a st v) st dp.dp_nums)
          st !changed
    | None -> (
        match cond.edesc with
        | Ebinop ((Lt | Gt | Le | Ge | Eq | Ne), _, _) ->
            let vars =
              VarSet.elements (expr_vars cond VarSet.empty)
              |> List.filter (fun v -> F.Ctypes.is_scalar v.v_ty)
            in
            let touched =
              List.concat_map (fun v -> dt_packs_of a v) vars
              |> List.sort_uniq (fun (x : Packing.dt_pack) y ->
                     Int.compare x.dp_id y.dp_id)
            in
            List.fold_left
              (fun st (dp : Packing.dt_pack) ->
                match Ptmap.find_opt dp.dp_id st.Astate.rel.Relstate.dts with
                | None -> st
                | Some d ->
                    let d' =
                      D.Decision_tree.guard_num d (fun path leaf ->
                          match leaf with
                          | None -> None
                          | Some m ->
                              refine_leaf a st binds dp path cond truth m)
                    in
                    let st =
                      {
                        st with
                        Astate.rel =
                          {
                            st.Astate.rel with
                            Relstate.dts =
                              Ptmap.add dp.dp_id d' st.Astate.rel.Relstate.dts;
                          };
                      }
                    in
                    Array.fold_left
                      (fun st v -> writeback_dtrees a st v)
                      st dp.dp_nums)
              st touched
        | _ -> st)

(** guard#(E, c): refine the state under condition [cond] = [truth]. *)
let rec guard (a : actx) (st : Astate.t) (binds : binds) (cond : expr)
    (truth : bool) : Astate.t =
  if Astate.is_bot st then st
  else
    match cond.edesc with
    | Eint n -> if (n <> 0) = truth then st else Astate.bottom
    | Eunop (Lnot, inner) -> guard a st binds inner (not truth)
    | Ebinop (Land, x, y) ->
        if truth then guard a (guard a st binds x true) binds y true
        else
          Astate.join
            (guard a st binds x false)
            (guard a (guard a st binds x true) binds y false)
    | Ebinop (Lor, x, y) ->
        if truth then
          Astate.join
            (guard a st binds x true)
            (guard a (guard a st binds x false) binds y true)
        else guard a (guard a st binds x false) binds y false
    | Ebinop ((Lt | Gt | Le | Ge | Eq | Ne) as op, l, r) ->
        let err = ref false in
        let il = eval a st binds err l in
        let ir = eval a st binds err r in
        if D.Itv.is_bot il || D.Itv.is_bot ir then Astate.bottom
        else begin
          let op' = if truth then op else negate_cmp op in
          let rl =
            match op' with
            | Lt -> D.Itv.refine_lt il ir
            | Gt -> D.Itv.refine_gt il ir
            | Le -> D.Itv.refine_le il ir
            | Ge -> D.Itv.refine_ge il ir
            | Eq -> D.Itv.refine_eq il ir
            | Ne -> D.Itv.refine_ne il ir
            | _ -> il
          in
          let rr =
            match op' with
            | Lt -> D.Itv.refine_gt ir il
            | Gt -> D.Itv.refine_lt ir il
            | Le -> D.Itv.refine_ge ir il
            | Ge -> D.Itv.refine_le ir il
            | Eq -> D.Itv.refine_eq ir il
            | Ne -> D.Itv.refine_ne ir il
            | _ -> ir
          in
          if D.Itv.is_bot rl || D.Itv.is_bot rr then Astate.bottom
          else begin
            (* environment refinement on lvalues that resolve to exactly
               one strong cell (simple variables, constant-subscript
               array elements, record fields — Sect. 6.1.3: guards are
               translated like assignments) *)
            let refine_side st (e : expr) refined =
              match (resolve_expr binds e).edesc with
              | Elval ({ ldesc = Lvar v; _ }) -> refine_var_env a st v refined
              | Elval lv -> (
                  let err2 = ref false in
                  let saved = a.alarms.Alarm.enabled in
                  a.alarms.Alarm.enabled <- false;
                  let cells, exact = cells_of_lval a st binds err2 lv in
                  a.alarms.Alarm.enabled <- saved;
                  match cells with
                  | [ id ] when exact && not (Cell.of_id a.intern id).Cell.weak
                    -> (
                      match Env.find st.Astate.env id with
                      | Some av ->
                          let cur = Avalue.itv av in
                          let m = D.Itv.meet cur refined in
                          if D.Itv.is_bot m then Astate.bottom
                          else if D.Itv.equal m cur then st
                          else
                            { st with
                              Astate.env =
                                Env.set st.Astate.env id (Avalue.with_itv av m)
                            }
                      | None -> st)
                  | _ -> st)
              | _ -> st
            in
            let st = refine_side st l rl in
            let st = refine_side st r rr in
            if Astate.is_bot st then st
            else
              let st = guard_octagons a st binds op l r truth in
              if Astate.is_bot st then st
              else guard_dtrees a st binds cond truth
          end
        end
    | _ ->
        (* scalar used as truth value, e.g. after simplification *)
        let err = ref false in
        let i = eval a st binds err cond in
        let can_f, can_t = truthiness i in
        if truth && not can_t then Astate.bottom
        else if (not truth) && not can_f then Astate.bottom
        else begin
          let st =
            match (resolve_expr binds cond).edesc with
            | Elval { ldesc = Lvar v; _ } ->
                let refined =
                  if truth then
                    D.Itv.refine_ne i
                      (match i with
                      | D.Itv.Float _ -> D.Itv.float_const 0.0
                      | _ -> D.Itv.int_const 0)
                  else
                    D.Itv.meet i
                      (match i with
                      | D.Itv.Float _ -> D.Itv.float_const 0.0
                      | _ -> D.Itv.int_const 0)
                in
                refine_var_env a st v refined
            | _ -> st
          in
          guard_dtrees a st binds cond truth
        end

(* ------------------------------------------------------------------ *)
(* Relational assignment updates                                        *)
(* ------------------------------------------------------------------ *)

let assign_octagons (a : actx) (st : Astate.t) (x : var) (rhs : expr)
    (rhs_itv : D.Itv.t) : Astate.t =
  if not a.cfg.Config.use_octagons then st
  else begin
    let packs = oct_packs_of a x in
    if packs = [] then st
    else begin
      let orc v =
        match D.Itv.float_hull (var_itv a st v) with
        | Some h -> h
        | None -> (Float.nan, Float.nan)
      in
      let form = D.Linearize.linearize orc rhs in
      let octs =
        List.fold_left
          (fun octs (op_ : Packing.oct_pack) ->
            match Ptmap.find_opt op_.op_id octs with
            | None -> octs
            | Some o ->
                let o' = D.Octagon.copy o in
                (match form with
                | Some form -> D.Octagon.assign o' orc x form
                | None -> (
                    D.Octagon.forget o' x;
                    match D.Itv.float_hull rhs_itv with
                    | Some (lo, hi) -> D.Octagon.set_bounds o' x (lo, hi)
                    | None -> ()));
                Ptmap.add op_.op_id o' octs)
          st.Astate.rel.Relstate.octs packs
      in
      let st = { st with Astate.rel = { st.Astate.rel with Relstate.octs } } in
      writeback_octagons a st [ x ]
    end
  end

let assign_ellipsoids (a : actx) (st : Astate.t) (x : var) (rhs : expr) :
    Astate.t =
  if not a.cfg.Config.use_ellipsoids then st
  else begin
    let packs = ell_packs_of a x in
    if packs = [] then st
    else begin
      let lin = Packing.syntactic_linear rhs in
      let ells = ref st.Astate.rel.Relstate.ells in
      List.iter
        (fun (ep : Packing.ell_pack) ->
          match Ptmap.find_opt ep.ep_id !ells with
          | None -> ()
          | Some el ->
              let el' =
                match rhs.edesc with
                (* case 1: straight copy x := y *)
                | Elval { ldesc = Lvar y; _ } when D.Ellipsoid.mem_var el y ->
                    D.Ellipsoid.assign_copy el x y
                | Ecast (_, { edesc = Elval { ldesc = Lvar y; _ }; _ })
                  when D.Ellipsoid.mem_var el y ->
                    D.Ellipsoid.assign_copy el x y
                | _ -> (
                    (* case 2: the filter update x := a.y - b.z + t *)
                    match lin with
                    | Some (terms, _c)
                      when Var.equal x ep.ep_x
                           && List.exists
                                (fun (v, k) -> Var.equal v ep.ep_y && k = ep.ep_a)
                                terms
                           && List.exists
                                (fun (v, k) ->
                                  Var.equal v ep.ep_z && k = -.ep.ep_b)
                                terms ->
                        (* bound the residual t with the intervals *)
                        let err = ref false in
                        let saved = a.alarms.Alarm.enabled in
                        a.alarms.Alarm.enabled <- false;
                        let t_itv =
                          let rest =
                            List.filter
                              (fun (v, _) ->
                                not
                                  (Var.equal v ep.ep_y || Var.equal v ep.ep_z))
                              terms
                          in
                          let base = eval a st VarMap.empty err rhs in
                          ignore base;
                          (* conservative: evaluate rhs - a.y + b.z via
                             intervals of the residual terms *)
                          List.fold_left
                            (fun acc (v, k) ->
                              let vi = var_itv a st v in
                              let term =
                                D.Itv.mul (D.Itv.float_const k)
                                  (D.Itv.int_to_float vi)
                              in
                              match (acc, term) with
                              | D.Itv.Bot, t -> t
                              | acc, t -> D.Itv.add acc t)
                            (D.Itv.float_const
                               (match lin with Some (_, c) -> c | None -> 0.0))
                            rest
                        in
                        a.alarms.Alarm.enabled <- saved;
                        let t_max =
                          match D.Itv.float_hull t_itv with
                          | Some (lo, hi) ->
                              Float.max (Float.abs lo) (Float.abs hi)
                          | None -> 0.0
                        in
                        (* pre-assignment reduction of r(y, z) from the
                           intervals (the paper's third reduction step) *)
                        let orc v =
                          match D.Itv.float_hull (var_itv a st v) with
                          | Some h -> h
                          | None -> (Float.nan, Float.nan)
                        in
                        let el =
                          D.Ellipsoid.reduce_from_intervals orc el ep.ep_y
                            ep.ep_z
                        in
                        D.Ellipsoid.assign_filter el x ep.ep_y ep.ep_z ~t_max
                    | _ -> D.Ellipsoid.assign_other el x)
              in
              (* reduction with the interval domain, run eagerly after
                 every pack-variable assignment; this is what seeds the
                 ellipsoid after a reinitialization iteration (the paper
                 stresses these reduction steps are "especially useful in
                 handling a reinitialization iteration") *)
              let orc v =
                match D.Itv.float_hull (var_itv a st v) with
                | Some h -> h
                | None -> (Float.nan, Float.nan)
              in
              (* equality of two pack variables is established through the
                 octagons *)
              let equal_vars u w =
                Var.equal u w
                || List.exists
                  (fun (op_ : Packing.oct_pack) ->
                    match
                      Ptmap.find_opt op_.op_id st.Astate.rel.Relstate.octs
                    with
                    | Some o -> (
                        match D.Octagon.get_diff_bounds o u w with
                        | Some (lo, hi) -> lo = 0.0 && hi = 0.0
                        | None -> false)
                    | None -> false)
                  (oct_packs_of a u)
              in
              let el' =
                Array.fold_left
                  (fun el u ->
                    Array.fold_left
                      (fun el w ->
                        D.Ellipsoid.reduce_from_intervals ~equal_vars orc el u
                          w)
                      el ep.ep_vars)
                  el' ep.ep_vars
              in
              ells := Ptmap.add ep.ep_id el' !ells)
        packs;
      let st =
        { st with Astate.rel = { st.Astate.rel with Relstate.ells = !ells } }
      in
      writeback_ellipsoids a st x
    end
  end

let assign_dtrees (a : actx) (st : Astate.t) (binds : binds) (x : var)
    (rhs : expr) : Astate.t =
  if not a.cfg.Config.use_decision_trees then st
  else begin
    let packs = dt_packs_of a x in
    if packs = [] then st
    else begin
      let dts = ref st.Astate.rel.Relstate.dts in
      List.iter
        (fun (dp : Packing.dt_pack) ->
          match Ptmap.find_opt dp.dp_id !dts with
          | None -> ()
          | Some d ->
              let d' =
                if Array.exists (Var.equal x) dp.dp_bools then
                  (* boolean assignment: split each leaf on the truth of
                     the rhs *)
                  D.Decision_tree.assign_bool_split d x (fun path leaf ->
                      match leaf with
                      | None -> (None, None)
                      | Some m ->
                          let lt =
                            refine_leaf a st binds dp path rhs true m
                          in
                          let lf =
                            refine_leaf a st binds dp path rhs false m
                          in
                          (lt, lf))
                else
                  D.Decision_tree.assign_num d x (fun path leaf ->
                      match leaf with
                      | None -> D.Itv.Bot
                      | Some m -> eval_in_leaf a st binds dp path m rhs)
              in
              dts := Ptmap.add dp.dp_id d' !dts)
        packs;
      let st =
        { st with Astate.rel = { st.Astate.rel with Relstate.dts = !dts } }
      in
      writeback_dtrees a st x
    end
  end

(* ------------------------------------------------------------------ *)
(* Assignment                                                          *)
(* ------------------------------------------------------------------ *)

(** Abstract assignment lvalue := e (Sect. 6.1.3). *)
let assign (a : actx) (st : Astate.t) (binds : binds) (lv : lval) (rhs : expr)
    : Astate.t =
  if Astate.is_bot st then st
  else begin
    let lv = resolve_lval binds lv in
    let rhs = resolve_expr binds rhs in
    let err = ref false in
    let rhs_itv = eval a st binds err rhs in
    let cells, exact = cells_of_lval a st binds err lv in
    if cells = [] then st (* certainly out of bounds: dead continuation *)
    else begin
      let use_clocked = a.cfg.Config.use_clocked in
      let clock = st.Astate.clock in
      (* clock-aware value construction: copies preserve the triple, and
         x := x + cst shifts it (which is what bounds event counters) *)
      let same_kind (i : D.Itv.t) (s : F.Ctypes.scalar) =
        match (i, s) with
        | D.Itv.Int _, F.Ctypes.Tint _ -> true
        | D.Itv.Float _, F.Ctypes.Tfloat _ -> true
        | _ -> false
      in
      let new_av_for (id : int) : Avalue.t =
        let generic () = Avalue.of_itv ~use_clocked ~clock rhs_itv in
        if not use_clocked then generic ()
        else
          (* the copy and x := y + c fast paths below meet the SOURCE
             variable's own-flow value with rhs_itv; when y is shared,
             its own-flow value excludes the rely (other tasks' writes,
             present in rhs_itv via cell_itv), so the meet would
             silently drop interference values — fall back to the
             generic construction, which keeps rhs_itv whole *)
          match rhs.edesc with
          | Elval { ldesc = Lvar y; _ }
            when F.Ctypes.is_scalar y.v_ty
                 && F.Ctypes.equal (F.Ctypes.Tscalar rhs.ety) y.v_ty -> (
              match Env.find st.Astate.env (var_cell a y) with
              | Some av when (not y.v_volatile) && not (itf_tracked_var a y)
                ->
                  Avalue.with_itv av
                    (D.Itv.meet (Avalue.itv av) rhs_itv |> fun i ->
                     if D.Itv.is_bot i then Avalue.itv av else i)
              | _ -> generic ())
          | _ -> (
              match Packing.syntactic_linear rhs with
              | Some ([ (y, 1.0) ], c)
                when F.Ctypes.equal (F.Ctypes.Tscalar rhs.ety) y.v_ty -> (
                  (* x := y + c *)
                  let ycell = var_cell a y in
                  match Env.find st.Astate.env ycell with
                  | Some av
                    when (not y.v_volatile) && ycell = id
                         && (not (itf_tracked_var a y))
                         && same_kind (Avalue.itv av) rhs.ety ->
                      (* self-update x := x + c *)
                      let k =
                        match rhs.ety with
                        | F.Ctypes.Tint _ ->
                            if Float.is_integer c then
                              D.Itv.int_const (int_of_float c)
                            else D.Itv.int_range
                                   (int_of_float (Float.floor c))
                                   (int_of_float (Float.ceil c))
                        | F.Ctypes.Tfloat _ -> D.Itv.float_const c
                      in
                      let shifted = Avalue.add_const k av in
                      let meet_v =
                        D.Itv.meet (Avalue.itv shifted) rhs_itv
                      in
                      if D.Itv.is_bot meet_v then generic ()
                      else Avalue.with_itv shifted meet_v
                  | Some av
                    when (not y.v_volatile)
                         && (not (itf_tracked_var a y))
                         && same_kind (Avalue.itv av) rhs.ety ->
                      let k =
                        match rhs.ety with
                        | F.Ctypes.Tint _ when Float.is_integer c ->
                            D.Itv.int_const (int_of_float c)
                        | F.Ctypes.Tint _ ->
                            D.Itv.int_range
                              (int_of_float (Float.floor c))
                              (int_of_float (Float.ceil c))
                        | F.Ctypes.Tfloat _ -> D.Itv.float_const c
                      in
                      let shifted = Avalue.add_const k av in
                      let meet_v = D.Itv.meet (Avalue.itv shifted) rhs_itv in
                      if D.Itv.is_bot meet_v then generic ()
                      else Avalue.with_itv shifted meet_v
                  | _ -> generic ())
              | _ -> generic ())
      in
      let env =
        List.fold_left
          (fun env id ->
            let nv = new_av_for id in
            if exact then Env.set env id nv
            else
              (* weak update: old value or new value (Sect. 6.1.3) *)
              let old =
                match Env.find env id with
                | Some av -> av
                | None ->
                    Avalue.of_itv ~use_clocked ~clock
                      (type_range a (Cell.of_id a.intern id).Cell.cty)
              in
              Env.set env id (Avalue.join old nv))
          st.Astate.env cells
      in
      let st = { st with Astate.env = env } in
      (* interference guarantee: every abstract write to a shared cell
         records its value (rhs_itv over-approximates the stored value
         for strong and weak updates alike) *)
      (match a.session.ses_itf with
      | None -> ()
      | Some it ->
          List.iter
            (fun id ->
              let c = Cell.of_id a.intern id in
              if Hashtbl.mem it.itf_shared c.Cell.root.v_id then
                itf_record it (c.Cell.root.v_id, c.Cell.path) rhs_itv)
            cells);
      (* relational updates only for exact scalar-variable assignments *)
      match lv.ldesc with
      | Lvar x when exact && F.Ctypes.is_scalar x.v_ty ->
          let st = assign_octagons a st x rhs rhs_itv in
          let st = assign_ellipsoids a st x rhs in
          assign_dtrees a st binds x rhs
      | _ -> st
    end
  end

(** Create (or re-create) a local scalar cell (Sect. 5.2: stack cells are
    created and destroyed on the fly). *)
let local_decl (a : actx) (st : Astate.t) (binds : binds) (v : var)
    (init : expr option) : Astate.t =
  if Astate.is_bot st then st
  else
    match (v.v_ty, init) with
    | F.Ctypes.Tscalar _, Some e ->
        let lv = { ldesc = Lvar v; lty = v.v_ty; lloc = v.v_loc } in
        assign a st binds lv e
    | F.Ctypes.Tscalar s, None ->
        let id = var_cell a v in
        {
          st with
          Astate.env =
            Env.set st.Astate.env id
              (Avalue.of_itv ~use_clocked:false ~clock:st.Astate.clock
                 (type_range a s));
        }
    | _ ->
        (* aggregates: initialize all cells to their type range *)
        let cells =
          Cell.cells_of_var ~structs:a.prog.p_structs
            ~expand_array_max:a.cfg.Config.expand_array_max v
        in
        let env =
          List.fold_left
            (fun env c ->
              let id = Cell.intern a.intern c in
              Env.set env id
                (Avalue.of_itv ~use_clocked:false ~clock:st.Astate.clock
                   (type_range a c.Cell.cty)))
            st.Astate.env cells
        in
        { st with Astate.env = env }

(* ------------------------------------------------------------------ *)
(* Clock tick                                                           *)
(* ------------------------------------------------------------------ *)

(** [__astree_wait_for_clock()]: increment the hidden clock, bounded by
    the maximal operating time (Sect. 4, 6.2.1). *)
let wait (a : actx) (st : Astate.t) : Astate.t =
  if Astate.is_bot st then st
  else begin
    let max_clock = a.cfg.Config.max_clock in
    let clock =
      D.Itv.meet
        (D.Itv.add st.Astate.clock (D.Itv.int_const 1))
        (D.Itv.int_range 0 max_clock)
    in
    if D.Itv.is_bot clock then
      (* operating-time budget exhausted: no further concrete execution *)
      Astate.bottom
    else if a.cfg.Config.use_clocked then
      { st with Astate.clock = clock; env = Env.map_all Avalue.tick st.Astate.env }
    else { st with Astate.clock = clock }
  end

(* ------------------------------------------------------------------ *)
(* Global initialization                                                *)
(* ------------------------------------------------------------------ *)

let rec init_value_itv (init : F.Tast.init) (s : F.Ctypes.scalar) : D.Itv.t =
  match (init, s) with
  | Iint n, F.Ctypes.Tint _ -> D.Itv.int_const n
  | Iint n, F.Ctypes.Tfloat _ -> D.Itv.float_const (float_of_int n)
  | Ifloat f, F.Ctypes.Tfloat _ -> D.Itv.float_const f
  | Ifloat f, F.Ctypes.Tint _ -> D.Itv.int_const (int_of_float f)
  | Izero, F.Ctypes.Tint _ -> D.Itv.int_const 0
  | Izero, F.Ctypes.Tfloat _ -> D.Itv.float_const 0.0
  | (Iarray _ | Istruct _), _ -> D.Itv.Bot (* handled structurally *)

and init_at_path (init : F.Tast.init) (path : Cell.step list)
    (s : F.Ctypes.scalar) : D.Itv.t =
  match (init, path) with
  | _, [] -> init_value_itv init s
  | Iarray items, Cell.Selem i :: rest -> (
      match List.nth_opt items i with
      | Some it -> init_at_path it rest s
      | None -> init_at_path Izero rest s)
  | Iarray items, Cell.Sall :: rest ->
      (* shrunk cell: join of all element initializers *)
      List.fold_left
        (fun acc it ->
          let i = init_at_path it rest s in
          if D.Itv.is_bot acc then i
          else if D.Itv.is_bot i then acc
          else D.Itv.join acc i)
        D.Itv.Bot items
  | Istruct fields, Cell.Sfield f :: rest -> (
      match List.assoc_opt f fields with
      | Some it -> init_at_path it rest s
      | None -> init_at_path Izero rest s)
  | Izero, _ :: rest -> init_at_path Izero rest s
  | _, _ -> init_value_itv Izero s

(** Initial abstract state: globals bound to their static initializers
    (Sect. 5.2: "the abstract interpreter first creates the global and
    static variables of the program"). *)
let initial_state (a : actx) : Astate.t =
  let ncells_hint = 4 * List.length a.prog.p_globals in
  let env =
    ref (Env.empty ~naive:a.cfg.Config.naive_environments ~ncells:ncells_hint)
  in
  let clock = D.Itv.int_const 0 in
  List.iter
    (fun (v, init) ->
      let cells =
        Cell.cells_of_var ~structs:a.prog.p_structs
          ~expand_array_max:a.cfg.Config.expand_array_max v
      in
      List.iter
        (fun (c : Cell.t) ->
          let id = Cell.intern a.intern c in
          let i =
            if v.v_volatile then
              (* volatile inputs: any value of the spec range *)
              input_itv a v c.Cell.cty
            else init_at_path init c.Cell.path c.Cell.cty
          in
          let i = if D.Itv.is_bot i then Avalue.top_of_scalar a.prog.p_target c.Cell.cty else i in
          env :=
            Env.set !env id
              (Avalue.of_itv ~use_clocked:a.cfg.Config.use_clocked ~clock i))
        cells)
    a.prog.p_globals;
  Astate.make ~env:!env ~rel:(Relstate.top a.packs) ~clock

(* ------------------------------------------------------------------ *)
(* Parallel-analysis support                                            *)
(* ------------------------------------------------------------------ *)

(** Intern every cell the analysis could ever touch, in deterministic
    program order.  The parallel subsystem calls this before forking its
    worker pool so that parent and workers share one complete, frozen
    cell numbering: abstract states marshalled between processes then
    agree on cell ids by construction. *)
let prefill_cells (a : actx) : unit =
  let intern_var (v : var) =
    List.iter
      (fun c -> ignore (Cell.intern a.intern c))
      (Cell.cells_of_var ~structs:a.prog.p_structs
         ~expand_array_max:a.cfg.Config.expand_array_max v)
  in
  List.iter (fun (v, _) -> intern_var v) a.prog.p_globals;
  List.iter
    (fun ((_, fd) : string * fundef) ->
      List.iter
        (function Pval v -> intern_var v | Pref _ -> ())
        fd.fd_params;
      iter_stmts
        (fun s ->
          match s.sdesc with
          | Slocal (v, _) -> intern_var v
          | Scall (Some v, _, _) -> intern_var v
          | _ -> ())
        fd.fd_body)
    a.prog.p_funs

(* ------------------------------------------------------------------ *)
(* Incremental-analysis support                                         *)
(* ------------------------------------------------------------------ *)

(** Snapshot of the context's mutable bookkeeping, taken by the summary
    cache at the entry of a memoized call so that the call's exact
    contribution — alarms, loop invariants, useful octagon packs, join
    count — can be extracted afterwards and replayed verbatim on a cache
    hit. *)
type capture = {
  cap_alarms : Alarm.capture;
  cap_invariants : (int, Astate.t) Hashtbl.t;  (** copy at entry *)
  cap_oct_useful : (int, unit) Hashtbl.t;      (** copy at entry *)
  cap_joins : int;
  cap_itf : (itf_key, D.Itv.t) Hashtbl.t option;
      (** copy of the interference guarantee collector at entry (shared
          cells are few, so the copy is cheap); [None] outside
          multi-task runs *)
}

let capture_begin (a : actx) : capture =
  {
    cap_alarms = Alarm.capture a.alarms;
    cap_invariants = Hashtbl.copy a.invariants;
    cap_oct_useful = Hashtbl.copy a.oct_useful;
    cap_joins = a.join_count;
    cap_itf =
      Option.map
        (fun it -> Hashtbl.copy it.itf_writes)
        a.session.ses_itf;
  }

(** Close a capture section: restore the alarm collector (absorbing the
    captured alarms, so the surrounding analysis is unaffected) and diff
    the invariant/pack tables against the entry snapshot.  The diff is
    by physical equality: an entry is part of the delta iff the call
    (re)wrote it, which replay reproduces with [Hashtbl.replace] in the
    sequential order. *)
let capture_end (a : actx) (c : capture) : capture_delta =
  let alarms = Alarm.release a.alarms c.cap_alarms in
  let invariants =
    Hashtbl.fold
      (fun id st acc ->
        match Hashtbl.find_opt c.cap_invariants id with
        | Some old when old == st -> acc
        | _ -> (id, st) :: acc)
      a.invariants []
    |> List.sort (fun (x, _) (y, _) -> Int.compare x y)
  in
  let oct_useful =
    Hashtbl.fold
      (fun id () acc ->
        if Hashtbl.mem c.cap_oct_useful id then acc else id :: acc)
      a.oct_useful []
    |> List.sort Int.compare
  in
  let itf_writes =
    match (a.session.ses_itf, c.cap_itf) with
    | Some it, Some snap ->
        (* keys whose joined value moved during the call, with their
           full current value: a superset of the call's own writes
           (sound — the guarantee is a per-run union anyway) and a
           subset of this run's writes (so replay never invents one) *)
        Hashtbl.fold
          (fun key v acc ->
            match Hashtbl.find_opt snap key with
            | Some old when D.Itv.equal old v -> acc
            | _ -> (key, v) :: acc)
          it.itf_writes []
        |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
    | _ -> []
  in
  {
    cd_alarms = alarms;
    cd_invariants = invariants;
    cd_oct_useful = oct_useful;
    cd_joins = a.join_count - c.cap_joins;
    cd_itf_writes = itf_writes;
  }

(** Abandon a capture section on an exceptional exit: the alarm table is
    restored (captured alarms are absorbed, not lost) and no delta is
    produced. *)
let capture_abort (a : actx) (c : capture) : unit =
  ignore (Alarm.release a.alarms c.cap_alarms)

(** Replay a captured delta against the context — the cache-hit path.
    By construction this performs exactly the bookkeeping updates the
    skipped re-analysis would have performed. *)
let capture_replay (a : actx) (d : capture_delta) : unit =
  Alarm.absorb a.alarms d.cd_alarms;
  List.iter
    (fun (id, st) -> Hashtbl.replace a.invariants id st)
    d.cd_invariants;
  List.iter (fun id -> Hashtbl.replace a.oct_useful id ()) d.cd_oct_useful;
  a.join_count <- a.join_count + d.cd_joins;
  match a.session.ses_itf with
  | None -> ()
  | Some it ->
      List.iter (fun (key, v) -> itf_record it key v) d.cd_itf_writes
