(** Top-level analysis driver: the preprocessing phase (Sect. 5.1)
    followed by the analysis phase (Sect. 5.2). *)

(** Summary-cache effectiveness counters, present only when a cache was
    enabled for the run. *)
type cache_stats = {
  c_hits : int;
  c_misses : int;
  c_entries : int;     (** summaries in the table after the run *)
  c_loaded : int;      (** summaries read back from the on-disk store *)
  c_load_time : float; (** seconds spent loading the store *)
  c_save_time : float; (** seconds spent saving the store *)
}

(** Record of a degraded run, filled by [Astree_robust.Degrade] when a
    resource budget tripped and precision was shed; [None] otherwise. *)
type degraded = {
  dg_reason : string;  (** "timeout", "memory" or "interrupted" *)
  dg_level : int;      (** ladder step reached, 1..3 (0 = interrupted) *)
  dg_shed_oct_packs : int;
  dg_shed_ell_packs : int;
  dg_shed_dt_packs : int;
  dg_partitioning_disabled : bool;
  dg_widening_accelerated : bool;
}

type stats = {
  s_globals_before : int;  (** globals before unused-variable deletion *)
  s_globals_after : int;
  s_cells : int;           (** abstract cells after array expansion *)
  s_stmts : int;           (** program size in IR statements *)
  s_oct_packs : int;
  s_oct_useful : int;      (** packs that improved precision (7.2.2) *)
  s_ell_packs : int;
  s_dt_packs : int;
  s_time : float;          (** analysis wall-clock seconds *)
  s_cache : cache_stats option;
  s_degraded : degraded option;
}

type result = {
  r_alarms : Alarm.t list;   (** deduplicated, sorted by location *)
  r_final : Astate.t;        (** abstract state at program exit *)
  r_actx : Transfer.actx;    (** analysis context: invariants, packs, ... *)
  r_stats : stats;
}

val n_alarms : result -> int

(** The ids of the octagon packs that improved precision, reusable via
    [Config.useful_packs_only] (Sect. 7.2.2). *)
val useful_octagon_packs : result -> int list

(** Analyze an already-compiled program.  When [cfg.jobs > 1] and the
    parallel subsystem has registered itself, the analysis is dispatched
    to its process pool (results are identical to the sequential run).
    [?session] threads an existing {!Transfer.session} through (the
    analysis server passes one per request); a fresh session is created
    otherwise, so concurrent analyses in one process never share
    hooks. *)
val analyze :
  ?session:Transfer.session ->
  ?cfg:Config.t ->
  Astree_frontend.Tast.program ->
  result

(** Analyze against an already-prepared context (used by the parallel
    scheduler, which pre-fills the context before forking workers). *)
val analyze_prepared : Transfer.actx -> Astree_frontend.Tast.program -> result

(** Parallel-analysis driver hook, installed by
    [Astree_parallel.Scheduler.register].  Receives the run's session
    and must build its context with it. *)
val parallel_driver :
  (Transfer.session -> Config.t -> Astree_frontend.Tast.program -> result)
  option
  ref

(** Summary-cache driver hook, installed by
    [Astree_incremental.Summary.register].  Wraps the analysis thunk
    when [Config.cache_enabled]; composes with [parallel_driver]. *)
val cache_driver :
  (Transfer.session ->
  Config.t ->
  Astree_frontend.Tast.program ->
  (unit -> result) ->
  result)
  option
  ref

(** Frontend pipeline: preprocess, parse, link, type-check, simplify.
    Sources are (filename, contents) pairs. *)
val compile :
  ?target:Astree_frontend.Ctypes.target ->
  ?main:string ->
  (string * string) list ->
  Astree_frontend.Tast.program * Astree_frontend.Simplify.stats

(** Compile and analyze C sources. *)
val analyze_sources :
  ?cfg:Config.t -> ?main:string -> (string * string) list -> result

(** Compile and analyze one in-memory source string. *)
val analyze_string :
  ?cfg:Config.t -> ?main:string -> ?file:string -> string -> result

val pp_cache_stats : Format.formatter -> cache_stats -> unit
val pp_stats : Format.formatter -> stats -> unit
val pp_result : Format.formatter -> result -> unit
