(** The full abstract state: memory environment, relational packs and the
    hidden clock variable of the clocked domain (Sect. 6.2.1). *)

module D = Astree_domains

type t = {
  bot : bool;
  env : Env.t;
  rel : Relstate.t;
  clock : D.Itv.t;  (** range of the hidden clock counter *)
}

let bottom : t =
  {
    bot = true;
    env = Env.empty ~naive:false ~ncells:0;
    rel = Relstate.empty;
    clock = D.Itv.Bot;
  }

let is_bot (s : t) = s.bot

let make ~env ~rel ~clock = { bot = false; env; rel; clock }

let join (a : t) (b : t) : t =
  if a.bot then b
  else if b.bot then a
  else
    {
      bot = false;
      env = Env.join a.env b.env;
      rel = Relstate.join a.rel b.rel;
      clock = D.Itv.join a.clock b.clock;
    }

let meet (a : t) (b : t) : t =
  if a.bot || b.bot then bottom
  else
    {
      bot = false;
      env = Env.meet a.env b.env;
      rel = Relstate.meet a.rel b.rel;
      clock = D.Itv.meet a.clock b.clock;
    }

let widen ~thresholds (a : t) (b : t) : t =
  if a.bot then b
  else if b.bot then a
  else
    {
      bot = false;
      env = Env.widen ~thresholds a.env b.env;
      rel = Relstate.widen ~thresholds a.rel b.rel;
      clock = D.Itv.widen ~thresholds a.clock b.clock;
    }

let narrow (a : t) (b : t) : t =
  if a.bot || b.bot then bottom
  else
    {
      bot = false;
      env = Env.narrow a.env b.env;
      rel = Relstate.narrow a.rel b.rel;
      clock = D.Itv.narrow a.clock b.clock;
    }

let subset (a : t) (b : t) : bool =
  a.bot
  || ((not b.bot)
     && Env.subset a.env b.env
     && Relstate.subset a.rel b.rel
     && D.Itv.subset a.clock b.clock)

let equal (a : t) (b : t) : bool =
  (a.bot && b.bot)
  || ((not a.bot) && (not b.bot)
     && Env.equal a.env b.env
     && Relstate.equal a.rel b.rel
     && D.Itv.equal a.clock b.clock)

(* Only [rel] carries mutable values (octagons); env/clock are pure. *)
let unshare (s : t) : t =
  if s.bot then s else { s with rel = Relstate.unshare s.rel }

(** The floating iteration perturbation F-hat of Sect. 7.1.4: enlarge
    every float interval bound by a relative epsilon before the widening
    step, so that abstract rounding noise does not prevent the
    stabilization check from succeeding. *)
let perturb (eps : float) (s : t) : t =
  if s.bot || eps <= 0.0 then s
  else
    let pert_itv (i : D.Itv.t) : D.Itv.t =
      match i with
      | D.Itv.Float (a, b) ->
          D.Itv.Float
            ( Float_pert.down eps a,
              Float_pert.up eps b )
      | i -> i
    in
    let pert_av (v : Avalue.t) : Avalue.t =
      { v with D.Clocked.v = pert_itv v.D.Clocked.v }
    in
    { s with env = Env.map_all pert_av s.env }
