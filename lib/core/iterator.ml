(** The iterator (Sect. 5.3–5.5): abstract execution by induction on the
    abstract syntax, with

    - iteration mode (invariant generation, no warnings) and checking
      mode (one extra pass over loop bodies collecting potential errors),
    - least-fixpoint approximation with widening (thresholds,
      Sect. 7.1.2; delayed with fairness, Sect. 7.1.3; floating
      perturbation, Sect. 7.1.4) and narrowing,
    - semantic loop unrolling (Sect. 7.1.1),
    - trace partitioning in selected functions (Sect. 7.1.5),
    - context-sensitive polyvariant analysis of function calls,
      semantically equivalent to inlining (Sect. 5.4). *)

module F = Astree_frontend
module D = Astree_domains
module Metrics = Astree_obs.Metrics
module Trace = Astree_obs.Trace
open F.Tast

exception Analysis_error of string

(* Registry entries owned by the iterator (created once at module init;
   bumping one is a single field increment). *)
let c_cache_hits = Metrics.counter "cache.hits"
let c_cache_misses = Metrics.counter "cache.misses"
let c_calls_inlined = Metrics.counter "iter.calls_inlined"
let c_loops = Metrics.counter "iter.loops"
let c_par_jobs = Metrics.counter "par.jobs_dispatched"
let c_par_deltas = Metrics.counter "par.deltas_applied"
let h_loop_iters = Metrics.histogram "loop.iters"

(* Same entry as the one bumped inside Itv.widen: read around a loop's
   fixpoint to attribute threshold catches to that loop head. *)
let c_threshold_hits = Metrics.counter "widen.threshold_hits"

(** Flow-separated analysis outcome of a statement or block.  [o_norm]
    is a disjunction of abstract states (a singleton except under trace
    partitioning).  Defined in [Transfer] (with the other session data
    types) and re-exported here, its historical home. *)
type outcome = Transfer.outcome = {
  o_norm : Astate.t list;
  o_brk : Astate.t;
  o_cont : Astate.t;
  o_ret : Astate.t;
  o_retv : D.Itv.t;
}

let no_flow =
  {
    o_norm = [];
    o_brk = Astate.bottom;
    o_cont = Astate.bottom;
    o_ret = Astate.bottom;
    o_retv = D.Itv.Bot;
  }

let join_itv a b =
  if D.Itv.is_bot a then b else if D.Itv.is_bot b then a else D.Itv.join a b

let join_states (sts : Astate.t list) : Astate.t =
  List.fold_left Astate.join Astate.bottom sts

let live (sts : Astate.t list) : Astate.t list =
  List.filter (fun s -> not (Astate.is_bot s)) sts

(* Merge excess partitions (safety bound of Sect. 7.1.5's cost remark). *)
let cap_partitions (a : Transfer.actx) (sts : Astate.t list) : Astate.t list =
  let sts = live sts in
  let maxp = a.Transfer.cfg.Config.max_partitions in
  if List.length sts <= maxp then sts
  else
    let rec split n acc = function
      | [] -> (List.rev acc, [])
      | l when n = 0 -> (List.rev acc, l)
      | x :: rest -> split (n - 1) (x :: acc) rest
    in
    let keep, over = split (maxp - 1) [] sts in
    keep @ [ join_states over ]

(* ------------------------------------------------------------------ *)
(* Parallel dispatch hook (Astree_parallel, after Monniaux 05)          *)
(* ------------------------------------------------------------------ *)

(* The analysis parallelizes along the disjunctions it already
   manipulates: the trace-partition disjuncts flowing into a call and
   the two branches of a conditional are analyzed independently from
   their own entry states and merged by abstract join — exactly the
   joins the sequential iterator performs, in the same order, so the
   parallel result is identical by construction.

   The iterator stays process-agnostic: when the session's par hook is
   installed (by Astree_parallel.Scheduler in the parent process)
   eligible disjunct maps are handed to it as self-contained jobs; a [None]
   reply means the job was lost (crashed or timed-out worker, already
   retried) and the iterator recomputes it in-process, so parallel
   analysis can neither hang nor lose soundness. *)

(* ------------------------------------------------------------------ *)
(* Function-summary cache hook (Astree_incremental)                     *)
(* ------------------------------------------------------------------ *)

(* Context-sensitive polyvariant inlining (Sect. 5.4) re-analyzes a
   callee for every call context; the summary cache pays for each
   distinct (callee, abstract entry state) pair once.  The iterator
   stays storage-agnostic: the incremental subsystem installs the
   session's memo, whose key function folds the callee's content
   fingerprint (structure, types, transitive callee hashes, config)
   with a digest of the exact abstract entry state — no entailment
   shortcut, so a hit is equivalent to re-analysis by construction. *)

(** Everything one analyzed call produced: the state at the return
    point, the merged return value, and the side effects on the
    context's bookkeeping.  Pure data — marshalled into parallel deltas
    and into the on-disk store. *)
type summary = Transfer.summary = {
  sm_exit : Astate.t;  (** state after the return-point trace merge *)
  sm_retv : D.Itv.t;   (** return value (Bot for void / no return) *)
  sm_delta : Transfer.capture_delta;
}

(** Cache key: callee content fingerprint (covers the analysis
    configuration), digest of the abstract entry state together with
    the by-reference parameter bindings, and the alarm-collector mode —
    iteration-mode and checking-mode results are never conflated. *)
type summary_key = Transfer.summary_key = {
  sk_fn : string;
  sk_entry : string;
  sk_checking : bool;
}

type call_memo = Transfer.call_memo = {
  cm_key :
    fname:string -> checking:bool -> Astate.t -> Transfer.binds ->
    summary_key option;
      (** [None]: this call is not cacheable (unknown fingerprint) *)
  cm_find : summary_key -> summary option;
  cm_add : summary_key -> summary -> unit;
  cm_fresh : (summary_key * summary) list ref;
      (** summaries computed by this process since the last drain, in
          computation order — parallel workers ship them back in their
          job deltas *)
  cm_hits : int ref;
  cm_misses : int ref;
  cm_want : string -> bool;
      (** gate: is this callee worth memoizing at all?  Computed once
          per session from the transitive inlined size of each function
          against {!memo_min_stmts} *)
}

(** Minimal transitive inlined statement count of a callee before
    memoization is worth the entry-state digest.  Digesting the exact
    abstract entry state costs a fraction of a millisecond per kLOC of
    environment, so memoizing tiny helpers is a net loss; only callees
    whose re-analysis (including everything they inline) dwarfs the
    digest deserve a summary. *)
let memo_min_stmts = ref 30

(** A unit of work shipped to a worker: pure data, marshalled. *)
type par_work = Transfer.par_work =
  | Pw_block of block  (** execute a block (a conditional branch) *)
  | Pw_call of { dst : var option; fname : string; args : arg list }

type par_job = Transfer.par_job = {
  pj_work : par_work;
  pj_binds : Transfer.binds;
  pj_stack : string list;
  pj_part : bool;
  pj_state : Astate.t;  (** the single entry state of the job *)
  pj_checking : bool;   (** alarm-collector mode at the dispatch point *)
}

(** Side effects of a job on the analysis context, replayed by the
    parent in job order so that merged results are deterministic. *)
type par_delta = Transfer.par_delta = {
  pd_alarms : Alarm.t list;
  pd_invariants : (int * Astate.t) list;  (** loop id -> head invariant *)
  pd_joins : int;
  pd_oct_useful : int list;
  pd_summaries : (summary_key * summary) list;
      (** summaries freshly computed while running the job, shipped back
          so the parent (and later jobs) reuse them *)
  pd_cache_hits : int;
  pd_cache_misses : int;
  pd_metrics : Metrics.snapshot;
      (** registry delta accumulated while running the job (profile
          probes included), absorbed by the parent at merge so [-j n]
          reports are as complete as sequential ones *)
  pd_events : Trace.event list;
      (** trace events emitted while running the job, re-emitted by the
          parent in job order *)
}

type par_reply = Transfer.par_reply = {
  pr_out : outcome;
  pr_delta : par_delta;
}

(** Minimal statement count of a block before it is worth shipping to a
    worker (marshalling an abstract state is not free). *)
let par_min_stmts = ref 24

(* block sizes are memoized by the location of the block's first
   statement (loops revisit the same blocks many times): gating only, a
   collision can at worst mis-route a job *)
let size_memo : (F.Loc.t, int) Hashtbl.t = Hashtbl.create 256

let par_block_size (b : block) : int =
  match b with
  | [] -> 0
  | s0 :: _ -> (
      match Hashtbl.find_opt size_memo s0.sloc with
      | Some n -> n
      | None ->
          let n = block_size b in
          Hashtbl.replace size_memo s0.sloc n;
          n)

let apply_delta (a : Transfer.actx) (d : par_delta) : unit =
  Metrics.incr c_par_deltas;
  Metrics.absorb d.pd_metrics;
  if !Trace.enabled then begin
    Trace.absorb d.pd_events;
    Trace.emit "par.apply"
      ~args:
        [
          ("alarms", Trace.I (List.length d.pd_alarms));
          ("joins", Trace.I d.pd_joins);
          ("summaries", Trace.I (List.length d.pd_summaries));
        ]
  end;
  Alarm.absorb a.Transfer.alarms d.pd_alarms;
  List.iter
    (fun (id, st) -> Hashtbl.replace a.Transfer.invariants id st)
    d.pd_invariants;
  List.iter
    (fun id -> Hashtbl.replace a.Transfer.oct_useful id ())
    d.pd_oct_useful;
  a.Transfer.join_count <- a.Transfer.join_count + d.pd_joins;
  (* summaries computed by the worker become available to the parent and
     to later jobs; [cm_add] keeps the first entry per key, and the same
     key always maps to an identical summary, so replay order cannot
     change results *)
  match a.Transfer.session.Transfer.ses_memo with
  | None -> ()
  | Some m ->
      List.iter (fun (k, s) -> m.cm_add k s) d.pd_summaries;
      m.cm_hits := !(m.cm_hits) + d.pd_cache_hits;
      m.cm_misses := !(m.cm_misses) + d.pd_cache_misses

let mk_job (a : Transfer.actx) ~(binds : Transfer.binds)
    ~(stack : string list) ~(part : bool) (work : par_work) (st : Astate.t) :
    par_job =
  {
    pj_work = work;
    pj_binds = binds;
    pj_stack = stack;
    pj_part = part;
    pj_state = st;
    pj_checking = a.Transfer.alarms.Alarm.enabled;
  }

(* ------------------------------------------------------------------ *)
(* Statement tick                                                       *)
(* ------------------------------------------------------------------ *)

(* The resource governor (Astree_robust.Budget) needs a periodic check
   point inside the fixpoint engine without the core depending on it, so
   — like the parallel and memo hooks — it installs a session hook.  The
   hook is only consulted every 256 abstract statements: the common path
   is one increment, one land and one branch. *)

let tick (a : Transfer.actx) =
  let s = a.Transfer.session in
  s.Transfer.ses_ticks <- s.Transfer.ses_ticks + 1;
  if s.Transfer.ses_ticks land 0xFF = 0 then
    match s.Transfer.ses_tick_hook with None -> () | Some h -> h ()

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

(* Metered widening for the fixpoint loop below: one probe around the
   whole [Astate.widen] (env + all relational packs) so --profile can
   attribute iteration cost to extrapolation separately from the
   per-domain octagon widening probe. *)
let widen_state ~thresholds (inv : Astate.t) (next : Astate.t) : Astate.t =
  D.Profile.count D.Profile.widen_total;
  let t0 = D.Profile.start () in
  let r = Astate.widen ~thresholds inv next in
  D.Profile.stop D.Profile.widen_total t0;
  r

let rec exec_stmt (a : Transfer.actx) ~(part : bool) ~(stack : string list)
    (binds : Transfer.binds) (sts : Astate.t list) (s : stmt) : outcome =
  tick a;
  (* keep the collector's inlining context in sync with the iterator's
     stack, so every alarm reported below picks up its call chain (one
     field write; the lists are shared, not copied) *)
  a.Transfer.alarms.Alarm.chain <- stack;
  match live sts with
  | [] -> no_flow
  | sts -> (
      match s.sdesc with
      | Sskip -> { no_flow with o_norm = sts }
      | Sassign (lv, e) ->
          {
            no_flow with
            o_norm = List.map (fun st -> Transfer.assign a st binds lv e) sts;
          }
      | Slocal (v, init) ->
          {
            no_flow with
            o_norm =
              List.map (fun st -> Transfer.local_decl a st binds v init) sts;
          }
      | Swait ->
          { no_flow with o_norm = List.map (fun st -> Transfer.wait a st) sts }
      | Sassume e ->
          {
            no_flow with
            o_norm = List.map (fun st -> Transfer.guard a st binds e true) sts;
          }
      | Sassert e ->
          let check st =
            let bad = Transfer.guard a st binds e false in
            if not (Astate.is_bot bad) then begin
              let err = ref false in
              let i = Transfer.eval a st binds err e in
              Alarm.report
                ~domain:(Transfer.value_domain a st binds e)
                ~operands:[ (Fmt.str "%a" F.Pp.pp_expr e, Fmt.str "%a" D.Itv.pp i) ]
                a.Transfer.alarms Alarm.Assert_failure s.sloc
                "assertion may not hold"
            end;
            Transfer.guard a st binds e true
          in
          { no_flow with o_norm = List.map check sts }
      | Sbreak -> { no_flow with o_brk = join_states sts }
      | Scontinue -> { no_flow with o_cont = join_states sts }
      | Sreturn None -> { no_flow with o_ret = join_states sts }
      | Sreturn (Some e) ->
          let retv =
            List.fold_left
              (fun acc st ->
                let err = ref false in
                join_itv acc (Transfer.eval a st binds err e))
              D.Itv.Bot sts
          in
          { no_flow with o_ret = join_states sts; o_retv = retv }
      | Sif (c, tb, fb) ->
          (* both branches are analyzed independently from their guarded
             entry states and merged by join: the disjunction the
             parallel subsystem splits along (axis (a)) *)
          let run_both st =
            let st_t = Transfer.guard a st binds c true in
            let st_f = Transfer.guard a st binds c false in
            let ot = exec_block a ~part ~stack binds [ st_t ] tb in
            let of_ = exec_block a ~part ~stack binds [ st_f ] fb in
            (ot, of_)
          in
          let pairs =
            match a.Transfer.session.Transfer.ses_par_hook with
            | Some dispatch
              when par_block_size tb >= !par_min_stmts
                   && par_block_size fb >= !par_min_stmts ->
                let guarded =
                  List.map
                    (fun st ->
                      ( Transfer.guard a st binds c true,
                        Transfer.guard a st binds c false ))
                    sts
                in
                let jobs =
                  List.concat_map
                    (fun (st_t, st_f) ->
                      [
                        mk_job a ~binds ~stack ~part (Pw_block tb) st_t;
                        mk_job a ~binds ~stack ~part (Pw_block fb) st_f;
                      ])
                    guarded
                in
                Metrics.add c_par_jobs (List.length jobs);
                if !Trace.enabled then
                  Trace.emit "par.dispatch"
                    ~loc:(Fmt.str "%a" F.Loc.pp s.sloc)
                    ~args:
                      [
                        ("work", Trace.S "if-branches");
                        ("jobs", Trace.I (List.length jobs));
                      ];
                let replies = dispatch jobs in
                let rec pair_up gs rs =
                  match (gs, rs) with
                  | [], [] -> []
                  | (st_t, st_f) :: gs', rt :: rf :: rs' ->
                      let ot =
                        match rt with
                        | Some r ->
                            apply_delta a r.pr_delta;
                            r.pr_out
                        | None -> exec_block a ~part ~stack binds [ st_t ] tb
                      in
                      let of_ =
                        match rf with
                        | Some r ->
                            apply_delta a r.pr_delta;
                            r.pr_out
                        | None -> exec_block a ~part ~stack binds [ st_f ] fb
                      in
                      (ot, of_) :: pair_up gs' rs'
                  | _ -> invalid_arg "Iterator.par_hook: reply arity mismatch"
                in
                pair_up guarded replies
            | _ -> List.map run_both sts
          in
          let outs =
            List.map
              (fun (ot, of_) ->
                a.Transfer.join_count <- a.Transfer.join_count + 1;
                {
                  o_norm =
                    (if part then cap_partitions a (ot.o_norm @ of_.o_norm)
                     else [ Astate.join (join_states ot.o_norm)
                              (join_states of_.o_norm) ]);
                  o_brk = Astate.join ot.o_brk of_.o_brk;
                  o_cont = Astate.join ot.o_cont of_.o_cont;
                  o_ret = Astate.join ot.o_ret of_.o_ret;
                  o_retv = join_itv ot.o_retv of_.o_retv;
                })
              pairs
          in
          List.fold_left
            (fun acc o ->
              {
                o_norm = acc.o_norm @ o.o_norm;
                o_brk = Astate.join acc.o_brk o.o_brk;
                o_cont = Astate.join acc.o_cont o.o_cont;
                o_ret = Astate.join acc.o_ret o.o_ret;
                o_retv = join_itv acc.o_retv o.o_retv;
              })
            no_flow outs
          |> fun o -> { o with o_norm = cap_partitions a o.o_norm }
      | Swhile (li, c, body) ->
          (* partitions are merged at loop heads *)
          let st = join_states sts in
          exec_while a ~stack binds st (li, c, body)
      | Scall (dst, fname, args) -> exec_call a ~stack binds sts s dst fname args)

and exec_block (a : Transfer.actx) ~(part : bool) ~(stack : string list)
    (binds : Transfer.binds) (sts : Astate.t list) (b : block) : outcome =
  List.fold_left
    (fun acc stmt ->
      match live acc.o_norm with
      | [] -> acc
      | sts ->
          let o = exec_stmt a ~part ~stack binds sts stmt in
          {
            o_norm = o.o_norm;
            o_brk = Astate.join acc.o_brk o.o_brk;
            o_cont = Astate.join acc.o_cont o.o_cont;
            o_ret = Astate.join acc.o_ret o.o_ret;
            o_retv = join_itv acc.o_retv o.o_retv;
          })
    { no_flow with o_norm = sts }
    b

(* ------------------------------------------------------------------ *)
(* Loops (Sect. 5.4, 5.5, 7.1)                                         *)
(* ------------------------------------------------------------------ *)

and exec_while (a : Transfer.actx) ~(stack : string list)
    (binds : Transfer.binds) (entry : Astate.t)
    ((li, c, body) : loop_info * expr * block) : outcome =
  let cfg = a.Transfer.cfg in
  let thresholds = cfg.Config.widening_thresholds in
  (* one pass over the loop body from [st]; returns (after-body state,
     outcome for break/return accounting) *)
  let body_pass st =
    let body_in = Transfer.guard a st binds c true in
    let o = exec_block a ~part:false ~stack binds [ body_in ] body in
    let after = Astate.join (join_states o.o_norm) o.o_cont in
    (after, o)
  in
  (* ---- semantic unrolling (Sect. 7.1.1) ---- *)
  let unroll = Config.unroll_for cfg li.loop_id in
  let rec do_unroll k st exits rets retv =
    if k = 0 || Astate.is_bot st then (st, exits, rets, retv)
    else begin
      let after, o = body_pass st in
      let exits =
        Astate.join exits
          (Astate.join (Transfer.guard a st binds c false) o.o_brk)
      in
      do_unroll (k - 1) after exits (Astate.join rets o.o_ret)
        (join_itv retv o.o_retv)
    end
  in
  let st0, exits0, rets0, retv0 =
    do_unroll unroll entry Astate.bottom Astate.bottom D.Itv.Bot
  in
  if Astate.is_bot st0 then
    { no_flow with o_norm = [ exits0 ]; o_ret = rets0; o_retv = retv0 }
  else begin
    (* ---- fixpoint in iteration mode (Sect. 5.5) ---- *)
    Metrics.incr c_loops;
    let n_widens = ref 0 and n_narrows = ref 0 and n_iters = ref 0 in
    let thr_hits0 = Metrics.value c_threshold_hits in
    let saved_mode = a.Transfer.alarms.Alarm.enabled in
    a.Transfer.alarms.Alarm.enabled <- false;
    let count_unstable (old_ : Astate.t) (next : Astate.t) : int =
      if Astate.is_bot next then 0
      else if Astate.is_bot old_ then max_int
      else begin
        let n = ref 0 in
        Env.iter
          (fun id nv ->
            match Env.find old_.Astate.env id with
            | Some ov -> if not (Avalue.subset nv ov) then incr n
            | None -> incr n)
          next.Astate.env;
        !n
      end
    in
    let eps = cfg.Config.float_iteration_epsilon in
    let trace = Sys.getenv_opt "ASTREE_ITER_TRACE" <> None in
    let trace_state tag (st : Astate.t) =
      if trace then begin
        Fmt.epr "[loop %d] %s:" li.loop_id tag;
        List.iter
          (fun (v, _) ->
            if F.Ctypes.is_scalar v.v_ty then
              Fmt.epr " %s=%a" v.v_name D.Itv.pp (Transfer.var_itv a st v))
          a.Transfer.prog.p_globals;
        Fmt.epr "@."
      end
    in
    let rec iterate i fairness prev_unstable (inv : Astate.t) : Astate.t =
      n_iters := i;
      let after, _o = body_pass inv in
      let next = Astate.join st0 after in
      trace_state (Fmt.str "iter %d" i) next;
      if trace && not (Astate.is_bot inv) && not (Astate.is_bot next) then begin
        Env.iter
          (fun id nv ->
            match Env.find inv.Astate.env id with
            | Some ov when not (Avalue.subset nv ov) ->
                Fmt.epr "[loop %d]   unstable cell %a: %a vs %a@." li.loop_id
                  Cell.pp
                  (Cell.of_id a.Transfer.intern id)
                  Avalue.pp nv Avalue.pp ov
            | _ -> ())
          next.Astate.env;
        if not (Relstate.subset next.Astate.rel inv.Astate.rel) then
          Fmt.epr "[loop %d]   relational part unstable@." li.loop_id
      end;
      if Astate.subset next inv then inv
      else begin
        let unstable = count_unstable inv next in
        (* floating iteration perturbation (Sect. 7.1.4): when the iterate
           is almost stable (abstract rounding noise only), try the
           epsilon-enlarged candidate F-hat before widening any further;
           the stability check itself always uses the unperturbed F *)
        let try_hat () =
          if unstable > 4 || eps <= 0.0 then None
          else begin
            let inv_hat = Astate.perturb eps (Astate.join inv next) in
            let after_hat, _ = body_pass inv_hat in
            if Astate.subset (Astate.join st0 after_hat) inv_hat then
              Some inv_hat
            else None
          end
        in
        match try_hat () with
        | Some stable -> stable
        | None ->
            if i > 500 then begin
              (* safety net: force the classical widening straight to
                 infinity so the fixpoint computation always terminates *)
              incr n_widens;
              iterate (i + 1) 0 unstable
                (widen_state ~thresholds:D.Thresholds.none inv next)
            end
            else if i < cfg.Config.delay_widening then
              iterate (i + 1) fairness unstable (Astate.join inv next)
            else if
              (unstable < prev_unstable || unstable = 0) && fairness > 0
            then
              (* delayed widening: some variable just became stable
                 (Sect. 7.1.3), keep joining under the fairness budget.
                 [unstable = 0] means only relational constraints are
                 still settling (they converge a couple of iterations
                 after the cells do): give them the same grace. *)
              iterate (i + 1) (fairness - 1) unstable (Astate.join inv next)
            else begin
              incr n_widens;
              iterate (i + 1) fairness unstable
                (widen_state ~thresholds inv next)
            end
      end
    in
    let inv = iterate 0 cfg.Config.widening_fairness max_int st0 in
    (* ---- narrowing iterations (Sect. 5.5) ----
       decreasing iterations from the post-fixpoint: when F(I) <= I, the
       iterate F(I) is itself an invariant provided it remains a
       post-fixpoint, which is re-verified before adopting it.  This
       recovers from widening overshoots (finite thresholds above the
       real bound), which the classical infinite-bounds-only narrowing
       cannot. *)
    let rec narrow k inv =
      if k = 0 then inv
      else begin
        let after, _ = body_pass inv in
        let next = Astate.join st0 after in
        if Astate.subset next inv && not (Astate.equal next inv) then begin
          let check, _ = body_pass next in
          if Astate.subset (Astate.join st0 check) next then begin
            incr n_narrows;
            narrow (k - 1) next
          end
          else
            (* fall back to the classical narrowing on infinite bounds *)
            let narrowed = Astate.narrow inv next in
            let check, _ = body_pass narrowed in
            if Astate.subset (Astate.join st0 check) narrowed then begin
              incr n_narrows;
              narrowed
            end
            else inv
        end
        else inv
      end
    in
    let inv = narrow cfg.Config.narrowing_iterations inv in
    a.Transfer.alarms.Alarm.enabled <- saved_mode;
    Metrics.observe h_loop_iters !n_iters;
    if !Trace.enabled then
      Trace.emit "loop.fixpoint"
        ~loc:(Fmt.str "%a" F.Loc.pp c.eloc)
        ~args:
          [
            ("loop", Trace.I li.loop_id);
            ("iters", Trace.I !n_iters);
            ("widens", Trace.I !n_widens);
            ("narrows", Trace.I !n_narrows);
            ("stabilized_at", Trace.I !n_iters);
            ( "threshold_hits",
              Trace.I (Metrics.value c_threshold_hits - thr_hits0) );
          ];
    (* save the loop invariant for examination (Sect. 5.3) *)
    Hashtbl.replace a.Transfer.invariants li.loop_id inv;
    (* ---- extra pass, in checking mode if enabled (Sect. 5.4) ---- *)
    let _, o_final = body_pass inv in
    let exit_ = Transfer.guard a inv binds c false in
    {
      no_flow with
      o_norm = [ Astate.join exits0 (Astate.join exit_ o_final.o_brk) ];
      o_ret = Astate.join rets0 o_final.o_ret;
      o_retv = join_itv retv0 o_final.o_retv;
    }
  end

(* ------------------------------------------------------------------ *)
(* Function calls (Sect. 5.4)                                          *)
(* ------------------------------------------------------------------ *)

and exec_call (a : Transfer.actx) ~(stack : string list)
    (binds : Transfer.binds) (sts : Astate.t list) (s : stmt)
    (dst : var option) (fname : string) (args : arg list) : outcome =
  match find_fun a.Transfer.prog fname with
  | None ->
      raise (Analysis_error (Fmt.str "call to unknown function %s" fname))
  | Some fd ->
      if List.mem fname stack then
        raise
          (Analysis_error
             (Fmt.str "recursion detected through %s (not in the subset)"
                fname));
      ignore s;
      let sts = live sts in
      let run st = exec_call_one a ~stack binds st dst fname fd args in
      (* trace-partition disjuncts flowing into a call are analyzed
         through the callee independently: the prime intra-program
         parallel axis (each worker runs one disjunct) *)
      (match a.Transfer.session.Transfer.ses_par_hook with
      | Some dispatch
        when List.compare_length_with sts 2 >= 0
             && par_block_size fd.fd_body >= !par_min_stmts ->
          let jobs =
            List.map
              (fun st ->
                mk_job a ~binds ~stack ~part:false
                  (Pw_call { dst; fname; args })
                  st)
              sts
          in
          Metrics.add c_par_jobs (List.length jobs);
          if !Trace.enabled then
            Trace.emit "par.dispatch"
              ~loc:(Fmt.str "%a" F.Loc.pp s.sloc)
              ~args:
                [
                  ("work", Trace.S fname);
                  ("jobs", Trace.I (List.length jobs));
                ];
          let replies = dispatch jobs in
          let states =
            List.map2
              (fun st reply ->
                match reply with
                | Some r -> (
                    apply_delta a r.pr_delta;
                    match r.pr_out.o_norm with
                    | [ st' ] -> st'
                    | sts' -> join_states sts')
                | None -> run st)
              sts replies
          in
          { no_flow with o_norm = states }
      | _ -> { no_flow with o_norm = List.map run sts })

(** Polyvariant analysis of one call from one entry state: bind the
    parameters, analyze the callee body (with trace partitioning if the
    function is selected), merge the traces at the return point and
    write the return value into [dst].  Also the worker-side entry for
    [Pw_call] jobs. *)
and exec_call_one (a : Transfer.actx) ~(stack : string list)
    (binds : Transfer.binds) (st : Astate.t) (dst : var option)
    (fname : string) (fd : fundef) (args : arg list) : Astate.t =
  Metrics.incr c_calls_inlined;
  if !Trace.enabled then
    Trace.emit "call.inline"
      ~args:
        [ ("fn", Trace.S fname); ("depth", Trace.I (List.length stack)) ];
  let stack = fname :: stack in
  let partitioned =
    List.mem fname a.Transfer.cfg.Config.partitioned_functions
  in
  (* bind parameters *)
  let st, callee_binds =
    List.fold_left2
      (fun (st, cb) (p : param) (arg : arg) ->
        match (p, arg) with
        | Pval v, Aval e -> (Transfer.local_decl a st binds v (Some e), cb)
        | Pref v, Aref actual ->
            let resolved = Transfer.resolve_lval binds actual in
            (st, VarMap.add v resolved cb)
        | _ ->
            raise
              (Analysis_error (Fmt.str "argument mismatch calling %s" fname)))
      (st, VarMap.empty) fd.fd_params args
  in
  let exit_env, retv =
    exec_call_body a ~stack ~partitioned callee_binds st fname fd
  in
  match (dst, retv) with
  | Some d, retv when not (D.Itv.is_bot retv) ->
      let id = Transfer.var_cell a d in
      {
        exit_env with
        Astate.env =
          Env.set exit_env.Astate.env id
            (Avalue.of_itv ~use_clocked:a.Transfer.cfg.Config.use_clocked
               ~clock:exit_env.Astate.clock retv);
      }
  | Some d, _ ->
      (* no return value reached: leave dst at its type range *)
      Transfer.local_decl a exit_env binds d None
  | None, _ -> exit_env

(** Analyze the callee body from a fully bound entry state and merge the
    traces at the return point.  This is the memoized region: the entry
    state and the by-reference bindings determine the result completely
    (the destination write-back happens in the caller's scope, outside).
    On a cache hit the recorded side effects — alarms, loop invariants,
    useful octagon packs, join count — are replayed, so a hit is
    observationally identical to re-analysis. *)
and exec_call_body (a : Transfer.actx) ~(stack : string list)
    ~(partitioned : bool) (callee_binds : Transfer.binds) (st : Astate.t)
    (fname : string) (fd : fundef) : Astate.t * D.Itv.t =
  let compute () =
    let o =
      exec_block a ~part:partitioned ~stack callee_binds [ st ] fd.fd_body
    in
    (* the traces are merged at the return point of the function
       (Sect. 7.1.5) *)
    let exit_env = Astate.join (join_states o.o_norm) o.o_ret in
    let retv =
      match fd.fd_ret with
      | F.Ctypes.Tvoid -> D.Itv.Bot
      | F.Ctypes.Tscalar sc ->
          (* falling off the end without a return gives an undefined
             value: the whole type range *)
          if Astate.is_bot (join_states o.o_norm) then o.o_retv
          else
            join_itv o.o_retv
              (Avalue.top_of_scalar a.Transfer.prog.p_target sc)
      | _ -> D.Itv.Bot
    in
    (exit_env, retv)
  in
  match a.Transfer.session.Transfer.ses_memo with
  | Some m when m.cm_want fname -> (
      match
        m.cm_key ~fname ~checking:a.Transfer.alarms.Alarm.enabled st
          callee_binds
      with
      | None -> compute ()
      | Some key -> (
          match m.cm_find key with
          | Some s ->
              incr m.cm_hits;
              Metrics.incr c_cache_hits;
              if !Trace.enabled then
                Trace.emit "cache.hit" ~args:[ ("fn", Trace.S fname) ];
              Transfer.capture_replay a s.sm_delta;
              (s.sm_exit, s.sm_retv)
          | None ->
              incr m.cm_misses;
              Metrics.incr c_cache_misses;
              if !Trace.enabled then
                Trace.emit "cache.miss" ~args:[ ("fn", Trace.S fname) ];
              let cap = Transfer.capture_begin a in
              let exit_env, retv =
                try compute ()
                with e ->
                  Transfer.capture_abort a cap;
                  raise e
              in
              let delta = Transfer.capture_end a cap in
              let s = { sm_exit = exit_env; sm_retv = retv; sm_delta = delta } in
              m.cm_add key s;
              m.cm_fresh := (key, s) :: !(m.cm_fresh);
              (exit_env, retv)))
  | _ -> compute ()

(* ------------------------------------------------------------------ *)
(* Whole-program analysis                                              *)
(* ------------------------------------------------------------------ *)

(** Run the abstract interpreter from the program entry point, in
    checking mode (loops internally recompute their invariants in
    iteration mode first, Sect. 5.4). *)
let run (a : Transfer.actx) : Astate.t =
  match find_fun a.Transfer.prog a.Transfer.prog.p_main with
  | None ->
      raise
        (Analysis_error
           (Fmt.str "entry point %s not found" a.Transfer.prog.p_main))
  | Some fd ->
      let st0 = Transfer.initial_state a in
      a.Transfer.alarms.Alarm.enabled <- true;
      let o =
        exec_block a ~part:false
          ~stack:[ a.Transfer.prog.p_main ]
          VarMap.empty [ st0 ] fd.fd_body
      in
      Astate.join (join_states o.o_norm) o.o_ret

(* ------------------------------------------------------------------ *)
(* Worker-side job execution                                            *)
(* ------------------------------------------------------------------ *)

(** Execute one parallel job against (a forked copy of) the analysis
    context and package the outcome with the context side effects.  The
    collector, invariant table and useful-pack table are reset first so
    the delta contains exactly this job's contribution; the parent
    replays deltas in job order, which reproduces the sequential
    bookkeeping exactly. *)
let par_run_job (a : Transfer.actx) (job : par_job) : par_reply =
  (* workers are strictly sequential: no re-dispatch from a forked copy *)
  a.Transfer.session.Transfer.ses_par_hook <- None;
  (* the coordinator owns the trace file: detach the sink inherited over
     fork (without flushing — the parent already flushed before forking)
     and capture this job's events to ship them back in the delta *)
  Trace.in_worker ();
  let metrics0 = Metrics.snapshot () in
  let cap_mark = Trace.capture_begin () in
  a.Transfer.alarms.Alarm.enabled <- job.pj_checking;
  Alarm.reset a.Transfer.alarms;
  Hashtbl.reset a.Transfer.invariants;
  Hashtbl.reset a.Transfer.oct_useful;
  let joins0 = a.Transfer.join_count in
  let hits0, misses0 =
    match a.Transfer.session.Transfer.ses_memo with
    | Some m ->
        m.cm_fresh := [];
        (!(m.cm_hits), !(m.cm_misses))
    | None -> (0, 0)
  in
  let out =
    match job.pj_work with
    | Pw_block b ->
        exec_block a ~part:job.pj_part ~stack:job.pj_stack job.pj_binds
          [ job.pj_state ] b
    | Pw_call { dst; fname; args } -> (
        match find_fun a.Transfer.prog fname with
        | None ->
            raise (Analysis_error (Fmt.str "call to unknown function %s" fname))
        | Some fd ->
            let st' =
              exec_call_one a ~stack:job.pj_stack job.pj_binds job.pj_state
                dst fname fd args
            in
            { no_flow with o_norm = [ st' ] })
  in
  let invariants =
    Hashtbl.fold (fun id st acc -> (id, st) :: acc) a.Transfer.invariants []
    |> List.sort (fun (x, _) (y, _) -> Int.compare x y)
  in
  let useful =
    Hashtbl.fold (fun id () acc -> id :: acc) a.Transfer.oct_useful []
    |> List.sort Int.compare
  in
  let summaries, hits, misses =
    match a.Transfer.session.Transfer.ses_memo with
    | Some m ->
        ( List.rev !(m.cm_fresh),
          !(m.cm_hits) - hits0,
          !(m.cm_misses) - misses0 )
    | None -> ([], 0, 0)
  in
  {
    pr_out = out;
    pr_delta =
      {
        pd_alarms = Alarm.to_list a.Transfer.alarms;
        pd_invariants = invariants;
        pd_joins = a.Transfer.join_count - joins0;
        pd_oct_useful = useful;
        pd_summaries = summaries;
        pd_cache_hits = hits;
        pd_cache_misses = misses;
        pd_metrics = Metrics.diff metrics0;
        pd_events = Trace.capture_end cap_mark;
      };
  }
