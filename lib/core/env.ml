(** Abstract environments: the memory abstract domain of Sect. 6.1.

    The default implementation is the sharable functional map of
    Sect. 6.1.2 ({!Ptmap} with short-cut evaluation), giving abstract
    unions a complexity proportional to the number of differing cells.
    A naive functional-array implementation is kept behind
    [Config.naive_environments] for the E5 ablation, which reproduces the
    paper's observation that array environments make analysis time
    quadratic ("the execution time was divided by seven"). *)

module D = Astree_domains

type t =
  | Shared of Avalue.t Ptmap.t
  | Naive of Avalue.t option array
      (** cell id -> value; [None] = cell absent; updates copy the array *)

let empty ~naive ~ncells =
  if naive then Naive (Array.make (max 1 ncells) None) else Shared Ptmap.empty

let find (e : t) (id : int) : Avalue.t option =
  match e with
  | Shared m -> Ptmap.find_opt id m
  | Naive a -> if id < Array.length a then a.(id) else None

let grow a id =
  if id < Array.length a then Array.copy a
  else begin
    let n = max (id + 1) (2 * Array.length a) in
    let b = Array.make n None in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let set (e : t) (id : int) (v : Avalue.t) : t =
  match e with
  | Shared m -> Shared (Ptmap.add id v m)
  | Naive a ->
      let b = grow a id in
      b.(id) <- Some v;
      Naive b

let remove (e : t) (id : int) : t =
  match e with
  | Shared m -> Shared (Ptmap.remove id m)
  | Naive a ->
      if id < Array.length a then begin
        let b = Array.copy a in
        b.(id) <- None;
        Naive b
      end
      else e

(** Apply [f] to every cell (used by the clock tick, Sect. 6.2.1). *)
let map_all (f : Avalue.t -> Avalue.t) (e : t) : t =
  match e with
  | Shared m -> Shared (Ptmap.map f m)
  | Naive a -> Naive (Array.map (Option.map f) a)

let iter (f : int -> Avalue.t -> unit) (e : t) : unit =
  match e with
  | Shared m -> Ptmap.iter f m
  | Naive a -> Array.iteri (fun i v -> Option.iter (f i) v) a

let fold (f : int -> Avalue.t -> 'acc -> 'acc) (e : t) (acc : 'acc) : 'acc =
  match e with
  | Shared m -> Ptmap.fold f m acc
  | Naive a ->
      let acc = ref acc in
      Array.iteri (fun i v -> match v with Some v -> acc := f i v !acc | None -> ()) a;
      !acc

let cardinal = function
  | Shared m -> Ptmap.cardinal m
  | Naive a ->
      Array.fold_left (fun n v -> if v = None then n else n + 1) 0 a

(* ------------------------------------------------------------------ *)
(* Lattice operations (cell-wise, Sect. 6.1.3)                         *)
(* ------------------------------------------------------------------ *)

(* Cells present on only one side come from locals of one branch: the
   join keeps them (their scope has ended or not started on the other
   side, where any value is acceptable), the meet keeps them too. *)

let lift2_naive (f : Avalue.t -> Avalue.t -> Avalue.t) a b =
  let n = max (Array.length a) (Array.length b) in
  let r = Array.make n None in
  for i = 0 to n - 1 do
    let va = if i < Array.length a then a.(i) else None in
    let vb = if i < Array.length b then b.(i) else None in
    r.(i) <-
      (match (va, vb) with
      | Some x, Some y -> Some (f x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None)
  done;
  Naive r

let join (a : t) (b : t) : t =
  Astree_domains.Profile.count Astree_domains.Profile.env_join;
  let t0 = Astree_domains.Profile.start () in
  let r =
    match (a, b) with
    | Shared ma, Shared mb ->
        Shared
          (Ptmap.union_idem
             (fun _ x y -> if x == y then x else Avalue.join x y)
             ma mb)
    | Naive ma, Naive mb -> lift2_naive Avalue.join ma mb
    | _ -> invalid_arg "Env.join: mixed representations"
  in
  Astree_domains.Profile.stop Astree_domains.Profile.env_join t0;
  r

let meet (a : t) (b : t) : t =
  match (a, b) with
  | Shared ma, Shared mb ->
      Shared
        (Ptmap.union_idem
           (fun _ x y -> if x == y then x else Avalue.meet x y)
           ma mb)
  | Naive ma, Naive mb -> lift2_naive Avalue.meet ma mb
  | _ -> invalid_arg "Env.meet: mixed representations"

let widen ~thresholds (a : t) (b : t) : t =
  match (a, b) with
  | Shared ma, Shared mb ->
      Shared
        (Ptmap.union_idem
           (fun _ x y -> if x == y then x else Avalue.widen ~thresholds x y)
           ma mb)
  | Naive ma, Naive mb -> lift2_naive (Avalue.widen ~thresholds) ma mb
  | _ -> invalid_arg "Env.widen: mixed representations"

let narrow (a : t) (b : t) : t =
  match (a, b) with
  | Shared ma, Shared mb ->
      Shared
        (Ptmap.union_idem
           (fun _ x y -> if x == y then x else Avalue.narrow x y)
           ma mb)
  | Naive ma, Naive mb -> lift2_naive Avalue.narrow ma mb
  | _ -> invalid_arg "Env.narrow: mixed representations"

(** Abstract inclusion, with the short-cut on shared subtrees. *)
let subset (a : t) (b : t) : bool =
  match (a, b) with
  | Shared ma, Shared mb ->
      Ptmap.subset_by (fun x y -> x == y || Avalue.subset x y) ma mb
  | Naive ma, Naive mb ->
      let n = max (Array.length ma) (Array.length mb) in
      let ok = ref true in
      for i = 0 to n - 1 do
        let va = if i < Array.length ma then ma.(i) else None in
        let vb = if i < Array.length mb then mb.(i) else None in
        (match (va, vb) with
        | _, None -> ()
        | None, Some _ -> ok := false
        | Some x, Some y -> if not (Avalue.subset x y) then ok := false)
      done;
      !ok
  | _ -> invalid_arg "Env.subset: mixed representations"

let equal (a : t) (b : t) : bool =
  match (a, b) with
  | Shared ma, Shared mb -> Ptmap.equal_by Avalue.equal ma mb
  | Naive _, Naive _ -> subset a b && subset b a
  | _ -> false
