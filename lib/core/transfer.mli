(** Abstract transfer functions: assignments and guards over the full
    abstract state, with alarm reporting (Sect. 5.3, 6.1.3, 6.3).

    Integer results are checked against their type's range (overflowing
    values are "wiped out" with an alarm, not wrapped), floats are
    rounded outward per kind with overflow and invalid-operation alarms,
    divisors are checked for zero, array subscripts for bounds.  When
    the plain interval evaluation incurs no possible error, float
    expressions are refined through the linear forms of Sect. 6.3. *)

module F = Astree_frontend
module D = Astree_domains

(** Bindings of by-reference parameters to actual lvalues (function
    inlining, Sect. 5.4). *)
type binds = F.Tast.lval F.Tast.VarMap.t

(** Analysis context shared by all transfer functions. *)
type actx = {
  prog : F.Tast.program;
  cfg : Config.t;
  packs : Packing.t;
  intern : Cell.interner;
  alarms : Alarm.collector;
  oct_useful : (int, unit) Hashtbl.t;
      (** octagon packs that improved precision (Sect. 7.2.2) *)
  oct_index : (int, Packing.oct_pack list) Hashtbl.t;
  ell_index : (int, Packing.ell_pack list) Hashtbl.t;
  dt_index : (int, Packing.dt_pack list) Hashtbl.t;
  invariants : (int, Astate.t) Hashtbl.t;  (** loop id -> head invariant *)
  input_specs : (int, float * float) Hashtbl.t;
  mutable join_count : int;
}

val make_actx : Config.t -> F.Tast.program -> actx

(** {1 Pack lookups (indexed)} *)

val oct_packs_of : actx -> F.Tast.var -> Packing.oct_pack list
val ell_packs_of : actx -> F.Tast.var -> Packing.ell_pack list
val dt_packs_of : actx -> F.Tast.var -> Packing.dt_pack list

(** {1 Cells and values} *)

(** Interned cell id of a scalar variable. *)
val var_cell : actx -> F.Tast.var -> int

(** Interval of every value of a scalar type on the target. *)
val type_range : actx -> F.Ctypes.scalar -> D.Itv.t

(** Range of a volatile input read (Sect. 4 environment specs). *)
val input_itv : actx -> F.Tast.var -> F.Ctypes.scalar -> D.Itv.t

(** Clock-reduced interval of a cell. *)
val cell_itv : actx -> Astate.t -> int -> D.Itv.t

(** Clock-reduced interval of a scalar variable. *)
val var_itv : actx -> Astate.t -> F.Tast.var -> D.Itv.t

(** Float-hull oracle over the state, for the relational domains. *)
val oracle : actx -> Astate.t -> F.Tast.var -> float * float

(** {1 Lvalues and expressions} *)

(** Substitute by-reference parameter bindings away. *)
val resolve_lval : binds -> F.Tast.lval -> F.Tast.lval

val resolve_expr : binds -> F.Tast.expr -> F.Tast.expr

(** Evaluate an expression to an interval; alarms are reported through
    the context's collector (when in checking mode) and any possible
    error is recorded in [err].  [var_hook] lets decision-tree leaves
    override variable ranges. *)
val eval :
  ?var_hook:(F.Tast.var -> D.Itv.t option) ->
  actx -> Astate.t -> binds -> bool ref -> F.Tast.expr -> D.Itv.t

(** Raising-domain attribution for alarm provenance (ISSUE 5): the
    abstract domain carrying the sharpest information about the
    variables of [e] — "octagon" when two of them share an octagon
    pack, "ellipsoid" / "decision-tree" when one is packed there,
    "clocked" when a clocked component is informative, "interval"
    otherwise.  Cold path (called when building an alarm). *)
val value_domain :
  actx -> Astate.t -> binds -> F.Tast.expr -> string

(** {1 Statement-level transfer functions} *)

(** guard#(E, c): refine the state under [cond = truth] (Sect. 5.4);
    compound conditions are handled by structural induction, atomic
    comparisons refine the intervals, the octagons (through linear
    forms) and the decision trees. *)
val guard : actx -> Astate.t -> binds -> F.Tast.expr -> bool -> Astate.t

(** Abstract assignment lvalue := e (Sect. 6.1.3): strong or weak cell
    updates, then relational updates (octagons, ellipsoids, decision
    trees) with their interval write-backs. *)
val assign : actx -> Astate.t -> binds -> F.Tast.lval -> F.Tast.expr -> Astate.t

(** Local-variable creation (stack cells are created on the fly,
    Sect. 5.2). *)
val local_decl :
  actx -> Astate.t -> binds -> F.Tast.var -> F.Tast.expr option -> Astate.t

(** [__astree_wait_for_clock()]: clock tick (Sect. 6.2.1). *)
val wait : actx -> Astate.t -> Astate.t

(** Initial abstract state: globals bound to their static initializers
    (Sect. 5.2). *)
val initial_state : actx -> Astate.t

(** Intern every cell the analysis could ever touch, in deterministic
    program order.  Called by the parallel subsystem before forking
    workers, so all processes share one frozen cell numbering. *)
val prefill_cells : actx -> unit

(** {1 Incremental-analysis support}

    Capture sections isolate the exact side effects of one function call
    on the context's mutable bookkeeping (alarms, loop invariants,
    useful octagon packs, join count), so the summary cache can store
    them with the call's result and replay them verbatim on a hit. *)

type capture

(** Replayable side effects of one captured call. *)
type capture_delta = {
  cd_alarms : Alarm.t list;
  cd_invariants : (int * Astate.t) list;  (** sorted by loop id *)
  cd_oct_useful : int list;               (** sorted *)
  cd_joins : int;
}

val capture_begin : actx -> capture
val capture_end : actx -> capture -> capture_delta

(** Abandon a section on an exceptional exit (alarms are preserved). *)
val capture_abort : actx -> capture -> unit

(** Replay a delta against the context — the cache-hit path. *)
val capture_replay : actx -> capture_delta -> unit
