(** Abstract transfer functions: assignments and guards over the full
    abstract state, with alarm reporting (Sect. 5.3, 6.1.3, 6.3).

    Integer results are checked against their type's range (overflowing
    values are "wiped out" with an alarm, not wrapped), floats are
    rounded outward per kind with overflow and invalid-operation alarms,
    divisors are checked for zero, array subscripts for bounds.  When
    the plain interval evaluation incurs no possible error, float
    expressions are refined through the linear forms of Sect. 6.3. *)

module F = Astree_frontend
module D = Astree_domains

(** Bindings of by-reference parameters to actual lvalues (function
    inlining, Sect. 5.4). *)
type binds = F.Tast.lval F.Tast.VarMap.t

(** {1 Session types (reentrancy seam)}

    The iterator's extension hooks — parallel dispatch, function-summary
    memo, resource-governor tick — live in a per-analysis {!session}
    record rather than module-global refs, so concurrent analyses in one
    process (the [astreed] daemon) cannot corrupt each other.  The data
    types are re-exported with equations by [Iterator], their historical
    home. *)

(** {1 Multi-task interference (Astree_conc seam)} *)

(** A shared cell, identified position-independently: root variable id
    and access path.  Marshals across processes and is stable across
    differing interner numberings. *)
type itf_key = int * Cell.step list

(** Interference context of one per-task run of a multi-task analysis
    (Miné's rely/guarantee iteration): [itf_rely] is joined into every
    read of a shared cell, [itf_shared] gates the read join and the
    value-copy fast paths, [itf_writes] collects the task's abstract
    writes to shared cells (the guarantee).  Installed via
    [session.ses_itf] by the outer fixpoint driver. *)
type itf = {
  itf_rely : (itf_key, D.Itv.t) Hashtbl.t;
  itf_shared : (int, unit) Hashtbl.t;
  itf_writes : (itf_key, D.Itv.t) Hashtbl.t;
}

(** Replayable side effects of one captured call (see the capture
    functions at the bottom of this interface). *)
type capture_delta = {
  cd_alarms : Alarm.t list;
  cd_invariants : (int * Astate.t) list;  (** sorted by loop id *)
  cd_oct_useful : int list;               (** sorted *)
  cd_joins : int;
  cd_itf_writes : (itf_key * D.Itv.t) list;
      (** shared-cell writes of the call (sorted by key), replayed into
          the guarantee collector on a cache hit *)
}

(** Flow-separated analysis outcome of a statement or block. *)
type outcome = {
  o_norm : Astate.t list;
  o_brk : Astate.t;
  o_cont : Astate.t;
  o_ret : Astate.t;
  o_retv : D.Itv.t;
}

(** Everything one analyzed call produced — pure data, marshalled into
    parallel deltas and the on-disk store. *)
type summary = {
  sm_exit : Astate.t;
  sm_retv : D.Itv.t;
  sm_delta : capture_delta;
}

(** Cache key: callee content fingerprint, digest of the abstract entry
    state + by-reference bindings, and the alarm-collector mode. *)
type summary_key = {
  sk_fn : string;
  sk_entry : string;
  sk_checking : bool;
}

type call_memo = {
  cm_key :
    fname:string -> checking:bool -> Astate.t -> binds ->
    summary_key option;
  cm_find : summary_key -> summary option;
  cm_add : summary_key -> summary -> unit;
  cm_fresh : (summary_key * summary) list ref;
  cm_hits : int ref;
  cm_misses : int ref;
  cm_want : string -> bool;
}

(** A unit of work shipped to a worker: pure data, marshalled. *)
type par_work =
  | Pw_block of F.Tast.block
  | Pw_call of {
      dst : F.Tast.var option;
      fname : string;
      args : F.Tast.arg list;
    }

type par_job = {
  pj_work : par_work;
  pj_binds : binds;
  pj_stack : string list;
  pj_part : bool;
  pj_state : Astate.t;
  pj_checking : bool;
}

(** Side effects of a job, replayed by the parent in job order. *)
type par_delta = {
  pd_alarms : Alarm.t list;
  pd_invariants : (int * Astate.t) list;
  pd_joins : int;
  pd_oct_useful : int list;
  pd_summaries : (summary_key * summary) list;
  pd_cache_hits : int;
  pd_cache_misses : int;
  pd_metrics : Astree_obs.Metrics.snapshot;
  pd_events : Astree_obs.Trace.event list;
}

type par_reply = { pr_out : outcome; pr_delta : par_delta }

(** Per-analysis session: the hooks and cross-cutting mutable state of
    one analysis run.  Sessions make [Analysis] reentrant: the daemon
    creates one per request. *)
type session = {
  mutable ses_memo : call_memo option;
  mutable ses_par_hook : (par_job list -> par_reply option list) option;
  mutable ses_tick_hook : (unit -> unit) option;
  mutable ses_ticks : int;
  mutable ses_preload : (summary_key * summary) list;
      (** summaries seeded into the memo before any store load *)
  mutable ses_collect_tables : bool;
      (** when set, [Summary.detach] records the final table below *)
  mutable ses_tables : (string * (summary_key * summary) list) list;
      (** (store key, entries) per cache attach, newest first *)
  mutable ses_live : actx option;
      (** context currently analyzed under this session *)
  mutable ses_itf : itf option;
      (** interference context of a multi-task per-task run; [None]
          keeps every transfer function on its single-task path *)
}

(** Analysis context shared by all transfer functions. *)
and actx = {
  prog : F.Tast.program;
  cfg : Config.t;
  session : session;
  packs : Packing.t;
  intern : Cell.interner;
  alarms : Alarm.collector;
  oct_useful : (int, unit) Hashtbl.t;
      (** octagon packs that improved precision (Sect. 7.2.2) *)
  oct_index : (int, Packing.oct_pack list) Hashtbl.t;
  ell_index : (int, Packing.ell_pack list) Hashtbl.t;
  dt_index : (int, Packing.dt_pack list) Hashtbl.t;
  invariants : (int, Astate.t) Hashtbl.t;  (** loop id -> head invariant *)
  input_specs : (int, float * float) Hashtbl.t;
  mutable join_count : int;
}

(** Fresh session with no hooks installed. *)
val new_session : unit -> session

val make_actx : ?session:session -> Config.t -> F.Tast.program -> actx

(** A per-domain view of [actx] for OCaml 5 shared-memory workers:
    shares the read-only structure (program, config, packs, lookup
    indexes, and the cell interner — which {!prefill_cells} freezes
    before any parallel dispatch) but carries a fresh session (no memo,
    no hooks), a fresh alarm collector and fresh bookkeeping tables, so
    concurrently running domains never write to a shared table. *)
val worker_actx : actx -> actx

(** {1 Pack lookups (indexed)} *)

val oct_packs_of : actx -> F.Tast.var -> Packing.oct_pack list
val ell_packs_of : actx -> F.Tast.var -> Packing.ell_pack list
val dt_packs_of : actx -> F.Tast.var -> Packing.dt_pack list

(** {1 Cells and values} *)

(** Interned cell id of a scalar variable. *)
val var_cell : actx -> F.Tast.var -> int

(** Interval of every value of a scalar type on the target. *)
val type_range : actx -> F.Ctypes.scalar -> D.Itv.t

(** Range of a volatile input read (Sect. 4 environment specs). *)
val input_itv : actx -> F.Tast.var -> F.Ctypes.scalar -> D.Itv.t

(** Clock-reduced interval of a cell.  Under an interference context,
    reads of shared cells join the rely set — this is the single read
    funnel every consumer of an abstract value goes through. *)
val cell_itv : actx -> Astate.t -> int -> D.Itv.t

(** Is [v] a shared variable of a multi-task run?  [false] whenever no
    interference context is installed. *)
val itf_tracked_var : actx -> F.Tast.var -> bool

(** Join a write into an interference guarantee collector (exposed for
    the fixpoint driver's replay paths and tests). *)
val itf_record : itf -> itf_key -> D.Itv.t -> unit

(** Clock-reduced interval of a scalar variable. *)
val var_itv : actx -> Astate.t -> F.Tast.var -> D.Itv.t

(** Float-hull oracle over the state, for the relational domains. *)
val oracle : actx -> Astate.t -> F.Tast.var -> float * float

(** {1 Lvalues and expressions} *)

(** Substitute by-reference parameter bindings away. *)
val resolve_lval : binds -> F.Tast.lval -> F.Tast.lval

val resolve_expr : binds -> F.Tast.expr -> F.Tast.expr

(** Evaluate an expression to an interval; alarms are reported through
    the context's collector (when in checking mode) and any possible
    error is recorded in [err].  [var_hook] lets decision-tree leaves
    override variable ranges. *)
val eval :
  ?var_hook:(F.Tast.var -> D.Itv.t option) ->
  actx -> Astate.t -> binds -> bool ref -> F.Tast.expr -> D.Itv.t

(** Raising-domain attribution for alarm provenance (ISSUE 5): the
    abstract domain carrying the sharpest information about the
    variables of [e] — "octagon" when two of them share an octagon
    pack, "ellipsoid" / "decision-tree" when one is packed there,
    "clocked" when a clocked component is informative, "interval"
    otherwise.  Cold path (called when building an alarm). *)
val value_domain :
  actx -> Astate.t -> binds -> F.Tast.expr -> string

(** {1 Statement-level transfer functions} *)

(** guard#(E, c): refine the state under [cond = truth] (Sect. 5.4);
    compound conditions are handled by structural induction, atomic
    comparisons refine the intervals, the octagons (through linear
    forms) and the decision trees. *)
val guard : actx -> Astate.t -> binds -> F.Tast.expr -> bool -> Astate.t

(** Abstract assignment lvalue := e (Sect. 6.1.3): strong or weak cell
    updates, then relational updates (octagons, ellipsoids, decision
    trees) with their interval write-backs. *)
val assign : actx -> Astate.t -> binds -> F.Tast.lval -> F.Tast.expr -> Astate.t

(** Local-variable creation (stack cells are created on the fly,
    Sect. 5.2). *)
val local_decl :
  actx -> Astate.t -> binds -> F.Tast.var -> F.Tast.expr option -> Astate.t

(** [__astree_wait_for_clock()]: clock tick (Sect. 6.2.1). *)
val wait : actx -> Astate.t -> Astate.t

(** Initial abstract state: globals bound to their static initializers
    (Sect. 5.2). *)
val initial_state : actx -> Astate.t

(** Intern every cell the analysis could ever touch, in deterministic
    program order.  Called by the parallel subsystem before forking
    workers, so all processes share one frozen cell numbering. *)
val prefill_cells : actx -> unit

(** {1 Incremental-analysis support}

    Capture sections isolate the exact side effects of one function call
    on the context's mutable bookkeeping (alarms, loop invariants,
    useful octagon packs, join count), so the summary cache can store
    them with the call's result and replay them verbatim on a hit. *)

type capture

val capture_begin : actx -> capture
val capture_end : actx -> capture -> capture_delta

(** Abandon a section on an exceptional exit (alarms are preserved). *)
val capture_abort : actx -> capture -> unit

(** Replay a delta against the context — the cache-hit path. *)
val capture_replay : actx -> capture_delta -> unit
