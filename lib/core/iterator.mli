(** The iterator (Sect. 5.3–5.5): abstract execution by induction on the
    abstract syntax, with iteration and checking modes, least-fixpoint
    approximation with widening and narrowing, loop unrolling, trace
    partitioning and polyvariant function inlining. *)

(** Raised on programs outside the subset's analyzable fragment
    (recursion, calls to unknown functions, ...). *)
exception Analysis_error of string

(** Flow-separated analysis outcome of a statement or block; [o_norm]
    is a disjunction of abstract states (a singleton except under trace
    partitioning, Sect. 7.1.5).  The session data types below are
    defined in [Transfer] (they are carried by {!Transfer.session}) and
    re-exported here, their historical home. *)
type outcome = Transfer.outcome = {
  o_norm : Astate.t list;
  o_brk : Astate.t;
  o_cont : Astate.t;
  o_ret : Astate.t;
  o_retv : Astree_domains.Itv.t;
}

(** {1 Parallel dispatch (Astree_parallel, after Monniaux 05)}

    The iterator parallelizes along the disjunctions it already
    manipulates: trace-partition disjuncts flowing into a call and the
    two branches of a conditional, each analyzed from its own entry
    state and merged by the very joins the sequential iterator performs
    — so [-j n] results are identical to [-j 1] by construction.  The
    iterator is process-agnostic: the parallel subsystem installs
    {!Transfer.session.ses_par_hook} in the parent; workers execute
    [par_run_job] on marshalled jobs against their forked copy of the
    context. *)

(** {1 Function-summary cache (Astree_incremental)}

    Context-sensitive polyvariant inlining (Sect. 5.4) re-analyzes a
    callee for every call context; the summary cache pays for each
    distinct (callee fingerprint, abstract entry state) pair once.  The
    iterator is storage-agnostic: the incremental subsystem installs
    {!Transfer.session.ses_memo}; a hit replays the recorded side
    effects and is observationally identical to re-analysis. *)

(** Everything one analyzed call produced: the state at the return
    point, the merged return value, and the side effects on the
    context's bookkeeping.  Pure data — marshalled into parallel deltas
    and into the on-disk store. *)
type summary = Transfer.summary = {
  sm_exit : Astate.t;
  sm_retv : Astree_domains.Itv.t;
  sm_delta : Transfer.capture_delta;
}

(** Cache key: callee content fingerprint (covers the analysis
    configuration), digest of the abstract entry state with the
    by-reference bindings, and the alarm-collector mode — iteration-mode
    and checking-mode results are never conflated. *)
type summary_key = Transfer.summary_key = {
  sk_fn : string;
  sk_entry : string;
  sk_checking : bool;
}

type call_memo = Transfer.call_memo = {
  cm_key :
    fname:string ->
    checking:bool ->
    Astate.t ->
    Transfer.binds ->
    summary_key option;
      (** [None]: this call is not cacheable (no fingerprint) *)
  cm_find : summary_key -> summary option;
  cm_add : summary_key -> summary -> unit;
  cm_fresh : (summary_key * summary) list ref;
      (** summaries computed by this process since the last drain, in
          computation order — parallel workers ship them in job deltas *)
  cm_hits : int ref;
  cm_misses : int ref;
  cm_want : string -> bool;
      (** gate: is this callee worth memoizing at all?  Computed once
          per session from the transitive inlined size of each function
          against {!memo_min_stmts} *)
}

(** Minimal transitive inlined statement count of a callee before
    memoization is worth the entry-state digest. *)
val memo_min_stmts : int ref

(** A unit of work shipped to a worker: pure (marshallable) data. *)
type par_work = Transfer.par_work =
  | Pw_block of Astree_frontend.Tast.block
      (** execute a block (a conditional branch) *)
  | Pw_call of {
      dst : Astree_frontend.Tast.var option;
      fname : string;
      args : Astree_frontend.Tast.arg list;
    }

type par_job = Transfer.par_job = {
  pj_work : par_work;
  pj_binds : Transfer.binds;
  pj_stack : string list;
  pj_part : bool;
  pj_state : Astate.t;  (** the single entry state of the job *)
  pj_checking : bool;   (** alarm-collector mode at the dispatch point *)
}

(** Side effects of a job on the analysis context, replayed by the
    parent in job order for deterministic merging. *)
type par_delta = Transfer.par_delta = {
  pd_alarms : Alarm.t list;
  pd_invariants : (int * Astate.t) list;
  pd_joins : int;
  pd_oct_useful : int list;
  pd_summaries : (summary_key * summary) list;
      (** summaries the worker computed, in computation order *)
  pd_cache_hits : int;
  pd_cache_misses : int;
  pd_metrics : Astree_obs.Metrics.snapshot;
      (** registry delta accumulated while running the job (profile
          probes included), absorbed at merge so [-j n] metrics reports
          are as complete as sequential ones *)
  pd_events : Astree_obs.Trace.event list;
      (** trace events emitted while running the job, re-emitted by the
          parent in job order *)
}

type par_reply = Transfer.par_reply = {
  pr_out : outcome;
  pr_delta : par_delta;
}

(** Minimal statement count of a block before it is worth dispatching. *)
val par_min_stmts : int ref

(** Worker-side execution of one job against the forked context. *)
val par_run_job : Transfer.actx -> par_job -> par_reply

val exec_stmt :
  Transfer.actx ->
  part:bool ->
  stack:string list ->
  Transfer.binds ->
  Astate.t list ->
  Astree_frontend.Tast.stmt ->
  outcome

val exec_block :
  Transfer.actx ->
  part:bool ->
  stack:string list ->
  Transfer.binds ->
  Astate.t list ->
  Astree_frontend.Tast.block ->
  outcome

(** Run the abstract interpreter from the program entry point, in
    checking mode (loops internally recompute their invariants in
    iteration mode first, Sect. 5.4); returns the program-exit state.
    Loop invariants are recorded in the context. *)
val run : Transfer.actx -> Astate.t
