(** Parametrized packing (Sect. 7.2): determination, once and for all
    before the analysis starts, of the small variable packs on which the
    relational domains operate. *)

type oct_pack = {
  op_id : int;
  op_vars : Astree_frontend.Tast.var array;
  op_index : (int, int) Hashtbl.t;
      (** variable id -> position in [op_vars]; built once at pack
          creation, never mutated *)
}
(** An octagon pack (Sect. 7.2.1): the numerical variables appearing in
    linear assignments or tests of one syntactic block. *)

val op_mem : oct_pack -> Astree_frontend.Tast.var -> bool
(** O(1) pack-membership test via [op_index]. *)

type ell_pack = {
  ep_id : int;
  ep_a : float;
  ep_b : float;
  ep_fkind : Astree_frontend.Ctypes.fkind;
  ep_vars : Astree_frontend.Tast.var array;
  ep_x : Astree_frontend.Tast.var;  (** the filter output X' *)
  ep_y : Astree_frontend.Tast.var;  (** the filter state X *)
  ep_z : Astree_frontend.Tast.var;  (** the filter state Y *)
}
(** An ellipsoid pack: one per syntactic filter assignment
    [x := a.y - b.z + t] whose coefficients satisfy Prop. 1. *)

type dt_pack = {
  dp_id : int;
  dp_bools : Astree_frontend.Tast.var array;
  dp_nums : Astree_frontend.Tast.var array;
}
(** A decision-tree pack (Sect. 7.2.3): tentative packs from
    boolean/numeric interactions, kept when confirmed by a use of the
    numerical variable under a branch depending on the boolean. *)

type t = {
  octs : oct_pack list;
  ells : ell_pack list;
  dts : dt_pack list;
}

val empty : t

(** Syntactic linear form with exact constant coefficients;
    [None] when the expression is not linear. *)
val syntactic_linear :
  Astree_frontend.Tast.expr ->
  ((Astree_frontend.Tast.var * float) list * float) option

val octagon_packs :
  max_pack:int -> Astree_frontend.Tast.program -> oct_pack list

val ellipsoid_packs : Astree_frontend.Tast.program -> ell_pack list

val decision_tree_packs :
  max_bools:int -> max_nums:int -> Astree_frontend.Tast.program ->
  dt_pack list

(** Determine all packs under a configuration; when
    [cfg.useful_packs_only] is set, octagon packs outside the list are
    dropped (Sect. 7.2.2). *)
val compute : Config.t -> Astree_frontend.Tast.program -> t

val stats : t -> string
