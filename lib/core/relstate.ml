(** The relational component of the abstract state: one octagon per
    octagon pack (Sect. 6.2.2), one ellipsoid element per filter pack
    (Sect. 6.2.3) and one decision tree per boolean pack (Sect. 6.2.4),
    each keyed by its pack id in a sharable functional map so that
    unmodified packs are shared across joins (Sect. 7.2.1: "the octagon
    packs are efficiently manipulated using functional maps ... to
    achieve sub-linear time costs via sharing of unmodified octagons"). *)

module F = Astree_frontend
module D = Astree_domains

type t = {
  octs : D.Octagon.t Ptmap.t;
  ells : D.Ellipsoid.t Ptmap.t;
  dts : D.Decision_tree.t Ptmap.t;
}

let top (packs : Packing.t) : t =
  let octs =
    List.fold_left
      (fun m (op : Packing.oct_pack) ->
        Ptmap.add op.op_id (D.Octagon.top op.op_vars) m)
      Ptmap.empty packs.Packing.octs
  in
  let ells =
    List.fold_left
      (fun m (ep : Packing.ell_pack) ->
        Ptmap.add ep.ep_id
          (D.Ellipsoid.make ~a:ep.ep_a ~b:ep.ep_b ~fkind:ep.ep_fkind
             ep.ep_vars)
          m)
      Ptmap.empty packs.Packing.ells
  in
  let dts =
    List.fold_left
      (fun m (dp : Packing.dt_pack) ->
        Ptmap.add dp.dp_id (D.Decision_tree.top dp.dp_bools dp.dp_nums) m)
      Ptmap.empty packs.Packing.dts
  in
  { octs; ells; dts }

let empty : t = { octs = Ptmap.empty; ells = Ptmap.empty; dts = Ptmap.empty }

(* Octagons are the only mutable pack values (in-place lazy closure);
   ellipsoids and decision trees are immutable, so breaking sharing for
   a shared-memory worker only needs to copy the octagon side. *)
let unshare (r : t) : t = { r with octs = Ptmap.map D.Octagon.unshare r.octs }

(* ------------------------------------------------------------------ *)
(* Lattice operations (pack-wise with sharing short-cuts)              *)
(* ------------------------------------------------------------------ *)

let lift2 foct fell fdt (a : t) (b : t) : t =
  {
    octs = Ptmap.union_idem (fun _ x y -> if x == y then x else foct x y) a.octs b.octs;
    ells = Ptmap.union_idem (fun _ x y -> if x == y then x else fell x y) a.ells b.ells;
    dts = Ptmap.union_idem (fun _ x y -> if x == y then x else fdt x y) a.dts b.dts;
  }

let join = lift2 D.Octagon.join D.Ellipsoid.join D.Decision_tree.join
let meet = lift2 D.Octagon.meet D.Ellipsoid.meet D.Decision_tree.meet

let widen ~thresholds =
  lift2
    (D.Octagon.widen ~thresholds)
    (D.Ellipsoid.widen ~thresholds)
    (D.Decision_tree.widen ~thresholds)

let narrow = lift2 D.Octagon.narrow D.Ellipsoid.narrow D.Decision_tree.narrow

let subset (a : t) (b : t) : bool =
  Ptmap.subset_by (fun x y -> x == y || D.Octagon.subset x y) a.octs b.octs
  && Ptmap.subset_by (fun x y -> x == y || D.Ellipsoid.subset x y) a.ells b.ells
  && Ptmap.subset_by
       (fun x y -> x == y || D.Decision_tree.subset x y)
       a.dts b.dts

let equal (a : t) (b : t) : bool =
  Ptmap.equal_by D.Octagon.equal a.octs b.octs
  && Ptmap.equal_by D.Ellipsoid.equal a.ells b.ells
  && Ptmap.equal_by D.Decision_tree.equal a.dts b.dts

(* ------------------------------------------------------------------ *)
(* Pack lookups                                                        *)
(* ------------------------------------------------------------------ *)

let oct_packs_of (packs : Packing.t) (v : F.Tast.var) : Packing.oct_pack list =
  List.filter (fun op -> Packing.op_mem op v) packs.Packing.octs

let ell_packs_of (packs : Packing.t) (v : F.Tast.var) : Packing.ell_pack list =
  List.filter
    (fun (ep : Packing.ell_pack) ->
      Array.exists (F.Tast.Var.equal v) ep.ep_vars)
    packs.Packing.ells

let dt_packs_of (packs : Packing.t) (v : F.Tast.var) : Packing.dt_pack list =
  List.filter
    (fun (dp : Packing.dt_pack) ->
      Array.exists (F.Tast.Var.equal v) dp.dp_bools
      || Array.exists (F.Tast.Var.equal v) dp.dp_nums)
    packs.Packing.dts

(* ------------------------------------------------------------------ *)
(* Accounting (invariant census, Sect. 9.4.1)                          *)
(* ------------------------------------------------------------------ *)

type census = {
  oct_sum_constraints : int;  (** a <= x + y <= b assertions *)
  oct_diff_constraints : int; (** a <= x - y <= b assertions *)
  ellipsoid_constraints : int;
  dtree_assertions : int;
}

let census (t : t) : census =
  let sums = ref 0 and diffs = ref 0 in
  Ptmap.iter
    (fun _ o ->
      let s, d = D.Octagon.count_constraints o in
      sums := !sums + s;
      diffs := !diffs + d)
    t.octs;
  let ells = ref 0 in
  Ptmap.iter (fun _ e -> ells := !ells + D.Ellipsoid.count_constraints e) t.ells;
  let dts = ref 0 in
  Ptmap.iter
    (fun _ d -> dts := !dts + D.Decision_tree.count_assertions d)
    t.dts;
  {
    oct_sum_constraints = !sums;
    oct_diff_constraints = !diffs;
    ellipsoid_constraints = !ells;
    dtree_assertions = !dts;
  }
