(** End-user parameters of the analyzer (Sect. 3.2 and 7).

    The design principle of the paper is a parametrizable analyzer:
    specialists design the abstract domains, end-users adapt the analysis
    to a program of the family through these parameters (most of which
    can also be determined automatically, Sect. 7.2). *)

type t = {
  (* ---- domains on/off (used by the refinement-ladder experiments) -- *)
  use_clocked : bool;        (** the clocked domain of Sect. 6.2.1 *)
  use_octagons : bool;       (** Sect. 6.2.2 *)
  use_ellipsoids : bool;     (** Sect. 6.2.3 *)
  use_decision_trees : bool; (** Sect. 6.2.4 *)
  use_linearization : bool;  (** symbolic manipulation, Sect. 6.3 *)
  (* ---- iteration strategy (Sect. 7.1) ------------------------------ *)
  widening_thresholds : Astree_domains.Thresholds.t;
      (** threshold set for widening (Sect. 7.1.2) *)
  delay_widening : int;
      (** number N0 of iterations with plain unions before widening
          starts (Sect. 7.1.3) *)
  widening_fairness : int;
      (** upper bound on extra delays granted when some variable becomes
          stable at each iteration (the fairness condition of
          Sect. 7.1.3) *)
  loop_unroll : int;
      (** default semantic unrolling factor n (Sect. 7.1.1) *)
  loop_unroll_overrides : (int * int) list;
      (** per-loop unrolling factors, keyed by loop id *)
  narrowing_iterations : int;
      (** number of decreasing iterations after stabilization *)
  float_iteration_epsilon : float;
      (** the perturbation epsilon of Sect. 7.1.4: loop invariants are
          enlarged to [a' - eps|a'|, b' + eps|b'|] before the stability
          check *)
  partitioned_functions : string list;
      (** functions analyzed with trace partitioning (Sect. 7.1.5) *)
  max_partitions : int;
      (** safety bound on simultaneous execution traces *)
  (* ---- packing (Sect. 7.2) ----------------------------------------- *)
  max_octagon_pack : int;    (** maximum variables per octagon pack *)
  max_dtree_bools : int;
      (** maximum booleans per decision-tree pack (Sect. 7.2.3: "setting
          this parameter to three yields an efficient and precise
          analysis") *)
  max_dtree_nums : int;      (** numerical variables per decision-tree pack *)
  useful_packs_only : (string * int list) option;
      (** when [Some (tag, ids)], reuse the list of useful octagon packs
          output by a previous analysis (Sect. 7.2.2) *)
  (* ---- model of the environment (Sect. 4) -------------------------- *)
  max_clock : int;
      (** maximal number of clock ticks (maximal continuous operating
          time over the clock period) *)
  (* ---- memory-domain implementation (Sect. 6.1.2 ablation) --------- *)
  expand_array_max : int;
      (** arrays up to this size are expanded cell-per-cell; larger ones
          are shrunk into a single cell (Sect. 6.1.1) *)
  naive_environments : bool;
      (** use the naive array-based environments instead of sharable
          functional maps — only for the E5 ablation *)
  (* ---- parallel analysis (Astree_parallel, Monniaux 05 direction) -- *)
  jobs : int;
      (** number of worker processes; [1] keeps the analysis strictly
          sequential, [n > 1] dispatches independent jobs (trace
          partitions, dispatch branches, whole-program batch items) to a
          fork-based pool whose results are merged deterministically *)
  par_backend : backend;
      (** which worker pool serves parallel jobs.  [`Fork]: process
          workers over marshalling pipes (isolation, per-job timeouts,
          fault injection).  [`Domains]: OCaml 5 shared-memory domains
          (jobs and replies pass by reference, Ptmap sharing survives).
          [`Auto] (the default) picks domains, degrading to fork when
          fault injection or a resource budget is armed.  Never affects
          analysis results — fingerprints are byte-identical across
          backends — hence excluded from the config fingerprint *)
  (* ---- incremental analysis (Astree_incremental) ------------------- *)
  summary_cache : cache;
      (** function-summary memoization: identical (callee fingerprint,
          abstract entry state) pairs are analyzed once.  [Cache_mem]
          keeps summaries for the duration of one analysis run,
          [Cache_dir d] additionally persists them in directory [d]
          across runs and processes.  Never affects analysis results,
          only their cost — hence excluded from the config fingerprint *)
  (* ---- resource budget (Astree_robust) ------------------------------ *)
  timeout : float;
      (** wall-clock budget in seconds for the whole analysis; [0.] means
          unbounded.  When the budget trips, the robust subsystem sheds
          precision (soundly) instead of aborting *)
  max_mem_mb : int;
      (** major-heap watermark in MiB; [0] means unbounded.  Same
          degradation behaviour as [timeout] *)
  shed_packs_above : int option;
      (** when [Some k], relational packs (octagon, ellipsoid, decision
          tree) with more than [k] variables are dropped to intervals.
          [None] keeps every pack.  Set by the degradation ladder, not by
          end users directly; affects results (soundly: fewer packs can
          only lose precision), hence part of the config fingerprint *)
  (* ---- multi-task interference analysis (Astree_conc) --------------- *)
  conc_shared : string list;
      (** names of the shared (interference-carrying) variables of a
          multi-task analysis: another task may overwrite them between
          any two statements, so relational packs over them would carry
          stale relations — {!Packing.compute} excludes them.  [[]] for
          single-task analyses (the default): nothing changes.  Set by
          the interference fixpoint driver, not by end users *)
  conc_rely_digest : string;
      (** digest of the interference (rely) map installed for this
          per-task run, [""] outside multi-task analyses.  Semantically
          inert by itself, but it identifies the rely environment the
          run's transfer functions consult — folding it into the config
          fingerprint makes function summaries self-identify their
          interference round, so the summary cache stays sound across
          outer-fixpoint rounds *)
}

and cache = Cache_off | Cache_mem | Cache_dir of string
and backend = [ `Fork | `Domains | `Auto ]

let backend_to_string = function
  | `Fork -> "fork"
  | `Domains -> "domains"
  | `Auto -> "auto"

let backend_of_string = function
  | "fork" -> Some `Fork
  | "domains" -> Some `Domains
  | "auto" -> Some `Auto
  | _ -> None

let default : t =
  {
    use_clocked = true;
    use_octagons = true;
    use_ellipsoids = true;
    use_decision_trees = true;
    use_linearization = true;
    widening_thresholds = Astree_domains.Thresholds.default;
    delay_widening = 2;
    widening_fairness = 8;
    loop_unroll = 1;
    loop_unroll_overrides = [];
    narrowing_iterations = 2;
    float_iteration_epsilon = 1e-6;
    partitioned_functions = [];
    max_partitions = 16;
    max_octagon_pack = 6;
    max_dtree_bools = 3;
    max_dtree_nums = 4;
    useful_packs_only = None;
    max_clock = 3_600_000;
      (* 10 h of continuous operation at 100 Hz, a typical flight bound *)
    expand_array_max = 64;
    naive_environments = false;
    jobs = 1;
    par_backend = `Auto;
    summary_cache = Cache_off;
    timeout = 0.;
    max_mem_mb = 0;
    shed_packs_above = None;
    conc_shared = [];
    conc_rely_digest = "";
  }

let cache_enabled (cfg : t) : bool = cfg.summary_cache <> Cache_off

(** The baseline configuration corresponding to the analyzer of [5] the
    paper started from: intervals, the clocked domain and widening with
    thresholds, but none of this paper's refinements (symbolic
    linearization, octagons, ellipsoids, decision trees, trace
    partitioning).  Used as the reference point of the alarm-reduction
    experiment (E2). *)
let baseline : t =
  {
    default with
    use_octagons = false;
    use_ellipsoids = false;
    use_decision_trees = false;
    use_linearization = false;
  }

(** Plain interval analysis: no clocked domain, no thresholds, classical
    widening.  The "industrialized general-purpose analyzer" starting
    point of Sect. 2. *)
let intervals_only : t =
  {
    baseline with
    use_clocked = false;
    widening_thresholds = Astree_domains.Thresholds.none;
    delay_widening = 0;
    loop_unroll = 0;
  }

let unroll_for (cfg : t) (loop_id : int) : int =
  match List.assoc_opt loop_id cfg.loop_unroll_overrides with
  | Some n -> n
  | None -> cfg.loop_unroll
