(** Alarms: warnings issued in checking mode for each operator application
    that may give an error on the concrete level (Sect. 5.3).

    "In all cases, the analysis goes on with the non-erroneous concrete
    results (overflowing integers are wiped out and not considered modulo,
    thus following the end-user intended semantics)." *)

module F = Astree_frontend

type kind =
  | Int_overflow        (** integer wrap-around wrt the end-user semantics *)
  | Div_by_zero
  | Mod_by_zero
  | Out_of_bounds       (** array subscript possibly outside bounds *)
  | Float_overflow      (** result possibly exceeds the largest finite float *)
  | Invalid_op          (** NaN production, sqrt of negative, ... *)
  | Shift_range
  | Assert_failure      (** user [__astree_assert] possibly violated *)

let kind_to_string = function
  | Int_overflow -> "integer overflow"
  | Div_by_zero -> "division by zero"
  | Mod_by_zero -> "modulo by zero"
  | Out_of_bounds -> "out-of-bounds array access"
  | Float_overflow -> "float overflow"
  | Invalid_op -> "invalid operation"
  | Shift_range -> "shift out of range"
  | Assert_failure -> "assertion failure"

let pp_kind ppf k = Fmt.string ppf (kind_to_string k)

(** Provenance (ISSUE 5): why and where the alarm fired — the iterator's
    inlining stack at the alarm point, the abstract domain whose
    approximation the alarmed check ran in, and the abstract values of
    the offending operands.  Diagnostic payload only: dedup, compare and
    [pp] (hence the parallel fingerprint) ignore it. *)
type prov = {
  p_chain : string list;  (** innermost first, main last *)
  p_domain : string;
  p_operands : (string * string) list;
}

type t = {
  a_kind : kind;
  a_loc : F.Loc.t;
  a_msg : string;
  a_prov : prov option;
}

let pp ppf a =
  Fmt.pf ppf "%a: ALARM: %a%s" F.Loc.pp a.a_loc pp_kind a.a_kind
    (if a.a_msg = "" then "" else ": " ^ a.a_msg)

(** The --explain rendering: the [pp] line followed by indented
    provenance (call chain, raising domain, operand values). *)
let pp_explain ppf a =
  pp ppf a;
  match a.a_prov with
  | None -> Fmt.pf ppf "@.    (no provenance recorded)"
  | Some p ->
      Fmt.pf ppf "@.    in: %s"
        (match p.p_chain with
        | [] -> "<toplevel>"
        | chain -> String.concat " <- " chain);
      Fmt.pf ppf "@.    domain: %s" p.p_domain;
      List.iter
        (fun (e, v) -> Fmt.pf ppf "@.    %s = %s" e v)
        p.p_operands

let compare (a : t) (b : t) =
  let c = F.Loc.compare a.a_loc b.a_loc in
  if c <> 0 then c else Stdlib.compare a.a_kind b.a_kind

(** Alarm collector: alarms are deduplicated by (location, kind), so a
    program point reanalyzed many times (polyvariant calls, loop
    iterations) reports once, as the paper's alarm counts do.  [chain]
    mirrors the iterator's inlining stack (innermost first); the
    iterator maintains it so every report picks up its calling context
    for free. *)
type collector = {
  mutable alarms : (kind * F.Loc.t, t) Hashtbl.t;
  mutable enabled : bool;  (** false in iteration mode, true in checking *)
  mutable chain : string list;
}

let make_collector () =
  { alarms = Hashtbl.create 64; enabled = false; chain = [] }

let report ?(domain = "interval") ?(operands = []) (c : collector)
    (kind : kind) (loc : F.Loc.t) (msg : string) : unit =
  if c.enabled then
    let key = (kind, loc) in
    if not (Hashtbl.mem c.alarms key) then
      Hashtbl.replace c.alarms key
        {
          a_kind = kind;
          a_loc = loc;
          a_msg = msg;
          a_prov =
            Some
              { p_chain = c.chain; p_domain = domain; p_operands = operands };
        }

let to_list (c : collector) : t list =
  Hashtbl.fold (fun _ a acc -> a :: acc) c.alarms [] |> List.sort compare

let count (c : collector) : int = Hashtbl.length c.alarms

(** Drop every recorded alarm (the enabled flag and chain are kept).
    Used by parallel workers to isolate the alarms of each job. *)
let reset (c : collector) : unit = c.alarms <- Hashtbl.create 64

(** Merge alarms produced elsewhere (a worker process) into [c],
    irrespective of [c.enabled]: the emitting job already ran under the
    right checking mode.  Keeps the first alarm per (kind, location), so
    merging job deltas in job order reproduces the sequential
    deduplication exactly — including which provenance survives. *)
let absorb (c : collector) (delta : t list) : unit =
  List.iter
    (fun (a : t) ->
      let key = (a.a_kind, a.a_loc) in
      if not (Hashtbl.mem c.alarms key) then Hashtbl.replace c.alarms key a)
    delta

(** Capture sections, used by the summary cache to isolate the alarms of
    one function call.  [capture] swaps in a fresh table (keeping the
    mode flag); [release] puts the saved table back, absorbs the alarms
    recorded meanwhile (first-in wins, exactly the sequential policy)
    and returns them.  Captures nest like a stack. *)
type capture = (kind * F.Loc.t, t) Hashtbl.t

let capture (c : collector) : capture =
  let saved = c.alarms in
  c.alarms <- Hashtbl.create 16;
  saved

let release (c : collector) (saved : capture) : t list =
  let fresh = to_list c in
  c.alarms <- saved;
  absorb c fresh;
  fresh
