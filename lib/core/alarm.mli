(** Alarms: warnings issued in checking mode for each operator
    application that may give an error on the concrete level
    (Sect. 5.3).  The analysis continues with the non-erroneous concrete
    results. *)

type kind =
  | Int_overflow   (** integer wrap-around wrt the end-user semantics *)
  | Div_by_zero
  | Mod_by_zero
  | Out_of_bounds  (** array subscript possibly outside bounds *)
  | Float_overflow (** result possibly beyond the largest finite float *)
  | Invalid_op     (** NaN production, sqrt of a negative, ... *)
  | Shift_range
  | Assert_failure (** user [__astree_assert] possibly violated *)

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit

(** Provenance: the iterator's inlining stack at the alarm point
    (innermost first), the abstract domain whose approximation raised
    the check ("interval", "octagon", "clocked", "ellipsoid",
    "decision-tree"), and printed abstract values of the offending
    operands.  Purely diagnostic: {!compare}, dedup and {!pp} ignore
    it, so fingerprints and alarm counts are unaffected. *)
type prov = {
  p_chain : string list;
  p_domain : string;
  p_operands : (string * string) list;
}

type t = {
  a_kind : kind;
  a_loc : Astree_frontend.Loc.t;
  a_msg : string;
  a_prov : prov option;
}

val pp : Format.formatter -> t -> unit

val pp_explain : Format.formatter -> t -> unit
(** The [--explain] rendering: the {!pp} line plus indented call chain,
    raising domain and operand values. *)

val compare : t -> t -> int

(** Alarm collector: alarms are deduplicated by (location, kind), so a
    program point reanalyzed many times reports once. *)
type collector = {
  mutable alarms : (kind * Astree_frontend.Loc.t, t) Hashtbl.t;
  mutable enabled : bool;
      (** false in iteration mode, true in checking mode (Sect. 5.3) *)
  mutable chain : string list;
      (** current inlining context, innermost first; maintained by the
          iterator, recorded into each alarm's provenance *)
}

val make_collector : unit -> collector

(** Record an alarm (no-op when the collector is disabled).  [domain]
    defaults to ["interval"], the base domain of every check;
    [operands] are (expression, abstract value) pairs, printed. *)
val report :
  ?domain:string ->
  ?operands:(string * string) list ->
  collector ->
  kind ->
  Astree_frontend.Loc.t ->
  string ->
  unit

val to_list : collector -> t list
val count : collector -> int

(** Drop every recorded alarm, keeping the enabled flag.  Used by
    parallel workers to isolate the alarms of each job. *)
val reset : collector -> unit

(** Merge alarms recorded elsewhere (a worker process) into the
    collector, first-in wins per (kind, location), irrespective of the
    enabled flag. *)
val absorb : collector -> t list -> unit

(** Capture section: [capture] diverts subsequent reports into a fresh
    table; [release] restores the previous table, absorbs the diverted
    alarms back (first-in wins) and returns them.  Used by the summary
    cache to record the alarms of one function call; sections nest. *)
type capture

val capture : collector -> capture
val release : collector -> capture -> t list
