(** Parametrized packing (Sect. 7.2).

    Relational domains cannot be applied to all global variables
    simultaneously; the analyzer determines, once and for all before the
    analysis starts, small packs of variables:

    - octagon packs (7.2.1): one pack per syntactic block, containing the
      variables that appear in a linear assignment or test within the
      block (ignoring sub-blocks);
    - ellipsoid packs: one per digital-filter assignment
      [x := a*y - b*z + t] with 0 < b < 1 and a^2 < 4b (Sect. 6.2.3);
    - decision-tree packs (7.2.3): tentative packs from boolean/numeric
      interaction, confirmed when a numerical assignment is found under a
      branch depending on the boolean, with a hard bound on the number of
      booleans per pack. *)

module F = Astree_frontend
open F.Tast

type oct_pack = {
  op_id : int;
  op_vars : var array;
  op_index : (int, int) Hashtbl.t;
      (** variable id -> position in [op_vars], built once at pack
          creation so membership checks are O(1) instead of scans *)
}

let mk_oct_pack ~id (vars : var array) : oct_pack =
  let index = Hashtbl.create (max 1 (Array.length vars)) in
  Array.iteri (fun k v -> Hashtbl.replace index v.v_id k) vars;
  { op_id = id; op_vars = vars; op_index = index }

let op_mem (op : oct_pack) (v : var) : bool = Hashtbl.mem op.op_index v.v_id

type ell_pack = {
  ep_id : int;
  ep_a : float;
  ep_b : float;
  ep_fkind : F.Ctypes.fkind;
  ep_vars : var array;
  ep_x : var;  (** the filter output X' *)
  ep_y : var;  (** the filter state X *)
  ep_z : var;  (** the filter state Y *)
}

type dt_pack = { dp_id : int; dp_bools : var array; dp_nums : var array }

type t = {
  octs : oct_pack list;
  ells : ell_pack list;
  dts : dt_pack list;
}

let empty = { octs = []; ells = []; dts = [] }

(* ------------------------------------------------------------------ *)
(* Syntactic linear forms (constant coefficients)                      *)
(* ------------------------------------------------------------------ *)

(** [syntactic_linear e] returns [Some (terms, const_bound)] when [e] is
    a +,-,* combination of scalar variables and constants; coefficients
    are exact floats.  Non-linear sub-expressions make the whole
    extraction fail. *)
let syntactic_linear (e : expr) : ((var * float) list * float) option =
  let rec go (e : expr) : ((var * float) list * float) option =
    match e.edesc with
    | Eint n -> Some ([], float_of_int n)
    | Efloat f -> Some ([], f)
    | Elval { ldesc = Lvar v; _ } when F.Ctypes.is_scalar v.v_ty ->
        Some ([ (v, 1.0) ], 0.0)
    | Eunop (Neg, a) ->
        Option.map
          (fun (ts, c) -> (List.map (fun (v, k) -> (v, -.k)) ts, -.c))
          (go a)
    | Ebinop (Add, a, b) -> (
        match (go a, go b) with
        | Some (ta, ca), Some (tb, cb) -> Some (ta @ tb, ca +. cb)
        | _ -> None)
    | Ebinop (Sub, a, b) -> (
        match (go a, go b) with
        | Some (ta, ca), Some (tb, cb) ->
            Some (ta @ List.map (fun (v, k) -> (v, -.k)) tb, ca -. cb)
        | _ -> None)
    | Ebinop (Mul, a, b) -> (
        match (go a, go b) with
        | Some ([], ka), Some (tb, cb) ->
            Some (List.map (fun (v, k) -> (v, ka *. k)) tb, ka *. cb)
        | Some (ta, ca), Some ([], kb) ->
            Some (List.map (fun (v, k) -> (v, k *. kb)) ta, ca *. kb)
        | _ -> None)
    | Ecast (s, a) ->
        (* only kind-preserving casts keep the form linear; an int<->float
           conversion truncates or rounds *)
        let same_class =
          match (s, a.ety) with
          | F.Ctypes.Tint _, F.Ctypes.Tint _ -> true
          | F.Ctypes.Tfloat _, F.Ctypes.Tfloat _ -> true
          | _ -> false
        in
        if same_class then go a else None
    | _ -> None
  in
  match go e with
  | Some (terms, c) ->
      (* merge duplicate variables *)
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (v, k) ->
          let cur = Option.value (Hashtbl.find_opt tbl v.v_id) ~default:(v, 0.0) in
          Hashtbl.replace tbl v.v_id (v, snd cur +. k))
        terms;
      let merged =
        Hashtbl.fold (fun _ (v, k) acc -> if k = 0.0 then acc else (v, k) :: acc)
          tbl []
      in
      Some (merged, c)
  | None -> None

let is_linear_expr e = syntactic_linear e <> None

(* Variables of an expression, scalars only. *)
let scalar_vars (e : expr) : var list =
  VarSet.elements (expr_vars e VarSet.empty)
  |> List.filter (fun v -> F.Ctypes.is_scalar v.v_ty)

let is_bool_var (v : var) = F.Ctypes.is_bool v.v_ty

let is_num_var (v : var) =
  F.Ctypes.is_scalar v.v_ty && not (is_bool_var v)

(* ------------------------------------------------------------------ *)
(* Octagon packing (7.2.1)                                             *)
(* ------------------------------------------------------------------ *)

let octagon_packs ~(max_pack : int) (p : program) : oct_pack list =
  let packs = ref [] in
  let next = ref 0 in
  let add_pack (vars : var list) =
    (* numeric variables only, deduplicated, small *)
    let vars =
      List.sort_uniq Var.compare (List.filter is_num_var vars)
    in
    let vars = List.filteri (fun i _ -> i < max_pack) vars in
    if List.length vars >= 2 then begin
      let arr = Array.of_list vars in
      (* skip duplicates of an existing pack *)
      let dup =
        List.exists
          (fun op ->
            Array.length op.op_vars = Array.length arr
            && Array.for_all2 Var.equal op.op_vars arr)
          !packs
      in
      if not dup then begin
        packs := mk_oct_pack ~id:!next arr :: !packs;
        incr next
      end
    end
  in
  (* one pack per syntactic block: collect variables of linear
     assignments and of linear test conditions at that block's level,
     ignoring what happens in sub-blocks *)
  let rec do_block (b : block) : unit =
    let here = ref [] in
    List.iter
      (fun (s : stmt) ->
        match s.sdesc with
        | Sassign ({ ldesc = Lvar x; _ }, e) when is_num_var x ->
            if is_linear_expr e then here := x :: scalar_vars e @ !here
        | Slocal (x, Some e) when is_num_var x ->
            if is_linear_expr e then here := x :: scalar_vars e @ !here
        | Sif (c, a, b') ->
            (match c.edesc with
            | Ebinop ((Lt | Gt | Le | Ge | Eq | Ne), l, r)
              when is_linear_expr l && is_linear_expr r ->
                here := scalar_vars c @ !here
            | _ -> ());
            do_block a;
            do_block b'
        | Swhile (_, c, body) ->
            (match c.edesc with
            | Ebinop ((Lt | Gt | Le | Ge | Eq | Ne), l, r)
              when is_linear_expr l && is_linear_expr r ->
                here := scalar_vars c @ !here
            | _ -> ());
            do_block body
        | _ -> ())
      b;
    add_pack !here
  in
  List.iter (fun (_, fd) -> do_block fd.fd_body) p.p_funs;
  List.rev !packs

(* ------------------------------------------------------------------ *)
(* Ellipsoid packing (6.2.3)                                           *)
(* ------------------------------------------------------------------ *)

let ellipsoid_packs (p : program) : ell_pack list =
  let packs = ref [] in
  let next = ref 0 in
  let consider (x : var) (e : expr) =
    match (x.v_ty, syntactic_linear e) with
    | F.Ctypes.Tscalar (F.Ctypes.Tfloat fk), Some (terms, _c) -> (
        (* looking for x := a.y - b.z + t where t may itself contain
           other variables: accept 2 principal terms with the remaining
           terms folded into t *)
        match terms with
        | _ when List.length terms < 2 -> ()
        | terms ->
            (* try all ordered pairs (y |-> a, z |-> -b); keep only pairs
               satisfying the conditions of Prop. 1 and prefer the pair
               with the largest |a| (the actual filter feedback term) *)
            let candidates = ref [] in
            List.iter
              (fun (y, a) ->
                List.iter
                  (fun (z, nb) ->
                    let b = -.nb in
                    if
                      (not (Var.equal y z))
                      && (not (Var.equal x y))
                      && (not (Var.equal x z))
                      && Astree_domains.Ellipsoid.valid_coeffs ~a ~b
                    then candidates := (y, a, z, b) :: !candidates)
                  terms)
              terms;
            (* keep every valid candidate pair: only the pair matching the
               actual filter recurrence will accumulate a stable ellipse,
               the others stay at top, which is sound *)
            List.iter
              (fun (y, a, z, b) ->
                let dup =
                  List.exists
                    (fun ep ->
                      ep.ep_a = a && ep.ep_b = b && Var.equal ep.ep_x x
                      && Var.equal ep.ep_y y && Var.equal ep.ep_z z)
                    !packs
                in
                if not dup then begin
                  let vars =
                    List.sort_uniq Var.compare [ x; y; z ] |> Array.of_list
                  in
                  packs :=
                    {
                      ep_id = !next;
                      ep_a = a;
                      ep_b = b;
                      ep_fkind = fk;
                      ep_vars = vars;
                      ep_x = x;
                      ep_y = y;
                      ep_z = z;
                    }
                    :: !packs;
                  incr next
                end)
              (List.rev !candidates))
    | _ -> ()
  in
  List.iter
    (fun (_, fd) ->
      iter_stmts
        (fun s ->
          match s.sdesc with
          | Sassign ({ ldesc = Lvar x; _ }, e) -> consider x e
          | Slocal (x, Some e) -> consider x e
          | _ -> ())
        fd.fd_body)
    p.p_funs;
  List.rev !packs

(* ------------------------------------------------------------------ *)
(* Decision-tree packing (7.2.3)                                       *)
(* ------------------------------------------------------------------ *)

type mutable_dt = {
  mutable bools : VarSet.t;
  mutable nums : VarSet.t;
  mutable confirmed : bool;
}

let decision_tree_packs ~(max_bools : int) ~(max_nums : int) (p : program) :
    dt_pack list =
  let packs : mutable_dt list ref = ref [] in
  let new_pack bools nums =
    packs := { bools; nums; confirmed = false } :: !packs
  in
  (* pass 1: tentative packs from boolean/numeric interactions *)
  List.iter
    (fun (_, fd) ->
      iter_stmts
        (fun s ->
          match s.sdesc with
          | Sassign ({ ldesc = Lvar x; _ }, e) | Slocal (x, Some e) ->
              let vs = scalar_vars e in
              let bools_in_e = List.filter is_bool_var vs in
              let nums_in_e = List.filter is_num_var vs in
              if is_bool_var x && nums_in_e <> [] then
                (* boolean depends on numeric *)
                new_pack (VarSet.of_list [ x ])
                  (VarSet.of_list
                     (List.filteri (fun i _ -> i < max_nums) nums_in_e))
              else if is_num_var x && bools_in_e <> [] then
                new_pack (VarSet.of_list bools_in_e) (VarSet.of_list [ x ])
              else if is_bool_var x && bools_in_e <> [] then
                (* complex boolean dependences: add x to all packs
                   containing a variable of e *)
                List.iter
                  (fun pk ->
                    if
                      List.exists (fun b -> VarSet.mem b pk.bools) bools_in_e
                      && VarSet.cardinal pk.bools < max_bools
                    then pk.bools <- VarSet.add x pk.bools)
                  !packs
          | _ -> ())
        fd.fd_body)
    p.p_funs;
  (* pass 2: confirmation — a numerical assignment inside a branch
     depending on a pack boolean *)
  let rec walk (guard_bools : VarSet.t) (b : block) : unit =
    List.iter
      (fun (s : stmt) ->
        let confirm_used (used : VarSet.t) =
          if not (VarSet.is_empty guard_bools) then
            List.iter
              (fun pk ->
                if
                  VarSet.exists (fun x -> VarSet.mem x pk.nums) used
                  && VarSet.exists (fun b -> VarSet.mem b guard_bools) pk.bools
                then pk.confirmed <- true)
              !packs
        in
        match s.sdesc with
        | Sassign (lv, e) ->
            confirm_used (expr_vars e (lval_vars lv VarSet.empty))
        | Slocal (_, Some e) -> confirm_used (expr_vars e VarSet.empty)
        | Sif (c, a, b') ->
            let cond_bools =
              VarSet.of_list (List.filter is_bool_var (scalar_vars c))
            in
            let inner = VarSet.union guard_bools cond_bools in
            walk inner a;
            walk inner b'
        | Swhile (_, _, body) -> walk guard_bools body
        | _ -> ())
      b
  in
  List.iter (fun (_, fd) -> walk VarSet.empty fd.fd_body) p.p_funs;
  (* keep confirmed packs, bounded, deduplicated *)
  let confirmed = List.filter (fun pk -> pk.confirmed) !packs in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let next = ref 0 in
  List.iter
    (fun pk ->
      let bools =
        VarSet.elements pk.bools |> List.filteri (fun i _ -> i < max_bools)
      in
      let nums =
        VarSet.elements pk.nums |> List.filteri (fun i _ -> i < max_nums)
      in
      let key =
        ( List.map (fun v -> v.v_id) bools,
          List.map (fun v -> v.v_id) nums )
      in
      if bools <> [] && nums <> [] && not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out :=
          {
            dp_id = !next;
            dp_bools = Array.of_list bools;
            dp_nums = Array.of_list nums;
          }
          :: !out;
        incr next
      end)
    confirmed;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Determine all packs for a program under a configuration.  When
    [cfg.useful_packs_only] is set, octagon packs not in the useful list
    are dropped (Sect. 7.2.2: "it is perfectly safe to use a list of
    useful packs output by a previous analysis"). *)
let compute (cfg : Config.t) (p : program) : t =
  let octs =
    if cfg.Config.use_octagons then
      octagon_packs ~max_pack:cfg.Config.max_octagon_pack p
    else []
  in
  let octs =
    match cfg.Config.useful_packs_only with
    | Some (_tag, ids) -> List.filter (fun op -> List.mem op.op_id ids) octs
    | None -> octs
  in
  let ells = if cfg.Config.use_ellipsoids then ellipsoid_packs p else [] in
  let dts =
    if cfg.Config.use_decision_trees then
      decision_tree_packs ~max_bools:cfg.Config.max_dtree_bools
        ~max_nums:cfg.Config.max_dtree_nums p
    else []
  in
  (* multi-task interference: a variable another task may overwrite
     between any two statements cannot soundly carry relational
     invariants across statements, so packs touching a shared variable
     are dropped — reads of shared variables stay sound through the
     interval join with the rely set in [Transfer.cell_itv] *)
  let octs, ells, dts =
    match cfg.Config.conc_shared with
    | [] -> (octs, ells, dts)
    | shared ->
        let is_shared (v : var) = List.mem v.v_name shared in
        ( List.filter
            (fun op -> not (Array.exists is_shared op.op_vars))
            octs,
          List.filter
            (fun ep -> not (Array.exists is_shared ep.ep_vars))
            ells,
          List.filter
            (fun dp ->
              (not (Array.exists is_shared dp.dp_bools))
              && not (Array.exists is_shared dp.dp_nums))
            dts )
  in
  (* degradation ladder (Astree_robust.Degrade): keep only packs of at
     most [k] variables.  Dropping a pack loses precision but never
     soundness — relational invariants are a refinement of the interval
     environment, which is always maintained *)
  match cfg.Config.shed_packs_above with
  | None -> { octs; ells; dts }
  | Some k ->
      {
        octs = List.filter (fun op -> Array.length op.op_vars <= k) octs;
        ells = List.filter (fun ep -> Array.length ep.ep_vars <= k) ells;
        dts =
          List.filter
            (fun dp -> Array.length dp.dp_bools + Array.length dp.dp_nums <= k)
            dts;
      }

let stats (t : t) : string =
  Fmt.str "octagon packs: %d, ellipsoid packs: %d, decision-tree packs: %d"
    (List.length t.octs) (List.length t.ells) (List.length t.dts)
