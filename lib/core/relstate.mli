(** The relational component of the abstract state: one octagon per
    octagon pack, one ellipsoid element per filter pack, one decision
    tree per boolean pack, keyed by pack id in sharable functional maps
    so that unmodified packs are shared across joins (Sect. 7.2.1). *)

module D = Astree_domains

type t = {
  octs : D.Octagon.t Ptmap.t;
  ells : D.Ellipsoid.t Ptmap.t;
  dts : D.Decision_tree.t Ptmap.t;
}

(** All packs at top. *)
val top : Packing.t -> t

val empty : t

(** Copy every octagon so no pack value is physically shared with the
    original (ellipsoids and decision trees are immutable and stay
    shared).  Required before two OCaml 5 domains may touch sibling
    states concurrently: the octagon closure cache mutates in place. *)
val unshare : t -> t

(** {1 Lattice operations} (pack-wise with sharing short-cuts) *)

val join : t -> t -> t
val meet : t -> t -> t
val widen : thresholds:D.Thresholds.t -> t -> t -> t
val narrow : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

(** {1 Pack lookups} (linear scans; prefer the indexed lookups of
    {!Transfer}) *)

val oct_packs_of : Packing.t -> Astree_frontend.Tast.var -> Packing.oct_pack list
val ell_packs_of : Packing.t -> Astree_frontend.Tast.var -> Packing.ell_pack list
val dt_packs_of : Packing.t -> Astree_frontend.Tast.var -> Packing.dt_pack list

(** {1 Invariant census (Sect. 9.4.1)} *)

type census = {
  oct_sum_constraints : int;   (** a <= x + y <= b assertions *)
  oct_diff_constraints : int;  (** a <= x - y <= b assertions *)
  ellipsoid_constraints : int;
  dtree_assertions : int;
}

val census : t -> census
