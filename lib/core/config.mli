(** End-user parameters of the analyzer (Sect. 3.2, 7): the initial
    design is by specialists, the adaptation to each program of the
    family is by choice of these parameters (and most of the complex
    ones are automated, Sect. 7.2). *)

type t = {
  (* ---- domains on/off (used by the refinement-ladder experiments) -- *)
  use_clocked : bool;        (** the clocked domain of Sect. 6.2.1 *)
  use_octagons : bool;       (** Sect. 6.2.2 *)
  use_ellipsoids : bool;     (** Sect. 6.2.3 *)
  use_decision_trees : bool; (** Sect. 6.2.4 *)
  use_linearization : bool;  (** symbolic manipulation, Sect. 6.3 *)
  (* ---- iteration strategy (Sect. 7.1) ------------------------------ *)
  widening_thresholds : Astree_domains.Thresholds.t;
      (** threshold set for widening (Sect. 7.1.2) *)
  delay_widening : int;
      (** iterations with plain unions before widening (Sect. 7.1.3) *)
  widening_fairness : int;
      (** extra join rounds granted while variables keep stabilizing
          (the fairness condition of Sect. 7.1.3) *)
  loop_unroll : int;         (** semantic unrolling factor (Sect. 7.1.1) *)
  loop_unroll_overrides : (int * int) list;
      (** per-loop unrolling factors, keyed by loop id *)
  narrowing_iterations : int;
      (** decreasing iterations after stabilization (Sect. 5.5) *)
  float_iteration_epsilon : float;
      (** the perturbation epsilon of Sect. 7.1.4 *)
  partitioned_functions : string list;
      (** functions analyzed with trace partitioning (Sect. 7.1.5) *)
  max_partitions : int;      (** bound on simultaneous execution traces *)
  (* ---- packing (Sect. 7.2) ----------------------------------------- *)
  max_octagon_pack : int;    (** maximum variables per octagon pack *)
  max_dtree_bools : int;
      (** booleans per decision-tree pack; "setting this parameter to
          three yields an efficient and precise analysis" (Sect. 7.2.3) *)
  max_dtree_nums : int;
  useful_packs_only : (string * int list) option;
      (** reuse a useful-octagon-packs list from a previous analysis
          (Sect. 7.2.2) *)
  (* ---- model of the environment (Sect. 4) -------------------------- *)
  max_clock : int;
      (** maximal number of clock ticks (maximal continuous operating
          time over the clock period) *)
  (* ---- memory-domain implementation (Sect. 6.1.2 ablation) --------- *)
  expand_array_max : int;
      (** arrays up to this size are expanded cell-per-cell; larger ones
          are shrunk into a single cell (Sect. 6.1.1) *)
  naive_environments : bool;
      (** naive array environments, for the E5 ablation only *)
  (* ---- parallel analysis (Astree_parallel) ------------------------- *)
  jobs : int;
      (** worker processes for the parallel subsystem; [1] = sequential *)
  par_backend : backend;
      (** worker pool flavour: [`Fork] processes, [`Domains] OCaml 5
          shared-memory domains, [`Auto] (default) domains degrading to
          fork when fault injection or a budget is armed.  Never
          affects results *)
  (* ---- incremental analysis (Astree_incremental) ------------------- *)
  summary_cache : cache;
      (** function-summary memoization: [Cache_mem] within one run,
          [Cache_dir d] persisted in [d] across runs; never affects
          results, only their cost *)
  (* ---- resource budget (Astree_robust) ------------------------------ *)
  timeout : float;   (** wall-clock budget in seconds; [0.] = unbounded *)
  max_mem_mb : int;  (** major-heap watermark in MiB; [0] = unbounded *)
  shed_packs_above : int option;
      (** drop relational packs wider than [k] variables to intervals;
          set by the degradation ladder *)
  (* ---- multi-task interference analysis (Astree_conc) --------------- *)
  conc_shared : string list;
      (** shared variables of a multi-task analysis, excluded from
          relational packs (their relations would be stale under
          interference); [[]] — the default — for single-task runs *)
  conc_rely_digest : string;
      (** digest of the installed interference (rely) map, [""] outside
          multi-task runs; folded into the config fingerprint so cached
          summaries self-identify their interference round *)
}

and cache = Cache_off | Cache_mem | Cache_dir of string
and backend = [ `Fork | `Domains | `Auto ]

val backend_to_string : backend -> string
val backend_of_string : string -> backend option

(** All domains and strategies on — the fully refined analyzer. *)
val default : t

(** The analyzer of [5] the paper started from: intervals, the clocked
    domain and widening with thresholds, none of this paper's
    refinements. *)
val baseline : t

(** Plain interval analysis, the Sect. 2 starting point. *)
val intervals_only : t

(** Unrolling factor for a given loop id. *)
val unroll_for : t -> int -> int

(** Whether any summary caching (in-memory or persistent) is on. *)
val cache_enabled : t -> bool
