(** The full abstract state: memory environment, relational packs and
    the hidden clock variable of the clocked domain (Sect. 6.2.1). *)

type t = {
  bot : bool;
  env : Env.t;
  rel : Relstate.t;
  clock : Astree_domains.Itv.t;  (** range of the hidden clock counter *)
}

val bottom : t
val is_bot : t -> bool

val make :
  env:Env.t -> rel:Relstate.t -> clock:Astree_domains.Itv.t -> t

val join : t -> t -> t
val meet : t -> t -> t
val widen : thresholds:Astree_domains.Thresholds.t -> t -> t -> t
val narrow : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

(** Break physical sharing of mutable pack values (octagons) so the
    state can be handed to a concurrently running OCaml 5 domain; see
    {!Relstate.unshare}.  Semantically the identity. *)
val unshare : t -> t

(** The floating iteration perturbation F-hat of Sect. 7.1.4: enlarge
    every float interval bound by a relative epsilon. *)
val perturb : float -> t -> t
