(** Top-level analysis driver: preprocessing phase (Sect. 5.1) followed by
    the analysis phase (Sect. 5.2), producing alarms, statistics and the
    saved loop invariants. *)

module F = Astree_frontend
module D = Astree_domains
module Metrics = Astree_obs.Metrics
module Trace = Astree_obs.Trace

(* Exception-safe phase span: the end event is emitted on every exit so
   the --trace file always balances, even when the frontend raises. *)
let in_span (kind : string) (f : unit -> 'a) : 'a =
  if not !Trace.enabled then f ()
  else begin
    Trace.span_begin kind;
    Fun.protect ~finally:(fun () -> Trace.span_end kind) f
  end

(** Summary-cache effectiveness counters, present only when a cache was
    enabled for the run — [pp_stats] output is byte-identical to the
    cache-less analyzer otherwise. *)
type cache_stats = {
  c_hits : int;
  c_misses : int;
  c_entries : int;     (** summaries in the table after the run *)
  c_loaded : int;      (** summaries read back from the on-disk store *)
  c_load_time : float; (** seconds spent loading the store *)
  c_save_time : float; (** seconds spent saving the store *)
}

(** Record of a degraded run, filled by [Astree_robust.Degrade] when a
    resource budget tripped (or the run was interrupted) and the
    analysis finished with shed precision.  [None] for ordinary runs. *)
type degraded = {
  dg_reason : string;  (** "timeout", "memory" or "interrupted" *)
  dg_level : int;      (** ladder step reached, 1..3 (0 = interrupted) *)
  dg_shed_oct_packs : int;
  dg_shed_ell_packs : int;
  dg_shed_dt_packs : int;
  dg_partitioning_disabled : bool;
  dg_widening_accelerated : bool;
}

type stats = {
  s_globals_before : int;  (** globals before unused-variable deletion *)
  s_globals_after : int;
  s_cells : int;           (** abstract cells after array expansion *)
  s_stmts : int;           (** program size in IR statements *)
  s_oct_packs : int;
  s_oct_useful : int;      (** packs that improved precision (7.2.2) *)
  s_ell_packs : int;
  s_dt_packs : int;
  s_time : float;          (** analysis wall-clock seconds *)
  s_cache : cache_stats option;
  s_degraded : degraded option;
}

type result = {
  r_alarms : Alarm.t list;
  r_final : Astate.t;
  r_actx : Transfer.actx;
  r_stats : stats;
}

let n_alarms r = List.length r.r_alarms

(** The list of useful octagon packs, reusable via
    [Config.useful_packs_only] (Sect. 7.2.2). *)
let useful_octagon_packs (r : result) : int list =
  Hashtbl.fold (fun id () acc -> id :: acc) r.r_actx.Transfer.oct_useful []
  |> List.sort Int.compare

(** Installed by [Astree_parallel.Scheduler.register]: analyses with
    [Config.jobs > 1] are routed through the parallel subsystem.  A hook
    rather than a direct call so the core library does not depend on the
    process-pool machinery.  The driver receives the run's session and
    must build its context with it. *)
let parallel_driver :
    (Transfer.session -> Config.t -> F.Tast.program -> result) option ref =
  ref None

(** Installed by [Astree_incremental.Summary.register]: when
    [Config.cache_enabled cfg], the driver fingerprints the program,
    attaches the summary table to the session (loading the on-disk store
    if configured), runs the wrapped analysis and fills [s_cache].  Same
    hook pattern as [parallel_driver], and composable with it: the
    cache driver wraps whichever execution path the inner thunk picks. *)
let cache_driver :
    (Transfer.session -> Config.t -> F.Tast.program -> (unit -> result) ->
    result)
    option
    ref =
  ref None

(** Analyze a typed program against an already-prepared context (the
    parallel scheduler builds and pre-fills the context before forking
    its workers, then runs the iterator through this entry point). *)
let analyze_prepared (actx : Transfer.actx) (p : F.Tast.program) : result =
  let t0 = Unix.gettimeofday () in
  actx.Transfer.session.Transfer.ses_live <- Some actx;
  let final = in_span "phase.iterate" (fun () -> Iterator.run actx) in
  let t1 = Unix.gettimeofday () in
  let alarms = Alarm.to_list actx.Transfer.alarms in
  (* point-in-time program/result measures for the --metrics report
     (gauges: coordinator-set, excluded from worker deltas) *)
  Metrics.set_gauge "analysis.cells" (Cell.count actx.Transfer.intern);
  Metrics.set_gauge "analysis.stmts" (F.Tast.program_size p);
  Metrics.set_gauge "analysis.oct_packs"
    (List.length actx.Transfer.packs.Packing.octs);
  Metrics.set_gauge "analysis.oct_useful"
    (Hashtbl.length actx.Transfer.oct_useful);
  Metrics.set_gauge "analysis.ell_packs"
    (List.length actx.Transfer.packs.Packing.ells);
  Metrics.set_gauge "analysis.dt_packs"
    (List.length actx.Transfer.packs.Packing.dts);
  Metrics.set_gauge "analysis.alarms" (List.length alarms);
  {
    r_alarms = alarms;
    r_final = final;
    r_actx = actx;
    r_stats =
      {
        s_globals_before = List.length p.F.Tast.p_globals;
        s_globals_after = List.length p.F.Tast.p_globals;
        s_cells = Cell.count actx.Transfer.intern;
        s_stmts = F.Tast.program_size p;
        s_oct_packs = List.length actx.Transfer.packs.Packing.octs;
        s_oct_useful = Hashtbl.length actx.Transfer.oct_useful;
        s_ell_packs = List.length actx.Transfer.packs.Packing.ells;
        s_dt_packs = List.length actx.Transfer.packs.Packing.dts;
        s_time = t1 -. t0;
        s_cache = None;
        s_degraded = None;
      };
  }

(** Analyze a typed program, dispatching to the parallel subsystem when
    [cfg.jobs > 1] and a driver is registered, and wrapping the run in
    the summary-cache driver when caching is enabled.  With the cache
    on, cells are pre-filled in program order even sequentially, so the
    cell numbering (which summary keys depend on) is identical across
    sequential, parallel, cold and warm runs.  [?session] threads an
    existing session through (the daemon passes one per request); a
    fresh one is created otherwise, so concurrent analyses never share
    hooks. *)
let analyze ?session ?(cfg = Config.default) (p : F.Tast.program) : result =
  let session =
    match session with Some s -> s | None -> Transfer.new_session ()
  in
  let core () =
    match !parallel_driver with
    | Some driver when cfg.Config.jobs > 1 -> driver session cfg p
    | _ ->
        let actx = Transfer.make_actx ~session cfg p in
        if Config.cache_enabled cfg || Option.is_some session.Transfer.ses_memo
        then
          Transfer.prefill_cells actx;
        analyze_prepared actx p
  in
  in_span "phase.analyze" (fun () ->
      match !cache_driver with
      | Some driver when Config.cache_enabled cfg ->
          driver session cfg p core
      | _ -> core ())

(** Frontend pipeline: preprocess, parse, link, type-check, simplify. *)
let compile ?(target = F.Ctypes.default_target) ?(main = "main")
    (sources : (string * string) list) : F.Tast.program * F.Simplify.stats =
  let ast = in_span "phase.parse" (fun () -> F.Linker.parse_and_link sources) in
  let p =
    in_span "phase.typecheck" (fun () ->
        F.Typecheck.elab_program ~target ~main ast)
  in
  in_span "phase.simplify" (fun () -> F.Simplify.run p)

(** Analyze C sources given as (filename, contents) pairs. *)
let analyze_sources ?(cfg = Config.default) ?(main = "main")
    (sources : (string * string) list) : result =
  let p, sstats = compile ~main sources in
  let r = analyze ~cfg p in
  {
    r with
    r_stats =
      {
        r.r_stats with
        s_globals_before = sstats.F.Simplify.globals_before;
        s_globals_after = sstats.F.Simplify.globals_after;
      };
  }

(** Analyze a single in-memory source string. *)
let analyze_string ?(cfg = Config.default) ?(main = "main") ?(file = "<input>")
    (src : string) : result =
  analyze_sources ~cfg ~main [ (file, src) ]

(* Field labels below match the keys of the --format json output
   (ISSUE 5): a reader can grep a JSON report and the text report with
   the same names. *)

let pp_cache_stats ppf (c : cache_stats) =
  Fmt.pf ppf
    "summary cache: hits: %d; misses: %d; entries: %d; loaded: %d;@ \
     load_time: %.3fs; save_time: %.3fs"
    c.c_hits c.c_misses c.c_entries c.c_loaded c.c_load_time c.c_save_time

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "globals_before: %d; globals_after: %d; cells: %d; statements: %d;@ \
     octagon_packs: %d; octagon_useful: %d; ellipsoid_packs: %d; \
     decision_tree_packs: %d;@ time: %.3fs"
    s.s_globals_before s.s_globals_after s.s_cells s.s_stmts s.s_oct_packs
    s.s_oct_useful s.s_ell_packs s.s_dt_packs s.s_time;
  (match s.s_cache with
  | None -> ()
  | Some c -> Fmt.pf ppf "@\n%a" pp_cache_stats c);
  match s.s_degraded with
  | None -> ()
  | Some d ->
      Fmt.pf ppf
        "@\ndegraded: reason: %s; level: %d; shed_octagon_packs: %d; \
         shed_ellipsoid_packs: %d; shed_decision_tree_packs: %d%s%s"
        d.dg_reason d.dg_level d.dg_shed_oct_packs d.dg_shed_ell_packs
        d.dg_shed_dt_packs
        (if d.dg_partitioning_disabled then "; partitioning_disabled" else "")
        (if d.dg_widening_accelerated then "; widening_accelerated" else "")

let pp_result ppf (r : result) =
  Fmt.pf ppf "%d alarm(s)@\n%a@\n%a" (n_alarms r)
    Fmt.(list ~sep:(any "@\n") Alarm.pp)
    r.r_alarms pp_stats r.r_stats
