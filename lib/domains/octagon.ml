(** The octagon abstract domain (Sect. 6.2.2), after Miné [28, 29, 30].

    An octagon over a pack of variables v_0 .. v_{n-1} represents
    conjunctions of constraints (+-x +-y <= c).  The implementation uses
    the difference-bound-matrix encoding: index 2k stands for +v_k and
    2k+1 for -v_k, and entry m[i][j] bounds V_j - V_i.  The matrix is
    stored as one flat row-major [float array] of length (2n)², so a
    matrix is a single unboxed allocation and a copy is a single blit.

    Strong closure is cubic in time; to keep it off the hot path the
    octagon tracks its own closure state.  Transfer functions mark the
    variables whose constraints they touched and call
    [close_incremental], which repairs closure in O(n²) per dirty
    variable; lattice operations propagate the state so that re-closing
    an already-closed octagon costs nothing.

    Per the paper's design, the domain works in the real field: bounds
    are binary64 with upward rounding, and floating-point program
    expressions only reach it through the sound linear forms of
    Sect. 6.3, which carry their own rounding errors.  This is the
    paper's "generic way of implementing relational abstract domains on
    floating-point numbers". *)

module F = Astree_frontend

type closure_state =
  | Closed
  | Dirty of int
  | Unclosed

type t = {
  pack : F.Tast.var array;    (** the variables of this pack, in order *)
  mutable bot : bool;
  n2 : int;                   (** 2 * number of pack variables *)
  m : float array;            (** flat 2n x 2n row-major bound matrix;
                                  entry (i,j) at [i*n2 + j]; +inf = top *)
  mutable closure : closure_state;
  index : (int, int) Hashtbl.t;
      (** variable id -> pack position; built once per pack at creation
          and shared by every copy (never mutated afterwards) *)
}

let bar i = i lxor 1

(* Bitmask dirty sets cover packs up to 62 variables; larger packs (far
   beyond any packing configuration) degrade to the full closure. *)
let dirty_width = 62

let mark_dirty (o : t) (k : int) : unit =
  if k >= dirty_width then o.closure <- Unclosed
  else
    match o.closure with
    | Unclosed -> ()
    | Closed -> o.closure <- Dirty (1 lsl k)
    | Dirty s -> o.closure <- Dirty (s lor (1 lsl k))

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let top (pack : F.Tast.var array) : t =
  let n = Array.length pack in
  let n2 = 2 * n in
  let m = Array.make (n2 * n2) Float.infinity in
  for i = 0 to n2 - 1 do
    m.((i * n2) + i) <- 0.0
  done;
  let index = Hashtbl.create (max 1 n) in
  Array.iteri (fun k v -> Hashtbl.replace index v.F.Tast.v_id k) pack;
  { pack; bot = false; n2; m; closure = Closed; index }

let bottom (pack : F.Tast.var array) : t = { (top pack) with bot = true }

let is_bot o = o.bot

let copy o = { o with m = Array.copy o.m }

(* Physically-shared octagons are a hazard only under shared-memory
   parallelism: the lazy closure cache mutates [m] and [closure] in
   place, so two domains closing the same octagon race.  Unsharing is
   just a copy — the fresh record carries its own matrix and flags while
   still sharing the immutable [pack] and [index]. *)
let unshare = copy

let var_index (o : t) (v : F.Tast.var) : int option =
  Hashtbl.find_opt o.index v.F.Tast.v_id

let mem_var o (v : F.Tast.var) = Hashtbl.mem o.index v.F.Tast.v_id

(* ------------------------------------------------------------------ *)
(* Strong closure                                                      *)
(* ------------------------------------------------------------------ *)

let add_up = Float_utils.add_up

(* One Floyd-Warshall pivot: m[i][j] <- min(m[i][j], m[i][k] + m[k][j]).
   All indices are in range by construction, hence the unsafe accesses. *)
let fw_pivot (m : float array) (n2 : int) (k : int) : unit =
  let krow = k * n2 in
  for i = 0 to n2 - 1 do
    let irow = i * n2 in
    let mik = Array.unsafe_get m (irow + k) in
    if mik < Float.infinity then
      for j = 0 to n2 - 1 do
        let via = add_up mik (Array.unsafe_get m (krow + j)) in
        if via < Array.unsafe_get m (irow + j) then
          Array.unsafe_set m (irow + j) via
      done
  done

(* Octagonal strengthening:
   m[i][j] <- min(m[i][j], (m[i][bar i] + m[bar j][j]) / 2) *)
let strengthen_pass (m : float array) (n2 : int) : unit =
  for i = 0 to n2 - 1 do
    let irow = i * n2 in
    for j = 0 to n2 - 1 do
      let s =
        add_up
          (Array.unsafe_get m (irow + (i lxor 1)))
          (Array.unsafe_get m (((j lxor 1) * n2) + j))
        /. 2.0
      in
      let s = Float_utils.round_up s in
      if s < Array.unsafe_get m (irow + j) then
        Array.unsafe_set m (irow + j) s
    done
  done

(* Emptiness shows up as a negative diagonal entry; a consistent
   diagonal is reset to exactly 0. *)
let check_empty (o : t) : unit =
  let n2 = o.n2 and m = o.m in
  let empty = ref false in
  for i = 0 to n2 - 1 do
    let d = (i * n2) + i in
    if Array.unsafe_get m d < 0.0 then empty := true
    else Array.unsafe_set m d 0.0
  done;
  if !empty then o.bot <- true

(** Floyd–Warshall shortest paths followed by the octagonal
    strengthening step; detects emptiness on the diagonal.  All bound
    arithmetic rounds upward, which keeps the result a sound
    over-approximation. *)
let close (o : t) : unit =
  if not o.bot then begin
    Profile.count Profile.oct_close_full;
    let t0 = Profile.start () in
    let n2 = o.n2 and m = o.m in
    (* Mine's strong closure: one Floyd-Warshall step through both
       polarities of each variable, followed by the octagonal
       strengthening step after EACH variable (interleaving is what
       makes the result strongly closed, hence idempotent) *)
    let n = n2 / 2 in
    for v = 0 to n - 1 do
      fw_pivot m n2 (2 * v);
      fw_pivot m n2 ((2 * v) + 1);
      strengthen_pass m n2
    done;
    check_empty o;
    Profile.stop Profile.oct_close_full t0
  end;
  o.closure <- Closed

(* Incremental strong closure (Mine): precondition is that the
   submatrix obtained by deleting the rows and columns of the dirty
   variables is strongly closed — exactly what the transfer functions
   maintain by marking every variable whose constraints they touch.

   Phase 1 re-tightens the dirty rows and columns: a shortest path from
   or to a dirty pole needs at most one intermediate hop before entering
   the clean region, because the clean region is already transitively
   closed.  Phase 2 is the ordinary Floyd-Warshall step restricted to
   the dirty poles, letting the remaining paths route through them.
   Together they compute the closure in O(|dirty| * n²).  A single final
   strengthening pass then yields strong closure: over the reals,
   strengthening a closed matrix once is strongly closed (Mine), so the
   per-variable interleaving of the full algorithm is not needed here. *)
let close_incremental_set (o : t) (dirty : int) : unit =
  let n2 = o.n2 and m = o.m in
  let n = n2 / 2 in
  for v = 0 to n - 1 do
    if dirty land (1 lsl v) <> 0 then
      for p = 2 * v to (2 * v) + 1 do
        let prow = p * n2 in
        for k = 0 to n2 - 1 do
          if k <> p then begin
            let krow = k * n2 in
            (* row: m[p][j] <- min(m[p][j], m[p][k] + m[k][j]) *)
            let mpk = Array.unsafe_get m (prow + k) in
            if mpk < Float.infinity then
              for j = 0 to n2 - 1 do
                let via = add_up mpk (Array.unsafe_get m (krow + j)) in
                if via < Array.unsafe_get m (prow + j) then
                  Array.unsafe_set m (prow + j) via
              done;
            (* column: m[i][p] <- min(m[i][p], m[i][k] + m[k][p]) *)
            let mkp = Array.unsafe_get m (krow + p) in
            if mkp < Float.infinity then
              for i = 0 to n2 - 1 do
                let via = add_up (Array.unsafe_get m ((i * n2) + k)) mkp in
                if via < Array.unsafe_get m ((i * n2) + p) then
                  Array.unsafe_set m ((i * n2) + p) via
              done
          end
        done
      done
  done;
  for v = 0 to n - 1 do
    if dirty land (1 lsl v) <> 0 then begin
      fw_pivot m n2 (2 * v);
      fw_pivot m n2 ((2 * v) + 1)
    end
  done;
  strengthen_pass m n2;
  check_empty o

let popcount =
  let rec go acc s = if s = 0 then acc else go (acc + (s land 1)) (s lsr 1) in
  fun s -> go 0 s

let force_full_close = ref false

let close_incremental (o : t) : unit =
  if !force_full_close then close o
  else if o.bot then o.closure <- Closed
  else
    match o.closure with
    | Closed -> Profile.count Profile.oct_close_skip
    | Unclosed -> close o
    | Dirty set ->
        let n = Array.length o.pack in
        if 2 * popcount set >= n then close o
        else begin
          Profile.count Profile.oct_close_incr;
          let t0 = Profile.start () in
          close_incremental_set o set;
          Profile.stop Profile.oct_close_incr t0;
          o.closure <- Closed
        end

(* ------------------------------------------------------------------ *)
(* Lattice operations (on closed arguments)                            *)
(* ------------------------------------------------------------------ *)

let join (a : t) (b : t) : t =
  if a.bot then copy b
  else if b.bot then copy a
  else begin
    Profile.count Profile.oct_join;
    let t0 = Profile.start () in
    let nn = a.n2 * a.n2 in
    let am = a.m and bm = b.m in
    let rm = Array.make nn 0.0 in
    for i = 0 to nn - 1 do
      Array.unsafe_set rm i
        (Float.max (Array.unsafe_get am i) (Array.unsafe_get bm i))
    done;
    (* the pointwise max of two (strongly) closed matrices is again
       (strongly) closed — the closure inequalities are preserved by max
       because bound addition is monotone — so the join of two closed
       octagons needs no re-closure at all *)
    let closure =
      match (a.closure, b.closure) with
      | Closed, Closed -> Closed
      | _ -> Unclosed
    in
    Profile.stop Profile.oct_join t0;
    { a with m = rm; bot = false; closure }
  end

let meet (a : t) (b : t) : t =
  if a.bot then copy a
  else if b.bot then copy b
  else begin
    let nn = a.n2 * a.n2 in
    let rm = Array.make nn 0.0 in
    for i = 0 to nn - 1 do
      rm.(i) <- Float.min a.m.(i) b.m.(i)
    done;
    let r = { a with m = rm; bot = false; closure = Unclosed } in
    close r;
    r
  end

(** Widening: an unstable bound jumps straight to +infinity (the
    standard octagon widening of Mine [29]).  Since the transfer
    functions rebuild relational constraints at every assignment, a
    killed bound is re-derived on the next iterate if it is genuinely
    invariant; jumping through intermediate thresholds would instead let
    rounding-noise creep drag whole constraint families up the ladder.
    The [thresholds] parameter is kept for interface uniformity with the
    other domains.  The left argument must not be closed after widening
    is engaged, per the classical octagon widening soundness condition;
    the result is therefore marked [Unclosed] and stays that way until a
    transfer function next needs a closure. *)
let widen ~(thresholds : Thresholds.t) (a : t) (b : t) : t =
  ignore thresholds;
  if a.bot then copy b
  else if b.bot then copy a
  else begin
    Profile.count Profile.oct_widen;
    let t0 = Profile.start () in
    let nn = a.n2 * a.n2 in
    let rm = Array.copy a.m in
    for i = 0 to nn - 1 do
      if b.m.(i) > a.m.(i) then rm.(i) <- Float.infinity
    done;
    Profile.stop Profile.oct_widen t0;
    { a with m = rm; bot = false; closure = Unclosed }
  end

let narrow (a : t) (b : t) : t =
  if a.bot || b.bot then bottom a.pack
  else begin
    let nn = a.n2 * a.n2 in
    let rm = Array.copy a.m in
    for i = 0 to nn - 1 do
      if a.m.(i) = Float.infinity then rm.(i) <- b.m.(i)
    done;
    { a with m = rm; bot = false; closure = Unclosed }
  end

let subset (a : t) (b : t) : bool =
  a.bot
  || (not b.bot)
     && (let nn = a.n2 * a.n2 in
         let ok = ref true in
         for i = 0 to nn - 1 do
           if Array.unsafe_get a.m i > Array.unsafe_get b.m i then ok := false
         done;
         !ok)

let equal (a : t) (b : t) : bool =
  (a.bot && b.bot) || ((not a.bot) && (not b.bot) && a.m = b.m)

(* ------------------------------------------------------------------ *)
(* Interval extraction and injection                                   *)
(* ------------------------------------------------------------------ *)

(** Hull of variable k: [-m[2k][2k+1]/2, m[2k+1][2k]/2]. *)
let get_bounds (o : t) (v : F.Tast.var) : (float * float) option =
  if o.bot then Some (1.0, -1.0)
  else
    match var_index o v with
    | None -> None
    | Some k ->
        let n2 = o.n2 in
        let i = 2 * k in
        let hi = Float_utils.round_up (o.m.((bar i * n2) + i) /. 2.0) in
        let lo = Float_utils.round_down (-.(o.m.((i * n2) + bar i) /. 2.0)) in
        Some (lo, hi)

(** Constrain v to [lo, hi] (meet). *)
let set_bounds (o : t) (v : F.Tast.var) ((lo, hi) : float * float) : unit =
  if not o.bot then
    match var_index o v with
    | None -> ()
    | Some k ->
        let n2 = o.n2 in
        let i = 2 * k in
        let up = (bar i * n2) + i and dn = (i * n2) + bar i in
        if hi < Float.infinity then begin
          let c = Float_utils.mul_up 2.0 hi in
          if c < o.m.(up) then begin
            o.m.(up) <- c;
            mark_dirty o k
          end
        end;
        if lo > Float.neg_infinity then begin
          let c = Float_utils.mul_up (-2.0) lo in
          if c < o.m.(dn) then begin
            o.m.(dn) <- c;
            mark_dirty o k
          end
        end

(** Bounds on the difference x - y, when both are in the pack. *)
let get_diff_bounds (o : t) (x : F.Tast.var) (y : F.Tast.var) :
    (float * float) option =
  if o.bot then None
  else
    match (var_index o x, var_index o y) with
    | Some kx, Some ky when kx <> ky ->
        (* x - y <= m[2ky][2kx]; y - x <= m[2kx][2ky] *)
        let n2 = o.n2 in
        let hi = o.m.((2 * ky * n2) + (2 * kx)) in
        let lo = -.o.m.((2 * kx * n2) + (2 * ky)) in
        if lo > Float.neg_infinity || hi < Float.infinity then Some (lo, hi)
        else None
    | _ -> None

(** Remove every constraint involving v (projection).  A projection of a
    strongly closed matrix is still strongly closed, so forgetting never
    dirties the octagon — it can only remove v from the dirty set. *)
let forget (o : t) (v : F.Tast.var) : unit =
  if not o.bot then
    match var_index o v with
    | None -> ()
    | Some k ->
        let n2 = o.n2 in
        let i0 = 2 * k and i1 = (2 * k) + 1 in
        for j = 0 to n2 - 1 do
          if j <> i0 then begin
            o.m.((i0 * n2) + j) <- Float.infinity;
            o.m.((j * n2) + i0) <- Float.infinity
          end;
          if j <> i1 then begin
            o.m.((i1 * n2) + j) <- Float.infinity;
            o.m.((j * n2) + i1) <- Float.infinity
          end
        done;
        o.m.((i0 * n2) + i0) <- 0.0;
        o.m.((i1 * n2) + i1) <- 0.0;
        if k < dirty_width then begin
          match o.closure with
          | Dirty s ->
              let s' = s land lnot (1 lsl k) in
              o.closure <- (if s' = 0 then Closed else Dirty s')
          | Closed | Unclosed -> ()
        end

(* Add constraint V_j - V_i <= c, maintaining coherence.  Every touched
   entry lies in the rows/columns of variable j/2, so marking that one
   variable dirty is enough for the incremental closure. *)
let add_constraint (o : t) i j c =
  let n2 = o.n2 in
  let ij = (i * n2) + j in
  if c < o.m.(ij) then begin
    o.m.(ij) <- c;
    let ji = (bar j * n2) + bar i in
    if c < o.m.(ji) then o.m.(ji) <- c;
    mark_dirty o (j lsr 1)
  end

(** Constrain x - y <= c  (x, y in the pack). *)
let add_diff_le (o : t) (x : F.Tast.var) (y : F.Tast.var) (c : float) : unit =
  if not o.bot then
    match (var_index o x, var_index o y) with
    | Some kx, Some ky when kx <> ky ->
        (* x - y = V_{2kx} - V_{2ky} <= c *)
        add_constraint o (2 * ky) (2 * kx) c
    | _ -> ()

(** Constrain x + y <= c. *)
let add_sum_le (o : t) (x : F.Tast.var) (y : F.Tast.var) (c : float) : unit =
  if not o.bot then
    match (var_index o x, var_index o y) with
    | Some kx, Some ky when kx <> ky ->
        (* x + y = V_{2kx} - V_{2ky+1} <= c *)
        add_constraint o ((2 * ky) + 1) (2 * kx) c
    | _ -> ()

(** Constrain -x - y <= c. *)
let add_neg_sum_le (o : t) (x : F.Tast.var) (y : F.Tast.var) (c : float) : unit
    =
  if not o.bot then
    match (var_index o x, var_index o y) with
    | Some kx, Some ky when kx <> ky ->
        (* -x - y = V_{2kx+1} - V_{2ky} <= c *)
        add_constraint o (2 * ky) ((2 * kx) + 1) c
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)
(* ------------------------------------------------------------------ *)

(* An oracle gives float hulls for variables outside the pack. *)
type oracle = F.Tast.var -> float * float

let eval_form (o : t) (oracle : oracle) (form : Linear_form.t) : float * float =
  let var_hull v =
    match get_bounds o v with
    | Some (lo, hi) -> (
        (* the octagon's own bounds may be tighter than the oracle's *)
        let olo, ohi = oracle v in
        (Float.max lo olo, Float.min hi ohi))
    | None -> oracle v
  in
  Linear_form.eval var_hull form

(** Abstract assignment [x := form].  The transfer function is the
    paper's "smart" one: for every unit-coefficient variable y of the
    form, the rest of the form is evaluated to an interval [c, d] and the
    relational constraints c <= x -+ y <= d are synthesized; other
    variables only contribute their interval.  This is what proves
    L <= X in the paper's rate-limiter example. *)
(* Exact self-update x := x + [c, d]: every constraint involving x
   shifts by the increment, preserving all relational information
   (what keeps loop counters related to their accumulators). *)
let shift_var (o : t) (k : int) (c : float) (d : float) : unit =
  let n2 = o.n2 in
  let i0 = 2 * k and i1 = (2 * k) + 1 in
  let su = Float_utils.sub_up and au = Float_utils.add_up in
  for j = 0 to n2 - 1 do
    if j <> i0 && j <> i1 then begin
      (* V_j - x <= m[i0][j]  becomes  <= m - c *)
      o.m.((i0 * n2) + j) <- su o.m.((i0 * n2) + j) c;
      (* x - V_j <= m[j][i0]  becomes  <= m + d *)
      o.m.((j * n2) + i0) <- au o.m.((j * n2) + i0) d;
      (* V_j + x <= m[i1][j]  becomes  <= m + d *)
      o.m.((i1 * n2) + j) <- au o.m.((i1 * n2) + j) d;
      (* -x - V_j <= m[j][i1]  becomes  <= m - c *)
      o.m.((j * n2) + i1) <- su o.m.((j * n2) + i1) c
    end
  done;
  (* unary bounds: -2x <= m[i0][i1] becomes <= m - 2c; 2x <= m[i1][i0]
     becomes <= m + 2d *)
  o.m.((i0 * n2) + i1) <- su o.m.((i0 * n2) + i1) (Float_utils.mul_down 2.0 c);
  o.m.((i1 * n2) + i0) <- au o.m.((i1 * n2) + i0) (Float_utils.mul_up 2.0 d);
  mark_dirty o k

let assign (o : t) (oracle : oracle) (x : F.Tast.var) (form : Linear_form.t) :
    unit =
  if not o.bot then begin
    match var_index o x with
    | None -> ()
    | Some kx
      when (match Linear_form.as_single_var form with
           | Some (y, k, _) ->
               F.Tast.Var.equal y x
               && k.Linear_form.lo = 1.0 && k.Linear_form.hi = 1.0
           | None -> false) ->
        (* x := x + [c, d] *)
        let c, d =
          match Linear_form.as_single_var form with
          | Some (_, _, cst) -> (cst.Linear_form.lo, cst.Linear_form.hi)
          | None -> (0.0, 0.0)
        in
        shift_var o kx c d;
        close_incremental o
    | Some _ ->
        (* value hull computed before forgetting x (x may occur in form) *)
        let vlo, vhi = eval_form o oracle form in
        (* detect x := x + [c,d] - like self-updates: substitute via a
           temporary approach: compute relational info w.r.t. other vars
           from the pre-state *)
        let unit_terms =
          Linear_form.vars form
          |> List.filter_map (fun y ->
                 if F.Tast.Var.equal y x then None
                 else if not (mem_var o y) then None
                 else
                   let coeffs =
                     Linear_form.(
                       match VarMap.find_opt y form.terms with
                       | Some c -> c
                       | None -> coeff_zero)
                   in
                   if coeffs.Linear_form.lo = 1.0 && coeffs.Linear_form.hi = 1.0
                   then Some (y, `Plus)
                   else if
                     coeffs.Linear_form.lo = -1.0
                     && coeffs.Linear_form.hi = -1.0
                   then Some (y, `Minus)
                   else None)
        in
        (* rest intervals are computed in the pre-state *)
        let rests =
          List.map
            (fun (y, sign) ->
              let ly = Linear_form.of_var y in
              let rest =
                match sign with
                | `Plus -> Linear_form.sub form ly
                | `Minus -> Linear_form.add form ly
              in
              let c, d = eval_form o oracle rest in
              (y, sign, c, d))
            unit_terms
        in
        forget o x;
        set_bounds o x (vlo, vhi);
        List.iter
          (fun (y, sign, c, d) ->
            match sign with
            | `Plus ->
                (* x = y + rest, rest in [c,d]: c <= x - y <= d *)
                if d < Float.infinity then add_diff_le o x y d;
                if c > Float.neg_infinity then add_diff_le o y x (-.c)
            | `Minus ->
                (* x = -y + rest: c <= x + y <= d *)
                if d < Float.infinity then add_sum_le o x y d;
                if c > Float.neg_infinity then add_neg_sum_le o x y (-.c))
          rests;
        close_incremental o
  end

(** Abstract guard [form <= 0].  Octagonal constraints are extracted when
    the form involves one or two pack variables with unit coefficients;
    otherwise only interval information is used. *)
let guard_le_zero (o : t) (oracle : oracle) (form : Linear_form.t) : unit =
  if not o.bot then begin
    let in_pack = List.filter (mem_var o) (Linear_form.vars form) in
    let unit_coeff v =
      match Linear_form.VarMap.find_opt v form.Linear_form.terms with
      | Some c when c.Linear_form.lo = 1.0 && c.Linear_form.hi = 1.0 ->
          Some `Plus
      | Some c when c.Linear_form.lo = -1.0 && c.Linear_form.hi = -1.0 ->
          Some `Minus
      | _ -> None
    in
    (match in_pack with
    | [ x ] -> (
        match unit_coeff x with
        | Some sign ->
            let lx = Linear_form.of_var x in
            let rest =
              match sign with
              | `Plus -> Linear_form.sub form lx
              | `Minus -> Linear_form.add form lx
            in
            let c, d = eval_form o oracle rest in
            ignore c;
            (* +x + rest <= 0  ==>  x <= -rest_lo is wrong; x <= -c with
               c the lower bound of rest *)
            (match sign with
            | `Plus ->
                (* x <= -rest, so x <= -(lower bound of rest) *)
                let _, cur_hi =
                  Option.value (get_bounds o x)
                    ~default:(Float.neg_infinity, Float.infinity)
                in
                let new_hi = Float_utils.round_up (-.c) in
                if new_hi < cur_hi then
                  set_bounds o x (Float.neg_infinity, new_hi)
            | `Minus ->
                (* -x + rest <= 0: x >= rest_lo *)
                let new_lo = Float_utils.round_down c in
                if new_lo > Float.neg_infinity then
                  set_bounds o x (new_lo, Float.infinity));
            ignore d
        | None -> ())
    | [ x; y ] -> (
        match (unit_coeff x, unit_coeff y) with
        | Some sx, Some sy ->
            let form' =
              let lx = Linear_form.of_var x and ly = Linear_form.of_var y in
              let f = form in
              let f =
                match sx with
                | `Plus -> Linear_form.sub f lx
                | `Minus -> Linear_form.add f lx
              in
              match sy with
              | `Plus -> Linear_form.sub f ly
              | `Minus -> Linear_form.add f ly
            in
            let c, _d = eval_form o oracle form' in
            (* sx.x + sy.y + rest <= 0 ==> sx.x + sy.y <= -c *)
            let bound = Float_utils.round_up (-.c) in
            if bound < Float.infinity then begin
              match (sx, sy) with
              | `Plus, `Plus -> add_sum_le o x y bound
              | `Plus, `Minus -> add_diff_le o x y bound
              | `Minus, `Plus -> add_diff_le o y x bound
              | `Minus, `Minus -> add_neg_sum_le o x y bound
            end
        | _ -> ())
    | _ -> ());
    close_incremental o
  end

(* ------------------------------------------------------------------ *)
(* Pretty-printing and accounting                                      *)
(* ------------------------------------------------------------------ *)

(** Number of non-trivial (finite, off-diagonal) constraints, split into
    (sum constraints, difference constraints) — matching the paper's
    invariant census of additive vs subtractive octagonal assertions
    (Sect. 9.4.1). *)
let count_constraints (o : t) : int * int =
  if o.bot then (0, 0)
  else begin
    let n2 = o.n2 in
    let sums = ref 0 and diffs = ref 0 in
    for i = 0 to n2 - 1 do
      for j = 0 to n2 - 1 do
        if i <> j && i / 2 <> j / 2 && o.m.((i * n2) + j) < Float.infinity
        then
          (* V_j - V_i <= c: a difference if both have the same parity
             polarity, a sum otherwise *)
          if i land 1 = j land 1 then incr sums else incr diffs
      done
    done;
    (!sums / 2, !diffs / 2)
    (* each constraint is stored twice by coherence *)
  end

(** True when the octagon carries at least one relational constraint
    (used by the packing-usefulness optimization, Sect. 7.2.2). *)
let has_relational_info (o : t) : bool =
  (not o.bot)
  &&
  let n2 = o.n2 in
  let found = ref false in
  for i = 0 to n2 - 1 do
    for j = 0 to n2 - 1 do
      if i / 2 <> j / 2 && o.m.((i * n2) + j) < Float.infinity then
        found := true
    done
  done;
  !found

let pp ppf (o : t) =
  if o.bot then Fmt.string ppf "_|_"
  else begin
    let n = Array.length o.pack in
    let n2 = o.n2 in
    let first = ref true in
    for k = 0 to n - 1 do
      match get_bounds o o.pack.(k) with
      | Some (lo, hi) when lo > Float.neg_infinity || hi < Float.infinity ->
          if not !first then Fmt.string ppf ", ";
          first := false;
          Fmt.pf ppf "%s in [%g, %g]" o.pack.(k).F.Tast.v_name lo hi
      | _ -> ()
    done;
    for i = 0 to (2 * n) - 1 do
      for j = 0 to (2 * n) - 1 do
        if i / 2 < j / 2 && o.m.((i * n2) + j) < Float.infinity then begin
          if not !first then Fmt.string ppf ", ";
          first := false;
          let vi = o.pack.(i / 2).F.Tast.v_name
          and vj = o.pack.(j / 2).F.Tast.v_name in
          let si = if i land 1 = 0 then "-" else "+" in
          let sj = if j land 1 = 0 then "+" else "-" in
          Fmt.pf ppf "%s%s %s%s <= %g" sj vj si vi o.m.((i * n2) + j)
        end
      done
    done;
    if !first then Fmt.string ppf "T"
  end
