(** The octagon abstract domain (Sect. 6.2.2), after Miné.

    An octagon over a pack of variables represents conjunctions of
    constraints (+-x +-y <= c) in a difference-bound matrix: index [2k]
    stands for [+v_k], [2k+1] for [-v_k], and the entry at [i*n2 + j] of
    the flat row-major matrix bounds [V_j - V_i].  Strong closure is
    cubic in the pack size; packs are kept small by the packing strategy
    of Sect. 7.2.1, and the closure-state tracking below keeps the cubic
    pass off the per-statement hot path.

    The domain works in the real field (bounds are binary64 with upward
    rounding); floating-point program expressions reach it only through
    the sound linear forms of Sect. 6.3. *)

(** How much closure work the matrix currently needs.  [Closed]: the
    matrix is strongly closed.  [Dirty s]: strongly closed except on the
    rows/columns of the pack variables in the bitmask [s] (bit k =
    variable k); [close_incremental] repairs this in O(|s|·n²).
    [Unclosed]: nothing is known (widening/narrowing results), a full
    closure is required. *)
type closure_state =
  | Closed
  | Dirty of int
  | Unclosed

type t = {
  pack : Astree_frontend.Tast.var array;  (** this pack's variables *)
  mutable bot : bool;
  n2 : int;  (** 2 * pack size *)
  m : float array;
      (** flat 2n x 2n row-major bound matrix; +infinity = top *)
  mutable closure : closure_state;
  index : (int, int) Hashtbl.t;
      (** variable id -> pack position; shared by copies, never mutated *)
}

(** {1 Construction}

    Octagons are mutable; the analyzer copies before updating. *)

val top : Astree_frontend.Tast.var array -> t
val bottom : Astree_frontend.Tast.var array -> t
val is_bot : t -> bool
val copy : t -> t

(** Break physical sharing before handing an octagon to another domain
    (OCaml 5 shared-memory worker): the closure machinery mutates the
    matrix and closure flag in place, so two domains lazily closing the
    same octagon would race.  Semantically the identity (a fresh matrix
    with equal bounds); the immutable pack/index stay shared. *)
val unshare : t -> t

val mem_var : t -> Astree_frontend.Tast.var -> bool

(** {1 Closure} *)

(** Full strong closure: Floyd–Warshall shortest paths plus the
    octagonal strengthening step; detects emptiness.  All bound
    arithmetic rounds upward. *)
val close : t -> unit

(** Bring the octagon to [Closed] doing as little work as the tracked
    closure state allows: nothing when already closed, Miné's
    incremental strong closure (O(n²) per dirty variable) when only a
    few variables were touched, the full cubic pass otherwise.  Agrees
    with {!close} exactly in real arithmetic (both compute the unique
    strong closure; see DESIGN.md §9 for the argument and the property
    test). *)
val close_incremental : t -> unit

(** Benchmark hook: when set, [close_incremental] always performs the
    full cubic closure, reproducing the pre-optimization cost model. *)
val force_full_close : bool ref

(** {1 Lattice operations} (on closed arguments) *)

val join : t -> t -> t
val meet : t -> t -> t

(** Standard octagon widening: an unstable bound jumps to +infinity
    ([thresholds] is accepted for interface uniformity but unused —
    see the implementation note about rounding-noise creep).  The result
    is [Unclosed]: closing a widened iterate could undo the
    extrapolation and defeat termination. *)
val widen : thresholds:Thresholds.t -> t -> t -> t

val narrow : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

(** {1 Interval view} *)

(** Hull of a pack variable; [None] when not in the pack. *)
val get_bounds : t -> Astree_frontend.Tast.var -> (float * float) option

(** Constrain a variable to a range (meet). *)
val set_bounds : t -> Astree_frontend.Tast.var -> float * float -> unit

(** Bounds on [x - y], when both are in the pack and distinct. *)
val get_diff_bounds :
  t -> Astree_frontend.Tast.var -> Astree_frontend.Tast.var ->
  (float * float) option

(** Remove every constraint involving a variable (projection). *)
val forget : t -> Astree_frontend.Tast.var -> unit

(** {1 Constraints} *)

val add_diff_le : t -> Astree_frontend.Tast.var -> Astree_frontend.Tast.var -> float -> unit
(** [add_diff_le o x y c] constrains [x - y <= c]. *)

val add_sum_le : t -> Astree_frontend.Tast.var -> Astree_frontend.Tast.var -> float -> unit
(** [add_sum_le o x y c] constrains [x + y <= c]. *)

val add_neg_sum_le : t -> Astree_frontend.Tast.var -> Astree_frontend.Tast.var -> float -> unit
(** [add_neg_sum_le o x y c] constrains [-x - y <= c]. *)

(** {1 Transfer functions} *)

(** Float hulls for variables outside the pack. *)
type oracle = Astree_frontend.Tast.var -> float * float

(** Interval value of a linear form using the octagon's own bounds met
    with the oracle's. *)
val eval_form : t -> oracle -> Linear_form.t -> float * float

(** Exact self-update of variable k by [c, d]: all constraints shift. *)
val shift_var : t -> int -> float -> float -> unit

(** Abstract assignment [x := form]: exact shifting for the self-update
    [x := x + [c,d]]; otherwise, for every unit-coefficient variable
    [y] of the form, the rest of the form is evaluated to an interval
    [c, d] and the constraints [c <= x -+ y <= d] are synthesized — the
    paper's rate-limiter transfer function ("our assignment transfer
    function is smart enough to ... synthesize the invariant
    c <= L - Z <= d"). *)
val assign : t -> oracle -> Astree_frontend.Tast.var -> Linear_form.t -> unit

(** Abstract guard [form <= 0]: octagonal constraints are extracted when
    the form has one or two unit-coefficient pack variables. *)
val guard_le_zero : t -> oracle -> Linear_form.t -> unit

(** {1 Accounting} *)

(** Non-trivial constraints as (sums, differences) — the census split of
    Sect. 9.4.1. *)
val count_constraints : t -> int * int

(** True when the octagon carries at least one relational constraint
    (the usefulness test of Sect. 7.2.2). *)
val has_relational_info : t -> bool

val pp : Format.formatter -> t -> unit
